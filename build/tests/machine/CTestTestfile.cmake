# CMake generated Testfile for 
# Source directory: /root/repo/tests/machine
# Build directory: /root/repo/build/tests/machine
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_machine_threaded "/root/repo/build/tests/machine/test_machine_threaded")
set_tests_properties(test_machine_threaded PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/machine/CMakeLists.txt;1;charmx_add_test;/root/repo/tests/machine/CMakeLists.txt;0;")
add_test(test_machine_sim "/root/repo/build/tests/machine/test_machine_sim")
set_tests_properties(test_machine_sim PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/machine/CMakeLists.txt;2;charmx_add_test;/root/repo/tests/machine/CMakeLists.txt;0;")
add_test(test_machine_network "/root/repo/build/tests/machine/test_machine_network")
set_tests_properties(test_machine_network PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/machine/CMakeLists.txt;3;charmx_add_test;/root/repo/tests/machine/CMakeLists.txt;0;")
