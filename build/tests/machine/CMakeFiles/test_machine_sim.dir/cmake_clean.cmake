file(REMOVE_RECURSE
  "CMakeFiles/test_machine_sim.dir/test_sim.cpp.o"
  "CMakeFiles/test_machine_sim.dir/test_sim.cpp.o.d"
  "test_machine_sim"
  "test_machine_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
