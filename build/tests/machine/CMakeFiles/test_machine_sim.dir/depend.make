# Empty dependencies file for test_machine_sim.
# This may be replaced when dependencies are built.
