# Empty dependencies file for test_machine_threaded.
# This may be replaced when dependencies are built.
