# CMake generated Testfile for 
# Source directory: /root/repo/tests/util
# Build directory: /root/repo/build/tests/util
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_util_options "/root/repo/build/tests/util/test_util_options")
set_tests_properties(test_util_options PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/util/CMakeLists.txt;1;charmx_add_test;/root/repo/tests/util/CMakeLists.txt;0;")
add_test(test_util_stats "/root/repo/build/tests/util/test_util_stats")
set_tests_properties(test_util_stats PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/util/CMakeLists.txt;2;charmx_add_test;/root/repo/tests/util/CMakeLists.txt;0;")
add_test(test_util_rng "/root/repo/build/tests/util/test_util_rng")
set_tests_properties(test_util_rng PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/util/CMakeLists.txt;3;charmx_add_test;/root/repo/tests/util/CMakeLists.txt;0;")
add_test(test_util_table "/root/repo/build/tests/util/test_util_table")
set_tests_properties(test_util_table PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/util/CMakeLists.txt;4;charmx_add_test;/root/repo/tests/util/CMakeLists.txt;0;")
