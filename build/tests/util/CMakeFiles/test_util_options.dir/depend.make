# Empty dependencies file for test_util_options.
# This may be replaced when dependencies are built.
