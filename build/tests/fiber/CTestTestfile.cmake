# CMake generated Testfile for 
# Source directory: /root/repo/tests/fiber
# Build directory: /root/repo/build/tests/fiber
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_fiber "/root/repo/build/tests/fiber/test_fiber")
set_tests_properties(test_fiber PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/fiber/CMakeLists.txt;1;charmx_add_test;/root/repo/tests/fiber/CMakeLists.txt;0;")
