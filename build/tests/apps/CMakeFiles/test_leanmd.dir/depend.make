# Empty dependencies file for test_leanmd.
# This may be replaced when dependencies are built.
