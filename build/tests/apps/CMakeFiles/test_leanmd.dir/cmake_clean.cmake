file(REMOVE_RECURSE
  "CMakeFiles/test_leanmd.dir/test_leanmd.cpp.o"
  "CMakeFiles/test_leanmd.dir/test_leanmd.cpp.o.d"
  "test_leanmd"
  "test_leanmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_leanmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
