# CMake generated Testfile for 
# Source directory: /root/repo/tests/apps
# Build directory: /root/repo/build/tests/apps
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_stencil "/root/repo/build/tests/apps/test_stencil")
set_tests_properties(test_stencil PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/apps/CMakeLists.txt;1;charmx_add_test;/root/repo/tests/apps/CMakeLists.txt;0;")
add_test(test_leanmd "/root/repo/build/tests/apps/test_leanmd")
set_tests_properties(test_leanmd PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/apps/CMakeLists.txt;2;charmx_add_test;/root/repo/tests/apps/CMakeLists.txt;0;")
