# Empty compiler generated dependencies file for test_core_lb_strategies.
# This may be replaced when dependencies are built.
