file(REMOVE_RECURSE
  "CMakeFiles/test_core_lb_strategies.dir/test_lb_strategies.cpp.o"
  "CMakeFiles/test_core_lb_strategies.dir/test_lb_strategies.cpp.o.d"
  "test_core_lb_strategies"
  "test_core_lb_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_lb_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
