# Empty dependencies file for test_core_index.
# This may be replaced when dependencies are built.
