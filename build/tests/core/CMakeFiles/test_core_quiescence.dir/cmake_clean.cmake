file(REMOVE_RECURSE
  "CMakeFiles/test_core_quiescence.dir/test_quiescence.cpp.o"
  "CMakeFiles/test_core_quiescence.dir/test_quiescence.cpp.o.d"
  "test_core_quiescence"
  "test_core_quiescence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_quiescence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
