# Empty dependencies file for test_core_quiescence.
# This may be replaced when dependencies are built.
