# Empty dependencies file for test_core_when_wait.
# This may be replaced when dependencies are built.
