file(REMOVE_RECURSE
  "CMakeFiles/test_core_when_wait.dir/test_when_wait.cpp.o"
  "CMakeFiles/test_core_when_wait.dir/test_when_wait.cpp.o.d"
  "test_core_when_wait"
  "test_core_when_wait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_when_wait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
