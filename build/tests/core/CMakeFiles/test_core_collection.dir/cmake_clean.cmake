file(REMOVE_RECURSE
  "CMakeFiles/test_core_collection.dir/test_collection.cpp.o"
  "CMakeFiles/test_core_collection.dir/test_collection.cpp.o.d"
  "test_core_collection"
  "test_core_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
