# Empty dependencies file for test_core_collection.
# This may be replaced when dependencies are built.
