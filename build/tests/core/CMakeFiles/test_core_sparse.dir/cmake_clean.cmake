file(REMOVE_RECURSE
  "CMakeFiles/test_core_sparse.dir/test_sparse.cpp.o"
  "CMakeFiles/test_core_sparse.dir/test_sparse.cpp.o.d"
  "test_core_sparse"
  "test_core_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
