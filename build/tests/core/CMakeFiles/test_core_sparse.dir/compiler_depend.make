# Empty compiler generated dependencies file for test_core_sparse.
# This may be replaced when dependencies are built.
