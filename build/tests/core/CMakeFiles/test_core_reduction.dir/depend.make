# Empty dependencies file for test_core_reduction.
# This may be replaced when dependencies are built.
