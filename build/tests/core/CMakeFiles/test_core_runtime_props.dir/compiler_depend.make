# Empty compiler generated dependencies file for test_core_runtime_props.
# This may be replaced when dependencies are built.
