file(REMOVE_RECURSE
  "CMakeFiles/test_core_runtime_props.dir/test_runtime_props.cpp.o"
  "CMakeFiles/test_core_runtime_props.dir/test_runtime_props.cpp.o.d"
  "test_core_runtime_props"
  "test_core_runtime_props.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_runtime_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
