# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_core_index "/root/repo/build/tests/core/test_core_index")
set_tests_properties(test_core_index PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/core/CMakeLists.txt;1;charmx_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(test_core_collection "/root/repo/build/tests/core/test_core_collection")
set_tests_properties(test_core_collection PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/core/CMakeLists.txt;2;charmx_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(test_core_lb_strategies "/root/repo/build/tests/core/test_core_lb_strategies")
set_tests_properties(test_core_lb_strategies PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/core/CMakeLists.txt;3;charmx_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(test_core_runtime_basic "/root/repo/build/tests/core/test_core_runtime_basic")
set_tests_properties(test_core_runtime_basic PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/core/CMakeLists.txt;4;charmx_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(test_core_when_wait "/root/repo/build/tests/core/test_core_when_wait")
set_tests_properties(test_core_when_wait PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/core/CMakeLists.txt;5;charmx_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(test_core_reduction "/root/repo/build/tests/core/test_core_reduction")
set_tests_properties(test_core_reduction PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/core/CMakeLists.txt;6;charmx_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(test_core_migration "/root/repo/build/tests/core/test_core_migration")
set_tests_properties(test_core_migration PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/core/CMakeLists.txt;7;charmx_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(test_core_lb_runtime "/root/repo/build/tests/core/test_core_lb_runtime")
set_tests_properties(test_core_lb_runtime PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/core/CMakeLists.txt;8;charmx_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(test_core_sparse "/root/repo/build/tests/core/test_core_sparse")
set_tests_properties(test_core_sparse PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/core/CMakeLists.txt;9;charmx_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(test_core_quiescence "/root/repo/build/tests/core/test_core_quiescence")
set_tests_properties(test_core_quiescence PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/core/CMakeLists.txt;10;charmx_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
add_test(test_core_runtime_props "/root/repo/build/tests/core/test_core_runtime_props")
set_tests_properties(test_core_runtime_props PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/core/CMakeLists.txt;11;charmx_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
