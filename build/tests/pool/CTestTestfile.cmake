# CMake generated Testfile for 
# Source directory: /root/repo/tests/pool
# Build directory: /root/repo/build/tests/pool
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_pool "/root/repo/build/tests/pool/test_pool")
set_tests_properties(test_pool PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/pool/CMakeLists.txt;1;charmx_add_test;/root/repo/tests/pool/CMakeLists.txt;0;")
