# CMake generated Testfile for 
# Source directory: /root/repo/tests/mpi
# Build directory: /root/repo/build/tests/mpi
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_mpi "/root/repo/build/tests/mpi/test_mpi")
set_tests_properties(test_mpi PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/mpi/CMakeLists.txt;1;charmx_add_test;/root/repo/tests/mpi/CMakeLists.txt;0;")
