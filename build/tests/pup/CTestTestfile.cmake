# CMake generated Testfile for 
# Source directory: /root/repo/tests/pup
# Build directory: /root/repo/build/tests/pup
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_pup "/root/repo/build/tests/pup/test_pup")
set_tests_properties(test_pup PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/pup/CMakeLists.txt;1;charmx_add_test;/root/repo/tests/pup/CMakeLists.txt;0;")
add_test(test_pup_roundtrip "/root/repo/build/tests/pup/test_pup_roundtrip")
set_tests_properties(test_pup_roundtrip PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/pup/CMakeLists.txt;2;charmx_add_test;/root/repo/tests/pup/CMakeLists.txt;0;")
