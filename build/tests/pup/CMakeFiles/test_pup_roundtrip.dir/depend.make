# Empty dependencies file for test_pup_roundtrip.
# This may be replaced when dependencies are built.
