file(REMOVE_RECURSE
  "CMakeFiles/test_pup_roundtrip.dir/test_roundtrip.cpp.o"
  "CMakeFiles/test_pup_roundtrip.dir/test_roundtrip.cpp.o.d"
  "test_pup_roundtrip"
  "test_pup_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pup_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
