# Empty dependencies file for test_pup.
# This may be replaced when dependencies are built.
