file(REMOVE_RECURSE
  "CMakeFiles/test_pup.dir/test_pup.cpp.o"
  "CMakeFiles/test_pup.dir/test_pup.cpp.o.d"
  "test_pup"
  "test_pup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
