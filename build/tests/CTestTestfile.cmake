# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("pup")
subdirs("fiber")
subdirs("machine")
subdirs("core")
subdirs("model")
subdirs("pool")
subdirs("mpi")
subdirs("apps")
