# CMake generated Testfile for 
# Source directory: /root/repo/tests/model
# Build directory: /root/repo/build/tests/model
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_model_value "/root/repo/build/tests/model/test_model_value")
set_tests_properties(test_model_value PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/model/CMakeLists.txt;1;charmx_add_test;/root/repo/tests/model/CMakeLists.txt;0;")
add_test(test_model_expr "/root/repo/build/tests/model/test_model_expr")
set_tests_properties(test_model_expr PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/model/CMakeLists.txt;2;charmx_add_test;/root/repo/tests/model/CMakeLists.txt;0;")
add_test(test_model_dchare "/root/repo/build/tests/model/test_model_dchare")
set_tests_properties(test_model_dchare PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/model/CMakeLists.txt;3;charmx_add_test;/root/repo/tests/model/CMakeLists.txt;0;")
add_test(test_model_dist_array "/root/repo/build/tests/model/test_model_dist_array")
set_tests_properties(test_model_dist_array PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/model/CMakeLists.txt;4;charmx_add_test;/root/repo/tests/model/CMakeLists.txt;0;")
