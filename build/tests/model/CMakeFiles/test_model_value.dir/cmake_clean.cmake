file(REMOVE_RECURSE
  "CMakeFiles/test_model_value.dir/test_value.cpp.o"
  "CMakeFiles/test_model_value.dir/test_value.cpp.o.d"
  "test_model_value"
  "test_model_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
