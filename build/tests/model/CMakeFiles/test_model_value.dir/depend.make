# Empty dependencies file for test_model_value.
# This may be replaced when dependencies are built.
