# Empty dependencies file for test_model_dchare.
# This may be replaced when dependencies are built.
