file(REMOVE_RECURSE
  "CMakeFiles/test_model_dchare.dir/test_dchare.cpp.o"
  "CMakeFiles/test_model_dchare.dir/test_dchare.cpp.o.d"
  "test_model_dchare"
  "test_model_dchare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_dchare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
