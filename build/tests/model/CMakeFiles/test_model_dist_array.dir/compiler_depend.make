# Empty compiler generated dependencies file for test_model_dist_array.
# This may be replaced when dependencies are built.
