file(REMOVE_RECURSE
  "CMakeFiles/test_model_expr.dir/test_expr.cpp.o"
  "CMakeFiles/test_model_expr.dir/test_expr.cpp.o.d"
  "test_model_expr"
  "test_model_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
