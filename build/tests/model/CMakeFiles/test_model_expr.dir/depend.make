# Empty dependencies file for test_model_expr.
# This may be replaced when dependencies are built.
