# Empty compiler generated dependencies file for charmx_core.
# This may be replaced when dependencies are built.
