file(REMOVE_RECURSE
  "libcharmx_core.a"
)
