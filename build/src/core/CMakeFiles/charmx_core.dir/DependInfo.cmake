
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/collection.cpp" "src/core/CMakeFiles/charmx_core.dir/collection.cpp.o" "gcc" "src/core/CMakeFiles/charmx_core.dir/collection.cpp.o.d"
  "/root/repo/src/core/lb.cpp" "src/core/CMakeFiles/charmx_core.dir/lb.cpp.o" "gcc" "src/core/CMakeFiles/charmx_core.dir/lb.cpp.o.d"
  "/root/repo/src/core/reduction.cpp" "src/core/CMakeFiles/charmx_core.dir/reduction.cpp.o" "gcc" "src/core/CMakeFiles/charmx_core.dir/reduction.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/charmx_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/charmx_core.dir/registry.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/core/CMakeFiles/charmx_core.dir/runtime.cpp.o" "gcc" "src/core/CMakeFiles/charmx_core.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/charmx_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/fiber/CMakeFiles/charmx_fiber.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/charmx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
