file(REMOVE_RECURSE
  "CMakeFiles/charmx_core.dir/collection.cpp.o"
  "CMakeFiles/charmx_core.dir/collection.cpp.o.d"
  "CMakeFiles/charmx_core.dir/lb.cpp.o"
  "CMakeFiles/charmx_core.dir/lb.cpp.o.d"
  "CMakeFiles/charmx_core.dir/reduction.cpp.o"
  "CMakeFiles/charmx_core.dir/reduction.cpp.o.d"
  "CMakeFiles/charmx_core.dir/registry.cpp.o"
  "CMakeFiles/charmx_core.dir/registry.cpp.o.d"
  "CMakeFiles/charmx_core.dir/runtime.cpp.o"
  "CMakeFiles/charmx_core.dir/runtime.cpp.o.d"
  "libcharmx_core.a"
  "libcharmx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charmx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
