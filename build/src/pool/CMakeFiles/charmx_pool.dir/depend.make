# Empty dependencies file for charmx_pool.
# This may be replaced when dependencies are built.
