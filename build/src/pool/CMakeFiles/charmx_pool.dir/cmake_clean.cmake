file(REMOVE_RECURSE
  "CMakeFiles/charmx_pool.dir/pool.cpp.o"
  "CMakeFiles/charmx_pool.dir/pool.cpp.o.d"
  "libcharmx_pool.a"
  "libcharmx_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charmx_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
