
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pool/pool.cpp" "src/pool/CMakeFiles/charmx_pool.dir/pool.cpp.o" "gcc" "src/pool/CMakeFiles/charmx_pool.dir/pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/charmx_model.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/charmx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/charmx_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/fiber/CMakeFiles/charmx_fiber.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/charmx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
