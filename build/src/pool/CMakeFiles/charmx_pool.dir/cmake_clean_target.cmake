file(REMOVE_RECURSE
  "libcharmx_pool.a"
)
