file(REMOVE_RECURSE
  "CMakeFiles/charmx_util.dir/log.cpp.o"
  "CMakeFiles/charmx_util.dir/log.cpp.o.d"
  "CMakeFiles/charmx_util.dir/options.cpp.o"
  "CMakeFiles/charmx_util.dir/options.cpp.o.d"
  "libcharmx_util.a"
  "libcharmx_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charmx_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
