file(REMOVE_RECURSE
  "libcharmx_util.a"
)
