# Empty compiler generated dependencies file for charmx_util.
# This may be replaced when dependencies are built.
