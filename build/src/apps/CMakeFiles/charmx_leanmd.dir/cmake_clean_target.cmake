file(REMOVE_RECURSE
  "libcharmx_leanmd.a"
)
