file(REMOVE_RECURSE
  "CMakeFiles/charmx_leanmd.dir/leanmd/leanmd_common.cpp.o"
  "CMakeFiles/charmx_leanmd.dir/leanmd/leanmd_common.cpp.o.d"
  "CMakeFiles/charmx_leanmd.dir/leanmd/leanmd_cpy.cpp.o"
  "CMakeFiles/charmx_leanmd.dir/leanmd/leanmd_cpy.cpp.o.d"
  "CMakeFiles/charmx_leanmd.dir/leanmd/leanmd_cx.cpp.o"
  "CMakeFiles/charmx_leanmd.dir/leanmd/leanmd_cx.cpp.o.d"
  "libcharmx_leanmd.a"
  "libcharmx_leanmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charmx_leanmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
