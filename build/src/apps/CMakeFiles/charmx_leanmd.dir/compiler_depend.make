# Empty compiler generated dependencies file for charmx_leanmd.
# This may be replaced when dependencies are built.
