# Empty compiler generated dependencies file for charmx_stencil.
# This may be replaced when dependencies are built.
