file(REMOVE_RECURSE
  "CMakeFiles/charmx_stencil.dir/stencil/stencil_common.cpp.o"
  "CMakeFiles/charmx_stencil.dir/stencil/stencil_common.cpp.o.d"
  "CMakeFiles/charmx_stencil.dir/stencil/stencil_cpy.cpp.o"
  "CMakeFiles/charmx_stencil.dir/stencil/stencil_cpy.cpp.o.d"
  "CMakeFiles/charmx_stencil.dir/stencil/stencil_cx.cpp.o"
  "CMakeFiles/charmx_stencil.dir/stencil/stencil_cx.cpp.o.d"
  "CMakeFiles/charmx_stencil.dir/stencil/stencil_mpi.cpp.o"
  "CMakeFiles/charmx_stencil.dir/stencil/stencil_mpi.cpp.o.d"
  "libcharmx_stencil.a"
  "libcharmx_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charmx_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
