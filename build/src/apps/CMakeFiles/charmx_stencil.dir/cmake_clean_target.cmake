file(REMOVE_RECURSE
  "libcharmx_stencil.a"
)
