file(REMOVE_RECURSE
  "CMakeFiles/charmx_mpi.dir/mpi.cpp.o"
  "CMakeFiles/charmx_mpi.dir/mpi.cpp.o.d"
  "libcharmx_mpi.a"
  "libcharmx_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charmx_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
