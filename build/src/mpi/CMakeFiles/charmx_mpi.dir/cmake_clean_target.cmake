file(REMOVE_RECURSE
  "libcharmx_mpi.a"
)
