# Empty dependencies file for charmx_mpi.
# This may be replaced when dependencies are built.
