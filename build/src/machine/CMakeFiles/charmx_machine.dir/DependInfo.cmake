
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/machine.cpp" "src/machine/CMakeFiles/charmx_machine.dir/machine.cpp.o" "gcc" "src/machine/CMakeFiles/charmx_machine.dir/machine.cpp.o.d"
  "/root/repo/src/machine/network.cpp" "src/machine/CMakeFiles/charmx_machine.dir/network.cpp.o" "gcc" "src/machine/CMakeFiles/charmx_machine.dir/network.cpp.o.d"
  "/root/repo/src/machine/sim_machine.cpp" "src/machine/CMakeFiles/charmx_machine.dir/sim_machine.cpp.o" "gcc" "src/machine/CMakeFiles/charmx_machine.dir/sim_machine.cpp.o.d"
  "/root/repo/src/machine/threaded_machine.cpp" "src/machine/CMakeFiles/charmx_machine.dir/threaded_machine.cpp.o" "gcc" "src/machine/CMakeFiles/charmx_machine.dir/threaded_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/charmx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
