file(REMOVE_RECURSE
  "CMakeFiles/charmx_machine.dir/machine.cpp.o"
  "CMakeFiles/charmx_machine.dir/machine.cpp.o.d"
  "CMakeFiles/charmx_machine.dir/network.cpp.o"
  "CMakeFiles/charmx_machine.dir/network.cpp.o.d"
  "CMakeFiles/charmx_machine.dir/sim_machine.cpp.o"
  "CMakeFiles/charmx_machine.dir/sim_machine.cpp.o.d"
  "CMakeFiles/charmx_machine.dir/threaded_machine.cpp.o"
  "CMakeFiles/charmx_machine.dir/threaded_machine.cpp.o.d"
  "libcharmx_machine.a"
  "libcharmx_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charmx_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
