file(REMOVE_RECURSE
  "libcharmx_machine.a"
)
