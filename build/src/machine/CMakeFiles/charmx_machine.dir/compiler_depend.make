# Empty compiler generated dependencies file for charmx_machine.
# This may be replaced when dependencies are built.
