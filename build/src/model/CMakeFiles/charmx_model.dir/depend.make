# Empty dependencies file for charmx_model.
# This may be replaced when dependencies are built.
