
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/dchare.cpp" "src/model/CMakeFiles/charmx_model.dir/dchare.cpp.o" "gcc" "src/model/CMakeFiles/charmx_model.dir/dchare.cpp.o.d"
  "/root/repo/src/model/dclass.cpp" "src/model/CMakeFiles/charmx_model.dir/dclass.cpp.o" "gcc" "src/model/CMakeFiles/charmx_model.dir/dclass.cpp.o.d"
  "/root/repo/src/model/dist_array.cpp" "src/model/CMakeFiles/charmx_model.dir/dist_array.cpp.o" "gcc" "src/model/CMakeFiles/charmx_model.dir/dist_array.cpp.o.d"
  "/root/repo/src/model/expr.cpp" "src/model/CMakeFiles/charmx_model.dir/expr.cpp.o" "gcc" "src/model/CMakeFiles/charmx_model.dir/expr.cpp.o.d"
  "/root/repo/src/model/reducers.cpp" "src/model/CMakeFiles/charmx_model.dir/reducers.cpp.o" "gcc" "src/model/CMakeFiles/charmx_model.dir/reducers.cpp.o.d"
  "/root/repo/src/model/value.cpp" "src/model/CMakeFiles/charmx_model.dir/value.cpp.o" "gcc" "src/model/CMakeFiles/charmx_model.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/charmx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/charmx_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/fiber/CMakeFiles/charmx_fiber.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/charmx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
