file(REMOVE_RECURSE
  "CMakeFiles/charmx_model.dir/dchare.cpp.o"
  "CMakeFiles/charmx_model.dir/dchare.cpp.o.d"
  "CMakeFiles/charmx_model.dir/dclass.cpp.o"
  "CMakeFiles/charmx_model.dir/dclass.cpp.o.d"
  "CMakeFiles/charmx_model.dir/dist_array.cpp.o"
  "CMakeFiles/charmx_model.dir/dist_array.cpp.o.d"
  "CMakeFiles/charmx_model.dir/expr.cpp.o"
  "CMakeFiles/charmx_model.dir/expr.cpp.o.d"
  "CMakeFiles/charmx_model.dir/reducers.cpp.o"
  "CMakeFiles/charmx_model.dir/reducers.cpp.o.d"
  "CMakeFiles/charmx_model.dir/value.cpp.o"
  "CMakeFiles/charmx_model.dir/value.cpp.o.d"
  "libcharmx_model.a"
  "libcharmx_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charmx_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
