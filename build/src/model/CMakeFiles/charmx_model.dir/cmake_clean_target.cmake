file(REMOVE_RECURSE
  "libcharmx_model.a"
)
