# Empty dependencies file for charmx_fiber.
# This may be replaced when dependencies are built.
