file(REMOVE_RECURSE
  "libcharmx_fiber.a"
)
