file(REMOVE_RECURSE
  "CMakeFiles/charmx_fiber.dir/fiber.cpp.o"
  "CMakeFiles/charmx_fiber.dir/fiber.cpp.o.d"
  "libcharmx_fiber.a"
  "libcharmx_fiber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charmx_fiber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
