# Empty compiler generated dependencies file for fig1_stencil_weak.
# This may be replaced when dependencies are built.
