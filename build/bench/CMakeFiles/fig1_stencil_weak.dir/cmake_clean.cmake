file(REMOVE_RECURSE
  "CMakeFiles/fig1_stencil_weak.dir/fig1_stencil_weak.cpp.o"
  "CMakeFiles/fig1_stencil_weak.dir/fig1_stencil_weak.cpp.o.d"
  "fig1_stencil_weak"
  "fig1_stencil_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_stencil_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
