file(REMOVE_RECURSE
  "CMakeFiles/fig3_stencil_lb.dir/fig3_stencil_lb.cpp.o"
  "CMakeFiles/fig3_stencil_lb.dir/fig3_stencil_lb.cpp.o.d"
  "fig3_stencil_lb"
  "fig3_stencil_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_stencil_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
