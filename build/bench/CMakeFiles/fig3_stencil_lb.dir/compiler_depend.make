# Empty compiler generated dependencies file for fig3_stencil_lb.
# This may be replaced when dependencies are built.
