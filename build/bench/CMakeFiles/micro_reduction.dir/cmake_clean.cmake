file(REMOVE_RECURSE
  "CMakeFiles/micro_reduction.dir/micro_reduction.cpp.o"
  "CMakeFiles/micro_reduction.dir/micro_reduction.cpp.o.d"
  "micro_reduction"
  "micro_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
