file(REMOVE_RECURSE
  "CMakeFiles/fig2_stencil_strong.dir/fig2_stencil_strong.cpp.o"
  "CMakeFiles/fig2_stencil_strong.dir/fig2_stencil_strong.cpp.o.d"
  "fig2_stencil_strong"
  "fig2_stencil_strong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_stencil_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
