# Empty dependencies file for fig2_stencil_strong.
# This may be replaced when dependencies are built.
