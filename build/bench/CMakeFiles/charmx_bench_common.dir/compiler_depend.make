# Empty compiler generated dependencies file for charmx_bench_common.
# This may be replaced when dependencies are built.
