file(REMOVE_RECURSE
  "../lib/libcharmx_bench_common.a"
)
