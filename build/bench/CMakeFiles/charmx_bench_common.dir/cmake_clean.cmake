file(REMOVE_RECURSE
  "../lib/libcharmx_bench_common.a"
  "../lib/libcharmx_bench_common.pdb"
  "CMakeFiles/charmx_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/charmx_bench_common.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charmx_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
