file(REMOVE_RECURSE
  "CMakeFiles/micro_messaging.dir/micro_messaging.cpp.o"
  "CMakeFiles/micro_messaging.dir/micro_messaging.cpp.o.d"
  "micro_messaging"
  "micro_messaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
