# Empty compiler generated dependencies file for micro_messaging.
# This may be replaced when dependencies are built.
