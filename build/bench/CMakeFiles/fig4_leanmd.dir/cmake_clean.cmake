file(REMOVE_RECURSE
  "CMakeFiles/fig4_leanmd.dir/fig4_leanmd.cpp.o"
  "CMakeFiles/fig4_leanmd.dir/fig4_leanmd.cpp.o.d"
  "fig4_leanmd"
  "fig4_leanmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_leanmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
