# Empty dependencies file for fig4_leanmd.
# This may be replaced when dependencies are built.
