file(REMOVE_RECURSE
  "CMakeFiles/micro_dispatch.dir/micro_dispatch.cpp.o"
  "CMakeFiles/micro_dispatch.dir/micro_dispatch.cpp.o.d"
  "micro_dispatch"
  "micro_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
