file(REMOVE_RECURSE
  "CMakeFiles/parallel_map.dir/parallel_map.cpp.o"
  "CMakeFiles/parallel_map.dir/parallel_map.cpp.o.d"
  "parallel_map"
  "parallel_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
