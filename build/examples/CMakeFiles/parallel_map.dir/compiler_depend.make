# Empty compiler generated dependencies file for parallel_map.
# This may be replaced when dependencies are built.
