file(REMOVE_RECURSE
  "CMakeFiles/wave1d.dir/wave1d.cpp.o"
  "CMakeFiles/wave1d.dir/wave1d.cpp.o.d"
  "wave1d"
  "wave1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
