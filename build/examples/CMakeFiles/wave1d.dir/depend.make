# Empty dependencies file for wave1d.
# This may be replaced when dependencies are built.
