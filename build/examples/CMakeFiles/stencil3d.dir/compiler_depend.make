# Empty compiler generated dependencies file for stencil3d.
# This may be replaced when dependencies are built.
