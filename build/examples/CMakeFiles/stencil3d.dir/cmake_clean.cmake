file(REMOVE_RECURSE
  "CMakeFiles/stencil3d.dir/stencil3d.cpp.o"
  "CMakeFiles/stencil3d.dir/stencil3d.cpp.o.d"
  "stencil3d"
  "stencil3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
