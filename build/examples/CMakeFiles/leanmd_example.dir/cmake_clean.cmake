file(REMOVE_RECURSE
  "CMakeFiles/leanmd_example.dir/leanmd_example.cpp.o"
  "CMakeFiles/leanmd_example.dir/leanmd_example.cpp.o.d"
  "leanmd_example"
  "leanmd_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leanmd_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
