# Empty dependencies file for leanmd_example.
# This may be replaced when dependencies are built.
