#include "fiber/fiber.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace {

using cxf::Fiber;

TEST(Fiber, RunsToCompletion) {
  int x = 0;
  Fiber f([&] { x = 42; });
  EXPECT_FALSE(f.done());
  f.resume();
  EXPECT_TRUE(f.done());
  EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldSuspendsAndResumes) {
  std::vector<int> trace;
  Fiber f([&] {
    trace.push_back(1);
    Fiber::yield();
    trace.push_back(3);
    Fiber::yield();
    trace.push_back(5);
  });
  f.resume();
  trace.push_back(2);
  f.resume();
  trace.push_back(4);
  f.resume();
  EXPECT_TRUE(f.done());
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, CurrentTracksExecution) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* seen = nullptr;
  Fiber f([&] { seen = Fiber::current(); });
  f.resume();
  EXPECT_EQ(seen, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, ResumeAfterDoneThrows) {
  Fiber f([] {});
  f.resume();
  EXPECT_THROW(f.resume(), std::logic_error);
}

TEST(Fiber, YieldOutsideFiberThrows) {
  EXPECT_THROW(Fiber::yield(), std::logic_error);
}

TEST(Fiber, ManyInterleavedFibers) {
  constexpr int kFibers = 32;
  constexpr int kSteps = 10;
  std::vector<int> counters(kFibers, 0);
  std::vector<std::unique_ptr<Fiber>> fibers;
  for (int i = 0; i < kFibers; ++i) {
    fibers.push_back(std::make_unique<Fiber>([&counters, i] {
      for (int s = 0; s < kSteps; ++s) {
        ++counters[static_cast<std::size_t>(i)];
        Fiber::yield();
      }
    }));
  }
  bool any_alive = true;
  while (any_alive) {
    any_alive = false;
    for (auto& f : fibers) {
      if (!f->done()) {
        f->resume();
        any_alive = any_alive || !f->done();
      }
    }
  }
  for (int c : counters) EXPECT_EQ(c, kSteps);
}

TEST(Fiber, LocalStateSurvivesYield) {
  long result = 0;
  Fiber f([&] {
    long acc = 0;
    for (int i = 1; i <= 100; ++i) {
      acc += i;
      if (i % 10 == 0) Fiber::yield();
    }
    result = acc;
  });
  while (!f.done()) f.resume();
  EXPECT_EQ(result, 5050);
}

TEST(Fiber, DeepStackUsageWithinLimit) {
  // Use ~64 KB of a 256 KB stack; should be fine.
  double out = 0;
  Fiber f([&] {
    volatile double buf[8192];
    for (int i = 0; i < 8192; ++i) buf[i] = i * 0.5;
    out = buf[8191];
  });
  f.resume();
  EXPECT_DOUBLE_EQ(out, 8191 * 0.5);
}

TEST(Fiber, FibersOnDifferentThreadsAreIndependent) {
  auto worker = [] {
    std::vector<int> trace;
    Fiber f([&] {
      trace.push_back(1);
      Fiber::yield();
      trace.push_back(2);
    });
    f.resume();
    f.resume();
    EXPECT_EQ(trace, (std::vector<int>{1, 2}));
  };
  std::thread t1(worker), t2(worker);
  t1.join();
  t2.join();
}

TEST(Fiber, DestructionOfSuspendedFiberIsSafe) {
  // A suspended fiber destroyed without completing must release its stack
  // without touching the (never-finished) user function again.
  int count = 0;
  {
    Fiber f([&] {
      ++count;
      Fiber::yield();
      ++count;  // never reached
    });
    f.resume();
  }
  EXPECT_EQ(count, 1);
}

}  // namespace
