// Envelope-builder equivalence: the single-pass make_msg family must
// emit exactly the bytes the legacy two-step path produced
// (pup::to_bytes(header) + insert(body)), with the pool on or off, and
// small payloads must land in the Message's inline storage.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "pup/pup.hpp"
#include "wire/envelope.hpp"
#include "wire/pool.hpp"
#include "wire/wire_headers.hpp"

namespace {

using namespace cx;
using namespace cx::wire;

EntryHeader sample_header() {
  EntryHeader h;
  h.coll = 3;
  h.idx = Index(1, 2);
  h.ep = 7;
  h.reply.pe = 1;
  h.reply.fid = 11;
  return h;
}

/// The legacy wire layout: header packed first, raw body appended.
template <typename H>
std::vector<std::byte> legacy_bytes(const H& h,
                                    const std::vector<std::byte>& body) {
  std::vector<std::byte> out = pup::to_bytes(const_cast<H&>(h));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<std::byte> random_body(std::mt19937& rng, std::size_t len) {
  std::vector<std::byte> body(len);
  for (auto& b : body) b = static_cast<std::byte>(rng() & 0xff);
  return body;
}

TEST(WireEnvelope, HeaderOnlyMatchesLegacy) {
  const EntryHeader h = sample_header();
  auto msg = make_msg(42u, 3, h);
  EXPECT_EQ(msg->handler, 42u);
  EXPECT_EQ(msg->dst_pe, 3);
  EXPECT_EQ(msg->data.to_vector(), legacy_bytes(h, {}));
}

TEST(WireEnvelope, HeaderPlusBodyMatchesLegacyRandomized) {
  std::mt19937 rng(12345);
  const EntryHeader h = sample_header();
  // Sweep body sizes across the inline/pooled boundary and the pool's
  // size classes, plus a spread of random lengths.
  std::vector<std::size_t> sizes = {0,   1,    7,    63,   64,  65,
                                    127, 128,  129,  255,  256, 257,
                                    511, 4096, 65536};
  for (int i = 0; i < 50; ++i) sizes.push_back(rng() % 8192);
  for (std::size_t len : sizes) {
    const auto body = random_body(rng, len);
    auto msg = make_msg(1u, 0, h, body);
    EXPECT_EQ(msg->data.to_vector(), legacy_bytes(h, body))
        << "body length " << len;
  }
}

TEST(WireEnvelope, PupTraversalMatchesLegacy) {
  // A pup-traversed body (the argument-tuple path) must pack the same
  // bytes as serializing the fields separately and appending them.
  BcastHeader h;
  h.coll = 5;
  h.ep = 2;
  h.root = 1;

  int a = 42;
  double b = 3.5;
  std::vector<float> c = {1.0f, 2.0f, 4.0f};
  std::string d = "hello wire";

  auto traverse = [&](pup::Er& p) {
    p | a;
    p | b;
    p | c;
    p | d;
  };

  std::vector<std::byte> body;
  {
    pup::Sizer s;
    traverse(s);
    body.resize(s.size());
    pup::Packer pk(body.data(), body.size());
    traverse(pk);
  }

  auto msg = make_msg_pup(2u, 1, h, traverse);
  EXPECT_EQ(msg->data.to_vector(), legacy_bytes(h, body));
}

TEST(WireEnvelope, PoolOnOffBytesIdentical) {
  std::mt19937 rng(999);
  const EntryHeader h = sample_header();
  const bool saved = pool_enabled();
  for (std::size_t len : {std::size_t{16}, std::size_t{300},
                          std::size_t{5000}}) {
    const auto body = random_body(rng, len);
    set_pool_enabled(true);
    auto pooled = make_msg(1u, 0, h, body);
    set_pool_enabled(false);
    auto plain = make_msg(1u, 0, h, body);
    EXPECT_EQ(pooled->data.to_vector(), plain->data.to_vector())
        << "body length " << len;
  }
  set_pool_enabled(saved);
  drain_caches();
}

TEST(WireEnvelope, SmallPayloadsAreInline) {
  const EntryHeader h = sample_header();
  const std::size_t hsize = pup::size_of(const_cast<EntryHeader&>(h));
  ASSERT_LT(hsize, Buffer::kInlineCapacity);

  // Header alone fits inline.
  auto small = make_msg(1u, 0, h);
  EXPECT_TRUE(small->data.is_inline());

  // Header + enough body to cross kInlineCapacity spills to a block.
  std::mt19937 rng(7);
  const auto body = random_body(rng, Buffer::kInlineCapacity);
  auto large = make_msg(1u, 0, h, body);
  EXPECT_FALSE(large->data.is_inline());
  EXPECT_EQ(large->data.to_vector(), legacy_bytes(h, body));
}

TEST(WireEnvelope, ClonePayloadCopiesBytes) {
  std::mt19937 rng(31);
  const EntryHeader h = sample_header();
  const auto body = random_body(rng, 700);
  auto orig = make_msg(9u, 2, h, body);
  auto copy = clone_payload(9u, 1, orig->data);
  EXPECT_EQ(copy->handler, 9u);
  EXPECT_EQ(copy->dst_pe, 1);
  EXPECT_EQ(copy->data, orig->data);
  EXPECT_NE(copy->data.data(), orig->data.data());
}

TEST(WireEnvelope, ReadHeaderRoundTrip) {
  std::mt19937 rng(64);
  const EntryHeader h = sample_header();
  const auto body = random_body(rng, 33);
  auto msg = make_msg(1u, 0, h, body);

  std::size_t body_off = 0;
  const EntryHeader back = read_header<EntryHeader>(msg->data, &body_off);
  EXPECT_EQ(back.coll, h.coll);
  EXPECT_EQ(back.idx, h.idx);
  EXPECT_EQ(back.ep, h.ep);
  EXPECT_EQ(back.reply.pe, h.reply.pe);
  EXPECT_EQ(back.reply.fid, h.reply.fid);
  ASSERT_EQ(body_off + body.size(), msg->data.size());
  EXPECT_TRUE(std::equal(body.begin(), body.end(),
                         msg->data.data() + body_off));
}

}  // namespace
