// Pool stress: interleaved alloc/recycle of payload blocks and Message
// objects from many threads, message traffic through both machine
// backends with pooling on and off, and counter sanity.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "machine/machine.hpp"
#include "pup/pup.hpp"
#include "trace/trace.hpp"
#include "wire/buffer.hpp"
#include "wire/pool.hpp"

namespace {

using namespace cx::wire;

struct Held {
  std::byte* p = nullptr;
  std::size_t cap = 0;
  std::size_t size = 0;
  std::byte tag{};
};

/// One thread's worth of churn: allocate blocks of mixed size classes,
/// stamp them, hold a random subset, verify stamps on release.
void churn(unsigned seed, int rounds) {
  std::mt19937 rng(seed);
  std::vector<Held> held;
  for (int i = 0; i < rounds; ++i) {
    if (held.size() < 32 && (held.empty() || (rng() & 1) != 0)) {
      Held h;
      // Sizes spanning sub-minimum, the pow2 classes, and above-max
      // exact allocations.
      static constexpr std::size_t kSizes[] = {1,    100,   256,  257,
                                               1024, 60000, kMaxBlock + 1};
      h.size = kSizes[rng() % (sizeof(kSizes) / sizeof(kSizes[0]))];
      h.p = alloc_block(h.size, &h.cap);
      ASSERT_NE(h.p, nullptr);
      ASSERT_GE(h.cap, h.size);
      h.tag = static_cast<std::byte>(rng() & 0xff);
      std::memset(h.p, static_cast<int>(h.tag), h.size);
      held.push_back(h);
    } else {
      const std::size_t k = rng() % held.size();
      Held h = held[k];
      held[k] = held.back();
      held.pop_back();
      // The block must still hold our stamp — nobody else may have
      // received it while we held it.
      for (std::size_t j = 0; j < h.size; j += 997) {
        ASSERT_EQ(h.p[j], h.tag) << "block corrupted at offset " << j;
      }
      free_block(h.p, h.cap);
    }
  }
  for (const Held& h : held) free_block(h.p, h.cap);
  drain_caches();
}

TEST(WirePool, InterleavedAllocRecycleAcrossThreads) {
  const bool saved = pool_enabled();
  set_pool_enabled(true);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([t] { churn(1000 + t, 4000); });
  }
  for (auto& th : threads) th.join();
  set_pool_enabled(saved);
  drain_caches();
}

TEST(WirePool, DisabledPathStillCorrect) {
  const bool saved = pool_enabled();
  set_pool_enabled(false);
  std::thread th([] { churn(77, 2000); });
  th.join();
  set_pool_enabled(saved);
}

TEST(WirePool, ReuseServesFromCacheAndCounts) {
  const bool saved = pool_enabled();
  set_pool_enabled(true);
  drain_caches();
  cx::trace::reset_wire_stats();

  std::size_t cap1 = 0;
  std::byte* p1 = alloc_block(512, &cap1);
  free_block(p1, cap1);
  std::size_t cap2 = 0;
  std::byte* p2 = alloc_block(400, &cap2);  // same 512-byte class
  EXPECT_EQ(p2, p1) << "freed block should be recycled to the same thread";
  EXPECT_EQ(cap2, cap1);
  free_block(p2, cap2);

  const cx::trace::WireStats w = cx::trace::wire_stats();
  EXPECT_EQ(w.buf_allocs, 1u);
  EXPECT_EQ(w.buf_hits, 1u);
  EXPECT_EQ(w.buf_recycled, 2u);

  set_pool_enabled(saved);
  drain_caches();
}

TEST(WirePool, MessageObjectsRecycle) {
  const bool saved = pool_enabled();
  set_pool_enabled(true);
  drain_caches();
  cx::trace::reset_wire_stats();

  {
    auto m1 = std::make_unique<cxm::Message>();
    m1.reset();
    auto m2 = std::make_unique<cxm::Message>();
    m2.reset();
  }
  const cx::trace::WireStats w = cx::trace::wire_stats();
  EXPECT_EQ(w.msg_allocs, 1u);
  EXPECT_EQ(w.msg_hits, 1u);
  EXPECT_EQ(w.msg_recycled, 2u);

  set_pool_enabled(saved);
  drain_caches();
}

/// Cross-PE traffic on a real backend: every payload must arrive intact
/// while Message objects and payload blocks recycle underneath.
void run_backend_traffic(cxm::Backend backend, bool pooled) {
  const bool saved = pool_enabled();
  set_pool_enabled(pooled);

  cxm::MachineConfig cfg;
  cfg.num_pes = 4;
  cfg.backend = backend;
  auto m = cxm::make_machine(cfg);

  constexpr int kHops = 64;
  std::atomic<int> done{0};
  std::atomic<int> bad{0};
  std::uint32_t h = 0;
  h = m->register_handler([&](cxm::MessagePtr msg) {
    pup::Unpacker u(msg->data.data(), msg->data.size());
    int hop = 0;
    std::vector<std::uint32_t> body;
    u | hop;
    u | body;
    // Payload integrity: body[i] == seed + i, seed derived from hop 0.
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (body[i] != body[0] + i) bad.fetch_add(1);
    }
    if (hop >= kHops) {
      if (done.fetch_add(1) + 1 == m->num_pes()) m->stop();
      return;
    }
    ++hop;
    auto out = std::make_unique<cxm::Message>();
    out->handler = h;
    out->dst_pe = (m->current_pe() + 1) % m->num_pes();
    pup::Sizer s;
    s | hop;
    s | body;
    out->data.resize_discard(s.size());
    pup::Packer pk(out->data.data(), out->data.size());
    pk | hop;
    pk | body;
    m->send(std::move(out));
  });

  std::mt19937 rng(5);
  for (int pe = 0; pe < m->num_pes(); ++pe) {
    int hop = 0;
    // Mix of SBO-sized and pooled-block-sized payloads in flight.
    std::vector<std::uint32_t> body(pe % 2 == 0 ? 4 : 300);
    const std::uint32_t seed = rng();
    for (std::size_t i = 0; i < body.size(); ++i) {
      body[i] = seed + static_cast<std::uint32_t>(i);
    }
    auto msg = std::make_unique<cxm::Message>();
    msg->handler = h;
    msg->dst_pe = pe;
    pup::Sizer s;
    s | hop;
    s | body;
    msg->data.resize_discard(s.size());
    pup::Packer pk(msg->data.data(), msg->data.size());
    pk | hop;
    pk | body;
    m->send(std::move(msg));
  }
  m->run();
  EXPECT_EQ(done.load(), m->num_pes());
  EXPECT_EQ(bad.load(), 0);

  set_pool_enabled(saved);
  drain_caches();
}

TEST(WirePool, ThreadedBackendTrafficPooled) {
  cx::trace::reset_wire_stats();
  run_backend_traffic(cxm::Backend::Threaded, true);
  const cx::trace::WireStats w = cx::trace::wire_stats();
  // Warm pool: messages and large payload blocks must actually recycle.
  EXPECT_GT(w.msg_recycled, 0u);
  EXPECT_GT(w.msg_hits, 0u);
  EXPECT_GT(w.buf_hits, 0u);
}

TEST(WirePool, ThreadedBackendTrafficUnpooled) {
  run_backend_traffic(cxm::Backend::Threaded, false);
}

TEST(WirePool, SimBackendTrafficPooled) {
  run_backend_traffic(cxm::Backend::Sim, true);
}

TEST(WirePool, SimBackendTrafficUnpooled) {
  run_backend_traffic(cxm::Backend::Sim, false);
}

}  // namespace
