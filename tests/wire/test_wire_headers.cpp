// PUP round-trip coverage for every wire header and checkpoint blob in
// wire/wire_headers.hpp: pack -> unpack -> re-pack must be
// byte-identical, and the packed stream must be fully consumed.

#include <gtest/gtest.h>

#include <vector>

#include "pup/pup.hpp"
#include "wire/wire_headers.hpp"

namespace {

using namespace cx;
using namespace cx::wire;

template <typename H>
void expect_roundtrip(H& h) {
  const std::vector<std::byte> packed = pup::to_bytes(h);
  ASSERT_FALSE(packed.empty());
  pup::Unpacker u(packed.data(), packed.size());
  H back{};
  u | back;
  EXPECT_EQ(u.offset(), packed.size()) << "unpack did not consume the stream";
  EXPECT_EQ(pup::to_bytes(back), packed) << "re-pack diverged";
}

ReplyTo reply(int pe, FutureId fid) {
  ReplyTo r;
  r.pe = pe;
  r.fid = fid;
  return r;
}

TEST(WireHeaders, Entry) {
  EntryHeader h;
  h.coll = 7;
  h.idx = Index(3, 1, 4);
  h.ep = 42;
  h.reply = reply(2, 99);
  h.bcast_done = reply(1, 5);
  expect_roundtrip(h);
}

TEST(WireHeaders, Bcast) {
  BcastHeader h;
  h.coll = 9;
  h.ep = 13;
  h.reply = reply(3, 21);
  h.root = -2;
  expect_roundtrip(h);
}

TEST(WireHeaders, BcastDone) {
  BcastDoneHeader h;
  h.coll = 4;
  h.reply = reply(0, 77);
  h.count = 123456789;
  expect_roundtrip(h);
}

TEST(WireHeaders, Reduce) {
  ReduceHeader h;
  h.coll = 2;
  h.red_no = 17;
  h.combiner = 3;
  h.cb = Callback::to_element(2, Index(5), 8);
  h.count = 64;
  expect_roundtrip(h);
}

TEST(WireHeaders, Future) {
  FutureHeader h;
  h.fid = 0xdeadbeefcafeull;
  expect_roundtrip(h);
}

TEST(WireHeaders, Migrate) {
  MigrateHeader h;
  h.coll = 11;
  h.idx = Index(2, 2);
  h.red_no = 6;
  h.for_lb = true;
  expect_roundtrip(h);
}

TEST(WireHeaders, LocUpdate) {
  LocUpdateHeader h;
  h.coll = 3;
  h.idx = Index(9);
  h.pe = 5;
  expect_roundtrip(h);
}

TEST(WireHeaders, Insert) {
  InsertHeader h;
  h.coll = 6;
  h.idx = Index(1, 2, 3);
  h.ctor = 4;
  h.on_pe = 2;
  h.routed = true;
  expect_roundtrip(h);
}

TEST(WireHeaders, DoneInserting) {
  DoneInsertingHeader h;
  h.coll = 8;
  h.root = 1;
  h.reply = reply(1, 33);
  expect_roundtrip(h);
}

TEST(WireHeaders, InsertCount) {
  InsertCountHeader h;
  h.coll = 5;
  h.count = 1000;
  h.reply = reply(2, 44);
  expect_roundtrip(h);
}

TEST(WireHeaders, SetSize) {
  SetSizeHeader h;
  h.coll = 5;
  h.size = 4096;
  h.root = 3;
  h.reply = reply(0, 55);
  expect_roundtrip(h);
}

TEST(WireHeaders, SizeAck) {
  SizeAckHeader h;
  h.coll = 5;
  h.reply = reply(1, 66);
  expect_roundtrip(h);
}

TEST(WireHeaders, LbCmd) {
  LbCmdHeader h;
  h.coll = 12;
  h.idx = Index(7, 7);
  h.to_pe = 3;
  expect_roundtrip(h);
}

TEST(WireHeaders, LbAck) {
  LbAckHeader h;
  h.coll = 12;
  expect_roundtrip(h);
}

TEST(WireHeaders, LbResume) {
  LbResumeHeader h;
  h.coll = 12;
  h.root = 2;
  expect_roundtrip(h);
}

TEST(WireHeaders, QdStart) {
  QdStartHeader h;
  h.cb = Callback::to_broadcast(4, 19);
  expect_roundtrip(h);
}

TEST(WireHeaders, QdProbe) {
  QdProbeHeader h;
  h.phase = 31;
  expect_roundtrip(h);
}

TEST(WireHeaders, QdReply) {
  QdReplyHeader h;
  h.phase = 31;
  h.created = 1000;
  h.processed = 998;
  expect_roundtrip(h);
}

TEST(WireHeaders, Create) {
  CreateHeader h;
  h.info.id = 14;
  h.info.kind = CollectionKind::SparseArray;
  h.info.dims = Index(4, 4);
  h.info.ndims = 2;
  h.info.size = 16;
  h.info.ctor = 2;
  h.info.ctor_args = {std::byte{1}, std::byte{2}, std::byte{3}};
  h.info.map_name = "rr";
  h.info.fixed_pe = 1;
  h.info.inserting = true;
  h.root = 0;
  expect_roundtrip(h);
}

TEST(WireHeaders, FtFailure) {
  FtFailureHeader h;
  h.failure.pe = 2;
  h.failure.kind = cx::ft::FailureKind::Crashed;
  h.failure.time = 0.125;
  expect_roundtrip(h);
}

TEST(WireHeaders, Ckpt) {
  CkptHeader h;
  h.epoch = 3;
  h.reply = reply(0, 9);
  expect_roundtrip(h);
}

TEST(WireHeaders, CkptAck) {
  CkptAckHeader h;
  h.epoch = 3;
  h.reply = reply(0, 9);
  expect_roundtrip(h);
}

TEST(WireHeaders, Restore) {
  RestoreHeader h;
  h.epoch = 2;
  h.reply = reply(1, 10);
  expect_roundtrip(h);
}

TEST(WireHeaders, RestoreAck) {
  RestoreAckHeader h;
  h.reply = reply(1, 10);
  expect_roundtrip(h);
}

TEST(WireHeaders, CheckpointBlobs) {
  ElementBlob eb;
  eb.idx = Index(2, 3);
  eb.red_no = 4;
  eb.state = {std::byte{9}, std::byte{8}};

  CollBlob cb;
  cb.info.id = 1;
  cb.info.size = 2;
  cb.elements.push_back(eb);
  cb.overrides.push_back({Index(5), 3});

  RedBlob rb;
  rb.coll = 1;
  rb.red_no = 2;
  rb.count = 3;
  rb.has_acc = true;
  rb.acc = {std::byte{7}};
  rb.combiner = 1;
  rb.cb = Callback::to_future(reply(0, 12));

  PeBlob pb;
  pb.colls.push_back(cb);
  pb.reductions.push_back(rb);
  pb.created = 100;
  pb.processed = 99;
  pb.next_future = 12;
  expect_roundtrip(pb);
}

}  // namespace
