// cx::wire aggregation (--wire-agg): toggle parsing, batch wire format
// round-trips, the one-open-batch ordering rule, per sender->destination
// FIFO across flush boundaries on both backends, byte-identical
// application results with aggregation off vs on, exactly-once delivery
// under seeded faults (protocol traffic is exempt, batches enroll as
// units), and deterministic DES timer flushes.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <vector>

#include "core/charm.hpp"
#include "trace/trace.hpp"
#include "wire/agg.hpp"
#include "wire/pool.hpp"

namespace {

using namespace cx::wire;

/// Restore the process-global aggregation switches after each test (the
/// whole suite shares one binary).
struct AggGuard {
  bool enabled = agg_enabled();
  AggConfig cfg = agg_config();
  ~AggGuard() {
    set_agg_enabled(enabled);
    set_agg_config(cfg);
  }
};

cxm::MessagePtr make_msg(std::uint32_t handler, int dst, std::size_t bytes,
                         std::byte fill) {
  auto m = std::make_unique<cxm::Message>();
  m->handler = handler;
  m->src_pe = 0;
  m->dst_pe = dst;
  std::vector<std::byte> payload(bytes, fill);
  m->data.assign(payload.data(), payload.size());
  return m;
}

// ---------------------------------------------------------------------------
// parse_toggle — the CHARMX_WIRE_POOL bug this PR fixes: any value
// starting with 'o' other than "on" used to parse as off, and the
// documented "false" did not.

TEST(ParseToggle, OnlyExplicitOffValuesDisable) {
  EXPECT_FALSE(parse_toggle("0", true));
  EXPECT_FALSE(parse_toggle("off", true));
  EXPECT_FALSE(parse_toggle("OFF", true));
  EXPECT_FALSE(parse_toggle("false", true));
  EXPECT_FALSE(parse_toggle("False", true));
  EXPECT_TRUE(parse_toggle("on", false));
  EXPECT_TRUE(parse_toggle("1", false));
  EXPECT_TRUE(parse_toggle("true", false));
  // Regression: these begin with 'o' / 'f' but are not "off"/"false".
  EXPECT_TRUE(parse_toggle("owl", false));
  EXPECT_TRUE(parse_toggle("offbeat", false));
  EXPECT_TRUE(parse_toggle("fast", false));
}

TEST(ParseToggle, UnsetUsesDefault) {
  EXPECT_TRUE(parse_toggle(nullptr, true));
  EXPECT_FALSE(parse_toggle(nullptr, false));
}

// ---------------------------------------------------------------------------
// Batch format round-trip through PeAggregator.

TEST(AggBatch, RoundTripPreservesOrderAndContents) {
  AggConfig cfg;
  cfg.flush_count = 4;
  PeAggregator a(cfg);
  constexpr int kMsgs = 6;
  for (int i = 0; i < kMsgs; ++i) {
    ASSERT_TRUE(a.dst_pending(1) == (i % 4 != 0));
    (void)a.absorb(make_msg(100u + static_cast<std::uint32_t>(i), /*dst=*/1,
                            /*bytes=*/static_cast<std::size_t>(i + 1),
                            std::byte{static_cast<unsigned char>(i)}));
  }
  a.flush_all(AggFlush::Idle);  // seal the 2-message remainder
  EXPECT_FALSE(a.has_pending());

  int next = 0;
  for (cxm::MessagePtr batch = a.next_ready(); batch != nullptr;
       batch = a.next_ready()) {
    EXPECT_EQ(batch->dst_pe, 1);
    EXPECT_EQ(batch->wire_flags, cxm::kWireAggBatch);
    const bool ok = for_each_agg_record(
        batch->data,
        [&](std::uint32_t handler, const std::byte* p, std::uint32_t len) {
          EXPECT_EQ(handler, 100u + static_cast<std::uint32_t>(next));
          ASSERT_EQ(len, static_cast<std::uint32_t>(next + 1));
          for (std::uint32_t j = 0; j < len; ++j) {
            EXPECT_EQ(p[j], std::byte{static_cast<unsigned char>(next)});
          }
          ++next;
        });
    EXPECT_TRUE(ok);
  }
  EXPECT_EQ(next, kMsgs);  // every message, in send order, exactly once
}

TEST(AggBatch, MalformedPayloadsAreRejected) {
  AggConfig cfg;
  PeAggregator a(cfg);
  (void)a.absorb(make_msg(7, 1, 16, std::byte{0xab}));
  a.flush_all(AggFlush::Idle);
  cxm::MessagePtr batch = a.next_ready();
  ASSERT_NE(batch, nullptr);

  auto count_records = [](const Buffer& b) {
    int n = 0;
    const bool ok =
        for_each_agg_record(b, [&](std::uint32_t, const std::byte*,
                                   std::uint32_t) { ++n; });
    return ok ? n : -1;
  };
  EXPECT_EQ(count_records(batch->data), 1);

  Buffer truncated;
  truncated.assign(batch->data.data(), batch->data.size() - 1);
  EXPECT_EQ(count_records(truncated), -1);

  Buffer short_header;
  short_header.assign(batch->data.data(), 2);
  EXPECT_EQ(count_records(short_header), -1);

  // Count claims more records than the payload holds.
  Buffer lying;
  lying.assign(batch->data.data(), batch->data.size());
  const std::uint32_t big = 9;
  std::memcpy(lying.data(), &big, sizeof(big));
  EXPECT_EQ(count_records(lying), -1);
}

TEST(AggBatch, ClassSwitchSealsOldBatchFirst) {
  AggConfig cfg;
  PeAggregator a(cfg);
  (void)a.absorb(make_msg(1, 5, 100, std::byte{1}));   // class 0 (<=128)
  (void)a.absorb(make_msg(2, 5, 300, std::byte{2}));   // class 1 -> seal
  ASSERT_TRUE(a.dst_pending(5));                       // class-1 batch open
  a.flush_all(AggFlush::Idle);

  std::vector<std::uint32_t> handlers;
  for (cxm::MessagePtr b = a.next_ready(); b != nullptr; b = a.next_ready()) {
    (void)for_each_agg_record(
        b->data, [&](std::uint32_t h, const std::byte*, std::uint32_t) {
          handlers.push_back(h);
        });
  }
  // The class-0 batch was sealed by the switch, so it drains first.
  ASSERT_EQ(handlers.size(), 2u);
  EXPECT_EQ(handlers[0], 1u);
  EXPECT_EQ(handlers[1], 2u);
}

TEST(AggBatch, StaleTimerGenerationsAreNoOps) {
  AggConfig cfg;
  PeAggregator a(cfg);
  (void)a.absorb(make_msg(1, 3, 8, std::byte{1}));
  const std::uint64_t gen = a.generation(3);
  a.flush_timer(3, gen + 1);  // wrong stamp: nothing happens
  EXPECT_TRUE(a.dst_pending(3));
  a.flush_timer(3, gen);
  EXPECT_FALSE(a.dst_pending(3));
  a.flush_timer(3, gen);  // batch already sealed: no-op again
  EXPECT_NE(a.next_ready(), nullptr);
  EXPECT_EQ(a.next_ready(), nullptr);
}

// ---------------------------------------------------------------------------
// Full-runtime workload: a ring of group chares, each streaming `msgs`
// sequenced messages to its successor PE. In strict mode the reduced
// value folds sequence numbers order-sensitively, so ANY reordering of a
// sender's stream changes the result; in lax mode (for fault injection,
// where delayed singles may legally pass earlier ones) the fold is
// commutative and checks exactly-once delivery instead.

struct SeqRing : cx::Chare {
  std::uint64_t hash = 1469598103934665603ull;
  std::uint64_t sum = 0;
  int next_seq = 0;
  bool in_order = true;
  int received = 0;
  int expect = -1;  ///< -1 until start() arrives (ring sends can race it)
  bool strict_ = true;
  cx::Future<double> done;

  void ready(cx::Future<void> f) { contribute(cx::cb(f)); }

  void start(cx::CollectionProxy<SeqRing> ring, int msgs, int strict,
             cx::Future<double> f) {
    done = f;
    strict_ = strict != 0;
    expect = msgs;
    const int next = (cx::my_pe() + 1) % cx::num_pes();
    for (int i = 0; i < msgs; ++i) {
      ring[next].send<&SeqRing::recv>(i, i * 3 + 1);
    }
    maybe_finish();
  }

  void recv(int seq, int val) {
    in_order = in_order && seq == next_seq;
    ++next_seq;
    hash = hash * 1099511628211ull +
           (static_cast<std::uint64_t>(seq) * 31u +
            static_cast<std::uint64_t>(val));
    sum += static_cast<std::uint64_t>(seq) + static_cast<std::uint64_t>(val);
    ++received;
    maybe_finish();
  }

  void maybe_finish() {
    if (expect < 0 || received != expect) return;
    double v;
    if (strict_) {
      v = in_order ? static_cast<double>(hash & 0xffffffull) : -1.0e15;
    } else {
      v = static_cast<double>(sum);
    }
    contribute(v, cx::reducer::sum<double>(), cx::cb(done));
  }
};

struct RingRun {
  double value = 0.0;
  double makespan = 0.0;
  cx::trace::WireStats wire;
};

RingRun run_ring(cx::RuntimeConfig cfg, bool agg_on, int msgs,
                 bool strict = true) {
  AggGuard guard;
  set_agg_enabled(agg_on);
  cx::trace::reset_wire_stats();
  RingRun out;
  cx::Runtime rt(cfg);
  rt.run([&] {
    auto ring = cx::create_group<SeqRing>();
    // Barrier: every member exists before the streams start, so the
    // ordered window never crosses creation-in-flight buffering.
    auto up = cx::make_future<void>();
    ring.broadcast<&SeqRing::ready>(up);
    up.get();
    auto f = cx::make_future<double>();
    ring.broadcast<&SeqRing::start>(ring, msgs, strict ? 1 : 0, f);
    out.value = f.get();
    cx::exit();
  });
  out.makespan = rt.sim_makespan();
  out.wire = cx::trace::wire_stats();
  return out;
}

cx::RuntimeConfig sim_cfg(int pes) {
  cx::RuntimeConfig cfg;
  cfg.machine.num_pes = pes;
  cfg.machine.backend = cxm::Backend::Sim;
  return cfg;
}

cx::RuntimeConfig threaded_cfg(int pes) {
  cx::RuntimeConfig cfg;
  cfg.machine.num_pes = pes;
  cfg.machine.backend = cxm::Backend::Threaded;
  return cfg;
}

// Streams long enough to seal batches by count (64) and bytes, plus a
// remainder only the idle/timer path can flush.
constexpr int kMsgs = 300;

TEST(AggRuntime, SimFifoAcrossFlushBoundaries) {
  const RingRun r = run_ring(sim_cfg(4), /*agg_on=*/true, kMsgs);
  EXPECT_GE(r.value, 0.0) << "a PE saw its stream out of order";
  EXPECT_GT(r.wire.agg_batches, 0u);
  EXPECT_GT(r.wire.agg_msgs, 0u);
}

TEST(AggRuntime, ThreadedFifoAcrossFlushBoundaries) {
  const RingRun r = run_ring(threaded_cfg(4), /*agg_on=*/true, kMsgs);
  EXPECT_GE(r.value, 0.0) << "a PE saw its stream out of order";
  EXPECT_GT(r.wire.agg_batches, 0u);
}

TEST(AggRuntime, SimResultByteIdenticalOffVsOn) {
  const RingRun off = run_ring(sim_cfg(4), false, kMsgs);
  const RingRun on = run_ring(sim_cfg(4), true, kMsgs);
  EXPECT_GE(off.value, 0.0);
  EXPECT_EQ(off.value, on.value);
  EXPECT_EQ(off.wire.agg_batches, 0u);
  // Aggregation moved real traffic off the per-envelope path...
  EXPECT_LT(on.wire.transport_msgs, off.wire.transport_msgs / 4);
  // ...and made virtual time better, not worse.
  EXPECT_LT(on.makespan, off.makespan);
}

TEST(AggRuntime, ThreadedResultByteIdenticalOffVsOn) {
  const RingRun off = run_ring(threaded_cfg(4), false, kMsgs);
  const RingRun on = run_ring(threaded_cfg(4), true, kMsgs);
  EXPECT_GE(off.value, 0.0);
  EXPECT_EQ(off.value, on.value);
  EXPECT_LT(on.wire.transport_msgs, off.wire.transport_msgs / 4);
}

// Seeded drop/dup/delay with the reliable protocol on: protocol traffic
// (seq/ack/retransmits) is exempt from aggregation, batches enroll as
// single units, and every application message still arrives exactly
// once. Delayed singles may legally pass earlier messages (pre-existing
// ft semantics), so the invariant is the commutative exactly-once sum.
TEST(AggRuntime, FtInjectionStillDeliversExactlyOnce) {
  auto cfg = sim_cfg(4);
  cfg.machine.faults.seed = 42;
  cfg.machine.faults.drop = 0.05;
  cfg.machine.faults.dup = 0.05;
  cfg.machine.faults.delay = 0.1;
  cfg.machine.faults.delay_s = 2.0e-4;
  cfg.machine.faults.reliable = true;
  cfg.machine.faults.retry.base_s = 1.0e-3;

  // Per PE: sum_i (i + 3i+1) over kMsgs messages; 4 PEs.
  const std::uint64_t per_pe =
      static_cast<std::uint64_t>(kMsgs) * (2ull * (kMsgs - 1)) + kMsgs;
  const double want = 4.0 * static_cast<double>(per_pe);

  const RingRun r = run_ring(cfg, /*agg_on=*/true, kMsgs, /*strict=*/false);
  EXPECT_EQ(r.value, want);
  EXPECT_GT(r.wire.agg_batches, 0u);
}

// Short streams never hit the count/bytes thresholds: only the DES
// flush timer can seal them, and two identical runs must replay the
// exact same virtual timeline.
TEST(AggRuntime, SimIdleFlushIsDeterministic) {
  const RingRun a = run_ring(sim_cfg(4), true, /*msgs=*/10);
  const RingRun b = run_ring(sim_cfg(4), true, /*msgs=*/10);
  EXPECT_GE(a.value, 0.0);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_GT(a.wire.agg_flush_idle, 0u);
  EXPECT_EQ(a.wire.agg_flush_idle, b.wire.agg_flush_idle);
  EXPECT_EQ(a.wire.agg_batches, b.wire.agg_batches);
}

}  // namespace
