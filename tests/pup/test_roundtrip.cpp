// Property-style randomized roundtrip tests for the PUP framework.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "pup/pup.hpp"
#include "util/rng.hpp"

namespace {

std::string random_string(cxu::Rng& rng, std::size_t max_len) {
  std::string s(rng.below(max_len + 1), '\0');
  for (auto& c : s) c = static_cast<char>(rng.range(0, 255));
  return s;
}

struct Record {
  std::int64_t id = 0;
  std::string name;
  std::vector<double> values;
  std::map<std::string, std::int32_t> tags;
  void pup(pup::Er& p) {
    p | id;
    p | name;
    p | values;
    p | tags;
  }
  bool operator==(const Record&) const = default;
};

Record random_record(cxu::Rng& rng) {
  Record r;
  r.id = static_cast<std::int64_t>(rng.next());
  r.name = random_string(rng, 40);
  r.values.resize(rng.below(50));
  for (auto& v : r.values) v = rng.uniform(-1e6, 1e6);
  const auto ntags = rng.below(8);
  for (std::uint64_t i = 0; i < ntags; ++i) {
    r.tags[random_string(rng, 10)] = static_cast<std::int32_t>(rng.next());
  }
  return r;
}

class PupRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PupRoundtrip, RandomRecordsSurviveRoundtrip) {
  cxu::Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    Record r = random_record(rng);
    auto bytes = pup::to_bytes(r);
    EXPECT_EQ(pup::size_of(r), bytes.size());
    Record back = pup::from_bytes<Record>(bytes);
    EXPECT_EQ(back, r);
  }
}

TEST_P(PupRoundtrip, VectorsOfRecords) {
  cxu::Rng rng(GetParam() * 77 + 1);
  std::vector<Record> rs;
  for (int i = 0; i < 20; ++i) rs.push_back(random_record(rng));
  auto bytes = pup::to_bytes(rs);
  auto back = pup::from_bytes<std::vector<Record>>(bytes);
  EXPECT_EQ(back, rs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PupRoundtrip,
                         ::testing::Values(1u, 2u, 3u, 42u, 999u, 31337u));

}  // namespace
