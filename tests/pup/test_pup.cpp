#include "pup/pup.hpp"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

namespace {

template <typename T>
T roundtrip(T value) {
  auto bytes = pup::to_bytes(value);
  return pup::from_bytes<T>(bytes);
}

TEST(Pup, Arithmetic) {
  EXPECT_EQ(roundtrip<int>(42), 42);
  EXPECT_EQ(roundtrip<std::int64_t>(-7000000000LL), -7000000000LL);
  EXPECT_DOUBLE_EQ(roundtrip<double>(3.25), 3.25);
  EXPECT_FLOAT_EQ(roundtrip<float>(-1.5f), -1.5f);
  EXPECT_EQ(roundtrip<char>('x'), 'x');
  EXPECT_EQ(roundtrip<bool>(true), true);
}

enum class Color : std::uint8_t { Red = 1, Green = 2 };

TEST(Pup, Enum) { EXPECT_EQ(roundtrip(Color::Green), Color::Green); }

TEST(Pup, String) {
  EXPECT_EQ(roundtrip<std::string>("hello world"), "hello world");
  EXPECT_EQ(roundtrip<std::string>(""), "");
  std::string with_nul("a\0b", 3);
  EXPECT_EQ(roundtrip(with_nul), with_nul);
}

TEST(Pup, VectorTrivial) {
  std::vector<double> v = {1.0, 2.5, -3.75};
  EXPECT_EQ(roundtrip(v), v);
  EXPECT_EQ(roundtrip(std::vector<int>{}), std::vector<int>{});
}

TEST(Pup, VectorOfStrings) {
  std::vector<std::string> v = {"a", "", "long string here"};
  EXPECT_EQ(roundtrip(v), v);
}

TEST(Pup, VectorBool) {
  std::vector<bool> v = {true, false, true, true};
  EXPECT_EQ(roundtrip(v), v);
}

TEST(Pup, PairTupleArray) {
  auto p = std::pair<int, std::string>{7, "seven"};
  EXPECT_EQ(roundtrip(p), p);
  auto t = std::tuple<int, double, std::string>{1, 2.5, "x"};
  EXPECT_EQ(roundtrip(t), t);
  std::array<int, 4> a = {1, 2, 3, 4};
  EXPECT_EQ(roundtrip(a), a);
}

TEST(Pup, Optional) {
  std::optional<int> some = 5, none;
  EXPECT_EQ(roundtrip(some), some);
  EXPECT_EQ(roundtrip(none), none);
}

TEST(Pup, Maps) {
  std::map<std::string, int> m = {{"a", 1}, {"b", 2}};
  EXPECT_EQ(roundtrip(m), m);
  std::unordered_map<int, std::string> um = {{1, "x"}, {2, "y"}};
  EXPECT_EQ(roundtrip(um), um);
  std::set<int> s = {3, 1, 2};
  EXPECT_EQ(roundtrip(s), s);
}

struct Inner {
  int a = 0;
  std::string s;
  void pup(pup::Er& p) {
    p | a;
    p | s;
  }
  bool operator==(const Inner&) const = default;
};

struct Outer {
  double x = 0;
  std::vector<Inner> inners;
  std::map<int, Inner> by_id;
  void pup(pup::Er& p) {
    p | x;
    p | inners;
    p | by_id;
  }
  bool operator==(const Outer&) const = default;
};

TEST(Pup, NestedUserTypes) {
  Outer o;
  o.x = 9.5;
  o.inners = {{1, "one"}, {2, "two"}};
  o.by_id = {{10, {10, "ten"}}};
  EXPECT_EQ(roundtrip(o), o);
}

TEST(Pup, SizerMatchesPackedSize) {
  Outer o;
  o.inners = {{5, "five"}};
  const auto bytes = pup::to_bytes(o);
  EXPECT_EQ(pup::size_of(o), bytes.size());
}

TEST(Pup, PackerOverflowThrows) {
  std::vector<int> v = {1, 2, 3};
  std::byte small[4];
  pup::Packer pk(small, sizeof(small));
  EXPECT_THROW(pk | v, std::length_error);
}

TEST(Pup, UnpackerUnderflowThrows) {
  std::byte tiny[2] = {};
  pup::Unpacker u(tiny, sizeof(tiny));
  std::string s;
  EXPECT_THROW(u | s, std::length_error);
}

TEST(Pup, PackArgs) {
  int a = 3;
  std::string b = "hi";
  std::vector<double> c = {1.5};
  auto buf = pup::pack_args(a, b, c);
  pup::Unpacker u(buf.data(), buf.size());
  int a2;
  std::string b2;
  std::vector<double> c2;
  u | a2;
  u | b2;
  u | c2;
  EXPECT_EQ(a2, a);
  EXPECT_EQ(b2, b);
  EXPECT_EQ(c2, c);
  EXPECT_EQ(u.offset(), buf.size());
}

}  // namespace
