// Expression engine: the eval() for when/wait condition strings.

#include "model/expr.hpp"

#include <gtest/gtest.h>

namespace {

using namespace cpy;

NameResolver env(Dict self_attrs, std::vector<std::string> params = {},
                 Args args = {}) {
  auto self = std::make_shared<Value>(Value::dict(std::move(self_attrs)));
  auto p = std::make_shared<std::vector<std::string>>(std::move(params));
  auto a = std::make_shared<Args>(std::move(args));
  return [self, p, a](const std::string& name) {
    return make_resolver(*self, *p, *a)(name);
  };
}

Value ev(const std::string& src, const NameResolver& names) {
  return Expr::compile(src).eval(names);
}

TEST(Expr, Literals) {
  auto e = env({});
  EXPECT_EQ(ev("42", e).as_int(), 42);
  EXPECT_DOUBLE_EQ(ev("2.5", e).as_real(), 2.5);
  EXPECT_DOUBLE_EQ(ev("1e3", e).as_real(), 1000.0);
  EXPECT_EQ(ev("'hello'", e).as_str(), "hello");
  EXPECT_TRUE(ev("True", e).as_bool());
  EXPECT_FALSE(ev("False", e).as_bool());
  EXPECT_TRUE(ev("None", e).is_none());
}

TEST(Expr, Arithmetic) {
  auto e = env({});
  EXPECT_EQ(ev("2 + 3 * 4", e).as_int(), 14);
  EXPECT_EQ(ev("(2 + 3) * 4", e).as_int(), 20);
  EXPECT_EQ(ev("-5 + 2", e).as_int(), -3);
  EXPECT_DOUBLE_EQ(ev("7 / 2", e).as_real(), 3.5);  // true division
  EXPECT_EQ(ev("7 % 3", e).as_int(), 1);
  EXPECT_EQ(ev("-7 % 3", e).as_int(), 2);  // Python-style modulo
  EXPECT_EQ(ev("'a' + 'b'", e).as_str(), "ab");
}

TEST(Expr, Comparisons) {
  auto e = env({});
  EXPECT_TRUE(ev("1 < 2", e).as_bool());
  EXPECT_TRUE(ev("2 <= 2", e).as_bool());
  EXPECT_FALSE(ev("3 == 4", e).as_bool());
  EXPECT_TRUE(ev("3 != 4", e).as_bool());
  EXPECT_TRUE(ev("'abc' == 'abc'", e).as_bool());
  EXPECT_TRUE(ev("5 >= 5 ", e).as_bool());
  EXPECT_TRUE(ev("2 == 2.0", e).as_bool());
}

TEST(Expr, BooleanLogicShortCircuits) {
  auto e = env({});
  EXPECT_TRUE(ev("True and True", e).as_bool());
  EXPECT_FALSE(ev("True and False", e).as_bool());
  EXPECT_TRUE(ev("False or True", e).as_bool());
  EXPECT_TRUE(ev("not False", e).as_bool());
  // Short circuit: the undefined name is never evaluated.
  EXPECT_FALSE(ev("False and undefined_name", e).truthy());
  EXPECT_TRUE(ev("True or undefined_name", e).truthy());
  // Python semantics: and/or return operands, not booleans.
  EXPECT_EQ(ev("0 or 7", e).as_int(), 7);
  EXPECT_EQ(ev("3 and 5", e).as_int(), 5);
}

TEST(Expr, SelfAttributeAccess) {
  auto e = env({{"x", Value(10)}, {"ready", Value(true)}});
  EXPECT_EQ(ev("self.x", e).as_int(), 10);
  EXPECT_TRUE(ev("self.ready", e).as_bool());
  EXPECT_TRUE(ev("self.x == 10", e).as_bool());
}

TEST(Expr, ArgumentNamesResolvePositionally) {
  auto e = env({{"x", Value(7)}}, {"a", "b"}, {Value(3), Value(4)});
  EXPECT_EQ(ev("a + b", e).as_int(), 7);
  // The paper's example: @when('x + z == self.x') with args (x, y, z).
  auto e2 = env({{"x", Value(9)}}, {"x", "y", "z"},
                {Value(4), Value(0), Value(5)});
  EXPECT_TRUE(ev("x + z == self.x", e2).as_bool());
}

TEST(Expr, ThePaperIterationCondition) {
  auto e = env({{"iter", Value(3)}}, {"iter", "data"},
               {Value(3), Value("payload")});
  EXPECT_TRUE(ev("self.iter == iter", e).as_bool());
  auto e2 = env({{"iter", Value(4)}}, {"iter", "data"},
                {Value(3), Value("payload")});
  EXPECT_FALSE(ev("self.iter == iter", e2).as_bool());
}

TEST(Expr, IndexingAndNesting) {
  auto e = env({{"xs", Value::list({Value(10), Value(20)})},
                {"cfg", Value::dict({{"k", Value(5)}})}});
  EXPECT_EQ(ev("self.xs[1]", e).as_int(), 20);
  EXPECT_EQ(ev("self.cfg.k", e).as_int(), 5);
  EXPECT_EQ(ev("self.cfg['k']", e).as_int(), 5);
  EXPECT_EQ(ev("self.xs[0] + self.xs[1]", e).as_int(), 30);
}

TEST(Expr, BuiltinFunctions) {
  auto e = env({{"neighbors", Value::list({Value(1), Value(2), Value(3)})},
                {"msg_count", Value(3)}});
  // The paper's stencil condition.
  EXPECT_TRUE(ev("self.msg_count == len(self.neighbors)", e).as_bool());
  EXPECT_EQ(ev("abs(-4)", e).as_int(), 4);
  EXPECT_EQ(ev("min(3, 5)", e).as_int(), 3);
  EXPECT_EQ(ev("max(3, 5)", e).as_int(), 5);
  EXPECT_EQ(ev("len('hello')", e).as_int(), 5);
}

TEST(Expr, SyntaxErrorsCarryPosition) {
  EXPECT_THROW((void)Expr::compile("1 +"), std::runtime_error);
  EXPECT_THROW((void)Expr::compile("self."), std::runtime_error);
  EXPECT_THROW((void)Expr::compile("a = b"), std::runtime_error);
  EXPECT_THROW((void)Expr::compile("(1 + 2"), std::runtime_error);
  EXPECT_THROW((void)Expr::compile("'unterminated"), std::runtime_error);
  EXPECT_THROW((void)Expr::compile("1 2"), std::runtime_error);
}

TEST(Expr, UnknownNameThrowsAtEval) {
  auto e = env({});
  EXPECT_THROW(ev("nope", e), std::runtime_error);
  EXPECT_THROW(ev("self.missing", e), std::out_of_range);
}

TEST(Expr, CompiledOnceEvaluatedManyTimes) {
  Expr expr = Expr::compile("self.count >= 3");
  for (int count = 0; count < 6; ++count) {
    auto e = env({{"count", Value(count)}});
    EXPECT_EQ(expr.test(e), count >= 3);
  }
}

}  // namespace
