// Expression engine: the eval() for when/wait condition strings.

#include "model/expr.hpp"

#include <gtest/gtest.h>

namespace {

using namespace cpy;

NameResolver env(Dict self_attrs, std::vector<std::string> params = {},
                 Args args = {}) {
  auto self = std::make_shared<Value>(Value::dict(std::move(self_attrs)));
  auto p = std::make_shared<std::vector<std::string>>(std::move(params));
  auto a = std::make_shared<Args>(std::move(args));
  return [self, p, a](const std::string& name) {
    return make_resolver(*self, *p, *a)(name);
  };
}

Value ev(const std::string& src, const NameResolver& names) {
  return Expr::compile(src).eval(names);
}

TEST(Expr, Literals) {
  auto e = env({});
  EXPECT_EQ(ev("42", e).as_int(), 42);
  EXPECT_DOUBLE_EQ(ev("2.5", e).as_real(), 2.5);
  EXPECT_DOUBLE_EQ(ev("1e3", e).as_real(), 1000.0);
  EXPECT_EQ(ev("'hello'", e).as_str(), "hello");
  EXPECT_TRUE(ev("True", e).as_bool());
  EXPECT_FALSE(ev("False", e).as_bool());
  EXPECT_TRUE(ev("None", e).is_none());
}

TEST(Expr, Arithmetic) {
  auto e = env({});
  EXPECT_EQ(ev("2 + 3 * 4", e).as_int(), 14);
  EXPECT_EQ(ev("(2 + 3) * 4", e).as_int(), 20);
  EXPECT_EQ(ev("-5 + 2", e).as_int(), -3);
  EXPECT_DOUBLE_EQ(ev("7 / 2", e).as_real(), 3.5);  // true division
  EXPECT_EQ(ev("7 % 3", e).as_int(), 1);
  EXPECT_EQ(ev("-7 % 3", e).as_int(), 2);  // Python-style modulo
  EXPECT_EQ(ev("'a' + 'b'", e).as_str(), "ab");
}

TEST(Expr, Comparisons) {
  auto e = env({});
  EXPECT_TRUE(ev("1 < 2", e).as_bool());
  EXPECT_TRUE(ev("2 <= 2", e).as_bool());
  EXPECT_FALSE(ev("3 == 4", e).as_bool());
  EXPECT_TRUE(ev("3 != 4", e).as_bool());
  EXPECT_TRUE(ev("'abc' == 'abc'", e).as_bool());
  EXPECT_TRUE(ev("5 >= 5 ", e).as_bool());
  EXPECT_TRUE(ev("2 == 2.0", e).as_bool());
}

TEST(Expr, BooleanLogicShortCircuits) {
  auto e = env({});
  EXPECT_TRUE(ev("True and True", e).as_bool());
  EXPECT_FALSE(ev("True and False", e).as_bool());
  EXPECT_TRUE(ev("False or True", e).as_bool());
  EXPECT_TRUE(ev("not False", e).as_bool());
  // Short circuit: the undefined name is never evaluated.
  EXPECT_FALSE(ev("False and undefined_name", e).truthy());
  EXPECT_TRUE(ev("True or undefined_name", e).truthy());
  // Python semantics: and/or return operands, not booleans.
  EXPECT_EQ(ev("0 or 7", e).as_int(), 7);
  EXPECT_EQ(ev("3 and 5", e).as_int(), 5);
}

TEST(Expr, SelfAttributeAccess) {
  auto e = env({{"x", Value(10)}, {"ready", Value(true)}});
  EXPECT_EQ(ev("self.x", e).as_int(), 10);
  EXPECT_TRUE(ev("self.ready", e).as_bool());
  EXPECT_TRUE(ev("self.x == 10", e).as_bool());
}

TEST(Expr, ArgumentNamesResolvePositionally) {
  auto e = env({{"x", Value(7)}}, {"a", "b"}, {Value(3), Value(4)});
  EXPECT_EQ(ev("a + b", e).as_int(), 7);
  // The paper's example: @when('x + z == self.x') with args (x, y, z).
  auto e2 = env({{"x", Value(9)}}, {"x", "y", "z"},
                {Value(4), Value(0), Value(5)});
  EXPECT_TRUE(ev("x + z == self.x", e2).as_bool());
}

TEST(Expr, ThePaperIterationCondition) {
  auto e = env({{"iter", Value(3)}}, {"iter", "data"},
               {Value(3), Value("payload")});
  EXPECT_TRUE(ev("self.iter == iter", e).as_bool());
  auto e2 = env({{"iter", Value(4)}}, {"iter", "data"},
                {Value(3), Value("payload")});
  EXPECT_FALSE(ev("self.iter == iter", e2).as_bool());
}

TEST(Expr, IndexingAndNesting) {
  auto e = env({{"xs", Value::list({Value(10), Value(20)})},
                {"cfg", Value::dict({{"k", Value(5)}})}});
  EXPECT_EQ(ev("self.xs[1]", e).as_int(), 20);
  EXPECT_EQ(ev("self.cfg.k", e).as_int(), 5);
  EXPECT_EQ(ev("self.cfg['k']", e).as_int(), 5);
  EXPECT_EQ(ev("self.xs[0] + self.xs[1]", e).as_int(), 30);
}

TEST(Expr, BuiltinFunctions) {
  auto e = env({{"neighbors", Value::list({Value(1), Value(2), Value(3)})},
                {"msg_count", Value(3)}});
  // The paper's stencil condition.
  EXPECT_TRUE(ev("self.msg_count == len(self.neighbors)", e).as_bool());
  EXPECT_EQ(ev("abs(-4)", e).as_int(), 4);
  EXPECT_EQ(ev("min(3, 5)", e).as_int(), 3);
  EXPECT_EQ(ev("max(3, 5)", e).as_int(), 5);
  EXPECT_EQ(ev("len('hello')", e).as_int(), 5);
}

TEST(Expr, ChainedComparisons) {
  auto e = env({{"n", Value(10)}}, {"x"}, {Value(5)});
  // The motivating bug: `0 <= x < n` must parse as a chain, not as
  // `(0 <= x) < n` (which compares a bool against an int).
  EXPECT_TRUE(ev("0 <= x < self.n", e).as_bool());
  EXPECT_FALSE(ev("0 <= x < 5", e).as_bool());
  EXPECT_FALSE(ev("6 <= x < self.n", e).as_bool());
  EXPECT_TRUE(ev("1 < 2 < 3 < 4", e).as_bool());
  EXPECT_FALSE(ev("1 < 2 < 2", e).as_bool());
  EXPECT_TRUE(ev("1 < 2 <= 2 == 2.0 != 3", e).as_bool());
  EXPECT_TRUE(ev("3 > 2 >= 2", e).as_bool());
  // A chain yields a bool, usable inside boolean logic.
  EXPECT_TRUE(ev("0 <= x < self.n and True", e).as_bool());
}

TEST(Expr, ChainedComparisonEvaluatesEachOperandOnce) {
  // Python semantics: `a < b < c` evaluates b once, unlike the naive
  // desugaring `a < b and b < c`.
  int lookups = 0;
  NameResolver counting = [&lookups](const std::string& name) -> Value {
    if (name == "mid") {
      ++lookups;
      return Value(5);
    }
    throw std::runtime_error("NameError: " + name);
  };
  EXPECT_TRUE(Expr::compile("1 < mid < 10").eval(counting).as_bool());
  EXPECT_EQ(lookups, 1);
}

TEST(Expr, ChainedComparisonShortCircuits) {
  auto e = env({});
  // The first failing link stops the chain: `boom` is never resolved.
  EXPECT_FALSE(ev("1 > 2 < boom", e).truthy());
  // And a passing prefix still reaches the bad operand.
  EXPECT_THROW(ev("1 < 2 < boom", e), std::runtime_error);
}

TEST(Expr, Truthiness) {
  auto e = env({{"empty", Value::list({})},
                {"items", Value::list({Value(1)})},
                {"none", Value::none()},
                {"table", Value::dict({})}});
  EXPECT_FALSE(ev("self.empty", e).truthy());
  EXPECT_TRUE(ev("self.items", e).truthy());
  EXPECT_FALSE(ev("self.none", e).truthy());
  EXPECT_FALSE(ev("self.table", e).truthy());
  EXPECT_FALSE(ev("''", e).truthy());
  EXPECT_TRUE(ev("'x'", e).truthy());
  EXPECT_FALSE(ev("0", e).truthy());
  EXPECT_FALSE(ev("0.0", e).truthy());
  EXPECT_TRUE(ev("not self.empty", e).as_bool());
}

TEST(Expr, TrailingInputIsAPositionedSyntaxError) {
  // `1 2` stops the parser after the first literal; the error must say
  // so and point at the offending token, not silently evaluate `1`.
  try {
    (void)Expr::compile("1 2");
    FAIL() << "expected syntax error";
  } catch (const std::runtime_error& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find("trailing input"), std::string::npos) << msg;
    EXPECT_NE(msg.find("position 2"), std::string::npos) << msg;
  }
  // Same for a half-written chain link.
  EXPECT_THROW((void)Expr::compile("1 < 2 <"), std::runtime_error);
  EXPECT_THROW((void)Expr::compile("x < y z"), std::runtime_error);
}

TEST(Expr, DependencyExtraction) {
  const Expr e = Expr::compile("self.a + self.b == x");
  ASSERT_NE(e.deps(), nullptr);
  EXPECT_TRUE(e.deps()->known);
  ASSERT_EQ(e.deps()->attrs.size(), 2u);
  EXPECT_EQ(e.deps()->attrs[0], cx::attr_key("a"));
  EXPECT_EQ(e.deps()->attrs[1], cx::attr_key("b"));

  // Duplicate reads collapse to one dependency.
  const Expr dup = Expr::compile("self.k < 3 or self.k > 9");
  EXPECT_EQ(dup.deps()->attrs.size(), 1u);

  // Nested access depends only on the root attribute.
  const Expr nested = Expr::compile("self.cfg.k == 1");
  EXPECT_TRUE(nested.deps()->known);
  ASSERT_EQ(nested.deps()->attrs.size(), 1u);
  EXPECT_EQ(nested.deps()->attrs[0], cx::attr_key("cfg"));

  // Bare `self` (computed access) defeats static analysis: not known.
  EXPECT_FALSE(Expr::compile("len(self.xs) == self['n']").deps()->known);
  // No self reads at all: known, empty set (never needs a re-test).
  const Expr pure = Expr::compile("a + b == 7");
  EXPECT_TRUE(pure.deps()->known);
  EXPECT_TRUE(pure.deps()->attrs.empty());

  // Chained comparisons feed extraction like any other node.
  const Expr chain = Expr::compile("self.lo <= x < self.hi");
  EXPECT_TRUE(chain.deps()->known);
  EXPECT_EQ(chain.deps()->attrs.size(), 2u);
}

TEST(Expr, CompileCacheSharesAsts) {
  const std::string src = "self.cache_probe_attr == 123";
  const std::size_t before = Expr::compile_cache_size();
  const Expr& first = Expr::compile_cached(src);
  EXPECT_EQ(Expr::compile_cache_size(), before + 1);
  const Expr& second = Expr::compile_cached(src);
  EXPECT_EQ(&first, &second);  // same cached entry, not a re-parse
  EXPECT_EQ(Expr::compile_cache_size(), before + 1);
  // The shared entry carries the shared dependency set.
  EXPECT_EQ(first.deps(), second.deps());
  EXPECT_TRUE(first.deps()->known);
}

TEST(Expr, SyntaxErrorsCarryPosition) {
  EXPECT_THROW((void)Expr::compile("1 +"), std::runtime_error);
  EXPECT_THROW((void)Expr::compile("self."), std::runtime_error);
  EXPECT_THROW((void)Expr::compile("a = b"), std::runtime_error);
  EXPECT_THROW((void)Expr::compile("(1 + 2"), std::runtime_error);
  EXPECT_THROW((void)Expr::compile("'unterminated"), std::runtime_error);
  EXPECT_THROW((void)Expr::compile("1 2"), std::runtime_error);
}

TEST(Expr, UnknownNameThrowsAtEval) {
  auto e = env({});
  EXPECT_THROW(ev("nope", e), std::runtime_error);
  EXPECT_THROW(ev("self.missing", e), std::out_of_range);
}

TEST(Expr, CompiledOnceEvaluatedManyTimes) {
  Expr expr = Expr::compile("self.count >= 3");
  for (int count = 0; count < 6; ++count) {
    auto e = env({{"count", Value(count)}});
    EXPECT_EQ(expr.test(e), count >= 3);
  }
}

}  // namespace
