#include "model/value.hpp"

#include <gtest/gtest.h>

namespace {

using namespace cpy;

TEST(Value, KindsAndAccessors) {
  EXPECT_EQ(Value().kind(), Kind::None);
  EXPECT_EQ(Value(true).kind(), Kind::Bool);
  EXPECT_EQ(Value(7).kind(), Kind::Int);
  EXPECT_EQ(Value(2.5).kind(), Kind::Real);
  EXPECT_EQ(Value("hi").kind(), Kind::Str);
  EXPECT_EQ(Value(7).as_int(), 7);
  EXPECT_DOUBLE_EQ(Value(7).as_real(), 7.0);  // int coerces to real
  EXPECT_EQ(Value("hi").as_str(), "hi");
}

TEST(Value, TypeErrorsThrow) {
  EXPECT_THROW((void)Value(7).as_str(), std::runtime_error);
  EXPECT_THROW((void)Value("x").as_int(), std::runtime_error);
  EXPECT_THROW((void)Value().length(), std::runtime_error);
}

TEST(Value, Truthiness) {
  EXPECT_FALSE(Value().truthy());
  EXPECT_FALSE(Value(0).truthy());
  EXPECT_FALSE(Value("").truthy());
  EXPECT_FALSE(Value(List{}).truthy());
  EXPECT_TRUE(Value(1).truthy());
  EXPECT_TRUE(Value("x").truthy());
  EXPECT_TRUE(Value(List{Value(1)}).truthy());
  EXPECT_FALSE(Value(false).truthy());
}

TEST(Value, ListAndTuple) {
  Value l = Value::list({Value(1), Value("two"), Value(3.0)});
  EXPECT_EQ(l.kind(), Kind::List);
  EXPECT_EQ(l.length(), 3u);
  EXPECT_EQ(l.item(Value(1)).as_str(), "two");
  EXPECT_EQ(l.item(Value(-1)).as_real(), 3.0);  // negative indexing
  Value t = Value::tuple({Value(1), Value(2)});
  EXPECT_EQ(t.kind(), Kind::Tuple);
  EXPECT_THROW(l.item(Value(5)), std::out_of_range);
}

TEST(Value, Dict) {
  Value d = Value::dict({{"a", Value(1)}, {"b", Value("x")}});
  EXPECT_EQ(d.length(), 2u);
  EXPECT_EQ(d.item(Value("a")).as_int(), 1);
  EXPECT_THROW(d.item(Value("zzz")), std::out_of_range);
}

TEST(Value, ArraysShareBuffersOnCopy) {
  Value a = Value::array({1.0, 2.0, 3.0});
  Value b = a;  // Python-style reference copy
  a.as_f64_array()->data[0] = 42.0;
  EXPECT_DOUBLE_EQ(b.item(Value(0)).as_real(), 42.0);
}

TEST(Value, Equality) {
  EXPECT_TRUE(Value(2).equals(Value(2.0)));  // numeric cross-kind
  EXPECT_TRUE(Value("a").equals(Value("a")));
  EXPECT_FALSE(Value("a").equals(Value(1)));
  EXPECT_TRUE(Value::list({Value(1), Value(2)})
                  .equals(Value::list({Value(1), Value(2)})));
  EXPECT_FALSE(Value::list({Value(1)}).equals(Value::list({Value(2)})));
  EXPECT_TRUE(Value().equals(Value()));
  EXPECT_TRUE(Value::array({1, 2}).equals(Value::array({1, 2})));
  EXPECT_FALSE(Value::array({1, 2}).equals(Value::array({1, 3})));
}

TEST(Value, CompareNumericStringsAndSequences) {
  EXPECT_LT(Value(1).compare(Value(2)), 0);
  EXPECT_GT(Value(2.5).compare(Value(2)), 0);
  EXPECT_LT(Value("abc").compare(Value("abd")), 0);
  EXPECT_LT(Value::tuple({Value(1), Value(2)})
                .compare(Value::tuple({Value(1), Value(3)})),
            0);
  EXPECT_THROW((void)Value(1).compare(Value("x")), std::runtime_error);
}

TEST(Value, PupRoundtripAllKinds) {
  auto roundtrip = [](Value v) {
    auto bytes = pup::to_bytes(v);
    Value back;
    pup::Unpacker u(bytes.data(), bytes.size());
    back.pup(u);
    return back;
  };
  Value nested = Value::dict(
      {{"xs", Value::list({Value(1), Value("two"),
                           Value::tuple({Value(true), Value()})})},
       {"arr", Value::array({1.5, 2.5}, {2})},
       {"ia", Value::iarray({7, 8, 9})},
       {"n", Value(3.25)}});
  EXPECT_TRUE(roundtrip(nested).equals(nested));
  EXPECT_TRUE(roundtrip(Value()).equals(Value()));
  std::vector<std::byte> raw = {std::byte{1}, std::byte{2}};
  EXPECT_TRUE(roundtrip(Value(raw)).equals(Value(raw)));
}

TEST(Value, ArrayPupPreservesShape) {
  Value m = Value::array({1, 2, 3, 4, 5, 6}, {2, 3});
  auto bytes = pup::to_bytes(m);
  Value back;
  pup::Unpacker u(bytes.data(), bytes.size());
  back.pup(u);
  EXPECT_EQ(back.as_f64_array()->shape,
            (std::vector<std::uint64_t>{2, 3}));
}

TEST(Value, ApproxBytesTracksArraySizes) {
  Value big = Value::zeros(1000);
  EXPECT_GE(big.approx_bytes(), 8000u);
  EXPECT_LT(Value(1).approx_bytes(), 16u);
}

TEST(Value, Repr) {
  EXPECT_EQ(Value().repr(), "None");
  EXPECT_EQ(Value(true).repr(), "True");
  EXPECT_EQ(Value(3).repr(), "3");
  EXPECT_EQ(Value("hi").repr(), "'hi'");
  EXPECT_EQ(Value::list({Value(1), Value(2)}).repr(), "[1, 2]");
  EXPECT_EQ(Value::tuple({Value(1)}).repr(), "(1)");
}

}  // namespace
