// DistArray — the paper's §VI future-work abstraction (distributed
// NumPy-like arrays with a preserved API).

#include <gtest/gtest.h>

#include "model/dist_array.hpp"
#include "test_helpers.hpp"

namespace {

using cpy::DistArray;
using cpy::Value;
using cxtest::run_program;
using cxtest::sim_cfg;
using cxtest::threaded_cfg;

TEST(DistArray, FillAndSum) {
  run_program(threaded_cfg(4), [] {
    auto a = DistArray::create(1000, 8);
    a.fill(1.5);
    EXPECT_DOUBLE_EQ(a.sum().get().as_real(), 1500.0);
    cx::exit();
  });
}

TEST(DistArray, IotaSumMatchesClosedForm) {
  run_program(threaded_cfg(3), [] {
    const std::int64_t n = 4321;
    auto a = DistArray::create(n, 7);
    a.iota();
    const double expect = static_cast<double>(n - 1) * n / 2.0;
    EXPECT_DOUBLE_EQ(a.sum().get().as_real(), expect);
    EXPECT_DOUBLE_EQ(a.min().get().as_real(), 0.0);
    EXPECT_DOUBLE_EQ(a.max().get().as_real(), static_cast<double>(n - 1));
    cx::exit();
  });
}

TEST(DistArray, ScaleComposes) {
  run_program(threaded_cfg(2), [] {
    auto a = DistArray::create(100, 4);
    a.fill(2.0);
    a.scale(3.0);
    a.scale(0.5);
    EXPECT_DOUBLE_EQ(a.sum().get().as_real(), 300.0);
    cx::exit();
  });
}

TEST(DistArray, AddScaled) {
  run_program(threaded_cfg(4), [] {
    auto a = DistArray::create(512, 8);
    auto b = DistArray::create(512, 8);
    a.fill(1.0);
    b.iota();
    b.sync().get();  // ensure b is initialized before serving blocks
    a.add_scaled(b, 2.0).get();  // a[i] = 1 + 2i
    const double expect = 512.0 + 2.0 * (511.0 * 512.0 / 2.0);
    EXPECT_DOUBLE_EQ(a.sum().get().as_real(), expect);
    cx::exit();
  });
}

TEST(DistArray, DotProduct) {
  run_program(threaded_cfg(3), [] {
    const std::int64_t n = 300;
    auto a = DistArray::create(n, 6);
    auto b = DistArray::create(n, 6);
    a.fill(2.0);
    b.iota();
    a.sync().get();
    b.sync().get();
    const double expect = 2.0 * (static_cast<double>(n - 1) * n / 2.0);
    EXPECT_DOUBLE_EQ(a.dot(b).get().as_real(), expect);
    cx::exit();
  });
}

TEST(DistArray, ElementGetAndSet) {
  run_program(threaded_cfg(2), [] {
    auto a = DistArray::create(97, 5);  // uneven chunking
    a.iota();
    a.sync().get();
    for (std::int64_t i : {0L, 19L, 20L, 50L, 96L}) {
      EXPECT_DOUBLE_EQ(a.get(i).get().as_real(),
                       static_cast<double>(i));
    }
    a.set(42, -7.0);
    a.sync().get();
    EXPECT_DOUBLE_EQ(a.get(42).get().as_real(), -7.0);
    cx::exit();
  });
}

TEST(DistArray, LayoutMismatchThrows) {
  run_program(threaded_cfg(2), [] {
    auto a = DistArray::create(100, 4);
    auto b = DistArray::create(100, 5);
    EXPECT_THROW((void)a.add_scaled(b, 1.0), std::invalid_argument);
    EXPECT_THROW((void)a.dot(b), std::invalid_argument);
    cx::exit();
  });
}

TEST(DistArray, WorksAtScaleOnSimBackend) {
  run_program(sim_cfg(16), [] {
    const std::int64_t n = 100000;
    auto a = DistArray::create(n, 64);
    a.iota();
    a.scale(2.0);
    const double expect = 2.0 * (static_cast<double>(n - 1) * n / 2.0);
    EXPECT_DOUBLE_EQ(a.sum().get().as_real(), expect);
    cx::exit();
  });
}

TEST(DistArray, SingleChunkDegenerateCase) {
  run_program(threaded_cfg(1), [] {
    auto a = DistArray::create(10, 1);
    a.iota();
    EXPECT_DOUBLE_EQ(a.sum().get().as_real(), 45.0);
    cx::exit();
  });
}

TEST(DistArray, InvalidCreateThrows) {
  run_program(threaded_cfg(1), [] {
    EXPECT_THROW((void)DistArray::create(10, 0), std::invalid_argument);
    EXPECT_THROW((void)DistArray::create(-1, 2), std::invalid_argument);
    cx::exit();
  });
}

}  // namespace
