// End-to-end tests of the dynamic model layer: the paper's programming
// model (method-by-name invocation, when-strings, wait-strings, dynamic
// reductions, automatic migration of the attribute dict).

#include <gtest/gtest.h>

#include "model/cpy.hpp"
#include "test_helpers.hpp"

namespace {

using namespace cpy;
using cxtest::run_program;
using cxtest::sim_cfg;
using cxtest::threaded_cfg;

// ---------------------------------------------------------------------------
// The paper's §II-B hello program, rendered in the model layer.

struct HelloClass {
  HelloClass() {
    DClass cls("MyChare");
    cls.def("SayHi", {"msg"}, [](DChare& self, Args& a) {
      self["last_msg"] = a[0];
      return Value::none();
    });
    cls.def("GetLast", {}, [](DChare& self, Args&) {
      return self.has_attr("last_msg") ? self["last_msg"] : Value::none();
    });
  }
};
const HelloClass hello_class;

TEST(DChare, PaperHelloWorld) {
  run_program(threaded_cfg(2), [] {
    auto proxy = create_chare("MyChare", -1);
    proxy.send("SayHi", {Value("Hello")});
    while (!proxy.call("GetLast").get().truthy()) {
    }
    EXPECT_EQ(proxy.call("GetLast").get().as_str(), "Hello");
    cx::exit();
  });
}

TEST(DChare, UnknownClassThrowsOnCreate) {
  run_program(threaded_cfg(1), [] {
    EXPECT_THROW((void)create_chare("NoSuchClass", 0), std::runtime_error);
    cx::exit();
  });
}

// ---------------------------------------------------------------------------
// Constructor args via __init__, thisIndex attribute.

struct CounterClass {
  CounterClass() {
    DClass cls("Counter");
    cls.def("__init__", {"start"}, [](DChare& self, Args& a) {
      self["count"] = a.empty() ? Value(0) : a[0];
      return Value::none();
    });
    cls.def("inc", {"by"}, [](DChare& self, Args& a) {
      self["count"] = self["count"].as_int() + a[0].as_int();
      return Value::none();
    });
    cls.def("get", {}, [](DChare& self, Args&) { return self["count"]; });
    cls.def("my_index", {}, [](DChare& self, Args&) {
      return self["thisIndex"];
    });
    cls.def("add_count", {"target"}, [](DChare& self, Args&) {
      return Value::none();  // redefined below in reduction tests
    });
  }
};
const CounterClass counter_class;

TEST(DChare, InitAndAttributeState) {
  run_program(threaded_cfg(2), [] {
    auto c = create_chare("Counter", 1, {Value(100)});
    c.send("inc", {Value(5)});
    c.send("inc", {Value(7)});
    while (c.call("get").get().as_int() < 112) {
    }
    EXPECT_EQ(c.call("get").get().as_int(), 112);
    cx::exit();
  });
}

TEST(DChare, ThisIndexExposedAsAttribute) {
  run_program(threaded_cfg(2), [] {
    auto arr = create_array("Counter", {4}, {Value(0)});
    for (int i = 0; i < 4; ++i) {
      const Value idx = arr[i].call("my_index").get();
      EXPECT_EQ(idx.kind(), Kind::Tuple);
      EXPECT_EQ(idx.item(Value(0)).as_int(), i);
    }
    cx::exit();
  });
}

TEST(DChare, GroupBroadcastByName) {
  run_program(threaded_cfg(3), [] {
    auto grp = create_group("Counter", {Value(0)});
    grp.broadcast_done("inc", {Value(2)}).get();
    for (int pe = 0; pe < cx::num_pes(); ++pe) {
      EXPECT_EQ(grp[pe].call("get").get().as_int(), 2);
    }
    cx::exit();
  });
}

// ---------------------------------------------------------------------------
// when-strings: the paper's iteration matching, written as in the paper.

struct StreamClass {
  StreamClass() {
    DClass cls("Stream");
    cls.def("__init__", {}, [](DChare& self, Args&) {
      self["iter"] = Value(0);
      self["log"] = Value::list({});
      return Value::none();
    });
    cls.def("recv", {"iter", "data"}, [](DChare& self, Args& a) {
      self["log"].as_list().push_back(a[1]);
      self["iter"] = self["iter"].as_int() + 1;
      return Value::none();
    });
    cls.when("recv", "self.iter == iter");
    cls.def("get_log", {}, [](DChare& self, Args&) { return self["log"]; });
  }
};
const StreamClass stream_class;

TEST(DChare, WhenStringBuffersOutOfOrderMessages) {
  run_program(threaded_cfg(2), [] {
    auto s = create_chare("Stream", 1);
    for (int it = 4; it >= 0; --it) {
      s.send("recv", {Value(it), Value(it * 100)});
    }
    Value log;
    while ((log = s.call("get_log").get()).length() < 5) {
    }
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(log.item(Value(i)).as_int(), i * 100);
    }
    cx::exit();
  });
}

// ---------------------------------------------------------------------------
// Regression for the condition engine: a when condition reading an
// attribute that a *different* entry method writes must fire when that
// method runs (the dirty filter tracks every self[...] write).

struct LatchClass {
  LatchClass() {
    DClass cls("Latch");
    cls.def("__init__", {}, [](DChare& self, Args&) {
      self["ready"] = Value(0);
      self["fired"] = Value(0);
      return Value::none();
    });
    cls.def("fire", {}, [](DChare& self, Args&) {
      self["fired"] = self["fired"].as_int() + 1;
      return Value::none();
    });
    cls.when("fire", "self.ready == 1");
    cls.def("arm", {}, [](DChare& self, Args&) {
      self["ready"] = Value(1);
      return Value::none();
    });
    cls.def("fired", {}, [](DChare& self, Args&) { return self["fired"]; });
  }
};
const LatchClass latch_class;

TEST(DChare, WhenFiresAfterOtherMethodMutatesItsDependency) {
  run_program(threaded_cfg(1), [] {
    auto l = create_chare("Latch", 0);
    l.send("fire", {});
    EXPECT_EQ(l.call("fired").get().as_int(), 0);  // buffered
    l.send("arm", {});
    while (l.call("fired").get().as_int() < 1) {
    }
    cx::exit();
  });
}

// ---------------------------------------------------------------------------
// Chained comparisons in when-strings: the paper's windowed-stream shape
// `@when('self.lo <= seq < self.hi')`, previously mis-parsed as
// `(self.lo <= seq) < self.hi`.

struct WindowClass {
  WindowClass() {
    DClass cls("Window");
    cls.def("__init__", {}, [](DChare& self, Args&) {
      self["lo"] = Value(0);
      self["hi"] = Value(0);
      self["log"] = Value::list({});
      return Value::none();
    });
    cls.def("recv", {"seq"}, [](DChare& self, Args& a) {
      self["log"].as_list().push_back(a[0]);
      return Value::none();
    });
    cls.when("recv", "self.lo <= seq < self.hi");
    cls.def("open", {"lo", "hi"}, [](DChare& self, Args& a) {
      self["lo"] = a[0];
      self["hi"] = a[1];
      return Value::none();
    });
    cls.def("get_log", {}, [](DChare& self, Args&) { return self["log"]; });
    cls.def_threaded("await_window", {}, [](DChare& self, Args&) {
      self.wait_until("0 < self.lo <= self.hi");
      self["woke"] = Value(1);
      return Value::none();
    });
    cls.def("woke", {}, [](DChare& self, Args&) {
      return self.has_attr("woke") ? self["woke"] : Value(0);
    });
  }
};
const WindowClass window_class;

TEST(DChare, ChainedComparisonWhenStringGatesByWindow) {
  run_program(threaded_cfg(1), [] {
    auto w = create_chare("Window", 0);
    for (int s = 0; s < 6; ++s) w.send("recv", {Value(s)});
    // Window [0, 0): everything buffered.
    EXPECT_EQ(w.call("get_log").get().length(), 0u);
    w.send("open", {Value(2), Value(5)});  // admits 2, 3, 4 only
    Value log;
    while ((log = w.call("get_log").get()).length() < 3) {
    }
    EXPECT_EQ(log.length(), 3u);
    for (int i = 0; i < 3; ++i) {
      const std::int64_t seq = log.item(Value(i)).as_int();
      EXPECT_GE(seq, 2);
      EXPECT_LT(seq, 5);
    }
    cx::exit();
  });
}

TEST(DChare, ChainedComparisonWaitString) {
  run_program(threaded_cfg(2), [] {
    auto w = create_chare("Window", 1);
    w.send("await_window", {});
    EXPECT_EQ(w.call("woke").get().as_int(), 0);  // 0 < 0 fails: suspended
    w.send("open", {Value(3), Value(7)});         // 0 < 3 <= 7 holds
    while (w.call("woke").get().as_int() < 1) {
    }
    cx::exit();
  });
}

// ---------------------------------------------------------------------------
// Threaded methods + wait-strings: the paper's §II-H2 pattern.

struct IterWorkerClass {
  IterWorkerClass() {
    DClass cls("IterWorker");
    cls.def("__init__", {}, [](DChare& self, Args&) {
      self["msg_count"] = Value(0);
      self["rounds"] = Value(0);
      return Value::none();
    });
    cls.def_threaded("work", {"neighbors", "iterations"},
                     [](DChare& self, Args& a) {
                       const std::int64_t nb = a[0].as_int();
                       const std::int64_t iters = a[1].as_int();
                       for (std::int64_t r = 0; r < iters; ++r) {
                         self.wait_until("self.msg_count >= " +
                                         std::to_string(nb));
                         self["msg_count"] =
                             Value(self["msg_count"].as_int() - nb);
                         self["rounds"] = self["rounds"].as_int() + 1;
                       }
                       return Value::none();
                     });
    cls.def("recvData", {"data"}, [](DChare& self, Args&) {
      self["msg_count"] = self["msg_count"].as_int() + 1;
      return Value::none();
    });
    cls.def("rounds", {}, [](DChare& self, Args&) {
      return self["rounds"];
    });
  }
};
const IterWorkerClass iter_worker_class;

TEST(DChare, WaitStringSuspendsThreadedMethod) {
  run_program(threaded_cfg(2), [] {
    auto w = create_chare("IterWorker", 1);
    w.send("work", {Value(3), Value(2)});
    EXPECT_EQ(w.call("rounds").get().as_int(), 0);
    for (int i = 0; i < 6; ++i) w.send("recvData", {Value(i)});
    while (w.call("rounds").get().as_int() < 2) {
    }
    cx::exit();
  });
}

// ---------------------------------------------------------------------------
// Dynamic reductions (paper §II-F). Reduction targets are not Values, so
// the tests publish the target through a file-level slot the class
// methods read (one in-flight target per test).

DTarget g_test_target;

struct SummerClassReal {
  SummerClassReal() {
    DClass cls("Summer2");
    cls.def("go", {}, [](DChare& self, Args&) {
      const std::int64_t my = self["thisIndex"].item(Value(0)).as_int();
      self.contribute_value(Value(my), "sum", g_test_target);
      return Value::none();
    });
    cls.def("go_max", {}, [](DChare& self, Args&) {
      const std::int64_t my = self["thisIndex"].item(Value(0)).as_int();
      self.contribute_value(Value(my), "max", g_test_target);
      return Value::none();
    });
    cls.def("go_gather", {}, [](DChare& self, Args&) {
      const Value my = self["thisIndex"];
      self.contribute_value(
          Value::list({Value::tuple(
              {my, Value(my.item(Value(0)).as_int() * 10)})}),
          "gather", g_test_target);
      return Value::none();
    });
    cls.def("go_barrier", {}, [](DChare& self, Args&) {
      self.barrier(g_test_target);
      return Value::none();
    });
    cls.def("receive", {"result"}, [](DChare& self, Args& a) {
      self["received"] = a[0];
      return Value::none();
    });
    cls.def("received", {}, [](DChare& self, Args&) {
      return self.has_attr("received") ? self["received"] : Value::none();
    });
  }
};
const SummerClassReal summer_class;

TEST(DChareReduction, SumToFuture) {
  run_program(threaded_cfg(2), [] {
    auto arr = create_array("Summer2", {6});
    auto f = cx::make_future<Value>();
    g_test_target = to_target(f);
    arr.broadcast("go");
    EXPECT_EQ(f.get().as_int(), 15);  // 0+..+5
    cx::exit();
  });
}

TEST(DChareReduction, MaxToFuture) {
  run_program(threaded_cfg(2), [] {
    auto arr = create_array("Summer2", {5});
    auto f = cx::make_future<Value>();
    g_test_target = to_target(f);
    arr.broadcast("go_max");
    EXPECT_EQ(f.get().as_int(), 4);
    cx::exit();
  });
}

TEST(DChareReduction, GatherSortsByIndex) {
  run_program(threaded_cfg(2), [] {
    auto arr = create_array("Summer2", {4});
    auto f = cx::make_future<Value>();
    g_test_target = to_target(f);
    arr.broadcast("go_gather");
    const Value items = f.get();
    ASSERT_EQ(items.length(), 4u);
    for (int i = 0; i < 4; ++i) {
      const Value pair = items.item(Value(i));
      EXPECT_EQ(pair.item(Value(0)).item(Value(0)).as_int(), i);
      EXPECT_EQ(pair.item(Value(1)).as_int(), i * 10);
    }
    cx::exit();
  });
}

TEST(DChareReduction, BarrierIsNone) {
  run_program(threaded_cfg(3), [] {
    auto grp = create_group("Summer2");
    auto f = cx::make_future<Value>();
    g_test_target = to_target(f);
    grp.broadcast("go_barrier");
    EXPECT_TRUE(f.get().is_none());  // paper: broadcast future value None
    cx::exit();
  });
}

TEST(DChareReduction, ResultToEntryMethodOfElement) {
  run_program(threaded_cfg(2), [] {
    auto arr = create_array("Summer2", {4});
    g_test_target = arr[0].target("receive");
    arr.broadcast("go");
    while (arr[0].call("received").get().is_none()) {
    }
    EXPECT_EQ(arr[0].call("received").get().as_int(), 6);  // 0+1+2+3
    cx::exit();
  });
}

TEST(DChareReduction, ResultBroadcastToAllElements) {
  run_program(threaded_cfg(2), [] {
    auto arr = create_array("Summer2", {4});
    g_test_target = arr.target("receive");
    arr.broadcast("go");
    for (int i = 0; i < 4; ++i) {
      while (arr[i].call("received").get().is_none()) {
      }
      EXPECT_EQ(arr[i].call("received").get().as_int(), 6);
    }
    cx::exit();
  });
}

TEST(DChareReduction, CustomDynReducer) {
  add_dyn_reducer("strmax", [](Value& a, const Value& b) {
    if (b.as_str() > a.as_str()) a = b;
  });
  DClass cls("Shouter");
  cls.def("go", {}, [](DChare& self, Args&) {
    const std::int64_t my = self["thisIndex"].item(Value(0)).as_int();
    self.contribute_value(Value("w" + std::to_string(my)), "strmax",
                          g_test_target);
    return Value::none();
  });
  run_program(threaded_cfg(2), [] {
    auto arr = create_array("Shouter", {3});
    auto f = cx::make_future<Value>();
    g_test_target = to_target(f);
    arr.broadcast("go");
    EXPECT_EQ(f.get().as_str(), "w2");
    cx::exit();
  });
}

// ---------------------------------------------------------------------------
// Migration: attribute dict moves automatically (no pup code).

struct NomadClass {
  NomadClass() {
    DClass cls("Nomad");
    cls.def("__init__", {}, [](DChare& self, Args&) {
      self["history"] = Value::list({});
      return Value::none();
    });
    cls.def("go_to", {"pe"}, [](DChare& self, Args& a) {
      self["history"].as_list().push_back(
          Value(static_cast<std::int64_t>(cx::my_pe())));
      self.migrate_to(static_cast<int>(a[0].as_int()));
      return Value::none();
    });
    cls.def("where", {}, [](DChare&, Args&) {
      return Value(static_cast<std::int64_t>(cx::my_pe()));
    });
    cls.def("history", {}, [](DChare& self, Args&) {
      return self["history"];
    });
  }
};
const NomadClass nomad_class;

TEST(DChare, MigrationCarriesAttributeDictAutomatically) {
  run_program(threaded_cfg(3), [] {
    auto n = create_chare("Nomad", 0);
    n.send("go_to", {Value(2)});
    while (n.call("where").get().as_int() != 2) {
    }
    n.send("go_to", {Value(1)});
    while (n.call("where").get().as_int() != 1) {
    }
    const Value hist = n.call("history").get();
    ASSERT_EQ(hist.length(), 2u);
    EXPECT_EQ(hist.item(Value(0)).as_int(), 0);
    EXPECT_EQ(hist.item(Value(1)).as_int(), 2);
    cx::exit();
  });
}

TEST(DChare, SimBackendEndToEnd) {
  run_program(sim_cfg(8), [] {
    auto arr = create_array("Summer2", {16});
    auto f = cx::make_future<Value>();
    g_test_target = to_target(f);
    arr.broadcast("go");
    EXPECT_EQ(f.get().as_int(), 120);
    cx::exit();
  });
}

}  // namespace
