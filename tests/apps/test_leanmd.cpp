// LeanMD: physics invariants (momentum conservation, atom conservation),
// agreement between the typed and dynamic variants, modeled-mode timing.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/leanmd/leanmd_common.hpp"
#include "apps/leanmd/leanmd_cpy.hpp"
#include "apps/leanmd/leanmd_cx.hpp"

namespace {

using namespace leanmd;

cxm::MachineConfig threaded(int pes) {
  cxm::MachineConfig cfg;
  cfg.num_pes = pes;
  cfg.backend = cxm::Backend::Threaded;
  return cfg;
}

cxm::MachineConfig sim(int pes) {
  cxm::MachineConfig cfg;
  cfg.num_pes = pes;
  cfg.backend = cxm::Backend::Sim;
  return cfg;
}

PhysParams small() {
  PhysParams p;
  p.cx = p.cy = p.cz = 3;
  p.ppc = 6;
  p.cell_size = 4.0;
  p.cutoff = 2.5;
  p.dt = 1e-3;
  p.steps = 8;
  p.migrate_every = 4;
  return p;
}

TEST(LeanMdKernel, PairForcesAreAntisymmetric) {
  PhysParams p = small();
  std::vector<double> a = {0, 0, 0, 1.5, 0, 0};
  std::vector<double> b = {0.9, 0.4, 0.1};
  double shift[3] = {0, 0, 0};
  std::vector<double> fa, fb;
  lj_pair_forces(p, a, b, shift, fa, fb);
  // Sum of all forces must vanish (Newton's third law).
  for (int d = 0; d < 3; ++d) {
    EXPECT_NEAR(fa[static_cast<std::size_t>(d)] +
                    fa[static_cast<std::size_t>(3 + d)] +
                    fb[static_cast<std::size_t>(d)],
                0.0, 1e-12);
  }
}

TEST(LeanMdKernel, SelfForcesSumToZero) {
  PhysParams p = small();
  Atoms atoms = init_cell(p, 0, 0, 0);
  std::vector<double> f;
  lj_self_forces(p, atoms.pos, f);
  double sum[3] = {0, 0, 0};
  for (std::size_t i = 0; i < f.size(); ++i) sum[i % 3] += f[i];
  for (int d = 0; d < 3; ++d) EXPECT_NEAR(sum[d], 0.0, 1e-9);
}

TEST(LeanMdKernel, CutoffRespected) {
  PhysParams p = small();
  p.cutoff = 1.0;
  std::vector<double> a = {0, 0, 0};
  std::vector<double> b = {2.0, 0, 0};  // beyond cutoff
  double shift[3] = {0, 0, 0};
  std::vector<double> fa, fb;
  const double pe = lj_pair_forces(p, a, b, shift, fa, fb);
  EXPECT_DOUBLE_EQ(pe, 0.0);
  EXPECT_DOUBLE_EQ(fa[0], 0.0);
}

TEST(LeanMdKernel, PartitionConservesAtoms) {
  PhysParams p = small();
  Atoms atoms = init_cell(p, 1, 1, 1);
  // Push some atoms out of the box.
  atoms.pos[0] += p.cell_size;   // +x neighbor
  atoms.pos[4] -= p.cell_size;   // -y neighbor
  const std::size_t before = atoms.count();
  std::vector<Atoms> leaving;
  partition_atoms(p, 1, 1, 1, atoms, leaving);
  std::size_t total = atoms.count();
  for (const auto& l : leaving) total += l.count();
  EXPECT_EQ(total, before);
  EXPECT_GE(before - atoms.count(), 2u);
}

TEST(LeanMdCx, AtomsAndMomentumConserved) {
  const PhysParams p = small();
  const Result r = run_cx(p, threaded(4));
  EXPECT_EQ(r.atoms, p.num_cells() * p.ppc);
  // Pairwise forces conserve total momentum exactly (up to FP noise).
  double mom0[3] = {0, 0, 0};
  double ke0 = 0.0;
  for (int i = 0; i < p.cx; ++i)
    for (int j = 0; j < p.cy; ++j)
      for (int k = 0; k < p.cz; ++k) {
        const Atoms a = init_cell(p, i, j, k);
        double ke, m[3];
        kinetic_stats(p, a, ke, m);
        ke0 += ke;
        for (int d = 0; d < 3; ++d) mom0[d] += m[d];
      }
  for (int d = 0; d < 3; ++d) {
    EXPECT_NEAR(r.momentum[d], mom0[d], 1e-6);
  }
  EXPECT_GT(r.kinetic_energy, 0.0);
  (void)ke0;
}

TEST(LeanMdCx, DeterministicAcrossRuns) {
  const PhysParams p = small();
  const Result a = run_cx(p, threaded(2));
  const Result b = run_cx(p, threaded(2));
  // Threaded arrival order varies; only FP summation order may differ.
  EXPECT_NEAR(a.kinetic_energy, b.kinetic_energy,
              1e-10 * std::fabs(a.kinetic_energy));
  EXPECT_EQ(a.atoms, b.atoms);
}

TEST(LeanMdCpy, MatchesTypedVariant) {
  const PhysParams p = small();
  const Result cx_r = run_cx(p, threaded(3));
  const Result cpy_r = run_cpy(p, threaded(3));
  EXPECT_NEAR(cpy_r.kinetic_energy, cx_r.kinetic_energy, 1e-9);
  EXPECT_EQ(cpy_r.atoms, cx_r.atoms);
  for (int d = 0; d < 3; ++d) {
    EXPECT_NEAR(cpy_r.momentum[d], cx_r.momentum[d], 1e-9);
  }
}

TEST(LeanMdSim, RunsOnSimBackendWithRealPhysics) {
  const PhysParams p = small();
  const Result r = run_cx(p, sim(8));
  EXPECT_EQ(r.atoms, p.num_cells() * p.ppc);
  EXPECT_GT(r.elapsed, 0.0);
}

TEST(LeanMdSim, ModeledModeChargesPairCosts) {
  PhysParams p = small();
  p.real = false;
  p.ppc = 100;
  p.pair_cost = 1e-9;
  p.steps = 4;
  p.migrate_every = 0;
  const Result r = run_cx(p, sim(4));
  // 27 cells * 14 computes/cell-ish; each pair compute ~1e-9*100*100 =
  // 10us. Lower bound: critical path of 4 steps of ~>= one compute each.
  EXPECT_GT(r.elapsed, 4 * 1e-9 * 100 * 100 * 0.5);
  EXPECT_EQ(r.atoms, 0);
}

// Regression for the beyond-cutoff uninitialized-force bug (DESIGN.md):
// the trajectory must be bit-stable across backends and PE counts up to
// floating-point summation order.
TEST(LeanMdCx, TrajectoryAgreesAcrossBackendsAndPeCounts) {
  const PhysParams p = small();
  const Result sim4 = run_cx(p, sim(4));
  const Result sim8 = run_cx(p, sim(8));
  const Result thr1 = run_cx(p, threaded(1));
  const Result thr4 = run_cx(p, threaded(4));
  EXPECT_NEAR(sim8.kinetic_energy, sim4.kinetic_energy,
              1e-9 * std::fabs(sim4.kinetic_energy));
  EXPECT_NEAR(thr1.kinetic_energy, sim4.kinetic_energy,
              1e-9 * std::fabs(sim4.kinetic_energy));
  EXPECT_NEAR(thr4.kinetic_energy, sim4.kinetic_energy,
              1e-9 * std::fabs(sim4.kinetic_energy));
}

TEST(LeanMdSim, FinerDecompositionHasMoreCharesPerPe) {
  // The fine-grained decomposition claim: computes per cell = 14.
  PhysParams p = small();
  const std::int64_t computes = p.num_cells() * 14;
  EXPECT_EQ(computes, 27 * 14);
}

}  // namespace
