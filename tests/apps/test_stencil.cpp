// stencil3d: all three variants must agree with the serial reference,
// the imbalance model must match the paper's description, and load
// balancing must actually help the imbalanced configuration.

#include <gtest/gtest.h>

#include "apps/stencil/stencil_common.hpp"
#include "apps/stencil/stencil_cpy.hpp"
#include "apps/stencil/stencil_cx.hpp"
#include "apps/stencil/stencil_mpi.hpp"

namespace {

using namespace stencil;

cxm::MachineConfig threaded(int pes) {
  cxm::MachineConfig cfg;
  cfg.num_pes = pes;
  cfg.backend = cxm::Backend::Threaded;
  return cfg;
}

cxm::MachineConfig sim(int pes) {
  cxm::MachineConfig cfg;
  cfg.num_pes = pes;
  cfg.backend = cxm::Backend::Sim;
  return cfg;
}

Params small_params() {
  Params p;
  p.geo = {2, 2, 2, 6, 5, 4};
  p.iterations = 8;
  p.real_kernel = true;
  return p;
}

TEST(StencilKernel, SingleBlockMatchesSerial) {
  Geometry g{1, 1, 1, 8, 8, 8};
  Block b(g, 0, 0, 0);
  for (int it = 0; it < 5; ++it) b.compute();
  EXPECT_NEAR(b.checksum(), serial_checksum(g, 5), 1e-9);
}

TEST(StencilKernel, FaceRoundtrip) {
  Geometry g{1, 1, 1, 4, 5, 6};
  Block a(g, 0, 0, 0);
  for (int face = 0; face < 6; ++face) {
    const auto data = a.extract_face(face);
    EXPECT_EQ(static_cast<std::int64_t>(data.size()), a.face_cells(face));
    Block b(g, 0, 0, 0);
    b.inject_face(face, data);  // must not throw / corrupt
  }
}

TEST(StencilCx, MatchesSerialReference) {
  const Params p = small_params();
  const double expected = serial_checksum(p.geo, p.iterations);
  const Result r = run_cx(p, threaded(3));
  EXPECT_NEAR(r.checksum, expected, 1e-8);
}

TEST(StencilCx, OverDecompositionDoesNotChangeResults) {
  Params p = small_params();
  p.geo = {4, 2, 2, 3, 5, 4};  // finer blocks, same global grid
  const double expected = serial_checksum(p.geo, p.iterations);
  const Result r = run_cx(p, threaded(2));
  EXPECT_NEAR(r.checksum, expected, 1e-8);
}

TEST(StencilCpy, MatchesSerialReference) {
  const Params p = small_params();
  const double expected = serial_checksum(p.geo, p.iterations);
  const Result r = run_cpy(p, threaded(3));
  EXPECT_NEAR(r.checksum, expected, 1e-8);
}

TEST(StencilMpi, MatchesSerialReference) {
  const Params p = small_params();  // 2x2x2 blocks = 8 ranks
  const double expected = serial_checksum(p.geo, p.iterations);
  const Result r = run_mpi(p, threaded(8));
  EXPECT_NEAR(r.checksum, expected, 1e-8);
}

TEST(StencilAll, VariantsAgreeOnSimBackend) {
  Params p = small_params();
  p.geo = {2, 2, 1, 4, 4, 4};
  p.iterations = 6;
  const double expected = serial_checksum(p.geo, p.iterations);
  EXPECT_NEAR(run_cx(p, sim(2)).checksum, expected, 1e-8);
  EXPECT_NEAR(run_cpy(p, sim(2)).checksum, expected, 1e-8);
  EXPECT_NEAR(run_mpi(p, sim(4)).checksum, expected, 1e-8);
}

TEST(StencilSim, ModeledKernelChargesVirtualTime) {
  Params p;
  p.geo = {2, 2, 2, 16, 16, 16};
  p.iterations = 10;
  p.real_kernel = false;
  p.cell_cost = 1e-8;
  const Result r = run_cx(p, sim(8));
  // 4096 cells * 1e-8 s = ~41 us per block per iteration; 10 iterations.
  EXPECT_GT(r.elapsed, 10 * 4096 * 1e-8 * 0.9);
  EXPECT_LT(r.elapsed, 10 * 4096 * 1e-8 * 20);
}

TEST(StencilImbalance, AlphaFactorMatchesPaperStructure) {
  const std::int64_t n = 100;
  // Edge fifths are fixed at 10.
  EXPECT_DOUBLE_EQ(alpha_factor(0, n, 0), 10.0);
  EXPECT_DOUBLE_EQ(alpha_factor(19, n, 3), 10.0);
  EXPECT_DOUBLE_EQ(alpha_factor(80, n, 7), 10.0);
  EXPECT_DOUBLE_EQ(alpha_factor(99, n, 7), 10.0);
  // Middle groups range in [100, 600).
  for (int iter = 0; iter < 5; ++iter) {
    for (std::int64_t i = 20; i < 80; i += 7) {
      const double a = alpha_factor(i, n, iter);
      EXPECT_GE(a, 100.0);
      EXPECT_LT(a, 600.0);
    }
  }
  // Time-varying: the phase moves with the iteration.
  EXPECT_NE(alpha_factor(40, n, 0), alpha_factor(40, n, 17));
}

TEST(StencilImbalance, LbImprovesImbalancedRunOnSim) {
  // Paper Fig. 3 in miniature: 4 chares/PE, greedy LB every 30 its.
  // (The exact gain depends on how the paper's rotating-phase load
  // aliases against the LB window; the fig3 bench sweeps the paper's
  // full configuration. Here we assert the qualitative claim.)
  Params p;
  p.geo = {8, 4, 4, 8, 8, 8};  // 128 blocks over 32 PEs = 4 per PE
  p.iterations = 120;
  p.real_kernel = false;
  p.cell_cost = 2e-9;
  p.imbalance = true;
  p.num_load_groups = 32;  // one "MPI block" per PE
  const Result no_lb = run_cx(p, sim(32));
  Params p_lb = p;
  p_lb.lb_period = 30;
  const Result lb = run_cx(p_lb, sim(32));
  EXPECT_GT(lb.lb_migrations, 0u);
  const double speedup = no_lb.elapsed / lb.elapsed;
  EXPECT_GT(speedup, 1.5);  // paper sees 1.9x-2.27x
  EXPECT_LT(lb.imbalance_after, lb.imbalance_before);
}

TEST(StencilImbalance, LbKeepsResultsCorrect) {
  Params p = small_params();
  p.geo = {4, 2, 2, 4, 4, 4};
  p.iterations = 12;
  p.imbalance = true;
  p.num_load_groups = 4;
  p.lb_period = 4;
  const double expected = serial_checksum(p.geo, p.iterations);
  const Result r = run_cx(p, sim(4));
  EXPECT_NEAR(r.checksum, expected, 1e-8);
  const Result rd = run_cpy(p, sim(4));
  EXPECT_NEAR(rd.checksum, expected, 1e-8);
}

}  // namespace
