#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace {

TEST(RunningStats, Empty) {
  cxu::RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
}

TEST(RunningStats, Basics) {
  cxu::RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  // Sample variance of the classic dataset = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStats, MergeMatchesPooled) {
  cxu::Rng rng(7);
  cxu::RunningStats a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    all.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  cxu::RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);  // merging into empty copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, Basics) {
  std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(cxu::percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(cxu::percentile(xs, 100), 10.0);
  EXPECT_DOUBLE_EQ(cxu::percentile(xs, 50), 5.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(cxu::percentile({42.0}, 99), 42.0);
}

TEST(Percentile, Empty) {
  EXPECT_TRUE(std::isnan(cxu::percentile({}, 50)));
}

}  // namespace
