#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace {

TEST(Rng, DeterministicForSeed) {
  cxu::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  cxu::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  cxu::Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformLoHi) {
  cxu::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(3.0, 7.0);
    EXPECT_GE(x, 3.0);
    EXPECT_LT(x, 7.0);
  }
}

TEST(Rng, RangeInclusiveCoversAll) {
  cxu::Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, MeanApproximatesHalf) {
  cxu::Rng rng(2026);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

}  // namespace
