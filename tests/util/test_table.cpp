#include "util/table.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Table, AlignsColumns) {
  cxu::Table t({"cores", "time"});
  t.add_row({"8", "1600.21"});
  t.add_row({"128", "110.0"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("cores"), std::string::npos);
  EXPECT_NE(s.find("1600.21"), std::string::npos);
  // Header and rows start at the same column for the second field.
  const auto header_line = s.substr(0, s.find('\n'));
  EXPECT_NE(header_line.find("time"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(cxu::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(cxu::Table::num(2.0, 0), "2");
  EXPECT_EQ(cxu::Table::num(1234.5, 1), "1234.5");
}

TEST(Table, ShortRowsTolerated) {
  cxu::Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NO_THROW((void)t.to_string());
}

}  // namespace
