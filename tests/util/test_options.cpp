#include "util/options.hpp"

#include <gtest/gtest.h>

namespace {

cxu::Options parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return cxu::Options(static_cast<int>(args.size()),
                      const_cast<char**>(args.data()));
}

TEST(Options, EqualsSyntax) {
  auto o = parse({"--pes=8", "--mode=sim"});
  EXPECT_EQ(o.get_int("pes", 0), 8);
  EXPECT_EQ(o.get_string("mode", ""), "sim");
}

TEST(Options, SpaceSyntax) {
  auto o = parse({"--pes", "16", "--name", "stencil"});
  EXPECT_EQ(o.get_int("pes", 0), 16);
  EXPECT_EQ(o.get_string("name", ""), "stencil");
}

TEST(Options, BareFlagIsTrue) {
  auto o = parse({"--verbose"});
  EXPECT_TRUE(o.get_bool("verbose", false));
  EXPECT_TRUE(o.has("verbose"));
  EXPECT_FALSE(o.has("quiet"));
}

TEST(Options, Defaults) {
  auto o = parse({});
  EXPECT_EQ(o.get_int("pes", 42), 42);
  EXPECT_DOUBLE_EQ(o.get_double("alpha", 1.5), 1.5);
  EXPECT_EQ(o.get_string("mode", "threaded"), "threaded");
  EXPECT_FALSE(o.get_bool("lb", false));
  EXPECT_TRUE(o.get_bool("overlap", true));
}

TEST(Options, BoolValues) {
  auto o = parse({"--a=1", "--b=true", "--c=yes", "--d=on", "--e=0",
                  "--f=false"});
  EXPECT_TRUE(o.get_bool("a", false));
  EXPECT_TRUE(o.get_bool("b", false));
  EXPECT_TRUE(o.get_bool("c", false));
  EXPECT_TRUE(o.get_bool("d", false));
  EXPECT_FALSE(o.get_bool("e", true));
  EXPECT_FALSE(o.get_bool("f", true));
}

TEST(Options, Positional) {
  auto o = parse({"input.dat", "--pes=4", "output.dat"});
  ASSERT_EQ(o.positional().size(), 2u);
  EXPECT_EQ(o.positional()[0], "input.dat");
  EXPECT_EQ(o.positional()[1], "output.dat");
}

TEST(Options, DoubleParsing) {
  auto o = parse({"--alpha=2.5e-6"});
  EXPECT_DOUBLE_EQ(o.get_double("alpha", 0.0), 2.5e-6);
}

TEST(Options, NegativeNumberAsValue) {
  auto o = parse({"--offset=-3"});
  EXPECT_EQ(o.get_int("offset", 0), -3);
}

}  // namespace
