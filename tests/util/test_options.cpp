#include "util/options.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

cxu::Options parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return cxu::Options(static_cast<int>(args.size()),
                      const_cast<char**>(args.data()));
}

cxu::Options parse_with_bools(std::vector<const char*> args,
                              std::initializer_list<std::string_view> bools) {
  args.insert(args.begin(), "prog");
  return cxu::Options(static_cast<int>(args.size()),
                      const_cast<char**>(args.data()), bools);
}

TEST(Options, EqualsSyntax) {
  auto o = parse({"--pes=8", "--mode=sim"});
  EXPECT_EQ(o.get_int("pes", 0), 8);
  EXPECT_EQ(o.get_string("mode", ""), "sim");
}

TEST(Options, SpaceSyntax) {
  auto o = parse({"--pes", "16", "--name", "stencil"});
  EXPECT_EQ(o.get_int("pes", 0), 16);
  EXPECT_EQ(o.get_string("name", ""), "stencil");
}

TEST(Options, BareFlagIsTrue) {
  auto o = parse({"--verbose"});
  EXPECT_TRUE(o.get_bool("verbose", false));
  EXPECT_TRUE(o.has("verbose"));
  EXPECT_FALSE(o.has("quiet"));
}

TEST(Options, Defaults) {
  auto o = parse({});
  EXPECT_EQ(o.get_int("pes", 42), 42);
  EXPECT_DOUBLE_EQ(o.get_double("alpha", 1.5), 1.5);
  EXPECT_EQ(o.get_string("mode", "threaded"), "threaded");
  EXPECT_FALSE(o.get_bool("lb", false));
  EXPECT_TRUE(o.get_bool("overlap", true));
}

TEST(Options, BoolValues) {
  auto o = parse({"--a=1", "--b=true", "--c=yes", "--d=on", "--e=0",
                  "--f=false", "--g=no", "--h=off"});
  EXPECT_TRUE(o.get_bool("a", false));
  EXPECT_TRUE(o.get_bool("b", false));
  EXPECT_TRUE(o.get_bool("c", false));
  EXPECT_TRUE(o.get_bool("d", false));
  EXPECT_FALSE(o.get_bool("e", true));
  EXPECT_FALSE(o.get_bool("f", true));
  EXPECT_FALSE(o.get_bool("g", true));
  EXPECT_FALSE(o.get_bool("h", true));
}

TEST(Options, BoolValuesAreCaseInsensitive) {
  // --ft-auto-recover=TRUE / On must not silently disable the feature.
  auto o = parse({"--a=TRUE", "--b=On", "--c=YES", "--d=FALSE", "--e=Off"});
  EXPECT_TRUE(o.get_bool("a", false));
  EXPECT_TRUE(o.get_bool("b", false));
  EXPECT_TRUE(o.get_bool("c", false));
  EXPECT_FALSE(o.get_bool("d", true));
  EXPECT_FALSE(o.get_bool("e", true));
}

TEST(Options, MalformedBoolThrows) {
  // The historical behavior returned false for any unrecognized value —
  // a typo like "yse" disabled the feature without a word.
  auto o = parse({"--a=yse", "--b=2", "--c="});
  EXPECT_THROW((void)o.get_bool("a", true), std::invalid_argument);
  EXPECT_THROW((void)o.get_bool("b", true), std::invalid_argument);
  EXPECT_THROW((void)o.get_bool("c", true), std::invalid_argument);
}

TEST(Options, DeclaredBoolDoesNotSwallowPositional) {
  // micro_pool --pool-steal 100000: the count is positional, not a
  // value for the boolean flag.
  auto o = parse_with_bools({"--pool-steal", "100000"}, {"pool-steal"});
  EXPECT_TRUE(o.get_bool("pool-steal", false));
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "100000");
}

TEST(Options, DeclaredBoolStillAcceptsEqualsValue) {
  auto o = parse_with_bools({"--pool-steal=off", "100000"}, {"pool-steal"});
  EXPECT_FALSE(o.get_bool("pool-steal", true));
  ASSERT_EQ(o.positional().size(), 1u);
}

TEST(Options, DeclaredBoolFollowedByBoolLiteralIsAmbiguous) {
  // "--pool-steal off" could mean either a value or a positional; the
  // parser demands the unambiguous --pool-steal=off form.
  EXPECT_THROW(parse_with_bools({"--pool-steal", "off"}, {"pool-steal"}),
               std::invalid_argument);
  EXPECT_THROW(parse_with_bools({"--verbose", "TRUE"}, {"verbose"}),
               std::invalid_argument);
}

TEST(Options, UndeclaredFlagStillTakesSpaceValue) {
  auto o = parse_with_bools({"--pes", "16"}, {"pool-steal"});
  EXPECT_EQ(o.get_int("pes", 0), 16);
}

TEST(Options, DashValueOnlyAttachesWhenNumeric) {
  // "--offset -3" keeps working; "--mode -x" no longer eats "-x".
  auto o = parse({"--offset", "-3", "--alpha", "-2.5e-6", "--mode", "-x"});
  EXPECT_EQ(o.get_int("offset", 0), -3);
  EXPECT_DOUBLE_EQ(o.get_double("alpha", 0.0), -2.5e-6);
  EXPECT_EQ(o.get_string("mode", ""), "true");
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "-x");
}

TEST(Options, Positional) {
  auto o = parse({"input.dat", "--pes=4", "output.dat"});
  ASSERT_EQ(o.positional().size(), 2u);
  EXPECT_EQ(o.positional()[0], "input.dat");
  EXPECT_EQ(o.positional()[1], "output.dat");
}

TEST(Options, DoubleParsing) {
  auto o = parse({"--alpha=2.5e-6"});
  EXPECT_DOUBLE_EQ(o.get_double("alpha", 0.0), 2.5e-6);
}

TEST(Options, NegativeNumberAsValue) {
  auto o = parse({"--offset=-3"});
  EXPECT_EQ(o.get_int("offset", 0), -3);
}

TEST(Options, MalformedIntThrows) {
  auto o = parse({"--iters=abc", "--n=3x", "--m="});
  EXPECT_THROW((void)o.get_int("iters", 0), std::invalid_argument);
  EXPECT_THROW((void)o.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)o.get_int("m", 0), std::invalid_argument);
}

TEST(Options, MalformedDoubleThrows) {
  auto o = parse({"--alpha=fast", "--beta=1.5x"});
  EXPECT_THROW((void)o.get_double("alpha", 0.0), std::invalid_argument);
  EXPECT_THROW((void)o.get_double("beta", 0.0), std::invalid_argument);
}

TEST(Options, OutOfRangeIntThrows) {
  auto o = parse({"--big=99999999999999999999999999"});
  EXPECT_THROW((void)o.get_int("big", 0), std::invalid_argument);
}

TEST(Options, OutOfRangeDoubleThrows) {
  auto o = parse({"--huge=1e999999"});
  EXPECT_THROW((void)o.get_double("huge", 0.0), std::invalid_argument);
}

TEST(Options, AbsentValueStillReturnsDefaultWithoutValidation) {
  // Validation applies only to present values; absent flags fall back.
  auto o = parse({"--other=abc"});
  EXPECT_EQ(o.get_int("iters", 7), 7);
  EXPECT_DOUBLE_EQ(o.get_double("alpha", 0.25), 0.25);
}

}  // namespace
