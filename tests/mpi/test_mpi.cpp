// Mini-MPI baseline: point-to-point, nonblocking ops, collectives, on
// both backends.

#include "mpi/mpi.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>

namespace {

using namespace cxmpi;

cxm::MachineConfig threaded(int pes) {
  cxm::MachineConfig cfg;
  cfg.num_pes = pes;
  cfg.backend = cxm::Backend::Threaded;
  return cfg;
}

cxm::MachineConfig sim(int pes) {
  cxm::MachineConfig cfg;
  cfg.num_pes = pes;
  cfg.backend = cxm::Backend::Sim;
  return cfg;
}

TEST(Mpi, BlockingSendRecvRing) {
  std::atomic<int> checks{0};
  run(threaded(4), [&](Comm& c) {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    c.send(next, 7, std::vector<int>{c.rank()});
    const auto got = c.recv<int>(prev, 7);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], prev);
    checks.fetch_add(1);
  });
  EXPECT_EQ(checks.load(), 4);
}

TEST(Mpi, AnySourceReceivesFromAll) {
  std::atomic<int> sum{0};
  run(threaded(4), [&](Comm& c) {
    if (c.rank() == 0) {
      int total = 0;
      for (int i = 1; i < c.size(); ++i) {
        const auto v = c.recv<int>(kAnySource, kAnyTag);
        total += v[0];
      }
      sum.store(total);
    } else {
      c.send(0, c.rank(), std::vector<int>{c.rank() * 10});
    }
  });
  EXPECT_EQ(sum.load(), 10 + 20 + 30);
}

TEST(Mpi, TagsSelectMessages) {
  std::atomic<bool> ok{false};
  run(threaded(2), [&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, /*tag=*/5, std::vector<int>{555});
      c.send(1, /*tag=*/3, std::vector<int>{333});
    } else {
      // Receive tag 3 first even though tag 5 arrived first.
      const auto a = c.recv<int>(0, 3);
      const auto b = c.recv<int>(0, 5);
      ok.store(a[0] == 333 && b[0] == 555);
    }
  });
  EXPECT_TRUE(ok.load());
}

TEST(Mpi, NonblockingGhostExchangePattern) {
  // The stencil communication pattern: post irecvs, isend, waitall.
  std::atomic<int> good{0};
  run(threaded(4), [&](Comm& c) {
    const int left = (c.rank() + c.size() - 1) % c.size();
    const int right = (c.rank() + 1) % c.size();
    std::vector<std::byte> from_left, from_right;
    std::vector<Request> reqs;
    reqs.push_back(c.irecv_bytes(&from_left, left, 1));
    reqs.push_back(c.irecv_bytes(&from_right, right, 2));
    reqs.push_back(c.isend(right, 1, std::vector<double>{1.0 * c.rank()}));
    reqs.push_back(c.isend(left, 2, std::vector<double>{2.0 * c.rank()}));
    c.waitall(reqs);
    double l, r;
    std::memcpy(&l, from_left.data(), sizeof(double));
    std::memcpy(&r, from_right.data(), sizeof(double));
    if (l == 1.0 * left && r == 2.0 * right) good.fetch_add(1);
  });
  EXPECT_EQ(good.load(), 4);
}

TEST(Mpi, AllreduceSumMinMax) {
  std::atomic<int> good{0};
  run(threaded(5), [&](Comm& c) {
    const double me = static_cast<double>(c.rank() + 1);
    const double s = c.allreduce(me, Op::Sum);
    const double mn = c.allreduce(me, Op::Min);
    const double mx = c.allreduce(me, Op::Max);
    if (s == 15.0 && mn == 1.0 && mx == 5.0) good.fetch_add(1);
  });
  EXPECT_EQ(good.load(), 5);
}

TEST(Mpi, VectorAllreduceIsElementwise) {
  std::atomic<int> good{0};
  run(threaded(3), [&](Comm& c) {
    std::vector<double> v = {1.0, static_cast<double>(c.rank())};
    const auto r = c.allreduce(v, Op::Sum);
    if (r[0] == 3.0 && r[1] == 3.0) good.fetch_add(1);
  });
  EXPECT_EQ(good.load(), 3);
}

TEST(Mpi, BarrierSynchronizes) {
  std::atomic<int> before{0}, after_ok{0};
  run(threaded(4), [&](Comm& c) {
    before.fetch_add(1);
    c.barrier();
    if (before.load() == 4) after_ok.fetch_add(1);
  });
  EXPECT_EQ(after_ok.load(), 4);
}

TEST(Mpi, BroadcastFromNonZeroRoot) {
  std::atomic<int> good{0};
  run(threaded(4), [&](Comm& c) {
    std::vector<std::byte> payload;
    if (c.rank() == 2) {
      payload.resize(3, std::byte{42});
    }
    const auto got = c.broadcast_bytes(payload, 2);
    if (got.size() == 3 && got[0] == std::byte{42}) good.fetch_add(1);
  });
  EXPECT_EQ(good.load(), 4);
}

TEST(Mpi, RepeatedAllreducesDoNotConflate) {
  std::atomic<int> good{0};
  run(threaded(4), [&](Comm& c) {
    for (int round = 1; round <= 20; ++round) {
      const double s =
          c.allreduce(static_cast<double>(round * (c.rank() + 1)), Op::Sum);
      if (s != static_cast<double>(round * 10)) return;
    }
    good.fetch_add(1);
  });
  EXPECT_EQ(good.load(), 4);
}

TEST(Mpi, SimBackendVirtualTimeAccountsForBlocking) {
  double makespan = 0.0;
  run(sim(2),
      [&](Comm& c) {
        if (c.rank() == 0) {
          c.compute(1.0);  // rank 1 must wait ~1s for this message
          c.send(1, 0, std::vector<int>{1});
        } else {
          (void)c.recv<int>(0, 0);
        }
      },
      &makespan);
  EXPECT_GE(makespan, 1.0);
  EXPECT_LT(makespan, 1.1);
}

TEST(Mpi, SimBackendScalesToManyRanks) {
  double makespan = 0.0;
  std::atomic<int> done{0};
  run(sim(256),
      [&](Comm& c) {
        const double s = c.allreduce(1.0, Op::Sum);
        if (s == 256.0) done.fetch_add(1);
      },
      &makespan);
  EXPECT_EQ(done.load(), 256);
  EXPECT_GT(makespan, 0.0);
}

TEST(Mpi, ReduceToRootOnly) {
  std::atomic<int> root_sum{0}, nonroot_empty{0};
  run(threaded(4), [&](Comm& c) {
    const auto r = c.reduce({static_cast<double>(c.rank() + 1)}, Op::Sum,
                            /*root=*/2);
    if (c.rank() == 2) {
      root_sum.store(static_cast<int>(r[0]));
    } else if (r.empty()) {
      nonroot_empty.fetch_add(1);
    }
  });
  EXPECT_EQ(root_sum.load(), 10);
  EXPECT_EQ(nonroot_empty.load(), 3);
}

TEST(Mpi, GatherAssemblesInRankOrder) {
  std::atomic<bool> ok{false};
  run(threaded(4), [&](Comm& c) {
    std::vector<double> mine = {c.rank() * 10.0, c.rank() * 10.0 + 1.0};
    const auto all = c.gather(mine, /*root=*/1);
    if (c.rank() == 1) {
      bool good = all.size() == 8;
      for (int r = 0; r < 4 && good; ++r) {
        good = all[static_cast<std::size_t>(2 * r)] == r * 10.0 &&
               all[static_cast<std::size_t>(2 * r + 1)] == r * 10.0 + 1.0;
      }
      ok.store(good);
    }
  });
  EXPECT_TRUE(ok.load());
}

TEST(Mpi, SingleRankWorld) {
  std::atomic<int> ran{0};
  run(threaded(1), [&](Comm& c) {
    EXPECT_EQ(c.allreduce(5.0, Op::Sum), 5.0);
    c.barrier();
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
