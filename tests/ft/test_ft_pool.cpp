// cx::ft degradation in the pool (paper §III under failures): the master
// detects a dead worker, resubmits the tasks it held, and the map still
// returns complete, ordered, correct results. A job whose last worker
// dies fails its future with a typed error instead of hanging. Worker
// heartbeats piggyback on getTask traffic and feed the liveness report.

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <string>

#include "ft/ft.hpp"
#include "pool/pool.hpp"
#include "test_helpers.hpp"
#include "trace/trace.hpp"
#include "wire/agg.hpp"

namespace {

using cpy::Value;
using cxpool::Pool;
using cxtest::run_program;
using cxtest::sim_cfg;
using cxtest::threaded_cfg;

/// Restore process-global pool / aggregation switches after each test.
struct PoolConfigGuard {
  cxpool::PoolConfig saved = cxpool::config();
  ~PoolConfigGuard() { cxpool::configure(saved); }
};
struct AggGuard {
  bool enabled = cx::wire::agg_enabled();
  cx::wire::AggConfig cfg = cx::wire::agg_config();
  ~AggGuard() {
    cx::wire::set_agg_enabled(enabled);
    cx::wire::set_agg_config(cfg);
  }
};

std::atomic<std::int64_t> g_executions{0};

struct Functions {
  Functions() {
    cxpool::register_function("ft_square", [](const Value& x) {
      return Value(x.as_int() * x.as_int());
    });
    cxpool::register_function("ft_slow_square", [](const Value& x) {
      cx::compute(1.0e-3);  // long enough that a mid-job kill lands
      return Value(x.as_int() * x.as_int());
    });
  }
};
const Functions functions;

cpy::List iota(int n) {
  cpy::List items;
  for (int i = 0; i < n; ++i) items.emplace_back(i);
  return items;
}

void expect_squares(const Value& result, int n) {
  ASSERT_FALSE(cxpool::is_error(result));
  const auto& list = result.as_list();
  ASSERT_EQ(list.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(list[static_cast<std::size_t>(i)].as_int(),
              static_cast<std::int64_t>(i) * i);
  }
}

// ---------------------------------------------------------------------------

TEST(FtPool, MapSurvivesWorkerCrash) {
  run_program(threaded_cfg(4), [] {
    Pool pool;
    const int n = 120;  // ~40ms of work across 3 workers
    auto f = pool.map_async("ft_slow_square", 3, iota(n));
    (void)f.get_for(0.015);  // let the job spin up, then kill a worker
    cx::Runtime::current().machine().inject_kill(3);

    // The master resubmits PE 3's outstanding tasks to the survivors;
    // the job completes with every result present, in task order.
    expect_squares(f.get(), n);

    // The dead worker is out of the liveness report; survivors have
    // heartbeats from the getTask requests they sent anyway.
    const Value live = pool.liveness();
    EXPECT_EQ(live.as_dict().count("3"), 0u);
    EXPECT_FALSE(live.as_dict().empty());
    for (const auto& [pe, hb] : live.as_dict()) {
      EXPECT_GT(hb.as_int(), 0) << "worker on PE " << pe;
    }

    // The pool still works after the failure (recruits the survivors).
    expect_squares(pool.map("ft_square", 2, iota(50)), 50);
    cx::exit();
  });
}

TEST(FtPool, JobLosingItsLastWorkerFailsWithTypedError) {
  run_program(threaded_cfg(2), [] {
    Pool pool;
    auto f = pool.map_async("ft_slow_square", 1, iota(100));  // ~100ms
    (void)f.get_for(0.010);  // job is running on the only worker (PE 1)
    cx::Runtime::current().machine().inject_kill(1);

    const Value r = f.get();  // resolves to an error — does not hang
    ASSERT_TRUE(cxpool::is_error(r));
    EXPECT_NE(cxpool::error_message(r).find("PE 1"), std::string::npos);
    cx::exit();
  });
}

TEST(FtPool, CrashReclaimsWholeOutstandingChunks) {
  // Chunked shipping on, with grants big enough that the whole job is
  // handed out up front: when PE 3 dies it holds a large outstanding
  // chunk (and possibly stolen ranges), all of which must be reclaimed
  // and resubmitted — and every task counted exactly once.
  cxpool::register_function("ft_counted_square", [](const Value& x) {
    g_executions.fetch_add(1, std::memory_order_relaxed);
    cx::compute(1.0e-3);
    return Value(x.as_int() * x.as_int());
  });
  PoolConfigGuard guard;
  cxpool::PoolConfig pc;
  pc.chunk = 40;  // 120 tasks / 3 workers: everything granted at start
  cxpool::configure(pc);
  g_executions.store(0);
  run_program(threaded_cfg(4), [] {
    Pool pool;
    const int n = 120;
    auto f = pool.map_async("ft_counted_square", 3, iota(n));
    (void)f.get_for(0.015);  // mid-job: every worker holds a fat chunk
    cx::Runtime::current().machine().inject_kill(3);
    expect_squares(f.get(), n);
    cx::exit();
  });
  // Resubmission may re-execute tasks the dead worker finished without
  // reporting; the result set is still exactly-once (checked above),
  // and nothing was lost.
  EXPECT_GE(g_executions.load(), 120);
}

TEST(FtPool, ChunksAndStealsSurviveLossyAggregatedWireAndMidJobCrash) {
  // The full gauntlet on the simulator: sender-side aggregation on,
  // seeded drop/dup/delay under the reliable protocol, and a scripted
  // mid-job crash of a worker holding chunked grants. The map must
  // still return complete, ordered, exactly-once results.
  cxpool::register_function("ft_sim_grain", [](const Value& x) {
    cx::compute(5.0e-4);
    return Value(x.as_int() * 3 + 1);
  });
  PoolConfigGuard guard;
  cxpool::configure(cxpool::PoolConfig{});  // chunking + stealing on
  AggGuard agg;
  cx::wire::set_agg_enabled(true);

  cx::RuntimeConfig cfg = sim_cfg(6);
  cfg.machine.faults.seed = 7;
  cfg.machine.faults.drop = 0.03;
  cfg.machine.faults.dup = 0.03;
  cfg.machine.faults.delay = 0.2;
  cfg.machine.faults.delay_s = 2.0e-4;
  cfg.machine.faults.reliable = true;
  cfg.machine.faults.retry.base_s = 1.0e-3;
  cfg.machine.faults.script.push_back(
      {4, 0.02, cx::ft::FailureKind::Crashed});
  run_program(cfg, [] {
    Pool pool;
    const int n = 300;  // ~30ms of virtual work across 5 workers
    const Value r = pool.map("ft_sim_grain", 5, iota(n));
    ASSERT_FALSE(cxpool::is_error(r));
    const auto& list = r.as_list();
    ASSERT_EQ(list.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(list[static_cast<std::size_t>(i)].as_int(),
                static_cast<std::int64_t>(i) * 3 + 1);
    }
    cx::exit();
  });
}

TEST(FtPool, DecoupledBeatsAdvanceLivenessMidChunk) {
  // Regression for heartbeat/task-request decoupling: grant the whole
  // job to one worker in a single chunk. Without the periodic beat the
  // worker sends nothing until the job ends, so mid-job liveness shows
  // no heartbeat; with beats its counter keeps advancing while it
  // grinds through the chunk. Observations are collected inside the
  // program and asserted outside it, so a miss fails the test instead
  // of skipping cx::exit() and hanging the runtime; the beats-on phase
  // polls with a deadline because wall-clock timers slip badly when
  // the test suite runs oversubscribed.
  cxpool::register_function("ft_grind", [](const Value& x) {
    cx::compute(4.0e-3);
    return x;
  });
  constexpr int n = 30;  // ~120ms on one worker

  PoolConfigGuard guard;
  cxpool::PoolConfig pc;
  pc.chunk = 64;    // whole job in one grant
  pc.quantum = 1;   // yield between tasks so beats can interleave
  pc.beat_s = 0.0;  // beats OFF: the worker goes silent mid-chunk
  cxpool::configure(pc);
  bool silent_mid_job = false;
  std::uint64_t len0 = 0;
  run_program(threaded_cfg(2), [&] {
    Pool pool;
    auto f = pool.map_async("ft_grind", 1, iota(n));
    if (!f.get_for(0.040)) {  // still mid-job: one initial-grant
      const Value live = pool.liveness();  // envelope, then silence
      silent_mid_job = live.as_dict().count("1") == 0;
    } else {
      silent_mid_job = true;  // finished before we could look: vacuous
    }
    len0 = f.get().length();
    cx::exit();
  });
  EXPECT_TRUE(silent_mid_job) << "worker must not have beaten";
  EXPECT_EQ(len0, static_cast<std::uint64_t>(n));
  EXPECT_EQ(cx::trace::pool_stats().beats, 0u);

  pc.beat_s = 0.005;  // beats ON
  cxpool::configure(pc);
  std::int64_t hb1 = 0;
  std::int64_t hb2 = 0;
  std::uint64_t len1 = 0;
  run_program(threaded_cfg(2), [&] {
    Pool pool;
    auto f = pool.map_async("ft_grind", 1, iota(n));
    // Poll until the first mid-chunk beat reaches the master, then
    // until the heartbeat advances past it. The job's final result
    // flush also carries a heartbeat, so each loop terminates even in
    // the worst case; pool_stats().beats below pins the mechanism.
    for (int i = 0; i < 1000 && hb1 == 0; ++i) {
      (void)f.get_for(0.005);
      const Value live = pool.liveness();
      const auto it = live.as_dict().find("1");
      if (it != live.as_dict().end()) hb1 = it->second.as_int();
    }
    for (int i = 0; i < 1000 && hb2 <= hb1; ++i) {
      (void)f.get_for(0.005);
      const Value live = pool.liveness();
      const auto it = live.as_dict().find("1");
      if (it != live.as_dict().end()) hb2 = it->second.as_int();
    }
    len1 = f.get().length();
    cx::exit();
  });
  EXPECT_GT(hb1, 0) << "mid-chunk worker must have beaten";
  EXPECT_GT(hb2, hb1)
      << "heartbeat must keep advancing while the chunk drains";
  EXPECT_EQ(len1, static_cast<std::uint64_t>(n));
  EXPECT_GT(cx::trace::pool_stats().beats, 0u);
}

TEST(FtPool, HeartbeatsAccumulateWithFtDisabled) {
  run_program(threaded_cfg(3), [] {
    Pool pool;  // default config: no injection, no reliable protocol
    expect_squares(pool.map("ft_square", 2, iota(40)), 40);
    const Value live1 = pool.liveness();
    ASSERT_EQ(live1.as_dict().size(), 2u);  // workers on PEs 1 and 2
    long long total1 = 0;
    for (const auto& [pe, hb] : live1.as_dict()) {
      EXPECT_GT(hb.as_int(), 0) << "worker on PE " << pe;
      total1 += hb.as_int();
    }

    // More work, more heartbeats — they ride existing getTask messages.
    expect_squares(pool.map("ft_square", 2, iota(40)), 40);
    const Value live2 = pool.liveness();  // named: range-for over a
    long long total2 = 0;                 // temporary's dict would dangle
    for (const auto& [pe, hb] : live2.as_dict()) {
      total2 += hb.as_int();
    }
    EXPECT_GT(total2, total1);
    cx::exit();
  });
}

}  // namespace
