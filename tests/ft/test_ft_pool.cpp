// cx::ft degradation in the pool (paper §III under failures): the master
// detects a dead worker, resubmits the tasks it held, and the map still
// returns complete, ordered, correct results. A job whose last worker
// dies fails its future with a typed error instead of hanging. Worker
// heartbeats piggyback on getTask traffic and feed the liveness report.

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "ft/ft.hpp"
#include "pool/pool.hpp"
#include "test_helpers.hpp"

namespace {

using cpy::Value;
using cxpool::Pool;
using cxtest::run_program;
using cxtest::threaded_cfg;

struct Functions {
  Functions() {
    cxpool::register_function("ft_square", [](const Value& x) {
      return Value(x.as_int() * x.as_int());
    });
    cxpool::register_function("ft_slow_square", [](const Value& x) {
      cx::compute(1.0e-3);  // long enough that a mid-job kill lands
      return Value(x.as_int() * x.as_int());
    });
  }
};
const Functions functions;

cpy::List iota(int n) {
  cpy::List items;
  for (int i = 0; i < n; ++i) items.emplace_back(i);
  return items;
}

void expect_squares(const Value& result, int n) {
  ASSERT_FALSE(cxpool::is_error(result));
  const auto& list = result.as_list();
  ASSERT_EQ(list.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(list[static_cast<std::size_t>(i)].as_int(),
              static_cast<std::int64_t>(i) * i);
  }
}

// ---------------------------------------------------------------------------

TEST(FtPool, MapSurvivesWorkerCrash) {
  run_program(threaded_cfg(4), [] {
    Pool pool;
    const int n = 120;  // ~40ms of work across 3 workers
    auto f = pool.map_async("ft_slow_square", 3, iota(n));
    (void)f.get_for(0.015);  // let the job spin up, then kill a worker
    cx::Runtime::current().machine().inject_kill(3);

    // The master resubmits PE 3's outstanding tasks to the survivors;
    // the job completes with every result present, in task order.
    expect_squares(f.get(), n);

    // The dead worker is out of the liveness report; survivors have
    // heartbeats from the getTask requests they sent anyway.
    const Value live = pool.liveness();
    EXPECT_EQ(live.as_dict().count("3"), 0u);
    EXPECT_FALSE(live.as_dict().empty());
    for (const auto& [pe, hb] : live.as_dict()) {
      EXPECT_GT(hb.as_int(), 0) << "worker on PE " << pe;
    }

    // The pool still works after the failure (recruits the survivors).
    expect_squares(pool.map("ft_square", 2, iota(50)), 50);
    cx::exit();
  });
}

TEST(FtPool, JobLosingItsLastWorkerFailsWithTypedError) {
  run_program(threaded_cfg(2), [] {
    Pool pool;
    auto f = pool.map_async("ft_slow_square", 1, iota(100));  // ~100ms
    (void)f.get_for(0.010);  // job is running on the only worker (PE 1)
    cx::Runtime::current().machine().inject_kill(1);

    const Value r = f.get();  // resolves to an error — does not hang
    ASSERT_TRUE(cxpool::is_error(r));
    EXPECT_NE(cxpool::error_message(r).find("PE 1"), std::string::npos);
    cx::exit();
  });
}

TEST(FtPool, HeartbeatsAccumulateWithFtDisabled) {
  run_program(threaded_cfg(3), [] {
    Pool pool;  // default config: no injection, no reliable protocol
    expect_squares(pool.map("ft_square", 2, iota(40)), 40);
    const Value live1 = pool.liveness();
    ASSERT_EQ(live1.as_dict().size(), 2u);  // workers on PEs 1 and 2
    long long total1 = 0;
    for (const auto& [pe, hb] : live1.as_dict()) {
      EXPECT_GT(hb.as_int(), 0) << "worker on PE " << pe;
      total1 += hb.as_int();
    }

    // More work, more heartbeats — they ride existing getTask messages.
    expect_squares(pool.map("ft_square", 2, iota(40)), 40);
    const Value live2 = pool.liveness();  // named: range-for over a
    long long total2 = 0;                 // temporary's dict would dangle
    for (const auto& [pe, hb] : live2.as_dict()) {
      total2 += hb.as_int();
    }
    EXPECT_GT(total2, total1);
    cx::exit();
  });
}

}  // namespace
