// cx::ft x sections: a scripted PE crash lands mid-run while section
// multicasts and section-scoped reductions are in flight. The phased
// driver detects the failure, rolls back to the last collective
// checkpoint (which carries the section specs, per-element sequence
// tags, and any partially folded fragments), and re-runs the phase; the
// final reduction value and the last checkpoint digest must match a
// fault-free run bit for bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "ft/ft.hpp"
#include "test_helpers.hpp"
#include "trace/trace.hpp"

namespace {

constexpr int kCells = 16;
constexpr int kMembers = 8;  // the odd indices
constexpr int kPhases = 6;

struct FtCell : cx::Chare {
  int hits = 0;

  void pup(pup::Er& p) override { p | hits; }

  // Idempotent phase step: climb to `target` multicast rounds, then
  // fold the count into the section reduction. Re-broadcasting after a
  // rollback (from any restored boundary) converges to the same state.
  void work(int target, cx::SectionProxy<FtCell> s, cx::Future<int> f) {
    while (hits < target) {
      cx::compute(5e-6);  // advance virtual time so the crash lands mid-run
      ++hits;
    }
    contribute(s, hits, cx::reducer::sum<int>(), cx::cb(f));
  }

  int get_hits() { return hits; }
};

// Run the phased section workload; returns the final section-reduction
// value and writes the digest of the last checkpoint taken.
int run_scenario(const cxm::MachineConfig& machine, std::uint64_t* digest) {
  cx::RuntimeConfig cfg;
  cfg.machine = machine;
  cx::Runtime rt(cfg);
  int final_sum = -1;
  rt.run([&] {
    auto arr = cx::create_array<FtCell>({kCells});
    std::vector<cx::Index> members;
    for (int i = 1; i < kCells; i += 2) members.push_back(cx::Index(i));
    auto s = arr.section(members);
    {
      // target=0 is a pure section barrier: every element exists and the
      // section is installed everywhere before the first checkpoint.
      auto barrier = cx::make_future<int>();
      s.broadcast<&FtCell::work>(0, s, barrier);
      (void)barrier.get();
    }
    const cx::ft::RetryPolicy& pol = cx::ft::retry_policy();
    (void)cx::ft::checkpoint();
    for (int target = 1; target <= kPhases; ++target) {
      auto f = cx::make_future<int>();
      s.broadcast<&FtCell::work>(target, s, f);
      std::optional<int> phase;
      int attempt = 0;
      while (!(phase = f.get_for(std::max(pol.delay(attempt), 1.0)))) {
        if (cx::ft::failed_pes().empty()) continue;  // slow, not dead
        if (cx::ft::restore() != cx::ft::RestoreStatus::Ok) continue;
        if (!pol.allows(++attempt)) {
          throw std::runtime_error(
              "ft-sections: phase could not complete within the retry "
              "policy's attempt budget");
        }
        f = cx::make_future<int>();
        s.broadcast<&FtCell::work>(target, s, f);
      }
      final_sum = *phase;
      (void)cx::ft::checkpoint();
    }
    for (int i = 0; i < kCells; ++i) {
      EXPECT_EQ(arr[i].call<&FtCell::get_hits>().get(),
                i % 2 == 1 ? kPhases : 0);
    }
    cx::exit();
  });
  *digest = cx::ft::checkpoint_digest();
  return final_sum;
}

TEST(FtSections, CrashMidSectionReductionMatchesFaultFree) {
  cxm::MachineConfig machine;
  machine.num_pes = 4;
  machine.backend = cxm::Backend::Sim;

  std::uint64_t clean_digest = 0;
  const int clean = run_scenario(machine, &clean_digest);
  EXPECT_EQ(clean, kMembers * kPhases);

  // Same workload with PE 2 scripted to die mid-run (virtual seconds:
  // inside phase 2 of the loop, while reduction fragments are in
  // flight — the fault-free phases land at ~2.4e-5s intervals).
  machine.faults.crash_pe = 2;
  machine.faults.crash_at = 5.0e-5;
  cx::trace::reset();
  cx::trace::Config tc;
  tc.enabled = true;
  tc.print_summary = false;
  cx::trace::configure(tc);
  std::uint64_t crashed_digest = 0;
  const int crashed = run_scenario(machine, &crashed_digest);
  const auto counters = cx::trace::aggregate();
  cx::trace::reset();

  // Guard against the crash silently not firing (a crash_at past the
  // makespan would make the digest comparison vacuous).
  EXPECT_GE(counters.ft_failures, 1u);
  EXPECT_EQ(crashed, clean);
  EXPECT_EQ(crashed_digest, clean_digest);
  EXPECT_NE(crashed_digest, 0u);
}

}  // namespace
