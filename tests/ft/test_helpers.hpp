#pragma once
// Shared helpers for core-runtime tests: run a program on a fresh runtime.

#include <functional>
#include <string>

#include "core/charm.hpp"

namespace cxtest {

inline cx::RuntimeConfig threaded_cfg(int pes) {
  cx::RuntimeConfig cfg;
  cfg.machine.num_pes = pes;
  cfg.machine.backend = cxm::Backend::Threaded;
  return cfg;
}

inline cx::RuntimeConfig sim_cfg(int pes, const std::string& net = "simple") {
  cx::RuntimeConfig cfg;
  cfg.machine.num_pes = pes;
  cfg.machine.backend = cxm::Backend::Sim;
  cfg.machine.network = net;
  return cfg;
}

/// Run `entry` on a fresh runtime; returns after the program exits.
inline void run_program(const cx::RuntimeConfig& cfg,
                        std::function<void()> entry) {
  cx::Runtime rt(cfg);
  rt.run(std::move(entry));
}

}  // namespace cxtest
