// cx::ft tier: seeded fault injection replays deterministically, the
// seq+ack protocol delivers exactly-once under drop/dup/delay, the
// no-fault configuration sends zero protocol traffic (the fast path the
// messaging benchmarks depend on), failures surface as typed events, and
// Future::get_for bounds a wait on both backends.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "ft/ft.hpp"
#include "test_helpers.hpp"
#include "trace/trace.hpp"

namespace {

using cxtest::run_program;
using cxtest::sim_cfg;
using cxtest::threaded_cfg;

// ---------------------------------------------------------------------------
// Workload: a ring of array elements, each firing `rounds` tokens at its
// successor. Cross-PE traffic in both directions around the PE set, with
// a final sum reduction — enough wire activity for injected faults to
// bite, and a checkable invariant (exactly-once delivery => exact sum).

struct RingCell : cx::Chare {
  int got = 0;
  int want = 0;
  cx::Future<int> done;

  void start(int rounds, int n, cx::Future<int> target) {
    want = rounds;
    done = target;
    auto arr = cx::collection_of<RingCell>(*this);
    const int next = (this_index()[0] + 1) % n;
    for (int r = 0; r < rounds; ++r) arr[{next}].send<&RingCell::token>(r);
    if (got >= want) finish();  // successor's tokens may have all landed
  }
  void token(int) {
    ++got;
    if (want > 0 && got == want) finish();
  }
  void finish() { contribute(got, cx::reducer::sum<int>(), cx::cb(done)); }
};

struct Counter : cx::Chare {
  int hits = 0;
  void hit() { ++hits; }
  int get() { return hits; }
};

struct FutureFiller : cx::Chare {
  void fill(cx::Future<int> f, int v) { f.send(v); }
};

struct TraceRun {
  int sum = 0;
  std::vector<cx::trace::Event> events;  // all PEs, concatenated in PE order
  cx::trace::Counters total;
};

/// Run the ring workload with tracing on; harvest the event timeline and
/// aggregate counters, then put the trace subsystem back to its default.
TraceRun traced_ring_run(const cx::RuntimeConfig& cfg, int cells,
                         int rounds) {
  cx::trace::reset();
  cx::trace::Config tc;
  tc.enabled = true;
  tc.print_summary = false;
  cx::trace::configure(tc);
  TraceRun out;
  run_program(cfg, [&] {
    auto arr = cx::create_array<RingCell>({cells});
    auto f = cx::make_future<int>();
    arr.broadcast<&RingCell::start>(rounds, cells, f);
    out.sum = f.get();
    cx::exit();
  });
  for (int pe = 0; pe < cfg.machine.num_pes; ++pe) {
    for (const auto& e : cx::trace::events(pe)) out.events.push_back(e);
  }
  out.total = cx::trace::aggregate();
  cx::trace::reset();
  return out;
}

bool same_timeline(const std::vector<cx::trace::Event>& a,
                   const std::vector<cx::trace::Event>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].time != b[i].time || a[i].kind != b[i].kind ||
        a[i].a != b[i].a || a[i].b != b[i].b) {
      return false;
    }
  }
  return true;
}

cx::RuntimeConfig faulty_sim_cfg(std::uint64_t seed) {
  cx::RuntimeConfig cfg = sim_cfg(4);
  cfg.machine.faults.seed = seed;
  cfg.machine.faults.drop = 0.05;
  cfg.machine.faults.dup = 0.05;
  cfg.machine.faults.delay = 0.2;
  cfg.machine.faults.delay_s = 2.0e-4;
  cfg.machine.faults.reliable = true;
  cfg.machine.faults.retry.base_s = 1.0e-3;
  return cfg;
}

constexpr int kCells = 8;
constexpr int kRounds = 20;
constexpr int kSum = kCells * kRounds;

// ---------------------------------------------------------------------------

TEST(FtDeterminism, SameSeedReplaysIdenticalTimeline) {
  const TraceRun a = traced_ring_run(faulty_sim_cfg(7), kCells, kRounds);
  const TraceRun b = traced_ring_run(faulty_sim_cfg(7), kCells, kRounds);

  // The protocol masked every injected fault (exactly-once delivery).
  EXPECT_EQ(a.sum, kSum);
  EXPECT_EQ(b.sum, kSum);

  // The faults actually bit: drops happened and were repaired.
  EXPECT_GT(a.total.ft_drops, 0u);
  EXPECT_GT(a.total.ft_retransmits, 0u);
  EXPECT_GT(a.total.ft_acks, 0u);
  EXPECT_EQ(a.total.ft_failures, 0u);

  // One seeded stream drives every decision: the whole event timeline —
  // virtual timestamps included — replays exactly.
  EXPECT_TRUE(same_timeline(a.events, b.events));
  EXPECT_EQ(a.total.ft_drops, b.total.ft_drops);
  EXPECT_EQ(a.total.ft_retransmits, b.total.ft_retransmits);
}

TEST(FtDeterminism, DifferentSeedGivesDifferentFaultScript) {
  const TraceRun a = traced_ring_run(faulty_sim_cfg(7), kCells, kRounds);
  const TraceRun b = traced_ring_run(faulty_sim_cfg(1234), kCells, kRounds);
  EXPECT_EQ(a.sum, kSum);
  EXPECT_EQ(b.sum, kSum);
  EXPECT_FALSE(same_timeline(a.events, b.events));
}

// ---------------------------------------------------------------------------

TEST(FtFastPath, DefaultConfigSendsZeroProtocolTraffic) {
  for (const auto& cfg : {threaded_cfg(4), sim_cfg(4)}) {
    const TraceRun r = traced_ring_run(cfg, kCells, kRounds);
    EXPECT_EQ(r.sum, kSum);
    EXPECT_EQ(r.total.ft_acks, 0u);
    EXPECT_EQ(r.total.ft_drops, 0u);
    EXPECT_EQ(r.total.ft_retransmits, 0u);
    EXPECT_EQ(r.total.ft_failures, 0u);
  }
}

TEST(FtFastPath, ReliableModeAcksCrossPeMessages) {
  cx::RuntimeConfig cfg = sim_cfg(4);
  cfg.machine.faults.reliable = true;  // protocol on, no injection
  const TraceRun r = traced_ring_run(cfg, kCells, kRounds);
  EXPECT_EQ(r.sum, kSum);
  EXPECT_GT(r.total.ft_acks, 0u);
  EXPECT_EQ(r.total.ft_drops, 0u);
  EXPECT_EQ(r.total.ft_failures, 0u);
}

// ---------------------------------------------------------------------------

TEST(FtFailure, ScriptedCrashSurfacesTypedFailure) {
  cx::RuntimeConfig cfg = sim_cfg(4);
  cfg.machine.faults.crash_pe = 3;
  cfg.machine.faults.crash_at = 1.0e-4;  // virtual seconds
  run_program(cfg, [&] {
    std::vector<cx::ft::PeFailure> seen;
    cx::ft::on_failure(
        [&](const cx::ft::PeFailure& f) { seen.push_back(f); });
    // Traffic between PEs 0 and 1 advances the virtual clock past the
    // scripted crash of (idle) PE 3; nothing the program needs dies.
    auto c = cx::create_chare<Counter>(1);
    int pings = 0;
    while (cx::ft::failed_pes().empty() && pings < 20000) {
      c.send<&Counter::hit>();
      (void)c.call<&Counter::get>().get();
      ++pings;
    }
    ASSERT_EQ(cx::ft::failed_pes(), std::vector<int>{3});
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].pe, 3);
    EXPECT_EQ(seen[0].kind, cx::ft::FailureKind::Crashed);
    EXPECT_GE(seen[0].time, cfg.machine.faults.crash_at);
    cx::exit();
  });
}

TEST(FtFailure, HungPeExhaustsRetriesAndIsReportedUnreachable) {
  cx::RuntimeConfig cfg = sim_cfg(2);
  cfg.machine.faults.hang_pe = 1;
  cfg.machine.faults.hang_at = 1.0e-6;  // stops draining almost at once
  cfg.machine.faults.reliable = true;
  cfg.machine.faults.retry.base_s = 1.0e-4;
  cfg.machine.faults.retry.max_attempts = 2;
  run_program(cfg, [&] {
    std::vector<cx::ft::PeFailure> seen;
    cx::ft::on_failure(
        [&](const cx::ft::PeFailure& f) { seen.push_back(f); });
    auto c = cx::create_chare<Counter>(1);  // lands in the hung mailbox
    c.send<&Counter::hit>();
    auto idle = cx::make_future<int>();
    int spins = 0;
    while (cx::ft::failed_pes().empty() && spins < 1000) {
      (void)idle.get_for(1.0e-3);  // advance virtual time; never resolves
      ++spins;
    }
    ASSERT_EQ(cx::ft::failed_pes(), std::vector<int>{1});
    ASSERT_GE(seen.size(), 1u);
    EXPECT_EQ(seen[0].pe, 1);
    EXPECT_EQ(seen[0].kind, cx::ft::FailureKind::Unreachable);
    cx::exit();
  });
}

// ---------------------------------------------------------------------------

TEST(FtGetFor, TimesOutWithoutValueThenStillUsable) {
  for (const auto& cfg : {threaded_cfg(2), sim_cfg(2)}) {
    run_program(cfg, [] {
      auto f = cx::make_future<int>();
      EXPECT_EQ(f.get_for(0.02), std::nullopt);  // nobody will send
      auto filler = cx::create_chare<FutureFiller>(1);
      filler.send<&FutureFiller::fill>(f, 42);
      EXPECT_EQ(f.get(), 42);  // the timed-out future is still live

      // Polling loop: the idiom recovery drivers use.
      auto g = cx::make_future<int>();
      filler.send<&FutureFiller::fill>(g, 7);
      std::optional<int> got;
      while (!(got = g.get_for(0.05))) {
      }
      EXPECT_EQ(*got, 7);
      cx::exit();
    });
  }
}

TEST(FtGetFor, ReadyValueReturnsImmediately) {
  run_program(threaded_cfg(1), [] {
    auto f = cx::make_future<int>();
    f.send(9);
    EXPECT_EQ(f.get_for(10.0), std::optional<int>(9));
    cx::exit();
  });
}

}  // namespace
