// Chaos tier: the stencil figure workload on the DES backend survives
// seeded multi-event fault schedules — double crashes, a coordinator
// (PE 0) crash, a silent hang caught by the heartbeat ring, and a PE
// crashed again after being revived — with --ft-auto-recover driving
// every rollback. Each schedule must reproduce the fault-free checksum
// AND the fault-free final checkpoint digest bit for bit; the trace
// counters prove the faults actually fired (no vacuous pass).
//
// Schedule times are fractions of the measured fault-free makespan, so
// the scripts stay mid-run even as the stencil's cost model evolves.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/stencil/stencil_cx.hpp"
#include "ft/ft.hpp"
#include "trace/trace.hpp"

namespace {

stencil::Params chaos_stencil() {
  stencil::Params p;  // default geometry: 2x2x2 blocks of 8x8x8 cells
  p.iterations = 10;
  p.real_kernel = true;
  p.ckpt_every = 2;
  return p;
}

struct ChaosRun {
  stencil::Result result;
  std::uint64_t digest = 0;
  cx::trace::Counters counters;
};

ChaosRun run_schedule(const cxm::MachineConfig& machine) {
  cx::trace::reset();
  cx::trace::Config tc;
  tc.enabled = true;
  tc.print_summary = false;
  cx::trace::configure(tc);
  ChaosRun out;
  out.result = stencil::run_cx(chaos_stencil(), machine);
  out.digest = cx::ft::checkpoint_digest();
  out.counters = cx::trace::aggregate();
  cx::trace::reset();
  return out;
}

struct Schedule {
  std::string name;
  std::vector<cx::ft::ScriptedFault> script;
  double heartbeat_s = 0.0;       // >0 arms the liveness ring
  std::uint64_t min_failures = 1;  // trace floor: the schedule really bit
};

class FtChaos : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cxm::MachineConfig machine;
    machine.num_pes = 4;
    machine.backend = cxm::Backend::Sim;
    const ChaosRun clean = run_schedule(machine);
    clean_checksum_ = clean.result.checksum;
    clean_digest_ = clean.digest;
    clean_makespan_ = clean.result.elapsed;
    ASSERT_GT(clean_makespan_, 0.0);
    ASSERT_NE(clean_digest_, 0u);
  }

  static cx::ft::ScriptedFault at(double frac, int pe,
                                  cx::ft::FailureKind kind) {
    cx::ft::ScriptedFault f;
    f.pe = pe;
    f.at = frac * clean_makespan_;
    f.kind = kind;
    return f;
  }

  void soak(const Schedule& s) {
    SCOPED_TRACE(s.name);
    cxm::MachineConfig machine;
    machine.num_pes = 4;
    machine.backend = cxm::Backend::Sim;
    machine.faults.seed = 11;
    machine.faults.auto_recover = true;
    machine.faults.script = s.script;
    if (s.heartbeat_s > 0.0) {
      machine.faults.heartbeat_s = s.heartbeat_s;
      machine.faults.hb_threshold = 3.0;
    }
    const ChaosRun r = run_schedule(machine);

    // The schedule fired (no vacuous pass), recovery ran, and the
    // machine converged back to the fault-free answer and digest.
    EXPECT_GE(r.counters.ft_failures, s.min_failures);
    EXPECT_GE(r.counters.ft_recoveries, 1u);
    EXPECT_DOUBLE_EQ(r.result.checksum, clean_checksum_);
    EXPECT_EQ(r.digest, clean_digest_);
    // Recovery costs time: the faulty run cannot be faster than clean.
    EXPECT_GE(r.result.elapsed, clean_makespan_);
  }

  static double clean_checksum_;
  static std::uint64_t clean_digest_;
  static double clean_makespan_;
};

double FtChaos::clean_checksum_ = 0.0;
std::uint64_t FtChaos::clean_digest_ = 0;
double FtChaos::clean_makespan_ = 0.0;

using cx::ft::FailureKind;

// ---------------------------------------------------------------------------

TEST_F(FtChaos, SingleMidRunCrash) {
  soak({"single-crash", {at(0.4, 2, FailureKind::Crashed)}});
}

TEST_F(FtChaos, DoubleCrashTwoPes) {
  soak({"double-crash",
        {at(0.3, 1, FailureKind::Crashed), at(0.6, 3, FailureKind::Crashed)},
        0.0, 2});
}

TEST_F(FtChaos, CoordinatorCrashFailsOverToNextPe) {
  // PE 0 hosts the recovery coordinator (and the driver fiber): killing
  // it forces the failover election to the lowest surviving PE.
  soak({"coordinator-crash", {at(0.4, 0, FailureKind::Crashed)}});
}

TEST_F(FtChaos, SilentHangCaughtByHeartbeats) {
  Schedule s{"silent-hang", {at(0.4, 2, FailureKind::Hung)}};
  // The interval must sit well above the network alpha (2us): beats
  // arriving at latency scale look like silence and every PE declares
  // every other hung. A tenth of the makespan (~16us) keeps detection
  // mid-run while staying an order of magnitude above the noise floor.
  s.heartbeat_s = clean_makespan_ / 10.0;
  soak(s);
}

TEST_F(FtChaos, RevivedPeCrashesAgain) {
  // The second event targets the PE the first recovery just revived —
  // the multi-event script shape the legacy one-shot knobs could not
  // express. It must land after the first recovery round is over
  // (detection + settle + restore cost roughly a clean makespan here);
  // a script event for a PE that is still down is consumed unfired.
  // 2.2x the clean makespan is past the revival yet still mid-replay.
  soak({"crash-revive-crash",
        {at(0.3, 2, FailureKind::Crashed), at(2.2, 2, FailureKind::Crashed)},
        0.0, 2});
}

}  // namespace
