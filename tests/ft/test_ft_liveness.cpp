// Liveness layer + auto-recovery coordinator: runtime heartbeats catch
// a PE that goes silent with NO application traffic in flight (the case
// retransmit give-up can never detect), the coordinator rolls the
// machine back to the last checkpoint on its own, and the whole layer
// is inert — no false positives, no app-visible traffic — when healthy
// or disabled.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "ft/ft.hpp"
#include "test_helpers.hpp"
#include "trace/trace.hpp"

namespace {

using cxtest::run_program;
using cxtest::sim_cfg;
using cxtest::threaded_cfg;

struct LiveCell : cx::Chare {
  int x = 0;
  void bump() { ++x; }
  int get() { return x; }
  void pup(pup::Er& p) override { p | x; }
};

constexpr int kCells = 8;

/// Drive the backend clock from the main fiber until `pred` holds:
/// repeated bounded waits on a future nobody fulfils. Spurious wakes
/// (the restore wake-all) just re-check the predicate.
template <typename Pred>
bool wait_until(Pred pred, double slice, int slices) {
  auto idle = cx::make_future<int>();
  for (int i = 0; i < slices && !pred(); ++i) (void)idle.get_for(slice);
  return pred();
}

// ---------------------------------------------------------------------------
// Detection with zero app traffic. The hung PE stops draining its
// mailbox and sends nothing — only the heartbeat ring can notice. The
// detector must fire within the documented bound and the coordinator
// must bring the machine back to the checkpointed state.

void run_silent_hang(const cx::RuntimeConfig& cfg, int hang_pe,
                     bool scripted) {
  cx::trace::reset();
  cx::trace::Config tc;
  tc.enabled = true;
  tc.print_summary = false;
  cx::trace::configure(tc);
  run_program(cfg, [&] {
    auto arr = cx::create_array<LiveCell>({kCells});
    for (int i = 0; i < kCells; ++i) arr[{i}].send<&LiveCell::bump>();
    for (int i = 0; i < kCells; ++i) {
      (void)arr[{i}].call<&LiveCell::get>().get();  // drain
    }
    (void)cx::ft::checkpoint();
    if (!scripted) cx::Runtime::current().machine().inject_hang(hang_pe);
    // From here the application is silent; only heartbeats flow.
    const double slice = cfg.machine.faults.heartbeat_s * 4.0;
    EXPECT_TRUE(wait_until([] { return cx::ft::recoveries() >= 1; },
                           slice, 400));
    EXPECT_TRUE(cx::ft::failed_pes().empty());  // hung PE revived
    // The rollback landed on the checkpointed state.
    for (int i = 0; i < kCells; ++i) {
      EXPECT_EQ(arr[{i}].call<&LiveCell::get>().get(), 1);
    }
    cx::exit();
  });
  const auto counters = cx::trace::aggregate();
  cx::trace::reset();
  ASSERT_GE(counters.ft_detections, 1u);
  EXPECT_GE(counters.ft_recoveries, 1u);
  // Mean detection latency within the accrual detector's bound (plus
  // slack for the wall-clock backend's scheduling noise).
  const cx::ft::LivenessConfig live =
      cx::ft::liveness_from_faults(cfg.machine.faults);
  const double mean_latency =
      counters.ft_detect_latency_s /
      static_cast<double>(counters.ft_detections);
  EXPECT_LE(mean_latency, 3.0 * live.detection_bound());
}

TEST(FtLiveness, SilentHungPeAutoRecoveredSim) {
  cx::RuntimeConfig cfg = sim_cfg(4);
  cfg.machine.faults.heartbeat_s = 1.0e-4;
  cfg.machine.faults.hb_threshold = 3.0;
  cfg.machine.faults.auto_recover = true;
  cfg.machine.faults.script = cx::ft::parse_fault_script("hang:2@2e-3");
  run_silent_hang(cfg, 2, /*scripted=*/true);
}

TEST(FtLiveness, SilentHungPeAutoRecoveredThreaded) {
  cx::RuntimeConfig cfg = threaded_cfg(4);
  cfg.machine.faults.heartbeat_s = 10.0e-3;
  cfg.machine.faults.hb_threshold = 5.0;
  cfg.machine.faults.auto_recover = true;
  run_silent_hang(cfg, 2, /*scripted=*/false);
}

// ---------------------------------------------------------------------------
// A healthy run with heartbeats on must look exactly like one without:
// same answers, same app-visible message count (liveness traffic is
// uncounted), and zero detections (no false positives even while every
// PE is busy).

TEST(FtLiveness, HealthyRunSeesNoFalsePositivesOrExtraMessages) {
  std::uint64_t msgs[2] = {0, 0};
  int sums[2] = {0, 0};
  for (int hb = 0; hb < 2; ++hb) {
    cx::RuntimeConfig cfg = sim_cfg(4);
    if (hb == 1) {
      cfg.machine.faults.heartbeat_s = 2.0e-4;
      cfg.machine.faults.hb_threshold = 4.0;
    }
    cx::trace::reset();
    cx::trace::Config tc;
    tc.enabled = true;
    tc.print_summary = false;
    cx::trace::configure(tc);
    cx::Runtime rt(cfg);
    rt.run([&] {
      auto arr = cx::create_array<LiveCell>({kCells});
      for (int r = 0; r < 50; ++r) {
        for (int i = 0; i < kCells; ++i) arr[{i}].send<&LiveCell::bump>();
      }
      int total = 0;
      for (int i = 0; i < kCells; ++i) {
        total += arr[{i}].call<&LiveCell::get>().get();
      }
      sums[hb] = total;
      cx::exit();
    });
    msgs[hb] = rt.messages_sent();
    const auto counters = cx::trace::aggregate();
    cx::trace::reset();
    EXPECT_EQ(counters.ft_detections, 0u) << "false positive with hb=" << hb;
    EXPECT_EQ(counters.ft_failures, 0u);
  }
  EXPECT_EQ(sums[0], 50 * kCells);
  EXPECT_EQ(sums[0], sums[1]);
  EXPECT_EQ(msgs[0], msgs[1]);  // heartbeats never hit the app counters
}

// ---------------------------------------------------------------------------
// interval == 0 (the default) disables the layer outright.

TEST(FtLiveness, ZeroIntervalDisablesTheLayer) {
  const cx::ft::LivenessConfig off =
      cx::ft::liveness_from_faults(cx::ft::FaultConfig{});
  EXPECT_FALSE(off.enabled());

  cx::ft::FaultConfig f;
  f.heartbeat_s = 5.0e-3;
  EXPECT_TRUE(cx::ft::liveness_from_faults(f).enabled());
  EXPECT_DOUBLE_EQ(cx::ft::liveness_from_faults(f).detection_bound(),
                   (f.hb_threshold + 2.0) * f.heartbeat_s);
}

}  // namespace
