// Future::get_for under faults, on both backends: a timed wait expires
// without a value (and really waits that long), a value arriving after
// an expired slice is picked up by the next one (the retry-loop idiom
// every phase driver uses), and a wait whose producer PE dies mid-wait
// times out while the failure surfaces through cx::ft::failed_pes() —
// the future never resolves with garbage and never hangs the driver.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "ft/ft.hpp"
#include "test_helpers.hpp"

namespace {

using cxtest::run_program;
using cxtest::sim_cfg;
using cxtest::threaded_cfg;

struct Filler : cx::Chare {
  void fill(cx::Future<int> f, int v) { f.send(v); }
  void fill_later(cx::Future<int> f, int v, double after_s) {
    cx::compute(after_s);  // busy the producer before it answers
    f.send(v);
  }
};

// ---------------------------------------------------------------------------

TEST(FtFuture, TimedWaitExpiresAndReallyWaits) {
  for (const auto& cfg : {threaded_cfg(2), sim_cfg(2)}) {
    run_program(cfg, [] {
      const double t0 = cx::now();
      auto f = cx::make_future<int>();
      EXPECT_EQ(f.get_for(0.02), std::nullopt);  // nobody will send
      EXPECT_GE(cx::now() - t0, 0.02 * 0.5);     // not an instant bailout
      cx::exit();
    });
  }
}

TEST(FtFuture, ValueAfterExpiredSliceIsPickedUpByTheNextOne) {
  for (const auto& cfg : {threaded_cfg(2), sim_cfg(2)}) {
    run_program(cfg, [] {
      auto filler = cx::create_chare<Filler>(1);
      auto f = cx::make_future<int>();
      // The producer answers only after 30ms of (virtual or real) work;
      // the first 5ms slice must expire empty, a later one succeeds.
      filler.send<&Filler::fill_later>(f, 77, 0.03);
      const std::optional<int> first = f.get_for(0.005);
      std::optional<int> got;
      int slices = 1;
      while (!(got = f.get_for(0.02)) && slices < 100) ++slices;
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, 77);
      if (cx::Runtime::current().is_simulated()) {
        // Virtual time is exact: the 5ms slice expires empty and the
        // 5..25ms slice does too; the value lands in the third. Wall
        // clocks on a loaded host can oversleep a slice past the
        // producer's 30ms, so only the DES asserts the slice count.
        EXPECT_EQ(first, std::nullopt) << "first slice must expire empty";
        EXPECT_GT(slices, 1);
      }
      cx::exit();
    });
  }
}

TEST(FtFuture, ProducerPeDeadMidWaitTimesOutAndSurfacesFailure) {
  for (const auto& cfg : {threaded_cfg(3), sim_cfg(3)}) {
    run_program(cfg, [] {
      auto filler = cx::create_chare<Filler>(1);
      auto f = cx::make_future<int>();
      cx::Runtime::current().machine().inject_kill(1);
      filler.send<&Filler::fill>(f, 5);  // lands in a dead mailbox
      std::optional<int> got;
      int slices = 0;
      while (!(got = f.get_for(0.01)) && cx::ft::failed_pes().empty() &&
             slices < 200) {
        ++slices;
      }
      EXPECT_EQ(got, std::nullopt);  // the value never arrives...
      EXPECT_EQ(cx::ft::failed_pes(),
                std::vector<int>{1});  // ...and the death is visible
      cx::exit();
    });
  }
}

}  // namespace
