// cx::ft checkpoint/restart: collective PUP checkpoints round-trip chare
// state (in-memory buddy copies and on-disk snapshots), restore() rolls
// the whole machine back to the latest epoch, and a scripted mid-run PE
// crash in the stencil app recovers to the exact fault-free answer —
// the paper-figure workload surviving a failure.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "apps/stencil/stencil_cx.hpp"
#include "ft/ft.hpp"
#include "test_helpers.hpp"
#include "trace/trace.hpp"

namespace {

using cxtest::run_program;
using cxtest::sim_cfg;
using cxtest::threaded_cfg;

struct CkptCell : cx::Chare {
  int x = 0;
  std::vector<double> history;

  void bump(int by) {
    x += by;
    history.push_back(static_cast<double>(x));
  }
  int get() { return x; }
  std::vector<double> get_history() { return history; }

  void pup(pup::Er& p) override {
    p | x;
    p | history;
  }
};

constexpr int kCells = 6;

void bump_all(cx::CollectionProxy<CkptCell>& arr, int by) {
  for (int i = 0; i < kCells; ++i) arr[{i}].send<&CkptCell::bump>(by);
  for (int i = 0; i < kCells; ++i) {
    (void)arr[{i}].call<&CkptCell::get>().get();  // drain before moving on
  }
}

void expect_all(cx::CollectionProxy<CkptCell>& arr, int want) {
  for (int i = 0; i < kCells; ++i) {
    EXPECT_EQ(arr[{i}].call<&CkptCell::get>().get(), want);
    const auto h = arr[{i}].call<&CkptCell::get_history>().get();
    ASSERT_FALSE(h.empty());
    EXPECT_EQ(h.back(), static_cast<double>(want));
  }
}

// ---------------------------------------------------------------------------

TEST(FtCheckpoint, RestoreWithoutCheckpointReportsTypedError) {
  run_program(sim_cfg(2), [] {
    EXPECT_EQ(cx::ft::restore(), cx::ft::RestoreStatus::NoCheckpoint);
    cx::exit();
  });
}

TEST(FtCheckpoint, RoundTripRestoresPuppedStateAndWritesSnapshots) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path("ft_ckpt_test_out");
  fs::create_directories(dir);

  for (const auto& cfg : {threaded_cfg(3), sim_cfg(3)}) {
    const int pes = cfg.machine.num_pes;
    // The whole scenario runs twice; the final checkpoint digest must be
    // identical across runs (blobs are built in sorted order, so the
    // digest is a deterministic function of program state).
    std::uint64_t final_digest[2] = {0, 0};
    for (int rep = 0; rep < 2; ++rep) {
      run_program(cfg, [&] {
        auto arr = cx::create_array<CkptCell>({kCells});
        bump_all(arr, 1);
        cx::ft::set_checkpoint_dir(dir.string());
        EXPECT_EQ(cx::ft::checkpoint(), 1u);  // epochs count from 1
        const std::uint64_t d1 = cx::ft::checkpoint_digest();

        bump_all(arr, 1);
        EXPECT_EQ(cx::ft::checkpoint(), 2u);
        const std::uint64_t d2 = cx::ft::checkpoint_digest();
        EXPECT_NE(d1, d2);  // state changed, digest must move
        cx::ft::set_checkpoint_dir("");

        // Damage the state past the checkpoint, then roll back.
        bump_all(arr, 10);
        expect_all(arr, 12);
        cx::ft::restore();
        expect_all(arr, 2);  // the +10 never happened

        // The restored state checkpoints to the same digest every run.
        EXPECT_EQ(cx::ft::checkpoint(), 3u);
        final_digest[rep] = cx::ft::checkpoint_digest();
        cx::exit();
      });

      // Both mirrored epochs hit the disk for every PE.
      for (int pe = 0; pe < pes; ++pe) {
        EXPECT_TRUE(fs::exists(
            dir / ("ckpt_e1_pe" + std::to_string(pe) + ".bin")));
        EXPECT_TRUE(fs::exists(
            dir / ("ckpt_e2_pe" + std::to_string(pe) + ".bin")));
      }
      fs::remove_all(dir);
      fs::create_directories(dir);
    }
    EXPECT_EQ(final_digest[0], final_digest[1]);
    EXPECT_NE(final_digest[0], 0u);
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// The acceptance scenario: stencil3d on the DES backend, checkpointing
// every 2 iterations, with PE 2 scripted to die mid-run. The phased
// driver detects the failure, restores, and re-runs the lost phase; the
// final checksum and the last checkpoint digest must match a fault-free
// run bit for bit.

stencil::Params small_stencil() {
  stencil::Params p;  // default geometry: 2x2x2 blocks of 8x8x8 cells
  p.iterations = 10;
  p.real_kernel = true;
  p.ckpt_every = 2;
  return p;
}

TEST(FtCheckpoint, StencilCrashRestartMatchesFaultFree) {
  cxm::MachineConfig machine;
  machine.num_pes = 4;
  machine.backend = cxm::Backend::Sim;

  const stencil::Result clean = stencil::run_cx(small_stencil(), machine);
  const std::uint64_t clean_digest = cx::ft::checkpoint_digest();

  machine.faults.crash_pe = 2;
  machine.faults.crash_at = 5.0e-5;  // virtual seconds: mid-run
  cx::trace::reset();
  cx::trace::Config tc;
  tc.enabled = true;
  tc.print_summary = false;
  cx::trace::configure(tc);
  const stencil::Result crashed = stencil::run_cx(small_stencil(), machine);
  const std::uint64_t crashed_digest = cx::ft::checkpoint_digest();
  const auto counters = cx::trace::aggregate();
  cx::trace::reset();

  // Guard against the crash silently not firing (crash_at past the
  // makespan would make this test vacuous).
  EXPECT_GE(counters.ft_failures, 1u);
  EXPECT_DOUBLE_EQ(crashed.checksum, clean.checksum);
  EXPECT_EQ(crashed_digest, clean_digest);

  // And checkpointing itself does not perturb the answer.
  machine.faults = cx::ft::FaultConfig{};
  stencil::Params plain = small_stencil();
  plain.ckpt_every = 0;
  const stencil::Result baseline = stencil::run_cx(plain, machine);
  EXPECT_DOUBLE_EQ(baseline.checksum, clean.checksum);
}

}  // namespace
