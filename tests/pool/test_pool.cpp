// The paper's §III distributed parallel map: master-worker, dynamic task
// handout, multiple concurrent asynchronous jobs.

#include "pool/pool.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "test_helpers.hpp"
#include "trace/trace.hpp"
#include "util/options.hpp"

namespace {

using namespace cpy;
using cxpool::Pool;
using cxtest::run_program;
using cxtest::sim_cfg;
using cxtest::threaded_cfg;

struct Functions {
  Functions() {
    cxpool::register_function("square", [](const Value& x) {
      return Value(x.as_int() * x.as_int());
    });
    cxpool::register_function("neg", [](const Value& x) {
      return Value(-x.as_int());
    });
    cxpool::register_function("slow_square", [](const Value& x) {
      // Uneven task costs: higher inputs cost more (dynamic handout
      // must still produce ordered results).
      cx::compute(1e-5 * static_cast<double>(x.as_int()));
      return Value(x.as_int() * x.as_int());
    });
    cxpool::register_function("strlen", [](const Value& x) {
      return Value(static_cast<std::int64_t>(x.as_str().size()));
    });
  }
};
const Functions functions;

List ints(std::initializer_list<int> xs) {
  List l;
  for (int x : xs) l.emplace_back(x);
  return l;
}

TEST(Pool, PaperExampleTwoConcurrentJobs) {
  run_program(threaded_cfg(4), [] {
    Pool pool;
    // Paper §III: two jobs launched at the same time, each on 2 procs.
    auto f1 = pool.map_async("square", 2, ints({1, 2, 3, 4, 5}));
    auto f2 = pool.map_async("square", 2, ints({1, 3, 5, 7, 9}));
    const Value r1 = f1.get();
    const Value r2 = f2.get();
    ASSERT_EQ(r1.length(), 5u);
    ASSERT_EQ(r2.length(), 5u);
    const std::int64_t exp1[] = {1, 4, 9, 16, 25};
    const std::int64_t exp2[] = {1, 9, 25, 49, 81};
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(r1.item(Value(i)).as_int(), exp1[i]);
      EXPECT_EQ(r2.item(Value(i)).as_int(), exp2[i]);
    }
    cx::exit();
  });
}

TEST(Pool, ResultsKeepTaskOrderDespiteUnevenCosts) {
  run_program(threaded_cfg(4), [] {
    Pool pool;
    List tasks;
    for (int i = 20; i >= 1; --i) tasks.emplace_back(i);
    const Value r = pool.map("slow_square", 3, std::move(tasks));
    ASSERT_EQ(r.length(), 20u);
    for (int i = 0; i < 20; ++i) {
      const std::int64_t x = 20 - i;
      EXPECT_EQ(r.item(Value(i)).as_int(), x * x);
    }
    cx::exit();
  });
}

TEST(Pool, MoreTasksThanProcs) {
  run_program(threaded_cfg(2), [] {
    Pool pool;
    List tasks;
    for (int i = 0; i < 50; ++i) tasks.emplace_back(i);
    const Value r = pool.map("square", 1, std::move(tasks));
    ASSERT_EQ(r.length(), 50u);
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(r.item(Value(i)).as_int(),
                static_cast<std::int64_t>(i) * i);
    }
    cx::exit();
  });
}

TEST(Pool, SinglePeSharesMasterAndWorker) {
  run_program(threaded_cfg(1), [] {
    Pool pool;
    const Value r = pool.map("square", 1, ints({2, 3}));
    EXPECT_EQ(r.item(Value(0)).as_int(), 4);
    EXPECT_EQ(r.item(Value(1)).as_int(), 9);
    cx::exit();
  });
}

TEST(Pool, OverRequestedProcsAreClamped) {
  run_program(threaded_cfg(2), [] {
    Pool pool;
    const Value r = pool.map("square", 64, ints({1, 2, 3}));
    ASSERT_EQ(r.length(), 3u);
    cx::exit();
  });
}

TEST(Pool, ProcessorsAreReusedAcrossSequentialJobs) {
  run_program(threaded_cfg(3), [] {
    Pool pool;
    for (int round = 0; round < 5; ++round) {
      const Value r = pool.map("neg", 2, ints({round, round + 1}));
      EXPECT_EQ(r.item(Value(0)).as_int(), -round);
      EXPECT_EQ(r.item(Value(1)).as_int(), -(round + 1));
    }
    cx::exit();
  });
}

TEST(Pool, NonNumericTasks) {
  run_program(threaded_cfg(2), [] {
    Pool pool;
    const Value r =
        pool.map("strlen", 1, {Value("a"), Value("abc"), Value("")});
    EXPECT_EQ(r.item(Value(0)).as_int(), 1);
    EXPECT_EQ(r.item(Value(1)).as_int(), 3);
    EXPECT_EQ(r.item(Value(2)).as_int(), 0);
    cx::exit();
  });
}

TEST(Pool, ManyConcurrentJobs) {
  run_program(threaded_cfg(4), [] {
    Pool pool;
    std::vector<cx::Future<Value>> futures;
    for (int j = 0; j < 3; ++j) {
      futures.push_back(pool.map_async("square", 1, ints({j, j + 1})));
    }
    for (int j = 0; j < 3; ++j) {
      const Value r = futures[static_cast<std::size_t>(j)].get();
      EXPECT_EQ(r.item(Value(0)).as_int(),
                static_cast<std::int64_t>(j) * j);
    }
    cx::exit();
  });
}

TEST(Pool, SaturatedPoolQueuesJobsInsteadOfDeadlocking) {
  // Regression: N concurrent jobs whose combined numProcs exceed the
  // free PE set. The old selection loop granted zero processors to the
  // overflow jobs, so their futures never resolved (deadlock). Jobs must
  // queue and run as processors free up.
  run_program(threaded_cfg(3), [] {  // 2 free workers (PE 0 = master)
    Pool pool;
    std::vector<cx::Future<Value>> futures;
    for (int j = 0; j < 8; ++j) {
      futures.push_back(
          pool.map_async("square", 2, ints({j, j + 1, j + 2})));
    }
    for (int j = 0; j < 8; ++j) {
      const Value r = futures[static_cast<std::size_t>(j)].get();
      ASSERT_EQ(r.length(), 3u) << "job " << j;
      for (int i = 0; i < 3; ++i) {
        const std::int64_t x = j + i;
        EXPECT_EQ(r.item(Value(i)).as_int(), x * x) << "job " << j;
      }
    }
    cx::exit();
  });
}

TEST(Pool, NumProcsLargerThanPeSet) {
  run_program(threaded_cfg(2), [] {
    Pool pool;
    const Value r = pool.map("square", 1000, ints({1, 2, 3, 4}));
    ASSERT_EQ(r.length(), 4u);
    for (int i = 0; i < 4; ++i) {
      const std::int64_t x = i + 1;
      EXPECT_EQ(r.item(Value(i)).as_int(), x * x);
    }
    cx::exit();
  });
}

TEST(Pool, NonPositiveNumProcsRunsOnOneWorker) {
  run_program(threaded_cfg(3), [] {
    Pool pool;
    const Value r0 = pool.map("square", 0, ints({2, 3}));
    EXPECT_EQ(r0.item(Value(0)).as_int(), 4);
    EXPECT_EQ(r0.item(Value(1)).as_int(), 9);
    const Value rn = pool.map("square", -5, ints({4}));
    EXPECT_EQ(rn.item(Value(0)).as_int(), 16);
    cx::exit();
  });
}

TEST(Pool, EmptyTaskListResolvesImmediately) {
  run_program(threaded_cfg(2), [] {
    Pool pool;
    const Value r = pool.map("square", 1, {});
    EXPECT_EQ(r.length(), 0u);
    cx::exit();
  });
}

TEST(Pool, UnknownFunctionFailsTheJobNotTheRun) {
  // Regression: an unregistered function name used to throw
  // std::out_of_range inside Worker.apply and kill the whole run. It
  // must fail only that job, through the job's own future.
  run_program(threaded_cfg(3), [] {
    Pool pool;
    auto bad = pool.map_async("no_such_function", 1, ints({1, 2, 3}));
    const Value err = bad.get();
    ASSERT_TRUE(cxpool::is_error(err));
    EXPECT_NE(cxpool::error_message(err).find("unknown task function"),
              std::string::npos);
    // The pool stays usable: the failed job released its processors.
    const Value ok = pool.map("square", 2, ints({5, 6}));
    EXPECT_EQ(ok.item(Value(0)).as_int(), 25);
    EXPECT_EQ(ok.item(Value(1)).as_int(), 36);
    cx::exit();
  });
}

TEST(Pool, ThrowingTaskFunctionFailsTheJob) {
  cxpool::register_function("explode", [](const Value&) -> Value {
    throw std::runtime_error("task exploded");
  });
  run_program(threaded_cfg(2), [] {
    Pool pool;
    const Value err = pool.map("explode", 1, ints({1}));
    ASSERT_TRUE(cxpool::is_error(err));
    EXPECT_NE(cxpool::error_message(err).find("task exploded"),
              std::string::npos);
    cx::exit();
  });
}

TEST(Pool, SaturationOnSimBackend) {
  run_program(sim_cfg(4), [] {
    Pool pool;
    std::vector<cx::Future<Value>> futures;
    for (int j = 0; j < 5; ++j) {
      futures.push_back(pool.map_async("neg", 3, ints({j, j + 1})));
    }
    for (int j = 0; j < 5; ++j) {
      const Value r = futures[static_cast<std::size_t>(j)].get();
      EXPECT_EQ(r.item(Value(0)).as_int(), -j);
      EXPECT_EQ(r.item(Value(1)).as_int(), -(j + 1));
    }
    cx::exit();
  });
}

TEST(Pool, WorksOnSimBackend) {
  run_program(sim_cfg(8), [] {
    Pool pool;
    List tasks;
    for (int i = 0; i < 30; ++i) tasks.emplace_back(i);
    const Value r = pool.map("square", 7, std::move(tasks));
    ASSERT_EQ(r.length(), 30u);
    for (int i = 0; i < 30; ++i) {
      EXPECT_EQ(r.item(Value(i)).as_int(),
                static_cast<std::int64_t>(i) * i);
    }
    cx::exit();
  });
}

// ---------------------------------------------------------------------------
// Task engine: chunked grants, stealing, priorities, backpressure.

/// Restore the process-global pool configuration after each test (the
/// whole suite shares one binary).
struct PoolConfigGuard {
  cxpool::PoolConfig saved = cxpool::config();
  ~PoolConfigGuard() { cxpool::configure(saved); }
};

List iota(int n) {
  List l;
  for (int i = 0; i < n; ++i) l.emplace_back(i);
  return l;
}

TEST(PoolEngine, ChunkedGrantsCollapseMasterTraffic) {
  PoolConfigGuard guard;
  cxpool::configure(cxpool::PoolConfig{});  // defaults: guided chunks
  const int n = 2000;
  run_program(sim_cfg(8), [n] {
    Pool pool;
    const Value r = pool.map("square", 7, iota(n));
    ASSERT_EQ(r.length(), static_cast<std::uint64_t>(n));
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(r.item(Value(i)).as_int(),
                static_cast<std::int64_t>(i) * i);
    }
    cx::exit();
  });
  const cx::trace::PoolStats s = cx::trace::pool_stats();
  // Every task is granted exactly once (no failures, and steals move
  // already-granted work without re-granting it)...
  EXPECT_EQ(s.granted_tasks, static_cast<std::uint64_t>(n));
  // ...in far fewer master round trips than the per-task protocol's n.
  EXPECT_LT(s.grants, static_cast<std::uint64_t>(n) / 10);
  EXPECT_GT(s.mean_chunk(), 10.0);
  EXPECT_LT(s.result_batches, static_cast<std::uint64_t>(n));
  EXPECT_EQ(s.tasks_done, static_cast<std::uint64_t>(n));
}

TEST(PoolEngine, StealingFiresOnSkewedCosts) {
  cxpool::register_function("pool_skew", [](const Value& x) {
    // The first quarter of the ids cost 5x: a contiguous-chunk split
    // leaves the low-range holder straggling and forces steals.
    cx::compute(x.as_int() < 1000 ? 5e-6 : 1e-6);
    return Value(x.as_int() + 7);
  });
  PoolConfigGuard guard;
  cxpool::configure(cxpool::PoolConfig{});
  const int n = 4000;
  run_program(sim_cfg(8), [n] {
    Pool pool;
    const Value r = pool.map("pool_skew", 7, iota(n));
    ASSERT_EQ(r.length(), static_cast<std::uint64_t>(n));
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(r.item(Value(i)).as_int(), i + 7);
    }
    cx::exit();
  });
  const cx::trace::PoolStats s = cx::trace::pool_stats();
  EXPECT_GT(s.steal_attempts, 0u);
  EXPECT_GT(s.steal_hits, 0u);
  EXPECT_GT(s.stolen_tasks, 0u);
}

TEST(PoolEngine, PriorityOrdersQueuedJobs) {
  cxpool::register_function("pool_tick", [](const Value& x) {
    cx::compute(1e-3);
    return x;
  });
  PoolConfigGuard guard;
  cxpool::configure(cxpool::PoolConfig{});
  run_program(sim_cfg(2), [] {  // one worker: jobs run strictly serially
    Pool pool;
    // Job 0 occupies the worker; jobs 1 (low) and 2 (high) queue behind
    // it. The high-priority job must start (and finish) first even
    // though it was submitted last.
    auto f0 = pool.submit("pool_tick", 1, iota(5), 0);
    auto f1 = pool.submit("pool_tick", 1, iota(5), 0);
    auto f2 = pool.submit("pool_tick", 1, iota(5), 5);
    ASSERT_EQ(f0.get().length(), 5u);
    ASSERT_EQ(f1.get().length(), 5u);
    ASSERT_EQ(f2.get().length(), 5u);
    cx::exit();
  });
  const auto recs = cx::trace::pool_job_records();
  ASSERT_EQ(recs.size(), 3u);
  double start1 = -1.0, start2 = -1.0;
  for (const auto& r : recs) {
    if (r.job_id == 1) start1 = r.start_t;
    if (r.job_id == 2) start2 = r.start_t;
  }
  ASSERT_GE(start1, 0.0);
  ASSERT_GE(start2, 0.0);
  EXPECT_LT(start2, start1) << "high-priority job must start first";
}

TEST(PoolEngine, BackpressureBoundsInflightTasks) {
  PoolConfigGuard guard;
  cxpool::PoolConfig pc;
  pc.max_inflight = 8;  // per-job outstanding-task budget
  cxpool::configure(pc);
  const int n = 500;
  run_program(sim_cfg(4), [n] {
    Pool pool;
    const Value r = pool.map("square", 3, iota(n));
    ASSERT_EQ(r.length(), static_cast<std::uint64_t>(n));
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(r.item(Value(i)).as_int(),
                static_cast<std::int64_t>(i) * i);
    }
    cx::exit();
  });
  const cx::trace::PoolStats s = cx::trace::pool_stats();
  // No grant may exceed the budget, and with 500 tasks through an
  // 8-task window the clamp must have engaged.
  EXPECT_LE(s.max_chunk, 8u);
  EXPECT_GT(s.inflight_clamps, 0u);
  EXPECT_EQ(s.tasks_done, static_cast<std::uint64_t>(n));
}

cxu::Options parse_flags(std::vector<std::string> args) {
  args.insert(args.begin(), "test");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  return cxu::Options(static_cast<int>(argv.size()), argv.data());
}

TEST(PoolEngine, FlagsValidateStrictly) {
  PoolConfigGuard guard;
  cxpool::configure_from_options(
      parse_flags({"--pool-chunk", "64", "--pool-max-inflight", "256",
                   "--pool-quantum", "4", "--pool-batch", "32",
                   "--pool-beat-ms", "12.5", "--pool-steal", "off",
                   "--pool-steal-retries", "3"}));
  EXPECT_EQ(cxpool::config().chunk, 64);
  EXPECT_EQ(cxpool::config().max_inflight, 256);
  EXPECT_EQ(cxpool::config().quantum, 4);
  EXPECT_EQ(cxpool::config().result_batch, 32);
  EXPECT_NEAR(cxpool::config().beat_s, 0.0125, 1e-9);
  EXPECT_FALSE(cxpool::config().steal);
  EXPECT_EQ(cxpool::config().steal_retries, 3);

  // "auto" re-enables guided self-scheduling.
  cxpool::configure_from_options(parse_flags({"--pool-chunk", "auto"}));
  EXPECT_EQ(cxpool::config().chunk, 0);

  // Malformed or out-of-range values throw instead of being swallowed.
  EXPECT_ANY_THROW(cxpool::configure_from_options(
      parse_flags({"--pool-chunk", "banana"})));
  EXPECT_ANY_THROW(cxpool::configure_from_options(
      parse_flags({"--pool-chunk", "-4"})));
  EXPECT_ANY_THROW(cxpool::configure_from_options(
      parse_flags({"--pool-quantum", "0"})));
  EXPECT_ANY_THROW(cxpool::configure_from_options(
      parse_flags({"--pool-batch", "0"})));
  EXPECT_ANY_THROW(cxpool::configure_from_options(
      parse_flags({"--pool-max-inflight", "-1"})));
  EXPECT_ANY_THROW(cxpool::configure_from_options(
      parse_flags({"--pool-beat-ms", "soon"})));
}

}  // namespace
