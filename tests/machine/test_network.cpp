#include "machine/network.hpp"

#include <gtest/gtest.h>

namespace {

using namespace cxm;

NetworkParams flat() {
  NetworkParams p;
  p.pes_per_node = 4;
  p.alpha = 1e-6;
  p.beta = 1e-9;
  p.per_hop = 1e-7;
  p.node_alpha = 1e-7;
  p.node_beta = 1e-10;
  return p;
}

TEST(SimpleNet, IntraNodeCheaperThanInterNode) {
  SimpleNet net(flat());
  const double intra = net.delay(0, 3, 1000);   // same node (4 PEs/node)
  const double inter = net.delay(0, 4, 1000);   // adjacent node
  EXPECT_LT(intra, inter);
}

TEST(SimpleNet, DelayGrowsWithBytes) {
  SimpleNet net(flat());
  EXPECT_LT(net.delay(0, 4, 100), net.delay(0, 4, 100000));
}

TEST(SimpleNet, BootstrapSourceIsFree) {
  SimpleNet net(flat());
  EXPECT_DOUBLE_EQ(net.delay(-1, 4, 1 << 20), 0.0);
}

TEST(SimpleNet, ExactAlphaBetaForm) {
  SimpleNet net(flat());
  const double d = net.delay(0, 4, 1000);
  EXPECT_DOUBLE_EQ(d, 1e-6 + 1000 * 1e-9);
}

TEST(TorusNet, ZeroHopsWithinNode) {
  TorusNet net(flat(), 64);
  EXPECT_DOUBLE_EQ(net.delay(0, 1, 0), flat().node_alpha);
}

TEST(TorusNet, LatencyIncreasesWithDistance) {
  // 4x4x4 torus of nodes, 4 PEs per node.
  TorusNet net(flat(), 64, 4, 4, 4);
  const double near = net.delay(0, 4, 0);        // node 0 -> node 1 (1 hop)
  const double far = net.delay(0, 4 * 2, 0);     // node 0 -> node 2 (2 hops)
  EXPECT_LT(near, far);
}

TEST(TorusNet, WraparoundShortensPaths) {
  // In a 4-wide ring, node 0 to node 3 is 1 hop via wraparound.
  TorusNet net(flat(), 4, 4, 1, 1);
  const double wrap = net.delay(0, 3 * 4, 0);   // node 3
  const double adj = net.delay(0, 1 * 4, 0);    // node 1
  EXPECT_DOUBLE_EQ(wrap, adj);
}

TEST(DragonflyNet, IntraGroupCheaperThanInterGroup) {
  DragonflyNet net(flat(), /*nodes_per_group=*/8);
  const double local = net.delay(0, 4, 0);        // node 0 -> node 1, group 0
  const double global = net.delay(0, 8 * 4 * 4, 0);  // far group
  EXPECT_LT(local, global);
}

TEST(MakeNetwork, KnownNames) {
  EXPECT_NE(make_network("simple", flat(), 64), nullptr);
  EXPECT_NE(make_network("torus", flat(), 64), nullptr);
  EXPECT_NE(make_network("dragonfly", flat(), 64), nullptr);
}

TEST(MakeNetwork, UnknownNameThrows) {
  EXPECT_THROW(make_network("infiniband", flat(), 64),
               std::invalid_argument);
}

}  // namespace
