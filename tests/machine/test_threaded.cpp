#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "machine/machine.hpp"
#include "pup/pup.hpp"

namespace {

using namespace cxm;

MachineConfig threaded(int pes) {
  MachineConfig cfg;
  cfg.num_pes = pes;
  cfg.backend = Backend::Threaded;
  return cfg;
}

TEST(ThreadedMachine, DeliversToAllPEs) {
  auto m = make_machine(threaded(4));
  std::atomic<int> hits{0};
  std::atomic<int> pe_mask{0};
  const auto h = m->register_handler([&](MessagePtr) {
    hits.fetch_add(1);
    pe_mask.fetch_or(1 << m->current_pe());
    if (hits.load() == 4) m->stop();
  });
  for (int pe = 0; pe < 4; ++pe) {
    auto msg = std::make_unique<Message>();
    msg->handler = h;
    msg->dst_pe = pe;
    m->send(std::move(msg));
  }
  m->run();
  EXPECT_EQ(hits.load(), 4);
  EXPECT_EQ(pe_mask.load(), 0b1111);
}

TEST(ThreadedMachine, PingPongAcrossPEs) {
  auto m = make_machine(threaded(2));
  std::atomic<int> rounds{0};
  std::uint32_t h = 0;
  h = m->register_handler([&](MessagePtr msg) {
    int count = pup::from_bytes<int>(msg->data);
    if (count >= 10) {
      m->stop();
      return;
    }
    ++count;
    rounds.fetch_add(1);
    auto reply = std::make_unique<Message>();
    reply->handler = h;
    reply->dst_pe = 1 - m->current_pe();
    reply->data = pup::to_bytes(count);
    m->send(std::move(reply));
  });
  auto first = std::make_unique<Message>();
  first->handler = h;
  first->dst_pe = 0;
  int zero = 0;
  first->data = pup::to_bytes(zero);
  m->send(std::move(first));
  m->run();
  EXPECT_EQ(rounds.load(), 10);
}

TEST(ThreadedMachine, PayloadsArriveIntact) {
  auto m = make_machine(threaded(2));
  std::vector<double> payload(1000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<double>(i) * 0.25;
  }
  std::vector<double> received;
  const auto h = m->register_handler([&](MessagePtr msg) {
    received = pup::from_bytes<std::vector<double>>(msg->data);
    m->stop();
  });
  auto msg = std::make_unique<Message>();
  msg->handler = h;
  msg->dst_pe = 1;
  msg->data = pup::to_bytes(payload);
  m->send(std::move(msg));
  m->run();
  EXPECT_EQ(received, payload);
}

TEST(ThreadedMachine, LocalReferencePayload) {
  auto m = make_machine(threaded(1));
  std::vector<int> got;
  const auto h = m->register_handler([&](MessagePtr msg) {
    auto* p = static_cast<std::vector<int>*>(msg->take_local());
    got = *p;
    delete p;
    m->stop();
  });
  auto msg = std::make_unique<Message>();
  msg->handler = h;
  msg->dst_pe = 0;
  msg->local = new std::vector<int>{1, 2, 3};
  msg->local_drop = +[](void* p) noexcept {
    delete static_cast<std::vector<int>*>(p);
  };
  msg->local_size = 3 * sizeof(int);
  EXPECT_EQ(msg->wire_size(), 12u);
  m->send(std::move(msg));
  m->run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(ThreadedMachine, FifoOrderPerSourceDestinationPair) {
  auto m = make_machine(threaded(2));
  std::vector<int> order;
  std::uint32_t send_h = 0, recv_h = 0;
  recv_h = m->register_handler([&](MessagePtr msg) {
    order.push_back(pup::from_bytes<int>(msg->data));
    if (order.size() == 20) m->stop();
  });
  send_h = m->register_handler([&](MessagePtr) {
    for (int i = 0; i < 20; ++i) {
      auto out = std::make_unique<Message>();
      out->handler = recv_h;
      out->dst_pe = 1;
      out->data = pup::to_bytes(i);
      m->send(std::move(out));
    }
  });
  auto kick = std::make_unique<Message>();
  kick->handler = send_h;
  kick->dst_pe = 0;
  m->send(std::move(kick));
  m->run();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadedMachine, BadDestinationThrows) {
  auto m = make_machine(threaded(2));
  auto msg = std::make_unique<Message>();
  msg->dst_pe = 5;
  EXPECT_THROW(m->send(std::move(msg)), std::out_of_range);
}

TEST(ThreadedMachine, SinglePe) {
  auto m = make_machine(threaded(1));
  int runs = 0;
  const auto h = m->register_handler([&](MessagePtr) {
    if (++runs == 3) m->stop();
  });
  for (int i = 0; i < 3; ++i) {
    auto msg = std::make_unique<Message>();
    msg->handler = h;
    msg->dst_pe = 0;
    m->send(std::move(msg));
  }
  m->run();
  EXPECT_EQ(runs, 3);
}

}  // namespace
