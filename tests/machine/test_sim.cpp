#include <gtest/gtest.h>

#include <vector>

#include "machine/machine.hpp"
#include "machine/sim_machine.hpp"
#include "pup/pup.hpp"

namespace {

using namespace cxm;

MachineConfig sim(int pes, const std::string& net = "simple") {
  MachineConfig cfg;
  cfg.num_pes = pes;
  cfg.backend = Backend::Sim;
  cfg.network = net;
  return cfg;
}

TEST(SimMachine, RunsUntilQueueDrains) {
  auto m = make_machine(sim(2));
  int hits = 0;
  const auto h = m->register_handler([&](MessagePtr) { ++hits; });
  for (int i = 0; i < 5; ++i) {
    auto msg = std::make_unique<Message>();
    msg->handler = h;
    msg->dst_pe = i % 2;
    m->send(std::move(msg));
  }
  m->run();  // no stop() needed: queue drains
  EXPECT_EQ(hits, 5);
}

TEST(SimMachine, VirtualTimeAdvancesWithCompute) {
  auto m = make_machine(sim(1));
  auto* smp = dynamic_cast<SimMachine*>(m.get());
  ASSERT_NE(smp, nullptr);
  const auto h = m->register_handler([&](MessagePtr) {
    m->compute(1.5);  // charge 1.5 virtual seconds — returns instantly
  });
  auto msg = std::make_unique<Message>();
  msg->handler = h;
  msg->dst_pe = 0;
  m->send(std::move(msg));
  m->run();
  EXPECT_GE(smp->makespan(), 1.5);
  EXPECT_LT(smp->makespan(), 1.5 + 1e-3);  // only tiny overheads on top
}

TEST(SimMachine, MessageLatencyReflectsNetworkModel) {
  MachineConfig cfg = sim(2);
  cfg.net.pes_per_node = 1;  // force remote path
  cfg.net.alpha = 1.0;       // 1 second latency — easy to observe
  cfg.net.beta = 0.0;
  cfg.net.cpu_overhead = 0.0;
  auto m = make_machine(cfg);
  auto* smp = dynamic_cast<SimMachine*>(m.get());
  double recv_time = -1;
  std::uint32_t relay = 0, sink = 0;
  sink = m->register_handler([&](MessagePtr) { recv_time = m->now(); });
  relay = m->register_handler([&](MessagePtr) {
    auto out = std::make_unique<Message>();
    out->handler = sink;
    out->dst_pe = 1;
    m->send(std::move(out));
  });
  auto kick = std::make_unique<Message>();
  kick->handler = relay;
  kick->dst_pe = 0;
  m->send(std::move(kick));
  m->run();
  EXPECT_NEAR(recv_time, 1.0, 1e-9);
  EXPECT_NEAR(smp->makespan(), 1.0, 1e-9);
}

TEST(SimMachine, BandwidthTermScalesWithBytes) {
  MachineConfig cfg = sim(2);
  cfg.net.pes_per_node = 1;
  cfg.net.alpha = 0.0;
  cfg.net.beta = 1e-6;  // 1 us per byte
  cfg.net.cpu_overhead = 0.0;
  auto m = make_machine(cfg);
  double recv_time = -1;
  std::uint32_t relay = 0, sink = 0;
  sink = m->register_handler([&](MessagePtr) { recv_time = m->now(); });
  relay = m->register_handler([&](MessagePtr) {
    auto out = std::make_unique<Message>();
    out->handler = sink;
    out->dst_pe = 1;
    out->data = std::vector<std::byte>(1000);
    m->send(std::move(out));
  });
  auto kick = std::make_unique<Message>();
  kick->handler = relay;
  kick->dst_pe = 0;
  m->send(std::move(kick));
  m->run();
  EXPECT_NEAR(recv_time, 1e-3, 1e-9);
}

TEST(SimMachine, DeterministicAcrossRuns) {
  auto run_once = [] {
    auto m = make_machine(sim(4));
    auto* smp = dynamic_cast<SimMachine*>(m.get());
    std::vector<int> order;
    std::uint32_t h = 0;
    h = m->register_handler([&](MessagePtr msg) {
      const int id = pup::from_bytes<int>(msg->data);
      order.push_back(id);
      if (id < 40) {
        auto out = std::make_unique<Message>();
        out->handler = h;
        out->dst_pe = (id * 7) % 4;
        int next = id + 4;
        out->data = pup::to_bytes(next);
        m->compute(0.001 * (id % 3));
        m->send(std::move(out));
      }
    });
    for (int i = 0; i < 4; ++i) {
      auto msg = std::make_unique<Message>();
      msg->handler = h;
      msg->dst_pe = i;
      msg->data = pup::to_bytes(i);
      m->send(std::move(msg));
    }
    m->run();
    return std::make_pair(order, smp->makespan());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

TEST(SimMachine, PerPeFifoOrderPreserved) {
  auto m = make_machine(sim(2));
  std::vector<int> order;
  std::uint32_t send_h = 0, recv_h = 0;
  recv_h = m->register_handler([&](MessagePtr msg) {
    order.push_back(pup::from_bytes<int>(msg->data));
  });
  send_h = m->register_handler([&](MessagePtr) {
    for (int i = 0; i < 10; ++i) {
      auto out = std::make_unique<Message>();
      out->handler = recv_h;
      out->dst_pe = 1;
      out->data = pup::to_bytes(i);
      m->send(std::move(out));
    }
  });
  auto kick = std::make_unique<Message>();
  kick->handler = send_h;
  kick->dst_pe = 0;
  m->send(std::move(kick));
  m->run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimMachine, BusyPeSerializesHandlers) {
  // Two messages arrive at t=~0; each charges 1s of compute. The second
  // handler must start after the first finishes: makespan ~2s.
  MachineConfig cfg = sim(2);
  cfg.net.cpu_overhead = 0.0;
  cfg.net.node_alpha = 0.0;
  cfg.net.node_beta = 0.0;
  auto m = make_machine(cfg);
  auto* smp = dynamic_cast<SimMachine*>(m.get());
  const auto h = m->register_handler([&](MessagePtr) { m->compute(1.0); });
  for (int i = 0; i < 2; ++i) {
    auto msg = std::make_unique<Message>();
    msg->handler = h;
    msg->dst_pe = 0;
    m->send(std::move(msg));
  }
  m->run();
  EXPECT_NEAR(smp->makespan(), 2.0, 1e-9);
}

TEST(SimMachine, StopEndsRunEarly) {
  auto m = make_machine(sim(1));
  int hits = 0;
  const auto h = m->register_handler([&](MessagePtr) {
    if (++hits == 2) m->stop();
  });
  for (int i = 0; i < 10; ++i) {
    auto msg = std::make_unique<Message>();
    msg->handler = h;
    msg->dst_pe = 0;
    m->send(std::move(msg));
  }
  m->run();
  EXPECT_EQ(hits, 2);
}

TEST(SimMachine, EventsProcessedCounter) {
  auto m = make_machine(sim(1));
  auto* smp = dynamic_cast<SimMachine*>(m.get());
  const auto h = m->register_handler([](MessagePtr) {});
  for (int i = 0; i < 7; ++i) {
    auto msg = std::make_unique<Message>();
    msg->handler = h;
    msg->dst_pe = 0;
    m->send(std::move(msg));
  }
  m->run();
  EXPECT_EQ(smp->events_processed(), 7u);
}

}  // namespace
