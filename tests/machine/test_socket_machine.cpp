// SocketMachine tier: the on-socket frame codec rejects hostile input
// without allocating, the connection handshake refuses mismatched
// peers, and real multi-process jobs (forked ranks wired up through an
// in-test rendezvous root, exactly what cxrun does) produce results
// byte-identical to the threaded backend. The kill -9 test checks the
// full failure pipeline: SIGKILL -> connection EOF -> peer_down ->
// crashed + failure listener -> coordinator notice round ->
// cx::ft::on_failure on the surviving rank.

#include <gtest/gtest.h>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "core/charm.hpp"
#include "ft/ft.hpp"
#include "machine/machine.hpp"
#include "net/frame.hpp"
#include "net/socket_util.hpp"
#include "net/wireup.hpp"
#include "pup/pup.hpp"

namespace {

// ---------------------------------------------------------------------------
// Frame codec

std::vector<std::byte> prefix_only(std::uint32_t len) {
  std::vector<std::byte> b(4);
  std::memcpy(b.data(), &len, 4);
  return b;
}

TEST(SocketFrame, RoundTripPreservesEveryField) {
  cxm::Message m;
  m.handler = 17;
  m.src_pe = 3;
  m.dst_pe = 9;
  m.ft_seq = 0xdeadbeefcafeull;
  m.ft_peer = 5;
  m.ft_flags = cxm::kFtReliable;
  m.wire_flags = cxm::kWireNoAgg;
  m.size_override = 1u << 20;
  const std::string payload = "the payload travels byte-for-byte";
  m.data.assign(reinterpret_cast<const std::byte*>(payload.data()),
                payload.size());

  const auto bytes = cxnet::encode_frame(m);
  ASSERT_EQ(bytes.size(), 4 + cxnet::kFrameHeaderBytes + payload.size());

  // Dribble the stream in one-byte feeds: a frame only surfaces once
  // the last byte arrives.
  cxnet::FrameReader r;
  cxnet::Frame f;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    r.feed(&bytes[i], 1);
    ASSERT_EQ(r.next(f), cxnet::FrameReader::Status::NeedMore);
  }
  r.feed(&bytes[bytes.size() - 1], 1);
  ASSERT_EQ(r.next(f), cxnet::FrameReader::Status::Frame);
  EXPECT_EQ(f.kind, cxnet::FrameKind::Data);

  const cxm::MessagePtr back = cxnet::frame_to_message(f);
  EXPECT_EQ(back->handler, m.handler);
  EXPECT_EQ(back->src_pe, m.src_pe);
  EXPECT_EQ(back->dst_pe, m.dst_pe);
  EXPECT_EQ(back->ft_seq, m.ft_seq);
  EXPECT_EQ(back->ft_peer, m.ft_peer);
  EXPECT_EQ(back->ft_flags, m.ft_flags);
  EXPECT_EQ(back->wire_flags, m.wire_flags);
  EXPECT_EQ(back->size_override, m.size_override);
  ASSERT_EQ(back->data.size(), payload.size());
  EXPECT_EQ(std::memcmp(back->data.data(), payload.data(), payload.size()), 0);
  EXPECT_EQ(r.next(f), cxnet::FrameReader::Status::NeedMore);
  EXPECT_FALSE(r.failed());
}

TEST(SocketFrame, BackToBackFramesDecodeInOrder) {
  cxnet::FrameReader r;
  std::vector<std::byte> stream;
  for (int i = 0; i < 3; ++i) {
    cxm::Message m;
    m.handler = static_cast<std::uint32_t>(100 + i);
    m.dst_pe = i;
    const auto one = cxnet::encode_frame(m);
    stream.insert(stream.end(), one.begin(), one.end());
  }
  r.feed(stream.data(), stream.size());
  cxnet::Frame f;
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(r.next(f), cxnet::FrameReader::Status::Frame);
    EXPECT_EQ(f.handler, static_cast<std::uint32_t>(100 + i));
    EXPECT_EQ(f.dst_pe, i);
  }
  EXPECT_EQ(r.next(f), cxnet::FrameReader::Status::NeedMore);
}

TEST(SocketFrame, OversizedPrefixRejectedFromPrefixAlone) {
  // A hostile length prefix must be rejected from the 4 prefix bytes
  // alone — before any body arrives, and without allocating what the
  // prefix claims (0xffffffff would be a 4 GiB buffer).
  cxnet::FrameReader r;
  const auto b = prefix_only(0xffffffffu);
  r.feed(b.data(), b.size());
  cxnet::Frame f;
  EXPECT_EQ(r.next(f), cxnet::FrameReader::Status::Error);
  EXPECT_TRUE(r.failed());
  EXPECT_FALSE(r.error().empty());
  EXPECT_LE(r.pending_bytes(), 4u);
  // The error state is sticky: further bytes never resurrect the
  // connection.
  const auto good = cxnet::encode_control(cxnet::ControlOp::Stop, -1, 0);
  r.feed(good.data(), good.size());
  EXPECT_EQ(r.next(f), cxnet::FrameReader::Status::Error);
}

TEST(SocketFrame, CustomLimitBoundsFrameSize) {
  cxnet::FrameReader r(256);
  cxnet::Frame f;
  auto over = prefix_only(257);
  r.feed(over.data(), over.size());
  EXPECT_EQ(r.next(f), cxnet::FrameReader::Status::Error);

  cxnet::FrameReader ok(256);
  auto fits = prefix_only(256);  // valid size; body just hasn't arrived
  ok.feed(fits.data(), fits.size());
  EXPECT_EQ(ok.next(f), cxnet::FrameReader::Status::NeedMore);
  EXPECT_FALSE(ok.failed());
}

TEST(SocketFrame, TruncatedPrefixRejected) {
  // A length prefix smaller than the fixed header can never frame a
  // message — protocol violation, not "wait for more".
  cxnet::FrameReader r;
  const auto b =
      prefix_only(static_cast<std::uint32_t>(cxnet::kFrameHeaderBytes - 1));
  r.feed(b.data(), b.size());
  cxnet::Frame f;
  EXPECT_EQ(r.next(f), cxnet::FrameReader::Status::Error);
}

TEST(SocketFrame, UnknownKindRejected) {
  cxm::Message m;
  auto bytes = cxnet::encode_frame(m);
  bytes[4] = std::byte{7};  // kind byte: neither Data nor Control
  cxnet::FrameReader r;
  r.feed(bytes.data(), bytes.size());
  cxnet::Frame f;
  EXPECT_EQ(r.next(f), cxnet::FrameReader::Status::Error);
}

TEST(SocketFrame, LocalPayloadRefusesToEncode) {
  // By-reference payloads are pointers into this process; a frame
  // carrying one would be garbage on the far side.
  cxm::Message m;
  int dummy = 0;
  m.local = &dummy;
  m.local_drop = +[](void*) noexcept {};
  EXPECT_THROW((void)cxnet::encode_frame(m), std::logic_error);
}

TEST(SocketFrame, ControlFrameRoundTrip) {
  const auto bytes = cxnet::encode_control(cxnet::ControlOp::Kill, 6, 2);
  cxnet::FrameReader r;
  r.feed(bytes.data(), bytes.size());
  cxnet::Frame f;
  ASSERT_EQ(r.next(f), cxnet::FrameReader::Status::Frame);
  EXPECT_EQ(f.kind, cxnet::FrameKind::Control);
  EXPECT_EQ(f.handler, static_cast<std::uint32_t>(cxnet::ControlOp::Kill));
  EXPECT_EQ(f.dst_pe, 6);
  EXPECT_EQ(f.src_pe, 2);
  EXPECT_EQ(f.payload_len, 0u);
}

// ---------------------------------------------------------------------------
// Handshake

TEST(SocketHandshake, EncodeDecodeRoundTrip) {
  cxnet::Handshake h;
  h.rank = 3;
  h.nranks = 8;
  h.ppn = 2;
  std::byte buf[cxnet::kHandshakeBytes];
  cxnet::encode_handshake(h, buf);
  const cxnet::Handshake d = cxnet::decode_handshake(buf);
  EXPECT_EQ(d.magic, cxnet::kHandshakeMagic);
  EXPECT_EQ(d.version, cxnet::kWireVersion);
  EXPECT_EQ(d.endian_probe, cxnet::kEndianProbe);
  EXPECT_EQ(d.rank, 3u);
  EXPECT_EQ(d.nranks, 8u);
  EXPECT_EQ(d.ppn, 2u);
  EXPECT_EQ(d.size_t_width, sizeof(std::size_t));
  EXPECT_EQ(d.double_width, sizeof(double));
}

TEST(SocketHandshake, RejectsMismatchedPeers) {
  cxnet::Handshake mine;
  mine.nranks = 4;
  mine.ppn = 2;
  EXPECT_EQ(cxnet::handshake_check(mine, mine), "");

  struct Case {
    const char* what;
    std::function<void(cxnet::Handshake&)> tamper;
  };
  const Case cases[] = {
      {"magic", [](cxnet::Handshake& h) { h.magic = 0x12345678; }},
      {"version", [](cxnet::Handshake& h) { h.version += 1; }},
      {"endianness", [](cxnet::Handshake& h) { h.endian_probe = 0x04030201; }},
      {"header size", [](cxnet::Handshake& h) { h.header_bytes += 4; }},
      {"size_t width", [](cxnet::Handshake& h) { h.size_t_width = 4; }},
      {"double width", [](cxnet::Handshake& h) { h.double_width = 12; }},
      {"nranks", [](cxnet::Handshake& h) { h.nranks = 5; }},
      {"ppn", [](cxnet::Handshake& h) { h.ppn = 1; }},
      {"rank range", [](cxnet::Handshake& h) { h.rank = h.nranks; }},
  };
  for (const auto& c : cases) {
    cxnet::Handshake theirs = mine;
    c.tamper(theirs);
    EXPECT_NE(cxnet::handshake_check(mine, theirs), "")
        << "mismatch not rejected: " << c.what;
  }
}

// ---------------------------------------------------------------------------
// Multi-process harness: the gtest parent plays cxrun's role — it owns
// the rendezvous listener, forks one child per rank (each child points
// CXRUN_* at the parent and runs `body`), then runs the root exchange.
// Children report through a pipe and _exit() so no gtest/leak machinery
// runs twice.

struct Job {
  std::vector<pid_t> pids;
  std::vector<int> out;  // read end of each rank's result pipe

  ~Job() {
    for (int fd : out) {
      if (fd >= 0) ::close(fd);
    }
  }
};

Job spawn_ranks(int nranks, int ppn,
                const std::function<void(int rank, int wfd)>& body) {
  cxnet::Fd listen = cxnet::tcp_listen(0);
  const std::uint16_t port = cxnet::local_port(listen.get());
  char root[32];
  std::snprintf(root, sizeof(root), "127.0.0.1:%u", port);

  Job job;
  for (int r = 0; r < nranks; ++r) {
    int p[2];
    if (::pipe(p) != 0) throw std::runtime_error("pipe() failed");
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::close(p[0]);
      listen.reset();
      for (int fd : job.out) ::close(fd);
      char v[16];
      std::snprintf(v, sizeof(v), "%d", r);
      ::setenv("CXRUN_RANK", v, 1);
      std::snprintf(v, sizeof(v), "%d", nranks);
      ::setenv("CXRUN_NRANKS", v, 1);
      std::snprintf(v, sizeof(v), "%d", ppn);
      ::setenv("CXRUN_PPN", v, 1);
      ::setenv("CXRUN_ROOT", root, 1);
      try {
        body(r, p[1]);
      } catch (...) {
        ::_exit(9);
      }
      ::_exit(0);
    }
    ::close(p[1]);
    job.pids.push_back(pid);
    job.out.push_back(p[0]);
  }
  cxnet::run_root_exchange(listen.get(), static_cast<std::uint32_t>(nranks),
                           static_cast<std::uint32_t>(ppn));
  return job;
}

bool read_exact(int fd, void* buf, std::size_t n, int timeout_ms = 120000) {
  auto* p = static_cast<unsigned char*>(buf);
  while (n > 0) {
    struct pollfd pf = {fd, POLLIN, 0};
    if (::poll(&pf, 1, timeout_ms) <= 0) return false;
    const ssize_t r = ::read(fd, p, n);
    if (r <= 0) return false;
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

void write_exact(int fd, const void* buf, std::size_t n) {
  auto* p = static_cast<const unsigned char*>(buf);
  while (n > 0) {
    const ssize_t r = ::write(fd, p, n);
    if (r <= 0) return;
    p += r;
    n -= static_cast<std::size_t>(r);
  }
}

struct ExitStatus {
  bool signaled = false;
  int code = -1;  // exit code, or the signal number when signaled
};

ExitStatus wait_child(pid_t pid) {
  int st = 0;
  if (::waitpid(pid, &st, 0) != pid) return {};
  if (WIFSIGNALED(st)) return {true, WTERMSIG(st)};
  if (WIFEXITED(st)) return {false, WEXITSTATUS(st)};
  return {};
}

// ---------------------------------------------------------------------------
// Ring digest parity: a token hops PE 0 -> 1 -> ... -> 0 mixing
// (pe, hop) into an FNV accumulator at every stop. Any difference in
// delivery order, payload bytes, or routing changes the digest, so one
// u64 compares the whole run against the threaded backend.

struct Token {
  std::uint32_t hop = 0;
  std::uint32_t total = 0;
  std::uint64_t digest = 0;
  void pup(pup::Er& p) {
    p | hop;
    p | total;
    p | digest;
  }
};

std::uint64_t fnv_step(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 1099511628211ull;
}

/// Run the token ring on any machine; returns the final digest on the
/// rank hosting PE 0 (where the ring closes), 0 elsewhere.
std::uint64_t run_ring(cxm::Machine& m, std::uint32_t total_hops) {
  std::atomic<std::uint64_t> result{0};
  std::uint32_t h = 0;
  h = m.register_handler([&](cxm::MessagePtr msg) {
    Token t = pup::from_bytes<Token>(msg->data);
    const int pe = m.current_pe();
    t.digest = fnv_step(t.digest, (static_cast<std::uint64_t>(pe) << 32) |
                                      t.hop);
    ++t.hop;
    if (t.hop == t.total) {
      result.store(t.digest);
      m.stop();
      return;
    }
    auto out = std::make_unique<cxm::Message>();
    out->handler = h;
    out->dst_pe = (pe + 1) % m.num_pes();
    out->data = pup::to_bytes(t);
    m.send(std::move(out));
  });
  if (m.hosts_pe(0)) {
    Token t;
    t.total = total_hops;
    t.digest = 0xcbf29ce484222325ull;
    auto seed = std::make_unique<cxm::Message>();
    seed->handler = h;
    seed->dst_pe = 0;
    seed->data = pup::to_bytes(t);
    m.send(std::move(seed));
  }
  m.run();
  return result.load();
}

// 4 PEs, 13 hops: 13 % 4 == 1, so the ring closes back on PE 0 — the
// rank that reports. With 2 ranks x 2 ppn, hops 1->2 and 3->0 cross
// the sockets while 0->1 and 2->3 take the in-process mailbox path.
constexpr std::uint32_t kRingHops = 13;

TEST(SocketJob, RingDigestMatchesThreaded) {
  cxm::MachineConfig ref;
  ref.num_pes = 4;
  ref.backend = cxm::Backend::Threaded;
  const std::uint64_t expected = run_ring(*cxm::make_machine(ref), kRingHops);
  ASSERT_NE(expected, 0u);

  Job job = spawn_ranks(2, 2, [](int, int wfd) {
    cxm::MachineConfig cfg;  // Threaded request; CXRUN_* upgrades it
    auto m = cxm::make_machine(cfg);
    const std::uint64_t digest = run_ring(*m, kRingHops);
    write_exact(wfd, &digest, sizeof(digest));
  });

  std::uint64_t digest = 0;
  ASSERT_TRUE(read_exact(job.out[0], &digest, sizeof(digest)));
  EXPECT_EQ(digest, expected);
  for (pid_t pid : job.pids) {
    const ExitStatus st = wait_child(pid);
    EXPECT_FALSE(st.signaled);
    EXPECT_EQ(st.code, 0);
  }
}

// ---------------------------------------------------------------------------
// Full-runtime reduction parity: create_array spreads elements over
// both ranks, the broadcast and the sum reduction cross the sockets,
// and the result must match the threaded backend exactly.

struct SumCell : cx::Chare {
  void start(cx::Future<int> f) {
    contribute(this_index()[0] * 7 + 1, cx::reducer::sum<int>(),
               cx::cb(f));
  }
};

constexpr int kSumCells = 8;

int run_reduction_program(const cx::RuntimeConfig& cfg, int wfd) {
  int sum = -1;
  cx::Runtime rt(cfg);
  rt.run([&] {
    auto arr = cx::create_array<SumCell>({kSumCells});
    auto f = cx::make_future<int>();
    arr.broadcast<&SumCell::start>(f);
    sum = f.get();
    if (wfd >= 0) write_exact(wfd, &sum, sizeof(sum));
    cx::exit();
  });
  return sum;
}

TEST(SocketJob, RuntimeReductionMatchesThreaded) {
  cx::RuntimeConfig ref;
  ref.machine.num_pes = 4;
  const int expected = run_reduction_program(ref, -1);
  int check = 0;
  for (int i = 0; i < kSumCells; ++i) check += i * 7 + 1;
  ASSERT_EQ(expected, check);

  Job job = spawn_ranks(2, 2, [](int, int wfd) {
    cx::RuntimeConfig cfg;  // geometry comes from the CXRUN_* environment
    (void)run_reduction_program(cfg, wfd);
  });

  int sum = 0;
  ASSERT_TRUE(read_exact(job.out[0], &sum, sizeof(sum)));
  EXPECT_EQ(sum, expected);
  for (pid_t pid : job.pids) {
    const ExitStatus st = wait_child(pid);
    EXPECT_FALSE(st.signaled);
    EXPECT_EQ(st.code, 0);
  }
}

// ---------------------------------------------------------------------------
// kill -9 a worker rank: the comm threads of the survivors see the
// connection EOF, mark every PE of the dead rank crashed, and feed the
// failure listener — from there the PR 7 pipeline (coordinator notice
// round, cx::ft::on_failure) runs unchanged. Heartbeats are enabled so
// the liveness layer is live too; whichever detector fires first wins
// and the coordinator dedups the rest.

TEST(SocketJob, Kill9WorkerDeclaredThroughFtPipeline) {
  const int kVictimRank = 2;  // == PE 2 with ppn 1
  Job job = spawn_ranks(3, 1, [](int rank, int wfd) {
    cx::RuntimeConfig cfg;
    cfg.machine.faults.heartbeat_s = 0.05;
    cx::Runtime rt(cfg);
    if (rank != 0) {
      // Wireup is complete once the Runtime exists: report ready, then
      // run the scheduler until the Stop broadcast (or SIGKILL).
      const char ready = 'R';
      write_exact(wfd, &ready, 1);
    }
    rt.run([&] {
      // The callback outlives this entry function — keep its state on
      // the heap, not the entry frame.
      auto reported = std::make_shared<std::atomic<bool>>(false);
      cx::ft::on_failure([reported, wfd](const cx::ft::PeFailure& f) {
        if (reported->exchange(true)) return;
        const int report[2] = {f.pe, static_cast<int>(f.kind)};
        write_exact(wfd, report, sizeof(report));
        cx::exit();
      });
      const char ready = 'R';
      write_exact(wfd, &ready, 1);
    });
  });

  // All ranks wired up and rank 0's entry running: now pull the plug.
  for (int r = 0; r < 3; ++r) {
    char c = 0;
    ASSERT_TRUE(read_exact(job.out[r], &c, 1)) << "rank " << r;
    ASSERT_EQ(c, 'R');
  }
  ASSERT_EQ(::kill(job.pids[kVictimRank], SIGKILL), 0);

  int report[2] = {-1, -1};
  ASSERT_TRUE(read_exact(job.out[0], report, sizeof(report)));
  EXPECT_EQ(report[0], kVictimRank);  // the dead rank's PE
  EXPECT_EQ(report[1], static_cast<int>(cx::ft::FailureKind::Crashed));

  const ExitStatus victim = wait_child(job.pids[kVictimRank]);
  EXPECT_TRUE(victim.signaled);
  EXPECT_EQ(victim.code, SIGKILL);
  for (int r = 0; r < 3; ++r) {
    if (r == kVictimRank) continue;
    const ExitStatus st = wait_child(job.pids[r]);
    EXPECT_FALSE(st.signaled) << "rank " << r;
    EXPECT_EQ(st.code, 0) << "rank " << r;
  }
}

}  // namespace
