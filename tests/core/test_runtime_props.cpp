// Property tests of the messaging core: randomized message storms with
// per-payload checksums, when-guarded ordered streams under shuffled
// sends, and quiescence exactness. These are the distilled regression
// tests from bring-up (they catch payload corruption, double delivery,
// lost messages and premature quiescence).

#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace {

using namespace cx;
using cxtest::run_program;
using cxtest::sim_cfg;
using cxtest::threaded_cfg;

// ---------------------------------------------------------------------------
// Storm: random payloads to random targets; every payload checksummed.

struct Echoer : Chare {
  int received = 0;
  void take(int from, std::vector<double> data, double sum) {
    (void)from;
    double s = 0;
    for (double v : data) s += v;
    ASSERT_NEAR(s, sum, 1e-9) << "payload corrupted in transit";
    ++received;
  }
  int count() { return received; }
};

struct Storm : Chare {
  void blast(CollectionProxy<Echoer> arr, int targets, int sends,
             std::uint64_t seed) {
    cxu::Rng rng(seed + static_cast<std::uint64_t>(this_index()[0]) * 977);
    for (int r = 0; r < sends; ++r) {
      std::vector<double> data(6 + rng.below(30));
      double sum = 0;
      for (auto& v : data) {
        v = rng.uniform(-10, 10);
        sum += v;
      }
      const int dst =
          static_cast<int>(rng.below(static_cast<std::uint64_t>(targets)));
      arr[dst].send<&Echoer::take>(static_cast<int>(this_index()[0]),
                                   std::move(data), sum);
    }
  }
};

class StormProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StormProperty, EveryPayloadArrivesIntactExactlyOnce) {
  run_program(threaded_cfg(2), [] {
    constexpr int kTargets = 32, kSenders = 16, kSends = 60;
    auto arr = create_array<Echoer>({kTargets});
    auto storms = create_array<Storm>({kSenders});
    storms.broadcast_done<&Storm::blast>(arr, kTargets, kSends, GetParam())
        .get();
    auto f = make_future<void>();
    Runtime::current().start_quiescence(cb(f));
    f.get();
    int total = 0;
    for (int i = 0; i < kTargets; ++i) {
      total += arr[i].call<&Echoer::count>().get();
    }
    EXPECT_EQ(total, kSenders * kSends);
    cx::exit();
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, StormProperty,
                         ::testing::Values(1u, 7u, 42u, 1234u));

// ---------------------------------------------------------------------------
// Ordered streams: rounds sent shuffled; when-guards must deliver in
// round order with intact payloads.

struct Seq : Chare {
  int round = 0;
  long checked = 0;
  void take(int r, std::vector<double> data, double sum) {
    ASSERT_EQ(r, round) << "when-guard delivered out of order";
    double s = 0;
    for (double v : data) s += v;
    ASSERT_NEAR(s, sum, 1e-9);
    ++checked;
    ++round;
  }
  long total() { return checked; }
};

struct SeqRegistrar {
  SeqRegistrar() {
    set_when<&Seq::take>([](Seq& self, const int& r,
                            const std::vector<double>&, const double&) {
      return r == self.round;
    });
  }
};
const SeqRegistrar seq_registrar;

struct Shuffler : Chare {
  void blast(CollectionProxy<Seq> arr, int rounds, std::uint64_t seed) {
    // This shuffler owns target index == its own index.
    cxu::Rng rng(seed * 31 + static_cast<std::uint64_t>(this_index()[0]));
    std::vector<int> order(static_cast<std::size_t>(rounds));
    for (int r = 0; r < rounds; ++r) order[static_cast<std::size_t>(r)] = r;
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    for (int r : order) {
      std::vector<double> data(4 + rng.below(16));
      double sum = 0;
      for (auto& v : data) {
        v = rng.uniform(-5, 5);
        sum += v;
      }
      arr[this_index()].send<&Seq::take>(r, std::move(data), sum);
    }
  }
};

class OrderedStreamProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderedStreamProperty, ShuffledSendsDeliverInOrder) {
  run_program(threaded_cfg(2), [] {
    constexpr int kChares = 16, kRounds = 40;
    auto arr = create_array<Seq>({kChares});
    auto shufflers = create_array<Shuffler>({kChares});
    shufflers.broadcast_done<&Shuffler::blast>(arr, kRounds, GetParam())
        .get();
    auto f = make_future<void>();
    Runtime::current().start_quiescence(cb(f));
    f.get();
    for (int i = 0; i < kChares; ++i) {
      EXPECT_EQ(arr[i].call<&Seq::total>().get(), kRounds);
    }
    cx::exit();
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderedStreamProperty,
                         ::testing::Values(3u, 11u, 99u));

TEST(OrderedStreamSim, ShuffledSendsDeliverInOrderOnSimBackend) {
  run_program(sim_cfg(4), [] {
    constexpr int kChares = 8, kRounds = 30;
    auto arr = create_array<Seq>({kChares});
    auto shufflers = create_array<Shuffler>({kChares});
    shufflers.broadcast_done<&Shuffler::blast>(arr, kRounds, 5u).get();
    auto f = make_future<void>();
    Runtime::current().start_quiescence(cb(f));
    f.get();
    for (int i = 0; i < kChares; ++i) {
      EXPECT_EQ(arr[i].call<&Seq::total>().get(), kRounds);
    }
    cx::exit();
  });
}

// ---------------------------------------------------------------------------
// Disabling the same-PE fast path must not change semantics.

TEST(FastpathAblation, SerializedLocalDeliveryIsEquivalent) {
  run_program(threaded_cfg(1), [] {
    cx::detail::set_local_fastpath(false);
    auto arr = create_array<Echoer>({4});
    std::vector<double> data = {1.5, 2.5, -1.0};
    for (int i = 0; i < 4; ++i) {
      arr[i].send<&Echoer::take>(0, data, 3.0);
    }
    auto f = make_future<void>();
    Runtime::current().start_quiescence(cb(f));
    f.get();
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(arr[i].call<&Echoer::count>().get(), 1);
    }
    cx::detail::set_local_fastpath(true);
    cx::exit();
  });
}

}  // namespace
