// Reductions (paper §II-F): built-in reducers, element-wise vector
// reductions (the NumPy case), gather, custom reducers, empty reductions,
// futures and entry methods as targets, multiple reductions in flight.

#include <gtest/gtest.h>

#include <vector>

#include "test_helpers.hpp"

namespace {

using namespace cx;
using cxtest::run_program;
using cxtest::sim_cfg;
using cxtest::threaded_cfg;

struct Worker : Chare {
  void contribute_index(Future<int> target) {
    contribute(this_index()[0], reducer::sum<int>(), cb(target));
  }
  void contribute_double(double v, Future<double> target) {
    contribute(v, reducer::sum<double>(), cb(target));
  }
  void contribute_max(Future<int> target) {
    contribute(this_index()[0], reducer::max<int>(), cb(target));
  }
  void contribute_min(Future<int> target) {
    contribute(this_index()[0], reducer::min<int>(), cb(target));
  }
  void contribute_vector(Future<std::vector<double>> target) {
    std::vector<double> data = {1.0, static_cast<double>(this_index()[0])};
    contribute(data, reducer::sum<std::vector<double>>(), cb(target));
  }
  void contribute_gather_idx(Future<std::vector<std::pair<Index, int>>> t) {
    contribute_gather(this_index()[0] * 100, cb(t));
  }
  void barrier(Future<void> target) { contribute(cb(target)); }
  void two_in_flight(Future<int> a, Future<int> b) {
    contribute(1, reducer::sum<int>(), cb(a));
    contribute(10, reducer::sum<int>(), cb(b));
  }
};

TEST(Reduction, SumOverArray) {
  run_program(threaded_cfg(4), [] {
    auto arr = create_array<Worker>({10});
    auto f = make_future<int>();
    arr.broadcast<&Worker::contribute_index>(f);
    EXPECT_EQ(f.get(), 45);  // 0+1+...+9
    cx::exit();
  });
}

TEST(Reduction, SumOfDoubles) {
  run_program(threaded_cfg(3), [] {
    auto arr = create_array<Worker>({8});
    auto f = make_future<double>();
    arr.broadcast<&Worker::contribute_double>(0.5, f);
    EXPECT_DOUBLE_EQ(f.get(), 4.0);
    cx::exit();
  });
}

TEST(Reduction, MaxAndMin) {
  run_program(threaded_cfg(4), [] {
    auto arr = create_array<Worker>({7});
    auto fmax = make_future<int>();
    arr.broadcast<&Worker::contribute_max>(fmax);
    EXPECT_EQ(fmax.get(), 6);
    auto fmin = make_future<int>();
    arr.broadcast<&Worker::contribute_min>(fmin);
    EXPECT_EQ(fmin.get(), 0);
    cx::exit();
  });
}

TEST(Reduction, VectorSumIsElementwise) {
  run_program(threaded_cfg(4), [] {
    auto arr = create_array<Worker>({5});
    auto f = make_future<std::vector<double>>();
    arr.broadcast<&Worker::contribute_vector>(f);
    const auto v = f.get();
    ASSERT_EQ(v.size(), 2u);
    EXPECT_DOUBLE_EQ(v[0], 5.0);   // five ones
    EXPECT_DOUBLE_EQ(v[1], 10.0);  // 0+1+2+3+4
    cx::exit();
  });
}

TEST(Reduction, GatherSortedByIndex) {
  run_program(threaded_cfg(3), [] {
    auto arr = create_array<Worker>({4});
    auto f = make_future<std::vector<std::pair<Index, int>>>();
    arr.broadcast<&Worker::contribute_gather_idx>(f);
    const auto items = f.get();
    ASSERT_EQ(items.size(), 4u);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(items[static_cast<std::size_t>(i)].first[0], i);
      EXPECT_EQ(items[static_cast<std::size_t>(i)].second, i * 100);
    }
    cx::exit();
  });
}

TEST(Reduction, EmptyReductionIsABarrier) {
  run_program(threaded_cfg(4), [] {
    auto grp = create_group<Worker>();
    auto f = make_future<void>();
    grp.broadcast<&Worker::barrier>(f);
    f.get();  // completes only after every group member contributed
    cx::exit();
  });
}

TEST(Reduction, MultipleReductionsInFlight) {
  run_program(threaded_cfg(2), [] {
    auto arr = create_array<Worker>({6});
    auto fa = make_future<int>();
    auto fb = make_future<int>();
    arr.broadcast<&Worker::two_in_flight>(fa, fb);
    EXPECT_EQ(fa.get(), 6);
    EXPECT_EQ(fb.get(), 60);
    cx::exit();
  });
}

// Custom reducer (paper §II-F1): concatenate strings.
struct Concatenator : Chare {
  void speak(CombineId reducer, Future<std::string> target) {
    std::string word = "w" + std::to_string(this_index()[0]);
    contribute(word, reducer, cb(target));
  }
};

TEST(Reduction, CustomReducer) {
  static const CombineId concat =
      add_reducer<std::string>([](std::string& a, const std::string& b) {
        a = a < b ? a + "," + b : b + "," + a;  // order-insensitive concat
      });
  run_program(threaded_cfg(2), [] {
    auto arr = create_array<Concatenator>({3});
    auto f = make_future<std::string>();
    arr.broadcast<&Concatenator::speak>(concat, f);
    const std::string s = f.get();
    EXPECT_NE(s.find("w0"), std::string::npos);
    EXPECT_NE(s.find("w1"), std::string::npos);
    EXPECT_NE(s.find("w2"), std::string::npos);
    cx::exit();
  });
}

// Reduction target passed around as a first-class Callback value.
struct Contributor : Chare {
  void go(Callback target) {
    contribute(2, reducer::sum<int>(), target);
  }
};

TEST(Reduction, CallbackTargetPassedAsArgument) {
  run_program(threaded_cfg(2), [] {
    auto arr = create_array<Contributor>({5});
    auto f = make_future<int>();
    arr.broadcast<&Contributor::go>(cb(f));
    EXPECT_EQ(f.get(), 10);
    cx::exit();
  });
}

struct SingleArgSink : Chare {
  int received = -1;
  void absorb(int total) { received = total; }
  int value() { return received; }
};

TEST(Reduction, EntryMethodTargetReceivesResult) {
  run_program(threaded_cfg(2), [] {
    auto sink = create_chare<SingleArgSink>(1);
    (void)sink.call<&SingleArgSink::value>().get();  // ensure created
    auto arr = create_array<Contributor>({4});
    arr.broadcast<&Contributor::go>(sink.callback<&SingleArgSink::absorb>());
    while (sink.call<&SingleArgSink::value>().get() < 0) {
    }
    EXPECT_EQ(sink.call<&SingleArgSink::value>().get(), 8);
    cx::exit();
  });
}

// Broadcast as reduction target: every element receives the result.
struct BcastTarget : Chare {
  int sum_seen = -1;
  void go(Callback target) { contribute(3, reducer::sum<int>(), target); }
  void receive_sum(int total) { sum_seen = total; }
  int seen() { return sum_seen; }
};

TEST(Reduction, BroadcastTargetDeliversToAllElements) {
  run_program(threaded_cfg(2), [] {
    auto arr = create_array<BcastTarget>({4});
    arr.broadcast<&BcastTarget::go>(
        arr.callback<&BcastTarget::receive_sum>());
    for (int i = 0; i < 4; ++i) {
      while (arr[i].call<&BcastTarget::seen>().get() < 0) {
      }
      EXPECT_EQ(arr[i].call<&BcastTarget::seen>().get(), 12);
    }
    cx::exit();
  });
}

TEST(ReductionSim, SumOnSimBackendAtScale) {
  run_program(sim_cfg(32), [] {
    auto arr = create_array<Worker>({64});
    auto f = make_future<int>();
    arr.broadcast<&Worker::contribute_index>(f);
    EXPECT_EQ(f.get(), 64 * 63 / 2);
    cx::exit();
  });
}

}  // namespace
