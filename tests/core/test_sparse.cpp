// Sparse chare arrays: dynamic insertion (paper §II-G, ckInsert /
// ckDoneInserting), custom placement, reductions after finalization.

#include <gtest/gtest.h>

#include <set>

#include "test_helpers.hpp"

namespace {

using namespace cx;
using cxtest::run_program;
using cxtest::sim_cfg;
using cxtest::threaded_cfg;

struct SparseCell : Chare {
  int value = 0;
  SparseCell() = default;
  explicit SparseCell(int v) : value(v) {}
  int get() { return value; }
  int where() { return cx::my_pe(); }
  void add_up(Future<int> f) { contribute(value, reducer::sum<int>(), cb(f)); }
};

TEST(Sparse, InsertAndInvoke) {
  run_program(threaded_cfg(3), [] {
    auto arr = create_sparse<SparseCell>(1);
    for (int i : {2, 7, 11}) arr.insert(Index(i), i * 10);
    arr.done_inserting().get();
    EXPECT_EQ(arr[2].call<&SparseCell::get>().get(), 20);
    EXPECT_EQ(arr[7].call<&SparseCell::get>().get(), 70);
    EXPECT_EQ(arr[11].call<&SparseCell::get>().get(), 110);
    cx::exit();
  });
}

TEST(Sparse, SparseIndexSpaceCanBeHuge) {
  run_program(threaded_cfg(2), [] {
    auto arr = create_sparse<SparseCell>(2);
    arr.insert(Index(1000000, 2000000), 1);
    arr.insert(Index(-5, 17), 2);
    arr.done_inserting().get();
    EXPECT_EQ((arr[{1000000, 2000000}].call<&SparseCell::get>().get()), 1);
    EXPECT_EQ((arr[{-5, 17}].call<&SparseCell::get>().get()), 2);
    cx::exit();
  });
}

TEST(Sparse, ExplicitPlacementViaInsertOn) {
  run_program(threaded_cfg(4), [] {
    auto arr = create_sparse<SparseCell>(1);
    for (int i = 0; i < 4; ++i) arr.insert_on(i, Index(i), i);
    arr.done_inserting().get();
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(arr[i].call<&SparseCell::where>().get(), i);
    }
    cx::exit();
  });
}

TEST(Sparse, ReductionAfterDoneInserting) {
  run_program(threaded_cfg(2), [] {
    auto arr = create_sparse<SparseCell>(1);
    for (int i = 0; i < 10; ++i) arr.insert(Index(i * 3), i);
    arr.done_inserting().get();
    auto f = make_future<int>();
    arr.broadcast<&SparseCell::add_up>(f);
    EXPECT_EQ(f.get(), 45);
    cx::exit();
  });
}

TEST(Sparse, BroadcastReachesAllInsertedElements) {
  run_program(sim_cfg(4), [] {
    auto arr = create_sparse<SparseCell>(1);
    std::set<int> keys = {1, 5, 9, 42, 77};
    for (int k : keys) arr.insert(Index(k), 1);
    arr.done_inserting().get();
    auto f = make_future<int>();
    arr.broadcast<&SparseCell::add_up>(f);
    EXPECT_EQ(f.get(), static_cast<int>(keys.size()));
    cx::exit();
  });
}

TEST(Sparse, MessagesToNotYetInsertedElementsAreBuffered) {
  run_program(threaded_cfg(2), [] {
    auto arr = create_sparse<SparseCell>(1);
    // Send before inserting: must be buffered at the home PE and
    // delivered once the element exists.
    auto f = arr[33].call<&SparseCell::get>();
    arr.insert(Index(33), 99);
    arr.done_inserting().get();
    EXPECT_EQ(f.get(), 99);
    cx::exit();
  });
}

}  // namespace
