// Core runtime: chare creation, remote invocation, futures, broadcasts.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "test_helpers.hpp"

namespace {

using namespace cx;
using cxtest::run_program;
using cxtest::sim_cfg;
using cxtest::threaded_cfg;

// ---------------------------------------------------------------------------

struct Echo : Chare {
  int add(int a, int b) { return a + b; }
  std::string shout(std::string s) { return s + "!"; }
  void fire_and_forget(int) {}
};

TEST(RuntimeBasic, SingletonCallReturnsValueViaFuture) {
  run_program(threaded_cfg(4), [] {
    auto echo = create_chare<Echo>(-1);
    auto f = echo.call<&Echo::add>(2, 3);
    EXPECT_EQ(f.get(), 5);
    auto g = echo.call<&Echo::shout>(std::string("hey"));
    EXPECT_EQ(g.get(), "hey!");
    cx::exit();
  });
}

TEST(RuntimeBasic, SingletonOnSpecificPe) {
  run_program(threaded_cfg(3), [] {
    for (int pe = 0; pe < 3; ++pe) {
      auto echo = create_chare<Echo>(pe);
      EXPECT_EQ(echo.call<&Echo::add>(pe, 10).get(), pe + 10);
    }
    cx::exit();
  });
}

// ---------------------------------------------------------------------------

struct PeReporter : Chare {
  int my_pe_now() { return cx::my_pe(); }
  Index my_index() { return this_index(); }
};

TEST(RuntimeBasic, GroupHasOneMemberPerPe) {
  run_program(threaded_cfg(4), [] {
    auto grp = create_group<PeReporter>();
    for (int pe = 0; pe < cx::num_pes(); ++pe) {
      EXPECT_EQ(grp[pe].call<&PeReporter::my_pe_now>().get(), pe);
      const Index idx = grp[pe].call<&PeReporter::my_index>().get();
      EXPECT_EQ(idx[0], pe);
    }
    cx::exit();
  });
}

TEST(RuntimeBasic, Array2DIndexing) {
  run_program(threaded_cfg(4), [] {
    auto arr = create_array<PeReporter>({3, 3});
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        const Index idx =
            arr[{i, j}].call<&PeReporter::my_index>().get();
        EXPECT_EQ(idx.ndims(), 2);
        EXPECT_EQ(idx[0], i);
        EXPECT_EQ(idx[1], j);
      }
    }
    cx::exit();
  });
}

// ---------------------------------------------------------------------------

struct CtorChare : Chare {
  int base;
  std::string tag;
  Index ctor_index;
  CtorChare() : base(0) {}
  CtorChare(int b, std::string t)
      : base(b), tag(std::move(t)), ctor_index(this_index()) {}
  int probe(int x) { return base + x; }
  std::string get_tag() { return tag; }
  Index index_seen_in_ctor() { return ctor_index; }
};

TEST(RuntimeBasic, ConstructorArgumentsReachEveryElement) {
  run_program(threaded_cfg(4), [] {
    auto arr = create_array<CtorChare>({5}, 100, std::string("blue"));
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(arr[i].call<&CtorChare::probe>(i).get(), 100 + i);
      EXPECT_EQ(arr[i].call<&CtorChare::get_tag>().get(), "blue");
    }
    cx::exit();
  });
}

TEST(RuntimeBasic, ThisIndexAvailableInConstructor) {
  run_program(threaded_cfg(2), [] {
    auto arr = create_array<CtorChare>({4}, 1, std::string("x"));
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(arr[i].call<&CtorChare::index_seen_in_ctor>().get()[0], i);
    }
    cx::exit();
  });
}

// ---------------------------------------------------------------------------
// The paper's same-process by-reference optimization (§II-D): arguments to
// a same-PE chare are passed by reference (zero copy, no serialization).

struct BufferSink : Chare {
  const double* seen_data = nullptr;
  void take(std::vector<double> v) { seen_data = v.data(); }
  std::uintptr_t seen() { return reinterpret_cast<std::uintptr_t>(seen_data); }
};

TEST(RuntimeBasic, SamePeSendPassesArgumentsByReference) {
  run_program(threaded_cfg(1), [] {
    auto sink = create_chare<BufferSink>(0);
    // Ensure creation completed before probing the fast path.
    (void)sink.call<&BufferSink::seen>().get();
    std::vector<double> payload(1024, 1.5);
    const auto original = reinterpret_cast<std::uintptr_t>(payload.data());
    sink.send<&BufferSink::take>(std::move(payload));
    EXPECT_EQ(sink.call<&BufferSink::seen>().get(), original);
    cx::exit();
  });
}

TEST(RuntimeBasic, CrossPeSendSerializes) {
  run_program(threaded_cfg(2), [] {
    auto sink = create_chare<BufferSink>(1);  // remote from PE 0
    (void)sink.call<&BufferSink::seen>().get();
    std::vector<double> payload(1024, 2.5);
    const auto original = reinterpret_cast<std::uintptr_t>(payload.data());
    sink.send<&BufferSink::take>(payload);
    const auto seen = sink.call<&BufferSink::seen>().get();
    EXPECT_NE(seen, 0u);
    EXPECT_NE(seen, original);
    cx::exit();
  });
}

// ---------------------------------------------------------------------------

struct Pinger : Chare {
  int pongs = 0;
  void pong() { ++pongs; }
  int count() { return pongs; }
};

struct Ponger : Chare {
  void ping(ElementProxy<Pinger> back) { back.send<&Pinger::pong>(); }
};

TEST(RuntimeBasic, ProxiesArePassableAsArguments) {
  run_program(threaded_cfg(2), [] {
    auto pinger = create_chare<Pinger>(0);
    auto ponger = create_chare<Ponger>(1);
    for (int i = 0; i < 5; ++i) ponger.send<&Ponger::ping>(pinger);
    // Poll until all pongs arrive (delivery is asynchronous).
    while (pinger.call<&Pinger::count>().get() < 5) {
    }
    cx::exit();
  });
}

// ---------------------------------------------------------------------------

struct BumpChare : Chare {
  int hits = 0;
  void bump() { ++hits; }
  int get_hits() { return hits; }
};

TEST(RuntimeBasic, BroadcastReachesEveryElement) {
  run_program(threaded_cfg(4), [] {
    auto arr = create_array<BumpChare>({10});
    auto done = arr.broadcast_done<&BumpChare::bump>();
    done.get();
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(arr[i].call<&BumpChare::get_hits>().get(), 1);
    }
    cx::exit();
  });
}

TEST(RuntimeBasic, BroadcastDoneWaitsForAllElements) {
  run_program(threaded_cfg(3), [] {
    auto grp = create_group<BumpChare>();
    grp.broadcast_done<&BumpChare::bump>().get();
    grp.broadcast_done<&BumpChare::bump>().get();
    for (int pe = 0; pe < cx::num_pes(); ++pe) {
      EXPECT_EQ(grp[pe].call<&BumpChare::get_hits>().get(), 2);
    }
    cx::exit();
  });
}

// ---------------------------------------------------------------------------

struct FutureFiller : Chare {
  void fill(Future<int> f, int v) { f.send(v); }
};

TEST(RuntimeBasic, ExplicitFuturesCanBeSentToChares) {
  run_program(threaded_cfg(2), [] {
    auto filler = create_chare<FutureFiller>(1);
    auto f1 = make_future<int>();
    auto f2 = make_future<int>();
    filler.send<&FutureFiller::fill>(f1, 42);
    filler.send<&FutureFiller::fill>(f2, 7);
    EXPECT_EQ(f1.get(), 42);
    EXPECT_EQ(f2.get(), 7);
    cx::exit();
  });
}

TEST(RuntimeBasic, FutureReadyIsNonBlocking) {
  run_program(threaded_cfg(1), [] {
    auto f = make_future<int>();
    EXPECT_FALSE(f.ready());
    f.send(9);
    // send on creator PE fulfills directly.
    EXPECT_TRUE(f.ready());
    EXPECT_EQ(f.get(), 9);
    cx::exit();
  });
}

// ---------------------------------------------------------------------------
// Same programs on the simulated backend.

TEST(RuntimeBasicSim, CallAndBroadcastOnSimBackend) {
  run_program(sim_cfg(8), [] {
    auto arr = create_array<BumpChare>({16});
    arr.broadcast_done<&BumpChare::bump>().get();
    int total = 0;
    for (int i = 0; i < 16; ++i) {
      total += arr[i].call<&BumpChare::get_hits>().get();
    }
    EXPECT_EQ(total, 16);
    cx::exit();
  });
}

TEST(RuntimeBasicSim, VirtualTimeAdvances) {
  cx::RuntimeConfig cfg = sim_cfg(2);
  cx::Runtime rt(cfg);
  rt.run([] {
    cx::compute(0.25);
    cx::exit();
  });
  EXPECT_GE(rt.sim_makespan(), 0.25);
}

TEST(RuntimeBasic, MessagesSentCounterGrows) {
  cx::RuntimeConfig cfg = threaded_cfg(2);
  cx::Runtime rt(cfg);
  rt.run([] {
    auto echo = create_chare<Echo>(1);
    for (int i = 0; i < 10; ++i) echo.send<&Echo::fire_and_forget>(i);
    (void)echo.call<&Echo::add>(1, 1).get();
    cx::exit();
  });
  EXPECT_GT(rt.messages_sent(), 10u);
}

}  // namespace
