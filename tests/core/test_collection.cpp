#include "core/collection.hpp"

#include <gtest/gtest.h>

#include <set>

namespace {

using namespace cx;

CollectionInfo array_info(const Index& dims, const std::string& map) {
  CollectionInfo info;
  info.kind = CollectionKind::Array;
  info.dims = dims;
  info.ndims = dims.ndims();
  info.size = dense_size(dims);
  info.map_name = map;
  return info;
}

TEST(Collection, Linearize) {
  const Index dims(4, 5);
  EXPECT_EQ(linearize(Index(0, 0), dims), 0u);
  EXPECT_EQ(linearize(Index(0, 4), dims), 4u);
  EXPECT_EQ(linearize(Index(1, 0), dims), 5u);
  EXPECT_EQ(linearize(Index(3, 4), dims), 19u);
}

TEST(Collection, DenseSize) {
  EXPECT_EQ(dense_size(Index(10)), 10u);
  EXPECT_EQ(dense_size(Index(3, 4)), 12u);
  EXPECT_EQ(dense_size(Index(2, 3, 4)), 24u);
}

TEST(Collection, BlockMapIsContiguousAndBalanced) {
  auto info = array_info(Index(16), "block");
  const auto& map = lookup_map("block");
  int prev = 0;
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 16; ++i) {
    const int pe = map(Index(i), info, 4);
    EXPECT_GE(pe, prev);  // non-decreasing: contiguous blocks
    EXPECT_GE(pe, 0);
    EXPECT_LT(pe, 4);
    prev = pe;
    counts[static_cast<std::size_t>(pe)]++;
  }
  for (int c : counts) EXPECT_EQ(c, 4);
}

TEST(Collection, BlockMapCoversAllPEsWhenMoreElementsThanPEs) {
  auto info = array_info(Index(7), "block");
  const auto& map = lookup_map("block");
  std::set<int> pes;
  for (int i = 0; i < 7; ++i) pes.insert(map(Index(i), info, 3));
  EXPECT_EQ(pes.size(), 3u);
}

TEST(Collection, RrMapRoundRobins) {
  auto info = array_info(Index(8), "rr");
  const auto& map = lookup_map("rr");
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(map(Index(i), info, 3), i % 3);
  }
}

TEST(Collection, HashMapInRange) {
  auto info = array_info(Index(100), "hash");
  const auto& map = lookup_map("hash");
  for (int i = 0; i < 100; ++i) {
    const int pe = map(Index(i), info, 7);
    EXPECT_GE(pe, 0);
    EXPECT_LT(pe, 7);
  }
}

TEST(Collection, CustomMapRegistration) {
  register_map("evens_to_zero",
               [](const Index& idx, const CollectionInfo&, int num_pes) {
                 return idx[0] % 2 == 0 ? 0 : 1 % num_pes;
               });
  const auto& map = lookup_map("evens_to_zero");
  auto info = array_info(Index(4), "evens_to_zero");
  EXPECT_EQ(map(Index(0), info, 2), 0);
  EXPECT_EQ(map(Index(1), info, 2), 1);
}

TEST(Collection, UnknownMapThrows) {
  EXPECT_THROW(lookup_map("nope"), std::out_of_range);
}

TEST(Collection, HomePeForKinds) {
  CollectionInfo s;
  s.kind = CollectionKind::Singleton;
  s.fixed_pe = 3;
  EXPECT_EQ(home_pe(s, Index(0), 8), 3);

  CollectionInfo g;
  g.kind = CollectionKind::Group;
  EXPECT_EQ(home_pe(g, Index(5), 8), 5);

  auto a = array_info(Index(8), "block");
  EXPECT_EQ(home_pe(a, Index(0), 4), 0);
  EXPECT_EQ(home_pe(a, Index(7), 4), 3);
}

}  // namespace
