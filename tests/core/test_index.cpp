#include "core/index.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "pup/pup.hpp"

namespace {

using cx::Index;

TEST(Index, ConstructionAndAccess) {
  Index a(5);
  EXPECT_EQ(a.ndims(), 1);
  EXPECT_EQ(a[0], 5);
  Index b(1, 2);
  EXPECT_EQ(b.ndims(), 2);
  Index c(1, 2, 3);
  EXPECT_EQ(c.ndims(), 3);
  EXPECT_EQ(c[2], 3);
  Index d{4, 5, 6, 7};
  EXPECT_EQ(d.ndims(), 4);
  EXPECT_EQ(d[3], 7);
}

TEST(Index, Equality) {
  EXPECT_EQ(Index(1, 2), Index(1, 2));
  EXPECT_NE(Index(1, 2), Index(2, 1));
  EXPECT_NE(Index(1), Index(1, 0));  // arity matters
}

TEST(Index, OrderingIsTotal) {
  EXPECT_LT(Index(1, 2), Index(1, 3));
  EXPECT_LT(Index(0, 9), Index(1, 0));
  EXPECT_LT(Index(5), Index(0, 0));  // lower arity first
  EXPECT_FALSE(Index(2, 2) < Index(2, 2));
}

TEST(Index, HashDistinguishesArityAndValues) {
  std::unordered_set<std::uint64_t> hashes;
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      hashes.insert(Index(i, j).hash());
    }
  }
  hashes.insert(Index(3).hash());
  EXPECT_EQ(hashes.size(), 101u);
}

TEST(Index, ToString) {
  EXPECT_EQ(Index(7).to_string(), "(7)");
  EXPECT_EQ(Index(1, 2, 3).to_string(), "(1,2,3)");
}

TEST(Index, PupRoundtrip) {
  Index i(3, 1, 4);
  auto bytes = pup::to_bytes(i);
  const Index back = pup::from_bytes<Index>(bytes);
  EXPECT_EQ(back, i);
}

TEST(Index, ImplicitFromInt) {
  const Index i = 9;
  EXPECT_EQ(i.ndims(), 1);
  EXPECT_EQ(i[0], 9);
}

}  // namespace
