// Shared spanning-tree math (core/spantree.hpp): the binomial
// dissemination order every broadcast-shaped handler forwards along,
// and the k-ary SpanningTree sections lay over their members' home PEs.
// Pure position math — no runtime needed. Also covers the attributable
// reduction error messages (checked_combine / apply_elementwise).

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "core/reduction.hpp"
#include "core/spantree.hpp"
#include "pup/pup.hpp"

namespace {

using namespace cx;

// Every PE is reached exactly once when each node forwards to its
// binomial children, for any root and PE count.
TEST(SpanTree, BinomialCoversAllPesExactlyOnce) {
  for (int num_pes : {1, 2, 3, 5, 8, 16, 17, 64}) {
    for (int root : {0, 1, num_pes / 2, num_pes - 1}) {
      std::set<int> reached{root};
      std::vector<int> frontier{root};
      std::vector<int> kids;
      while (!frontier.empty()) {
        const int self = frontier.back();
        frontier.pop_back();
        tree::binomial_children(self, root, num_pes, kids);
        for (const int c : kids) {
          EXPECT_TRUE(reached.insert(c).second)
              << "PE " << c << " reached twice (P=" << num_pes
              << ", root=" << root << ")";
          frontier.push_back(c);
        }
      }
      EXPECT_EQ(reached.size(), static_cast<std::size_t>(num_pes));
    }
  }
}

TEST(SpanTree, BinomialRootFansOutInPowersOfTwo) {
  std::vector<int> kids;
  tree::binomial_children(0, 0, 8, kids);
  EXPECT_EQ(kids, (std::vector<int>{1, 2, 4}));
  tree::binomial_children(4, 0, 8, kids);
  EXPECT_EQ(kids, (std::vector<int>{5, 6}));
  tree::binomial_children(7, 0, 8, kids);
  EXPECT_TRUE(kids.empty());
}

TEST(SpanTree, KaryParentChildRoundTrip) {
  for (int arity : {1, 2, 3, 4, 7}) {
    const int n = 30;
    std::vector<int> kids;
    for (int pos = 0; pos < n; ++pos) {
      tree::kary_children(pos, n, arity, kids);
      EXPECT_LE(static_cast<int>(kids.size()), arity);
      for (const int c : kids) {
        EXPECT_EQ(tree::kary_parent(c, arity), pos);
      }
    }
    EXPECT_EQ(tree::kary_parent(0, arity), -1);
  }
}

TEST(SpanTree, KarySubtreeSumMatchesManualWalk) {
  const int n = 13, arity = 3;
  std::vector<std::uint64_t> weight(n);
  std::iota(weight.begin(), weight.end(), 1);  // 1..13
  // Root subtree covers everything.
  EXPECT_EQ(tree::kary_subtree_sum(0, n, arity, weight),
            std::accumulate(weight.begin(), weight.end(), std::uint64_t{0}));
  // A node's subtree = own weight + children's subtrees.
  std::vector<int> kids;
  for (int pos = 0; pos < n; ++pos) {
    std::uint64_t expect = weight[static_cast<std::size_t>(pos)];
    tree::kary_children(pos, n, arity, kids);
    for (const int c : kids) {
      expect += tree::kary_subtree_sum(c, n, arity, weight);
    }
    EXPECT_EQ(tree::kary_subtree_sum(pos, n, arity, weight), expect);
  }
  // Leaves see only themselves.
  EXPECT_EQ(tree::kary_subtree_sum(n - 1, n, arity, weight),
            weight[static_cast<std::size_t>(n - 1)]);
}

TEST(SpanTree, SpanningTreeOverExplicitPeList) {
  // Unsorted with duplicates: builder canonicalizes.
  auto t = tree::make_spanning_tree({9, 2, 5, 2, 13, 9}, 2);
  EXPECT_EQ(t.pes, (std::vector<int>{2, 5, 9, 13}));
  EXPECT_EQ(t.root(), 2);
  EXPECT_EQ(t.pos_of(9), 2);
  EXPECT_EQ(t.pos_of(7), -1);
  EXPECT_EQ(t.parent_of(2), -1);
  EXPECT_EQ(t.parent_of(5), 2);
  EXPECT_EQ(t.parent_of(13), 5);
  std::vector<int> kids;
  t.children_of(2, kids);
  EXPECT_EQ(kids, (std::vector<int>{5, 9}));
  t.children_of(5, kids);
  EXPECT_EQ(kids, (std::vector<int>{13}));
  t.children_of(13, kids);
  EXPECT_TRUE(kids.empty());
  t.children_of(7, kids);  // non-member
  EXPECT_TRUE(kids.empty());
}

TEST(SpanTree, SpanningTreeReachesEveryPeOnce) {
  for (int arity : {1, 2, 4, 8}) {
    std::vector<int> pes;
    for (int i = 0; i < 23; ++i) pes.push_back(i * 3 + 1);
    const auto t = tree::make_spanning_tree(pes, arity);
    std::set<int> reached{t.root()};
    std::vector<int> frontier{t.root()};
    std::vector<int> kids;
    while (!frontier.empty()) {
      const int self = frontier.back();
      frontier.pop_back();
      t.children_of(self, kids);
      for (const int c : kids) {
        EXPECT_TRUE(reached.insert(c).second);
        frontier.push_back(c);
      }
    }
    EXPECT_EQ(reached.size(), pes.size());
  }
}

TEST(SpanTree, SectionArityClampsAndSticks) {
  const int before = tree::section_arity();
  tree::set_section_arity(7);
  EXPECT_EQ(tree::section_arity(), 7);
  tree::set_section_arity(0);  // clamped to a sane minimum
  EXPECT_EQ(tree::section_arity(), 1);
  tree::set_section_arity(before);
}

// ---- attributable reduction failures --------------------------------------

TEST(ReductionErrors, MismatchedVectorLengthsReportBothSizes) {
  const CombineId sum = reducer::sum<std::vector<int>>();
  std::vector<int> a{1, 2, 3};
  std::vector<int> b{4, 5};
  const auto pa = pup::to_bytes(a);
  const auto pb = pup::to_bytes(b);
  try {
    CombinerRegistry::instance().get(sum)(pa, pb);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("accumulator has 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("contribution has 2"), std::string::npos) << msg;
  }
}

TEST(ReductionErrors, CheckedCombineNamesTheContributor) {
  const CombineId sum = reducer::sum<std::vector<int>>();
  std::vector<int> a{1, 2, 3};
  std::vector<int> b{4};
  const auto pa = pup::to_bytes(a);
  const auto pb = pup::to_bytes(b);
  try {
    checked_combine(sum, pa, pb, /*coll=*/42, Index(7, 3));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("collection 42"), std::string::npos) << msg;
    EXPECT_NE(msg.find("contributing element (7,3)"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("accumulator has 3"), std::string::npos) << msg;
  }
}

TEST(ReductionErrors, CheckedCombinePassesThroughOnMatch) {
  const CombineId sum = reducer::sum<std::vector<int>>();
  std::vector<int> a{1, 2};
  std::vector<int> b{10, 20};
  const auto out = checked_combine(sum, pup::to_bytes(a), pup::to_bytes(b),
                                   0, Index(0));
  EXPECT_EQ(pup::from_bytes<std::vector<int>>(out),
            (std::vector<int>{11, 22}));
}

}  // namespace
