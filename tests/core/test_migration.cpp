// Chare migration (paper §II-I): state moves via pup, messages keep
// being delivered through location updates and forwarding.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "test_helpers.hpp"

namespace {

using namespace cx;
using cxtest::run_program;
using cxtest::sim_cfg;
using cxtest::threaded_cfg;

struct Mover : Chare {
  int counter = 0;
  std::vector<double> data;
  std::string name;
  bool migrated_hook_ran = false;

  Mover() = default;
  Mover(std::string n, int start) : counter(start), name(std::move(n)) {
    data = {1.5, 2.5};
  }

  void pup(pup::Er& p) override {
    p | counter;
    p | data;
    p | name;
  }
  void on_migrated() override { migrated_hook_ran = true; }

  void bump() { ++counter; }
  int get_counter() { return counter; }
  int where() { return cx::my_pe(); }
  std::string get_name() { return name; }
  std::vector<double> get_data() { return data; }
  bool hook_ran() { return migrated_hook_ran; }
  void go_to(int pe) { migrate(pe); }
};

TEST(Migration, StateSurvivesMigration) {
  run_program(threaded_cfg(3), [] {
    auto m = create_chare<Mover>(0, std::string("alpha"), 10);
    EXPECT_EQ(m.call<&Mover::where>().get(), 0);
    m.send<&Mover::bump>();
    m.send<&Mover::go_to>(2);
    // Wait for the move to land, then verify identity and state.
    while (m.call<&Mover::where>().get() != 2) {
    }
    EXPECT_EQ(m.call<&Mover::get_counter>().get(), 11);
    EXPECT_EQ(m.call<&Mover::get_name>().get(), "alpha");
    EXPECT_EQ(m.call<&Mover::get_data>().get(),
              (std::vector<double>{1.5, 2.5}));
    EXPECT_TRUE(m.call<&Mover::hook_ran>().get());
    cx::exit();
  });
}

TEST(Migration, MessagesFollowAcrossMultipleHops) {
  run_program(threaded_cfg(4), [] {
    auto m = create_chare<Mover>(1, std::string("hopper"), 0);
    for (int hop : {2, 3, 0, 1, 2}) {
      m.send<&Mover::go_to>(hop);
      while (m.call<&Mover::where>().get() != hop) {
      }
      m.send<&Mover::bump>();
    }
    while (m.call<&Mover::get_counter>().get() < 5) {
    }
    EXPECT_EQ(m.call<&Mover::get_counter>().get(), 5);
    cx::exit();
  });
}

TEST(Migration, MigrateToSelfIsANoop) {
  run_program(threaded_cfg(2), [] {
    auto m = create_chare<Mover>(1, std::string("stay"), 3);
    m.send<&Mover::go_to>(1);
    m.send<&Mover::bump>();
    while (m.call<&Mover::get_counter>().get() < 4) {
    }
    EXPECT_EQ(m.call<&Mover::where>().get(), 1);
    cx::exit();
  });
}

TEST(Migration, ArrayElementMigrationKeepsCollectionWorking) {
  run_program(threaded_cfg(4), [] {
    auto arr = create_array<Mover>({8}, std::string("arr"), 0);
    // Move element 3 somewhere else, then broadcast and reduce.
    arr[3].send<&Mover::go_to>(0);
    while (arr[3].call<&Mover::where>().get() != 0) {
    }
    arr.broadcast<&Mover::bump>();
    int total = 0;
    for (int i = 0; i < 8; ++i) {
      int v;
      while ((v = arr[i].call<&Mover::get_counter>().get()) < 1) {
      }
      total += v;
    }
    EXPECT_EQ(total, 8);
    cx::exit();
  });
}

TEST(Migration, WorksOnSimBackend) {
  run_program(sim_cfg(4), [] {
    auto m = create_chare<Mover>(0, std::string("sim"), 100);
    m.send<&Mover::go_to>(3);
    while (m.call<&Mover::where>().get() != 3) {
    }
    EXPECT_EQ(m.call<&Mover::get_counter>().get(), 100);
    cx::exit();
  });
}

// Reductions still complete when elements contribute from new homes.
struct MigratingContributor : Chare {
  void relocate_then_contribute(int pe, Future<int> f) {
    if (this_index()[0] % 2 == 0) migrate(pe);
    contribute(1, reducer::sum<int>(), cb(f));
  }
};

TEST(Migration, ContributionsFromMigratedElementsStillCount) {
  run_program(threaded_cfg(3), [] {
    auto arr = create_array<MigratingContributor>({6});
    auto f = make_future<int>();
    arr.broadcast<&MigratingContributor::relocate_then_contribute>(2, f);
    EXPECT_EQ(f.get(), 6);
    cx::exit();
  });
}

}  // namespace
