// Quiescence detection: fires only after all messages are drained.

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace {

using namespace cx;
using cxtest::run_program;
using cxtest::sim_cfg;
using cxtest::threaded_cfg;

// A chain of sends: each hop decrements a counter and forwards.
struct ChainLink : Chare {
  int hops_seen = 0;
  void forward(int remaining, CollectionProxy<ChainLink> all, int fanout) {
    ++hops_seen;
    if (remaining <= 0) return;
    for (int i = 0; i < fanout; ++i) {
      const int next = (this_index()[0] + 1 + i) % 8;
      all[next].send<&ChainLink::forward>(remaining - 1, all, 1);
    }
  }
  int seen() { return hops_seen; }
};

TEST(Quiescence, FiresAfterMessageStormDrains) {
  run_program(threaded_cfg(2), [] {
    auto arr = create_array<ChainLink>({8});
    arr[0].send<&ChainLink::forward>(20, arr, 2);
    auto f = make_future<void>();
    Runtime::current().start_quiescence(cb(f));
    f.get();
    // At quiescence all forwards have been processed; total hops is
    // deterministic: 1 + 2 * 20 (root + two chains of 20).
    int total = 0;
    for (int i = 0; i < 8; ++i) {
      total += arr[i].call<&ChainLink::seen>().get();
    }
    EXPECT_EQ(total, 41);
    cx::exit();
  });
}

TEST(Quiescence, ImmediateWhenNothingIsRunning) {
  run_program(threaded_cfg(2), [] {
    auto f = make_future<void>();
    Runtime::current().start_quiescence(cb(f));
    f.get();
    cx::exit();
  });
}

TEST(Quiescence, WorksOnSimBackend) {
  run_program(sim_cfg(4), [] {
    auto arr = create_array<ChainLink>({8});
    arr[0].send<&ChainLink::forward>(50, arr, 1);
    auto f = make_future<void>();
    Runtime::current().start_quiescence(cb(f));
    f.get();
    int total = 0;
    for (int i = 0; i < 8; ++i) {
      total += arr[i].call<&ChainLink::seen>().get();
    }
    EXPECT_EQ(total, 51);
    cx::exit();
  });
}

}  // namespace
