// `when` delivery predicates (paper §II-E) and threaded wait() (§II-H2).

#include <gtest/gtest.h>

#include <vector>

#include "test_helpers.hpp"

namespace {

using namespace cx;
using cxtest::run_program;
using cxtest::sim_cfg;
using cxtest::threaded_cfg;

// ---------------------------------------------------------------------------
// A chare that only accepts messages matching its current iteration: the
// paper's canonical use case for @when('self.iter == iter').

struct IterChare : Chare {
  int iter = 0;
  std::vector<int> accepted;

  void recv(int msg_iter, int payload) {
    accepted.push_back(payload);
    // Each iteration expects exactly one message, then advances.
    (void)msg_iter;
    ++iter;
  }
  std::vector<int> log() { return accepted; }
};

struct WhenRegistrar {
  WhenRegistrar() {
    set_when<&IterChare::recv>(
        [](IterChare& self, const int& msg_iter, const int&) {
          return self.iter == msg_iter;
        });
  }
};
const WhenRegistrar when_registrar;

TEST(When, OutOfOrderMessagesAreBufferedAndDeliveredInOrder) {
  run_program(threaded_cfg(2), [] {
    auto c = create_chare<IterChare>(1);
    // Send iterations reversed: 4, 3, 2, 1, 0. Payload = 10*iter.
    for (int it = 4; it >= 0; --it) {
      c.send<&IterChare::recv>(it, it * 10);
    }
    // All must be delivered in iteration order 0..4.
    std::vector<int> log;
    while ((log = c.call<&IterChare::log>().get()).size() < 5) {
    }
    EXPECT_EQ(log, (std::vector<int>{0, 10, 20, 30, 40}));
    cx::exit();
  });
}

TEST(When, ConditionOnArgumentCombination) {
  struct SumGate : Chare {
    int x = 7;
    int hits = 0;
    void fire(int a, int b) {
      (void)a;
      (void)b;
      ++hits;
    }
    int get_hits() { return hits; }
    void set_x(int v) { x = v; }
  };
  static const bool reg = [] {
    set_when<&SumGate::fire>([](SumGate& self, const int& a, const int& b) {
      return a + b == self.x;  // paper: @when('x + z == self.x')
    });
    return true;
  }();
  (void)reg;
  run_program(threaded_cfg(1), [] {
    auto g = create_chare<SumGate>(0);
    g.send<&SumGate::fire>(3, 4);  // 3+4 == 7: delivered
    g.send<&SumGate::fire>(1, 1);  // buffered until x becomes 2
    while (g.call<&SumGate::get_hits>().get() < 1) {
    }
    EXPECT_EQ(g.call<&SumGate::get_hits>().get(), 1);
    g.send<&SumGate::set_x>(2);  // state change re-triggers evaluation
    while (g.call<&SumGate::get_hits>().get() < 2) {
    }
    cx::exit();
  });
}

// ---------------------------------------------------------------------------
// wait(): the stencil-style "wait for all neighbor data" pattern.

struct Waiter : Chare {
  int msg_count = 0;
  int rounds_done = 0;

  void work(int neighbors, int rounds) {
    for (int r = 0; r < rounds; ++r) {
      wait([this, neighbors] { return msg_count >= neighbors; });
      msg_count -= neighbors;
      ++rounds_done;
    }
  }
  void feed() { ++msg_count; }
  int done() { return rounds_done; }
};

struct WaiterRegistrar {
  WaiterRegistrar() { set_threaded<&Waiter::work>(); }
};
const WaiterRegistrar waiter_registrar;

TEST(Wait, SuspendsUntilConditionHolds) {
  run_program(threaded_cfg(2), [] {
    auto w = create_chare<Waiter>(1);
    w.send<&Waiter::work>(3, 2);  // 2 rounds of 3 messages each
    EXPECT_EQ(w.call<&Waiter::done>().get(), 0);
    for (int i = 0; i < 3; ++i) w.send<&Waiter::feed>();
    while (w.call<&Waiter::done>().get() < 1) {
    }
    for (int i = 0; i < 3; ++i) w.send<&Waiter::feed>();
    while (w.call<&Waiter::done>().get() < 2) {
    }
    cx::exit();
  });
}

TEST(Wait, ImmediatelyTrueConditionDoesNotSuspend) {
  run_program(threaded_cfg(1), [] {
    auto w = create_chare<Waiter>(0);
    // 0 neighbors: condition true at once, both rounds complete inline.
    w.send<&Waiter::work>(0, 2);
    while (w.call<&Waiter::done>().get() < 2) {
    }
    cx::exit();
  });
}

TEST(Wait, WorksOnSimBackend) {
  run_program(sim_cfg(2), [] {
    auto w = create_chare<Waiter>(1);
    w.send<&Waiter::work>(2, 1);
    w.send<&Waiter::feed>();
    w.send<&Waiter::feed>();
    while (w.call<&Waiter::done>().get() < 1) {
    }
    cx::exit();
  });
}

// ---------------------------------------------------------------------------
// Threaded entry methods: a chare blocking on a future does not block its
// PE (the paper's overlap claim in direct-style code).

struct Blocker : Chare {
  int ping_count = 0;
  int observed_pings_at_wake = -1;

  void block_then_observe(Future<int> wake) {
    const int v = wake.get();  // suspends this fiber only
    (void)v;
    observed_pings_at_wake = ping_count;
  }
  void ping() { ++ping_count; }
  int observed() { return observed_pings_at_wake; }
};

struct BlockerRegistrar {
  BlockerRegistrar() { set_threaded<&Blocker::block_then_observe>(); }
};
const BlockerRegistrar blocker_registrar;

TEST(Threaded, BlockedEntryMethodDoesNotBlockThePe) {
  run_program(threaded_cfg(1), [] {
    // Everything on PE 0: while block_then_observe is suspended, pings
    // must still be delivered on the same PE.
    auto b = create_chare<Blocker>(0);
    auto wake = make_future<int>();
    b.send<&Blocker::block_then_observe>(wake);
    for (int i = 0; i < 5; ++i) b.send<&Blocker::ping>();
    while (b.call<&Blocker::observed>().get() < 0) {
      if (b.call<&Blocker::observed>().get() == -1) {
        // Wake it only after some pings had a chance to land.
        wake.send(1);
      }
    }
    EXPECT_GE(b.call<&Blocker::observed>().get(), 1);
    cx::exit();
  });
}

}  // namespace
