// `when` delivery predicates (paper §II-E) and threaded wait() (§II-H2).

#include <gtest/gtest.h>

#include <vector>

#include "test_helpers.hpp"

namespace {

using namespace cx;
using cxtest::run_program;
using cxtest::sim_cfg;
using cxtest::threaded_cfg;

// ---------------------------------------------------------------------------
// A chare that only accepts messages matching its current iteration: the
// paper's canonical use case for @when('self.iter == iter').

struct IterChare : Chare {
  int iter = 0;
  std::vector<int> accepted;

  void recv(int msg_iter, int payload) {
    accepted.push_back(payload);
    // Each iteration expects exactly one message, then advances.
    (void)msg_iter;
    ++iter;
  }
  std::vector<int> log() { return accepted; }
};

struct WhenRegistrar {
  WhenRegistrar() {
    set_when<&IterChare::recv>(
        [](IterChare& self, const int& msg_iter, const int&) {
          return self.iter == msg_iter;
        });
  }
};
const WhenRegistrar when_registrar;

TEST(When, OutOfOrderMessagesAreBufferedAndDeliveredInOrder) {
  run_program(threaded_cfg(2), [] {
    auto c = create_chare<IterChare>(1);
    // Send iterations reversed: 4, 3, 2, 1, 0. Payload = 10*iter.
    for (int it = 4; it >= 0; --it) {
      c.send<&IterChare::recv>(it, it * 10);
    }
    // All must be delivered in iteration order 0..4.
    std::vector<int> log;
    while ((log = c.call<&IterChare::log>().get()).size() < 5) {
    }
    EXPECT_EQ(log, (std::vector<int>{0, 10, 20, 30, 40}));
    cx::exit();
  });
}

TEST(When, ConditionOnArgumentCombination) {
  struct SumGate : Chare {
    int x = 7;
    int hits = 0;
    void fire(int a, int b) {
      (void)a;
      (void)b;
      ++hits;
    }
    int get_hits() { return hits; }
    void set_x(int v) { x = v; }
  };
  static const bool reg = [] {
    set_when<&SumGate::fire>([](SumGate& self, const int& a, const int& b) {
      return a + b == self.x;  // paper: @when('x + z == self.x')
    });
    return true;
  }();
  (void)reg;
  run_program(threaded_cfg(1), [] {
    auto g = create_chare<SumGate>(0);
    g.send<&SumGate::fire>(3, 4);  // 3+4 == 7: delivered
    g.send<&SumGate::fire>(1, 1);  // buffered until x becomes 2
    while (g.call<&SumGate::get_hits>().get() < 1) {
    }
    EXPECT_EQ(g.call<&SumGate::get_hits>().get(), 1);
    g.send<&SumGate::set_x>(2);  // state change re-triggers evaluation
    while (g.call<&SumGate::get_hits>().get() < 2) {
    }
    cx::exit();
  });
}

// ---------------------------------------------------------------------------
// FIFO among simultaneously-eligible messages: when the gate opens, the
// buffered messages must drain in arrival order even though they target
// two different entry methods in two different buckets. The declared
// dependency set (set_when_deps) puts both on the engine's fast path.

struct FifoGate : Chare {
  bool open = false;
  std::vector<int> log_;

  void a(int tag) { log_.push_back(tag); }
  void b(int tag) { log_.push_back(tag); }
  void open_gate() {
    open = true;
    mark_when_dirty(attr_key("open"));
  }
  std::vector<int> log() { return log_; }
};

struct FifoGateRegistrar {
  FifoGateRegistrar() {
    set_when<&FifoGate::a>([](FifoGate& s, const int&) { return s.open; });
    set_when<&FifoGate::b>([](FifoGate& s, const int&) { return s.open; });
    set_when_deps<&FifoGate::a>({"open"});
    set_when_deps<&FifoGate::b>({"open"});
  }
};
const FifoGateRegistrar fifo_gate_registrar;

TEST(When, SimultaneouslyEligibleMessagesDrainInArrivalOrder) {
  run_program(threaded_cfg(1), [] {
    auto g = create_chare<FifoGate>(0);
    // Interleave the two entry methods while the gate is closed; the tag
    // records the arrival order across both buckets.
    for (int i = 0; i < 8; ++i) {
      if (i % 2 == 0) {
        g.send<&FifoGate::a>(i);
      } else {
        g.send<&FifoGate::b>(i);
      }
    }
    // Round-trip: everything above is buffered before the gate opens.
    EXPECT_TRUE(g.call<&FifoGate::log>().get().empty());
    g.send<&FifoGate::open_gate>();
    std::vector<int> log;
    while ((log = g.call<&FifoGate::log>().get()).size() < 8) {
    }
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
    cx::exit();
  });
}

// ---------------------------------------------------------------------------
// Migration while messages are when-buffered: the buffer is re-routed to
// the new PE with reply futures and broadcast-completion credits intact.

struct GateMover : Chare {
  GateMover() = default;  // migration path
  bool open = false;
  int fired = 0;

  void pup(pup::Er& p) override {
    p | open;
    p | fired;
  }
  int gated(int x) {
    ++fired;
    return x * 2;
  }
  void open_gate() {
    open = true;
    mark_when_dirty(attr_key("open"));
  }
  void go_to(int pe) { migrate(pe); }
  int where() { return my_pe(); }
  int count() { return fired; }
};

struct GateMoverRegistrar {
  GateMoverRegistrar() {
    set_when<&GateMover::gated>(
        [](GateMover& s, const int&) { return s.open; });
    set_when_deps<&GateMover::gated>({"open"});
  }
};
const GateMoverRegistrar gate_mover_registrar;

TEST(When, MigrationReroutesBufferedMessagePreservingReplyFuture) {
  run_program(threaded_cfg(2), [] {
    auto g = create_chare<GateMover>(0);
    auto reply = g.call<&GateMover::gated>(21);  // buffered: gate closed
    EXPECT_EQ(g.call<&GateMover::count>().get(), 0);
    g.send<&GateMover::go_to>(1);
    while (g.call<&GateMover::where>().get() != 1) {
    }
    // Still buffered after landing on the new PE.
    EXPECT_EQ(g.call<&GateMover::count>().get(), 0);
    g.send<&GateMover::open_gate>();
    EXPECT_EQ(reply.get(), 42);  // reply future survived the move
    cx::exit();
  });
}

TEST(When, MigrationPreservesBroadcastDoneCredits) {
  run_program(threaded_cfg(2), [] {
    auto arr = create_array<GateMover>({4});
    // Every element buffers the broadcast (all gates closed), so the
    // completion future holds one credit per element.
    auto done = arr.broadcast_done<&GateMover::gated>(1);
    EXPECT_EQ(arr[0].call<&GateMover::count>().get(), 0);
    arr[0].send<&GateMover::go_to>(1);
    while (arr[0].call<&GateMover::where>().get() != 1) {
    }
    for (int i = 0; i < 4; ++i) arr[i].send<&GateMover::open_gate>();
    done.get();  // completes only if the migrated element's credit survived
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(arr[i].call<&GateMover::count>().get(), 1);
    }
    cx::exit();
  });
}

// ---------------------------------------------------------------------------
// Regression: a when condition reading an attribute that a *different*
// entry method mutates must still fire (the dirty filter may only skip
// re-tests whose dependencies did not change).

struct SumGateLike : Chare {
  bool ready = false;
  int fired = 0;

  void fire() { ++fired; }
  void make_ready() {
    ready = true;
    mark_when_dirty(attr_key("ready"));
  }
  int hits() { return fired; }
};

struct SumGateLikeRegistrar {
  SumGateLikeRegistrar() {
    set_when<&SumGateLike::fire>([](SumGateLike& s) { return s.ready; });
    set_when_deps<&SumGateLike::fire>({"ready"});
  }
};
const SumGateLikeRegistrar sum_gate_like_registrar;

TEST(When, ConditionSeesAttributeMutatedByOtherEntryMethod) {
  run_program(threaded_cfg(1), [] {
    auto g = create_chare<SumGateLike>(0);
    g.send<&SumGateLike::fire>();  // buffered until ready
    EXPECT_EQ(g.call<&SumGateLike::hits>().get(), 0);
    g.send<&SumGateLike::make_ready>();
    while (g.call<&SumGateLike::hits>().get() < 1) {
    }
    cx::exit();
  });
}

// ---------------------------------------------------------------------------
// wait(): the stencil-style "wait for all neighbor data" pattern.

struct Waiter : Chare {
  int msg_count = 0;
  int rounds_done = 0;

  void work(int neighbors, int rounds) {
    for (int r = 0; r < rounds; ++r) {
      wait([this, neighbors] { return msg_count >= neighbors; });
      msg_count -= neighbors;
      ++rounds_done;
    }
  }
  void feed() { ++msg_count; }
  int done() { return rounds_done; }
};

struct WaiterRegistrar {
  WaiterRegistrar() { set_threaded<&Waiter::work>(); }
};
const WaiterRegistrar waiter_registrar;

TEST(Wait, SuspendsUntilConditionHolds) {
  run_program(threaded_cfg(2), [] {
    auto w = create_chare<Waiter>(1);
    w.send<&Waiter::work>(3, 2);  // 2 rounds of 3 messages each
    EXPECT_EQ(w.call<&Waiter::done>().get(), 0);
    for (int i = 0; i < 3; ++i) w.send<&Waiter::feed>();
    while (w.call<&Waiter::done>().get() < 1) {
    }
    for (int i = 0; i < 3; ++i) w.send<&Waiter::feed>();
    while (w.call<&Waiter::done>().get() < 2) {
    }
    cx::exit();
  });
}

TEST(Wait, ImmediatelyTrueConditionDoesNotSuspend) {
  run_program(threaded_cfg(1), [] {
    auto w = create_chare<Waiter>(0);
    // 0 neighbors: condition true at once, both rounds complete inline.
    w.send<&Waiter::work>(0, 2);
    while (w.call<&Waiter::done>().get() < 2) {
    }
    cx::exit();
  });
}

TEST(Wait, WorksOnSimBackend) {
  run_program(sim_cfg(2), [] {
    auto w = create_chare<Waiter>(1);
    w.send<&Waiter::work>(2, 1);
    w.send<&Waiter::feed>();
    w.send<&Waiter::feed>();
    while (w.call<&Waiter::done>().get() < 1) {
    }
    cx::exit();
  });
}

// ---------------------------------------------------------------------------
// Threaded entry methods: a chare blocking on a future does not block its
// PE (the paper's overlap claim in direct-style code).

struct Blocker : Chare {
  int ping_count = 0;
  int observed_pings_at_wake = -1;

  void block_then_observe(Future<int> wake) {
    const int v = wake.get();  // suspends this fiber only
    (void)v;
    observed_pings_at_wake = ping_count;
  }
  void ping() { ++ping_count; }
  int observed() { return observed_pings_at_wake; }
};

struct BlockerRegistrar {
  BlockerRegistrar() { set_threaded<&Blocker::block_then_observe>(); }
};
const BlockerRegistrar blocker_registrar;

TEST(Threaded, BlockedEntryMethodDoesNotBlockThePe) {
  run_program(threaded_cfg(1), [] {
    // Everything on PE 0: while block_then_observe is suspended, pings
    // must still be delivered on the same PE.
    auto b = create_chare<Blocker>(0);
    auto wake = make_future<int>();
    b.send<&Blocker::block_then_observe>(wake);
    for (int i = 0; i < 5; ++i) b.send<&Blocker::ping>();
    while (b.call<&Blocker::observed>().get() < 0) {
      if (b.call<&Blocker::observed>().get() == -1) {
        // Wake it only after some pings had a chance to land.
        wake.send(1);
      }
    }
    EXPECT_GE(b.call<&Blocker::observed>().get(), 1);
    cx::exit();
  });
}

}  // namespace
