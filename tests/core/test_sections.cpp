// Chare-array sections: spanning-tree multicast over an arbitrary index
// subset, section-scoped reductions (multiple in flight), and the
// location-manager delegation that keeps both working across element
// migration and AtSync load balancing.

#include <gtest/gtest.h>

#include <vector>

#include "test_helpers.hpp"
#include "trace/trace.hpp"

namespace {

using namespace cx;
using cxtest::run_program;
using cxtest::sim_cfg;
using cxtest::threaded_cfg;

struct Cell : Chare {
  int hits = 0;

  void pup(pup::Er& p) override { p | hits; }

  void hit() { ++hits; }
  int get_hits() { return hits; }
  int where() { return cx::my_pe(); }
  void go_to(int pe) { migrate(pe); }

  void hit_and_contribute(SectionProxy<Cell> s, Future<int> f) {
    ++hits;
    contribute(s, this_index()[0], reducer::sum<int>(), cb(f));
  }

  // Two section reductions from the same entry: exercises the
  // per-section sequence tags that keep concurrent folds apart.
  void contribute_twice(SectionProxy<Cell> s, Future<int> f1,
                        Future<int> f2) {
    contribute(s, this_index()[0], reducer::sum<int>(), cb(f1));
    contribute(s, this_index()[0] * 10, reducer::sum<int>(), cb(f2));
  }

  void barrier_contribute(SectionProxy<Cell> s, Future<void> f) {
    contribute(s, cb(f));
  }

  void relocate_then_contribute(int pe, SectionProxy<Cell> s,
                                Future<int> f) {
    if (this_index()[0] == 3) migrate(pe);
    contribute(s, this_index()[0], reducer::sum<int>(), cb(f));
  }
};

TEST(Sections, MulticastReachesExactlyTheMembers) {
  run_program(threaded_cfg(4), [] {
    auto arr = create_array<Cell>({12});
    auto s = arr.section({1, 4, 7, 10});
    EXPECT_TRUE(s.valid());
    EXPECT_EQ(s.size(), 4u);
    s.broadcast_done<&Cell::hit>().get();
    for (int i = 0; i < 12; ++i) {
      const bool member = (i % 3 == 1);
      EXPECT_EQ(arr[i].call<&Cell::get_hits>().get(), member ? 1 : 0)
          << "element " << i;
    }
    cx::exit();
  });
}

TEST(Sections, DuplicateIndicesAreDeduplicated) {
  run_program(threaded_cfg(2), [] {
    auto arr = create_array<Cell>({6});
    auto s = arr.section({2, 5, 2, 5, 2});
    EXPECT_EQ(s.size(), 2u);
    s.broadcast_done<&Cell::hit>().get();
    EXPECT_EQ(arr[2].call<&Cell::get_hits>().get(), 1);
    EXPECT_EQ(arr[5].call<&Cell::get_hits>().get(), 1);
    cx::exit();
  });
}

TEST(Sections, WholeArraySectionBroadcastDone) {
  // members.size() == info.size: completion rides the unchanged
  // collection path (no SectExpect override).
  run_program(threaded_cfg(3), [] {
    auto arr = create_array<Cell>({8});
    std::vector<Index> all;
    for (int i = 0; i < 8; ++i) all.push_back(Index(i));
    auto s = arr.section(all);
    s.broadcast_done<&Cell::hit>().get();
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(arr[i].call<&Cell::get_hits>().get(), 1);
    }
    cx::exit();
  });
}

TEST(Sections, SectionReductionSumsOverMembersOnly) {
  run_program(threaded_cfg(4), [] {
    auto arr = create_array<Cell>({12});
    auto s = arr.section({1, 4, 7, 10});
    auto f = make_future<int>();
    s.broadcast<&Cell::hit_and_contribute>(s, f);
    EXPECT_EQ(f.get(), 1 + 4 + 7 + 10);
    cx::exit();
  });
}

TEST(Sections, MultipleReductionsInFlightPerSection) {
  run_program(threaded_cfg(4), [] {
    auto arr = create_array<Cell>({12});
    auto s = arr.section({1, 4, 7, 10});
    auto f1 = make_future<int>();
    auto f2 = make_future<int>();
    s.broadcast<&Cell::contribute_twice>(s, f1, f2);
    EXPECT_EQ(f1.get(), 22);
    EXPECT_EQ(f2.get(), 220);
    // A fresh round on the same section keeps its own sequence slot.
    auto f3 = make_future<int>();
    auto f4 = make_future<int>();
    s.broadcast<&Cell::contribute_twice>(s, f3, f4);
    EXPECT_EQ(f3.get(), 22);
    EXPECT_EQ(f4.get(), 220);
    cx::exit();
  });
}

TEST(Sections, SectionBarrier) {
  run_program(threaded_cfg(3), [] {
    auto arr = create_array<Cell>({9});
    auto s = arr.section({0, 4, 8});
    auto f = make_future<void>();
    s.broadcast<&Cell::barrier_contribute>(s, f);
    f.get();
    cx::exit();
  });
}

TEST(Sections, SurviveExplicitMigration) {
  run_program(threaded_cfg(4), [] {
    auto arr = create_array<Cell>({8});
    auto s = arr.section({1, 3, 5, 7});
    s.broadcast_done<&Cell::hit>().get();

    // Move a member off its home PE, then multicast and reduce again:
    // its home PE stays its delegate in the section tree and routes the
    // delivery (and accepts the contribution) from wherever it lives.
    const int was = arr[3].call<&Cell::where>().get();
    arr[3].send<&Cell::go_to>((was + 1) % 4);
    while (arr[3].call<&Cell::where>().get() == was) {
    }

    s.broadcast_done<&Cell::hit>().get();
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(arr[i].call<&Cell::get_hits>().get(), i % 2 == 1 ? 2 : 0)
          << "element " << i;
    }

    auto f = make_future<int>();
    s.broadcast<&Cell::hit_and_contribute>(s, f);
    EXPECT_EQ(f.get(), 1 + 3 + 5 + 7);

    // The delivery split on the member's home PE was rebuilt lazily.
    EXPECT_GE(cx::trace::section_stats().tree_repairs, 1u);
    cx::exit();
  });
}

TEST(Sections, ReductionCompletesWhileAMemberMigrates) {
  run_program(threaded_cfg(3), [] {
    auto arr = create_array<Cell>({6});
    auto s = arr.section({1, 3, 5});
    auto f = make_future<int>();
    s.broadcast<&Cell::relocate_then_contribute>(2, s, f);
    EXPECT_EQ(f.get(), 1 + 3 + 5);
    cx::exit();
  });
}

TEST(Sections, WorksOnSimBackend) {
  run_program(sim_cfg(8), [] {
    auto arr = create_array<Cell>({32});
    std::vector<Index> members;
    for (int i = 0; i < 32; i += 4) members.push_back(Index(i));
    auto s = arr.section(members);
    s.broadcast_done<&Cell::hit>().get();
    auto f = make_future<int>();
    s.broadcast<&Cell::hit_and_contribute>(s, f);
    int expect = 0;
    for (int i = 0; i < 32; i += 4) expect += i;
    EXPECT_EQ(f.get(), expect);
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(arr[i].call<&Cell::get_hits>().get(), i % 4 == 0 ? 2 : 0);
    }
    cx::exit();
  });
}

// ---- sections across an AtSync load-balancing step ------------------------

struct LoadedCell : Chare {
  int hits = 0;
  Future<void> done;

  void pup(pup::Er& p) override {
    p | hits;
    p | done;
  }

  void hit() { ++hits; }
  int get_hits() { return hits; }
  int where() { return cx::my_pe(); }

  void step(Future<void> barrier) {
    done = barrier;
    const double load = this_index()[0] < 2 ? 2e-3 : 1e-5;
    cx::compute(load);
    at_sync();
  }

  void resume_from_sync() override {
    if (done.valid()) contribute(cb(done));
  }

  void sect_contribute(SectionProxy<LoadedCell> s, Future<int> f) {
    contribute(s, this_index()[0], reducer::sum<int>(), cb(f));
  }
};

TEST(Sections, SurviveAtSyncLoadBalancing) {
  cx::RuntimeConfig cfg = sim_cfg(2);
  cfg.lb_strategy = "greedy";
  cx::Runtime rt(cfg);
  rt.run([] {
    auto arr = create_array<LoadedCell>({4});
    auto s = arr.section({0, 1, 3});

    s.broadcast_done<&LoadedCell::hit>().get();
    auto f0 = make_future<int>();
    s.broadcast<&LoadedCell::sect_contribute>(s, f0);
    EXPECT_EQ(f0.get(), 0 + 1 + 3);

    // Greedy LB splits the heavy pair {0,1} across the two PEs —
    // members of the section migrate under the runtime's control.
    auto barrier = make_future<void>();
    arr.broadcast<&LoadedCell::step>(barrier);
    barrier.get();

    s.broadcast_done<&LoadedCell::hit>().get();
    auto f1 = make_future<int>();
    s.broadcast<&LoadedCell::sect_contribute>(s, f1);
    EXPECT_EQ(f1.get(), 0 + 1 + 3);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(arr[i].call<&LoadedCell::get_hits>().get(), i == 2 ? 0 : 2);
    }
    cx::exit();
  });
  EXPECT_GT(rt.lb_stats().migrations, 0u);
}

}  // namespace
