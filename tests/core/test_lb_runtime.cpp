// AtSync-driven dynamic load balancing (paper §II-J, §V-B).

#include <gtest/gtest.h>

#include <map>

#include "test_helpers.hpp"

namespace {

using namespace cx;
using cxtest::run_program;
using cxtest::sim_cfg;
using cxtest::threaded_cfg;

// A worker with an index-dependent synthetic load, following the paper's
// imbalance methodology: heavy chares inflate their measured EM time.
struct LoadedWorker : Chare {
  int resumes = 0;
  Future<void> done;

  LoadedWorker() = default;
  explicit LoadedWorker(double unused) { (void)unused; }

  void pup(pup::Er& p) override {
    p | resumes;
    p | done;  // the barrier future must survive migration
  }

  void step(Future<void> barrier) {
    done = barrier;
    // Heavy load on low indexes only -> imbalance under block mapping.
    const double load = this_index()[0] < 2 ? 2e-3 : 1e-5;
    cx::compute(load);
    at_sync();
  }

  void resume_from_sync() override {
    ++resumes;
    if (done.valid()) contribute(cb(done));
  }

  int where() { return cx::my_pe(); }
  int resumed() { return resumes; }
};

TEST(LbRuntime, GreedyMovesHeavyCharesAndResumes) {
  cx::RuntimeConfig cfg = cxtest::sim_cfg(2);
  cfg.lb_strategy = "greedy";
  cx::Runtime rt(cfg);
  rt.run([] {
    // 4 elements, block map: 0,1 on PE0 (both heavy), 2,3 on PE1 (light).
    auto arr = create_array<LoadedWorker>({4}, 0.0);
    auto barrier = make_future<void>();
    arr.broadcast<&LoadedWorker::step>(barrier);
    barrier.get();  // LB round completed, everyone resumed
    // The heavy pair must have been split across PEs.
    std::map<int, int> heavy_pe_count;
    heavy_pe_count[arr[0].call<&LoadedWorker::where>().get()]++;
    heavy_pe_count[arr[1].call<&LoadedWorker::where>().get()]++;
    EXPECT_EQ(heavy_pe_count.size(), 2u);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(arr[i].call<&LoadedWorker::resumed>().get(), 1);
    }
    cx::exit();
  });
  const auto stats = rt.lb_stats();
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_GT(stats.migrations, 0u);
  EXPECT_LT(stats.last_imbalance_after, stats.last_imbalance_before);
}

TEST(LbRuntime, NoneStrategyNeverMigrates) {
  cx::RuntimeConfig cfg = cxtest::sim_cfg(2);
  cfg.lb_strategy = "none";
  cx::Runtime rt(cfg);
  rt.run([] {
    auto arr = create_array<LoadedWorker>({4}, 0.0);
    auto barrier = make_future<void>();
    arr.broadcast<&LoadedWorker::step>(barrier);
    barrier.get();
    for (int i = 0; i < 4; ++i) {
      // block map over 2 PEs: element i starts (and stays) on i/2.
      EXPECT_EQ(arr[i].call<&LoadedWorker::where>().get(), i / 2);
    }
    cx::exit();
  });
  EXPECT_EQ(rt.lb_stats().migrations, 0u);
  EXPECT_EQ(rt.lb_stats().rounds, 1u);
}

TEST(LbRuntime, RepeatedSyncRounds) {
  cx::RuntimeConfig cfg = cxtest::sim_cfg(2);
  cfg.lb_strategy = "greedy";
  cx::Runtime rt(cfg);
  rt.run([] {
    auto arr = create_array<LoadedWorker>({4}, 0.0);
    for (int round = 0; round < 3; ++round) {
      auto barrier = make_future<void>();
      arr.broadcast<&LoadedWorker::step>(barrier);
      barrier.get();
    }
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(arr[i].call<&LoadedWorker::resumed>().get(), 3);
    }
    cx::exit();
  });
  EXPECT_EQ(rt.lb_stats().rounds, 3u);
}

TEST(LbRuntime, ThreadedBackendLbRound) {
  cx::RuntimeConfig cfg = cxtest::threaded_cfg(2);
  cfg.lb_strategy = "greedy";
  cx::Runtime rt(cfg);
  rt.run([] {
    auto arr = create_array<LoadedWorker>({4}, 0.0);
    auto barrier = make_future<void>();
    arr.broadcast<&LoadedWorker::step>(barrier);
    barrier.get();
    cx::exit();
  });
  EXPECT_EQ(rt.lb_stats().rounds, 1u);
}

}  // namespace
