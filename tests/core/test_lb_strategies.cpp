#include "core/lb.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.hpp"

namespace {

using namespace cx;

std::vector<ChareLoadRecord> make_records(const std::vector<double>& loads,
                                          int num_pes) {
  std::vector<ChareLoadRecord> recs;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    ChareLoadRecord r;
    r.coll = 1;
    r.idx = Index(static_cast<int>(i));
    r.pe = static_cast<int>(i % static_cast<std::size_t>(num_pes));
    r.load = loads[i];
    recs.push_back(r);
  }
  return recs;
}

double imbalance_after(const std::vector<ChareLoadRecord>& recs,
                       const std::vector<LbMove>& moves, int num_pes) {
  auto r2 = recs;
  for (const auto& mv : moves) {
    for (auto& r : r2) {
      if (r.idx == mv.idx && r.pe == mv.from_pe) {
        r.pe = mv.to_pe;
        break;
      }
    }
  }
  return imbalance_ratio(r2, num_pes);
}

TEST(LbStrategies, GreedyBalancesSkewedLoad) {
  // 4 heavy chares all on PE 0, 12 light ones spread around.
  std::vector<ChareLoadRecord> recs;
  for (int i = 0; i < 4; ++i) {
    recs.push_back({1, Index(i), 0, 10.0});
  }
  for (int i = 4; i < 16; ++i) {
    recs.push_back({1, Index(i), i % 4, 1.0});
  }
  const double before = imbalance_ratio(recs, 4);
  EXPECT_GT(before, 2.0);
  const auto moves = lookup_lb_strategy("greedy")(recs, 4, 1);
  const double after = imbalance_after(recs, moves, 4);
  EXPECT_LT(after, 1.3);
}

TEST(LbStrategies, GreedyIsNoopWhenAlreadyBalanced) {
  auto recs = make_records(std::vector<double>(16, 1.0), 4);
  const auto moves = lookup_lb_strategy("greedy")(recs, 4, 1);
  const double after = imbalance_after(recs, moves, 4);
  EXPECT_NEAR(after, 1.0, 1e-9);
}

TEST(LbStrategies, RefineOnlyMovesFromOverloadedPEs) {
  std::vector<ChareLoadRecord> recs;
  // PE 0 heavily loaded; others fine.
  for (int i = 0; i < 8; ++i) recs.push_back({1, Index(i), 0, 4.0});
  for (int i = 8; i < 14; ++i) recs.push_back({1, Index(i), 1 + (i % 3), 4.0});
  const auto moves = lookup_lb_strategy("refine")(recs, 4, 1);
  for (const auto& mv : moves) EXPECT_EQ(mv.from_pe, 0);
  const double after = imbalance_after(recs, moves, 4);
  EXPECT_LT(after, imbalance_ratio(recs, 4));
}

TEST(LbStrategies, RotateShiftsEverything) {
  auto recs = make_records({1, 1, 1, 1}, 2);
  const auto moves = lookup_lb_strategy("rotate")(recs, 2, 1);
  EXPECT_EQ(moves.size(), recs.size());
  for (const auto& mv : moves) {
    EXPECT_EQ(mv.to_pe, (mv.from_pe + 1) % 2);
  }
}

TEST(LbStrategies, RotateNoopOnSinglePe) {
  auto recs = make_records({1, 1}, 1);
  EXPECT_TRUE(lookup_lb_strategy("rotate")(recs, 1, 1).empty());
}

TEST(LbStrategies, RandomIsDeterministicPerSeed) {
  auto recs = make_records(std::vector<double>(32, 1.0), 4);
  const auto a = lookup_lb_strategy("random")(recs, 4, 7);
  const auto b = lookup_lb_strategy("random")(recs, 4, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].to_pe, b[i].to_pe);
  }
}

TEST(LbStrategies, NoneNeverMoves) {
  auto recs = make_records({5, 1, 1, 1}, 2);
  EXPECT_TRUE(lookup_lb_strategy("none")(recs, 2, 1).empty());
}

TEST(LbStrategies, UnknownStrategyThrows) {
  EXPECT_THROW(lookup_lb_strategy("metis"), std::out_of_range);
}

TEST(LbStrategies, ImbalanceRatioOfUniformIsOne) {
  auto recs = make_records(std::vector<double>(8, 2.0), 4);
  EXPECT_NEAR(imbalance_ratio(recs, 4), 1.0, 1e-12);
}

TEST(LbStrategies, CustomStrategyRegistration) {
  register_lb_strategy("all_to_zero",
                       [](const std::vector<ChareLoadRecord>& rs, int,
                          std::uint64_t) {
                         std::vector<LbMove> mv;
                         for (const auto& r : rs) {
                           if (r.pe != 0) mv.push_back({r.idx, r.pe, 0});
                         }
                         return mv;
                       });
  auto recs = make_records({1, 1, 1, 1}, 4);
  const auto moves = lookup_lb_strategy("all_to_zero")(recs, 4, 1);
  for (const auto& mv : moves) EXPECT_EQ(mv.to_pe, 0);
}

// Property sweep: greedy never produces a worse imbalance than doing
// nothing, across random workloads.
class GreedyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyProperty, NeverWorseThanStatusQuo) {
  cxu::Rng rng(GetParam());
  const int num_pes = 2 + static_cast<int>(rng.below(7));
  const int n = num_pes * (1 + static_cast<int>(rng.below(8)));
  std::vector<ChareLoadRecord> recs;
  for (int i = 0; i < n; ++i) {
    recs.push_back({1, Index(i),
                    static_cast<int>(rng.below(
                        static_cast<std::uint64_t>(num_pes))),
                    rng.uniform(0.1, 10.0)});
  }
  const double before = imbalance_ratio(recs, num_pes);
  const auto moves = lookup_lb_strategy("greedy")(recs, num_pes, GetParam());
  const double after = imbalance_after(recs, moves, num_pes);
  EXPECT_LE(after, before + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

}  // namespace
