// cx::trace — events recorded in order, counters matching a known
// message pattern, and a disabled mode that records nothing.

#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/charm.hpp"
#include "model/cpy.hpp"
#include "test_helpers.hpp"

namespace {

using cxtest::run_program;
using cxtest::sim_cfg;
using cxtest::threaded_cfg;
namespace trace = cx::trace;

struct Echo : cx::Chare {
  int count = 0;
  void hit(int delta) { count += delta; }
  int get() { return count; }
};

/// Enable tracing for the duration of one test.
struct TraceOn {
  explicit TraceOn(std::size_t buffer = 1u << 14) {
    trace::Config cfg;
    cfg.enabled = true;
    cfg.buffer_events = buffer;
    trace::configure(cfg);
  }
  ~TraceOn() { trace::reset(); }
};

TEST(Trace, DisabledModeRecordsNothing) {
  trace::reset();
  ASSERT_FALSE(trace::enabled());
  run_program(threaded_cfg(2), [] {
    auto echo = cx::create_chare<Echo>(1);
    for (int i = 0; i < 10; ++i) echo.send<&Echo::hit>(1);
    while (echo.call<&Echo::get>().get() < 10) {
    }
    cx::exit();
  });
  EXPECT_EQ(trace::total_events(), 0u);
  EXPECT_EQ(trace::traced_pes(), 0);
  const trace::Counters total = trace::aggregate();
  EXPECT_EQ(total.msgs_sent, 0u);
  EXPECT_EQ(total.entries, 0u);
}

TEST(Trace, CountsKnownMessagePattern) {
  TraceOn on;
  constexpr int kMessages = 50;
  run_program(threaded_cfg(2), [] {
    auto echo = cx::create_chare<Echo>(1);
    (void)echo.call<&Echo::get>().get();  // ensure created
    for (int i = 0; i < kMessages; ++i) echo.send<&Echo::hit>(1);
    while (echo.call<&Echo::get>().get() < kMessages) {
    }
    cx::exit();
  });
  ASSERT_EQ(trace::traced_pes(), 2);
  const trace::Counters total = trace::aggregate();
  // The kMessages cross-PE hits plus runtime control traffic.
  EXPECT_GE(total.msgs_sent, static_cast<std::uint64_t>(kMessages));
  EXPECT_GE(total.msgs_recv, static_cast<std::uint64_t>(kMessages));
  // Each hit plus each get executes an entry method.
  EXPECT_GE(total.entries, static_cast<std::uint64_t>(kMessages));
  EXPECT_GT(total.entry_time, 0.0);
  // All hit/get deliveries land on PE 1 where the chare lives.
  EXPECT_GE(trace::counters(1).entries,
            static_cast<std::uint64_t>(kMessages));
  std::uint64_t hist_total = 0;
  for (int i = 0; i < trace::kHistBuckets; ++i) {
    hist_total += total.entry_hist[i];
  }
  EXPECT_EQ(hist_total, total.entries);
}

TEST(Trace, EventsAreChronologicalPerPe) {
  TraceOn on;
  run_program(sim_cfg(4), [] {
    auto echo = cx::create_chare<Echo>(2);
    for (int i = 0; i < 30; ++i) echo.send<&Echo::hit>(1);
    while (echo.call<&Echo::get>().get() < 30) {
    }
    cx::exit();
  });
  ASSERT_EQ(trace::traced_pes(), 4);
  EXPECT_TRUE(trace::traced_run_was_simulated());
  std::uint64_t seen = 0;
  for (int pe = 0; pe < 4; ++pe) {
    const auto evs = trace::events(pe);
    seen += evs.size();
    for (std::size_t i = 1; i < evs.size(); ++i) {
      EXPECT_LE(evs[i - 1].time, evs[i].time)
          << "pe " << pe << " event " << i;
    }
  }
  EXPECT_GT(seen, 0u);
}

TEST(Trace, SimSendsMatchReceives) {
  // The simulator drains its event queue completely, so every recorded
  // send must be matched by exactly one receive, byte for byte.
  TraceOn on;
  run_program(sim_cfg(3), [] {
    auto echo = cx::create_chare<Echo>(1);
    for (int i = 0; i < 20; ++i) echo.send<&Echo::hit>(1);
    while (echo.call<&Echo::get>().get() < 20) {
    }
    cx::exit();
  });
  const trace::Counters total = trace::aggregate();
  // Bootstrap messages enter from outside any PE (not recorded as sends),
  // so receives can exceed sends by those externals but never trail them.
  EXPECT_GE(total.msgs_recv, total.msgs_sent);
  EXPECT_LE(total.msgs_recv - total.msgs_sent, 2u);
  EXPECT_GE(total.bytes_recv, total.bytes_sent);
}

TEST(Trace, RecordsMessageEntryAndIdleEvents) {
  TraceOn on;
  run_program(threaded_cfg(2), [] {
    auto echo = cx::create_chare<Echo>(1);
    for (int i = 0; i < 5; ++i) echo.send<&Echo::hit>(1);
    while (echo.call<&Echo::get>().get() < 5) {
    }
    cx::exit();
  });
  bool saw_send = false, saw_recv = false, saw_entry = false;
  for (int pe = 0; pe < trace::traced_pes(); ++pe) {
    for (const auto& ev : trace::events(pe)) {
      saw_send |= ev.kind == trace::EventKind::MsgSend;
      saw_recv |= ev.kind == trace::EventKind::MsgRecv;
      saw_entry |= ev.kind == trace::EventKind::EntryBegin;
    }
  }
  EXPECT_TRUE(saw_send);
  EXPECT_TRUE(saw_recv);
  EXPECT_TRUE(saw_entry);
  // The main thread blocks on futures while PE threads idle-wait, so
  // idle spans must show up on the threaded backend.
  EXPECT_GT(trace::aggregate().idle_spans, 0u);
}

TEST(Trace, MsgSendPayloadsCarryBytes) {
  TraceOn on;
  run_program(threaded_cfg(2), [] {
    auto echo = cx::create_chare<Echo>(1);
    echo.send<&Echo::hit>(1);
    while (echo.call<&Echo::get>().get() < 1) {
    }
    cx::exit();
  });
  std::uint64_t send_bytes = 0;
  for (int pe = 0; pe < trace::traced_pes(); ++pe) {
    for (const auto& ev : trace::events(pe)) {
      if (ev.kind == trace::EventKind::MsgSend) send_bytes += ev.b;
    }
  }
  EXPECT_EQ(send_bytes, trace::aggregate().bytes_sent);
  EXPECT_GT(send_bytes, 0u);
}

TEST(Trace, RingOverwritesOldestAndCountsDrops) {
  TraceOn on(/*buffer=*/8);
  run_program(sim_cfg(2), [] {
    auto echo = cx::create_chare<Echo>(1);
    for (int i = 0; i < 100; ++i) echo.send<&Echo::hit>(1);
    while (echo.call<&Echo::get>().get() < 100) {
    }
    cx::exit();
  });
  const auto evs = trace::events(1);
  EXPECT_LE(evs.size(), 8u);
  EXPECT_GT(trace::counters(1).dropped_events, 0u);
  // Retained events are still chronological (the newest window).
  for (std::size_t i = 1; i < evs.size(); ++i) {
    EXPECT_LE(evs[i - 1].time, evs[i].time);
  }
}

TEST(Trace, JsonTimelineIsWellFormed) {
  TraceOn on;
  run_program(threaded_cfg(2), [] {
    auto echo = cx::create_chare<Echo>(1);
    for (int i = 0; i < 3; ++i) echo.send<&Echo::hit>(1);
    while (echo.call<&Echo::get>().get() < 3) {
    }
    cx::exit();
  });
  std::ostringstream os;
  trace::write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"simulated\":false"), std::string::npos);
  EXPECT_NE(json.find("\"num_pes\":2"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"msg_send\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"entry_begin\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity check.
  long braces = 0, brackets = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_str = !in_str;
    if (in_str) continue;
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  // And the summary table renders.
  const std::string summary = trace::summary_table();
  EXPECT_NE(summary.find("msgs sent"), std::string::npos);
}

TEST(Trace, DynamicDispatchAndPoolEventsAreRecorded) {
  static const bool registered = [] {
    cpy::DClass cls("tr.Echo");
    cls.def("__init__", {}, [](cpy::DChare& self, cpy::Args&) {
      self["n"] = cpy::Value(0);
      return cpy::Value::none();
    });
    cls.def("bump", {}, [](cpy::DChare& self, cpy::Args&) {
      self["n"] = cpy::Value(self["n"].as_int() + 1);
      return cpy::Value::none();
    });
    cls.def("get", {}, [](cpy::DChare& self, cpy::Args&) {
      return self["n"];
    });
    return true;
  }();
  (void)registered;
  TraceOn on;
  run_program(threaded_cfg(2), [] {
    auto dyn = cpy::create_chare("tr.Echo", 1);
    for (int i = 0; i < 4; ++i) dyn.send("bump", {});
    while (dyn.call("get").get().as_int() < 4) {
    }
    cx::exit();
  });
  EXPECT_GE(trace::aggregate().dyn_dispatches, 4u);
}

}  // namespace
