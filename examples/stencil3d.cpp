// stencil3d driver — run any of the three variants (typed core, dynamic
// model layer, mini-MPI) on either backend, with optional synthetic
// imbalance and dynamic load balancing (paper §V-A/B).
//
//   ./examples/stencil3d --variant cx   --pes 4 --blocks 2,2,2 --cells 8,8,8
//   ./examples/stencil3d --variant cpy  --iters 20
//   ./examples/stencil3d --variant mpi  --pes 8 --blocks 2,2,2
//   ./examples/stencil3d --variant cx --imbalance --lb 30 --backend sim \
//       --pes 16 --blocks 4,4,4

#include <cstdio>
#include <cstdlib>

#include "apps/stencil/stencil_common.hpp"
#include "apps/stencil/stencil_cpy.hpp"
#include "apps/stencil/stencil_cx.hpp"
#include "apps/stencil/stencil_mpi.hpp"
#include "ft/fault.hpp"
#include "trace/trace.hpp"
#include "util/options.hpp"
#include "wire/pool.hpp"

namespace {

void parse_triplet(const std::string& s, int& a, int& b, int& c) {
  if (std::sscanf(s.c_str(), "%d,%d,%d", &a, &b, &c) != 3) {
    std::fprintf(stderr, "expected x,y,z triplet, got '%s'\n", s.c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  cxu::Options opt(argc, argv);
  cx::trace::configure_from_options(opt);  // --trace [--trace-out=...]
  cx::wire::configure_from_options(opt);   // --wire-pool=on|off
  stencil::Params p;
  parse_triplet(opt.get_string("blocks", "2,2,2"), p.geo.bx, p.geo.by,
                p.geo.bz);
  parse_triplet(opt.get_string("cells", "8,8,8"), p.geo.nx, p.geo.ny,
                p.geo.nz);
  p.iterations = static_cast<int>(opt.get_int("iters", 10));
  p.real_kernel = !opt.get_bool("modeled", false);
  p.imbalance = opt.get_bool("imbalance", false);
  p.lb_period = static_cast<int>(opt.get_int("lb", 0));

  cxm::MachineConfig machine;
  machine.num_pes = static_cast<int>(opt.get_int("pes", 4));
  machine.backend = opt.get_string("backend", "threaded") == "sim"
                        ? cxm::Backend::Sim
                        : cxm::Backend::Threaded;
  // Fault injection / reliable delivery (cx::ft): --ft-drop, --ft-dup,
  // --ft-delay, --ft-seed, --ft-crash-pe/--ft-crash-at, ...
  machine.faults = cx::ft::fault_config_from_options(opt);
  p.ckpt_every =
      static_cast<int>(opt.get_int("ft-checkpoint-every", 0));
  p.num_load_groups = static_cast<int>(
      opt.get_int("groups", machine.num_pes));

  const std::string variant = opt.get_string("variant", "cx");
  if (p.ckpt_every > 0 && variant != "cx") {
    std::fprintf(stderr,
                 "--ft-checkpoint-every is only supported by --variant cx\n");
    return 1;
  }
  stencil::Result r;
  if (variant == "cx") {
    r = stencil::run_cx(p, machine, opt.get_string("strategy", "greedy"));
  } else if (variant == "cpy") {
    r = stencil::run_cpy(p, machine, opt.get_string("strategy", "greedy"));
  } else if (variant == "mpi") {
    r = stencil::run_mpi(p, machine);
  } else {
    std::fprintf(stderr, "unknown --variant '%s' (cx|cpy|mpi)\n",
                 variant.c_str());
    return 1;
  }

  if (cxm::launched_rank() != 0) {
    // Under cxrun only rank 0 hosts PE 0, where the driver ran and the
    // results were gathered; worker ranks have nothing to report.
    return 0;
  }
  std::printf("stencil3d %s: %dx%dx%d blocks of %dx%dx%d cells, %d iters\n",
              variant.c_str(), p.geo.bx, p.geo.by, p.geo.bz, p.geo.nx,
              p.geo.ny, p.geo.nz, p.iterations);
  std::printf("  elapsed      %.6f s (%s)\n", r.elapsed,
              machine.backend == cxm::Backend::Sim ? "virtual" : "wall");
  std::printf("  time/iter    %.3f ms\n", r.time_per_iter * 1e3);
  std::printf("  checksum     %.12g\n", r.checksum);
  if (p.lb_period > 0) {
    std::printf("  lb           %llu migrations, imbalance %.2f -> %.2f\n",
                static_cast<unsigned long long>(r.lb_migrations),
                r.imbalance_before, r.imbalance_after);
  }
  cx::trace::report_if_enabled();
  return 0;
}
