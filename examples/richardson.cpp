// richardson — a distributed Jacobi-preconditioned Richardson solver
// built on chare-array sections (paper §II-F/§II-G generalized to index
// subsets):
//
//  * the *solve section* covers the interior elements of a 1-D Laplace
//    system (the two ends hold Dirichlet boundary values and never
//    update) — the residual norm each sweep is a section-scoped
//    reduction over exactly those members;
//  * halo exchange is per-member *neighbor-section multicasts*: each
//    element owns a tiny section over its left/right neighbors and
//    pushes its value down that spanning tree instead of addressing
//    point-to-point sends;
//  * --migrate-at forces an interior element off its home PE mid-solve:
//    contributions re-route through the home-PE delegate and the
//    multicast split repairs lazily, so convergence continues across
//    the move.
//
// Solves u'' = 0 on [0,1] with u(0)=0, u(1)=1 (solution: a linear
// ramp). Exits nonzero if the residual fails to reach --tol.
//
//   ./examples/richardson [--pes 4] [--chares 16] [--iters 800]
//                         [--tol 1e-4] [--migrate-at 50]
//                         [--section-tree-arity 4]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "core/charm.hpp"
#include "core/spantree.hpp"
#include "trace/trace.hpp"
#include "util/options.hpp"

namespace {

struct RichCell : cx::Chare {
  double x = 0.0;
  bool interior = false;
  cx::SectionProxy<RichCell> solve;  // residual reduction target
  cx::SectionProxy<RichCell> nbrs;   // halo multicast: {i-1, i+1}
  // Halo values received for a sweep, keyed by sweep tag (a neighbor
  // can already be one sweep ahead of us).
  std::map<int, std::vector<std::pair<int, double>>> halo;

  void pup(pup::Er& p) override {
    p | x;
    p | interior;
    solve.pup(p);
    nbrs.pup(p);
    p | halo;
  }

  /// Build this element's neighbor section and pin the boundary values.
  void setup(cx::SectionProxy<RichCell> solve_sect, int n) {
    solve = solve_sect;
    const int i = this_index()[0];
    interior = i > 0 && i < n - 1;
    if (i == n - 1) x = 1.0;  // u(1) = 1; u(0) stays 0
    std::vector<cx::Index> members;
    if (i > 0) members.push_back(cx::Index(i - 1));
    if (i < n - 1) members.push_back(cx::Index(i + 1));
    cx::CollectionProxy<RichCell> arr(collection());
    nbrs = arr.section(members);
  }

  void recv_halo(int sweep, int from, double v) {
    halo[sweep].push_back({from, v});
  }

  /// One Richardson sweep (threaded): push x to the neighbor sections,
  /// wait for both halo values, fold the local residual into the
  /// section reduction, then apply x += D^{-1} r (Jacobi: D = 2).
  void sweep(int k, cx::Future<double> res) {
    nbrs.broadcast<&RichCell::recv_halo>(k, this_index()[0], x);
    if (!interior) {
      halo.erase(halo.begin(), halo.upper_bound(k));  // trim stale tags
      return;
    }
    wait([this, k] { return halo[k].size() >= 2; });
    const int i = this_index()[0];
    double left = 0.0, right = 0.0;
    for (const auto& [from, v] : halo[k]) {
      (from < i ? left : right) = v;
    }
    halo.erase(halo.begin(), halo.upper_bound(k));
    const double r = left - 2.0 * x + right;
    contribute(solve, r * r, cx::reducer::sum<double>(), cx::cb(res));
    x += 0.5 * r;
  }

  int where() { return cx::my_pe(); }
  void go_to(int pe) { migrate(pe); }
  double value() { return x; }
};

struct Registrar {
  Registrar() { cx::set_threaded<&RichCell::sweep>(); }
};
const Registrar registrar;

}  // namespace

int main(int argc, char** argv) {
  cxu::Options opt(argc, argv);
  cx::RuntimeConfig cfg;
  cfg.machine.num_pes = static_cast<int>(opt.get_int("pes", 4));
  const int n = static_cast<int>(opt.get_int("chares", 16));
  const int iters = static_cast<int>(opt.get_int("iters", 800));
  const double tol = opt.get_double("tol", 1e-4);
  const int migrate_at = static_cast<int>(opt.get_int("migrate-at", 50));
  cx::tree::set_section_arity(
      static_cast<int>(opt.get_int("section-tree-arity", 4)));

  bool converged = false;
  double first_res = 0.0, last_res = 0.0;
  int sweeps = 0;
  cx::Runtime rt(cfg);
  rt.run([&] {
    auto arr = cx::create_array<RichCell>({n});
    std::vector<cx::Index> members;
    for (int i = 1; i < n - 1; ++i) members.push_back(cx::Index(i));
    auto solve = arr.section(members);
    arr.broadcast_done<&RichCell::setup>(solve, n).get();

    for (int k = 0; k < iters; ++k) {
      auto res = cx::make_future<double>();
      arr.broadcast<&RichCell::sweep>(k, res);
      const double rnorm = std::sqrt(res.get());
      if (k == 0) first_res = rnorm;
      last_res = rnorm;
      sweeps = k + 1;
      if (rnorm < tol) {
        converged = true;
        break;
      }
      if (k + 1 == migrate_at) {
        // Force an interior member off its home PE mid-solve; the
        // section machinery must keep both the halo multicasts and the
        // residual reduction flowing to/from its new location.
        const int mid = n / 2;
        const int was = arr[mid].call<&RichCell::where>().get();
        arr[mid].send<&RichCell::go_to>((was + 1) % cx::num_pes());
        while (arr[mid].call<&RichCell::where>().get() == was) {
        }
        std::printf("richardson: migrated element %d from PE %d to %d "
                    "after sweep %d\n",
                    mid, was, (was + 1) % cx::num_pes(), k + 1);
      }
    }

    // The converged iterate must approximate the analytic ramp.
    double max_err = 0.0;
    for (int i = 0; i < n; ++i) {
      const double u = arr[i].call<&RichCell::value>().get();
      const double exact = static_cast<double>(i) / (n - 1);
      max_err = std::max(max_err, std::fabs(u - exact));
    }
    const auto ss = cx::trace::section_stats();
    std::printf("richardson: %d chares (%d interior), %d sweeps\n", n,
                n - 2, sweeps);
    std::printf("  residual |r|: %.3e -> %.3e (tol %.1e)  max|u-u*| %.3e\n",
                first_res, last_res, tol, max_err);
    std::printf("  sections: %llu built, %llu multicasts, %llu "
                "contributions, %llu tree repairs\n",
                static_cast<unsigned long long>(ss.sections_built),
                static_cast<unsigned long long>(ss.mcasts),
                static_cast<unsigned long long>(ss.contributions),
                static_cast<unsigned long long>(ss.tree_repairs));
    cx::exit();
  });

  if (!converged || last_res >= first_res) {
    std::fprintf(stderr, "richardson: FAILED to converge (%.3e after %d "
                 "sweeps)\n", last_res, sweeps);
    return 1;
  }
  std::printf("richardson: converged\n");
  return 0;
}
