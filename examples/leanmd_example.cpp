// LeanMD driver — molecular dynamics with the Lennard-Jones potential on
// the cells + computes decomposition (paper §V-C).
//
//   ./examples/leanmd --pes 4 --cells 3,3,3 --ppc 8 --steps 10
//   ./examples/leanmd --variant cpy --backend sim --pes 16

#include <cstdio>
#include <cstdlib>

#include "apps/leanmd/leanmd_common.hpp"
#include "apps/leanmd/leanmd_cpy.hpp"
#include "apps/leanmd/leanmd_cx.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  cxu::Options opt(argc, argv);
  leanmd::PhysParams p;
  if (std::sscanf(opt.get_string("cells", "3,3,3").c_str(), "%d,%d,%d",
                  &p.cx, &p.cy, &p.cz) != 3 ||
      p.cx < 3 || p.cy < 3 || p.cz < 3) {
    std::fprintf(stderr, "--cells needs x,y,z each >= 3 (periodic box)\n");
    return 1;
  }
  p.ppc = static_cast<int>(opt.get_int("ppc", 8));
  p.steps = static_cast<int>(opt.get_int("steps", 10));
  p.migrate_every = static_cast<int>(opt.get_int("migrate", 5));
  p.dt = opt.get_double("dt", 1e-3);
  p.cutoff = opt.get_double("cutoff", 2.5);
  p.real = !opt.get_bool("modeled", false);

  cxm::MachineConfig machine;
  machine.num_pes = static_cast<int>(opt.get_int("pes", 4));
  machine.backend = opt.get_string("backend", "threaded") == "sim"
                        ? cxm::Backend::Sim
                        : cxm::Backend::Threaded;

  const std::string variant = opt.get_string("variant", "cx");
  leanmd::Result r;
  if (variant == "cx") {
    r = leanmd::run_cx(p, machine);
  } else if (variant == "cpy") {
    r = leanmd::run_cpy(p, machine);
  } else {
    std::fprintf(stderr, "unknown --variant '%s' (cx|cpy)\n",
                 variant.c_str());
    return 1;
  }

  const auto chares = p.num_cells() * 15;  // cells + 14 computes per cell
  std::printf("leanmd %s: %dx%dx%d cells, %d atoms/cell, %d steps\n",
              variant.c_str(), p.cx, p.cy, p.cz, p.ppc, p.steps);
  std::printf("  chares       %lld over %d PEs (%.1f per PE)\n",
              static_cast<long long>(chares), machine.num_pes,
              static_cast<double>(chares) / machine.num_pes);
  std::printf("  elapsed      %.6f s (%s), %.3f ms/step\n", r.elapsed,
              machine.backend == cxm::Backend::Sim ? "virtual" : "wall",
              r.time_per_step * 1e3);
  std::printf("  atoms        %lld (conserved)\n",
              static_cast<long long>(r.atoms));
  std::printf("  kinetic E    %.9g\n", r.kinetic_energy);
  std::printf("  momentum     (%.3g, %.3g, %.3g)\n", r.momentum[0],
              r.momentum[1], r.momentum[2]);
  return 0;
}
