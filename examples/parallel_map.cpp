// The paper's Section III headline use case: a distributed parallel map
// with concurrent asynchronous jobs, on the master-worker pool.
//
// Mirrors the paper's main() almost line for line:
//
//   def main(args):
//     pool = Chare(MapManager, onPE=0)
//     f1 = charm.createFuture(); f2 = charm.createFuture()
//     pool.map_async(f, 2, [1,2,3,4,5], f1)
//     pool.map_async(f, 2, [1,3,5,7,9], f2)
//     print("Final results are", f1.get(), f2.get())
//
//   ./examples/parallel_map [--pes 4] [--tasks 16]

#include <cstdio>

#include "pool/pool.hpp"
#include "trace/trace.hpp"
#include "util/options.hpp"

using cpy::List;
using cpy::Value;

int main(int argc, char** argv) {
  cxu::Options opt(argc, argv);
  cx::trace::configure_from_options(opt);  // --trace [--trace-out=...]
  cx::RuntimeConfig cfg;
  cfg.machine.num_pes = static_cast<int>(opt.get_int("pes", 4));
  const auto ntasks = opt.get_int("tasks", 16);

  // Task functions are registered by name (the stand-in for passing a
  // Python function object).
  cxpool::register_function("square", [](const Value& x) {
    return Value(x.as_int() * x.as_int());
  });
  cxpool::register_function("slow_cube", [](const Value& x) {
    // Wildly uneven task costs: the master's dynamic handout keeps
    // workers busy anyway (the paper's load-balancing point).
    cx::compute(1e-4 * static_cast<double>(x.as_int() % 7));
    return Value(x.as_int() * x.as_int() * x.as_int());
  });

  cx::Runtime rt(cfg);
  rt.run([ntasks] {
    cxpool::Pool pool;

    // Two independent jobs running concurrently on disjoint workers.
    List tasks1, tasks2;
    for (int i = 1; i <= 5; ++i) tasks1.emplace_back(i);
    for (int i = 1; i <= 9; i += 2) tasks2.emplace_back(i);
    auto f1 = pool.map_async("square", 2, tasks1);
    auto f2 = pool.map_async("square", 2, tasks2);
    std::printf("Final results are %s %s\n", f1.get().repr().c_str(),
                f2.get().repr().c_str());

    // A bigger job with uneven task costs, on all available workers.
    List big;
    for (int i = 0; i < ntasks; ++i) big.emplace_back(i);
    const Value cubes =
        pool.map("slow_cube", cx::num_pes() - 1 > 0 ? cx::num_pes() - 1 : 1,
                 big);
    std::printf("Cubes of 0..%lld: %s\n",
                static_cast<long long>(ntasks - 1), cubes.repr().c_str());
    cx::exit();
  });
  cx::trace::report_if_enabled();
  return 0;
}
