// Quickstart — the paper's §II-B hello program and a tour of the model:
// chares, groups, arrays, futures, reductions, and the same program on
// both API levels (typed core and dynamic model layer).
//
//   ./examples/quickstart [--pes 4]

#include <cstdio>

#include "core/charm.hpp"
#include "model/cpy.hpp"
#include "util/options.hpp"

namespace {

// --------------------------------------------------------------- typed API

struct Greeter : cx::Chare {
  void say_hi(std::string msg) {
    std::printf("[typed]   chare %s on PE %d says: %s\n",
                this_index().to_string().c_str(), cx::my_pe(), msg.c_str());
  }
  int add(int a, int b) { return a + b; }
};

struct Summer : cx::Chare {
  void work(cx::Future<int> target) {
    // Every element contributes its index; the runtime reduces the sum
    // asynchronously over a spanning tree (paper §II-F).
    contribute(this_index()[0], cx::reducer::sum<int>(), cx::cb(target));
  }
};

void typed_demo() {
  std::printf("--- typed core API (the Charm++ substrate) ---\n");
  // A single chare anywhere (paper: Chare(MyChare, onPE=-1)).
  auto one = cx::create_chare<Greeter>(-1);
  one.send<&Greeter::say_hi>(std::string("Hello"));

  // Remote call with a return value (paper: ret=True).
  auto sum = one.call<&Greeter::add>(20, 22);
  std::printf("[typed]   20 + 22 = %d (via future)\n", sum.get());

  // A group: one member per PE.
  auto grp = cx::create_group<Greeter>();
  grp.broadcast_done<&Greeter::say_hi>(std::string("hello from the group"))
      .get();

  // An array of 10 workers and an asynchronous sum reduction.
  auto workers = cx::create_array<Summer>({10});
  auto f = cx::make_future<int>();
  workers.broadcast<&Summer::work>(f);
  std::printf("[typed]   sum of indexes 0..9 = %d\n", f.get());
}

// ------------------------------------------------------------- dynamic API

void register_dynamic_classes() {
  cpy::DClass cls("Hello");
  cls.def("SayHi", {"msg"}, [](cpy::DChare& self, cpy::Args& a) {
    std::printf("[dynamic] %s on PE %d says: %s\n",
                self["thisIndex"].repr().c_str(), cx::my_pe(),
                a[0].as_str().c_str());
    return cpy::Value::none();
  });
  cls.def("getValue", {}, [](cpy::DChare& self, cpy::Args&) {
    return cpy::Value(self["thisIndex"].item(cpy::Value(0)).as_int() * 2);
  });
}

void dynamic_demo() {
  std::printf("--- dynamic model layer (the paper's contribution) ---\n");
  // The paper's hello program: methods invoked by name, no interface
  // files, no registration of entry methods.
  auto proxy = cpy::create_chare("Hello", -1);
  proxy.send("SayHi", {cpy::Value("Hello (by name!)")});

  auto arr = cpy::create_array("Hello", {4});
  arr.broadcast_done("SayHi", {cpy::Value("hello, array")}).get();

  auto v = arr[cx::Index(3)].call("getValue").get();
  std::printf("[dynamic] element 3 returned %s\n", v.repr().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  cxu::Options opt(argc, argv);
  cx::RuntimeConfig cfg;
  cfg.machine.num_pes = static_cast<int>(opt.get_int("pes", 4));
  cfg.machine.backend = opt.get_string("backend", "threaded") == "sim"
                            ? cxm::Backend::Sim
                            : cxm::Backend::Threaded;
  register_dynamic_classes();

  cx::Runtime rt(cfg);
  rt.run([] {
    std::printf("charmx quickstart on %d PEs\n", cx::num_pes());
    typed_demo();
    dynamic_demo();
    std::printf("done.\n");
    cx::exit();
  });
  return 0;
}
