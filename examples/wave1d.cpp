// wave1d — a compact domain-specific example on the dynamic model layer:
// a 1-D wave equation over a chare array, written entirely in the
// paper's style (dynamic classes, when-strings for iteration matching,
// array attributes as the NumPy fields, a reduction to finish).
//
//   ./examples/wave1d [--pes 4] [--chares 8] [--cells 64] [--steps 200]

#include <cstdio>

#include "model/cpy.hpp"
#include "util/options.hpp"

using namespace cpy;

namespace {

void register_wave() {
  DClass cls("Wave");
  cls.def("__init__", {"ncells", "steps", "c2", "nchares"},
          [](DChare& self, Args& a) {
            self["n"] = a[0];
            self["steps"] = a[1];
            self["c2"] = a[2];
            self["nchares"] = a[3];
            self["iter"] = Value(0);
            self["got"] = Value(0);
            const auto n = static_cast<std::size_t>(a[0].as_int());
            std::vector<double> u(n + 2, 0.0), up(n + 2, 0.0);
            // A bump in the middle of chare 0 starts the wave.
            if (self["thisIndex"].item(Value(0)).as_int() == 0) {
              for (std::size_t i = n / 3; i < 2 * n / 3; ++i) {
                const double x =
                    static_cast<double>(i - n / 3) /
                    static_cast<double>(n / 3);
                u[i + 1] = x * (1.0 - x) * 4.0;
              }
              up = u;  // zero initial velocity
            }
            self["u"] = Value::array(std::move(u));
            self["uprev"] = Value::array(std::move(up));
            return Value::none();
          });

  cls.def("start", {"done"}, [](DChare& self, Args& a) {
    self["done"] = a[0];
    Args none;
    return self.dyn_call("exchange", std::move(none));
  });

  cls.def("exchange", {}, [](DChare& self, Args&) {
    const auto& u = self["u"].as_f64_array()->data;
    auto arr = collection_proxy_of(self);
    const std::int64_t me = self["thisIndex"].item(Value(0)).as_int();
    const std::int64_t nchares = self["nchares"].as_int();
    const std::int64_t it = self["iter"].as_int();
    // Periodic ring: send boundary cells to both neighbors.
    arr[cx::Index(static_cast<int>((me + nchares - 1) % nchares))].send(
        "ghost", {Value(it), Value(1), Value(u[u.size() - 2])});
    arr[cx::Index(static_cast<int>((me + 1) % nchares))].send(
        "ghost", {Value(it), Value(0), Value(u[1])});
    return Value::none();
  });

  cls.def("ghost", {"iter", "side", "value"}, [](DChare& self, Args& a) {
    auto& u = self["u"].as_f64_array()->data;
    if (a[1].as_int() == 0) {
      u[0] = a[2].as_real();
    } else {
      u[u.size() - 1] = a[2].as_real();
    }
    self["got"] = Value(self["got"].as_int() + 1);
    if (self["got"].as_int() < 2) return Value::none();
    self["got"] = Value(0);
    // Leapfrog update: u_next = 2u - u_prev + c2 (u[i-1] - 2u[i] + u[i+1])
    auto& up = self["uprev"].as_f64_array()->data;
    const double c2 = self["c2"].as_real();
    std::vector<double> next(u.size(), 0.0);
    for (std::size_t i = 1; i + 1 < u.size(); ++i) {
      next[i] = 2.0 * u[i] - up[i] + c2 * (u[i - 1] - 2.0 * u[i] + u[i + 1]);
    }
    up = u;
    for (std::size_t i = 1; i + 1 < u.size(); ++i) u[i] = next[i];
    self["iter"] = Value(self["iter"].as_int() + 1);
    if (self["iter"].as_int() >= self["steps"].as_int()) {
      double energy = 0.0;
      for (std::size_t i = 1; i + 1 < u.size(); ++i) energy += u[i] * u[i];
      self.contribute_value(Value(energy), "sum",
                            DTarget::to_future(
                                future_from(self["done"]).slot()));
      return Value::none();
    }
    Args none;
    return self.dyn_call("exchange", std::move(none));
  });
  cls.when("ghost", "self.iter == iter");
}

}  // namespace

int main(int argc, char** argv) {
  cxu::Options opt(argc, argv);
  cx::RuntimeConfig cfg;
  cfg.machine.num_pes = static_cast<int>(opt.get_int("pes", 4));
  const int nchares = static_cast<int>(opt.get_int("chares", 8));
  const int ncells = static_cast<int>(opt.get_int("cells", 64));
  const int steps = static_cast<int>(opt.get_int("steps", 200));

  register_wave();
  cx::Runtime rt(cfg);
  rt.run([&] {
    auto arr = create_array(
        "Wave", {nchares},
        {Value(ncells), Value(steps), Value(0.2), Value(nchares)});
    auto f = cx::make_future<Value>();
    arr.broadcast("start", {to_value(f)});
    const double energy = f.get().as_real();
    std::printf("wave1d: %d chares x %d cells, %d steps -> energy %.6f\n",
                nchares, ncells, steps, energy);
    cx::exit();
  });
  return 0;
}
