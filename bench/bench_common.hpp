#pragma once
// Shared helpers for the figure-reproduction harnesses.

#include <cstdio>
#include <string>

#include "apps/stencil/stencil_cpy.hpp"
#include "machine/machine.hpp"
#include "model/cpy.hpp"
#include "trace/trace.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "wire/pool.hpp"

namespace bench {

/// Wire --trace / --trace-out=<path> / --trace-buffer=<events> into
/// cx::trace. Call once right after parsing options, then
/// trace_report() after the last run: the trace covers the most recent
/// Runtime (for a sweep, the final configuration).
inline void trace_from_options(const cxu::Options& opt) {
  cx::trace::configure_from_options(opt);
  cx::wire::configure_from_options(opt);  // --wire-pool=on|off rides along
}

/// Write the JSON timeline and print the summary table if --trace is on.
inline void trace_report() { cx::trace::report_if_enabled(); }

/// Simulated-machine config for a "Blue Waters"-like system: 3D torus,
/// 32 PEs per node (the paper's fig. 1/4 platform).
inline cxm::MachineConfig blue_waters(int pes) {
  cxm::MachineConfig cfg;
  cfg.num_pes = pes;
  cfg.backend = cxm::Backend::Sim;
  cfg.network = "torus";
  cfg.net.pes_per_node = 32;
  cfg.net.alpha = 2.0e-6;
  cfg.net.beta = 1.0 / 5.0e9;  // ~5 GB/s links
  cfg.net.per_hop = 1.0e-7;
  return cfg;
}

/// "Cori"-like system: dragonfly, 64 PEs (KNL cores) per node — the
/// paper's figs. 2/3 run on 2 KNL nodes, 8..128 cores.
inline cxm::MachineConfig cori(int pes) {
  cxm::MachineConfig cfg;
  cfg.num_pes = pes;
  cfg.backend = cxm::Backend::Sim;
  cfg.network = "dragonfly";
  cfg.net.pes_per_node = 64;
  cfg.net.alpha = 1.5e-6;
  cfg.net.beta = 1.0 / 8.0e9;
  cfg.net.per_hop = 1.0e-7;
  return cfg;
}

/// Measure the real per-message cost the dynamic layer adds over the
/// typed core (method-name dispatch, Value boxing, generic
/// serialization) — the analogue of CharmPy's interpreter overhead per
/// entry method. Used to charge the cpy series in simulated runs
/// (calibrated, not guessed; see bench/micro_dispatch for the full
/// breakdown).
double measure_dispatch_overhead();

/// Steady-state per-iteration time via the two-run slope method:
/// (T(2n) - T(n)) / n. Removes one-time costs (collection creation,
/// the completion reduction) from the figure measurements, matching the
/// paper's steady-state time-per-step metric.
template <typename RunFn>
double slope_time_per_iter(RunFn&& run, int iters) {
  const double t1 = run(iters);
  const double t2 = run(iters * 2);
  const double slope = (t2 - t1) / iters;
  return slope > 0 ? slope : t2 / (iters * 2);
}

/// Factor the block grid of `pes` blocks into a near-cubic (bx, by, bz).
inline void near_cubic(int n, int& bx, int& by, int& bz) {
  bx = 1;
  by = 1;
  bz = 1;
  int dim = 0;
  while (n > 1) {
    int* d = dim == 0 ? &bx : dim == 1 ? &by : &bz;
    *d *= 2;
    n /= 2;
    dim = (dim + 1) % 3;
  }
}

}  // namespace bench
