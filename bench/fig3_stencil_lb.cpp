// Figure 3: stencil3d with synthetic load imbalance (paper §V-B) on
// "Cori", 8 -> 128 cores. Five series: Charm++(no lb), CharmPy(no lb),
// MPI, Charm++(lb), CharmPy(lb). The chare versions use 4 blocks per
// process and GreedyLB every 30 iterations.
//
// Paper's result: without LB all three are similar; with LB the chare
// versions run 1.9x - 2.27x faster.
//
//   ./bench/fig3_stencil_lb [--iters 150] [--grid 128]

#include <cstdio>
#include <vector>

#include "apps/stencil/stencil_cx.hpp"
#include "apps/stencil/stencil_mpi.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  cxu::Options opt(argc, argv);
  const int iters = static_cast<int>(opt.get_int("iters", 150));
  const int grid = static_cast<int>(opt.get_int("grid", 128));
  const int lb_period = static_cast<int>(opt.get_int("lb", 30));
  // Phase-drift period of the alpha model (see stencil_common.hpp):
  // 30 = slow-drift reading (reproduces the paper's LB gains);
  // 1 = literal per-iteration rotation (smaller gains; see EXPERIMENTS.md).
  const int drift = static_cast<int>(opt.get_int("drift", 30));

  const double overhead = bench::measure_dispatch_overhead();
  std::printf("fig3: stencil3d with synthetic imbalance (alpha model of\n");
  std::printf("      paper SecV-B), 4 chares/PE, greedy LB every %d iters,\n",
              lb_period);
  std::printf("      %d iterations, %d^3 grid\n\n", iters, grid);

  cxu::Table table({"cores", "cx-nolb ms", "cpy-nolb ms", "mpi ms",
                    "cx-lb ms", "cpy-lb ms", "lb speedup (cx)"});
  for (int pes : std::vector<int>{8, 16, 32, 64, 128}) {
    // MPI decomposition: one block per rank; load group = rank.
    stencil::Params mp;
    bench::near_cubic(pes, mp.geo.bx, mp.geo.by, mp.geo.bz);
    mp.geo.nx = grid / mp.geo.bx;
    mp.geo.ny = grid / mp.geo.by;
    mp.geo.nz = grid / mp.geo.bz;
    mp.iterations = iters;
    mp.real_kernel = false;
    mp.cell_cost = 2.0e-9;
    mp.imbalance = true;
    mp.num_load_groups = pes;
    mp.imb_drift = drift;

    // Chare decomposition: 4 blocks per PE, strictly refining the MPI
    // blocks (same load group <=> same MPI block, as in the paper).
    stencil::Params cp = mp;
    bench::near_cubic(pes * 4, cp.geo.bx, cp.geo.by, cp.geo.bz);
    cp.geo.nx = grid / cp.geo.bx;
    cp.geo.ny = grid / cp.geo.by;
    cp.geo.nz = grid / cp.geo.bz;

    stencil::Params cp_lb = cp;
    cp_lb.lb_period = lb_period;

    const auto mpi_r = stencil::run_mpi(mp, bench::cori(pes));
    const auto cx_nolb = stencil::run_cx(cp, bench::cori(pes));
    const auto cpy_nolb =
        stencil::run_cpy(cp, bench::cori(pes), "greedy", overhead);
    const auto cx_lb = stencil::run_cx(cp_lb, bench::cori(pes));
    const auto cpy_lb =
        stencil::run_cpy(cp_lb, bench::cori(pes), "greedy", overhead);

    table.add_row(
        {std::to_string(pes), cxu::Table::num(cx_nolb.time_per_iter * 1e3, 2),
         cxu::Table::num(cpy_nolb.time_per_iter * 1e3, 2),
         cxu::Table::num(mpi_r.time_per_iter * 1e3, 2),
         cxu::Table::num(cx_lb.time_per_iter * 1e3, 2),
         cxu::Table::num(cpy_lb.time_per_iter * 1e3, 2),
         cxu::Table::num(cx_nolb.time_per_iter / cx_lb.time_per_iter, 2)});
    std::fflush(stdout);
  }
  table.print();
  std::printf(
      "\nexpected shape (paper fig. 3): no-lb series similar across all\n"
      "three; lb series ~2x faster (paper: 1.9x-2.27x).\n");
  return 0;
}
