// Figure 1: stencil3d weak scaling on "Blue Waters" (3D torus, 32
// PEs/node), 1k -> 65k cores, comparing the typed core ("Charm++"), the
// mini-MPI baseline ("mpi4py") and the dynamic model layer ("CharmPy").
//
// Paper's result: all three within a few percent; Charm++ fastest;
// CharmPy at most 6.2% behind (at 32k cores).
//
// Defaults sweep 1k..16k simulated PEs with a modeled kernel (the host
// runs virtual PEs); pass --full for the paper's 1k..65k axis.
//
//   ./bench/fig1_stencil_weak [--full] [--iters 12] [--block 16]

#include <cstdio>
#include <vector>

#include "apps/stencil/stencil_cx.hpp"
#include "apps/stencil/stencil_mpi.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  cxu::Options opt(argc, argv);
  bench::trace_from_options(opt);
  const int iters = static_cast<int>(opt.get_int("iters", 12));
  const int block = static_cast<int>(opt.get_int("block", 24));
  std::vector<int> cores = {1024, 2048, 4096, 8192, 16384};
  if (opt.get_bool("full", false)) {
    cores.push_back(32768);
    cores.push_back(65536);
  }

  const double overhead = bench::measure_dispatch_overhead();
  std::printf("fig1: stencil3d weak scaling (torus, 32 PEs/node)\n");
  std::printf("      one %d^3 block per PE, %d iterations, modeled kernel\n",
              block, iters);
  std::printf("      measured dynamic-dispatch overhead: %.2f us/message\n\n",
              overhead * 1e6);

  cxu::Table table({"cores", "charm++ (cx) ms", "mpi ms", "charmpy (cpy) ms",
                    "cpy/cx"});
  for (int pes : cores) {
    stencil::Params p;
    bench::near_cubic(pes, p.geo.bx, p.geo.by, p.geo.bz);
    p.geo.nx = p.geo.ny = p.geo.nz = block;
    p.iterations = iters;
    p.real_kernel = false;
    p.cell_cost = 2.0e-9;

    const double cx_t = bench::slope_time_per_iter(
        [&](int n) {
          stencil::Params q = p;
          q.iterations = n;
          return stencil::run_cx(q, bench::blue_waters(pes)).elapsed;
        },
        iters);
    const double mpi_t = bench::slope_time_per_iter(
        [&](int n) {
          stencil::Params q = p;
          q.iterations = n;
          return stencil::run_mpi(q, bench::blue_waters(pes)).elapsed;
        },
        iters);
    const double cpy_t = bench::slope_time_per_iter(
        [&](int n) {
          stencil::Params q = p;
          q.iterations = n;
          return stencil::run_cpy(q, bench::blue_waters(pes), "greedy",
                                  overhead)
              .elapsed;
        },
        iters);

    table.add_row({std::to_string(pes), cxu::Table::num(cx_t * 1e3, 3),
                   cxu::Table::num(mpi_t * 1e3, 3),
                   cxu::Table::num(cpy_t * 1e3, 3),
                   cxu::Table::num(cpy_t / cx_t, 3)});
    std::fflush(stdout);
  }
  table.print();
  std::printf(
      "\nexpected shape (paper fig. 1): flat weak scaling; cx fastest;\n"
      "cpy within ~6%% of cx; mpi between them.\n");
  bench::trace_report();  // covers the last (largest) cpy sweep point
  return 0;
}
