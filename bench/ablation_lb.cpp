// LB strategy ablation (DESIGN.md design-choice study): the imbalanced
// stencil of Fig. 3 under every registered strategy.
//
//   ./bench/ablation_lb [--iters 120] [--pes 32]

#include <cstdio>
#include <string>
#include <vector>

#include "apps/stencil/stencil_cx.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  cxu::Options opt(argc, argv);
  const int iters = static_cast<int>(opt.get_int("iters", 120));
  const int pes = static_cast<int>(opt.get_int("pes", 32));

  stencil::Params p;
  bench::near_cubic(pes * 4, p.geo.bx, p.geo.by, p.geo.bz);
  p.geo.nx = p.geo.ny = p.geo.nz = 8;
  p.iterations = iters;
  p.real_kernel = false;
  p.cell_cost = 2.0e-9;
  p.imbalance = true;
  p.num_load_groups = pes;

  std::printf("ablation_lb: imbalanced stencil3d, %d PEs, 4 chares/PE,\n",
              pes);
  std::printf("             LB every 30 of %d iterations\n\n", iters);

  stencil::Params p_nolb = p;
  const auto baseline = stencil::run_cx(p_nolb, bench::cori(pes));

  cxu::Table table({"strategy", "time/iter ms", "speedup vs none",
                    "migrations", "imbalance after"});
  table.add_row({"(no lb)", cxu::Table::num(baseline.time_per_iter * 1e3, 3),
                 "1.00", "0", "-"});
  for (const std::string strategy :
       {"greedy", "refine", "rotate", "random"}) {
    stencil::Params pl = p;
    pl.lb_period = 30;
    const auto r = stencil::run_cx(pl, bench::cori(pes), strategy);
    table.add_row(
        {strategy, cxu::Table::num(r.time_per_iter * 1e3, 3),
         cxu::Table::num(baseline.time_per_iter / r.time_per_iter, 2),
         std::to_string(r.lb_migrations),
         cxu::Table::num(r.imbalance_after, 2)});
    std::fflush(stdout);
  }
  table.print();
  std::printf(
      "\nexpected: greedy best. random also helps here: scattering mixes\n"
      "load groups per PE, averaging the rotating alpha phases. rotate\n"
      "preserves the grouping and only pays migration cost. refine moves\n"
      "too few chares to mix phases.\n");
  return 0;
}
