// Messaging ablation (paper §II-D): the same-process by-reference
// optimization. With the fast path ON, a same-PE send hands the argument
// tuple over by reference — no serialization, no copy of array payloads
// beyond the initial boxing. With the fast path OFF, every send packs
// and unpacks (the general Charm++ behavior the paper contrasts with).
// Both cases run entirely on one PE, so the comparison isolates the
// serialization cost.
//
//   ./bench/micro_messaging [--messages 2000]
//
// --ft mode: cross-PE sends with the cx::ft seq+ack reliable-delivery
// protocol off vs on. With it off (the default runtime configuration)
// the no-fault fast path sends zero protocol messages — the reported
// ack count must be 0; with it on, every cross-PE message is acked.
//
//   ./bench/micro_messaging --ft [--messages 2000]

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/charm.hpp"
#include "trace/trace.hpp"

namespace {

struct VecSink : cx::Chare {
  long count = 0;
  void take(std::vector<double> v) { count += static_cast<long>(v.size()); }
  long get() { return count; }
};

/// Seconds per message for same-PE sends of a `payload`-double vector,
/// with or without the by-reference fast path.
double time_same_pe(int payload, int messages, bool fastpath) {
  double elapsed = 0.0;
  cx::RuntimeConfig cfg;
  cfg.machine.num_pes = 1;
  cx::Runtime rt(cfg);
  rt.run([&] {
    cx::detail::set_local_fastpath(fastpath);
    auto sink = cx::create_chare<VecSink>(0);
    (void)sink.call<&VecSink::get>().get();
    const long want = static_cast<long>(messages) * payload;
    cxu::Stopwatch sw;
    for (int i = 0; i < messages; ++i) {
      // Fresh payload each send: the receiver takes ownership (the
      // caller gives up the arguments, as the paper requires).
      std::vector<double> v(static_cast<std::size_t>(payload), 1.0);
      sink.send<&VecSink::take>(std::move(v));
    }
    while (sink.call<&VecSink::get>().get() < want) {
    }
    elapsed = sw.elapsed();
    cx::detail::set_local_fastpath(true);
    cx::exit();
  });
  return elapsed / messages;
}

/// Seconds per message for PE0 -> PE1 sends with the reliable-delivery
/// protocol off/on; `acks` returns the protocol acks counted by trace.
double time_cross_pe(int payload, int messages, bool reliable,
                     std::uint64_t* acks) {
  cx::trace::reset();
  cx::trace::Config tc;
  tc.enabled = true;
  tc.print_summary = false;
  cx::trace::configure(tc);
  double elapsed = 0.0;
  cx::RuntimeConfig cfg;
  cfg.machine.num_pes = 2;
  cfg.machine.faults.reliable = reliable;
  cx::Runtime rt(cfg);
  rt.run([&] {
    auto sink = cx::create_chare<VecSink>(1);
    (void)sink.call<&VecSink::get>().get();
    const long want = static_cast<long>(messages) * payload;
    cxu::Stopwatch sw;
    for (int i = 0; i < messages; ++i) {
      std::vector<double> v(static_cast<std::size_t>(payload), 1.0);
      sink.send<&VecSink::take>(std::move(v));
    }
    while (sink.call<&VecSink::get>().get() < want) {
    }
    elapsed = sw.elapsed();
    cx::exit();
  });
  if (acks != nullptr) *acks = cx::trace::aggregate().ft_acks;
  cx::trace::reset();
  return elapsed / messages;
}

int run_ft_mode(int messages) {
  std::printf(
      "micro_messaging --ft: PE0->PE1 sends with the cx::ft seq+ack\n"
      "reliable-delivery protocol off vs on, %d msgs/case\n\n",
      messages);
  cxu::Table table({"payload doubles", "acks off us/msg", "acks on us/msg",
                    "overhead", "acks off count", "acks on count"});
  for (int payload : {16, 256, 4096}) {
    std::uint64_t acks_off = 0, acks_on = 0;
    const double off =
        time_cross_pe(payload, messages, false, &acks_off) * 1e6;
    const double on =
        time_cross_pe(payload, messages, true, &acks_on) * 1e6;
    table.add_row({std::to_string(payload), cxu::Table::num(off, 2),
                   cxu::Table::num(on, 2), cxu::Table::num(on / off, 2),
                   std::to_string(acks_off), std::to_string(acks_on)});
  }
  table.print();
  std::printf(
      "\nWith the protocol off (the default config) the fast path sends\n"
      "no acks at all -- the 'acks off count' column must read 0. With\n"
      "it on, every app message is acked and retransmit timers arm, the\n"
      "price of surviving injected drops.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cxu::Options opt(argc, argv);
  bench::trace_from_options(opt);
  const int messages = static_cast<int>(opt.get_int("messages", 1000));
  if (opt.get_bool("ft", false)) return run_ft_mode(messages);

  std::printf(
      "micro_messaging: same-PE sends with/without the by-reference\n"
      "fast path (paper SecII-D), %d msgs/case\n\n",
      messages);
  cxu::Table table({"payload doubles", "by-reference us/msg",
                    "serialized us/msg", "speedup"});
  for (int payload : {16, 256, 4096, 65536}) {
    const double fast = time_same_pe(payload, messages, true) * 1e6;
    const double slow = time_same_pe(payload, messages, false) * 1e6;
    table.add_row({std::to_string(payload), cxu::Table::num(fast, 2),
                   cxu::Table::num(slow, 2),
                   cxu::Table::num(slow / fast, 2)});
  }
  table.print();
  std::printf(
      "\nThe by-reference path avoids pack+unpack entirely (zero-copy of\n"
      "the payload, verified by pointer identity in the test suite); its\n"
      "envelope bookkeeping costs more than a small memcpy, so the win\n"
      "shows for large payloads -- the NumPy-array case the paper's\n"
      "optimization targets.\n");
  bench::trace_report();  // covers the last run (64k-double serialized)
  return 0;
}
