// Messaging ablation (paper §II-D): the same-process by-reference
// optimization. With the fast path ON, a same-PE send hands the argument
// tuple over by reference — no serialization, no copy of array payloads
// beyond the initial boxing. With the fast path OFF, every send packs
// and unpacks (the general Charm++ behavior the paper contrasts with).
// Both cases run entirely on one PE, so the comparison isolates the
// serialization cost.
//
//   ./bench/micro_messaging [--messages 2000]
//
// --ft mode: cross-PE sends with the cx::ft seq+ack reliable-delivery
// protocol off vs on. With it off (the default runtime configuration)
// the no-fault fast path sends zero protocol messages — the reported
// ack count must be 0; with it on, every cross-PE message is acked.
//
//   ./bench/micro_messaging --ft [--messages 2000]
//
// --wire mode: cross-PE sends with the cx::wire block pool off vs on,
// reporting heap allocations per send, bytes packed per envelope and
// the pool hit rate from the always-on cx::trace wire counters. The
// pooled path must allocate at most one heap payload block per large
// message and none at all for messages that fit the envelope's inline
// storage (SBO) — both are checked, not just printed.
//
//   ./bench/micro_messaging --wire [--messages 2000]
//
// --agg mode: sender-side message aggregation (TRAM-style, --wire-agg)
// A/B on the DES backend. Every PE streams fine-grained messages around
// a ring; with aggregation on, small sends coalesce into per-(dst,
// size-class) batches that travel as one wire envelope each. Reports
// simulated ops/s and physical wire envelopes for both runs and checks
// — not just prints — that the application-visible result (an
// order-sensitive payload hash) is identical with aggregation on/off.
//
//   ./bench/micro_messaging --agg [--messages 2000] [--json out.json]

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/charm.hpp"
#include "trace/trace.hpp"
#include "wire/agg.hpp"
#include "wire/pool.hpp"

namespace {

struct VecSink : cx::Chare {
  long count = 0;
  void take(std::vector<double> v) { count += static_cast<long>(v.size()); }
  long get() { return count; }
};

/// Seconds per message for same-PE sends of a `payload`-double vector,
/// with or without the by-reference fast path.
double time_same_pe(int payload, int messages, bool fastpath) {
  double elapsed = 0.0;
  cx::RuntimeConfig cfg;
  cfg.machine.num_pes = 1;
  cx::Runtime rt(cfg);
  rt.run([&] {
    cx::detail::set_local_fastpath(fastpath);
    auto sink = cx::create_chare<VecSink>(0);
    (void)sink.call<&VecSink::get>().get();
    const long want = static_cast<long>(messages) * payload;
    cxu::Stopwatch sw;
    for (int i = 0; i < messages; ++i) {
      // Fresh payload each send: the receiver takes ownership (the
      // caller gives up the arguments, as the paper requires).
      std::vector<double> v(static_cast<std::size_t>(payload), 1.0);
      sink.send<&VecSink::take>(std::move(v));
    }
    while (sink.call<&VecSink::get>().get() < want) {
    }
    elapsed = sw.elapsed();
    cx::detail::set_local_fastpath(true);
    cx::exit();
  });
  return elapsed / messages;
}

/// Seconds per message for PE0 -> PE1 sends with the reliable-delivery
/// protocol off/on; `acks` returns the protocol acks counted by trace.
double time_cross_pe(int payload, int messages, bool reliable,
                     std::uint64_t* acks) {
  cx::trace::reset();
  cx::trace::Config tc;
  tc.enabled = true;
  tc.print_summary = false;
  cx::trace::configure(tc);
  double elapsed = 0.0;
  cx::RuntimeConfig cfg;
  cfg.machine.num_pes = 2;
  cfg.machine.faults.reliable = reliable;
  cx::Runtime rt(cfg);
  rt.run([&] {
    auto sink = cx::create_chare<VecSink>(1);
    (void)sink.call<&VecSink::get>().get();
    const long want = static_cast<long>(messages) * payload;
    cxu::Stopwatch sw;
    for (int i = 0; i < messages; ++i) {
      std::vector<double> v(static_cast<std::size_t>(payload), 1.0);
      sink.send<&VecSink::take>(std::move(v));
    }
    while (sink.call<&VecSink::get>().get() < want) {
    }
    elapsed = sw.elapsed();
    cx::exit();
  });
  if (acks != nullptr) *acks = cx::trace::aggregate().ft_acks;
  cx::trace::reset();
  return elapsed / messages;
}

int run_ft_mode(int messages) {
  std::printf(
      "micro_messaging --ft: PE0->PE1 sends with the cx::ft seq+ack\n"
      "reliable-delivery protocol off vs on, %d msgs/case\n\n",
      messages);
  cxu::Table table({"payload doubles", "acks off us/msg", "acks on us/msg",
                    "overhead", "acks off count", "acks on count"});
  for (int payload : {16, 256, 4096}) {
    std::uint64_t acks_off = 0, acks_on = 0;
    const double off =
        time_cross_pe(payload, messages, false, &acks_off) * 1e6;
    const double on =
        time_cross_pe(payload, messages, true, &acks_on) * 1e6;
    table.add_row({std::to_string(payload), cxu::Table::num(off, 2),
                   cxu::Table::num(on, 2), cxu::Table::num(on / off, 2),
                   std::to_string(acks_off), std::to_string(acks_on)});
  }
  table.print();
  std::printf(
      "\nWith the protocol off (the default config) the fast path sends\n"
      "no acks at all -- the 'acks off count' column must read 0. With\n"
      "it on, every app message is acked and retransmit timers arm, the\n"
      "price of surviving injected drops.\n");
  return 0;
}

/// One --wire measurement: PE0 -> PE1 sends of `payload` doubles with
/// the block pool on or off. A warmup phase lets payload blocks and
/// Message objects round-trip sender -> receiver so the measured window
/// sees the pool in steady state; sends are throttled (barrier every 16)
/// so in-flight messages don't inflate the allocation count.
cx::trace::WireStats wire_run(int payload, int messages, bool pooled) {
  cx::wire::set_pool_enabled(pooled);
  cx::trace::WireStats w{};
  cx::RuntimeConfig cfg;
  cfg.machine.num_pes = 2;
  cx::Runtime rt(cfg);
  rt.run([&] {
    auto sink = cx::create_chare<VecSink>(1);
    (void)sink.call<&VecSink::get>().get();
    long sent = 0;
    auto pump = [&](int n) {
      for (int i = 0; i < n; ++i) {
        std::vector<double> v(static_cast<std::size_t>(payload), 1.0);
        sink.send<&VecSink::take>(std::move(v));
        ++sent;
        if (sent % 16 == 0) {
          while (sink.call<&VecSink::get>().get() < sent * payload) {
          }
        }
      }
      while (sink.call<&VecSink::get>().get() < sent * payload) {
      }
    };
    pump(256);  // warm the free lists
    cx::trace::reset_wire_stats();
    pump(messages);
    w = cx::trace::wire_stats();
    cx::exit();
  });
  cx::wire::set_pool_enabled(true);
  return w;
}

int run_wire_mode(int messages) {
  std::printf(
      "micro_messaging --wire: PE0->PE1 sends with the cx::wire block\n"
      "pool off vs on, %d msgs/case (plus completion polling traffic).\n"
      "Counters cover the steady-state window after a 256-msg warmup.\n\n",
      messages);
  cxu::Table table({"payload doubles", "pool", "allocs/send", "bytes/envelope",
                    "hit rate", "sbo envelopes"});
  bool ok = true;
  // 4 doubles packs header+body under the 128-byte inline capacity;
  // 4096 doubles needs a pooled payload block per message.
  for (int payload : {4, 4096}) {
    for (bool pooled : {false, true}) {
      const cx::trace::WireStats w = wire_run(payload, messages, pooled);
      const std::uint64_t allocs = w.buf_allocs + w.msg_allocs;
      const std::uint64_t hits = w.buf_hits + w.msg_hits;
      const double hit_rate =
          allocs + hits == 0 ? 0.0
                             : static_cast<double>(hits) /
                                   static_cast<double>(allocs + hits);
      table.add_row({std::to_string(payload), pooled ? "on" : "off",
                     cxu::Table::num(static_cast<double>(allocs) / messages, 3),
                     cxu::Table::num(static_cast<double>(w.bytes_packed) /
                                         static_cast<double>(w.envelopes),
                                     1),
                     cxu::Table::num(hit_rate * 100.0, 1) + "%",
                     std::to_string(w.sbo_payloads)});
      if (!pooled) continue;
      // The single-pass builder's guarantees, enforced. A case counts
      // as SBO when the app sends themselves packed inline (the
      // sbo_payloads counter exceeds the polling-only traffic).
      const bool sbo = w.sbo_payloads > static_cast<std::uint64_t>(messages);
      if (payload == 4 && !sbo) {
        std::fprintf(stderr,
                     "FAIL: small-payload sends spilled out of inline "
                     "storage (%llu sbo envelopes)\n",
                     static_cast<unsigned long long>(w.sbo_payloads));
        ok = false;
      }
      if (sbo && w.buf_allocs != 0) {
        std::fprintf(stderr,
                     "FAIL: SBO messages allocated %llu heap payload "
                     "blocks (expected 0)\n",
                     static_cast<unsigned long long>(w.buf_allocs));
        ok = false;
      }
      if (!sbo && w.buf_allocs > static_cast<std::uint64_t>(messages)) {
        std::fprintf(stderr,
                     "FAIL: %llu heap payload blocks for %d large messages "
                     "(expected <= 1 per message)\n",
                     static_cast<unsigned long long>(w.buf_allocs), messages);
        ok = false;
      }
    }
  }
  table.print();
  std::printf(
      "\nSmall messages pack into the envelope's inline storage: zero\n"
      "heap payload blocks either way. Large messages take exactly one\n"
      "block; with the pool on, steady-state sends recycle it (hit rate\n"
      "-> 100%%) instead of hitting the system allocator per send.\n");
  return ok ? 0 : 1;
}

// ---- --agg mode ----------------------------------------------------------

/// One group member per PE: sends `msgs` small messages to the next PE
/// in the ring, folds everything it receives into an order-sensitive
/// hash, and contributes the hash when its own stream is complete. The
/// reduction total must be bit-identical with aggregation on and off.
struct AggRing : cx::Chare {
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  long received = 0;
  long expect = -1;  ///< -1 until start() arrives (ring sends can race it)
  cx::Future<double> done;

  void start(cx::CollectionProxy<AggRing> ring, int msgs, int payload,
             cx::Future<double> f) {
    done = f;
    expect = msgs;
    const int next = (cx::my_pe() + 1) % cx::num_pes();
    for (int i = 0; i < msgs; ++i) {
      std::vector<double> v(static_cast<std::size_t>(payload));
      for (int j = 0; j < payload; ++j) {
        v[static_cast<std::size_t>(j)] = i + j * 0.5;
      }
      ring[next].send<&AggRing::recv>(i, std::move(v));
    }
    maybe_finish();
  }

  void recv(int seq, std::vector<double> v) {
    double sum = 0.0;
    for (double x : v) sum += x;
    // Multiply-fold makes the hash order-sensitive: any reordering of
    // the single-source FIFO stream changes the result.
    hash = hash * 1099511628211ull + static_cast<std::uint64_t>(seq) * 31u +
           static_cast<std::uint64_t>(sum);
    ++received;
    maybe_finish();
  }

  void maybe_finish() {
    if (expect >= 0 && received == expect) {
      // Mask to 32 bits so the double-sum reduction stays exact.
      contribute(static_cast<double>(hash & 0xffffffffull),
                 cx::reducer::sum<double>(), cx::cb(done));
    }
  }

  void ready(cx::Future<void> f) { contribute(cx::cb(f)); }
};

struct AggRunResult {
  double makespan = 0.0;     ///< simulated seconds to drain the ring
  std::uint64_t transport = 0;  ///< physical cross-PE wire envelopes
  std::uint64_t batches = 0;
  std::uint64_t agg_msgs = 0;
  double hash_sum = 0.0;     ///< reduction of per-PE payload hashes
};

AggRunResult agg_run(int pes, int msgs, int payload, bool agg_on) {
  const bool was = cx::wire::agg_enabled();
  cx::wire::set_agg_enabled(agg_on);
  AggRunResult r;
  cx::RuntimeConfig cfg;
  cfg.machine.num_pes = pes;
  cfg.machine.backend = cxm::Backend::Sim;
  cx::trace::reset_wire_stats();
  cx::Runtime rt(cfg);
  rt.run([&] {
    auto ring = cx::create_group<AggRing>();
    // Barrier: every member is constructed before the streams start, so
    // the measured window never hits creation-in-flight buffering.
    auto up = cx::make_future<void>();
    ring.broadcast<&AggRing::ready>(up);
    up.get();
    auto f = cx::make_future<double>();
    ring.broadcast<&AggRing::start>(ring, msgs, payload, f);
    r.hash_sum = f.get();
    cx::exit();
  });
  const cx::trace::WireStats w = cx::trace::wire_stats();
  r.transport = w.transport_msgs;
  r.batches = w.agg_batches;
  r.agg_msgs = w.agg_msgs;
  r.makespan = rt.sim_makespan();
  cx::wire::set_agg_enabled(was);
  return r;
}

int run_agg_mode(int messages, const std::string& json) {
  constexpr int kPes = 8;
  constexpr int kPayload = 8;  // doubles per message: a fine-grained send
  std::printf(
      "micro_messaging --agg: %d-PE DES ring, %d fine-grained msgs/PE\n"
      "(%d doubles each), sender-side aggregation off vs on\n\n",
      kPes, messages, kPayload);

  const AggRunResult off = agg_run(kPes, messages, kPayload, false);
  const AggRunResult on = agg_run(kPes, messages, kPayload, true);

  const double total = static_cast<double>(kPes) * messages;
  const double ops_off = total / off.makespan;
  const double ops_on = total / on.makespan;
  const double speedup = ops_on / ops_off;
  const double env_ratio = on.transport > 0
                               ? static_cast<double>(off.transport) /
                                     static_cast<double>(on.transport)
                               : 0.0;
  const bool identical = off.hash_sum == on.hash_sum;
  const double mpb = on.batches > 0 ? static_cast<double>(on.agg_msgs) /
                                          static_cast<double>(on.batches)
                                    : 0.0;

  cxu::Table table({"agg", "sim makespan s", "Mops/s", "wire envelopes",
                    "msgs/batch"});
  table.add_row({"off", cxu::Table::num(off.makespan, 6),
                 cxu::Table::num(ops_off / 1e6, 2),
                 std::to_string(off.transport), "-"});
  table.add_row({"on", cxu::Table::num(on.makespan, 6),
                 cxu::Table::num(ops_on / 1e6, 2),
                 std::to_string(on.transport), cxu::Table::num(mpb, 1)});
  table.print();
  std::printf(
      "\nspeedup %.2fx, %.1fx fewer wire envelopes, result %s\n"
      "Each small send pays the full per-message software cost when sent\n"
      "alone; batched, the envelope cost amortizes over the batch and\n"
      "only a per-item memcpy-scale slice remains.\n",
      speedup, env_ratio, identical ? "identical" : "DIFFERS");
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: aggregation changed the application-visible result "
                 "(off %.0f vs on %.0f)\n",
                 off.hash_sum, on.hash_sum);
  }

  if (!json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\"bench\":\"micro_messaging_agg\",\"cases\":[{\"pes\":%d,"
        "\"messages_per_pe\":%d,\"payload_doubles\":%d,"
        "\"off_makespan_s\":%.9f,\"on_makespan_s\":%.9f,\"speedup\":%.3f,"
        "\"off_envelopes\":%llu,\"on_envelopes\":%llu,"
        "\"envelope_ratio\":%.2f,\"msgs_per_batch\":%.2f,"
        "\"identical\":%s}]}\n",
        kPes, messages, kPayload, off.makespan, on.makespan, speedup,
        static_cast<unsigned long long>(off.transport),
        static_cast<unsigned long long>(on.transport), env_ratio, mpb,
        identical ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json.c_str());
  }
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  cxu::Options opt(argc, argv);
  bench::trace_from_options(opt);
  const int messages = static_cast<int>(opt.get_int("messages", 1000));
  if (opt.get_bool("ft", false)) return run_ft_mode(messages);
  if (opt.get_bool("wire", false)) return run_wire_mode(messages);
  if (opt.get_bool("agg", false)) {
    return run_agg_mode(messages, opt.get_string("json", ""));
  }

  std::printf(
      "micro_messaging: same-PE sends with/without the by-reference\n"
      "fast path (paper SecII-D), %d msgs/case\n\n",
      messages);
  cxu::Table table({"payload doubles", "by-reference us/msg",
                    "serialized us/msg", "speedup"});
  for (int payload : {16, 256, 4096, 65536}) {
    const double fast = time_same_pe(payload, messages, true) * 1e6;
    const double slow = time_same_pe(payload, messages, false) * 1e6;
    table.add_row({std::to_string(payload), cxu::Table::num(fast, 2),
                   cxu::Table::num(slow, 2),
                   cxu::Table::num(slow / fast, 2)});
  }
  table.print();
  std::printf(
      "\nThe by-reference path avoids pack+unpack entirely (zero-copy of\n"
      "the payload, verified by pointer identity in the test suite); its\n"
      "envelope bookkeeping costs more than a small memcpy, so the win\n"
      "shows for large payloads -- the NumPy-array case the paper's\n"
      "optimization targets.\n");
  bench::trace_report();  // covers the last run (64k-double serialized)
  return 0;
}
