// Kernel-level microbenchmarks (google-benchmark): serialization, the
// dynamic Value type, the condition-expression engine, and the numeric
// kernels. These quantify the constant factors behind the model layer's
// per-message overhead (paper §IV-B serialization and §IV-E Cython
// discussion).

#include <benchmark/benchmark.h>

#include "apps/leanmd/leanmd_common.hpp"
#include "apps/stencil/stencil_common.hpp"
#include "model/expr.hpp"
#include "model/value.hpp"
#include "pup/pup.hpp"

namespace {

// ------------------------------------------------------------------ PUP

void BM_PupPackVectorDouble(benchmark::State& state) {
  std::vector<double> v(static_cast<std::size_t>(state.range(0)), 1.5);
  for (auto _ : state) {
    auto bytes = pup::to_bytes(v);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_PupPackVectorDouble)->Arg(64)->Arg(1024)->Arg(16384);

struct Record {
  std::int64_t id = 7;
  std::string name = "a-record-name";
  std::vector<double> values = std::vector<double>(32, 2.0);
  void pup(pup::Er& p) {
    p | id;
    p | name;
    p | values;
  }
};

void BM_PupRoundtripRecord(benchmark::State& state) {
  Record r;
  for (auto _ : state) {
    auto bytes = pup::to_bytes(r);
    auto back = pup::from_bytes<Record>(bytes);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_PupRoundtripRecord);

// ---------------------------------------------------------------- Value

void BM_ValueBoxScalars(benchmark::State& state) {
  for (auto _ : state) {
    cpy::Args args = {cpy::Value(1), cpy::Value(2.5),
                      cpy::Value("method_name")};
    benchmark::DoNotOptimize(args);
  }
}
BENCHMARK(BM_ValueBoxScalars);

void BM_ValuePupArrayFastPath(benchmark::State& state) {
  cpy::Value v = cpy::Value::zeros(static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    auto bytes = pup::to_bytes(v);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_ValuePupArrayFastPath)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ValuePupNestedDict(benchmark::State& state) {
  cpy::Value v = cpy::Value::dict(
      {{"xs", cpy::Value::list({cpy::Value(1), cpy::Value("two"),
                                cpy::Value(3.5)})},
       {"cfg", cpy::Value::dict({{"k", cpy::Value(5)}})}});
  for (auto _ : state) {
    auto bytes = pup::to_bytes(v);
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_ValuePupNestedDict);

// ----------------------------------------------------------------- Expr

void BM_ExprCompile(benchmark::State& state) {
  for (auto _ : state) {
    auto e = cpy::Expr::compile("self.msg_count == len(self.neighbors)");
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_ExprCompile);

void BM_ExprEvalWhenCondition(benchmark::State& state) {
  const auto expr = cpy::Expr::compile("self.iter == iter");
  const cpy::Value self =
      cpy::Value::dict({{"iter", cpy::Value(3)}});
  const std::vector<std::string> params = {"iter", "data"};
  const cpy::Args args = {cpy::Value(3), cpy::Value("payload")};
  for (auto _ : state) {
    const bool ok = expr.test(cpy::make_resolver(self, params, args));
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_ExprEvalWhenCondition);

// -------------------------------------------------------------- kernels

void BM_StencilKernel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  stencil::Geometry g{1, 1, 1, n, n, n};
  stencil::Block b(g, 0, 0, 0);
  for (auto _ : state) {
    b.compute();
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_StencilKernel)->Arg(8)->Arg(16)->Arg(32);

void BM_LJPairForces(benchmark::State& state) {
  leanmd::PhysParams p;
  p.ppc = static_cast<int>(state.range(0));
  const leanmd::Atoms a = leanmd::init_cell(p, 0, 0, 0);
  const leanmd::Atoms b = leanmd::init_cell(p, 1, 0, 0);
  const double shift[3] = {0, 0, 0};
  std::vector<double> fa, fb;
  for (auto _ : state) {
    const double pe = leanmd::lj_pair_forces(p, a.pos, b.pos, shift, fa, fb);
    benchmark::DoNotOptimize(pe);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_LJPairForces)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
