// Dispatch-cost ablation (paper §IV-E): per-message cost of the typed
// core vs the dynamic model layer, same-PE and cross-PE. The cpy/cx gap
// measured here is the calibrated per-message overhead charged to the
// CharmPy series in the figure simulations — the same mechanism (dynamic
// dispatch + boxing + generic serialization) that separates CharmPy from
// Charm++ in the paper.
//
//   ./bench/micro_dispatch [--messages 30000]

#include <cstdio>

#include "bench_common.hpp"
#include "core/charm.hpp"

namespace {

struct Sink : cx::Chare {
  long count = 0;
  void hit(std::int64_t a, double b) {
    count += a;
    (void)b;
  }
  void hit_vec(std::vector<double> v) { count += static_cast<long>(v.size()); }
  long get() { return count; }
};

void register_dyn() {
  static const bool once = [] {
    cpy::DClass cls("md.Sink");
    cls.def("__init__", {}, [](cpy::DChare& self, cpy::Args&) {
      self["count"] = cpy::Value(0);
      return cpy::Value::none();
    });
    cls.def("hit", {"a", "b"}, [](cpy::DChare& self, cpy::Args& a) {
      self["count"] = cpy::Value(self["count"].as_int() + a[0].as_int());
      return cpy::Value::none();
    });
    cls.def("get", {}, [](cpy::DChare& self, cpy::Args&) {
      return self["count"];
    });
    return true;
  }();
  (void)once;
}

double time_typed(int pe, int messages) {
  double elapsed = 0.0;
  cx::RuntimeConfig cfg;
  cfg.machine.num_pes = 2;
  cx::Runtime rt(cfg);
  rt.run([&] {
    auto sink = cx::create_chare<Sink>(pe);
    (void)sink.call<&Sink::get>().get();
    cxu::Stopwatch sw;
    for (int i = 0; i < messages; ++i) sink.send<&Sink::hit>(1, 0.5);
    while (sink.call<&Sink::get>().get() < messages) {
    }
    elapsed = sw.elapsed();
    cx::exit();
  });
  return elapsed;
}

double time_dynamic(int pe, int messages) {
  register_dyn();
  double elapsed = 0.0;
  cx::RuntimeConfig cfg;
  cfg.machine.num_pes = 2;
  cx::Runtime rt(cfg);
  rt.run([&] {
    auto sink = cpy::create_chare("md.Sink", pe);
    (void)sink.call("get").get();
    cxu::Stopwatch sw;
    for (int i = 0; i < messages; ++i) {
      sink.send("hit", {cpy::Value(1), cpy::Value(0.5)});
    }
    while (sink.call("get").get().as_int() < messages) {
    }
    elapsed = sw.elapsed();
    cx::exit();
  });
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  cxu::Options opt(argc, argv);
  const int messages = static_cast<int>(opt.get_int("messages", 30000));

  std::printf("micro_dispatch: per-message cost, %d messages/case\n\n",
              messages);
  cxu::Table table({"path", "typed us/msg", "dynamic us/msg", "dyn/typed"});
  for (int pe : {0, 1}) {
    const double t = time_typed(pe, messages) / messages * 1e6;
    const double d = time_dynamic(pe, messages) / messages * 1e6;
    table.add_row({pe == 0 ? "same-PE (by reference)" : "cross-PE (packed)",
                   cxu::Table::num(t, 3), cxu::Table::num(d, 3),
                   cxu::Table::num(d / t, 2)});
  }
  table.print();
  std::printf(
      "\nThe dynamic/typed gap is the C++ rendering of the CharmPy/Charm++\n"
      "per-message overhead; figure benches charge the measured value.\n");
  return 0;
}
