// When-engine drain throughput: the O(n²) ablation (paper §II-E).
//
// Fills one dynamic chare's when-buffer with n pending messages — half
// "noise" gated on a condition that never fires (`self.blocked == 1`),
// half a cascade gated on `self.next == seq` — then releases the
// cascade with one kick and times the drain. The seed engine re-tested
// every buffered message after every entry method (retry-all), so the
// drain costs O(n²) predicate evaluations; the condition-aware engine
// skips buckets whose dependencies did not change and drains in O(n).
//
// Both modes run in-process (set_when_dirty_tracking toggles the seed's
// retry-all behaviour back on) and both verify that delivery order is
// unchanged: the cascade asserts in-band that message k executes k-th.
//
//   ./bench/micro_when [--pending 10000] [--json BENCH_when.json]

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/when.hpp"
#include "model/cpy.hpp"

namespace {

void register_gate() {
  static const bool once = [] {
    cpy::DClass cls("mw.Gate");
    cls.def("__init__", {}, [](cpy::DChare& self, cpy::Args&) {
      self["blocked"] = cpy::Value(0);
      self["next"] = cpy::Value(0);
      self["count"] = cpy::Value(0);
      self["order_ok"] = cpy::Value(1);
      return cpy::Value::none();
    });
    cls.def("noise", {"x"}, [](cpy::DChare& self, cpy::Args&) {
      self["blocked"] = cpy::Value(0);  // never reached
      return cpy::Value::none();
    });
    cls.when("noise", "self.blocked == 1");
    cls.def("recv", {"seq", "x"}, [](cpy::DChare& self, cpy::Args& a) {
      const std::int64_t seq = a[0].as_int();
      if (seq != self["count"].as_int() + 1) self["order_ok"] = cpy::Value(0);
      self["count"] = cpy::Value(seq);
      self["next"] = cpy::Value(seq + 1);
      return cpy::Value::none();
    });
    cls.when("recv", "self.next == seq");
    cls.def("kick", {}, [](cpy::DChare& self, cpy::Args&) {
      self["next"] = cpy::Value(1);
      return cpy::Value::none();
    });
    cls.def("get", {}, [](cpy::DChare& self, cpy::Args&) {
      return self["count"];
    });
    cls.def("ok", {}, [](cpy::DChare& self, cpy::Args&) {
      return self["order_ok"];
    });
    return true;
  }();
  (void)once;
}

struct DrainResult {
  double seconds = 0.0;
  bool order_ok = false;
  std::uint64_t tests = 0;    ///< predicate evaluations during the drain
  std::uint64_t skipped = 0;  ///< re-tests avoided by the dirty filter
};

/// Buffer n messages (half never-eligible noise, half an ordered
/// cascade), release the cascade, time the drain to completion.
DrainResult run_drain(int pending, bool engine) {
  register_gate();
  cx::set_when_dirty_tracking(engine);
  DrainResult r;
  cx::RuntimeConfig cfg;
  cfg.machine.num_pes = 1;
  cx::Runtime rt(cfg);
  rt.run([&] {
    const int cascade = pending / 2;
    const int noise = pending - cascade;
    auto gate = cpy::create_chare("mw.Gate", 0);
    (void)gate.call("get").get();
    for (int i = 0; i < noise; ++i) {
      gate.send("noise", {cpy::Value(i)});
    }
    for (int i = 1; i <= cascade; ++i) {
      gate.send("recv", {cpy::Value(i), cpy::Value(0)});
    }
    // Round-trip: every message above is buffered before the timer starts.
    (void)gate.call("get").get();
    const cx::trace::WhenEngineStats before = cx::trace::when_stats();
    cxu::Stopwatch sw;
    gate.send("kick", {});
    while (gate.call("get").get().as_int() < cascade) {
    }
    r.seconds = sw.elapsed();
    const cx::trace::WhenEngineStats after = cx::trace::when_stats();
    r.order_ok = gate.call("ok").get().as_int() == 1;
    r.tests = after.tests - before.tests;
    r.skipped = after.skipped - before.skipped;
    cx::exit();
  });
  cx::set_when_dirty_tracking(true);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  cxu::Options opt(argc, argv);
  const int pending = static_cast<int>(opt.get_int("pending", 10000));
  const std::string json = opt.get_string("json", "");

  std::printf(
      "micro_when: drain of a when-buffer with %d pending messages\n"
      "(retry-all = seed behaviour via set_when_dirty_tracking(false))\n\n",
      pending);

  struct Row {
    int n;
    DrainResult naive, engine;
  };
  std::vector<Row> rows;
  for (const int n : {pending / 10, pending}) {
    Row row;
    row.n = n;
    row.naive = run_drain(n, /*engine=*/false);
    row.engine = run_drain(n, /*engine=*/true);
    rows.push_back(row);
  }

  cxu::Table table({"pending", "retry-all s", "engine s", "speedup",
                    "engine tests", "order"});
  bool all_ok = true;
  for (const Row& r : rows) {
    const double speedup = r.naive.seconds / r.engine.seconds;
    const bool ok = r.naive.order_ok && r.engine.order_ok;
    all_ok = all_ok && ok;
    table.add_row({std::to_string(r.n), cxu::Table::num(r.naive.seconds, 4),
                   cxu::Table::num(r.engine.seconds, 4),
                   cxu::Table::num(speedup, 1),
                   std::to_string(r.engine.tests), ok ? "ok" : "VIOLATED"});
  }
  table.print();
  std::printf(
      "\nretry-all re-tests every buffered message per release (O(n^2));\n"
      "the engine skips buckets whose condition deps did not change.\n");

  if (!json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 1;
    }
    std::fprintf(f, "{\"bench\":\"micro_when\",\"cases\":[");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          f,
          "%s{\"pending\":%d,\"retry_all_s\":%.6f,\"engine_s\":%.6f,"
          "\"speedup\":%.2f,\"engine_tests\":%llu,\"engine_skipped\":%llu,"
          "\"order_ok\":%s}",
          i == 0 ? "" : ",", r.n, r.naive.seconds, r.engine.seconds,
          r.naive.seconds / r.engine.seconds,
          static_cast<unsigned long long>(r.engine.tests),
          static_cast<unsigned long long>(r.engine.skipped),
          r.naive.order_ok && r.engine.order_ok ? "true" : "false");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json.c_str());
  }
  return all_ok ? 0 : 1;
}
