// Network-model sensitivity (DESIGN.md): how stable is the Fig. 1 shape
// (cx <= mpi ~ cpy) across plausible network parameters and topologies?
// A simulation-based reproduction is only credible if the headline
// ordering is not an artifact of one parameter choice.
//
//   ./bench/ablation_network [--pes 4096] [--iters 10]

#include <cstdio>
#include <string>
#include <vector>

#include "apps/stencil/stencil_cx.hpp"
#include "apps/stencil/stencil_mpi.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  cxu::Options opt(argc, argv);
  const int pes = static_cast<int>(opt.get_int("pes", 4096));
  const int iters = static_cast<int>(opt.get_int("iters", 10));
  const double overhead = bench::measure_dispatch_overhead();

  stencil::Params p;
  bench::near_cubic(pes, p.geo.bx, p.geo.by, p.geo.bz);
  p.geo.nx = p.geo.ny = p.geo.nz = 24;
  p.iterations = iters;
  p.real_kernel = false;
  p.cell_cost = 2.0e-9;

  struct Case {
    const char* name;
    std::string network;
    double alpha;
    double beta;
  };
  const Case cases[] = {
      {"torus, 2us, 5GB/s (default)", "torus", 2.0e-6, 1.0 / 5.0e9},
      {"torus, 5us, 5GB/s (slow latency)", "torus", 5.0e-6, 1.0 / 5.0e9},
      {"torus, 2us, 1GB/s (slow bw)", "torus", 2.0e-6, 1.0 / 1.0e9},
      {"dragonfly, 1.5us, 8GB/s", "dragonfly", 1.5e-6, 1.0 / 8.0e9},
      {"simple, 2us, 5GB/s", "simple", 2.0e-6, 1.0 / 5.0e9},
  };

  std::printf("ablation_network: fig1 point at %d PEs under different\n",
              pes);
  std::printf("                  network models (%d iterations)\n\n", iters);
  cxu::Table table({"network", "cx ms", "mpi ms", "cpy ms", "cpy/cx",
                    "mpi/cx"});
  for (const auto& c : cases) {
    cxm::MachineConfig machine = bench::blue_waters(pes);
    machine.network = c.network;
    machine.net.alpha = c.alpha;
    machine.net.beta = c.beta;
    auto run_with_iters = [&](auto fn) {
      return bench::slope_time_per_iter(
          [&](int n) {
            stencil::Params q = p;
            q.iterations = n;
            return fn(q);
          },
          iters);
    };
    const double cx_t = run_with_iters(
        [&](const stencil::Params& q) { return stencil::run_cx(q, machine).elapsed; });
    const double mpi_t = run_with_iters(
        [&](const stencil::Params& q) { return stencil::run_mpi(q, machine).elapsed; });
    const double cpy_t = run_with_iters([&](const stencil::Params& q) {
      return stencil::run_cpy(q, machine, "greedy", overhead).elapsed;
    });
    table.add_row({c.name, cxu::Table::num(cx_t * 1e3, 3),
                   cxu::Table::num(mpi_t * 1e3, 3),
                   cxu::Table::num(cpy_t * 1e3, 3),
                   cxu::Table::num(cpy_t / cx_t, 2),
                   cxu::Table::num(mpi_t / cx_t, 2)});
    std::fflush(stdout);
  }
  table.print();
  std::printf("\nexpected: ratios stay in a narrow band across models.\n");
  return 0;
}
