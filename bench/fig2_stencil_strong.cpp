// Figure 2: stencil3d strong scaling on "Cori" (2 KNL nodes, dragonfly),
// 8 -> 128 cores, fixed global grid. Paper: time/step falls ~linearly
// from ~1600 ms to ~110 ms; the three implementations overlap.
//
//   ./bench/fig2_stencil_strong [--grid 256] [--iters 12]

#include <cstdio>
#include <vector>

#include "apps/stencil/stencil_cx.hpp"
#include "apps/stencil/stencil_mpi.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  cxu::Options opt(argc, argv);
  const int grid = static_cast<int>(opt.get_int("grid", 256));
  const int iters = static_cast<int>(opt.get_int("iters", 12));
  // Heavier per-cell cost than fig1: the paper's strong-scaling problem
  // is compute-dominated (1.6 s/step at 8 cores).
  const double cell_cost = opt.get_double("cell_cost", 4.0e-9);

  const double overhead = bench::measure_dispatch_overhead();
  std::printf("fig2: stencil3d strong scaling (dragonfly, %d^3 grid)\n",
              grid);
  std::printf("      %d iterations, modeled kernel, dyn overhead %.2f us\n\n",
              iters, overhead * 1e6);

  cxu::Table table({"cores", "charm++ (cx) ms", "mpi ms",
                    "charmpy (cpy) ms", "speedup vs 8 (cx)"});
  double base = 0.0;
  for (int pes : std::vector<int>{8, 16, 32, 64, 128}) {
    stencil::Params p;
    bench::near_cubic(pes, p.geo.bx, p.geo.by, p.geo.bz);
    p.geo.nx = grid / p.geo.bx;
    p.geo.ny = grid / p.geo.by;
    p.geo.nz = grid / p.geo.bz;
    p.iterations = iters;
    p.real_kernel = false;
    p.cell_cost = cell_cost;

    const double cx_t = bench::slope_time_per_iter(
        [&](int n) {
          stencil::Params q = p;
          q.iterations = n;
          return stencil::run_cx(q, bench::cori(pes)).elapsed;
        },
        iters);
    const double mpi_t = bench::slope_time_per_iter(
        [&](int n) {
          stencil::Params q = p;
          q.iterations = n;
          return stencil::run_mpi(q, bench::cori(pes)).elapsed;
        },
        iters);
    const double cpy_t = bench::slope_time_per_iter(
        [&](int n) {
          stencil::Params q = p;
          q.iterations = n;
          return stencil::run_cpy(q, bench::cori(pes), "greedy", overhead)
              .elapsed;
        },
        iters);
    if (pes == 8) base = cx_t;

    table.add_row({std::to_string(pes), cxu::Table::num(cx_t * 1e3, 3),
                   cxu::Table::num(mpi_t * 1e3, 3),
                   cxu::Table::num(cpy_t * 1e3, 3),
                   cxu::Table::num(base / cx_t, 2)});
    std::fflush(stdout);
  }
  table.print();
  std::printf(
      "\nexpected shape (paper fig. 2): ~linear strong scaling (speedup\n"
      "~16x at 128 cores); the three series overlap.\n");
  return 0;
}
