// Reduction microbenchmark (paper §II-F): completion latency of
// asynchronous reductions vs collection size, plus multiple reductions
// in flight.
//
//   ./bench/micro_reduction [--rounds 200]

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/charm.hpp"

namespace {

struct Red : cx::Chare {
  void go(cx::Callback target) {
    contribute(1.0, cx::reducer::sum<double>(), target);
  }
  void go_vec(cx::Callback target) {
    std::vector<double> v(64, 1.0);
    contribute(v, cx::reducer::sum<std::vector<double>>(), target);
  }
};

double time_reductions(int elements, int rounds, bool vec) {
  double elapsed = 0.0;
  cx::RuntimeConfig cfg;
  cfg.machine.num_pes = 4;
  cx::Runtime rt(cfg);
  rt.run([&] {
    auto arr = cx::create_array<Red>({elements});
    // warm up (also ensures creation completed)
    {
      auto f = cx::make_future<double>();
      arr.broadcast<&Red::go>(cx::cb(f));
      (void)f.get();
    }
    cxu::Stopwatch sw;
    for (int r = 0; r < rounds; ++r) {
      if (vec) {
        auto f = cx::make_future<std::vector<double>>();
        arr.broadcast<&Red::go_vec>(cx::cb(f));
        (void)f.get();
      } else {
        auto f = cx::make_future<double>();
        arr.broadcast<&Red::go>(cx::cb(f));
        (void)f.get();
      }
    }
    elapsed = sw.elapsed();
    cx::exit();
  });
  return elapsed / rounds;
}

}  // namespace

int main(int argc, char** argv) {
  cxu::Options opt(argc, argv);
  const int rounds = static_cast<int>(opt.get_int("rounds", 100));

  std::printf("micro_reduction: broadcast + sum-reduction round trip,\n");
  std::printf("                 4 PEs, %d rounds/case\n\n", rounds);
  cxu::Table table(
      {"elements", "scalar sum us", "64-vector sum us"});
  for (int elements : {8, 32, 128, 512}) {
    const double s = time_reductions(elements, rounds, false) * 1e6;
    const double v = time_reductions(elements, rounds, true) * 1e6;
    table.add_row({std::to_string(elements), cxu::Table::num(s, 1),
                   cxu::Table::num(v, 1)});
  }
  table.print();
  return 0;
}
