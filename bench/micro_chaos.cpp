// Chaos soak (self-healing tier): replay seeded fault schedules against
// the stencil figure workload on the DES backend and report
// detection-latency and MTTR statistics from the trace counters, plus a
// digest check against the fault-free run.
//
//   ./bench/micro_chaos [--seed 11] [--iters 10] [--json]
//
// With --json, one JSON object per schedule is printed on stdout:
//   {"schedule":..,"seed":..,"digest_ok":..,"failures":..,
//    "detections":..,"mean_detect_s":..,"recoveries":..,"mean_mttr_s":..,
//    "slowdown":..}

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/stencil/stencil_cx.hpp"
#include "bench_common.hpp"
#include "ft/ft.hpp"

namespace {

struct SoakRun {
  stencil::Result result;
  std::uint64_t digest = 0;
  cx::trace::Counters counters;
};

SoakRun run_one(const cxm::MachineConfig& machine, int iters) {
  cx::trace::reset();
  cx::trace::Config tc;
  tc.enabled = true;
  tc.print_summary = false;
  cx::trace::configure(tc);
  stencil::Params p;  // default 2x2x2 blocks of 8x8x8 cells
  p.iterations = iters;
  p.real_kernel = true;
  p.ckpt_every = 2;
  SoakRun out;
  out.result = stencil::run_cx(p, machine);
  out.digest = cx::ft::checkpoint_digest();
  out.counters = cx::trace::aggregate();
  cx::trace::reset();
  return out;
}

struct Schedule {
  std::string name;
  std::vector<cx::ft::ScriptedFault> script;  // times are makespan fractions
  double heartbeat_frac = 0.0;  // >0: interval as a fraction of makespan
};

// The real-kernel workload charges *measured* kernel times to the
// virtual clock, so reduction arrival order (and with it the rounding
// of the non-associative checksum sum) can wobble by an ULP between
// runs. The digest is count-based and must match exactly; the checksum
// gets the same 4-ULP tolerance gtest's EXPECT_DOUBLE_EQ applies.
bool checksum_close(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  if ((ua >> 63) != (ub >> 63)) return a == b;
  const std::uint64_t d = ua > ub ? ua - ub : ub - ua;
  return d <= 4;
}

cx::ft::ScriptedFault at(double frac, int pe, cx::ft::FailureKind kind) {
  cx::ft::ScriptedFault f;
  f.pe = pe;
  f.at = frac;  // scaled by the measured makespan before the run
  f.kind = kind;
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  cxu::Options opt(argc, argv);
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 11));
  const int iters = static_cast<int>(opt.get_int("iters", 10));
  const bool json = opt.has("json");

  cxm::MachineConfig base;
  base.num_pes = 4;
  base.backend = cxm::Backend::Sim;

  const SoakRun clean = run_one(base, iters);
  if (!json) {
    std::printf("micro_chaos: fault-free makespan %.6fs, digest %llu\n\n",
                clean.result.elapsed,
                static_cast<unsigned long long>(clean.digest));
  }

  using cx::ft::FailureKind;
  const std::vector<Schedule> schedules = {
      {"single-crash", {at(0.4, 2, FailureKind::Crashed)}},
      {"double-crash",
       {at(0.3, 1, FailureKind::Crashed), at(0.6, 3, FailureKind::Crashed)}},
      {"coordinator-crash", {at(0.4, 0, FailureKind::Crashed)}},
      {"silent-hang", {at(0.4, 2, FailureKind::Hung)}, 0.1},
      {"crash-revive-crash",
       {at(0.3, 2, FailureKind::Crashed), at(2.2, 2, FailureKind::Crashed)}},
  };

  cxu::Table table({"schedule", "digest", "failures", "detect", "mean det s",
                    "recover", "mean MTTR s", "slowdown"});
  bool all_ok = true;
  for (const auto& s : schedules) {
    cxm::MachineConfig m = base;
    m.faults.seed = seed;
    m.faults.auto_recover = true;
    for (const auto& f : s.script) {
      auto scaled = f;
      scaled.at = f.at * clean.result.elapsed;
      m.faults.script.push_back(scaled);
    }
    if (s.heartbeat_frac > 0.0) {
      m.faults.heartbeat_s = s.heartbeat_frac * clean.result.elapsed;
      m.faults.hb_threshold = 3.0;
    }
    const SoakRun r = run_one(m, iters);
    const auto& c = r.counters;
    const bool digest_ok = r.digest == clean.digest &&
                           checksum_close(r.result.checksum,
                                          clean.result.checksum);
    all_ok = all_ok && digest_ok;
    const double mean_detect =
        c.ft_detections > 0 ? c.ft_detect_latency_s / c.ft_detections : 0.0;
    const double mean_mttr =
        c.ft_recoveries > 0 ? c.ft_mttr_s / c.ft_recoveries : 0.0;
    const double slowdown = r.result.elapsed / clean.result.elapsed;
    if (json) {
      std::printf(
          "{\"schedule\":\"%s\",\"seed\":%llu,\"digest_ok\":%s,"
          "\"failures\":%llu,\"detections\":%llu,\"mean_detect_s\":%.9f,"
          "\"recoveries\":%llu,\"mean_mttr_s\":%.9f,\"slowdown\":%.3f}\n",
          s.name.c_str(), static_cast<unsigned long long>(seed),
          digest_ok ? "true" : "false",
          static_cast<unsigned long long>(c.ft_failures),
          static_cast<unsigned long long>(c.ft_detections), mean_detect,
          static_cast<unsigned long long>(c.ft_recoveries), mean_mttr,
          slowdown);
    } else {
      table.add_row({s.name, digest_ok ? "ok" : "MISMATCH",
                     std::to_string(c.ft_failures),
                     std::to_string(c.ft_detections),
                     cxu::Table::num(mean_detect, 7),
                     std::to_string(c.ft_recoveries),
                     cxu::Table::num(mean_mttr, 7),
                     cxu::Table::num(slowdown, 2)});
    }
  }
  if (!json) {
    table.print();
    std::printf(
        "\nEvery schedule must land back on the fault-free checksum and\n"
        "checkpoint digest; 'detect' counts heartbeat declarations (crash\n"
        "schedules are detected by the injector, so the column is 0).\n");
  }
  return all_ok ? 0 : 1;
}
