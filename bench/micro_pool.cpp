// Pool throughput A/B (paper §III): the per-task request/grant protocol
// of the paper vs the chunked + work-stealing task engine, on the
// simulated backend where messaging costs are modeled deterministically.
//
// The OFF case forces the engine back to the seed's shape — one task
// per grant, no stealing, no decoupled beats — so the master handles
// two envelopes per task. The ON case runs the real engine: adaptive
// chunked grants, batched results, randomized stealing. Task costs are
// skewed (the first eighth of the ids cost 2.5 µs, the rest 0.5 µs) so a
// naive static split leaves a straggler and the stealing path must
// fire to win.
//
// Both cases must produce byte-identical ordered result sets; the
// process exits nonzero on any mismatch.
//
//   ./bench/micro_pool [--pes 8] [--tasks 100000] [--json [path]]
//                      [--pool-chunk N|auto] [--pool-steal on|off]
//                      [--pool-max-inflight N] [--pool-quantum N]
//                      [--pool-batch N] [--pool-beat-ms MS]
//                      [--pool-steal-retries N]
//
// --json with no value writes BENCH_pool.json. The --pool-* flags
// shape the ON case (the OFF case is always the degraded baseline).

#include <cstdint>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "pool/pool.hpp"

namespace {

struct CaseResult {
  double elapsed = 0.0;     ///< virtual seconds (PE 0 clock around map)
  double tasks_per_s = 0.0;
  std::uint64_t hash = 0;   ///< FNV-1a over the ordered result ints
  std::uint64_t bad = 0;    ///< missing / non-integer results
  cx::trace::PoolStats stats;
};

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

CaseResult run_case(int pes, int ntasks, const cxpool::PoolConfig& pc) {
  cxpool::configure(pc);
  CaseResult r;
  cx::RuntimeConfig cfg;
  cfg.machine.num_pes = pes;
  cfg.machine.backend = cxm::Backend::Sim;
  cx::Runtime rt(cfg);
  rt.run([&] {
    cxpool::Pool pool;
    cpy::List items;
    items.reserve(static_cast<std::size_t>(ntasks));
    for (int i = 0; i < ntasks; ++i) items.emplace_back(i);
    const double t0 = cx::now();
    const cpy::Value out = pool.map("skew", pes - 1, items);
    r.elapsed = cx::now() - t0;
    r.hash = 0xcbf29ce484222325ULL;
    if (cxpool::is_error(out) ||
        out.length() != static_cast<std::uint64_t>(ntasks)) {
      r.bad = static_cast<std::uint64_t>(ntasks);
    } else {
      for (const cpy::Value& v : out.as_list()) {
        if (v.kind() != cpy::Kind::Int) {
          ++r.bad;
          continue;
        }
        r.hash = fnv1a(r.hash, static_cast<std::uint64_t>(v.as_int()));
      }
    }
    cx::exit();
  });
  r.stats = cx::trace::pool_stats();
  r.tasks_per_s = r.elapsed > 0 ? ntasks / r.elapsed : 0.0;
  return r;
}

void json_case(std::FILE* f, const char* name, const CaseResult& r) {
  const cx::trace::PoolStats& s = r.stats;
  std::fprintf(
      f,
      "\"%s\":{\"tasks_per_s\":%.0f,\"elapsed_s\":%.6f,"
      "\"grants\":%llu,\"mean_chunk\":%.1f,\"max_chunk\":%llu,"
      "\"steal_attempts\":%llu,\"steal_hits\":%llu,\"stolen_tasks\":%llu,"
      "\"result_batches\":%llu,\"beats\":%llu,"
      "\"mean_task_us\":%.3f,\"p99_task_us\":%.3f}",
      name, r.tasks_per_s, r.elapsed,
      static_cast<unsigned long long>(s.grants), s.mean_chunk(),
      static_cast<unsigned long long>(s.max_chunk),
      static_cast<unsigned long long>(s.steal_attempts),
      static_cast<unsigned long long>(s.steal_hits),
      static_cast<unsigned long long>(s.stolen_tasks),
      static_cast<unsigned long long>(s.result_batches),
      static_cast<unsigned long long>(s.beats), s.mean_task_s() * 1e6,
      s.p99_task_s() * 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  // Declared booleans never swallow a following positional, so
  // `micro_pool --pool-steal 100000` keeps its task count.
  cxu::Options opt(argc, argv, {"pool-steal", "trace"});
  bench::trace_from_options(opt);
  // Strict validation: a malformed --pool-* or --tasks value aborts with
  // a message instead of silently running a different experiment.
  cxpool::configure_from_options(opt);
  const int pes = static_cast<int>(opt.get_int("pes", 8));
  const int tasks = static_cast<int>(opt.get_int("tasks", 100000));

  const int64_t fat = tasks / 8;
  cxpool::register_function("skew", [fat](const cpy::Value& x) {
    const std::int64_t id = x.as_int();
    cx::compute(id < fat ? 2.5e-6 : 0.5e-6);
    return cpy::Value(id * id % 1000003);
  });

  std::printf(
      "micro_pool: %d tasks on %d simulated PEs (skewed grain: first "
      "eighth 2.5us, rest 0.5us)\n\n",
      tasks, pes);

  // OFF: the seed's per-task protocol (1-task grants, no stealing, no
  // decoupled beats). ON: whatever the --pool-* flags say (defaults:
  // guided chunks + stealing + beats).
  const cxpool::PoolConfig on = cxpool::config();
  cxpool::PoolConfig off = on;
  off.chunk = 1;
  off.steal = false;
  off.beat_s = 0.0;
  const CaseResult roff = run_case(pes, tasks, off);
  const CaseResult ron = run_case(pes, tasks, on);

  const double speedup =
      ron.tasks_per_s > 0 ? ron.tasks_per_s / roff.tasks_per_s : 0.0;
  const bool identical =
      roff.hash == ron.hash && roff.bad == 0 && ron.bad == 0;

  cxu::Table table({"case", "tasks/s", "elapsed s", "grants", "mean chunk",
                    "steals", "stolen", "batches"});
  for (const auto* c : {&roff, &ron}) {
    const cx::trace::PoolStats& s = c->stats;
    table.add_row({c == &roff ? "per-task (off)" : "chunked+steal (on)",
                   cxu::Table::num(c->tasks_per_s, 0),
                   cxu::Table::num(c->elapsed, 4),
                   std::to_string(s.grants),
                   cxu::Table::num(s.mean_chunk(), 1),
                   std::to_string(s.steal_hits),
                   std::to_string(s.stolen_tasks),
                   std::to_string(s.result_batches)});
  }
  table.print();
  std::printf("\nspeedup: %.2fx   results identical: %s   steal hits: %llu\n",
              speedup, identical ? "yes" : "NO",
              static_cast<unsigned long long>(ron.stats.steal_hits));

  if (opt.has("json")) {
    std::string path = opt.get_string("json", "");
    if (path.empty()) path = "BENCH_pool.json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::fprintf(f, "{\"bench\":\"micro_pool\",\"pes\":%d,\"tasks\":%d,",
                 pes, tasks);
    json_case(f, "off", roff);
    std::fputc(',', f);
    json_case(f, "on", ron);
    std::fprintf(f, ",\"speedup\":%.3f,\"identical\":%s}\n", speedup,
                 identical ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

  bench::trace_report();
  if (!identical) {
    std::fprintf(stderr,
                 "micro_pool: RESULT MISMATCH (off %016llx on %016llx, "
                 "bad off=%llu on=%llu)\n",
                 static_cast<unsigned long long>(roff.hash),
                 static_cast<unsigned long long>(ron.hash),
                 static_cast<unsigned long long>(roff.bad),
                 static_cast<unsigned long long>(ron.bad));
    return 1;
  }
  return 0;
}
