// Pool throughput (paper §III): tasks/second of the master-worker
// distributed map vs worker count and task grain.
//
//   ./bench/micro_pool [--tasks 2000]

#include <cstdio>

#include "bench_common.hpp"
#include "pool/pool.hpp"

int main(int argc, char** argv) {
  cxu::Options opt(argc, argv);
  bench::trace_from_options(opt);
  const int tasks = static_cast<int>(opt.get_int("tasks", 2000));

  cxpool::register_function("noop", [](const cpy::Value& x) { return x; });
  cxpool::register_function("grain", [](const cpy::Value& x) {
    cx::compute(20e-6);
    return x;
  });

  std::printf("micro_pool: distributed map throughput, %d tasks/job\n\n",
              tasks);
  cxu::Table table({"workers", "noop tasks/s", "20us-task tasks/s",
                    "alive", "heartbeats"});
  for (int pes : {2, 3, 5}) {
    double noop_rate = 0.0, grain_rate = 0.0;
    std::size_t alive = 0;
    long long heartbeats = 0;
    cx::RuntimeConfig cfg;
    cfg.machine.num_pes = pes;
    cx::Runtime rt(cfg);
    rt.run([&] {
      cxpool::Pool pool;
      cpy::List items;
      for (int i = 0; i < tasks; ++i) items.emplace_back(i);
      {
        cxu::Stopwatch sw;
        (void)pool.map("noop", pes - 1, items);
        noop_rate = tasks / sw.elapsed();
      }
      {
        cxu::Stopwatch sw;
        (void)pool.map("grain", pes - 1, items);
        grain_rate = tasks / sw.elapsed();
      }
      // Liveness report: heartbeat counters piggyback on the task
      // requests the workers sent anyway (zero extra messages).
      const cpy::Value live = pool.liveness();
      alive = live.as_dict().size();
      for (const auto& [pe, hb] : live.as_dict()) {
        heartbeats += hb.as_int();
      }
      cx::exit();
    });
    table.add_row({std::to_string(pes - 1), cxu::Table::num(noop_rate, 0),
                   cxu::Table::num(grain_rate, 0), std::to_string(alive),
                   std::to_string(heartbeats)});
  }
  table.print();
  std::printf(
      "\nnoop throughput is master-limited (one getTask round trip per\n"
      "task). On a single-core host the threaded backend interleaves\n"
      "rather than parallelizes, so grained throughput stays flat.\n");
  bench::trace_report();  // covers the last run (5-PE case)
  return 0;
}
