#include "bench_common.hpp"

#include "core/charm.hpp"

namespace bench {

namespace {

struct TypedEcho : cx::Chare {
  long count = 0;
  void hit(std::int64_t a, double b) {
    count += a;
    (void)b;
  }
  long get() { return count; }
};

void register_dyn_echo() {
  static const bool once = [] {
    cpy::DClass cls("bench.Echo");
    cls.def("__init__", {}, [](cpy::DChare& self, cpy::Args&) {
      self["count"] = cpy::Value(0);
      return cpy::Value::none();
    });
    cls.def("hit", {"a", "b"}, [](cpy::DChare& self, cpy::Args& a) {
      self["count"] = cpy::Value(self["count"].as_int() + a[0].as_int());
      return cpy::Value::none();
    });
    cls.def("get", {}, [](cpy::DChare& self, cpy::Args&) {
      return self["count"];
    });
    return true;
  }();
  (void)once;
}

}  // namespace

double measure_dispatch_overhead() {
  register_dyn_echo();
  constexpr int kMessages = 20000;
  double typed_s = 0.0, dyn_s = 0.0;

  cx::RuntimeConfig cfg;
  cfg.machine.num_pes = 1;
  cfg.machine.backend = cxm::Backend::Threaded;
  cx::Runtime rt(cfg);
  rt.run([&] {
    auto typed = cx::create_chare<TypedEcho>(0);
    (void)typed.call<&TypedEcho::get>().get();  // ensure created
    cxu::Stopwatch sw;
    for (int i = 0; i < kMessages; ++i) {
      typed.send<&TypedEcho::hit>(1, 0.5);
    }
    while (typed.call<&TypedEcho::get>().get() < kMessages) {
    }
    typed_s = sw.elapsed();

    auto dyn = cpy::create_chare("bench.Echo", 0);
    (void)dyn.call("get").get();
    sw.reset();
    for (int i = 0; i < kMessages; ++i) {
      dyn.send("hit", {cpy::Value(1), cpy::Value(0.5)});
    }
    while (dyn.call("get").get().as_int() < kMessages) {
    }
    dyn_s = sw.elapsed();
    cx::exit();
  });
  const double per_msg = (dyn_s - typed_s) / kMessages;
  return per_msg > 0 ? per_msg : 0.0;
}

}  // namespace bench
