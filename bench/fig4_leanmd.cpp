// Figure 4: LeanMD strong scaling on "Blue Waters", 2048 -> 16384 cores.
// Paper: near-linear scaling; CharmPy within ~20% of Charm++ — a larger
// gap than stencil3d because the fine-grained decomposition (hundreds of
// chares/PE) stresses per-message runtime overhead.
//
// Defaults use a 20^3 cell grid (~120k chares with computes) and the
// 2048..8192 core axis; pass --full for the paper's 2048..16384 axis
// (and --cells 24 or 32 for larger runs).
//
//   ./bench/fig4_leanmd [--full] [--cells 20] [--steps 3] [--ppc 250]

#include <cstdio>
#include <vector>

#include "apps/leanmd/leanmd_cpy.hpp"
#include "apps/leanmd/leanmd_cx.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  cxu::Options opt(argc, argv);
  bench::trace_from_options(opt);
  const int cells = static_cast<int>(opt.get_int("cells", 20));
  const int steps = static_cast<int>(opt.get_int("steps", 3));
  const int ppc = static_cast<int>(opt.get_int("ppc", 250));

  const double overhead = bench::measure_dispatch_overhead();
  const long long nchares = 15LL * cells * cells * cells;
  std::printf("fig4: LeanMD strong scaling (torus), %d^3 cells, %d\n",
              cells, ppc);
  std::printf("      atoms/cell (%lld atoms, %lld chares), %d steps,\n",
              static_cast<long long>(ppc) * cells * cells * cells, nchares,
              steps);
  std::printf("      modeled kernel, dyn overhead %.2f us/message\n\n",
              overhead * 1e6);

  cxu::Table table({"cores", "chares/PE", "charm++ (cx) ms/step",
                    "charmpy (cpy) ms/step", "cpy/cx"});
  std::vector<int> cores = {2048, 4096, 8192};
  if (opt.get_bool("full", false)) cores.push_back(16384);
  for (int pes : cores) {
    leanmd::PhysParams p;
    p.cx = p.cy = p.cz = cells;
    p.ppc = ppc;
    p.steps = steps;
    p.migrate_every = 0;  // paper measures the force-step pipeline
    p.real = false;
    p.pair_cost = 4.0e-12;  // seconds per atom pair

    const double cx_t = bench::slope_time_per_iter(
        [&](int n) {
          leanmd::PhysParams q = p;
          q.steps = n;
          return leanmd::run_cx(q, bench::blue_waters(pes)).elapsed;
        },
        steps);
    const double cpy_t = bench::slope_time_per_iter(
        [&](int n) {
          leanmd::PhysParams q = p;
          q.steps = n;
          return leanmd::run_cpy(q, bench::blue_waters(pes), overhead)
              .elapsed;
        },
        steps);

    table.add_row(
        {std::to_string(pes),
         cxu::Table::num(static_cast<double>(nchares) / pes, 1),
         cxu::Table::num(cx_t * 1e3, 3), cxu::Table::num(cpy_t * 1e3, 3),
         cxu::Table::num(cpy_t / cx_t, 3)});
    std::fflush(stdout);
  }
  table.print();
  std::printf(
      "\nexpected shape (paper fig. 4): near-linear scaling; cpy within\n"
      "~20%% of cx, a larger gap than stencil3d (fine-grained chares).\n");
  bench::trace_report();  // covers the last (largest) cpy sweep point
  return 0;
}
