// Section-multicast microbenchmark: DES A/B of delivering R rounds to a
// 16-member subset of a 64-element array on 64 PEs.
//
//   A ("section"):   SectionProxy::broadcast_done — the multicast rides
//                    a k-ary spanning tree over only the PEs hosting
//                    members, and completion needs one credit per
//                    member.
//   B ("broadcast"): CollectionProxy::broadcast_done + an index filter
//                    in the entry method — every PE gets an envelope
//                    and every element sends a completion credit, even
//                    the 48 that ignore the message.
//
// Both modes must produce byte-identical per-element state digests
// (delivery exactly once per member per round, in round order); the
// section path must cost >=2x fewer wire envelopes (~3.9x expected:
// ~33 vs ~128 per round). The process exits nonzero if either gate
// fails, so CI can run it directly.
//
//   ./bench/micro_section [--pes 64] [--elements 64] [--stride 4]
//                         [--rounds 32] [--section-tree-arity 4]
//                         [--json [BENCH_section.json]]

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/charm.hpp"
#include "core/spantree.hpp"
#include "trace/trace.hpp"

namespace {

struct BCell : cx::Chare {
  std::uint64_t state = 0;

  void pup(pup::Er& p) override { p | state; }

  // Order-sensitive state fold: a missed, duplicated, or reordered
  // delivery changes the digest.
  void hit(int round) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL +
            static_cast<std::uint64_t>(round);
  }
  void hit_if(int stride, int round) {
    if (this_index()[0] % stride == 0) hit(round);
  }
  std::uint64_t get_state() { return state; }
};

struct ModeResult {
  std::uint64_t envelopes = 0;  ///< wire envelopes across the timed rounds
  std::uint64_t digest = 0;     ///< FNV-1a over all element states
  double makespan = 0.0;        ///< virtual seconds (whole run)
};

ModeResult run_mode(bool section_mode, int pes, int elements, int stride,
                    int rounds) {
  cx::RuntimeConfig cfg;
  cfg.machine.num_pes = pes;
  cfg.machine.backend = cxm::Backend::Sim;
  cx::Runtime rt(cfg);
  ModeResult res;
  rt.run([&] {
    auto arr = cx::create_array<BCell>({elements});
    std::vector<cx::Index> members;
    for (int i = 0; i < elements; i += stride) members.push_back(cx::Index(i));
    auto s = arr.section(members);
    // Warm-up round (same op as the timed loop, so the digests stay
    // comparable across modes): settles creation, the section build,
    // and any location traffic outside the measurement window.
    if (section_mode) {
      s.broadcast_done<&BCell::hit>(0).get();
    } else {
      arr.broadcast_done<&BCell::hit_if>(stride, 0).get();
    }
    const std::uint64_t before = cx::trace::wire_stats().envelopes;
    for (int r = 1; r <= rounds; ++r) {
      if (section_mode) {
        s.broadcast_done<&BCell::hit>(r).get();
      } else {
        arr.broadcast_done<&BCell::hit_if>(stride, r).get();
      }
    }
    res.envelopes = cx::trace::wire_stats().envelopes - before;
    std::uint64_t h = 1469598103934665603ULL;
    for (int i = 0; i < elements; ++i) {
      const std::uint64_t v = arr[i].call<&BCell::get_state>().get();
      h = (h ^ v) * 1099511628211ULL;
    }
    res.digest = h;
    cx::exit();
  });
  res.makespan = rt.sim_makespan();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  cxu::Options opt(argc, argv);
  const int pes = static_cast<int>(opt.get_int("pes", 64));
  const int elements = static_cast<int>(opt.get_int("elements", 64));
  const int stride = static_cast<int>(opt.get_int("stride", 4));
  const int rounds = static_cast<int>(opt.get_int("rounds", 32));
  cx::tree::set_section_arity(
      static_cast<int>(opt.get_int("section-tree-arity", 4)));
  const int members = (elements + stride - 1) / stride;

  const ModeResult sect = run_mode(true, pes, elements, stride, rounds);
  const ModeResult bcast = run_mode(false, pes, elements, stride, rounds);

  const double ratio =
      sect.envelopes > 0
          ? static_cast<double>(bcast.envelopes) /
                static_cast<double>(sect.envelopes)
          : 0.0;
  const bool identical = sect.digest == bcast.digest && sect.digest != 0;

  std::printf("micro_section: %d-member section of %d elements on %d PEs, "
              "%d rounds\n\n", members, elements, pes, rounds);
  cxu::Table table({"mode", "envelopes", "per round", "virtual s"});
  table.add_row({"section multicast", std::to_string(sect.envelopes),
                 cxu::Table::num(static_cast<double>(sect.envelopes) / rounds, 1),
                 cxu::Table::num(sect.makespan, 6)});
  table.add_row({"broadcast+filter", std::to_string(bcast.envelopes),
                 cxu::Table::num(static_cast<double>(bcast.envelopes) / rounds, 1),
                 cxu::Table::num(bcast.makespan, 6)});
  table.print();
  std::printf("\nenvelope ratio %.2fx, digests %s\n", ratio,
              identical ? "identical" : "DIFFER");

  if (opt.has("json")) {
    std::string path = opt.get_string("json", "");
    if (path.empty()) path = "BENCH_section.json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\"pes\":%d,\"elements\":%d,\"members\":%d,\"rounds\":%d,\n"
        " \"section\":{\"envelopes\":%" PRIu64 ",\"makespan_s\":%.9f},\n"
        " \"broadcast\":{\"envelopes\":%" PRIu64 ",\"makespan_s\":%.9f},\n"
        " \"envelope_ratio\":%.4f,\"identical\":%s}\n",
        pes, elements, members, rounds, sect.envelopes, sect.makespan,
        bcast.envelopes, bcast.makespan, ratio, identical ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

  if (!identical) {
    std::fprintf(stderr, "micro_section: FAILED — modes diverged\n");
    return 1;
  }
  if (ratio < 2.0) {
    std::fprintf(stderr,
                 "micro_section: FAILED — envelope ratio %.2fx < 2x\n",
                 ratio);
    return 1;
  }
  return 0;
}
