#pragma once
// PUP — pack/unpack serialization framework, modeled on Charm++'s PUP.
//
// One traversal function serves sizing, packing and unpacking:
//
//   struct Particle {
//     double x, y, z;
//     std::vector<int> bonds;
//     void pup(pup::Er& p) { p | x; p | y; p | z; p | bonds; }
//   };
//
//   auto bytes = pup::to_bytes(particle);          // size + pack
//   Particle q = pup::from_bytes<Particle>(bytes); // unpack
//
// Supported out of the box: arithmetic types and enums, std::string,
// std::vector, std::array, std::pair, std::tuple, std::map,
// std::unordered_map, std::set, std::optional, and any type with a
// `void pup(pup::Er&)` member. Contiguous trivially-copyable vectors
// are packed with a single memcpy (the NumPy-array fast path of the
// paper's serialization layer builds on this).
//
// Wire format caveat: fields are packed host-endian and host-width
// (raw memcpy, no swapping). Within one process that is invisible; the
// multi-process SocketMachine backend guards it with a connection
// handshake (src/net/frame.hpp) that rejects peers whose endianness or
// primitive widths differ, so mismatched hosts fail loudly at wireup
// instead of silently mis-decoding payloads.

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pup {

enum class Mode { Sizing, Packing, Unpacking };

/// Abstract pup-er. Subclasses implement raw byte traversal.
class Er {
 public:
  virtual ~Er() = default;

  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] bool sizing() const noexcept { return mode_ == Mode::Sizing; }
  [[nodiscard]] bool packing() const noexcept {
    return mode_ == Mode::Packing;
  }
  [[nodiscard]] bool unpacking() const noexcept {
    return mode_ == Mode::Unpacking;
  }

  /// Traverse `n` raw bytes at `p` (read on pack, write on unpack).
  virtual void bytes(void* p, std::size_t n) = 0;

 protected:
  explicit Er(Mode m) : mode_(m) {}

 private:
  Mode mode_;
};

/// Pass one: compute the packed size.
class Sizer final : public Er {
 public:
  Sizer() : Er(Mode::Sizing) {}
  void bytes(void*, std::size_t n) override { size_ += n; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  std::size_t size_ = 0;
};

/// Pass two: copy into a caller-provided buffer.
class Packer final : public Er {
 public:
  Packer(void* buf, std::size_t cap)
      : Er(Mode::Packing), buf_(static_cast<std::byte*>(buf)), cap_(cap) {}
  void bytes(void* p, std::size_t n) override {
    if (off_ + n > cap_) throw std::length_error("pup::Packer overflow");
    std::memcpy(buf_ + off_, p, n);
    off_ += n;
  }
  [[nodiscard]] std::size_t offset() const noexcept { return off_; }

 private:
  std::byte* buf_;
  std::size_t cap_;
  std::size_t off_ = 0;
};

/// Reverse pass: read fields back out of a buffer.
class Unpacker final : public Er {
 public:
  Unpacker(const void* buf, std::size_t len)
      : Er(Mode::Unpacking),
        buf_(static_cast<const std::byte*>(buf)),
        len_(len) {}
  void bytes(void* p, std::size_t n) override {
    if (off_ + n > len_) throw std::length_error("pup::Unpacker underflow");
    std::memcpy(p, buf_ + off_, n);
    off_ += n;
  }
  [[nodiscard]] std::size_t offset() const noexcept { return off_; }

 private:
  const std::byte* buf_;
  std::size_t len_;
  std::size_t off_ = 0;
};

// ---------------------------------------------------------------------------
// Dispatch

template <typename T>
concept HasMemberPup = requires(T& t, Er& p) { t.pup(p); };

template <typename T>
concept TriviallyPuppable =
    (std::is_arithmetic_v<T> || std::is_enum_v<T>)&&!HasMemberPup<T>;

template <TriviallyPuppable T>
inline void operator|(Er& p, T& t) {
  p.bytes(&t, sizeof(T));
}

template <HasMemberPup T>
inline void operator|(Er& p, T& t) {
  t.pup(p);
}

inline void operator|(Er& p, std::string& s) {
  std::uint64_t n = s.size();
  p | n;
  if (p.unpacking()) s.resize(static_cast<std::size_t>(n));
  if (n) p.bytes(s.data(), static_cast<std::size_t>(n));
}

template <typename T>
inline void operator|(Er& p, std::vector<T>& v) {
  std::uint64_t n = v.size();
  p | n;
  if (p.unpacking()) v.resize(static_cast<std::size_t>(n));
  if constexpr (std::is_trivially_copyable_v<T> && !HasMemberPup<T>) {
    if (n) p.bytes(v.data(), static_cast<std::size_t>(n) * sizeof(T));
  } else {
    for (auto& e : v) p | e;
  }
}

inline void operator|(Er& p, std::vector<bool>& v) {
  std::uint64_t n = v.size();
  p | n;
  if (p.unpacking()) v.resize(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::uint8_t b = p.unpacking() ? 0 : static_cast<std::uint8_t>(v[i]);
    p | b;
    if (p.unpacking()) v[i] = (b != 0);
  }
}

template <typename T, std::size_t N>
inline void operator|(Er& p, std::array<T, N>& a) {
  if constexpr (std::is_trivially_copyable_v<T> && !HasMemberPup<T>) {
    p.bytes(a.data(), N * sizeof(T));
  } else {
    for (auto& e : a) p | e;
  }
}

template <typename A, typename B>
inline void operator|(Er& p, std::pair<A, B>& pr) {
  p | pr.first;
  p | pr.second;
}

template <typename... Ts>
inline void operator|(Er& p, std::tuple<Ts...>& t) {
  std::apply([&p](auto&... es) { ((p | es), ...); }, t);
}

template <typename T>
inline void operator|(Er& p, std::optional<T>& o) {
  std::uint8_t has = o.has_value() ? 1 : 0;
  p | has;
  if (p.unpacking()) {
    if (has) {
      o.emplace();
      p | *o;
    } else {
      o.reset();
    }
  } else if (has) {
    p | *o;
  }
}

template <typename K, typename V, typename C, typename A>
inline void operator|(Er& p, std::map<K, V, C, A>& m) {
  std::uint64_t n = m.size();
  p | n;
  if (p.unpacking()) {
    m.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      std::pair<K, V> kv;
      p | kv;
      m.emplace(std::move(kv.first), std::move(kv.second));
    }
  } else {
    for (auto& kv : m) {
      K k = kv.first;  // keys are const in-place; copy for traversal
      p | k;
      p | kv.second;
    }
  }
}

template <typename K, typename V, typename H, typename E, typename A>
inline void operator|(Er& p, std::unordered_map<K, V, H, E, A>& m) {
  std::uint64_t n = m.size();
  p | n;
  if (p.unpacking()) {
    m.clear();
    m.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      std::pair<K, V> kv;
      p | kv;
      m.emplace(std::move(kv.first), std::move(kv.second));
    }
  } else {
    for (auto& kv : m) {
      K k = kv.first;
      p | k;
      p | kv.second;
    }
  }
}

template <typename K, typename C, typename A>
inline void operator|(Er& p, std::set<K, C, A>& s) {
  std::uint64_t n = s.size();
  p | n;
  if (p.unpacking()) {
    s.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      K k;
      p | k;
      s.insert(std::move(k));
    }
  } else {
    for (const auto& e : s) {
      K k = e;
      p | k;
    }
  }
}

// ---------------------------------------------------------------------------
// Convenience entry points

/// Packed size of `t`.
template <typename T>
std::size_t size_of(T& t) {
  Sizer s;
  s | t;
  return s.size();
}

/// Serialize `t` to a fresh byte buffer.
template <typename T>
std::vector<std::byte> to_bytes(T& t) {
  Sizer s;
  s | t;
  std::vector<std::byte> buf(s.size());
  Packer pk(buf.data(), buf.size());
  pk | t;
  return buf;
}

/// Deserialize a default-constructible `T` from any contiguous byte
/// container (std::vector<std::byte>, cx::wire::Buffer, ...).
template <typename T, typename Bytes>
T from_bytes(const Bytes& buf) {
  Unpacker u(buf.data(), buf.size());
  T t{};
  u | t;
  return t;
}

template <typename T>
T from_bytes(const void* data, std::size_t len) {
  Unpacker u(data, len);
  T t{};
  u | t;
  return t;
}

/// Serialize an argument pack into one buffer (used for entry methods).
template <typename... Ts>
std::vector<std::byte> pack_args(Ts&... ts) {
  Sizer s;
  ((s | ts), ...);
  std::vector<std::byte> buf(s.size());
  Packer pk(buf.data(), buf.size());
  ((pk | ts), ...);
  return buf;
}

}  // namespace pup
