#include "trace/trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

#include "util/log.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace cx::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
WireAtomics g_wire;
WhenAtomics g_when;
PoolAtomics g_pool;
SectionAtomics g_section;

void PoolAtomics::note_task(std::uint64_t ns) noexcept {
  tasks_done.fetch_add(1, std::memory_order_relaxed);
  task_ns_sum.fetch_add(ns, std::memory_order_relaxed);
  int b = 0;
  while ((1ull << (b + 1)) <= ns && b < kPoolLatBuckets - 1) ++b;
  lat_hist[b].fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

namespace {
struct PoolJobs {
  std::mutex mu;
  std::vector<PoolJobRecord> records;
};
PoolJobs& pool_jobs() {
  static PoolJobs j;
  return j;
}
}  // namespace

double PoolStats::p99_task_s() const noexcept {
  if (tasks_done == 0) return 0.0;
  const std::uint64_t target =
      tasks_done - tasks_done / 100;  // ceil-ish 99th percentile rank
  std::uint64_t seen = 0;
  for (int i = 0; i < kPoolLatBuckets; ++i) {
    seen += lat_hist[i];
    if (seen >= target) {
      return static_cast<double>(1ull << (i + 1)) * 1e-9;
    }
  }
  return static_cast<double>(1ull << kPoolLatBuckets) * 1e-9;
}

PoolStats pool_stats() noexcept {
  const auto& p = detail::g_pool;
  PoolStats s;
  s.grants = p.grants.load(std::memory_order_relaxed);
  s.granted_tasks = p.granted_tasks.load(std::memory_order_relaxed);
  s.max_chunk = p.max_chunk.load(std::memory_order_relaxed);
  s.steal_attempts = p.steal_attempts.load(std::memory_order_relaxed);
  s.steal_hits = p.steal_hits.load(std::memory_order_relaxed);
  s.stolen_tasks = p.stolen_tasks.load(std::memory_order_relaxed);
  s.result_batches = p.result_batches.load(std::memory_order_relaxed);
  s.tasks_done = p.tasks_done.load(std::memory_order_relaxed);
  s.beats = p.beats.load(std::memory_order_relaxed);
  s.reassigns = p.reassigns.load(std::memory_order_relaxed);
  s.inflight_clamps = p.inflight_clamps.load(std::memory_order_relaxed);
  s.queue_high_water = p.queue_high_water.load(std::memory_order_relaxed);
  s.task_ns_sum = p.task_ns_sum.load(std::memory_order_relaxed);
  for (int i = 0; i < kPoolLatBuckets; ++i) {
    s.lat_hist[i] = p.lat_hist[i].load(std::memory_order_relaxed);
  }
  return s;
}

void reset_pool_stats() noexcept {
  auto& p = detail::g_pool;
  p.grants.store(0, std::memory_order_relaxed);
  p.granted_tasks.store(0, std::memory_order_relaxed);
  p.max_chunk.store(0, std::memory_order_relaxed);
  p.steal_attempts.store(0, std::memory_order_relaxed);
  p.steal_hits.store(0, std::memory_order_relaxed);
  p.stolen_tasks.store(0, std::memory_order_relaxed);
  p.result_batches.store(0, std::memory_order_relaxed);
  p.tasks_done.store(0, std::memory_order_relaxed);
  p.beats.store(0, std::memory_order_relaxed);
  p.reassigns.store(0, std::memory_order_relaxed);
  p.inflight_clamps.store(0, std::memory_order_relaxed);
  p.queue_high_water.store(0, std::memory_order_relaxed);
  p.task_ns_sum.store(0, std::memory_order_relaxed);
  for (int i = 0; i < kPoolLatBuckets; ++i) {
    p.lat_hist[i].store(0, std::memory_order_relaxed);
  }
  auto& j = pool_jobs();
  std::lock_guard<std::mutex> lock(j.mu);
  j.records.clear();
}

void pool_job_note(const PoolJobRecord& rec) {
  auto& j = pool_jobs();
  std::lock_guard<std::mutex> lock(j.mu);
  j.records.push_back(rec);
}

std::vector<PoolJobRecord> pool_job_records() {
  auto& j = pool_jobs();
  std::lock_guard<std::mutex> lock(j.mu);
  return j.records;
}

WhenEngineStats when_stats() noexcept {
  const auto& w = detail::g_when;
  WhenEngineStats s;
  s.tests = w.tests.load(std::memory_order_relaxed);
  s.hits = w.hits.load(std::memory_order_relaxed);
  s.buffered = w.buffered.load(std::memory_order_relaxed);
  s.skipped = w.skipped.load(std::memory_order_relaxed);
  s.high_water = w.high_water.load(std::memory_order_relaxed);
  return s;
}

void reset_when_stats() noexcept {
  auto& w = detail::g_when;
  w.tests.store(0, std::memory_order_relaxed);
  w.hits.store(0, std::memory_order_relaxed);
  w.buffered.store(0, std::memory_order_relaxed);
  w.skipped.store(0, std::memory_order_relaxed);
  w.high_water.store(0, std::memory_order_relaxed);
}

WireStats wire_stats() noexcept {
  const auto& w = detail::g_wire;
  WireStats s;
  s.envelopes = w.envelopes.load(std::memory_order_relaxed);
  s.bytes_packed = w.bytes_packed.load(std::memory_order_relaxed);
  s.sbo_payloads = w.sbo_payloads.load(std::memory_order_relaxed);
  s.buf_allocs = w.buf_allocs.load(std::memory_order_relaxed);
  s.buf_hits = w.buf_hits.load(std::memory_order_relaxed);
  s.buf_recycled = w.buf_recycled.load(std::memory_order_relaxed);
  s.msg_allocs = w.msg_allocs.load(std::memory_order_relaxed);
  s.msg_hits = w.msg_hits.load(std::memory_order_relaxed);
  s.msg_recycled = w.msg_recycled.load(std::memory_order_relaxed);
  s.env_allocs = w.env_allocs.load(std::memory_order_relaxed);
  s.env_hits = w.env_hits.load(std::memory_order_relaxed);
  s.transport_msgs = w.transport_msgs.load(std::memory_order_relaxed);
  s.agg_batches = w.agg_batches.load(std::memory_order_relaxed);
  s.agg_msgs = w.agg_msgs.load(std::memory_order_relaxed);
  s.agg_flush_bytes = w.agg_flush_bytes.load(std::memory_order_relaxed);
  s.agg_flush_count = w.agg_flush_count.load(std::memory_order_relaxed);
  s.agg_flush_idle = w.agg_flush_idle.load(std::memory_order_relaxed);
  s.agg_flush_order = w.agg_flush_order.load(std::memory_order_relaxed);
  return s;
}

void reset_wire_stats() noexcept {
  auto& w = detail::g_wire;
  w.envelopes.store(0, std::memory_order_relaxed);
  w.bytes_packed.store(0, std::memory_order_relaxed);
  w.sbo_payloads.store(0, std::memory_order_relaxed);
  w.buf_allocs.store(0, std::memory_order_relaxed);
  w.buf_hits.store(0, std::memory_order_relaxed);
  w.buf_recycled.store(0, std::memory_order_relaxed);
  w.msg_allocs.store(0, std::memory_order_relaxed);
  w.msg_hits.store(0, std::memory_order_relaxed);
  w.msg_recycled.store(0, std::memory_order_relaxed);
  w.env_allocs.store(0, std::memory_order_relaxed);
  w.env_hits.store(0, std::memory_order_relaxed);
  w.transport_msgs.store(0, std::memory_order_relaxed);
  w.agg_batches.store(0, std::memory_order_relaxed);
  w.agg_msgs.store(0, std::memory_order_relaxed);
  w.agg_flush_bytes.store(0, std::memory_order_relaxed);
  w.agg_flush_count.store(0, std::memory_order_relaxed);
  w.agg_flush_idle.store(0, std::memory_order_relaxed);
  w.agg_flush_order.store(0, std::memory_order_relaxed);
}

SectionStats section_stats() noexcept {
  const auto& s = detail::g_section;
  SectionStats out;
  out.sections_built = s.sections_built.load(std::memory_order_relaxed);
  out.tree_repairs = s.tree_repairs.load(std::memory_order_relaxed);
  out.mcasts = s.mcasts.load(std::memory_order_relaxed);
  out.mcast_envelopes = s.mcast_envelopes.load(std::memory_order_relaxed);
  out.envelopes_saved = s.envelopes_saved.load(std::memory_order_relaxed);
  out.contributions = s.contributions.load(std::memory_order_relaxed);
  out.red_fragments = s.red_fragments.load(std::memory_order_relaxed);
  out.reductions_done = s.reductions_done.load(std::memory_order_relaxed);
  return out;
}

void reset_section_stats() noexcept {
  auto& s = detail::g_section;
  s.sections_built.store(0, std::memory_order_relaxed);
  s.tree_repairs.store(0, std::memory_order_relaxed);
  s.mcasts.store(0, std::memory_order_relaxed);
  s.mcast_envelopes.store(0, std::memory_order_relaxed);
  s.envelopes_saved.store(0, std::memory_order_relaxed);
  s.contributions.store(0, std::memory_order_relaxed);
  s.red_fragments.store(0, std::memory_order_relaxed);
  s.reductions_done.store(0, std::memory_order_relaxed);
}

namespace {

/// One PE's trace state. The owning PE thread is the only writer; the
/// ring index is published with a release store so post-run readers see
/// completed slots. Cache-line aligned so neighbouring PEs don't share.
struct alignas(64) PeTrace {
  std::vector<Event> ring;
  std::atomic<std::uint64_t> head{0};  ///< monotonically increasing
  Counters counters;
  // Full-run event span, independent of ring overwrites (the retained
  // window alone would understate the span once events drop).
  double t_first = 0.0;
  double t_last = 0.0;
};

struct State {
  Config cfg;
  std::vector<std::unique_ptr<PeTrace>> pes;
  bool simulated = false;
  std::mutex mutex;  ///< guards configure/begin_run, not the hot path
};

State& state() {
  static State s;
  return s;
}

int hist_bucket(double seconds) {
  const double us = seconds * 1e6;
  if (us < 2.0) return 0;
  const int b = static_cast<int>(std::log2(us));
  return std::min(b, kHistBuckets - 1);
}

void bump_counters(Counters& c, EventKind kind, std::uint64_t a,
                   std::uint64_t b) {
  switch (kind) {
    case EventKind::MsgSend:
      c.msgs_sent++;
      c.bytes_sent += b;
      break;
    case EventKind::MsgRecv:
      c.msgs_recv++;
      c.bytes_recv += b;
      break;
    case EventKind::Idle:
      c.idle_spans++;
      c.idle_time += static_cast<double>(a) * 1e-9;
      break;
    case EventKind::EntryBegin:
      break;
    case EventKind::EntryEnd: {
      c.entries++;
      const double dur = static_cast<double>(b) * 1e-9;
      c.entry_time += dur;
      c.entry_hist[hist_bucket(dur)]++;
      break;
    }
    case EventKind::WhenBuffer:
      c.when_buffered++;
      break;
    case EventKind::RedContribute:
      c.reductions_contributed++;
      break;
    case EventKind::RedDeliver:
      c.reductions_delivered++;
      break;
    case EventKind::MigrateOut:
      c.migrations_out++;
      break;
    case EventKind::MigrateIn:
      c.migrations_in++;
      break;
    case EventKind::LbDecision:
      c.lb_decisions++;
      break;
    case EventKind::FiberSuspend:
      c.fiber_suspends++;
      break;
    case EventKind::FiberResume:
      c.fiber_resumes++;
      break;
    case EventKind::DynDispatch:
      c.dyn_dispatches++;
      break;
    case EventKind::PoolJobQueued:
      c.pool_jobs_queued++;
      break;
    case EventKind::PoolJobStart:
      c.pool_jobs_started++;
      break;
    case EventKind::PoolJobDone:
      c.pool_jobs_done++;
      break;
    case EventKind::FtDrop:
      c.ft_drops++;
      break;
    case EventKind::FtAck:
      c.ft_acks++;
      break;
    case EventKind::FtRetransmit:
      c.ft_retransmits++;
      break;
    case EventKind::FtFailure:
      c.ft_failures++;
      break;
    case EventKind::FtCheckpoint:
      c.ft_checkpoints++;
      break;
    case EventKind::FtRestore:
      c.ft_restores++;
      break;
    case EventKind::FtResubmit:
      c.ft_resubmits++;
      break;
    case EventKind::FtDetect:
      c.ft_detections++;
      c.ft_detect_latency_s += static_cast<double>(b) * 1e-9;
      break;
    case EventKind::FtNotice:
      break;  // informational; rounds are counted at FtRecover
    case EventKind::FtRecover:
      c.ft_recoveries++;
      c.ft_mttr_s += static_cast<double>(b) * 1e-9;
      break;
  }
}

void json_escape(std::ostream& os, const std::string& s) {
  for (char ch : s) {
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << ch;
    }
  }
}

void json_counters(std::ostream& os, const Counters& c) {
  os << "{\"msgs_sent\":" << c.msgs_sent << ",\"bytes_sent\":" << c.bytes_sent
     << ",\"msgs_recv\":" << c.msgs_recv << ",\"bytes_recv\":" << c.bytes_recv
     << ",\"entries\":" << c.entries << ",\"entry_time\":" << c.entry_time
     << ",\"idle_time\":" << c.idle_time << ",\"idle_spans\":" << c.idle_spans
     << ",\"when_buffered\":" << c.when_buffered
     << ",\"reductions_contributed\":" << c.reductions_contributed
     << ",\"reductions_delivered\":" << c.reductions_delivered
     << ",\"migrations_out\":" << c.migrations_out
     << ",\"migrations_in\":" << c.migrations_in
     << ",\"lb_decisions\":" << c.lb_decisions
     << ",\"fiber_suspends\":" << c.fiber_suspends
     << ",\"fiber_resumes\":" << c.fiber_resumes
     << ",\"dyn_dispatches\":" << c.dyn_dispatches
     << ",\"pool_jobs_queued\":" << c.pool_jobs_queued
     << ",\"pool_jobs_started\":" << c.pool_jobs_started
     << ",\"pool_jobs_done\":" << c.pool_jobs_done
     << ",\"ft_drops\":" << c.ft_drops << ",\"ft_acks\":" << c.ft_acks
     << ",\"ft_retransmits\":" << c.ft_retransmits
     << ",\"ft_failures\":" << c.ft_failures
     << ",\"ft_checkpoints\":" << c.ft_checkpoints
     << ",\"ft_restores\":" << c.ft_restores
     << ",\"ft_resubmits\":" << c.ft_resubmits
     << ",\"ft_detections\":" << c.ft_detections
     << ",\"ft_detect_latency_s\":" << c.ft_detect_latency_s
     << ",\"ft_recoveries\":" << c.ft_recoveries
     << ",\"ft_mttr_s\":" << c.ft_mttr_s
     << ",\"dropped_events\":" << c.dropped_events << ",\"entry_hist_us\":[";
  for (int i = 0; i < kHistBuckets; ++i) {
    if (i > 0) os << ',';
    os << c.entry_hist[i];
  }
  os << "]}";
}

std::string human_bytes(std::uint64_t b) {
  std::ostringstream os;
  if (b >= (1u << 20)) {
    os << cxu::Table::num(static_cast<double>(b) / (1u << 20), 1) << " MiB";
  } else if (b >= (1u << 10)) {
    os << cxu::Table::num(static_cast<double>(b) / (1u << 10), 1) << " KiB";
  } else {
    os << b << " B";
  }
  return os.str();
}

}  // namespace

void Counters::merge(const Counters& o) {
  msgs_sent += o.msgs_sent;
  bytes_sent += o.bytes_sent;
  msgs_recv += o.msgs_recv;
  bytes_recv += o.bytes_recv;
  entries += o.entries;
  entry_time += o.entry_time;
  idle_time += o.idle_time;
  idle_spans += o.idle_spans;
  when_buffered += o.when_buffered;
  reductions_contributed += o.reductions_contributed;
  reductions_delivered += o.reductions_delivered;
  migrations_out += o.migrations_out;
  migrations_in += o.migrations_in;
  lb_decisions += o.lb_decisions;
  fiber_suspends += o.fiber_suspends;
  fiber_resumes += o.fiber_resumes;
  dyn_dispatches += o.dyn_dispatches;
  pool_jobs_queued += o.pool_jobs_queued;
  pool_jobs_started += o.pool_jobs_started;
  pool_jobs_done += o.pool_jobs_done;
  ft_drops += o.ft_drops;
  ft_acks += o.ft_acks;
  ft_retransmits += o.ft_retransmits;
  ft_failures += o.ft_failures;
  ft_checkpoints += o.ft_checkpoints;
  ft_restores += o.ft_restores;
  ft_resubmits += o.ft_resubmits;
  ft_detections += o.ft_detections;
  ft_detect_latency_s += o.ft_detect_latency_s;
  ft_recoveries += o.ft_recoveries;
  ft_mttr_s += o.ft_mttr_s;
  dropped_events += o.dropped_events;
  for (int i = 0; i < kHistBuckets; ++i) entry_hist[i] += o.entry_hist[i];
}

const char* kind_name(EventKind k) noexcept {
  switch (k) {
    case EventKind::MsgSend:
      return "msg_send";
    case EventKind::MsgRecv:
      return "msg_recv";
    case EventKind::Idle:
      return "idle";
    case EventKind::EntryBegin:
      return "entry_begin";
    case EventKind::EntryEnd:
      return "entry_end";
    case EventKind::WhenBuffer:
      return "when_buffer";
    case EventKind::RedContribute:
      return "red_contribute";
    case EventKind::RedDeliver:
      return "red_deliver";
    case EventKind::MigrateOut:
      return "migrate_out";
    case EventKind::MigrateIn:
      return "migrate_in";
    case EventKind::LbDecision:
      return "lb_decision";
    case EventKind::FiberSuspend:
      return "fiber_suspend";
    case EventKind::FiberResume:
      return "fiber_resume";
    case EventKind::DynDispatch:
      return "dyn_dispatch";
    case EventKind::PoolJobQueued:
      return "pool_job_queued";
    case EventKind::PoolJobStart:
      return "pool_job_start";
    case EventKind::PoolJobDone:
      return "pool_job_done";
    case EventKind::FtDrop:
      return "ft_drop";
    case EventKind::FtAck:
      return "ft_ack";
    case EventKind::FtRetransmit:
      return "ft_retransmit";
    case EventKind::FtFailure:
      return "ft_failure";
    case EventKind::FtCheckpoint:
      return "ft_checkpoint";
    case EventKind::FtRestore:
      return "ft_restore";
    case EventKind::FtResubmit:
      return "ft_resubmit";
    case EventKind::FtDetect:
      return "ft_detect";
    case EventKind::FtNotice:
      return "ft_notice";
    case EventKind::FtRecover:
      return "ft_recover";
  }
  return "unknown";
}

void configure(Config cfg) {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.cfg = std::move(cfg);
  if (s.cfg.buffer_events == 0) s.cfg.buffer_events = 1;
  detail::g_enabled.store(s.cfg.enabled, std::memory_order_relaxed);
}

void configure_from_options(const cxu::Options& opt) {
  Config cfg;
  cfg.enabled = opt.get_bool("trace", false);
  cfg.out_path = opt.get_string("trace-out", "trace.json");
  cfg.buffer_events = static_cast<std::size_t>(
      opt.get_int("trace-buffer", 1 << 16));
  configure(std::move(cfg));
}

const Config& config() noexcept { return state().cfg; }

void begin_run(int num_pes, bool simulated) {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.pes.clear();
  s.simulated = simulated;
  reset_wire_stats();
  reset_when_stats();
  reset_pool_stats();
  reset_section_stats();
  if (!s.cfg.enabled) return;
  // Rings are allocated eagerly, so clamp the per-PE capacity to keep the
  // total bounded when a simulated run uses thousands of virtual PEs
  // (oldest events are overwritten and counted as dropped).
  constexpr std::uint64_t kMaxTotalEvents = 1ull << 22;  // ~128 MiB
  std::size_t per_pe = s.cfg.buffer_events;
  const std::uint64_t want =
      static_cast<std::uint64_t>(per_pe) * static_cast<std::uint64_t>(num_pes);
  if (want > kMaxTotalEvents) {
    per_pe = std::max<std::size_t>(
        64, static_cast<std::size_t>(kMaxTotalEvents /
                                     static_cast<std::uint64_t>(num_pes)));
    CX_LOG_WARN("trace: clamping ring to ", per_pe, " events/PE for ",
                num_pes, " PEs (requested ", s.cfg.buffer_events, ")");
  }
  s.pes.reserve(static_cast<std::size_t>(num_pes));
  for (int i = 0; i < num_pes; ++i) {
    auto pt = std::make_unique<PeTrace>();
    pt->ring.resize(per_pe);
    s.pes.push_back(std::move(pt));
  }
}

void record(int pe, double t, EventKind kind, std::uint64_t a,
            std::uint64_t b) {
  auto& s = state();
  if (pe < 0 || static_cast<std::size_t>(pe) >= s.pes.size()) return;
  PeTrace& pt = *s.pes[static_cast<std::size_t>(pe)];
  const std::uint64_t h = pt.head.load(std::memory_order_relaxed);
  const std::size_t cap = pt.ring.size();
  Event& slot = pt.ring[static_cast<std::size_t>(h % cap)];
  slot.time = t;
  slot.a = a;
  slot.b = b;
  slot.kind = kind;
  if (h >= cap) pt.counters.dropped_events++;
  if (h == 0) pt.t_first = t;
  pt.t_last = t;
  bump_counters(pt.counters, kind, a, b);
  pt.head.store(h + 1, std::memory_order_release);
}

std::vector<Event> events(int pe) {
  auto& s = state();
  std::vector<Event> out;
  if (pe < 0 || static_cast<std::size_t>(pe) >= s.pes.size()) return out;
  const PeTrace& pt = *s.pes[static_cast<std::size_t>(pe)];
  const std::uint64_t h = pt.head.load(std::memory_order_acquire);
  const std::uint64_t cap = pt.ring.size();
  const std::uint64_t n = std::min(h, cap);
  out.reserve(static_cast<std::size_t>(n));
  // Oldest retained slot first.
  for (std::uint64_t i = h - n; i < h; ++i) {
    out.push_back(pt.ring[static_cast<std::size_t>(i % cap)]);
  }
  return out;
}

std::uint64_t total_events() {
  auto& s = state();
  std::uint64_t n = 0;
  for (const auto& pt : s.pes) {
    n += pt->head.load(std::memory_order_acquire);
  }
  return n;
}

int traced_pes() noexcept { return static_cast<int>(state().pes.size()); }

bool traced_run_was_simulated() noexcept { return state().simulated; }

Counters counters(int pe) {
  auto& s = state();
  if (pe < 0 || static_cast<std::size_t>(pe) >= s.pes.size()) return {};
  return s.pes[static_cast<std::size_t>(pe)]->counters;
}

Counters aggregate() {
  Counters total;
  for (int pe = 0; pe < traced_pes(); ++pe) total.merge(counters(pe));
  return total;
}

std::string summary_table() {
  const int P = traced_pes();
  // Per-PE wall span (first to last event) for the idle percentage.
  std::ostringstream os;
  os << "cx::trace summary — " << (traced_run_was_simulated()
                                       ? "virtual (simulated) time"
                                       : "wall time")
     << ", " << P << " PE(s), " << total_events() << " events\n\n";
  cxu::Table table({"pe", "msgs sent", "bytes sent", "msgs recv", "entries",
                    "entry s", "idle s", "idle %", "dropped"});
  auto row = [&](const std::string& label, const Counters& c, double span) {
    const double idle_pct = span > 0 ? 100.0 * c.idle_time / span : 0.0;
    table.add_row({label, std::to_string(c.msgs_sent),
                   human_bytes(c.bytes_sent), std::to_string(c.msgs_recv),
                   std::to_string(c.entries), cxu::Table::num(c.entry_time, 4),
                   cxu::Table::num(c.idle_time, 4),
                   cxu::Table::num(idle_pct, 1),
                   std::to_string(c.dropped_events)});
  };
  double total_span = 0.0;
  for (int pe = 0; pe < P; ++pe) {
    const PeTrace& pt = *state().pes[static_cast<std::size_t>(pe)];
    const double span =
        pt.head.load(std::memory_order_acquire) > 0 ? pt.t_last - pt.t_first
                                                    : 0.0;
    total_span = std::max(total_span, span);
    row(std::to_string(pe), counters(pe), span);
  }
  row("total", aggregate(), total_span * P);
  os << table.to_string();
  // Entry-method time histogram (log2 microsecond buckets).
  const Counters total = aggregate();
  if (total.entries > 0) {
    os << "\nentry-method time histogram (us, log2 buckets):\n";
    for (int i = 0; i < kHistBuckets; ++i) {
      if (total.entry_hist[i] == 0) continue;
      const double lo = i == 0 ? 0.0 : std::pow(2.0, i);
      const double hi = std::pow(2.0, i + 1);
      os << "  [" << cxu::Table::num(lo, 0) << ", " << cxu::Table::num(hi, 0)
         << ")  " << total.entry_hist[i] << "\n";
    }
  }
  const WhenEngineStats ws = when_stats();
  if (ws.tests + ws.buffered > 0) {
    os << "\ncx::when: " << ws.tests << " condition tests, " << ws.buffered
       << " buffered, " << ws.hits << " released, " << ws.skipped
       << " re-tests skipped ("
       << cxu::Table::num(100.0 * ws.skip_rate(), 1)
       << "%), high water " << ws.high_water << " pending\n";
  }
  const WireStats w = wire_stats();
  if (w.envelopes > 0) {
    os << "\ncx::wire: " << w.envelopes << " envelopes, "
       << human_bytes(w.bytes_packed) << " packed ("
       << cxu::Table::num(w.envelopes > 0
                              ? static_cast<double>(w.bytes_packed) /
                                    static_cast<double>(w.envelopes)
                              : 0.0,
                          1)
       << " B/send), " << w.sbo_payloads << " inline (SBO), "
       << w.buf_allocs + w.msg_allocs + w.env_allocs << " heap allocs, "
       << cxu::Table::num(100.0 * w.hit_rate(), 1) << "% pool hit rate\n";
  }
  if (w.agg_batches > 0) {
    os << "cx::wire agg: " << w.agg_msgs << " msgs in " << w.agg_batches
       << " batches (" << cxu::Table::num(w.msgs_per_batch(), 1)
       << " msgs/batch), " << w.transport_msgs
       << " transport msgs, flushes: " << w.agg_flush_bytes << " bytes / "
       << w.agg_flush_count << " count / " << w.agg_flush_idle << " idle / "
       << w.agg_flush_order << " ordering\n";
  }
  const SectionStats ss = section_stats();
  if (ss.sections_built + ss.mcasts + ss.contributions > 0) {
    os << "\ncx::sections: " << ss.sections_built << " built, " << ss.mcasts
       << " multicasts (" << ss.mcast_envelopes << " envelopes, "
       << ss.envelopes_saved << " saved vs broadcast), " << ss.contributions
       << " contributions in " << ss.reductions_done << " reductions ("
       << ss.red_fragments << " fragments), " << ss.tree_repairs
       << " tree repairs\n";
  }
  const PoolStats ps = pool_stats();
  if (ps.tasks_done + ps.grants > 0) {
    os << "\ncx::pool: " << ps.tasks_done << " tasks in " << ps.grants
       << " grants (" << cxu::Table::num(ps.mean_chunk(), 1)
       << " tasks/grant, max " << ps.max_chunk << "), " << ps.steal_hits
       << "/" << ps.steal_attempts << " steals hit ("
       << cxu::Table::num(100.0 * ps.steal_hit_rate(), 1) << "%, "
       << ps.stolen_tasks << " tasks moved), " << ps.result_batches
       << " result batches, " << ps.beats << " beats, "
       << ps.inflight_clamps << " inflight clamps, queue high water "
       << ps.queue_high_water << ", task mean "
       << cxu::Table::num(ps.mean_task_s() * 1e6, 2) << " us / p99 "
       << cxu::Table::num(ps.p99_task_s() * 1e6, 2) << " us\n";
    for (const PoolJobRecord& r : pool_job_records()) {
      os << "  job " << r.job_id << " (prio " << r.priority << "): "
         << r.tasks << " tasks in "
         << cxu::Table::num(r.done_t - r.start_t, 6) << " s ("
         << cxu::Table::num(r.tasks_per_s(), 0) << " tasks/s)"
         << (r.failed ? " FAILED" : "") << "\n";
    }
  }
  return os.str();
}

void write_json(std::ostream& os) {
  const int P = traced_pes();
  struct Tagged {
    Event ev;
    int pe;
  };
  std::vector<Tagged> all;
  all.reserve(static_cast<std::size_t>(total_events()));
  for (int pe = 0; pe < P; ++pe) {
    for (const Event& ev : events(pe)) all.push_back({ev, pe});
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Tagged& x, const Tagged& y) {
                     if (x.ev.time != y.ev.time) return x.ev.time < y.ev.time;
                     return x.pe < y.pe;
                   });
  os << "{\"version\":1,\"simulated\":"
     << (traced_run_was_simulated() ? "true" : "false")
     << ",\"num_pes\":" << P << ",\"events\":[";
  bool first = true;
  for (const Tagged& t : all) {
    if (!first) os << ',';
    first = false;
    os << "{\"t\":" << t.ev.time << ",\"pe\":" << t.pe << ",\"kind\":\"";
    json_escape(os, kind_name(t.ev.kind));
    os << "\",\"a\":" << t.ev.a << ",\"b\":" << t.ev.b << '}';
  }
  os << "],\"counters\":{\"per_pe\":[";
  for (int pe = 0; pe < P; ++pe) {
    if (pe > 0) os << ',';
    json_counters(os, counters(pe));
  }
  os << "],\"total\":";
  json_counters(os, aggregate());
  const WhenEngineStats ws = when_stats();
  os << "},\"when\":{\"tests\":" << ws.tests << ",\"hits\":" << ws.hits
     << ",\"buffered\":" << ws.buffered << ",\"skipped\":" << ws.skipped
     << ",\"skip_rate\":" << ws.skip_rate()
     << ",\"high_water\":" << ws.high_water;
  const WireStats w = wire_stats();
  os << "},\"wire\":{\"envelopes\":" << w.envelopes
     << ",\"bytes_packed\":" << w.bytes_packed
     << ",\"sbo_payloads\":" << w.sbo_payloads
     << ",\"buf_allocs\":" << w.buf_allocs << ",\"buf_hits\":" << w.buf_hits
     << ",\"buf_recycled\":" << w.buf_recycled
     << ",\"msg_allocs\":" << w.msg_allocs << ",\"msg_hits\":" << w.msg_hits
     << ",\"msg_recycled\":" << w.msg_recycled
     << ",\"env_allocs\":" << w.env_allocs << ",\"env_hits\":" << w.env_hits
     << ",\"pool_hit_rate\":" << w.hit_rate()
     << ",\"transport_msgs\":" << w.transport_msgs
     << ",\"agg_batches\":" << w.agg_batches
     << ",\"agg_msgs\":" << w.agg_msgs
     << ",\"agg_flush_bytes\":" << w.agg_flush_bytes
     << ",\"agg_flush_count\":" << w.agg_flush_count
     << ",\"agg_flush_idle\":" << w.agg_flush_idle
     << ",\"agg_flush_order\":" << w.agg_flush_order << "}";
  const SectionStats sect = section_stats();
  os << ",\"sections\":{\"sections_built\":" << sect.sections_built
     << ",\"tree_repairs\":" << sect.tree_repairs
     << ",\"mcasts\":" << sect.mcasts
     << ",\"mcast_envelopes\":" << sect.mcast_envelopes
     << ",\"envelopes_saved\":" << sect.envelopes_saved
     << ",\"contributions\":" << sect.contributions
     << ",\"red_fragments\":" << sect.red_fragments
     << ",\"reductions_done\":" << sect.reductions_done << "}";
  const PoolStats pool = pool_stats();
  os << ",\"pool\":{\"grants\":" << pool.grants
     << ",\"granted_tasks\":" << pool.granted_tasks
     << ",\"mean_chunk\":" << pool.mean_chunk()
     << ",\"max_chunk\":" << pool.max_chunk
     << ",\"steal_attempts\":" << pool.steal_attempts
     << ",\"steal_hits\":" << pool.steal_hits
     << ",\"steal_hit_rate\":" << pool.steal_hit_rate()
     << ",\"stolen_tasks\":" << pool.stolen_tasks
     << ",\"result_batches\":" << pool.result_batches
     << ",\"tasks_done\":" << pool.tasks_done << ",\"beats\":" << pool.beats
     << ",\"reassigns\":" << pool.reassigns
     << ",\"inflight_clamps\":" << pool.inflight_clamps
     << ",\"queue_high_water\":" << pool.queue_high_water
     << ",\"mean_task_s\":" << pool.mean_task_s()
     << ",\"p99_task_s\":" << pool.p99_task_s() << ",\"jobs\":[";
  bool jfirst = true;
  for (const PoolJobRecord& r : pool_job_records()) {
    if (!jfirst) os << ',';
    jfirst = false;
    os << "{\"job_id\":" << r.job_id << ",\"priority\":" << r.priority
       << ",\"tasks\":" << r.tasks << ",\"submit_t\":" << r.submit_t
       << ",\"start_t\":" << r.start_t << ",\"done_t\":" << r.done_t
       << ",\"tasks_per_s\":" << r.tasks_per_s()
       << ",\"failed\":" << (r.failed ? "true" : "false") << '}';
  }
  os << "]}}\n";
}

bool write_json(const std::string& path) {
  std::ofstream f(path);
  if (!f) {
    CX_LOG_ERROR("trace: cannot open '", path, "' for writing");
    return false;
  }
  write_json(f);
  return true;
}

void report_if_enabled() {
  if (!enabled()) return;
  const auto& cfg = config();
  if (write_json(cfg.out_path)) {
    std::printf("trace: wrote %llu events to %s\n",
                static_cast<unsigned long long>(total_events()),
                cfg.out_path.c_str());
  }
  if (cfg.print_summary) {
    std::fputs(summary_table().c_str(), stdout);
  }
}

void reset() {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.pes.clear();
  s.cfg = Config{};
  s.simulated = false;
  reset_wire_stats();
  reset_when_stats();
  reset_pool_stats();
  reset_section_stats();
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

}  // namespace cx::trace
