#pragma once
// cx::trace — runtime-wide event tracing and metrics (Projections-lite).
//
// Every runtime layer records typed events into a per-PE lock-free ring
// buffer: message sends/receives with byte counts, entry-method begin/end
// with chare identity, scheduler idle spans, reduction contribute/deliver,
// when-buffer depth, migration, LB strategy decisions, fiber
// suspend/resume, dynamic-dispatch and pool job lifecycle. Each PE writes
// only its own ring (single producer, no synchronization beyond a release
// store), so recording is wait-free; counters aggregate into per-PE and
// global summaries (messages, bytes, idle %, entry-method time
// histograms).
//
// Timestamps come from the machine backend that records them: wall clock
// on ThreadedMachine, virtual clock on SimMachine — so DES figure runs
// are traceable with the same pipeline.
//
// Usage (benches/examples):
//
//   cxu::Options opt(argc, argv);
//   cx::trace::configure_from_options(opt);   // --trace, --trace-out=...
//   ... run the program ...
//   cx::trace::report_if_enabled();           // JSON timeline + summary
//
// The disabled path costs one relaxed atomic load + branch per hook; the
// hooks compile out entirely with -DCHARMX_TRACE_DISABLED.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace cxu {
class Options;
}

namespace cx::trace {

// Payload meaning per kind (a, b are generic 64-bit slots):
//   MsgSend       a = dst PE            b = bytes on the wire
//   MsgRecv       a = src PE (0xffffffff = external/bootstrap)
//                                       b = bytes on the wire
//   Idle          a = span nanoseconds  b = 0        (time = span end)
//   EntryBegin    a = collection id     b = entry-point id
//   EntryEnd      a = entry-point id    b = span nanoseconds
//   WhenBuffer    a = collection id     b = buffer depth after enqueue
//   RedContribute a = collection id     b = reduction number
//   RedDeliver    a = collection id     b = reduction number
//   MigrateOut    a = collection id     b = destination PE
//   MigrateIn     a = collection id     b = 0
//   LbDecision    a = migrations       b = load records considered
//   FiberSuspend  a = 0                 b = 0
//   FiberResume   a = 0                 b = 0
//   DynDispatch   a = method-name hash  b = 0
//   PoolJobQueued a = job id            b = free procs at enqueue
//   PoolJobStart  a = job id            b = procs granted
//   PoolJobDone   a = job id            b = tasks completed
//   FtDrop        a = reason (0=injected, 1=duplicate suppressed,
//                             2=dst crashed/hung, 3=stale timer)
//                                       b = ft sequence number
//   FtAck         a = acked PE          b = ft sequence number
//   FtRetransmit  a = dst PE            b = attempt number
//   FtFailure     a = failed PE         b = FailureKind
//   FtCheckpoint  a = epoch             b = blob bytes on this PE
//   FtRestore     a = epoch             b = blob bytes on this PE
//   FtResubmit    a = failed PE         b = tasks resubmitted
//   FtDetect      a = suspected PE      b = silence nanoseconds
//                                           (heartbeat detection latency)
//   FtNotice      a = failed PE         b = recovery round
//   FtRecover     a = recovery round    b = MTTR nanoseconds
//                                           (failure detection -> restored)
enum class EventKind : std::uint8_t {
  MsgSend = 0,
  MsgRecv,
  Idle,
  EntryBegin,
  EntryEnd,
  WhenBuffer,
  RedContribute,
  RedDeliver,
  MigrateOut,
  MigrateIn,
  LbDecision,
  FiberSuspend,
  FiberResume,
  DynDispatch,
  PoolJobQueued,
  PoolJobStart,
  PoolJobDone,
  FtDrop,
  FtAck,
  FtRetransmit,
  FtFailure,
  FtCheckpoint,
  FtRestore,
  FtResubmit,
  FtDetect,
  FtNotice,
  FtRecover,
};

/// Stable snake_case name used in the JSON timeline.
const char* kind_name(EventKind k) noexcept;

struct Event {
  double time = 0.0;  ///< backend clock: wall (threaded) or virtual (sim)
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  EventKind kind = EventKind::MsgSend;
};

/// Number of log2 buckets in the entry-method time histogram. Bucket i
/// holds entries with duration in [2^i, 2^(i+1)) microseconds; bucket 0
/// also holds sub-microsecond entries.
inline constexpr int kHistBuckets = 20;

struct Counters {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_recv = 0;
  std::uint64_t bytes_recv = 0;
  std::uint64_t entries = 0;
  double entry_time = 0.0;  ///< seconds inside entry methods
  double idle_time = 0.0;   ///< seconds the scheduler sat idle
  std::uint64_t idle_spans = 0;
  std::uint64_t when_buffered = 0;
  std::uint64_t reductions_contributed = 0;
  std::uint64_t reductions_delivered = 0;
  std::uint64_t migrations_out = 0;
  std::uint64_t migrations_in = 0;
  std::uint64_t lb_decisions = 0;
  std::uint64_t fiber_suspends = 0;
  std::uint64_t fiber_resumes = 0;
  std::uint64_t dyn_dispatches = 0;
  std::uint64_t pool_jobs_queued = 0;
  std::uint64_t pool_jobs_started = 0;
  std::uint64_t pool_jobs_done = 0;
  std::uint64_t ft_drops = 0;
  std::uint64_t ft_acks = 0;
  std::uint64_t ft_retransmits = 0;
  std::uint64_t ft_failures = 0;
  std::uint64_t ft_checkpoints = 0;
  std::uint64_t ft_restores = 0;
  std::uint64_t ft_resubmits = 0;
  std::uint64_t ft_detections = 0;     ///< heartbeat-detector declarations
  double ft_detect_latency_s = 0.0;    ///< summed silence at detection
  std::uint64_t ft_recoveries = 0;     ///< completed auto-recovery rounds
  double ft_mttr_s = 0.0;              ///< summed MTTR across rounds
  std::uint64_t dropped_events = 0;  ///< ring overwrites (oldest lost)
  std::uint64_t entry_hist[kHistBuckets] = {0};

  void merge(const Counters& o);
};

// ---- cx::wire allocation counters ---------------------------------------
//
// The wire layer (single-pass envelopes, pooled buffers) reports its
// allocation behaviour here so benches can compute allocs-per-send,
// bytes-per-send and pool hit rate. Unlike events, these are always on
// (plain relaxed atomic adds — cheap next to the heap traffic they
// count) so --wire-pool A/B runs work without --trace.

struct WireStats {
  std::uint64_t envelopes = 0;     ///< messages built by the wire builder
  std::uint64_t bytes_packed = 0;  ///< header+body bytes packed
  std::uint64_t sbo_payloads = 0;  ///< envelopes that fit inline (no heap)
  std::uint64_t buf_allocs = 0;    ///< payload blocks taken from the system
  std::uint64_t buf_hits = 0;      ///< payload blocks served from the pool
  std::uint64_t buf_recycled = 0;  ///< payload blocks returned to the pool
  std::uint64_t msg_allocs = 0;    ///< Message objects from the system
  std::uint64_t msg_hits = 0;      ///< Message objects from the pool
  std::uint64_t msg_recycled = 0;  ///< Message objects returned to the pool
  std::uint64_t env_allocs = 0;    ///< LocalEnvelopes from the system
  std::uint64_t env_hits = 0;      ///< LocalEnvelopes from the pool

  // Sender-side aggregation (--wire-agg). transport_msgs counts physical
  // cross-PE wire envelopes (batches count once); agg_msgs counts
  // application messages that travelled inside a batch. The flush_*
  // counters break sealed batches down by trigger.
  std::uint64_t transport_msgs = 0;   ///< physical cross-PE envelopes
  std::uint64_t agg_batches = 0;      ///< batches sealed
  std::uint64_t agg_msgs = 0;         ///< app messages absorbed into batches
  std::uint64_t agg_flush_bytes = 0;  ///< seals: byte threshold
  std::uint64_t agg_flush_count = 0;  ///< seals: message-count threshold
  std::uint64_t agg_flush_idle = 0;   ///< seals: idle scheduler / DES timer
  std::uint64_t agg_flush_order = 0;  ///< seals: ordering (bypass/class switch)

  /// Mean messages per sealed batch (0 when no batches were sealed).
  [[nodiscard]] double msgs_per_batch() const noexcept {
    return agg_batches > 0 ? static_cast<double>(agg_msgs) /
                                 static_cast<double>(agg_batches)
                           : 0.0;
  }

  /// Pool hit rate over every allocation the wire layer served.
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total =
        buf_allocs + buf_hits + msg_allocs + msg_hits + env_allocs + env_hits;
    const std::uint64_t hits = buf_hits + msg_hits + env_hits;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

// ---- when/wait condition-engine counters ---------------------------------
//
// The condition-aware delivery engine (core/when.hpp, delivery.cpp)
// reports its work here: predicate evaluations, buffered deliveries,
// releases, and how many re-tests dependency tracking skipped. Always on
// (relaxed atomic adds, batched per retest pass) so bench/micro_when A/B
// runs work without --trace.

struct WhenEngineStats {
  std::uint64_t tests = 0;      ///< when-predicate evaluations
  std::uint64_t hits = 0;       ///< buffered messages released (re-test hit)
  std::uint64_t buffered = 0;   ///< deliveries that were buffered
  std::uint64_t skipped = 0;    ///< re-tests avoided by dependency tracking
  std::uint64_t high_water = 0; ///< max buffered messages on one chare

  /// Re-tests avoided as a fraction of all re-test opportunities.
  [[nodiscard]] double skip_rate() const noexcept {
    const std::uint64_t total = tests + skipped;
    return total > 0
               ? static_cast<double>(skipped) / static_cast<double>(total)
               : 0.0;
  }
};

namespace detail {
struct WhenAtomics {
  std::atomic<std::uint64_t> tests{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> buffered{0};
  std::atomic<std::uint64_t> skipped{0};
  std::atomic<std::uint64_t> high_water{0};

  void raise_high_water(std::uint64_t depth) noexcept {
    std::uint64_t cur = high_water.load(std::memory_order_relaxed);
    while (depth > cur &&
           !high_water.compare_exchange_weak(cur, depth,
                                             std::memory_order_relaxed)) {
    }
  }
};
extern WhenAtomics g_when;
}  // namespace detail

/// Snapshot of the condition-engine counters since the last
/// begin_run()/reset_when_stats().
[[nodiscard]] WhenEngineStats when_stats() noexcept;

/// Zero the condition-engine counters (begin_run does this too).
void reset_when_stats() noexcept;

// ---- task-pool engine counters -------------------------------------------
//
// The chunked/stealing pool (src/pool/) reports its scheduling work
// here: grants and their sizes, steal traffic, result batches, beats,
// and the per-task latency histogram benches read p99 from. Always on
// (relaxed atomic adds) so bench/micro_pool A/B runs work without
// --trace.

/// Log2-nanosecond buckets for the pool task-latency histogram. Bucket
/// i holds tasks with execution time in [2^i, 2^(i+1)) ns.
inline constexpr int kPoolLatBuckets = 48;

struct PoolStats {
  std::uint64_t grants = 0;          ///< chunk grants sent by the master
  std::uint64_t granted_tasks = 0;   ///< tasks covered by those grants
  std::uint64_t max_chunk = 0;       ///< largest single grant
  std::uint64_t steal_attempts = 0;  ///< steal requests sent by workers
  std::uint64_t steal_hits = 0;      ///< steals that returned work
  std::uint64_t stolen_tasks = 0;    ///< tasks moved worker-to-worker
  std::uint64_t result_batches = 0;  ///< batched result messages
  std::uint64_t tasks_done = 0;      ///< task executions (incl. reruns)
  std::uint64_t beats = 0;           ///< decoupled heartbeat messages
  std::uint64_t reassigns = 0;       ///< steal reassignments at the master
  std::uint64_t inflight_clamps = 0; ///< grants clamped by --pool-max-inflight
  std::uint64_t queue_high_water = 0;///< max jobs waiting for processors
  std::uint64_t task_ns_sum = 0;     ///< summed task execution nanoseconds
  std::uint64_t lat_hist[kPoolLatBuckets] = {0};

  /// Mean tasks per grant (0 when no grants went out).
  [[nodiscard]] double mean_chunk() const noexcept {
    return grants > 0 ? static_cast<double>(granted_tasks) /
                            static_cast<double>(grants)
                      : 0.0;
  }

  /// Fraction of steal attempts that returned work.
  [[nodiscard]] double steal_hit_rate() const noexcept {
    return steal_attempts > 0 ? static_cast<double>(steal_hits) /
                                    static_cast<double>(steal_attempts)
                              : 0.0;
  }

  /// Mean task execution seconds (0 when no tasks ran).
  [[nodiscard]] double mean_task_s() const noexcept {
    return tasks_done > 0 ? static_cast<double>(task_ns_sum) * 1e-9 /
                                static_cast<double>(tasks_done)
                          : 0.0;
  }

  /// p99 task execution seconds, read off the log2 histogram (upper
  /// bucket edge — a conservative estimate).
  [[nodiscard]] double p99_task_s() const noexcept;
};

namespace detail {
struct PoolAtomics {
  std::atomic<std::uint64_t> grants{0};
  std::atomic<std::uint64_t> granted_tasks{0};
  std::atomic<std::uint64_t> max_chunk{0};
  std::atomic<std::uint64_t> steal_attempts{0};
  std::atomic<std::uint64_t> steal_hits{0};
  std::atomic<std::uint64_t> stolen_tasks{0};
  std::atomic<std::uint64_t> result_batches{0};
  std::atomic<std::uint64_t> tasks_done{0};
  std::atomic<std::uint64_t> beats{0};
  std::atomic<std::uint64_t> reassigns{0};
  std::atomic<std::uint64_t> inflight_clamps{0};
  std::atomic<std::uint64_t> queue_high_water{0};
  std::atomic<std::uint64_t> task_ns_sum{0};
  std::atomic<std::uint64_t> lat_hist[kPoolLatBuckets] = {};

  void raise_max(std::atomic<std::uint64_t>& slot,
                 std::uint64_t v) noexcept {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  void note_task(std::uint64_t ns) noexcept;
};
extern PoolAtomics g_pool;
}  // namespace detail

/// Snapshot of the pool counters since the last
/// begin_run()/reset_pool_stats().
[[nodiscard]] PoolStats pool_stats() noexcept;

/// Zero the pool counters (begin_run does this too).
void reset_pool_stats() noexcept;

/// One completed pool job, recorded by the master at job completion.
/// Times come from the backend clock (virtual on the simulator).
struct PoolJobRecord {
  std::uint64_t job_id = 0;
  std::int64_t priority = 0;
  std::uint64_t tasks = 0;
  double submit_t = 0.0;  ///< map_async reached the master
  double start_t = 0.0;   ///< first processors granted
  double done_t = 0.0;    ///< future resolved
  bool failed = false;

  /// Job throughput over its running span (tasks per second).
  [[nodiscard]] double tasks_per_s() const noexcept {
    const double span = done_t - start_t;
    return span > 0 ? static_cast<double>(tasks) / span : 0.0;
  }
};

/// Append one job record (called by the pool master; mutex-guarded).
void pool_job_note(const PoolJobRecord& rec);

/// Job records accumulated since begin_run()/reset_pool_stats().
[[nodiscard]] std::vector<PoolJobRecord> pool_job_records();

namespace detail {
struct WireAtomics {
  std::atomic<std::uint64_t> envelopes{0};
  std::atomic<std::uint64_t> bytes_packed{0};
  std::atomic<std::uint64_t> sbo_payloads{0};
  std::atomic<std::uint64_t> buf_allocs{0};
  std::atomic<std::uint64_t> buf_hits{0};
  std::atomic<std::uint64_t> buf_recycled{0};
  std::atomic<std::uint64_t> msg_allocs{0};
  std::atomic<std::uint64_t> msg_hits{0};
  std::atomic<std::uint64_t> msg_recycled{0};
  std::atomic<std::uint64_t> env_allocs{0};
  std::atomic<std::uint64_t> env_hits{0};
  std::atomic<std::uint64_t> transport_msgs{0};
  std::atomic<std::uint64_t> agg_batches{0};
  std::atomic<std::uint64_t> agg_msgs{0};
  std::atomic<std::uint64_t> agg_flush_bytes{0};
  std::atomic<std::uint64_t> agg_flush_count{0};
  std::atomic<std::uint64_t> agg_flush_idle{0};
  std::atomic<std::uint64_t> agg_flush_order{0};
};
extern WireAtomics g_wire;
}  // namespace detail

/// Snapshot of the wire counters accumulated since the last
/// begin_run()/reset_wire_stats().
[[nodiscard]] WireStats wire_stats() noexcept;

/// Zero the wire counters (begin_run does this too).
void reset_wire_stats() noexcept;

// ---- chare-array section counters ----------------------------------------
//
// The section layer (core/sections.cpp) reports its work here: sections
// built, spanning-tree repairs after migration, multicasts and the
// envelopes they cost vs what a naive whole-collection broadcast would
// have cost, and section-reduction traffic. Always on (relaxed atomic
// adds) so bench/micro_section A/B runs work without --trace.

struct SectionStats {
  std::uint64_t sections_built = 0;   ///< section_create calls
  std::uint64_t tree_repairs = 0;     ///< delivery splits rebuilt post-migration
  std::uint64_t mcasts = 0;           ///< multicasts initiated
  std::uint64_t mcast_envelopes = 0;  ///< envelopes sent by section multicast
  /// Envelopes a naive broadcast+filter would have needed minus what the
  /// section tree used, accumulated at the tree root per multicast.
  std::uint64_t envelopes_saved = 0;
  std::uint64_t contributions = 0;    ///< section contribute calls
  std::uint64_t red_fragments = 0;    ///< combined fragments sent up tree edges
  std::uint64_t reductions_done = 0;  ///< section reductions delivered at root
};

namespace detail {
struct SectionAtomics {
  std::atomic<std::uint64_t> sections_built{0};
  std::atomic<std::uint64_t> tree_repairs{0};
  std::atomic<std::uint64_t> mcasts{0};
  std::atomic<std::uint64_t> mcast_envelopes{0};
  std::atomic<std::uint64_t> envelopes_saved{0};
  std::atomic<std::uint64_t> contributions{0};
  std::atomic<std::uint64_t> red_fragments{0};
  std::atomic<std::uint64_t> reductions_done{0};
};
extern SectionAtomics g_section;
}  // namespace detail

/// Snapshot of the section counters accumulated since the last
/// begin_run()/reset_section_stats().
[[nodiscard]] SectionStats section_stats() noexcept;

/// Zero the section counters (begin_run does this too).
void reset_section_stats() noexcept;

struct Config {
  bool enabled = false;
  std::string out_path = "trace.json";
  /// Ring capacity in events per PE; the oldest events are overwritten
  /// (and counted as dropped) once a PE exceeds it.
  std::size_t buffer_events = 1u << 16;
  bool print_summary = true;
};

/// Install a configuration. Takes effect for the next Runtime (rings are
/// allocated in begin_run).
void configure(Config cfg);

/// Read --trace, --trace-out=<path>, --trace-buffer=<events> and install.
void configure_from_options(const cxu::Options& opt);

[[nodiscard]] const Config& config() noexcept;

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// True when tracing is on — the one-branch fast check every hook makes.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Called by the Runtime when a machine is brought up: sizes one ring per
/// PE and resets counters. A fresh Runtime replaces the previous run's
/// trace data.
void begin_run(int num_pes, bool simulated);

/// Record one event on `pe` at backend time `t`. No-op (after the enabled
/// check the macros already make) for pe < 0 — bootstrap sends from the
/// driver thread have no PE context. Also bumps the kind's counters.
void record(int pe, double t, EventKind kind, std::uint64_t a = 0,
            std::uint64_t b = 0);

// ---- inspection (call after Machine::run returns; not thread-safe) ------

/// Events retained for `pe`, oldest first (chronological per PE).
[[nodiscard]] std::vector<Event> events(int pe);
[[nodiscard]] std::uint64_t total_events();
[[nodiscard]] int traced_pes() noexcept;
[[nodiscard]] bool traced_run_was_simulated() noexcept;
[[nodiscard]] Counters counters(int pe);
[[nodiscard]] Counters aggregate();

/// Per-PE summary (messages, bytes, entry/idle seconds, idle %) plus a
/// totals row and the global entry-method time histogram.
[[nodiscard]] std::string summary_table();

/// JSON timeline: {version, simulated, num_pes, events:[...],
/// counters:{per_pe:[...], total:{...}}}. Events carry
/// {t, pe, kind, a, b} and are sorted by (t, pe).
void write_json(std::ostream& os);
/// Returns false (and logs) if the file cannot be opened.
bool write_json(const std::string& path);

/// If enabled: write the timeline to config().out_path and print the
/// summary table to stdout. The trace covers the most recent Runtime.
void report_if_enabled();

/// Drop all trace data and restore the default (disabled) configuration.
void reset();

}  // namespace cx::trace

// Hook macros — compiled out with -DCHARMX_TRACE_DISABLED; otherwise the
// disabled-at-runtime cost is one branch.
#ifndef CHARMX_TRACE_DISABLED
#define CX_TRACE_EVENT(pe, t, kind, a, b)                      \
  do {                                                         \
    if (::cx::trace::enabled()) {                              \
      ::cx::trace::record((pe), (t), (kind), (a), (b));        \
    }                                                          \
  } while (0)
#else
#define CX_TRACE_EVENT(pe, t, kind, a, b) \
  do {                                    \
  } while (0)
#endif
