#pragma once
// cx::ft::RetryPolicy — the one retry/backoff schedule shared by every
// layer that retries something: reliable-delivery retransmits (the
// machine backends via FaultInjector::retry_timeout), pool worker
// resubmission, Future-based phase drivers (get_for loops), and the
// auto-recovery coordinator. Before this struct the same
// base-delay/backoff/jitter/max-attempts logic existed as three ad-hoc
// copies with subtly different knobs.
//
// The policy is pure data + arithmetic: jitter is applied by the caller
// (FaultInjector owns the seeded RNG) so the policy itself stays
// deterministic and copyable across threads.

namespace cx::ft {

struct RetryPolicy {
  double base_s = 10.0e-3;  ///< delay before the first retry (seconds)
  double backoff = 2.0;     ///< delay multiplier per subsequent attempt
  double jitter = 0.25;     ///< max extra delay, as a fraction of the delay
  int max_attempts = 8;     ///< retries before giving up entirely
  double deadline_s = 0.0;  ///< overall retry budget; 0 = unbounded

  /// Deterministic (jitter-free) delay before retry number `attempt`
  /// (0-based): base_s * backoff^attempt.
  [[nodiscard]] double delay(int attempt) const noexcept {
    double d = base_s;
    for (int i = 0; i < attempt; ++i) d *= backoff;
    return d;
  }

  /// True while retry number `attempt` (0-based) is still allowed and
  /// `elapsed_s` of retrying has not exhausted the overall deadline.
  [[nodiscard]] bool allows(int attempt, double elapsed_s = 0.0) const
      noexcept {
    if (attempt >= max_attempts) return false;
    if (deadline_s > 0.0 && elapsed_s >= deadline_s) return false;
    return true;
  }

  /// Sum of all jitter-free delays: the worst-case time a caller spends
  /// retrying before giving up (ignoring deadline_s).
  [[nodiscard]] double total_delay() const noexcept {
    double sum = 0.0;
    for (int i = 0; i < max_attempts; ++i) sum += delay(i);
    return sum;
  }
};

}  // namespace cx::ft
