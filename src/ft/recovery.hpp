#pragma once
// cx::ft recovery — protocol state for the automatic recovery
// coordinator (--ft-auto-recover). The message pumping lives in
// core/ft_handlers.cpp; this header holds the pure state machine so it
// can be unit-tested and documented in one place.
//
// Coordinator election is deterministic: the lowest live PE. That is
// PE 0 unless PE 0 is itself a casualty, in which case the machine's
// failure listener routes the PeFailure to the next-lowest live PE,
// which becomes the coordinator. Both backends share one process, so
// the coordinator state below is plain shared memory — failover needs
// no state handoff, only a new owner driving it.
//
// One recovery round:
//
//   Idle ──failure──▶ Notifying   broadcast FtNoticeHeader to live PEs
//                        │        (detectors reset; apps see the log)
//                        ▼
//                     Settling    quiesce: sleep settle_s so in-flight
//                        │        pre-failure traffic drains or dies
//                        ▼
//                     Restoring   revive dead PEs, collective restore
//                        │        from the newest complete checkpoint
//              ┌─────────┴──────────┐
//          acks in             timeout / new failure
//              │                mid-round (dirty)
//              ▼                     │
//            Idle ◀── MTTR logged    └──▶ loop (fresh notice/settle/
//                                         restore, bounded by the
//                                         RetryPolicy)
//
// If the coordinator itself dies mid-round, the failure notification
// for it reaches the next-lowest live PE, which begins a *new* round
// (round number bumps); the old coordinator's driver fiber — possibly
// revived later by restore — sees the stale round stamp and exits
// quietly.

#include <cstdint>

namespace cx::ft {

enum class RecoveryPhase : std::uint8_t {
  Idle = 0,
  Notifying,
  Settling,
  Restoring,
};

const char* recovery_phase_name(RecoveryPhase p) noexcept;

/// Outcome of cx::ft::restore() — the typed replacement for the old
/// throw-on-no-checkpoint behaviour.
enum class RestoreStatus : std::uint8_t {
  Ok = 0,
  NoCheckpoint,  ///< nothing complete to restore from
  Timeout,       ///< acks missing within the bound (a PE died mid-restore)
};

const char* restore_status_name(RestoreStatus s) noexcept;

/// Coordinator-side state for the current recovery round. Owned by the
/// runtime's shared FtState; only the elected coordinator mutates it
/// (under the runtime's ft mutex on the threaded backend).
struct RecoveryState {
  RecoveryPhase phase = RecoveryPhase::Idle;
  int owner = -1;           ///< PE driving the current round; -1 = none
  std::uint64_t round = 0;  ///< rounds started (stamps driver fibers)
  bool dirty = false;       ///< a failure arrived while a round ran
  double t0 = 0.0;          ///< round start on the owner's clock (MTTR)

  /// Start a new round owned by `pe`; returns its round stamp.
  std::uint64_t begin(int pe, double now) noexcept {
    phase = RecoveryPhase::Notifying;
    owner = pe;
    dirty = false;
    t0 = now;
    return ++round;
  }

  void finish() noexcept {
    phase = RecoveryPhase::Idle;
    owner = -1;
    dirty = false;
  }
};

/// Effective quiesce delay before restore: the configured value, or a
/// backend-appropriate default (virtual microseconds on the DES
/// backend, tens of wall milliseconds on threads) when settle < 0.
[[nodiscard]] double effective_settle(double configured_s,
                                      bool simulated) noexcept;

}  // namespace cx::ft
