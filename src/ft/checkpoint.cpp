#include "ft/checkpoint.hpp"

#include <fstream>

namespace cx::ft {

std::uint64_t fnv1a(const void* data, std::size_t n,
                    std::uint64_t h) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

CheckpointStore& CheckpointStore::instance() {
  static CheckpointStore store;
  return store;
}

void CheckpointStore::reset(int num_pes) {
  std::lock_guard<std::mutex> lk(mu_);
  num_pes_ = num_pes;
  complete_epoch_ = 0;
  slots_.assign(static_cast<std::size_t>(num_pes), {});
}

void CheckpointStore::store(int pe, std::uint64_t epoch,
                            std::vector<std::byte> blob) {
  std::lock_guard<std::mutex> lk(mu_);
  if (pe < 0 || pe >= num_pes_) return;
  if (!disk_dir_.empty()) {
    const std::string path = disk_dir_ + "/ckpt_e" + std::to_string(epoch) +
                             "_pe" + std::to_string(pe) + ".bin";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (out) {
      out.write(reinterpret_cast<const char*>(blob.data()),
                static_cast<std::streamsize>(blob.size()));
    }
  }
  Entry& e = slots_[static_cast<std::size_t>(pe)][epoch];
  e.buddy = blob;  // "on" (pe+1) % P
  e.primary = std::move(blob);
  // Did this store complete the epoch? Only a complete epoch may be
  // served — a partial one (crash mid-collective) would mix states.
  if (epoch > complete_epoch_) {
    bool complete = true;
    for (const auto& per_pe : slots_) {
      if (per_pe.find(epoch) == per_pe.end()) {
        complete = false;
        break;
      }
    }
    if (complete) {
      complete_epoch_ = epoch;
      prune();
    }
  }
}

const std::vector<std::byte>* CheckpointStore::blob_at_complete(
    int pe) const {
  if (pe < 0 || pe >= num_pes_ || complete_epoch_ == 0) return nullptr;
  const auto& per_pe = slots_[static_cast<std::size_t>(pe)];
  const auto it = per_pe.find(complete_epoch_);
  if (it == per_pe.end()) return nullptr;
  return it->second.primary.empty() ? &it->second.buddy
                                    : &it->second.primary;
}

void CheckpointStore::prune() {
  for (auto& per_pe : slots_) {
    for (auto it = per_pe.begin(); it != per_pe.end();) {
      if (it->first < complete_epoch_) {
        it = per_pe.erase(it);
      } else {
        ++it;
      }
    }
  }
}

std::uint64_t CheckpointStore::latest_epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return complete_epoch_;
}

std::vector<std::byte> CheckpointStore::latest(int pe) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto* blob = blob_at_complete(pe);
  return blob != nullptr ? *blob : std::vector<std::byte>{};
}

void CheckpointStore::drop_primary(int pe) {
  std::lock_guard<std::mutex> lk(mu_);
  if (pe < 0 || pe >= num_pes_) return;
  for (auto& [epoch, e] : slots_[static_cast<std::size_t>(pe)]) {
    e.primary.clear();
    e.primary.shrink_to_fit();
  }
}

std::uint64_t CheckpointStore::digest() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (int pe = 0; pe < num_pes_; ++pe) {
    const auto* blob = blob_at_complete(pe);
    static const std::vector<std::byte> kEmpty;
    const auto& b = blob != nullptr ? *blob : kEmpty;
    const std::uint64_t n = b.size();
    h = fnv1a(&n, sizeof(n), h);
    h = fnv1a(b.data(), b.size(), h);
  }
  return h;
}

void CheckpointStore::set_disk_dir(std::string dir) {
  std::lock_guard<std::mutex> lk(mu_);
  disk_dir_ = std::move(dir);
}

void CheckpointStore::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& per_pe : slots_) per_pe.clear();
  complete_epoch_ = 0;
}

}  // namespace cx::ft
