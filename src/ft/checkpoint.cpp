#include "ft/checkpoint.hpp"

#include <fstream>

namespace cx::ft {

std::uint64_t fnv1a(const void* data, std::size_t n,
                    std::uint64_t h) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

CheckpointStore& CheckpointStore::instance() {
  static CheckpointStore store;
  return store;
}

void CheckpointStore::reset(int num_pes) {
  std::lock_guard<std::mutex> lk(mu_);
  num_pes_ = num_pes;
  epoch_ = 0;
  primary_.assign(static_cast<std::size_t>(num_pes), {});
  buddy_.assign(static_cast<std::size_t>(num_pes), {});
  blob_epoch_.assign(static_cast<std::size_t>(num_pes), 0);
}

void CheckpointStore::store(int pe, std::uint64_t epoch,
                            std::vector<std::byte> blob) {
  std::lock_guard<std::mutex> lk(mu_);
  if (pe < 0 || pe >= num_pes_) return;
  buddy_[static_cast<std::size_t>(pe)] = blob;  // "on" (pe+1) % P
  blob_epoch_[static_cast<std::size_t>(pe)] = epoch;
  if (epoch > epoch_) epoch_ = epoch;
  if (!disk_dir_.empty()) {
    const std::string path = disk_dir_ + "/ckpt_e" + std::to_string(epoch) +
                             "_pe" + std::to_string(pe) + ".bin";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (out) {
      out.write(reinterpret_cast<const char*>(blob.data()),
                static_cast<std::streamsize>(blob.size()));
    }
  }
  primary_[static_cast<std::size_t>(pe)] = std::move(blob);
}

std::uint64_t CheckpointStore::latest_epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return epoch_;
}

std::vector<std::byte> CheckpointStore::latest(int pe) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (pe < 0 || pe >= num_pes_) return {};
  const auto i = static_cast<std::size_t>(pe);
  if (!primary_[i].empty()) return primary_[i];
  return buddy_[i];
}

void CheckpointStore::drop_primary(int pe) {
  std::lock_guard<std::mutex> lk(mu_);
  if (pe < 0 || pe >= num_pes_) return;
  primary_[static_cast<std::size_t>(pe)].clear();
  primary_[static_cast<std::size_t>(pe)].shrink_to_fit();
}

std::uint64_t CheckpointStore::digest() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (int pe = 0; pe < num_pes_; ++pe) {
    const auto i = static_cast<std::size_t>(pe);
    const auto& blob = primary_[i].empty() ? buddy_[i] : primary_[i];
    const std::uint64_t n = blob.size();
    h = fnv1a(&n, sizeof(n), h);
    h = fnv1a(blob.data(), blob.size(), h);
  }
  return h;
}

void CheckpointStore::set_disk_dir(std::string dir) {
  std::lock_guard<std::mutex> lk(mu_);
  disk_dir_ = std::move(dir);
}

void CheckpointStore::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& b : primary_) b.clear();
  for (auto& b : buddy_) b.clear();
  for (auto& e : blob_epoch_) e = 0;
  epoch_ = 0;
}

}  // namespace cx::ft
