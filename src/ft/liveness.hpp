#pragma once
// cx::ft liveness — runtime-level heartbeats with an accrual-style
// failure detector, so a silent or hung PE is noticed even when no
// application message happens to target it (reliable delivery only
// detects failures of PEs somebody is actively sending to).
//
// Topology: a ring. PE p heartbeats its successor (p+1)%P every
// interval and monitors its predecessor (p-1+P)%P, so liveness costs
// exactly P best-effort messages per interval regardless of scale and
// every PE is watched by exactly one peer. Heartbeats ride
// kFtBestEffort (no ack, no retransmit — the next beat supersedes a
// lost one) and kWireNoAgg (like QD probes, they must never sit in an
// aggregation batch).
//
// Detection: per monitored link, suspicion is the number of heartbeat
// intervals elapsed since the last beat — a linear approximation of the
// phi-accrual detector (Hayashibara et al.), exact under the DES
// backend where the inter-arrival distribution is a point mass. When
// suspicion crosses the configured threshold the monitor declares the
// predecessor Hung via Machine::declare_failed, which feeds the normal
// PeFailure -> (optional) auto-recovery pipeline.
//
// This header is pure detector state + ring arithmetic; the message
// pumping lives in core/ft_handlers.cpp (it needs the runtime's handler
// table and timers).

#include <cstdint>

#include "ft/fault.hpp"

namespace cx::ft {

struct LivenessConfig {
  double interval_s = 0.0;  ///< heartbeat period; 0 disables the layer
  double threshold = 4.0;   ///< suspicion (missed intervals) to declare

  [[nodiscard]] bool enabled() const noexcept { return interval_s > 0.0; }

  /// Worst-case detection latency from the moment a PE goes silent:
  /// up to one interval since its last beat, plus `threshold` intervals
  /// of accrued suspicion, observed at the monitor's next tick.
  [[nodiscard]] double detection_bound() const noexcept {
    return (threshold + 2.0) * interval_s;
  }
};

/// Extract the liveness knobs from the machine's fault config.
LivenessConfig liveness_from_faults(const FaultConfig& f) noexcept;

/// Accrual detector for one monitored link.
struct AccrualDetector {
  double last_seen = -1.0;   ///< clock of the last heartbeat; <0 = none yet
  std::uint64_t beats = 0;   ///< heartbeats observed since the last reset

  void heartbeat(double now) noexcept {
    if (now > last_seen) last_seen = now;
    ++beats;
  }

  /// Restart the grace period (first tick, post-restore, recovery
  /// notice): the peer gets a full threshold's worth of intervals
  /// before suspicion accrues again.
  void reset(double now) noexcept {
    last_seen = now;
    beats = 0;
  }

  /// Missed-interval count: 0 while beats arrive on time, grows
  /// linearly with silence.
  [[nodiscard]] double suspicion(double now, double interval_s) const
      noexcept {
    if (last_seen < 0.0 || interval_s <= 0.0) return 0.0;
    return (now - last_seen) / interval_s;
  }

  [[nodiscard]] bool suspect(double now, const LivenessConfig& cfg) const
      noexcept {
    return suspicion(now, cfg.interval_s) >= cfg.threshold;
  }
};

/// Per-PE liveness state owned by that PE's scheduler context.
struct PeLiveness {
  AccrualDetector pred;      ///< detector for the predecessor link
  std::uint64_t hb_seq = 0;  ///< heartbeats sent to the successor
  /// Tick-chain generation. A PE's periodic tick is a self-timer chain;
  /// when the PE dies the chain dies with it, and restore starts a new
  /// chain stamped with a bumped generation — stale ticks from the old
  /// chain are dropped by the generation check, so there is never more
  /// than one live chain per PE.
  std::uint64_t tick_gen = 0;
};

[[nodiscard]] constexpr int hb_successor(int pe, int num_pes) noexcept {
  return num_pes > 0 ? (pe + 1) % num_pes : 0;
}
[[nodiscard]] constexpr int hb_predecessor(int pe, int num_pes) noexcept {
  return num_pes > 0 ? (pe - 1 + num_pes) % num_pes : 0;
}

}  // namespace cx::ft
