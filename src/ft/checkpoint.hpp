#pragma once
// cx::ft checkpoint storage — in-memory double checkpointing in the
// style of Charm++'s buddy scheme, scaled to our single-process
// backends. Every PE's PUPed state blob is stored twice: a "primary"
// copy owned by the PE itself and a "buddy" copy conceptually held by
// PE (pe+1) % P. When a PE crashes, the runtime drops its primary copy
// (that memory died with the PE) and the restore path reads the buddy
// copy instead — so a restart survives exactly one failed PE per buddy
// pair, matching the in-memory double-checkpoint guarantee.
//
// An optional on-disk snapshot mirrors each blob to
// <dir>/ckpt_e<epoch>_pe<pe>.bin for post-mortem inspection.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace cx::ft {

/// FNV-1a 64-bit; used for checkpoint digests (cheap, deterministic,
/// and good enough to detect state divergence in tests).
std::uint64_t fnv1a(const void* data, std::size_t n,
                    std::uint64_t h = 0xcbf29ce484222325ULL) noexcept;

class CheckpointStore {
 public:
  /// Process-wide store (both backends run in one process; a real
  /// distributed port would shard this per node).
  static CheckpointStore& instance();

  /// Forget everything and size for a fresh machine of `num_pes`.
  void reset(int num_pes);

  /// Record PE `pe`'s state blob for checkpoint `epoch`: primary copy
  /// plus buddy copy on (pe+1) % P, plus the optional disk mirror.
  void store(int pe, std::uint64_t epoch, std::vector<std::byte> blob);

  /// Latest fully-stored epoch (0 = no checkpoint yet).
  [[nodiscard]] std::uint64_t latest_epoch() const;

  /// PE `pe`'s blob from the latest epoch: the primary copy when it
  /// survived, else the buddy copy. Returns an empty vector when the
  /// PE has no checkpoint at all.
  [[nodiscard]] std::vector<std::byte> latest(int pe) const;

  /// Simulate the loss of a crashed PE's local checkpoint memory; the
  /// buddy copy becomes the only source for restore.
  void drop_primary(int pe);

  /// Digest over every PE's latest blob (buddy fallback included) —
  /// equal digests mean equal checkpointed runtime state.
  [[nodiscard]] std::uint64_t digest() const;

  /// Enable/disable the on-disk mirror ("" disables).
  void set_disk_dir(std::string dir);

  void clear();

 private:
  mutable std::mutex mu_;
  int num_pes_ = 0;
  std::uint64_t epoch_ = 0;
  std::vector<std::vector<std::byte>> primary_;  ///< [pe] -> blob
  std::vector<std::vector<std::byte>> buddy_;    ///< [pe] -> blob of pe
  std::vector<std::uint64_t> blob_epoch_;        ///< [pe] -> epoch stored
  std::string disk_dir_;
};

}  // namespace cx::ft
