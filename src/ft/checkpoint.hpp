#pragma once
// cx::ft checkpoint storage — in-memory double checkpointing in the
// style of Charm++'s buddy scheme, scaled to our single-process
// backends. Every PE's PUPed state blob is stored twice: a "primary"
// copy owned by the PE itself and a "buddy" copy conceptually held by
// PE (pe+1) % P. When a PE crashes, the runtime drops its primary copy
// (that memory died with the PE) and the restore path reads the buddy
// copy instead — so a restart survives exactly one failed PE per buddy
// pair, matching the in-memory double-checkpoint guarantee.
//
// Epoch consistency: a crash can land in the middle of a checkpoint
// collective, leaving some PEs with epoch e stored and others still at
// e-1. Restoring from a per-PE "latest" would then mix two epochs into
// a franken-state, so the store versions blobs per epoch and only ever
// serves the newest COMPLETE epoch (stored by all P PEs). Incomplete
// epochs are retained until a newer complete one supersedes them, then
// pruned; the last complete epoch is never evicted.
//
// An optional on-disk snapshot mirrors each blob to
// <dir>/ckpt_e<epoch>_pe<pe>.bin for post-mortem inspection.

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace cx::ft {

/// FNV-1a 64-bit; used for checkpoint digests (cheap, deterministic,
/// and good enough to detect state divergence in tests).
std::uint64_t fnv1a(const void* data, std::size_t n,
                    std::uint64_t h = 0xcbf29ce484222325ULL) noexcept;

class CheckpointStore {
 public:
  /// Process-wide store (both backends run in one process; a real
  /// distributed port would shard this per node).
  static CheckpointStore& instance();

  /// Forget everything and size for a fresh machine of `num_pes`.
  void reset(int num_pes);

  /// Record PE `pe`'s state blob for checkpoint `epoch`: primary copy
  /// plus buddy copy on (pe+1) % P, plus the optional disk mirror.
  void store(int pe, std::uint64_t epoch, std::vector<std::byte> blob);

  /// Newest epoch stored by every PE (0 = no complete checkpoint yet).
  /// Partially-stored epochs — a crash interrupted the collective — are
  /// invisible here until they complete.
  [[nodiscard]] std::uint64_t latest_epoch() const;

  /// PE `pe`'s blob from the newest complete epoch: the primary copy
  /// when it survived, else the buddy copy. Empty when no complete
  /// checkpoint exists.
  [[nodiscard]] std::vector<std::byte> latest(int pe) const;

  /// Simulate the loss of a crashed PE's local checkpoint memory (all
  /// epochs); the buddy copies become the only source for restore.
  void drop_primary(int pe);

  /// Digest over every PE's blob at the newest complete epoch (buddy
  /// fallback included) — equal digests mean equal checkpointed
  /// runtime state.
  [[nodiscard]] std::uint64_t digest() const;

  /// Enable/disable the on-disk mirror ("" disables).
  void set_disk_dir(std::string dir);

  void clear();

 private:
  struct Entry {
    std::vector<std::byte> primary;
    std::vector<std::byte> buddy;
  };

  /// The blob to serve for `pe` at complete_epoch_ (primary else
  /// buddy); nullptr when none. Caller holds mu_.
  [[nodiscard]] const std::vector<std::byte>* blob_at_complete(int pe) const;
  /// Drop epochs strictly older than the newest complete one. Caller
  /// holds mu_.
  void prune();

  mutable std::mutex mu_;
  int num_pes_ = 0;
  std::uint64_t complete_epoch_ = 0;  ///< newest epoch all PEs stored
  std::vector<std::map<std::uint64_t, Entry>> slots_;  ///< [pe] -> epoch
  std::string disk_dir_;
};

}  // namespace cx::ft
