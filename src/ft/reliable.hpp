#pragma once
// cx::ft reliable-delivery bookkeeping, shared by both machine backends.
//
// The protocol: every cross-PE data message carries a per-(src,dst)
// sequence number; the receiver dedups (duplicates are acked but not
// delivered) and sends a machine-level ack; the sender keeps a copy and
// retransmits on timeout with exponential backoff + jitter until acked
// or until max_retries is exhausted — at which point it surfaces a typed
// PeFailure{Unreachable} instead of retrying forever.
//
// This header holds only the passive state (windows, dedup trackers,
// pending-copy records); the timer mechanics live in each backend
// (DES timer events in SimMachine, cv wait deadlines in
// ThreadedMachine) because they are fundamentally clock-specific.

#include <cstddef>
#include <cstdint>
#include <map>
#include <queue>
#include <set>
#include <vector>

#include "wire/buffer.hpp"

namespace cx::ft {

/// Receiver-side duplicate suppression for one (src,dst) link: a
/// low-water mark plus a sparse set of out-of-order deliveries, so
/// memory stays bounded by the reorder window rather than the message
/// count.
struct SeqTracker {
  std::uint64_t base = 0;         ///< every seq <= base was delivered
  std::set<std::uint64_t> ahead;  ///< delivered seqs > base

  /// Record `seq`; returns true if this is its first delivery.
  bool first_delivery(std::uint64_t seq) {
    if (seq <= base) return false;
    if (!ahead.insert(seq).second) return false;
    while (!ahead.empty() && *ahead.begin() == base + 1) {
      ahead.erase(ahead.begin());
      ++base;
    }
    return true;
  }
};

/// A sender-side copy of an unacked message, ready to retransmit. The
/// payload copy lives in a pooled wire buffer; retransmit clones are
/// rebuilt from it through the envelope builder (wire::clone_payload).
struct PendingSend {
  std::uint32_t handler = 0;
  std::int32_t dst_pe = 0;
  cx::wire::Buffer data;
  std::uint64_t size_override = 0;
  std::uint64_t seq = 0;
  /// Aggregation batches enroll as single units; the retransmit clone
  /// restores these flags so a resent batch is still unpacked as one.
  std::uint8_t wire_flags = 0;
  int attempts = 0;        ///< retransmissions so far
  double deadline = 0.0;   ///< backend clock of the next retransmit
};

/// Sender-side state for every destination reachable from one PE. Only
/// the owning PE's thread touches it (sends happen on the sender's
/// scheduler thread; acks are routed back to the sender's mailbox), so
/// no locking is needed.
struct SenderWindow {
  std::map<std::int32_t, std::uint64_t> next_seq;  ///< per destination
  /// Unacked copies keyed (dst, seq); ordered so abandon() is a range
  /// erase.
  std::map<std::pair<std::int32_t, std::uint64_t>, PendingSend> pending;

  /// Lazy-deletion min-heap over retransmit deadlines, so
  /// next_deadline() is O(log n) amortized instead of a full scan over
  /// thousands of unacked copies (chaos load). An entry is stale — and
  /// skipped on pop — when its (dst, seq) was acked/abandoned or when
  /// the pending copy was re-armed with a newer deadline. Deadlines are
  /// copied exactly (no arithmetic), so the equality check is safe on
  /// doubles.
  struct DueEntry {
    double deadline;
    std::int32_t dst;
    std::uint64_t seq;
  };
  struct DueLater {
    bool operator()(const DueEntry& a, const DueEntry& b) const noexcept {
      return a.deadline > b.deadline;
    }
  };
  std::priority_queue<DueEntry, std::vector<DueEntry>, DueLater> due;

  std::uint64_t allocate(std::int32_t dst) { return ++next_seq[dst]; }

  bool acked(std::int32_t dst, std::uint64_t seq) {
    return pending.erase({dst, seq}) > 0;
  }

  /// Register (dst, seq)'s current retransmit deadline in the heap.
  /// Call after inserting the pending copy or updating its deadline.
  void arm(std::int32_t dst, std::uint64_t seq, double deadline) {
    due.push({deadline, dst, seq});
  }

  /// Pop stale heap entries so the top (if any) is a live deadline.
  void prune_due() {
    while (!due.empty()) {
      const DueEntry& e = due.top();
      const auto it = pending.find({e.dst, e.seq});
      if (it == pending.end() || it->second.deadline != e.deadline) {
        due.pop();
        continue;
      }
      break;
    }
  }

  /// Earliest retransmit deadline, or +inf when nothing is pending.
  /// Backends that track deadlines with their own timers (SimMachine's
  /// DES events) never call arm(), so the heap stays empty and this
  /// returns kNever for them.
  [[nodiscard]] double next_deadline() {
    prune_due();
    return due.empty() ? kNever : due.top().deadline;
  }

  /// Drop every unacked copy headed to `dst` (the PE was declared
  /// failed; retrying a dead peer only generates noise). Heap entries
  /// go stale and fall out on the next prune.
  void abandon(std::int32_t dst) {
    auto it = pending.lower_bound({dst, 0});
    while (it != pending.end() && it->first.first == dst) {
      it = pending.erase(it);
    }
  }

  static constexpr double kNever = 1.0e300;
};

/// Receiver-side dedup state for one PE (keyed by source).
struct ReceiverWindow {
  std::map<std::int32_t, SeqTracker> from;

  bool first_delivery(std::int32_t src, std::uint64_t seq) {
    return from[src].first_delivery(seq);
  }
};

}  // namespace cx::ft
