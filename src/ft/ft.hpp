#pragma once
// cx::ft public API — the pieces an application touches. The heavy
// lifting (collective checkpoint, crash recovery, the liveness layer
// and the auto-recovery coordinator) lives in the runtime scheduler
// (src/core/ft_handlers.cpp) because it must walk live chare
// collections and reduction state; this header is the stable surface.
//
//   cx::ft::on_failure([](const cx::ft::PeFailure& f) { ... });
//   std::uint64_t epoch = cx::ft::checkpoint();   // collective, blocking
//   if (!cx::ft::failed_pes().empty()) {
//     if (cx::ft::restore() != cx::ft::RestoreStatus::Ok) ...
//   }
//
// With --ft-auto-recover the runtime drives restore itself: apps watch
// cx::ft::recoveries() (or register on_recovery) to learn a rollback
// happened and re-issue their in-flight phase.
//
// checkpoint()/restore() must be called from the driver fiber (the
// cx::run body), between phases — the same discipline Charm++ demands
// of its synchronous checkpoint call.

#include <cstdint>
#include <functional>
#include <vector>

#include "ft/checkpoint.hpp"
#include "ft/fault.hpp"
#include "ft/liveness.hpp"
#include "ft/recovery.hpp"
#include "ft/retry.hpp"

namespace cx::ft {

/// Collective checkpoint: PUPs every chare/group/array element, the
/// location tables, and in-flight reduction state on every PE into the
/// CheckpointStore (primary + buddy copies, optional disk mirror).
/// Blocks the driver fiber until all PEs have stored. Returns the new
/// checkpoint epoch (monotonically increasing from 1). Under
/// --ft-auto-recover a crash mid-checkpoint is survived: the partial
/// epoch is discarded, recovery rolls back, and the checkpoint is
/// retaken under a fresh epoch (RetryPolicy-bounded).
std::uint64_t checkpoint();

/// Restore every PE from the newest complete checkpoint: revives
/// crashed/hung PEs, discards post-checkpoint runtime state
/// (collections, stashes, pending reductions, unacked sends),
/// reconstructs all elements via their PUP constructors, resets
/// quiescence counters to the checkpointed values, and wakes every
/// armed Future::get_for deadline so suspended drivers observe the
/// rollback. Blocks the driver fiber until done (or until `timeout_s`
/// backend seconds pass, when timeout_s > 0).
///
/// Returns a typed status instead of throwing: NoCheckpoint when no
/// complete checkpoint exists, Timeout when acks did not all arrive in
/// time (another PE died mid-restore; retry after it is handled).
RestoreStatus restore(double timeout_s = 0.0);

/// Digest of the newest complete checkpoint (CheckpointStore::digest).
std::uint64_t checkpoint_digest();

/// Mirror future checkpoints to on-disk snapshots under `dir`
/// (pass "" to disable). The directory must already exist.
void set_checkpoint_dir(const std::string& dir);

/// Register a callback invoked on the coordinator PE's scheduler
/// whenever a PE failure is detected (scripted crash, inject_kill,
/// heartbeat detection, or retransmit give-up). Callbacks run on the
/// scheduler, so they may send messages but must not block.
void on_failure(std::function<void(const PeFailure&)> cb);

/// Register a callback invoked on the coordinator PE's scheduler after
/// each completed auto-recovery round (state rolled back, all PEs
/// live). Same discipline as on_failure.
void on_recovery(std::function<void(std::uint64_t round)> cb);

/// Completed auto-recovery rounds so far (0 without --ft-auto-recover).
/// Safe from any PE/fiber; phase drivers compare before/after a timed
/// wait to learn a rollback happened while they slept.
std::uint64_t recoveries();

/// Epoch the most recent successful restore() rolled back to (0 before
/// any restore). Phase drivers that tag each checkpoint() epoch with
/// their position use this to re-align after a rollback that went
/// further back than the phase they were waiting on — e.g. a crash
/// mid-checkpoint discards the partial epoch and restores an older one.
std::uint64_t last_restored_epoch();

/// PEs currently marked failed (crashed, hung, or unreachable).
std::vector<int> failed_pes();

/// True when --ft-auto-recover is on: the runtime itself rolls back
/// after a failure, so components (pool, phase drivers) should park and
/// wait for on_recovery instead of failing fast.
bool auto_recover_enabled();

/// The run's unified RetryPolicy (from --ft-rto-ms/--ft-backoff/
/// --ft-jitter/--ft-retries/--ft-retry-deadline-ms): the same schedule
/// reliable delivery retransmits on. Apps and the pool reuse it for
/// their own retry loops instead of inventing local constants.
RetryPolicy retry_policy();

}  // namespace cx::ft
