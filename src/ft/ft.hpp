#pragma once
// cx::ft public API — the pieces an application touches. The heavy
// lifting (collective checkpoint, crash recovery) lives in the runtime
// scheduler (src/core/runtime.cpp) because it must walk live chare
// collections and reduction state; this header is the stable surface.
//
//   cx::ft::on_failure([](const cx::ft::PeFailure& f) { ... });
//   std::uint64_t epoch = cx::ft::checkpoint();   // collective, blocking
//   if (!cx::ft::failed_pes().empty()) cx::ft::restore();
//
// checkpoint()/restore() must be called from the driver fiber (the
// cx::run body), between phases — the same discipline Charm++ demands
// of its synchronous checkpoint call.

#include <cstdint>
#include <functional>
#include <vector>

#include "ft/checkpoint.hpp"
#include "ft/fault.hpp"

namespace cx::ft {

/// Collective checkpoint: PUPs every chare/group/array element, the
/// location tables, and in-flight reduction state on every PE into the
/// CheckpointStore (primary + buddy copies, optional disk mirror).
/// Blocks the driver fiber until all PEs have stored. Returns the new
/// checkpoint epoch (monotonically increasing from 1).
std::uint64_t checkpoint();

/// Restore every PE from the latest checkpoint: revives crashed/hung
/// PEs, discards post-checkpoint runtime state (collections, stashes,
/// pending reductions, unacked sends), reconstructs all elements via
/// their PUP constructors, and resets quiescence counters to the
/// checkpointed values. Blocks the driver fiber until done.
void restore();

/// Digest of the latest stored checkpoint (see CheckpointStore::digest).
std::uint64_t checkpoint_digest();

/// Mirror future checkpoints to on-disk snapshots under `dir`
/// (pass "" to disable). The directory must already exist.
void set_checkpoint_dir(const std::string& dir);

/// Register a callback invoked on PE 0's scheduler whenever a PE
/// failure is detected (scripted crash, inject_kill, or retransmit
/// give-up). Callbacks run on the scheduler, so they may send messages
/// but must not block.
void on_failure(std::function<void(const PeFailure&)> cb);

/// PEs currently marked failed (crashed, hung, or unreachable).
std::vector<int> failed_pes();

}  // namespace cx::ft
