#pragma once
// cx::ft — fault model shared by both machine backends.
//
// A FaultConfig describes which failures a run injects (seeded message
// drop/duplicate/delay probabilities, scripted PE crash/hang events)
// and how the runtime reacts: the unified RetryPolicy drives reliable
// delivery's retransmits, the liveness layer's heartbeats detect silent
// PEs, and the recovery coordinator can restore from checkpoint
// automatically (--ft-auto-recover). It travels inside
// cxm::MachineConfig so every backend sees the same knobs.
//
// All randomness flows through one seeded FaultInjector per machine, so a
// Sim run with the same seed replays the exact same fault script — the
// property the ft/chaos test tiers and the DES figure runs rely on.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ft/retry.hpp"
#include "pup/pup.hpp"
#include "util/rng.hpp"

namespace cxu {
class Options;
}

namespace cx::ft {

enum class FailureKind : std::uint8_t {
  Crashed = 0,      ///< PE stopped executing (scripted or inject_kill)
  Unreachable = 1,  ///< retransmits to the PE exhausted (ack give-up)
  Hung = 2,         ///< PE stopped draining its mailbox
};

/// A typed PE-failure notification, surfaced to the runtime instead of
/// letting a lost peer hang the scheduler forever.
struct PeFailure {
  std::int32_t pe = -1;
  FailureKind kind = FailureKind::Crashed;
  double time = 0.0;  ///< backend clock at detection

  void pup(pup::Er& p) {
    p | pe;
    p | kind;
    p | time;
  }
};

const char* failure_kind_name(FailureKind k) noexcept;

/// One scripted fault event: at backend time `at`, PE `pe` crashes or
/// hangs. Unlike the legacy one-shot crash_pe/hang_pe fields, a script
/// holds any number of events, so a PE revived by restore can be killed
/// again by a later entry — the shape chaos schedules need.
struct ScriptedFault {
  std::int32_t pe = -1;
  double at = 0.0;
  FailureKind kind = FailureKind::Crashed;  ///< Crashed or Hung
};

struct FaultConfig {
  std::uint64_t seed = 1;  ///< drives every injection decision

  // Network fault injection (per cross-PE message, both backends).
  double drop = 0.0;        ///< P(message silently lost)
  double dup = 0.0;         ///< P(message delivered twice)
  double delay = 0.0;       ///< P(message held back before delivery)
  double delay_s = 1.0e-3;  ///< mean extra latency of a delayed message

  // Reliable delivery (send-side seq + ack, retransmit with backoff).
  // `retry` is the unified RetryPolicy: base_s is the initial RTO,
  // max_attempts the give-up threshold before PeFailure{Unreachable}.
  bool reliable = false;
  RetryPolicy retry{};

  // Liveness layer (src/ft/liveness.hpp): runtime heartbeats on a ring
  // with an accrual-style detector per link. heartbeat_s == 0 disables
  // it entirely — no timers armed, no messages sent, zero overhead.
  double heartbeat_s = 0.0;   ///< heartbeat interval; 0 = off
  double hb_threshold = 4.0;  ///< suspicion (missed intervals) to declare

  // Recovery coordinator (src/ft/recovery.hpp): when on, the lowest
  // live PE drives notice -> quiesce -> restore on every PeFailure.
  bool auto_recover = false;
  double settle_s = -1.0;  ///< quiesce delay before restore; <0 = backend default

  // Scripted faults. The legacy single-event knobs remain for flag
  // compatibility; full_script() merges them with `script` into one
  // time-sorted event list (multi-event, works across revives).
  int crash_pe = -1;
  double crash_at = 0.0;  ///< virtual time of the scripted crash
  int hang_pe = -1;
  double hang_at = 0.0;  ///< virtual time the PE stops draining
  std::vector<ScriptedFault> script;

  [[nodiscard]] bool injecting() const noexcept {
    return drop > 0.0 || dup > 0.0 || delay > 0.0;
  }
  [[nodiscard]] bool scripted() const noexcept {
    return crash_pe >= 0 || hang_pe >= 0 || !script.empty();
  }
  [[nodiscard]] bool liveness() const noexcept { return heartbeat_s > 0.0; }
  /// True when any ft machinery must be active. When false, both
  /// backends keep the exact pre-ft send/deliver path: no acks, no
  /// buffering, no extra branches beyond this one check.
  [[nodiscard]] bool enabled() const noexcept {
    return injecting() || reliable || scripted() || liveness();
  }

  /// All scripted events (legacy crash_pe/hang_pe plus `script`),
  /// sorted by time with ties kept in insertion order.
  [[nodiscard]] std::vector<ScriptedFault> full_script() const;
};

/// Parse the --ft-* flag family (see README "Fault injection &
/// checkpointing" / "Self-healing"): --ft-seed, --ft-drop, --ft-dup,
/// --ft-delay, --ft-delay-ms, --ft-reliable, --ft-rto-ms, --ft-backoff,
/// --ft-jitter, --ft-retries, --ft-crash-pe, --ft-crash-at,
/// --ft-hang-pe, --ft-hang-at, --ft-script, --ft-heartbeat-ms,
/// --ft-heartbeat-threshold, --ft-auto-recover, --ft-settle-ms.
/// Probabilities are validated via Options::get_prob (throw outside
/// [0,1]); injection implies reliable delivery unless --ft-reliable=0.
FaultConfig fault_config_from_options(const cxu::Options& opt);

/// Parse a fault script string: comma-separated events of the form
/// "crash:<pe>@<time_s>" / "hang:<pe>@<time_s>", e.g.
/// "crash:2@5e-5,hang:1@9e-5". Throws std::invalid_argument on
/// malformed input.
std::vector<ScriptedFault> parse_fault_script(const std::string& spec);

/// Per-message injection decisions, drawn from one seeded stream. The
/// Sim backend calls this from its single scheduler thread; the threaded
/// backend serializes calls with a mutex (only when ft is enabled, so
/// the fault-free fast path never pays for it).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& cfg)
      : cfg_(cfg), rng_(cfg.seed) {}

  struct Decision {
    bool drop = false;
    bool dup = false;
    double extra_delay = 0.0;  ///< seconds added before delivery
  };

  /// Decide the fate of one cross-PE message. Consumes RNG draws in a
  /// fixed order so identical seeds give identical fault scripts.
  Decision on_wire() {
    Decision d;
    if (cfg_.drop > 0.0 && rng_.uniform() < cfg_.drop) {
      d.drop = true;
      return d;  // a dropped message consumes no further draws
    }
    if (cfg_.dup > 0.0 && rng_.uniform() < cfg_.dup) d.dup = true;
    if (cfg_.delay > 0.0 && rng_.uniform() < cfg_.delay) {
      // Uniform in (0, 2*mean): bounded, mean = delay_s.
      d.extra_delay = rng_.uniform(0.0, 2.0 * cfg_.delay_s);
    }
    return d;
  }

  /// Retransmit timeout for `attempts` prior tries: the RetryPolicy's
  /// exponential backoff plus seeded jitter (desynchronizes retransmit
  /// storms).
  double retry_timeout(int attempts) {
    double t = cfg_.retry.delay(attempts);
    if (cfg_.retry.jitter > 0.0) {
      t += rng_.uniform(0.0, cfg_.retry.jitter * t);
    }
    return t;
  }

  [[nodiscard]] const FaultConfig& config() const noexcept { return cfg_; }

 private:
  FaultConfig cfg_;
  cxu::Rng rng_;
};

}  // namespace cx::ft
