#pragma once
// cx::ft — fault model shared by both machine backends.
//
// A FaultConfig describes which failures a run injects (seeded message
// drop/duplicate/delay probabilities, scripted PE crash/hang on the Sim
// backend) and how the reliable-delivery protocol reacts (retransmit
// timeout, exponential backoff, give-up threshold). It travels inside
// cxm::MachineConfig so every backend sees the same knobs.
//
// All randomness flows through one seeded FaultInjector per machine, so a
// Sim run with the same seed replays the exact same fault script — the
// property the ft test tier and the DES figure runs rely on.

#include <cstdint>
#include <functional>

#include "pup/pup.hpp"
#include "util/rng.hpp"

namespace cxu {
class Options;
}

namespace cx::ft {

enum class FailureKind : std::uint8_t {
  Crashed = 0,      ///< PE stopped executing (scripted or inject_kill)
  Unreachable = 1,  ///< retransmits to the PE exhausted (ack give-up)
  Hung = 2,         ///< PE stopped draining its mailbox (scripted)
};

/// A typed PE-failure notification, surfaced to the runtime instead of
/// letting a lost peer hang the scheduler forever.
struct PeFailure {
  std::int32_t pe = -1;
  FailureKind kind = FailureKind::Crashed;
  double time = 0.0;  ///< backend clock at detection

  void pup(pup::Er& p) {
    p | pe;
    p | kind;
    p | time;
  }
};

const char* failure_kind_name(FailureKind k) noexcept;

struct FaultConfig {
  std::uint64_t seed = 1;  ///< drives every injection decision

  // Network fault injection (per cross-PE message, both backends).
  double drop = 0.0;        ///< P(message silently lost)
  double dup = 0.0;         ///< P(message delivered twice)
  double delay = 0.0;       ///< P(message held back before delivery)
  double delay_s = 1.0e-3;  ///< mean extra latency of a delayed message

  // Reliable delivery (send-side seq + ack, retransmit with backoff).
  bool reliable = false;
  double rto = 10.0e-3;    ///< initial retransmit timeout (seconds)
  double backoff = 2.0;    ///< rto multiplier per attempt
  double jitter = 0.25;    ///< retransmit jitter as a fraction of the rto
  int max_retries = 8;     ///< attempts before PeFailure{Unreachable}

  // Scripted faults (Sim backend: virtual-time triggers; the threaded
  // backend crashes PEs programmatically via Machine::inject_kill).
  int crash_pe = -1;
  double crash_at = 0.0;  ///< virtual time of the scripted crash
  int hang_pe = -1;
  double hang_at = 0.0;   ///< virtual time the PE stops draining

  [[nodiscard]] bool injecting() const noexcept {
    return drop > 0.0 || dup > 0.0 || delay > 0.0;
  }
  [[nodiscard]] bool scripted() const noexcept {
    return crash_pe >= 0 || hang_pe >= 0;
  }
  /// True when any ft machinery must be active. When false, both
  /// backends keep the exact pre-ft send/deliver path: no acks, no
  /// buffering, no extra branches beyond this one check.
  [[nodiscard]] bool enabled() const noexcept {
    return injecting() || reliable || scripted();
  }
};

/// Parse the --ft-* flag family (see README "Fault injection &
/// checkpointing"): --ft-seed, --ft-drop, --ft-dup, --ft-delay,
/// --ft-delay-ms, --ft-reliable, --ft-rto-ms, --ft-retries,
/// --ft-crash-pe, --ft-crash-at, --ft-hang-pe, --ft-hang-at.
/// Probabilities are validated via Options::get_prob (throw outside
/// [0,1]); injection implies reliable delivery unless --ft-reliable=0.
FaultConfig fault_config_from_options(const cxu::Options& opt);

/// Per-message injection decisions, drawn from one seeded stream. The
/// Sim backend calls this from its single scheduler thread; the threaded
/// backend serializes calls with a mutex (only when ft is enabled, so
/// the fault-free fast path never pays for it).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& cfg)
      : cfg_(cfg), rng_(cfg.seed) {}

  struct Decision {
    bool drop = false;
    bool dup = false;
    double extra_delay = 0.0;  ///< seconds added before delivery
  };

  /// Decide the fate of one cross-PE message. Consumes RNG draws in a
  /// fixed order so identical seeds give identical fault scripts.
  Decision on_wire() {
    Decision d;
    if (cfg_.drop > 0.0 && rng_.uniform() < cfg_.drop) {
      d.drop = true;
      return d;  // a dropped message consumes no further draws
    }
    if (cfg_.dup > 0.0 && rng_.uniform() < cfg_.dup) d.dup = true;
    if (cfg_.delay > 0.0 && rng_.uniform() < cfg_.delay) {
      // Uniform in (0, 2*mean): bounded, mean = delay_s.
      d.extra_delay = rng_.uniform(0.0, 2.0 * cfg_.delay_s);
    }
    return d;
  }

  /// Retransmit timeout for `attempts` prior tries: exponential backoff
  /// plus seeded jitter (desynchronizes retransmit storms).
  double retry_timeout(int attempts) {
    double t = cfg_.rto;
    for (int i = 0; i < attempts; ++i) t *= cfg_.backoff;
    if (cfg_.jitter > 0.0) t += rng_.uniform(0.0, cfg_.jitter * t);
    return t;
  }

  [[nodiscard]] const FaultConfig& config() const noexcept { return cfg_; }

 private:
  FaultConfig cfg_;
  cxu::Rng rng_;
};

}  // namespace cx::ft
