#include "ft/recovery.hpp"

namespace cx::ft {

const char* recovery_phase_name(RecoveryPhase p) noexcept {
  switch (p) {
    case RecoveryPhase::Idle:
      return "idle";
    case RecoveryPhase::Notifying:
      return "notifying";
    case RecoveryPhase::Settling:
      return "settling";
    case RecoveryPhase::Restoring:
      return "restoring";
  }
  return "unknown";
}

const char* restore_status_name(RestoreStatus s) noexcept {
  switch (s) {
    case RestoreStatus::Ok:
      return "ok";
    case RestoreStatus::NoCheckpoint:
      return "no_checkpoint";
    case RestoreStatus::Timeout:
      return "timeout";
  }
  return "unknown";
}

double effective_settle(double configured_s, bool simulated) noexcept {
  if (configured_s >= 0.0) return configured_s;
  // Defaults: well past any modeled network latency (sim runs operate
  // in microseconds of virtual time), and past scheduler wakeup jitter
  // plus one retransmit RTO on real threads.
  return simulated ? 2.0e-4 : 0.05;
}

}  // namespace cx::ft
