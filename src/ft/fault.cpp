#include "ft/fault.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/options.hpp"

namespace cx::ft {

const char* failure_kind_name(FailureKind k) noexcept {
  switch (k) {
    case FailureKind::Crashed:
      return "crashed";
    case FailureKind::Unreachable:
      return "unreachable";
    case FailureKind::Hung:
      return "hung";
  }
  return "unknown";
}

std::vector<ScriptedFault> FaultConfig::full_script() const {
  std::vector<ScriptedFault> out;
  if (crash_pe >= 0) out.push_back({crash_pe, crash_at, FailureKind::Crashed});
  if (hang_pe >= 0) out.push_back({hang_pe, hang_at, FailureKind::Hung});
  out.insert(out.end(), script.begin(), script.end());
  std::stable_sort(out.begin(), out.end(),
                   [](const ScriptedFault& a, const ScriptedFault& b) {
                     return a.at < b.at;
                   });
  return out;
}

std::vector<ScriptedFault> parse_fault_script(const std::string& spec) {
  std::vector<ScriptedFault> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string ev = spec.substr(pos, end - pos);
    pos = end + 1;
    if (ev.empty()) continue;
    const std::size_t colon = ev.find(':');
    const std::size_t at = ev.find('@');
    if (colon == std::string::npos || at == std::string::npos || at < colon) {
      throw std::invalid_argument(
          "--ft-script: expected kind:pe@time, got \"" + ev + "\"");
    }
    const std::string kind = ev.substr(0, colon);
    ScriptedFault f;
    if (kind == "crash") {
      f.kind = FailureKind::Crashed;
    } else if (kind == "hang") {
      f.kind = FailureKind::Hung;
    } else {
      throw std::invalid_argument("--ft-script: unknown fault kind \"" +
                                  kind + "\" (want crash|hang)");
    }
    try {
      f.pe = std::stoi(ev.substr(colon + 1, at - colon - 1));
      f.at = std::stod(ev.substr(at + 1));
    } catch (const std::exception&) {
      throw std::invalid_argument("--ft-script: bad number in \"" + ev +
                                  "\"");
    }
    out.push_back(f);
  }
  return out;
}

FaultConfig fault_config_from_options(const cxu::Options& opt) {
  FaultConfig cfg;
  cfg.seed = opt.get_seed("ft-seed", cfg.seed);
  cfg.drop = opt.get_prob("ft-drop", cfg.drop);
  cfg.dup = opt.get_prob("ft-dup", cfg.dup);
  cfg.delay = opt.get_prob("ft-delay", cfg.delay);
  cfg.delay_s = opt.get_double("ft-delay-ms", cfg.delay_s * 1e3) * 1e-3;
  // Injecting faults without reliable delivery hangs most programs (a
  // lost ghost message stalls the stencil forever), so injection turns
  // the protocol on by default; --ft-reliable=0 opts out for ablations.
  cfg.reliable = opt.get_bool("ft-reliable", cfg.injecting());
  cfg.retry.base_s = opt.get_double("ft-rto-ms", cfg.retry.base_s * 1e3) * 1e-3;
  cfg.retry.backoff = opt.get_double("ft-backoff", cfg.retry.backoff);
  cfg.retry.jitter = opt.get_double("ft-jitter", cfg.retry.jitter);
  cfg.retry.max_attempts =
      static_cast<int>(opt.get_int("ft-retries", cfg.retry.max_attempts));
  cfg.retry.deadline_s =
      opt.get_double("ft-retry-deadline-ms", cfg.retry.deadline_s * 1e3) *
      1e-3;
  cfg.heartbeat_s =
      opt.get_double("ft-heartbeat-ms", cfg.heartbeat_s * 1e3) * 1e-3;
  cfg.hb_threshold = opt.get_double("ft-heartbeat-threshold",
                                    cfg.hb_threshold);
  cfg.auto_recover = opt.get_bool("ft-auto-recover", cfg.auto_recover);
  cfg.settle_s = opt.get_double("ft-settle-ms", cfg.settle_s * 1e3) * 1e-3;
  cfg.crash_pe = static_cast<int>(opt.get_int("ft-crash-pe", cfg.crash_pe));
  cfg.crash_at = opt.get_double("ft-crash-at", cfg.crash_at);
  cfg.hang_pe = static_cast<int>(opt.get_int("ft-hang-pe", cfg.hang_pe));
  cfg.hang_at = opt.get_double("ft-hang-at", cfg.hang_at);
  const std::string script = opt.get_string("ft-script", "");
  if (!script.empty()) cfg.script = parse_fault_script(script);
  return cfg;
}

}  // namespace cx::ft
