#include "ft/fault.hpp"

#include "util/options.hpp"

namespace cx::ft {

const char* failure_kind_name(FailureKind k) noexcept {
  switch (k) {
    case FailureKind::Crashed:
      return "crashed";
    case FailureKind::Unreachable:
      return "unreachable";
    case FailureKind::Hung:
      return "hung";
  }
  return "unknown";
}

FaultConfig fault_config_from_options(const cxu::Options& opt) {
  FaultConfig cfg;
  cfg.seed = opt.get_seed("ft-seed", cfg.seed);
  cfg.drop = opt.get_prob("ft-drop", cfg.drop);
  cfg.dup = opt.get_prob("ft-dup", cfg.dup);
  cfg.delay = opt.get_prob("ft-delay", cfg.delay);
  cfg.delay_s = opt.get_double("ft-delay-ms", cfg.delay_s * 1e3) * 1e-3;
  // Injecting faults without reliable delivery hangs most programs (a
  // lost ghost message stalls the stencil forever), so injection turns
  // the protocol on by default; --ft-reliable=0 opts out for ablations.
  cfg.reliable = opt.get_bool("ft-reliable", cfg.injecting());
  cfg.rto = opt.get_double("ft-rto-ms", cfg.rto * 1e3) * 1e-3;
  cfg.max_retries = static_cast<int>(
      opt.get_int("ft-retries", cfg.max_retries));
  cfg.crash_pe = static_cast<int>(opt.get_int("ft-crash-pe", cfg.crash_pe));
  cfg.crash_at = opt.get_double("ft-crash-at", cfg.crash_at);
  cfg.hang_pe = static_cast<int>(opt.get_int("ft-hang-pe", cfg.hang_pe));
  cfg.hang_at = opt.get_double("ft-hang-at", cfg.hang_at);
  return cfg;
}

}  // namespace cx::ft
