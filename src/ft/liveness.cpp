#include "ft/liveness.hpp"

namespace cx::ft {

LivenessConfig liveness_from_faults(const FaultConfig& f) noexcept {
  LivenessConfig cfg;
  cfg.interval_s = f.heartbeat_s;
  cfg.threshold = f.hb_threshold;
  return cfg;
}

}  // namespace cx::ft
