#pragma once
// Distributed parallel map with concurrent asynchronous jobs — the
// paper's Section III use case, grown into a high-throughput task
// engine. The public surface is still the paper's master–worker map:
//
//   * one MapManager chare on PE 0 coordinates a Group of Workers
//   * map_async(f, numProcs, tasks) starts a job on numProcs free
//     processors; multiple jobs may run concurrently
//   * submit(f, numProcs, tasks, priority) additionally orders queued
//     jobs (FIFO within priority) so interactive jobs overtake batch ones
//
// Under the surface the per-task request/grant round trip of the paper
// is gone:
//
//   * chunked shipping — the master grants tasks in adaptive batches
//     (guided self-scheduling: ~remaining/(2·procs), shrinking as the
//     job drains; fixed via --pool-chunk). Grants travel as compact
//     (start,count) ranges in one envelope; results return in batches.
//   * work stealing — a worker whose deque drains steals half of a
//     random victim's remaining chunk instead of round-tripping to the
//     master, which leaves the per-task critical path entirely.
//   * backpressure — --pool-max-inflight bounds each job's outstanding
//     tasks; workers idle at the cap and are re-granted as results land.
//   * decoupled heartbeats — a worker grinding through a long chunk
//     sends a lightweight periodic beat (cx::post_after chain between
//     task quanta) so its liveness counter advances even when it has no
//     task request to piggyback on.
//
// Failure semantics are preserved: the master's done-bitmap counts every
// result exactly once (resubmitted and stolen chunks may execute twice),
// and a dead worker's whole outstanding chunk set — including chunks it
// stole — is reclaimed and resubmitted.
//
// Task functions are registered by name (the C++ stand-in for passing a
// Python function object):
//
//   cxpool::register_function("square",
//                             [](const cpy::Value& x) { return
//                                 cpy::Value(x.as_int() * x.as_int()); });
//   cxpool::Pool pool;
//   auto f1 = pool.map_async("square", 2, {1, 2, 3, 4, 5});
//   auto results1 = f1.get();   // [1, 4, 9, 16, 25]
//
// Scheduling: each job asks for numProcs processors. Requests are
// clamped to what is free; a job that finds every processor busy waits
// in a priority queue (FIFO within priority) and starts as soon as a
// running job releases processors — the future always eventually
// resolves, even when jobs saturate the PE set.
//
// Failure: if a task function is unknown or throws, the job fails and
// its future resolves to an error value (check with is_error /
// error_message) instead of killing the run.

#include <cstdint>
#include <functional>
#include <string>

#include "model/cpy.hpp"

namespace cxu {
class Options;
}

namespace cxpool {

using TaskFn = std::function<cpy::Value(const cpy::Value&)>;

/// Register a task function under `name` (process-global).
void register_function(const std::string& name, TaskFn fn);

/// Look up a task function; throws std::out_of_range if unknown.
const TaskFn& lookup_function(const std::string& name);

/// Dict key marking a failed job's result value.
inline constexpr const char* kErrorKey = "__pool_error__";

/// Build the error value a failed job's future resolves to.
cpy::Value make_error(const std::string& message);

/// True if a map/map_async result reports a failed job.
[[nodiscard]] bool is_error(const cpy::Value& result);

/// The failure reason carried by an error result ("" if not an error).
[[nodiscard]] std::string error_message(const cpy::Value& result);

// ---------------------------------------------------------------------------
// Engine configuration. Process-global, read by the master and every
// worker; set it before the runtime starts (configure() from a driver,
// or configure_from_options() right after parsing flags).

struct PoolConfig {
  /// Tasks per grant. 0 = adaptive guided self-scheduling:
  /// ceil(remaining / (2 · procs)), clamped to [1, 8192].
  std::int64_t chunk = 0;
  /// Randomized work stealing between workers.
  bool steal = true;
  /// Per-job cap on outstanding (granted, unfinished) tasks; 0 = none.
  std::int64_t max_inflight = 0;
  /// Tasks a worker executes per scheduler turn before yielding (so
  /// steal requests, beats and liveness ticks interleave with a chunk).
  std::int64_t quantum = 16;
  /// Max results per batched result message.
  std::int64_t result_batch = 256;
  /// Decoupled heartbeat period in seconds (<= 0 disables beats).
  double beat_s = 0.025;
  /// Victims tried per steal round before falling back to the master.
  std::int64_t steal_retries = 2;
};

/// Install a configuration (values are sanitized: quantum/result_batch
/// floors at 1, negative chunk/max_inflight/steal_retries at 0).
void configure(const PoolConfig& cfg);

/// The active configuration.
[[nodiscard]] const PoolConfig& config() noexcept;

/// Read --pool-chunk=<n|auto>, --pool-steal[=on|off],
/// --pool-max-inflight=<n>, --pool-quantum=<n>, --pool-batch=<n>,
/// --pool-beat-ms=<ms>, --pool-steal-retries=<n> (strict validation —
/// malformed values throw) and install.
void configure_from_options(const cxu::Options& opt);

// ---------------------------------------------------------------------------

class Pool {
 public:
  /// Create the master on PE 0 with one worker per PE. Must be called
  /// from a threaded context inside a running program.
  Pool();

  /// Apply `fn_name` to each task on `num_procs` workers; returns a
  /// future resolving to the list of results in task order.
  [[nodiscard]] cx::Future<cpy::Value> map_async(const std::string& fn_name,
                                                 int num_procs,
                                                 cpy::List tasks) const {
    return submit(fn_name, num_procs, std::move(tasks), 0);
  }

  /// map_async with a job priority: queued jobs dispatch highest
  /// priority first, FIFO within a priority level. Running jobs are
  /// never preempted.
  [[nodiscard]] cx::Future<cpy::Value> submit(const std::string& fn_name,
                                              int num_procs, cpy::List tasks,
                                              std::int64_t priority) const;

  /// Blocking convenience wrapper.
  [[nodiscard]] cpy::Value map(const std::string& fn_name, int num_procs,
                               cpy::List tasks) const {
    return map_async(fn_name, num_procs, std::move(tasks)).get();
  }

  /// Per-worker liveness: a dict mapping PE (as a string key) to the
  /// last heartbeat counter the master has seen from that worker.
  /// Heartbeats piggyback on chunk-request and result-batch messages,
  /// plus the decoupled periodic beat while a worker is mid-chunk (so a
  /// worker busy on a long chunk no longer reads as silent). Blocking
  /// (fiber) call.
  [[nodiscard]] cpy::Value liveness() const;

  [[nodiscard]] const cpy::DElement& master() const noexcept {
    return master_;
  }

 private:
  cpy::DElement master_;
};

}  // namespace cxpool
