#pragma once
// Distributed parallel map with concurrent asynchronous jobs — the
// paper's Section III use case, implemented on the model layer with the
// master–worker pattern exactly as in the paper:
//
//   * one MapManager chare on PE 0 coordinates a Group of Workers
//   * map_async(f, numProcs, tasks, future) starts a job on numProcs
//     free processors; multiple jobs may run concurrently
//   * the master hands tasks to idle workers one at a time, so load
//     balances dynamically even when task costs are wildly uneven
//   * each completed task's result returns piggybacked on the next task
//     request (paper: getTask(src, job_id, prev_task, prev_result))
//
// Task functions are registered by name (the C++ stand-in for passing a
// Python function object):
//
//   cxpool::register_function("square",
//                             [](const cpy::Value& x) { return
//                                 cpy::Value(x.as_int() * x.as_int()); });
//   cxpool::Pool pool;
//   auto f1 = pool.map_async("square", 2, {1, 2, 3, 4, 5});
//   auto f2 = pool.map_async("square", 2, {1, 3, 5, 7, 9});
//   auto results1 = f1.get();   // [1, 4, 9, 16, 25]
//
// Scheduling: each job asks for numProcs processors. Requests are
// clamped to what is free; a job that finds every processor busy waits
// in a FIFO queue and starts as soon as a running job releases
// processors — the future always eventually resolves, even when jobs
// saturate the PE set.
//
// Failure: if a task function is unknown or throws, the job fails and
// its future resolves to an error value (check with is_error /
// error_message) instead of killing the run.

#include <functional>
#include <string>

#include "model/cpy.hpp"

namespace cxpool {

using TaskFn = std::function<cpy::Value(const cpy::Value&)>;

/// Register a task function under `name` (process-global).
void register_function(const std::string& name, TaskFn fn);

/// Look up a task function; throws std::out_of_range if unknown.
const TaskFn& lookup_function(const std::string& name);

/// Dict key marking a failed job's result value.
inline constexpr const char* kErrorKey = "__pool_error__";

/// Build the error value a failed job's future resolves to.
cpy::Value make_error(const std::string& message);

/// True if a map/map_async result reports a failed job.
[[nodiscard]] bool is_error(const cpy::Value& result);

/// The failure reason carried by an error result ("" if not an error).
[[nodiscard]] std::string error_message(const cpy::Value& result);

class Pool {
 public:
  /// Create the master on PE 0 with one worker per PE. Must be called
  /// from a threaded context inside a running program.
  Pool();

  /// Apply `fn_name` to each task on `num_procs` workers; returns a
  /// future resolving to the list of results in task order.
  [[nodiscard]] cx::Future<cpy::Value> map_async(const std::string& fn_name,
                                                 int num_procs,
                                                 cpy::List tasks) const;

  /// Blocking convenience wrapper.
  [[nodiscard]] cpy::Value map(const std::string& fn_name, int num_procs,
                               cpy::List tasks) const {
    return map_async(fn_name, num_procs, std::move(tasks)).get();
  }

  /// Per-worker liveness: a dict mapping PE (as a string key) to the
  /// last heartbeat counter the master has seen from that worker.
  /// Heartbeats piggyback on the task-request messages workers send
  /// anyway, so this costs no extra traffic. Blocking (fiber) call.
  [[nodiscard]] cpy::Value liveness() const;

  [[nodiscard]] const cpy::DElement& master() const noexcept {
    return master_;
  }

 private:
  cpy::DElement master_;
};

}  // namespace cxpool
