#include "pool/pool.hpp"

#include <mutex>
#include <unordered_map>

#include "util/log.hpp"

namespace cxpool {

using cpy::Args;
using cpy::DChare;
using cpy::DClass;
using cpy::Dict;
using cpy::List;
using cpy::Value;

namespace {

struct FnRegistry {
  std::mutex mutex;
  std::unordered_map<std::string, TaskFn> fns;
  static FnRegistry& instance() {
    static FnRegistry r;
    return r;
  }
};

// ---------------------------------------------------------------------------
// Worker: one per PE (paper's Group(Worker)). Mirrors the paper's code:
// start() records the job and asks for the first task; apply() runs the
// function on one task and piggybacks the result on the next request.

void define_worker() {
  DClass cls("cxpool.Worker");
  cls.def("start", {"job_id", "fname", "tasks", "master"},
          [](DChare& self, Args& a) {
            self["job_id"] = a[0];
            self["fname"] = a[1];
            self["tasks"] = a[2];
            self["master"] = a[3];
            // request a new task
            cpy::element_from(a[3]).send(
                "getTask", {self["thisIndex"].item(Value(0)), a[0],
                            Value::none(), Value::none()});
            return Value::none();
          });
  cls.def("apply", {"task_id"}, [](DChare& self, Args& a) {
    const Value task = self["tasks"].item(a[0]);
    const TaskFn& fn = lookup_function(self["fname"].as_str());
    Value result = fn(task);
    cpy::element_from(self["master"])
        .send("getTask", {self["thisIndex"].item(Value(0)), self["job_id"],
                          a[0], std::move(result)});
    return Value::none();
  });
}

// ---------------------------------------------------------------------------
// MapManager: the master on PE 0. Job bookkeeping lives entirely in the
// attribute dict (so the master is migratable like any chare). The
// user's future travels boxed inside a Value.

void define_manager() {
  DClass cls("cxpool.MapManager");

  cls.def("__init__", {}, [](DChare& self, Args&) {
    self["workers"] = cpy::to_value(cpy::create_group("cxpool.Worker"));
    // Paper: free processors are 1..P-1 (PE 0 runs the master). With a
    // single PE, the master shares PE 0 with the one worker.
    List free;
    const int p = cx::num_pes();
    if (p == 1) {
      free.emplace_back(0);
    } else {
      for (int i = 1; i < p; ++i) free.emplace_back(i);
    }
    self["free_procs"] = Value::list(std::move(free));
    self["next_job_id"] = Value(0);
    self["jobs"] = Value::dict({});
    return Value::none();
  });

  cls.def("map_async", {"fname", "numProcs", "tasks", "future"},
          [](DChare& self, Args& a) {
            auto& free = self["free_procs"].as_list();
            std::int64_t want = a[1].as_int();
            if (want > static_cast<std::int64_t>(free.size())) {
              CX_LOG_WARN("pool: requested ", want, " procs, only ",
                          free.size(), " free; clamping");
              want = static_cast<std::int64_t>(free.size());
            }
            if (want <= 0) want = 1;
            // select free processors
            List procs;
            for (std::int64_t i = 0; i < want && !free.empty(); ++i) {
              procs.push_back(free.back());
              free.pop_back();
            }
            const std::int64_t job_id = self["next_job_id"].as_int();
            self["next_job_id"] = Value(job_id + 1);
            const std::uint64_t ntasks = a[2].length();
            Dict job;
            job["fname"] = a[0];
            job["tasks"] = a[2];
            job["results"] = Value::list(
                List(static_cast<std::size_t>(ntasks), Value::none()));
            job["remaining"] = Value(static_cast<std::int64_t>(ntasks));
            job["next_task"] = Value(0);
            job["procs"] = Value::list(procs);
            job["future"] = a[3];
            self["jobs"].as_dict()[std::to_string(job_id)] =
                Value::dict(std::move(job));
            // tell workers on the selected processors to start
            auto workers = cpy::collection_from(self["workers"]);
            for (const Value& p : procs) {
              workers[cx::Index(static_cast<int>(p.as_int()))].send(
                  "start",
                  {Value(job_id), a[0], a[2], cpy::to_value(
                                                  cpy::proxy_of(self))});
            }
            return Value::none();
          });

  cls.def("getTask", {"src", "job_id", "prev_task", "prev_result"},
          [](DChare& self, Args& a) {
            auto& jobs = self["jobs"].as_dict();
            const std::string key = std::to_string(a[1].as_int());
            const auto jit = jobs.find(key);
            if (jit == jobs.end()) return Value::none();  // job finished
            auto& job = jit->second.as_dict();
            if (!a[2].is_none()) {
              job["results"].as_list()[static_cast<std::size_t>(
                  a[2].as_int())] = a[3];
              job["remaining"] = Value(job["remaining"].as_int() - 1);
            }
            if (job["remaining"].as_int() == 0) {
              // job done: release its processors, deliver the results.
              auto& free = self["free_procs"].as_list();
              for (const Value& p : job["procs"].as_list()) {
                free.push_back(p);
              }
              cpy::future_from(job["future"]).send(job["results"]);
              jobs.erase(jit);
              return Value::none();
            }
            const std::int64_t next = job["next_task"].as_int();
            if (next < static_cast<std::int64_t>(job["tasks"].length())) {
              job["next_task"] = Value(next + 1);
              auto workers = cpy::collection_from(self["workers"]);
              workers[cx::Index(static_cast<int>(a[0].as_int()))].send(
                  "apply", {Value(next)});
            }
            return Value::none();
          });
}

struct PoolClasses {
  PoolClasses() {
    define_worker();
    define_manager();
  }
};

void ensure_classes() { static PoolClasses once; }

}  // namespace

void register_function(const std::string& name, TaskFn fn) {
  auto& r = FnRegistry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.fns[name] = std::move(fn);
}

const TaskFn& lookup_function(const std::string& name) {
  auto& r = FnRegistry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.fns.find(name);
  if (it == r.fns.end()) {
    throw std::out_of_range("pool: unknown task function '" + name + "'");
  }
  return it->second;
}

Pool::Pool() {
  ensure_classes();
  master_ = cpy::create_chare("cxpool.MapManager", 0);
}

cx::Future<cpy::Value> Pool::map_async(const std::string& fn_name,
                                       int num_procs,
                                       cpy::List tasks) const {
  auto f = cx::make_future<Value>();
  master_.send("map_async", {Value(fn_name), Value(num_procs),
                             Value::list(std::move(tasks)),
                             cpy::to_value(f)});
  return f;
}

}  // namespace cxpool
