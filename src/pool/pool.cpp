#include "pool/pool.hpp"

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "ft/ft.hpp"
#include "trace/trace.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "wire/envelope.hpp"

namespace cxpool {

using cpy::Args;
using cpy::DChare;
using cpy::DClass;
using cpy::Dict;
using cpy::List;
using cpy::Value;

namespace {

struct FnRegistry {
  std::mutex mutex;
  std::unordered_map<std::string, TaskFn> fns;
  static FnRegistry& instance() {
    static FnRegistry r;
    return r;
  }
};

PoolConfig g_config;

/// Ceiling for the adaptive grant size (guided self-scheduling).
constexpr std::int64_t kMaxAutoChunk = 8192;

/// Seconds before a pending steal request is abandoned (the victim is
/// presumed dead) and the thief falls back to the master. One-shot
/// cx::post_after, so it works even with beats disabled.
constexpr double kStealTimeout = 0.05;

// ---------------------------------------------------------------------------
// Task ranges. Grants, steals and failure reclamation all move task-id
// *ranges* — a flattened [start0, count0, start1, count1, ...] vector
// shipped as one Value::iarray — so a 4096-task grant costs the same
// envelope as a 1-task grant did in the per-task protocol.

using Ranges = std::vector<std::int64_t>;

Value ranges_to_value(Ranges r) { return Value::iarray(std::move(r)); }

const Ranges& ranges_of(const Value& v) { return v.as_i64_array()->data; }

Ranges& ranges_mut(Value& v) { return v.as_i64_array()->data; }

std::int64_t ranges_count(const Ranges& r) {
  std::int64_t n = 0;
  for (std::size_t i = 1; i < r.size(); i += 2) n += r[i];
  return n;
}

void ranges_append(Ranges& r, std::int64_t start, std::int64_t count) {
  if (count <= 0) return;
  // Coalesce with the tail range when contiguous.
  if (r.size() >= 2 && r[r.size() - 2] + r.back() == start) {
    r.back() += count;
  } else {
    r.push_back(start);
    r.push_back(count);
  }
}

void ranges_extend(Ranges& r, const Ranges& more) {
  for (std::size_t i = 0; i + 1 < more.size(); i += 2) {
    ranges_append(r, more[i], more[i + 1]);
  }
}

/// Remove one task id from a range set (splitting a range if the id
/// falls in its middle). Returns false if the id is not present.
bool ranges_remove(Ranges& r, std::int64_t id) {
  for (std::size_t i = 0; i + 1 < r.size(); i += 2) {
    const std::int64_t s = r[i];
    const std::int64_t c = r[i + 1];
    if (id < s || id >= s + c) continue;
    if (c == 1) {
      r.erase(r.begin() + static_cast<std::ptrdiff_t>(i),
              r.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else if (id == s) {
      r[i] = s + 1;
      r[i + 1] = c - 1;
    } else if (id == s + c - 1) {
      r[i + 1] = c - 1;
    } else {
      r[i + 1] = id - s;
      r.push_back(id + 1);
      r.push_back(s + c - 1 - id);
    }
    return true;
  }
  return false;
}

/// Take up to `want` tasks off the front of `from`, appending them to
/// `into`. Returns how many moved.
std::int64_t ranges_take_front(Ranges& from, Ranges& into,
                               std::int64_t want) {
  std::int64_t moved = 0;
  while (moved < want && !from.empty()) {
    const std::int64_t take = std::min(want - moved, from[1]);
    ranges_append(into, from[0], take);
    from[0] += take;
    from[1] -= take;
    if (from[1] == 0) from.erase(from.begin(), from.begin() + 2);
    moved += take;
  }
  return moved;
}

/// Take up to `want` tasks off the *back* of `from` (steals split the
/// victim's tail so the victim keeps draining its front undisturbed).
std::int64_t ranges_take_back(Ranges& from, Ranges& into,
                              std::int64_t want) {
  Ranges rev;  // collected back-to-front, then reversed into `into`
  std::int64_t moved = 0;
  while (moved < want && !from.empty()) {
    const std::size_t i = from.size() - 2;
    const std::int64_t take = std::min(want - moved, from[i + 1]);
    rev.push_back(from[i] + from[i + 1] - take);
    rev.push_back(take);
    from[i + 1] -= take;
    if (from[i + 1] == 0) from.erase(from.begin() + static_cast<std::ptrdiff_t>(i), from.end());
    moved += take;
  }
  for (std::size_t i = rev.size(); i >= 2; i -= 2) {
    ranges_append(into, rev[i - 2], rev[i - 1]);
  }
  return moved;
}

// ---------------------------------------------------------------------------
// Worker: one per PE (the paper's Group(Worker)), rebuilt from the
// paper's one-task-per-round-trip loop into a chunk-draining engine:
//
//   start/chunk/stolen  append task ranges to the local deque
//   drain               self-resent continuation executing `quantum`
//                       tasks per scheduler turn (steals, beats and
//                       liveness ticks interleave with a long chunk)
//   steal/stolen/stealFail   randomized work stealing between workers
//   beatTick            decoupled heartbeat while mid-chunk
//
// Results accumulate locally and return to the master in batches.

std::int64_t my_index(DChare& self) {
  return self["thisIndex"].item(Value(0)).as_int();
}

std::int64_t next_heartbeat(DChare& self) {
  const std::int64_t hb =
      self.has_attr("hb") ? self["hb"].as_int() + 1 : 1;
  self["hb"] = Value(hb);
  return hb;
}

std::int64_t pending_count(DChare& self) {
  return ranges_count(ranges_of(self["pending"]));
}

/// xorshift-style per-worker PRNG for victim selection (seeded from the
/// worker index so runs are reproducible on the simulator).
std::uint64_t next_rand(DChare& self) {
  std::uint64_t x = static_cast<std::uint64_t>(self["rng"].as_int());
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  self["rng"] = Value(static_cast<std::int64_t>(x));
  return x;
}

/// Arm (or re-arm) the decoupled heartbeat chain. The tick is a plain
/// scheduled callback (cx::post_after — uncounted, so it never holds
/// off quiescence detection) that message-sends beatTick to this
/// worker; the chain stops re-arming as soon as the worker runs out of
/// local work, which is what lets the simulator drain.
void arm_beat(DChare& self) {
  const double period = config().beat_s;
  if (period <= 0) return;
  if (self["beat_armed"].as_int() != 0) return;
  self["beat_armed"] = Value(1);
  auto workers = cpy::collection_proxy_of(self);
  const int idx = static_cast<int>(my_index(self));
  cx::post_after(period, [workers, idx]() mutable {
    workers[cx::Index(idx)].send("beatTick", {});
  });
}

/// Flush buffered results to the master as one batched message.
/// `want` asks the master for a fresh grant in the same envelope.
void flush_results(DChare& self, bool want) {
  auto& ids = ranges_mut(self["rids"]);
  auto& vals = self["rvals"].as_list();
  if (ids.empty() && !want) return;
  cpy::element_from(self["master"])
      .send("resultBatch",
            {Value(my_index(self)), self["job_id"],
             Value::iarray(std::move(ids)),
             Value::list(std::move(vals)),
             Value(next_heartbeat(self)), Value(want ? 1 : 0)});
  self["rids"] = Value::iarray({});
  self["rvals"] = Value::list({});
}

void send_get_chunk(DChare& self) {
  cpy::element_from(self["master"])
      .send("getChunk", {Value(my_index(self)), self["job_id"],
                         Value(next_heartbeat(self))});
}

/// Out of local work: flush what we have and either steal from a
/// random sibling or fall back to the master for a fresh grant.
void seek_work(DChare& self) {
  const PoolConfig& cfg = config();
  const auto& procs = self["procs"].as_list();
  const std::int64_t tries = self["steal_tries"].as_int();
  if (cfg.steal && procs.size() > 1 && tries < cfg.steal_retries) {
    self["steal_tries"] = Value(tries + 1);
    // Pick a victim other than ourselves.
    const std::int64_t me = my_index(self);
    std::int64_t victim = me;
    for (int spin = 0; spin < 4 && victim == me; ++spin) {
      victim =
          procs[next_rand(self) % procs.size()].as_int();
    }
    if (victim != me) {
      flush_results(self, /*want=*/false);
      const std::int64_t token = self["steal_token"].as_int() + 1;
      self["steal_token"] = Value(token);
      self["steal_pending"] = Value(1);
      cx::trace::detail::g_pool.steal_attempts.fetch_add(
          1, std::memory_order_relaxed);
      auto workers = cpy::collection_proxy_of(self);
      workers[cx::Index(static_cast<int>(victim))].send(
          "steal", {Value(me), self["job_id"]});
      // Victim-death insurance: if no reply lands (the victim's PE
      // died with our request), give up and ask the master, which by
      // then has reclaimed the dead worker's chunks.
      const int idx = static_cast<int>(me);
      cx::post_after(kStealTimeout, [workers, idx, token]() mutable {
        workers[cx::Index(idx)].send("stealTimeout",
                                     {Value(token)});
      });
      return;
    }
  }
  self["steal_tries"] = Value(0);
  // flush_results(want=true) piggybacks the grant request on the
  // result batch; with nothing buffered, ask explicitly.
  if (!ranges_of(self["rids"]).empty()) {
    flush_results(self, /*want=*/true);
  } else {
    send_get_chunk(self);
  }
}

/// Append a grant/steal haul to the local deque and kick the drain
/// chain if it is not already running.
void add_work(DChare& self, const Value& ranges) {
  ranges_extend(ranges_mut(self["pending"]), ranges_of(ranges));
  arm_beat(self);
  if (self["draining"].as_int() == 0 && pending_count(self) > 0) {
    self["draining"] = Value(1);
    auto workers = cpy::collection_proxy_of(self);
    workers[cx::Index(static_cast<int>(my_index(self)))].send(
        "drain", {self["job_id"]});
  }
}

bool stale_job(DChare& self, const Value& job_id) {
  return self["active"].as_int() == 0 || !self["job_id"].equals(job_id);
}

void fail_job_locally(DChare& self, const std::string& what) {
  cpy::element_from(self["master"])
      .send("jobError", {self["job_id"], Value(what)});
  self["active"] = Value(0);
  self["pending"] = Value::iarray({});
  self["rids"] = Value::iarray({});
  self["rvals"] = Value::list({});
  self["draining"] = Value(0);
}

void define_worker() {
  DClass cls("cxpool.Worker");

  cls.def("__init__", {}, [](DChare& self, Args&) {
    self["active"] = Value(0);
    self["job_id"] = Value::none();
    self["pending"] = Value::iarray({});
    self["rids"] = Value::iarray({});
    self["rvals"] = Value::list({});
    self["draining"] = Value(0);
    self["beat_armed"] = Value(0);
    self["steal_pending"] = Value(0);
    self["steal_token"] = Value(0);
    self["steal_tries"] = Value(0);
    const auto idx = static_cast<std::uint64_t>(my_index(self) + 1);
    self["rng"] = Value(static_cast<std::int64_t>(
        0x9e3779b97f4a7c15ULL ^ (idx * 0x2545F4914F6CDD1DULL)));
    return Value::none();
  });

  // A job assignment. `ranges` is the initial grant (may be empty when
  // the job's in-flight budget is exhausted — the worker then parks at
  // the master until results free budget).
  cls.def("start",
          {"job_id", "fname", "tasks", "master", "procs", "ranges"},
          [](DChare& self, Args& a) {
            self["job_id"] = a[0];
            self["fname"] = a[1];
            self["tasks"] = a[2];
            self["master"] = a[3];
            self["procs"] = a[4];
            self["active"] = Value(1);
            self["pending"] = Value::iarray({});
            self["rids"] = Value::iarray({});
            self["rvals"] = Value::list({});
            self["draining"] = Value(0);
            self["steal_pending"] = Value(0);
            self["steal_tries"] = Value(0);
            if (a[5].length() > 0) {
              add_work(self, a[5]);
            } else {
              send_get_chunk(self);
            }
            return Value::none();
          });

  // A fresh grant from the master.
  cls.def("chunk", {"job_id", "ranges"}, [](DChare& self, Args& a) {
    if (stale_job(self, a[0])) return Value::none();
    self["steal_tries"] = Value(0);
    add_work(self, a[1]);
    return Value::none();
  });

  // The drain continuation: execute up to `quantum` tasks, then yield
  // by re-sending drain to ourselves — so steal requests, beats and
  // ring-liveness ticks interleave even with a 4096-task chunk queued.
  cls.def("drain", {"job_id"}, [](DChare& self, Args& a) {
    if (stale_job(self, a[0])) return Value::none();
    if (self["draining"].as_int() == 0) return Value::none();
    const PoolConfig& cfg = config();
    auto& pend = ranges_mut(self["pending"]);
    const Value& tasks = self["tasks"];
    const TaskFn* fn = nullptr;
    try {
      fn = &lookup_function(self["fname"].as_str());
    } catch (const std::exception& e) {
      fail_job_locally(self, e.what());
      return Value::none();
    }
    std::int64_t budget = cfg.quantum;
    while (budget > 0 && !pend.empty()) {
      const std::int64_t id = pend[0];
      pend[0] += 1;
      pend[1] -= 1;
      if (pend[1] == 0) pend.erase(pend.begin(), pend.begin() + 2);
      Value result;
      const double t0 = cx::now();
      try {
        result = (*fn)(tasks.item(Value(id)));
      } catch (const std::exception& e) {
        fail_job_locally(self, e.what());
        return Value::none();
      }
      cx::trace::detail::g_pool.note_task(
          static_cast<std::uint64_t>((cx::now() - t0) * 1e9));
      ranges_mut(self["rids"]).push_back(id);
      ranges_mut(self["rids"]).push_back(1);
      self["rvals"].as_list().push_back(std::move(result));
      --budget;
      if (static_cast<std::int64_t>(self["rvals"].length()) >=
          cfg.result_batch) {
        flush_results(self, /*want=*/false);
      }
    }
    if (!pend.empty()) {
      auto workers = cpy::collection_proxy_of(self);
      workers[cx::Index(static_cast<int>(my_index(self)))].send(
          "drain", {a[0]});
    } else {
      self["draining"] = Value(0);
      seek_work(self);
    }
    return Value::none();
  });

  // A sibling ran dry and asks for half our remaining deque. Keep at
  // least one quantum for ourselves; send the tail half so our own
  // front-drain is undisturbed, and tell the master which tasks moved
  // (its per-worker bookkeeping must track them for failure recovery).
  cls.def("steal", {"thief", "job_id"}, [](DChare& self, Args& a) {
    auto workers = cpy::collection_proxy_of(self);
    auto thief = workers[cx::Index(static_cast<int>(a[0].as_int()))];
    if (stale_job(self, a[1])) {
      thief.send("stealFail", {a[1]});
      return Value::none();
    }
    auto& pend = ranges_mut(self["pending"]);
    const std::int64_t n = ranges_count(pend);
    if (n <= config().quantum) {
      thief.send("stealFail", {a[1]});
      return Value::none();
    }
    Ranges loot;
    ranges_take_back(pend, loot, n / 2);
    cpy::element_from(self["master"])
        .send("reassign", {Value(my_index(self)), a[0], a[1],
                           ranges_to_value(loot)});
    thief.send("stolen", {a[1], ranges_to_value(std::move(loot))});
    return Value::none();
  });

  cls.def("stolen", {"job_id", "ranges"}, [](DChare& self, Args& a) {
    if (stale_job(self, a[0])) return Value::none();
    self["steal_pending"] = Value(0);
    self["steal_tries"] = Value(0);
    auto& p = cx::trace::detail::g_pool;
    p.steal_hits.fetch_add(1, std::memory_order_relaxed);
    p.stolen_tasks.fetch_add(
        static_cast<std::uint64_t>(ranges_count(ranges_of(a[1]))),
        std::memory_order_relaxed);
    add_work(self, a[1]);
    return Value::none();
  });

  cls.def("stealFail", {"job_id"}, [](DChare& self, Args& a) {
    if (stale_job(self, a[0])) return Value::none();
    if (self["steal_pending"].as_int() == 0) return Value::none();
    self["steal_pending"] = Value(0);
    if (pending_count(self) > 0) return Value::none();  // raced a grant
    seek_work(self);
    return Value::none();
  });

  // One-shot insurance against a victim dying with our steal request:
  // if that particular steal (matched by token) is still unanswered,
  // stop waiting and ask the master, which has reclaimed the dead
  // worker's chunks by now.
  cls.def("stealTimeout", {"token"}, [](DChare& self, Args& a) {
    if (self["steal_pending"].as_int() == 0) return Value::none();
    if (!self["steal_token"].equals(a[0])) return Value::none();
    if (self["active"].as_int() == 0) return Value::none();
    self["steal_pending"] = Value(0);
    self["steal_tries"] = Value(config().steal_retries);  // no more steals
    if (pending_count(self) == 0) seek_work(self);
    return Value::none();
  });

  // Decoupled heartbeat: while this worker grinds through a chunk its
  // liveness counter still advances — the paper's piggybacked counter
  // only moved on task-request round trips, so a worker busy on a long
  // chunk looked dead. Bypasses --wire-agg batching (a heartbeat aging
  // inside an open batch defeats its purpose).
  cls.def("beatTick", {}, [](DChare& self, Args&) {
    self["beat_armed"] = Value(0);
    if (self["active"].as_int() == 0) return Value::none();
    const bool busy = self["draining"].as_int() != 0 ||
                      pending_count(self) > 0 ||
                      self["steal_pending"].as_int() != 0;
    if (!busy) return Value::none();  // idle: requests carry the hb
    {
      cx::wire::ScopedNoAgg no_agg;
      cpy::element_from(self["master"])
          .send("beat",
                {Value(my_index(self)), Value(next_heartbeat(self))});
    }
    cx::trace::detail::g_pool.beats.fetch_add(1,
                                              std::memory_order_relaxed);
    arm_beat(self);
    return Value::none();
  });
}

// ---------------------------------------------------------------------------
// MapManager: the master on PE 0. Job bookkeeping lives entirely in the
// attribute dict (so the master is migratable like any chare). The
// user's future travels boxed inside a Value. Jobs that cannot get any
// processor wait in a priority queue (FIFO within priority) and are
// dispatched as other jobs finish — a saturated pool must never
// deadlock.
//
// Exactly-once accounting: the per-job done bitmap is authoritative.
// Chunks may execute twice (a resubmitted chunk whose original owner's
// results still land, or reassign races around a steal) — every result
// id is counted against `remaining` at most once.

std::int64_t job_procs_count(Dict& job) {
  return static_cast<std::int64_t>(job["procs"].length());
}

/// Outstanding (granted, unfinished) tasks, derived from the assigned
/// range sets so it cannot drift from reality.
std::int64_t job_inflight(Dict& job) {
  std::int64_t n = 0;
  for (auto& [pe, r] : job["assigned"].as_dict()) {
    n += ranges_count(ranges_of(r));
  }
  return n;
}

/// Ensure the worker has an assigned-ranges slot (a bare operator[]
/// would default-construct a None value, not an empty range set).
void ensure_assigned_slot(Dict& job, std::int64_t pe) {
  auto& assigned = job["assigned"].as_dict();
  const std::string key = std::to_string(pe);
  if (assigned.count(key) == 0) assigned[key] = Value::iarray({});
}

/// Carve the next grant for worker `pe`: redo (reclaimed) work first,
/// then fresh tasks. Size follows --pool-chunk, or guided
/// self-scheduling (remaining / 2·procs — big chunks early to amortize
/// messaging, small chunks late to balance the tail), clamped by the
/// job's --pool-max-inflight budget.
Ranges take_grant(Dict& job, std::int64_t pe) {
  auto& redo = ranges_mut(job["redo"]);
  const std::int64_t fresh =
      static_cast<std::int64_t>(job["tasks"].length()) -
      job["next_task"].as_int();
  const std::int64_t avail = ranges_count(redo) + fresh;
  if (avail <= 0) return {};
  const PoolConfig& cfg = config();
  std::int64_t sz = cfg.chunk;
  if (sz <= 0) {
    const std::int64_t procs = std::max<std::int64_t>(1, job_procs_count(job));
    sz = std::min((avail + 2 * procs - 1) / (2 * procs), kMaxAutoChunk);
  }
  sz = std::max<std::int64_t>(1, std::min(sz, avail));
  auto& p = cx::trace::detail::g_pool;
  if (cfg.max_inflight > 0) {
    const std::int64_t budget = cfg.max_inflight - job_inflight(job);
    if (sz > budget) {
      p.inflight_clamps.fetch_add(1, std::memory_order_relaxed);
      sz = budget;
    }
    if (sz <= 0) return {};
  }
  ensure_assigned_slot(job, pe);
  Ranges grant;
  std::int64_t got = ranges_take_front(redo, grant, sz);
  if (got < sz && fresh > 0) {
    const std::int64_t take =
        std::min(sz - got, fresh);
    ranges_append(grant, job["next_task"].as_int(), take);
    job["next_task"] = Value(job["next_task"].as_int() + take);
    got += take;
  }
  ranges_extend(ranges_mut(job["assigned"].as_dict()[std::to_string(pe)]),
                grant);
  p.grants.fetch_add(1, std::memory_order_relaxed);
  p.granted_tasks.fetch_add(static_cast<std::uint64_t>(got),
                            std::memory_order_relaxed);
  p.raise_max(p.max_chunk, static_cast<std::uint64_t>(got));
  return grant;
}

/// Hand grants to workers parked on the idle list while budget and
/// work allow. Called whenever results land (freeing budget) or redo
/// work appears (failure reclamation).
void feed_idle(DChare& self, const std::string& key, Dict& job) {
  auto& idle = job["idle"].as_list();
  auto workers = cpy::collection_from(self["workers"]);
  while (!idle.empty()) {
    const std::int64_t w = idle.front().as_int();
    Ranges grant = take_grant(job, w);
    if (grant.empty()) break;  // out of budget or out of work
    idle.erase(idle.begin());
    workers[cx::Index(static_cast<int>(w))].send(
        "chunk", {Value(static_cast<std::int64_t>(std::stoll(key))),
                  ranges_to_value(std::move(grant))});
  }
}

/// Release a finished/failed job's processors back to the free list.
void release_procs(DChare& self, Dict& job) {
  auto& free = self["free_procs"].as_list();
  for (const Value& p : job["procs"].as_list()) free.push_back(p);
  job["procs"] = Value::list({});
}

/// Grant processors to queued jobs while any are free — highest
/// priority first, FIFO within a priority level. Partial grants are
/// allowed (the paper clamps the request to what is free); only a zero
/// grant keeps a job queued.
void dispatch_queued(DChare& self) {
  auto& free = self["free_procs"].as_list();
  auto& queued = self["queued"].as_list();
  auto& jobs = self["jobs"].as_dict();
  while (!queued.empty() && !free.empty()) {
    // Select the best queued job: max priority, then lowest sequence
    // number (FIFO). The queue is short-lived; a linear scan beats
    // maintaining a heap inside a Value list.
    std::size_t best = 0;
    std::int64_t best_prio = 0, best_seq = 0;
    bool have = false;
    for (std::size_t i = 0; i < queued.size(); ++i) {
      const auto jit = jobs.find(std::to_string(queued[i].as_int()));
      if (jit == jobs.end()) continue;
      auto& j = jit->second.as_dict();
      const std::int64_t prio = j["priority"].as_int();
      const std::int64_t seq = j["seq"].as_int();
      if (!have || prio > best_prio ||
          (prio == best_prio && seq < best_seq)) {
        best = i;
        best_prio = prio;
        best_seq = seq;
        have = true;
      }
    }
    if (!have) {
      queued.clear();  // every queued id pointed at a finished job
      break;
    }
    const std::int64_t job_id = queued[best].as_int();
    queued.erase(queued.begin() + static_cast<std::ptrdiff_t>(best));
    const std::string key = std::to_string(job_id);
    auto& job = jobs[key].as_dict();
    std::int64_t want = job["want"].as_int();
    if (want > static_cast<std::int64_t>(free.size())) {
      CX_LOG_WARN("pool: job ", job_id, " requested ", want,
                  " procs, only ", free.size(), " free; clamping");
      want = static_cast<std::int64_t>(free.size());
    }
    List procs = job["procs"].as_list();  // may be re-dispatch after park
    for (std::int64_t i = 0; i < want; ++i) {
      procs.push_back(free.back());
      free.pop_back();
    }
    job["procs"] = Value::list(procs);
    if (job["start_t"].as_real() < 0) job["start_t"] = Value(cx::now());
    CX_TRACE_EVENT(cx::my_pe(), cx::now(),
                   cx::trace::EventKind::PoolJobStart,
                   static_cast<std::uint64_t>(job_id), procs.size());
    auto workers = cpy::collection_from(self["workers"]);
    const Value master_ref = cpy::to_value(cpy::proxy_of(self));
    const Value procs_val = Value::list(procs);
    for (std::int64_t i = want; i > 0; --i) {
      const Value& p = procs[procs.size() - static_cast<std::size_t>(i)];
      const std::int64_t pe = p.as_int();
      ensure_assigned_slot(job, pe);
      Ranges grant = take_grant(job, pe);
      workers[cx::Index(static_cast<int>(pe))].send(
          "start", {Value(job_id), job["fname"], job["tasks"], master_ref,
                    procs_val, ranges_to_value(std::move(grant))});
    }
  }
}

/// Resolve the job's future, return its processors and dispatch waiters.
void finish_job(DChare& self, const std::string& key, Dict& job,
                const Value& result, bool failed) {
  release_procs(self, job);
  CX_TRACE_EVENT(cx::my_pe(), cx::now(), cx::trace::EventKind::PoolJobDone,
                 static_cast<std::uint64_t>(std::stoll(key)),
                 job["tasks"].length());
  cx::trace::PoolJobRecord rec;
  rec.job_id = static_cast<std::uint64_t>(std::stoll(key));
  rec.priority = job["priority"].as_int();
  rec.tasks = job["tasks"].length();
  rec.submit_t = job["submit_t"].as_real();
  rec.start_t = std::max(0.0, job["start_t"].as_real());
  rec.done_t = cx::now();
  rec.failed = failed;
  cx::trace::pool_job_note(rec);
  cpy::future_from(job["future"]).send(result);
  self["jobs"].as_dict().erase(key);
  dispatch_queued(self);
}

void update_heartbeat(DChare& self, std::int64_t src, const Value& hb) {
  // A straggler message from a worker already declared dead must not
  // resurrect it in the liveness report.
  const std::string skey = std::to_string(src);
  if (self["failed"].as_dict().count(skey) == 0) {
    self["heartbeats"].as_dict()[skey] = hb;
  }
}

void define_manager() {
  DClass cls("cxpool.MapManager");

  cls.def("__init__", {}, [](DChare& self, Args&) {
    self["workers"] = cpy::to_value(cpy::create_group("cxpool.Worker"));
    // Paper: free processors are 1..P-1 (PE 0 runs the master). With a
    // single PE, the master shares PE 0 with the one worker.
    List free;
    const int p = cx::num_pes();
    if (p == 1) {
      free.emplace_back(0);
    } else {
      for (int i = 1; i < p; ++i) free.emplace_back(i);
    }
    self["free_procs"] = Value::list(std::move(free));
    self["next_job_id"] = Value(0);
    self["jobs"] = Value::dict({});
    self["queued"] = Value::list({});
    // Worker liveness (pe -> last heartbeat seen) and dead PEs.
    self["heartbeats"] = Value::dict({});
    self["failed"] = Value::dict({});
    return Value::none();
  });

  cls.def("submit", {"fname", "numProcs", "tasks", "future", "priority"},
          [](DChare& self, Args& a) {
            std::int64_t want = a[1].as_int();
            if (want <= 0) {
              CX_LOG_WARN("pool: requested ", want,
                          " procs; running on 1");
              want = 1;
            }
            const std::int64_t job_id = self["next_job_id"].as_int();
            self["next_job_id"] = Value(job_id + 1);
            const std::uint64_t ntasks = a[2].length();
            if (ntasks == 0) {
              // Nothing to do: resolve immediately (never strand the
              // caller's future).
              cpy::future_from(a[3]).send(Value::list({}));
              return Value::none();
            }
            Dict job;
            job["fname"] = a[0];
            job["tasks"] = a[2];
            job["results"] = Value::list(
                List(static_cast<std::size_t>(ntasks), Value::none()));
            job["remaining"] = Value(static_cast<std::int64_t>(ntasks));
            job["next_task"] = Value(0);
            job["want"] = Value(want);
            job["procs"] = Value::list({});
            job["future"] = a[3];
            job["priority"] = a[4];
            job["seq"] = Value(job_id);
            job["submit_t"] = Value(cx::now());
            job["start_t"] = Value(-1.0);
            // Failure bookkeeping: which task ranges each worker holds,
            // which tasks completed (a resubmitted chunk may finish
            // twice), ranges to re-run, and workers idling out of work
            // or budget.
            job["assigned"] = Value::dict({});
            job["done"] = Value::list(
                List(static_cast<std::size_t>(ntasks), Value(0)));
            job["redo"] = Value::iarray({});
            job["idle"] = Value::list({});
            self["jobs"].as_dict()[std::to_string(job_id)] =
                Value::dict(std::move(job));
            // Queue the job; with free processors it starts right away,
            // otherwise it waits for a running job to release some. This
            // is what keeps a saturated pool deadlock-free.
            self["queued"].as_list().emplace_back(job_id);
            auto& p = cx::trace::detail::g_pool;
            p.raise_max(p.queue_high_water, self["queued"].length());
            CX_TRACE_EVENT(cx::my_pe(), cx::now(),
                           cx::trace::EventKind::PoolJobQueued,
                           static_cast<std::uint64_t>(job_id),
                           self["free_procs"].length());
            dispatch_queued(self);
            return Value::none();
          });

  // A worker ran out of local work (and out of steal attempts).
  cls.def("getChunk", {"src", "job_id", "hb"}, [](DChare& self, Args& a) {
    const std::int64_t src = a[0].as_int();
    update_heartbeat(self, src, a[2]);
    auto& jobs = self["jobs"].as_dict();
    const std::string key = std::to_string(a[1].as_int());
    const auto jit = jobs.find(key);
    if (jit == jobs.end()) return Value::none();  // job finished
    auto& job = jit->second.as_dict();
    if (self["failed"].as_dict().count(std::to_string(src)) != 0) {
      return Value::none();  // no new work for a dead worker
    }
    Ranges grant = take_grant(job, src);
    if (!grant.empty()) {
      cpy::collection_from(self["workers"])[cx::Index(
          static_cast<int>(src))]
          .send("chunk", {a[1], ranges_to_value(std::move(grant))});
    } else {
      // Out of fresh work (or budget) while the job still runs: park
      // the worker; feed_idle revives it when results free budget or
      // failure recovery produces redo work.
      auto& idle = job["idle"].as_list();
      if (std::find_if(idle.begin(), idle.end(), [&](const Value& v) {
            return v.as_int() == src;
          }) == idle.end()) {
        idle.emplace_back(src);
      }
    }
    return Value::none();
  });

  // A batch of results. `ids` is a flattened range set, `vals` the
  // matching values in range order; `want` asks for a fresh grant in
  // the same round trip.
  cls.def("resultBatch", {"src", "job_id", "ids", "vals", "hb", "want"},
          [](DChare& self, Args& a) {
            const std::int64_t src = a[0].as_int();
            const std::string skey = std::to_string(src);
            update_heartbeat(self, src, a[4]);
            auto& jobs = self["jobs"].as_dict();
            const std::string key = std::to_string(a[1].as_int());
            const auto jit = jobs.find(key);
            if (jit == jobs.end()) return Value::none();  // job resolved
            auto& job = jit->second.as_dict();
            cx::trace::detail::g_pool.result_batches.fetch_add(
                1, std::memory_order_relaxed);
            auto& done = job["done"].as_list();
            auto& results = job["results"].as_list();
            auto& assigned = job["assigned"].as_dict();
            const Ranges& ids = ranges_of(a[2]);
            const List& vals = a[3].as_list();
            std::int64_t remaining = job["remaining"].as_int();
            std::size_t vi = 0;
            for (std::size_t i = 0; i + 1 < ids.size(); i += 2) {
              for (std::int64_t t = ids[i]; t < ids[i] + ids[i + 1];
                   ++t, ++vi) {
                const auto ti = static_cast<std::size_t>(t);
                // A resubmitted or doubly-stolen task can complete
                // twice; count it exactly once.
                if (done[ti].as_int() == 0) {
                  done[ti] = Value(1);
                  if (vi < vals.size()) results[ti] = vals[vi];
                  remaining -= 1;
                }
                // Retire the id from the sender's outstanding set; a
                // reassign race can leave it filed under another
                // worker (or redo), so fall back to a full scan —
                // keeping `assigned` exact is what makes failure
                // reclamation and the in-flight budget trustworthy.
                const auto ait = assigned.find(skey);
                bool removed =
                    ait != assigned.end() &&
                    ranges_remove(ranges_mut(ait->second), t);
                if (!removed) {
                  for (auto& [other_pe, r] : assigned) {
                    if (ranges_remove(ranges_mut(r), t)) {
                      removed = true;
                      break;
                    }
                  }
                }
                if (!removed) ranges_remove(ranges_mut(job["redo"]), t);
              }
            }
            job["remaining"] = Value(remaining);
            if (remaining == 0) {
              finish_job(self, key, job, job["results"], /*failed=*/false);
              return Value::none();
            }
            const bool dead =
                self["failed"].as_dict().count(skey) != 0;
            if (!dead && a[5].as_int() != 0) {
              Ranges grant = take_grant(job, src);
              if (!grant.empty()) {
                cpy::collection_from(self["workers"])[cx::Index(
                    static_cast<int>(src))]
                    .send("chunk",
                          {a[1], ranges_to_value(std::move(grant))});
              } else {
                auto& idle = job["idle"].as_list();
                if (std::find_if(idle.begin(), idle.end(),
                                 [&](const Value& v) {
                                   return v.as_int() == src;
                                 }) == idle.end()) {
                  idle.emplace_back(src);
                }
              }
            }
            // Results freed in-flight budget: revive parked workers.
            feed_idle(self, key, job);
            return Value::none();
          });

  // A steal moved task ranges between workers; mirror the move in the
  // per-worker bookkeeping so a future peFailed reclaims the chunks
  // from whoever actually holds them.
  cls.def("reassign", {"victim", "thief", "job_id", "ranges"},
          [](DChare& self, Args& a) {
            auto& jobs = self["jobs"].as_dict();
            const auto jit = jobs.find(std::to_string(a[2].as_int()));
            if (jit == jobs.end()) return Value::none();
            auto& job = jit->second.as_dict();
            auto& assigned = job["assigned"].as_dict();
            const std::string vkey = std::to_string(a[0].as_int());
            const std::string tkey = std::to_string(a[1].as_int());
            auto& done = job["done"].as_list();
            ensure_assigned_slot(job, a[1].as_int());
            auto& thief_ranges = ranges_mut(assigned[tkey]);
            std::uint64_t moved = 0;
            const Ranges& loot = ranges_of(a[3]);
            for (std::size_t i = 0; i + 1 < loot.size(); i += 2) {
              for (std::int64_t t = loot[i]; t < loot[i] + loot[i + 1];
                   ++t) {
                if (done[static_cast<std::size_t>(t)].as_int() != 0) {
                  continue;  // already completed elsewhere
                }
                const auto vit = assigned.find(vkey);
                bool took = vit != assigned.end() &&
                            ranges_remove(ranges_mut(vit->second), t);
                if (!took) took = ranges_remove(ranges_mut(job["redo"]), t);
                // Not found under the victim or redo: a concurrent
                // resubmission already filed it elsewhere; the done
                // bitmap will dedup the extra execution.
                if (took) {
                  ranges_append(thief_ranges, t, 1);
                  ++moved;
                }
              }
            }
            cx::trace::detail::g_pool.reassigns.fetch_add(
                moved, std::memory_order_relaxed);
            return Value::none();
          });

  // Decoupled heartbeat from a worker mid-chunk.
  cls.def("beat", {"src", "hb"}, [](DChare& self, Args& a) {
    update_heartbeat(self, a[0].as_int(), a[1]);
    return Value::none();
  });

  // PE-failure recovery (wired from cx::ft::on_failure by Pool's ctor):
  // pull the dead worker out of every job, reclaim every task range it
  // held — its own grants plus anything it stole — and keep each
  // affected job moving: parked workers get the redo work immediately,
  // free processors are recruited, and a job with no live workers left
  // fails its future with an error instead of hanging.
  cls.def("peFailed", {"pe"}, [](DChare& self, Args& a) {
    const std::int64_t pe = a[0].as_int();
    const std::string pkey = std::to_string(pe);
    if (self["failed"].as_dict().count(pkey) != 0) return Value::none();
    self["failed"].as_dict()[pkey] = Value(1);
    self["heartbeats"].as_dict().erase(pkey);
    auto& free = self["free_procs"].as_list();
    free.erase(std::remove_if(free.begin(), free.end(),
                              [&](const Value& v) {
                                return v.as_int() == pe;
                              }),
               free.end());
    auto& jobs = self["jobs"].as_dict();
    std::vector<std::string> keys;
    keys.reserve(jobs.size());
    for (const auto& [k, v] : jobs) keys.push_back(k);
    for (const std::string& key : keys) {
      const auto jit = jobs.find(key);
      if (jit == jobs.end()) continue;  // finished while we iterated
      auto& job = jit->second.as_dict();
      auto& procs = job["procs"].as_list();
      const auto pit =
          std::find_if(procs.begin(), procs.end(),
                       [&](const Value& v) { return v.as_int() == pe; });
      if (pit == procs.end()) continue;  // job never used this worker
      procs.erase(pit);
      auto& idle = job["idle"].as_list();
      idle.erase(std::remove_if(idle.begin(), idle.end(),
                                [&](const Value& v) {
                                  return v.as_int() == pe;
                                }),
                 idle.end());
      // Reclaim the dead worker's whole outstanding range set (minus
      // tasks whose results already landed) into the redo pool.
      auto& assigned = job["assigned"].as_dict();
      auto& done = job["done"].as_list();
      std::int64_t resubmitted = 0;
      const auto ait = assigned.find(pkey);
      if (ait != assigned.end()) {
        auto& redo = ranges_mut(job["redo"]);
        const Ranges held = ranges_of(ait->second);
        for (std::size_t i = 0; i + 1 < held.size(); i += 2) {
          for (std::int64_t t = held[i]; t < held[i] + held[i + 1]; ++t) {
            if (done[static_cast<std::size_t>(t)].as_int() == 0) {
              ranges_append(redo, t, 1);
              ++resubmitted;
            }
          }
        }
        assigned.erase(pkey);
      }
      CX_TRACE_EVENT(cx::my_pe(), cx::now(),
                     cx::trace::EventKind::FtResubmit,
                     static_cast<std::uint64_t>(pe),
                     static_cast<std::uint64_t>(resubmitted));
      // Parked survivors take the redo work immediately (they will
      // never request again on their own)...
      feed_idle(self, key, job);
      // ...then free processors are recruited for what remains.
      auto workers = cpy::collection_from(self["workers"]);
      while (!free.empty() && ranges_count(ranges_of(job["redo"])) > 0) {
        const Value p = free.back();
        free.pop_back();
        procs.push_back(p);
        const std::int64_t w = p.as_int();
        ensure_assigned_slot(job, w);
        Ranges grant = take_grant(job, w);
        workers[cx::Index(static_cast<int>(w))].send(
            "start",
            {Value(static_cast<std::int64_t>(std::stoll(key))),
             job["fname"], job["tasks"],
             cpy::to_value(cpy::proxy_of(self)), Value::list(procs),
             ranges_to_value(std::move(grant))});
      }
      if (job["remaining"].as_int() > 0 && procs.empty()) {
        if (cx::ft::auto_recover_enabled()) {
          // The runtime will roll back and revive the dead workers;
          // park the job back on the queue instead of failing its
          // future. The recovered handler (or any job releasing
          // processors) re-dispatches it; its redo pool already holds
          // the lost ranges.
          CX_LOG_WARN("pool: job ", key, " lost its last worker (PE ", pe,
                      "); parking until recovery");
          self["queued"].as_list().emplace_back(
              static_cast<std::int64_t>(std::stoll(key)));
        } else {
          CX_LOG_WARN("pool: job ", key, " lost its last worker (PE ", pe,
                      "); failing the job");
          finish_job(self, key, job,
                     make_error("worker on PE " + pkey +
                                " failed and no processors remain"),
                     /*failed=*/true);
        }
      }
    }
    return Value::none();
  });

  // Auto-recovery completed (wired from cx::ft::on_recovery): every PE
  // is live again. Forget the dead set, rebuild the free list from the
  // PEs no job currently holds, and re-dispatch parked jobs.
  cls.def("recovered", {"round"}, [](DChare& self, Args&) {
    self["failed"] = Value::dict({});
    self["heartbeats"] = Value::dict({});
    std::vector<bool> used(static_cast<std::size_t>(cx::num_pes()), false);
    for (auto& [k, v] : self["jobs"].as_dict()) {
      for (const Value& pv : v.as_dict()["procs"].as_list()) {
        used[static_cast<std::size_t>(pv.as_int())] = true;
      }
    }
    List free;
    const int p = cx::num_pes();
    if (p == 1) {
      if (!used[0]) free.emplace_back(0);
    } else {
      for (int i = 1; i < p; ++i) {
        if (!used[static_cast<std::size_t>(i)]) free.emplace_back(i);
      }
    }
    self["free_procs"] = Value::list(std::move(free));
    dispatch_queued(self);
    return Value::none();
  });

  // Report the per-worker heartbeat counters (pe -> last count seen).
  cls.def("liveness", {"future"}, [](DChare& self, Args& a) {
    cpy::future_from(a[0]).send(self["heartbeats"]);
    return Value::none();
  });

  cls.def("jobError", {"job_id", "error"}, [](DChare& self, Args& a) {
    auto& jobs = self["jobs"].as_dict();
    const std::string key = std::to_string(a[0].as_int());
    const auto jit = jobs.find(key);
    if (jit == jobs.end()) return Value::none();  // already resolved
    auto& job = jit->second.as_dict();
    CX_LOG_WARN("pool: job ", key, " failed: ", a[1].as_str());
    finish_job(self, key, job, make_error(a[1].as_str()), /*failed=*/true);
    return Value::none();
  });
}

struct PoolClasses {
  PoolClasses() {
    define_worker();
    define_manager();
  }
};

void ensure_classes() { static PoolClasses once; }

}  // namespace

void register_function(const std::string& name, TaskFn fn) {
  auto& r = FnRegistry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.fns[name] = std::move(fn);
}

const TaskFn& lookup_function(const std::string& name) {
  auto& r = FnRegistry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.fns.find(name);
  if (it == r.fns.end()) {
    throw std::out_of_range("pool: unknown task function '" + name + "'");
  }
  return it->second;
}

Value make_error(const std::string& message) {
  return Value::dict({{std::string(kErrorKey), Value(message)}});
}

bool is_error(const Value& result) {
  return result.kind() == cpy::Kind::Dict &&
         result.as_dict().count(std::string(kErrorKey)) != 0;
}

std::string error_message(const Value& result) {
  if (!is_error(result)) return {};
  return result.as_dict().at(std::string(kErrorKey)).as_str();
}

void configure(const PoolConfig& cfg) {
  PoolConfig c = cfg;
  c.chunk = std::max<std::int64_t>(0, c.chunk);
  c.max_inflight = std::max<std::int64_t>(0, c.max_inflight);
  c.quantum = std::max<std::int64_t>(1, c.quantum);
  c.result_batch = std::max<std::int64_t>(1, c.result_batch);
  c.steal_retries = std::max<std::int64_t>(0, c.steal_retries);
  g_config = c;
}

const PoolConfig& config() noexcept { return g_config; }

void configure_from_options(const cxu::Options& opt) {
  PoolConfig c = g_config;
  if (opt.has("pool-chunk")) {
    // "auto" selects guided self-scheduling; anything else must be a
    // valid integer (strict get_int throws on garbage).
    if (opt.get_string("pool-chunk", "") == "auto") {
      c.chunk = 0;
    } else {
      c.chunk = opt.get_int("pool-chunk", 0);
      if (c.chunk < 0) {
        throw std::invalid_argument("--pool-chunk must be >= 0 or 'auto'");
      }
    }
  }
  c.steal = opt.get_bool("pool-steal", c.steal);
  c.max_inflight = opt.get_int("pool-max-inflight", c.max_inflight);
  if (c.max_inflight < 0) {
    throw std::invalid_argument("--pool-max-inflight must be >= 0");
  }
  c.quantum = opt.get_int("pool-quantum", c.quantum);
  if (c.quantum < 1) {
    throw std::invalid_argument("--pool-quantum must be >= 1");
  }
  c.result_batch = opt.get_int("pool-batch", c.result_batch);
  if (c.result_batch < 1) {
    throw std::invalid_argument("--pool-batch must be >= 1");
  }
  c.beat_s = opt.get_double("pool-beat-ms", c.beat_s * 1e3) * 1e-3;
  c.steal_retries = opt.get_int("pool-steal-retries", c.steal_retries);
  if (c.steal_retries < 0) {
    throw std::invalid_argument("--pool-steal-retries must be >= 0");
  }
  configure(c);
}

Pool::Pool() {
  ensure_classes();
  master_ = cpy::create_chare("cxpool.MapManager", 0);
  // Route PE-failure detections (scripted crash, inject_kill, retransmit
  // give-up) to the master so it reclaims the dead worker's chunks.
  cpy::DElement master = master_;
  cx::ft::on_failure([master](const cx::ft::PeFailure& f) {
    master.send("peFailed",
                {Value(static_cast<std::int64_t>(f.pe))});
  });
  // After an auto-recovery round every PE is live again: let the master
  // reclaim the revived workers and re-dispatch parked jobs.
  cx::ft::on_recovery([master](std::uint64_t round) {
    master.send("recovered",
                {Value(static_cast<std::int64_t>(round))});
  });
}

cpy::Value Pool::liveness() const {
  auto f = cx::make_future<Value>();
  master_.send("liveness", {cpy::to_value(f)});
  return f.get();
}

cx::Future<cpy::Value> Pool::submit(const std::string& fn_name,
                                    int num_procs, cpy::List tasks,
                                    std::int64_t priority) const {
  auto f = cx::make_future<Value>();
  master_.send("submit", {Value(fn_name), Value(num_procs),
                          Value::list(std::move(tasks)),
                          cpy::to_value(f), Value(priority)});
  return f;
}

}  // namespace cxpool
