#include "pool/pool.hpp"

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "ft/ft.hpp"
#include "trace/trace.hpp"
#include "util/log.hpp"

namespace cxpool {

using cpy::Args;
using cpy::DChare;
using cpy::DClass;
using cpy::Dict;
using cpy::List;
using cpy::Value;

namespace {

struct FnRegistry {
  std::mutex mutex;
  std::unordered_map<std::string, TaskFn> fns;
  static FnRegistry& instance() {
    static FnRegistry r;
    return r;
  }
};

// ---------------------------------------------------------------------------
// Worker: one per PE (paper's Group(Worker)). Mirrors the paper's code:
// start() records the job and asks for the first task; apply() runs the
// function on one task and piggybacks the result on the next request.

/// Bump this worker's heartbeat counter. The counter piggybacks on the
/// getTask request the worker was about to send anyway, so liveness
/// costs zero extra messages — even with cx::ft disabled.
Value next_heartbeat(DChare& self) {
  const std::int64_t hb =
      self.has_attr("hb") ? self["hb"].as_int() + 1 : 1;
  self["hb"] = Value(hb);
  return Value(hb);
}

void define_worker() {
  DClass cls("cxpool.Worker");
  cls.def("start", {"job_id", "fname", "tasks", "master"},
          [](DChare& self, Args& a) {
            self["job_id"] = a[0];
            self["fname"] = a[1];
            self["tasks"] = a[2];
            self["master"] = a[3];
            // request a new task
            cpy::element_from(a[3]).send(
                "getTask", {self["thisIndex"].item(Value(0)), a[0],
                            Value::none(), Value::none(),
                            next_heartbeat(self)});
            return Value::none();
          });
  cls.def("apply", {"job_id", "task_id"}, [](DChare& self, Args& a) {
    // A stale assignment can arrive after this worker was handed to a new
    // job (the old job failed and released its processors early); ignore it
    // rather than corrupting the new job's state.
    if (!self["job_id"].equals(a[0])) return Value::none();
    Value result;
    try {
      const Value task = self["tasks"].item(a[1]);
      const TaskFn& fn = lookup_function(self["fname"].as_str());
      result = fn(task);
    } catch (const std::exception& e) {
      // A failing task (unknown function name, or the function threw)
      // must fail the job, not kill the run: report it to the master,
      // which resolves the job's future with an error value.
      cpy::element_from(self["master"])
          .send("jobError", {self["job_id"], Value(std::string(e.what()))});
      return Value::none();
    }
    cpy::element_from(self["master"])
        .send("getTask", {self["thisIndex"].item(Value(0)), self["job_id"],
                          a[1], std::move(result), next_heartbeat(self)});
    return Value::none();
  });
}

// ---------------------------------------------------------------------------
// MapManager: the master on PE 0. Job bookkeeping lives entirely in the
// attribute dict (so the master is migratable like any chare). The
// user's future travels boxed inside a Value. Jobs that cannot get any
// processor (all busy) wait in a FIFO queue and are dispatched as other
// jobs finish — a saturated pool must never deadlock.

/// Release a finished/failed job's processors back to the free list.
void release_procs(DChare& self, Dict& job) {
  auto& free = self["free_procs"].as_list();
  for (const Value& p : job["procs"].as_list()) free.push_back(p);
  job["procs"] = Value::list({});
}

/// Grant processors to queued jobs (FIFO) while any are free, and start
/// workers on them. Partial grants are allowed (the paper clamps the
/// request to what is free); only a zero grant keeps a job queued.
void dispatch_queued(DChare& self) {
  auto& free = self["free_procs"].as_list();
  auto& queued = self["queued"].as_list();
  auto& jobs = self["jobs"].as_dict();
  while (!queued.empty() && !free.empty()) {
    const std::int64_t job_id = queued.front().as_int();
    queued.erase(queued.begin());
    const auto jit = jobs.find(std::to_string(job_id));
    if (jit == jobs.end()) continue;  // job already failed/cancelled
    auto& job = jit->second.as_dict();
    std::int64_t want = job["want"].as_int();
    if (want > static_cast<std::int64_t>(free.size())) {
      CX_LOG_WARN("pool: job ", job_id, " requested ", want,
                  " procs, only ", free.size(), " free; clamping");
      want = static_cast<std::int64_t>(free.size());
    }
    List procs;
    for (std::int64_t i = 0; i < want; ++i) {
      procs.push_back(free.back());
      free.pop_back();
    }
    job["procs"] = Value::list(procs);
    CX_TRACE_EVENT(cx::my_pe(), cx::now(),
                   cx::trace::EventKind::PoolJobStart,
                   static_cast<std::uint64_t>(job_id), procs.size());
    auto workers = cpy::collection_from(self["workers"]);
    for (const Value& p : procs) {
      workers[cx::Index(static_cast<int>(p.as_int()))].send(
          "start", {Value(job_id), job["fname"], job["tasks"],
                    cpy::to_value(cpy::proxy_of(self))});
    }
  }
}

/// Resolve the job's future, return its processors and dispatch waiters.
void finish_job(DChare& self, const std::string& key, Dict& job,
                const Value& result) {
  release_procs(self, job);
  CX_TRACE_EVENT(cx::my_pe(), cx::now(), cx::trace::EventKind::PoolJobDone,
                 static_cast<std::uint64_t>(
                     std::stoll(key)),
                 job["tasks"].length());
  cpy::future_from(job["future"]).send(result);
  self["jobs"].as_dict().erase(key);
  dispatch_queued(self);
}

void define_manager() {
  DClass cls("cxpool.MapManager");

  cls.def("__init__", {}, [](DChare& self, Args&) {
    self["workers"] = cpy::to_value(cpy::create_group("cxpool.Worker"));
    // Paper: free processors are 1..P-1 (PE 0 runs the master). With a
    // single PE, the master shares PE 0 with the one worker.
    List free;
    const int p = cx::num_pes();
    if (p == 1) {
      free.emplace_back(0);
    } else {
      for (int i = 1; i < p; ++i) free.emplace_back(i);
    }
    self["free_procs"] = Value::list(std::move(free));
    self["next_job_id"] = Value(0);
    self["jobs"] = Value::dict({});
    self["queued"] = Value::list({});
    // Worker liveness (pe -> last heartbeat seen) and dead PEs.
    self["heartbeats"] = Value::dict({});
    self["failed"] = Value::dict({});
    return Value::none();
  });

  cls.def("map_async", {"fname", "numProcs", "tasks", "future"},
          [](DChare& self, Args& a) {
            std::int64_t want = a[1].as_int();
            if (want <= 0) {
              CX_LOG_WARN("pool: requested ", want,
                          " procs; running on 1");
              want = 1;
            }
            const std::int64_t job_id = self["next_job_id"].as_int();
            self["next_job_id"] = Value(job_id + 1);
            const std::uint64_t ntasks = a[2].length();
            if (ntasks == 0) {
              // Nothing to do: resolve immediately (never strand the
              // caller's future).
              cpy::future_from(a[3]).send(Value::list({}));
              return Value::none();
            }
            Dict job;
            job["fname"] = a[0];
            job["tasks"] = a[2];
            job["results"] = Value::list(
                List(static_cast<std::size_t>(ntasks), Value::none()));
            job["remaining"] = Value(static_cast<std::int64_t>(ntasks));
            job["next_task"] = Value(0);
            job["want"] = Value(want);
            job["procs"] = Value::list({});
            job["future"] = a[3];
            // Failure bookkeeping: which task each worker holds, which
            // tasks completed (a resubmitted task may finish twice),
            // tasks to re-run, and workers idling out of fresh work.
            job["assigned"] = Value::dict({});
            job["done"] = Value::list(
                List(static_cast<std::size_t>(ntasks), Value(0)));
            job["redo"] = Value::list({});
            job["idle"] = Value::list({});
            self["jobs"].as_dict()[std::to_string(job_id)] =
                Value::dict(std::move(job));
            // Queue the job; with free processors it starts right away,
            // otherwise it waits for a running job to release some. This
            // is what keeps a saturated pool deadlock-free.
            self["queued"].as_list().emplace_back(job_id);
            CX_TRACE_EVENT(cx::my_pe(), cx::now(),
                           cx::trace::EventKind::PoolJobQueued,
                           static_cast<std::uint64_t>(job_id),
                           self["free_procs"].length());
            dispatch_queued(self);
            return Value::none();
          });

  cls.def("getTask", {"src", "job_id", "prev_task", "prev_result", "hb"},
          [](DChare& self, Args& a) {
            const std::int64_t src = a[0].as_int();
            const std::string skey = std::to_string(src);
            // Heartbeat rides on the request the worker sends anyway. A
            // straggler request from a worker already declared dead must
            // not resurrect it in the liveness report.
            if (self["failed"].as_dict().count(skey) == 0) {
              self["heartbeats"].as_dict()[skey] = a[4];
            }
            auto& jobs = self["jobs"].as_dict();
            const std::string key = std::to_string(a[1].as_int());
            const auto jit = jobs.find(key);
            if (jit == jobs.end()) return Value::none();  // job finished
            auto& job = jit->second.as_dict();
            if (!a[2].is_none()) {
              const auto t = static_cast<std::size_t>(a[2].as_int());
              auto& done = job["done"].as_list();
              // A resubmitted task can complete twice (the dead worker's
              // in-flight result may still land); count it only once.
              if (done[t].as_int() == 0) {
                done[t] = Value(1);
                job["results"].as_list()[t] = a[3];
                job["remaining"] = Value(job["remaining"].as_int() - 1);
              }
              job["assigned"].as_dict().erase(skey);
            }
            if (job["remaining"].as_int() == 0) {
              // job done: release its processors, deliver the results.
              finish_job(self, key, job, job["results"]);
              return Value::none();
            }
            if (self["failed"].as_dict().count(skey) != 0) {
              return Value::none();  // no new work for a dead worker
            }
            // Re-runs of a failed worker's tasks go out first.
            std::int64_t next = -1;
            auto& redo = job["redo"].as_list();
            if (!redo.empty()) {
              next = redo.front().as_int();
              redo.erase(redo.begin());
            } else if (job["next_task"].as_int() <
                       static_cast<std::int64_t>(job["tasks"].length())) {
              next = job["next_task"].as_int();
              job["next_task"] = Value(next + 1);
            }
            if (next >= 0) {
              job["assigned"].as_dict()[skey] = Value(next);
              auto workers = cpy::collection_from(self["workers"]);
              workers[cx::Index(static_cast<int>(src))].send(
                  "apply", {a[1], Value(next)});
            } else {
              // Out of fresh work while the job still runs: remember the
              // idle worker so failure recovery can hand it redo tasks.
              job["idle"].as_list().emplace_back(src);
            }
            return Value::none();
          });

  // PE-failure recovery (wired from cx::ft::on_failure by Pool's ctor):
  // pull the dead worker out of every job, resubmit the task it held,
  // and keep each affected job moving — idle workers get the redo work
  // directly, free processors are recruited, and a job with no live
  // workers left fails its future with an error instead of hanging.
  cls.def("peFailed", {"pe"}, [](DChare& self, Args& a) {
    const std::int64_t pe = a[0].as_int();
    const std::string pkey = std::to_string(pe);
    if (self["failed"].as_dict().count(pkey) != 0) return Value::none();
    self["failed"].as_dict()[pkey] = Value(1);
    self["heartbeats"].as_dict().erase(pkey);
    auto& free = self["free_procs"].as_list();
    free.erase(std::remove_if(free.begin(), free.end(),
                              [&](const Value& v) {
                                return v.as_int() == pe;
                              }),
               free.end());
    auto& jobs = self["jobs"].as_dict();
    std::vector<std::string> keys;
    keys.reserve(jobs.size());
    for (const auto& [k, v] : jobs) keys.push_back(k);
    for (const std::string& key : keys) {
      const auto jit = jobs.find(key);
      if (jit == jobs.end()) continue;  // finished while we iterated
      auto& job = jit->second.as_dict();
      auto& procs = job["procs"].as_list();
      const auto pit =
          std::find_if(procs.begin(), procs.end(),
                       [&](const Value& v) { return v.as_int() == pe; });
      if (pit == procs.end()) continue;  // job never used this worker
      procs.erase(pit);
      auto& idle = job["idle"].as_list();
      idle.erase(std::remove_if(idle.begin(), idle.end(),
                                [&](const Value& v) {
                                  return v.as_int() == pe;
                                }),
                 idle.end());
      auto& assigned = job["assigned"].as_dict();
      std::int64_t resubmitted = 0;
      const auto ait = assigned.find(pkey);
      if (ait != assigned.end()) {
        const std::int64_t t = ait->second.as_int();
        assigned.erase(ait);
        if (job["done"].as_list()[static_cast<std::size_t>(t)].as_int() ==
            0) {
          job["redo"].as_list().emplace_back(t);
          resubmitted = 1;
        }
      }
      CX_TRACE_EVENT(cx::my_pe(), cx::now(),
                     cx::trace::EventKind::FtResubmit,
                     static_cast<std::uint64_t>(pe),
                     static_cast<std::uint64_t>(resubmitted));
      auto workers = cpy::collection_from(self["workers"]);
      auto& redo = job["redo"].as_list();
      // Idle survivors take the redo work immediately (they will never
      // request again on their own)...
      while (!redo.empty() && !idle.empty()) {
        const std::int64_t w = idle.front().as_int();
        idle.erase(idle.begin());
        const std::int64_t t = redo.front().as_int();
        redo.erase(redo.begin());
        assigned[std::to_string(w)] = Value(t);
        workers[cx::Index(static_cast<int>(w))].send(
            "apply", {Value(static_cast<std::int64_t>(std::stoll(key))), Value(t)});
      }
      // ...then free processors are recruited for what remains; they
      // pull from the redo list through the normal getTask path.
      const std::size_t recruits = std::min(free.size(), redo.size());
      for (std::size_t i = 0; i < recruits; ++i) {
        const Value p = free.back();
        free.pop_back();
        procs.push_back(p);
        workers[cx::Index(static_cast<int>(p.as_int()))].send(
            "start", {Value(static_cast<std::int64_t>(std::stoll(key))), job["fname"], job["tasks"],
                      cpy::to_value(cpy::proxy_of(self))});
      }
      if (job["remaining"].as_int() > 0 && procs.empty()) {
        if (cx::ft::auto_recover_enabled()) {
          // The runtime will roll back and revive the dead workers; park
          // the job back on the queue instead of failing its future. The
          // recovered handler (or any job releasing processors) will
          // re-dispatch it; its redo list already holds the lost tasks.
          CX_LOG_WARN("pool: job ", key, " lost its last worker (PE ", pe,
                      "); parking until recovery");
          self["queued"].as_list().emplace_back(
              static_cast<std::int64_t>(std::stoll(key)));
        } else {
          CX_LOG_WARN("pool: job ", key, " lost its last worker (PE ", pe,
                      "); failing the job");
          finish_job(self, key, job,
                     make_error("worker on PE " + pkey +
                                " failed and no processors remain"));
        }
      }
    }
    return Value::none();
  });

  // Auto-recovery completed (wired from cx::ft::on_recovery): every PE
  // is live again. Forget the dead set, rebuild the free list from the
  // PEs no job currently holds, and re-dispatch parked jobs.
  cls.def("recovered", {"round"}, [](DChare& self, Args&) {
    self["failed"] = Value::dict({});
    self["heartbeats"] = Value::dict({});
    std::vector<bool> used(static_cast<std::size_t>(cx::num_pes()), false);
    for (auto& [k, v] : self["jobs"].as_dict()) {
      for (const Value& pv : v.as_dict()["procs"].as_list()) {
        used[static_cast<std::size_t>(pv.as_int())] = true;
      }
    }
    List free;
    const int p = cx::num_pes();
    if (p == 1) {
      if (!used[0]) free.emplace_back(0);
    } else {
      for (int i = 1; i < p; ++i) {
        if (!used[static_cast<std::size_t>(i)]) free.emplace_back(i);
      }
    }
    self["free_procs"] = Value::list(std::move(free));
    dispatch_queued(self);
    return Value::none();
  });

  // Report the per-worker heartbeat counters (pe -> last count seen).
  cls.def("liveness", {"future"}, [](DChare& self, Args& a) {
    cpy::future_from(a[0]).send(self["heartbeats"]);
    return Value::none();
  });

  cls.def("jobError", {"job_id", "error"}, [](DChare& self, Args& a) {
    auto& jobs = self["jobs"].as_dict();
    const std::string key = std::to_string(a[0].as_int());
    const auto jit = jobs.find(key);
    if (jit == jobs.end()) return Value::none();  // already resolved
    auto& job = jit->second.as_dict();
    CX_LOG_WARN("pool: job ", key, " failed: ", a[1].as_str());
    finish_job(self, key, job, make_error(a[1].as_str()));
    return Value::none();
  });
}

struct PoolClasses {
  PoolClasses() {
    define_worker();
    define_manager();
  }
};

void ensure_classes() { static PoolClasses once; }

}  // namespace

void register_function(const std::string& name, TaskFn fn) {
  auto& r = FnRegistry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.fns[name] = std::move(fn);
}

const TaskFn& lookup_function(const std::string& name) {
  auto& r = FnRegistry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.fns.find(name);
  if (it == r.fns.end()) {
    throw std::out_of_range("pool: unknown task function '" + name + "'");
  }
  return it->second;
}

Value make_error(const std::string& message) {
  return Value::dict({{std::string(kErrorKey), Value(message)}});
}

bool is_error(const Value& result) {
  return result.kind() == cpy::Kind::Dict &&
         result.as_dict().count(std::string(kErrorKey)) != 0;
}

std::string error_message(const Value& result) {
  if (!is_error(result)) return {};
  return result.as_dict().at(std::string(kErrorKey)).as_str();
}

Pool::Pool() {
  ensure_classes();
  master_ = cpy::create_chare("cxpool.MapManager", 0);
  // Route PE-failure detections (scripted crash, inject_kill, retransmit
  // give-up) to the master so it resubmits the dead worker's tasks.
  cpy::DElement master = master_;
  cx::ft::on_failure([master](const cx::ft::PeFailure& f) {
    master.send("peFailed",
                {Value(static_cast<std::int64_t>(f.pe))});
  });
  // After an auto-recovery round every PE is live again: let the master
  // reclaim the revived workers and re-dispatch parked jobs.
  cx::ft::on_recovery([master](std::uint64_t round) {
    master.send("recovered",
                {Value(static_cast<std::int64_t>(round))});
  });
}

cpy::Value Pool::liveness() const {
  auto f = cx::make_future<Value>();
  master_.send("liveness", {cpy::to_value(f)});
  return f.get();
}

cx::Future<cpy::Value> Pool::map_async(const std::string& fn_name,
                                       int num_procs,
                                       cpy::List tasks) const {
  auto f = cx::make_future<Value>();
  master_.send("map_async", {Value(fn_name), Value(num_procs),
                             Value::list(std::move(tasks)),
                             cpy::to_value(f)});
  return f;
}

}  // namespace cxpool
