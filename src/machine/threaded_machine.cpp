#include "machine/threaded_machine.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "trace/trace.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"
#include "wire/envelope.hpp"

namespace cxm {

namespace {
thread_local int t_current_pe = -1;

// FtDrop trace reasons (slot a).
constexpr std::uint64_t kDropInjected = 0;
constexpr std::uint64_t kDropDuplicate = 1;
constexpr std::uint64_t kDropDeadDst = 2;
}  // namespace

ThreadedMachine::ThreadedMachine(const MachineConfig& cfg)
    : num_pes_(cfg.num_pes),
      ft_(cfg.faults),
      crashed_(static_cast<std::size_t>(cfg.num_pes)),
      unreachable_(static_cast<std::size_t>(cfg.num_pes)),
      hung_(static_cast<std::size_t>(cfg.num_pes)),
      failure_notified_(static_cast<std::size_t>(cfg.num_pes), 0) {
  if (num_pes_ < 1) throw std::invalid_argument("num_pes must be >= 1");
  mailboxes_.reserve(static_cast<std::size_t>(num_pes_));
  for (int i = 0; i < num_pes_; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  agg_on_ = cx::wire::agg_enabled();
  if (agg_on_) {
    agg_cfg_ = cx::wire::agg_config();
    aggs_.resize(static_cast<std::size_t>(num_pes_));
  }
  ft_enabled_ = ft_.enabled();
  if (ft_enabled_) {
    inj_ = std::make_unique<cx::ft::FaultInjector>(ft_);
    ft_pes_.reserve(static_cast<std::size_t>(num_pes_));
    for (int i = 0; i < num_pes_; ++i) {
      ft_pes_.push_back(std::make_unique<FtPeState>());
    }
  }
}

ThreadedMachine::~ThreadedMachine() = default;

std::uint32_t ThreadedMachine::register_handler(Handler h) {
  if (running_) throw std::logic_error("register_handler after run()");
  handlers_.push_back(std::move(h));
  return static_cast<std::uint32_t>(handlers_.size() - 1);
}

int ThreadedMachine::current_pe() const noexcept { return t_current_pe; }

void ThreadedMachine::enqueue(int dst, MessagePtr msg) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(mb.mutex);
    mb.queue.push_back(std::move(msg));
  }
  mb.cv.notify_one();
}

void ThreadedMachine::enqueue_delayed(int dst, MessagePtr msg,
                                      double deadline) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(mb.mutex);
    mb.delayed.emplace(deadline, std::move(msg));
  }
  mb.cv.notify_one();  // the PE re-bounds its wait by the new deadline
}

cx::wire::PeAggregator& ThreadedMachine::agg(int pe) {
  auto& a = aggs_[static_cast<std::size_t>(pe)];
  if (!a) a = std::make_unique<cx::wire::PeAggregator>(agg_cfg_);
  return *a;
}

bool ThreadedMachine::agg_pending(int pe) const noexcept {
  const auto& a = aggs_[static_cast<std::size_t>(pe)];
  return a != nullptr && a->has_pending();
}

void ThreadedMachine::drain_agg(int pe) {
  auto& a = agg(pe);
  while (MessagePtr batch = a.next_ready()) send(std::move(batch));
}

void ThreadedMachine::send(MessagePtr msg) {
  const int dst = msg->dst_pe;
  if (dst < 0 || dst >= num_pes_) {
    throw std::out_of_range("send: bad destination PE");
  }
  const int src = t_current_pe;
  msg->src_pe = src;
  if (agg_on_ && src >= 0) {
    auto& a = agg(src);
    if (cx::wire::agg_eligible(*msg, a.config())) {
      CX_TRACE_EVENT(src, now(), cx::trace::EventKind::MsgSend,
                     static_cast<std::uint64_t>(dst), msg->wire_size());
      // No flush timers here: pe_loop's idle hook seals open batches
      // before the scheduler ever sleeps, so the arm flag is unused.
      (void)a.absorb(std::move(msg));
      drain_agg(src);
      return;
    }
    // Bypassing message headed to a destination with an open batch:
    // seal the batch first so it stays ahead in the mailbox.
    if ((msg->wire_flags & kWireAggBatch) == 0 && dst != src &&
        msg->local == nullptr && a.dst_pending(dst)) {
      a.flush_dst(dst, cx::wire::AggFlush::Ordering);
      drain_agg(src);
    }
  }
  if ((msg->wire_flags & kWireAggBatch) == 0) {
    CX_TRACE_EVENT(src, now(), cx::trace::EventKind::MsgSend,
                   static_cast<std::uint64_t>(dst), msg->wire_size());
  }
  if (src >= 0 && dst != src && msg->local == nullptr) {
    cx::trace::detail::g_wire.transport_msgs.fetch_add(
        1, std::memory_order_relaxed);
  }
  if (ft_enabled_ && src >= 0 && dst != src && !msg->local) {
    FtPeState& me = *ft_pes_[static_cast<std::size_t>(src)];
    if (ft_.reliable && msg->ft_flags == 0) {
      const std::uint64_t seq = me.sw.allocate(dst);
      msg->ft_seq = seq;
      msg->ft_flags = kFtReliable;
      cx::ft::PendingSend p;
      p.handler = msg->handler;
      p.dst_pe = dst;
      p.data = msg->data;
      p.size_override = msg->size_override;
      p.seq = seq;
      p.wire_flags = msg->wire_flags;  // a resent batch is still a batch
      {
        std::lock_guard<std::mutex> lk(inj_mutex_);
        p.deadline = now() + inj_->retry_timeout(0);
      }
      const double deadline = p.deadline;
      me.sw.pending.emplace(std::make_pair(dst, seq), std::move(p));
      me.sw.arm(dst, seq, deadline);
    }
    if (ft_.injecting()) {
      cx::ft::FaultInjector::Decision d;
      {
        std::lock_guard<std::mutex> lk(inj_mutex_);
        d = inj_->on_wire();
      }
      if (d.drop) {
        CX_TRACE_EVENT(src, now(), cx::trace::EventKind::FtDrop,
                       kDropInjected, msg->ft_seq);
        return;  // lost on the wire; the pending copy recovers it
      }
      if (d.dup) enqueue(dst, std::make_unique<Message>(*msg));
      if (d.extra_delay > 0.0) {
        enqueue_delayed(dst, std::move(msg), now() + d.extra_delay);
        return;
      }
    }
  }
  enqueue(dst, std::move(msg));
}

void ThreadedMachine::send_after(MessagePtr msg, double delay_s) {
  const int dst = msg->dst_pe;
  if (dst < 0 || dst >= num_pes_) {
    throw std::out_of_range("send_after: bad destination PE");
  }
  msg->src_pe = t_current_pe;
  // A timer delivery, not a network message: no trace, no injection.
  enqueue_delayed(dst, std::move(msg), now() + delay_s);
}

double ThreadedMachine::now() const { return cxu::wall_time() - epoch_; }

void ThreadedMachine::compute(double seconds) {
  const double end = cxu::wall_time() + seconds;
  while (cxu::wall_time() < end) {
    // busy spin: models synthetic compute load on a real core
  }
}

void ThreadedMachine::charge(double) {
  // Real work already consumed real time; nothing to do.
}

void ThreadedMachine::notify_failure_once(int pe, cx::ft::FailureKind kind) {
  {
    std::lock_guard<std::mutex> lk(failure_mutex_);
    if (failure_notified_[static_cast<std::size_t>(pe)]) return;
    failure_notified_[static_cast<std::size_t>(pe)] = 1;
  }
  const double t = now();
  CX_TRACE_EVENT(t_current_pe, t, cx::trace::EventKind::FtFailure,
                 static_cast<std::uint64_t>(pe),
                 static_cast<std::uint64_t>(kind));
  if (failure_listener_) {
    failure_listener_(cx::ft::PeFailure{pe, kind, t});
  }
}

void ThreadedMachine::inject_kill(int pe) {
  if (pe < 0 || pe >= num_pes_) return;
  if (crashed_[static_cast<std::size_t>(pe)].exchange(
          true, std::memory_order_relaxed)) {
    return;
  }
  any_failed_.store(true, std::memory_order_release);
  // Wake the PE so it starts discarding its backlog promptly.
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(pe)];
  {
    std::lock_guard<std::mutex> lock(mb.mutex);
  }
  mb.cv.notify_all();
  notify_failure_once(pe, cx::ft::FailureKind::Crashed);
}

void ThreadedMachine::inject_hang(int pe) {
  if (pe < 0 || pe >= num_pes_) return;
  const auto i = static_cast<std::size_t>(pe);
  if (hung_[i].exchange(true, std::memory_order_relaxed)) return;
  any_failed_.store(true, std::memory_order_release);
  // Wake the PE so it parks promptly. Silent by design: peers must
  // discover the hang themselves (retransmit give-up or heartbeats).
  Mailbox& mb = *mailboxes_[i];
  {
    std::lock_guard<std::mutex> lock(mb.mutex);
  }
  mb.cv.notify_all();
}

void ThreadedMachine::declare_failed(int pe, cx::ft::FailureKind kind) {
  if (pe < 0 || pe >= num_pes_) return;
  const auto i = static_cast<std::size_t>(pe);
  any_failed_.store(true, std::memory_order_release);
  if (kind == cx::ft::FailureKind::Crashed) {
    crashed_[i].store(true, std::memory_order_relaxed);
  } else if (!hung_[i].load(std::memory_order_relaxed)) {
    // Declared dead on external evidence (heartbeat silence) without a
    // local hang flag: mark unreachable so all traffic to it stops.
    unreachable_[i].store(true, std::memory_order_relaxed);
  }
  Mailbox& mb = *mailboxes_[i];
  {
    std::lock_guard<std::mutex> lock(mb.mutex);
  }
  mb.cv.notify_all();
  notify_failure_once(pe, kind);
}

void ThreadedMachine::revive_pe(int pe) {
  if (pe < 0 || pe >= num_pes_) return;
  const auto i = static_cast<std::size_t>(pe);
  {
    // Discard everything the PE accumulated while down (a hung PE's
    // mailbox kept filling): restore rebuilds application state, so
    // pre-failure messages must not resurface in the revived PE.
    Mailbox& mb = *mailboxes_[i];
    std::lock_guard<std::mutex> lock(mb.mutex);
    mb.queue.clear();
    mb.delayed.clear();
    crashed_[i].store(false, std::memory_order_relaxed);
    unreachable_[i].store(false, std::memory_order_relaxed);
    hung_[i].store(false, std::memory_order_relaxed);
    mb.cv.notify_all();
  }
  std::lock_guard<std::mutex> lk(failure_mutex_);
  failure_notified_[i] = 0;
}

bool ThreadedMachine::pe_failed(int pe) const noexcept {
  if (pe < 0 || pe >= num_pes_) return false;
  const auto i = static_cast<std::size_t>(pe);
  return crashed_[i].load(std::memory_order_relaxed) ||
         unreachable_[i].load(std::memory_order_relaxed) ||
         hung_[i].load(std::memory_order_relaxed);
}

void ThreadedMachine::retransmit_due(int pe, FtPeState& me) {
  // Heap-driven: pop due deadlines off the sender's min-heap instead of
  // scanning every pending send. Stale heap entries (acked, abandoned,
  // or superseded by a later retransmit) are pruned lazily.
  const double tnow = now();
  for (;;) {
    me.sw.prune_due();
    if (me.sw.due.empty()) return;
    const cx::ft::SenderWindow::DueEntry e = me.sw.due.top();
    const auto di = static_cast<std::size_t>(e.dst);
    if (crashed_[di].load(std::memory_order_relaxed) ||
        unreachable_[di].load(std::memory_order_relaxed)) {
      // Known-dead peer: retrying only generates noise.
      me.sw.due.pop();
      me.sw.abandon(e.dst);
      continue;
    }
    if (e.deadline > tnow) return;  // nothing (valid) due yet
    me.sw.due.pop();
    auto it = me.sw.pending.find({e.dst, e.seq});
    if (it == me.sw.pending.end()) continue;  // raced away; harmless
    cx::ft::PendingSend& p = it->second;
    if (p.attempts >= ft_.retry.max_attempts) {
      unreachable_[di].store(true, std::memory_order_relaxed);
      any_failed_.store(true, std::memory_order_release);
      me.sw.abandon(e.dst);
      notify_failure_once(e.dst, cx::ft::FailureKind::Unreachable);
      continue;
    }
    p.attempts++;
    CX_TRACE_EVENT(pe, tnow, cx::trace::EventKind::FtRetransmit,
                   static_cast<std::uint64_t>(e.dst),
                   static_cast<std::uint64_t>(p.attempts));
    {
      std::lock_guard<std::mutex> lk(inj_mutex_);
      p.deadline = tnow + inj_->retry_timeout(p.attempts);
    }
    me.sw.arm(e.dst, e.seq, p.deadline);
    auto copy = cx::wire::clone_payload(p.handler, p.dst_pe, p.data);
    copy->size_override = p.size_override;
    copy->ft_seq = p.seq;
    copy->ft_flags = kFtReliable | kFtRetransmit;
    copy->wire_flags = p.wire_flags;
    send(std::move(copy));  // flags are set: no re-enrollment in send()
  }
}

void ThreadedMachine::run() {
  running_ = true;
  stop_.store(false, std::memory_order_relaxed);
  epoch_ = cxu::wall_time();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_pes_));
  for (int pe = 0; pe < num_pes_; ++pe) {
    threads.emplace_back([this, pe] { pe_loop(pe); });
  }
  for (auto& t : threads) t.join();
  running_ = false;
}

void ThreadedMachine::stop() {
  stop_.store(true, std::memory_order_release);
  for (auto& mb : mailboxes_) {
    std::lock_guard<std::mutex> lock(mb->mutex);
    mb->cv.notify_all();
  }
}

void ThreadedMachine::pe_loop(int pe) {
  t_current_pe = pe;
  cxu::set_log_pe(pe);
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(pe)];
  FtPeState* me =
      ft_enabled_ ? ft_pes_[static_cast<std::size_t>(pe)].get() : nullptr;
  constexpr double kNever = cx::ft::SenderWindow::kNever;
  while (true) {
    MessagePtr msg;
    bool stopping = false;
    bool flush_idle = false;
    double idle_s = -1.0;
    {
      std::unique_lock<std::mutex> lock(mb.mutex);
      for (;;) {
        if (any_failed_.load(std::memory_order_relaxed) &&
            hung_[static_cast<std::size_t>(pe)].load(
                std::memory_order_relaxed)) {
          // A hung PE parks: it drains nothing, acks nothing, fires no
          // retransmits — total silence until revive_pe() or stop().
          // Its unacked sends and open batches die with it (own-thread
          // state, so only the owner may clear them).
          if (me && !me->sw.pending.empty()) {
            me->sw.pending.clear();
            while (!me->sw.due.empty()) me->sw.due.pop();
          }
          if (agg_on_ && aggs_[static_cast<std::size_t>(pe)]) {
            aggs_[static_cast<std::size_t>(pe)].reset();
          }
          if (stop_.load(std::memory_order_acquire)) {
            stopping = true;
            break;
          }
          mb.cv.wait(lock);
          continue;
        }
        const double tnow = now();
        // Promote deferred deliveries that have come due.
        while (!mb.delayed.empty() && mb.delayed.begin()->first <= tnow) {
          mb.queue.push_back(std::move(mb.delayed.begin()->second));
          mb.delayed.erase(mb.delayed.begin());
        }
        if (!mb.queue.empty()) break;
        if (stop_.load(std::memory_order_acquire)) {
          stopping = true;
          break;
        }
        if (agg_on_ && agg_pending(pe)) {
          // Idle hook: out of work with open batches — seal and send
          // them (outside the mailbox lock) before going to sleep.
          flush_idle = true;
          break;
        }
        // The scheduler is about to sleep: bound the wait by the next
        // deferred delivery and (with ft on) the next retransmit
        // deadline of our own unacked sends.
        double dl = mb.delayed.empty() ? kNever : mb.delayed.begin()->first;
        if (me) dl = std::min(dl, me->sw.next_deadline());
        if (dl <= tnow) break;  // a retransmit is due; handle below
        const double t0 = cxu::wall_time();
        if (dl >= kNever) {
          mb.cv.wait(lock);
        } else {
          mb.cv.wait_for(lock, std::chrono::duration<double>(dl - tnow));
        }
        const double waited = cxu::wall_time() - t0;
        idle_s = (idle_s < 0.0 ? 0.0 : idle_s) + waited;
      }
      if (!mb.queue.empty()) {
        msg = std::move(mb.queue.front());
        mb.queue.pop_front();
      }
    }
    if (idle_s >= 0.0) {
      CX_TRACE_EVENT(pe, now(), cx::trace::EventKind::Idle,
                     static_cast<std::uint64_t>(idle_s * 1e9), 0);
    }
    if (me && !me->sw.pending.empty()) retransmit_due(pe, *me);
    if (!msg) {
      if (stopping) break;
      if (flush_idle) {
        if (any_failed_.load(std::memory_order_relaxed) &&
            crashed_[static_cast<std::size_t>(pe)].load(
                std::memory_order_relaxed)) {
          // A crashed PE's unsent batches die with it (like its
          // mailbox backlog) — drop them instead of spinning.
          aggs_[static_cast<std::size_t>(pe)].reset();
        } else {
          agg(pe).flush_all(cx::wire::AggFlush::Idle);
          drain_agg(pe);
        }
      }
      continue;  // woke only to flush batches / service retransmits
    }
    if (any_failed_.load(std::memory_order_relaxed) &&
        crashed_[static_cast<std::size_t>(pe)].load(
            std::memory_order_relaxed)) {
      // A crashed PE drains its mailbox but processes — and acks —
      // nothing, so peers see it as dead.
      CX_TRACE_EVENT(pe, now(), cx::trace::EventKind::FtDrop, kDropDeadDst,
                     msg->ft_seq);
      continue;
    }
    if (me && msg->ft_flags != 0) {
      if (msg->ft_flags & kFtAck) {
        me->sw.acked(msg->src_pe, msg->ft_seq);
        continue;
      }
      if (msg->ft_flags & kFtReliable) {
        // Always ack — even duplicates, since the original ack may have
        // been lost on the wire.
        auto ack = std::make_unique<Message>();
        ack->dst_pe = msg->src_pe;
        ack->ft_seq = msg->ft_seq;
        ack->ft_peer = pe;
        ack->ft_flags = kFtAck;
        CX_TRACE_EVENT(pe, now(), cx::trace::EventKind::FtAck,
                       static_cast<std::uint64_t>(msg->src_pe), msg->ft_seq);
        send(std::move(ack));
        if (!me->rw.first_delivery(msg->src_pe, msg->ft_seq)) {
          CX_TRACE_EVENT(pe, now(), cx::trace::EventKind::FtDrop,
                         kDropDuplicate, msg->ft_seq);
          continue;
        }
      }
    }
    if (agg_on_ && (msg->wire_flags & kWireAggBatch) != 0) {
      // Unpack the batch into the normal delivery path, in append order.
      const auto src64 = static_cast<std::uint64_t>(
          static_cast<std::uint32_t>(msg->src_pe));
      const bool ok = cx::wire::for_each_agg_record(
          msg->data,
          [&](std::uint32_t h, const std::byte* p, std::uint32_t len) {
            if (h >= handlers_.size()) {
              CX_LOG_ERROR("dropping batched message with unknown handler ",
                           h);
              return;
            }
            auto sub = std::make_unique<Message>();
            sub->handler = h;
            sub->src_pe = msg->src_pe;
            sub->dst_pe = pe;
            sub->data.assign(p, len);
            CX_TRACE_EVENT(pe, now(), cx::trace::EventKind::MsgRecv, src64,
                           len);
            handlers_[h](std::move(sub));
          });
      if (!ok) CX_LOG_ERROR("dropping malformed aggregation batch");
      if (stop_.load(std::memory_order_acquire)) break;
      continue;
    }
    const std::uint32_t h = msg->handler;
    if (h >= handlers_.size()) {
      CX_LOG_ERROR("dropping message with unknown handler ", h);
      continue;
    }
    CX_TRACE_EVENT(pe, now(), cx::trace::EventKind::MsgRecv,
                   static_cast<std::uint32_t>(msg->src_pe),
                   msg->wire_size());
    handlers_[h](std::move(msg));
    if (stop_.load(std::memory_order_acquire)) {
      // Finish promptly on stop; remaining queued messages are dropped by
      // design (mirrors charm.exit() semantics).
      break;
    }
  }
  t_current_pe = -1;
  cxu::set_log_pe(-1);
}

}  // namespace cxm
