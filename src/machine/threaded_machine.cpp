#include "machine/threaded_machine.hpp"

#include <stdexcept>

#include "util/log.hpp"
#include "util/timer.hpp"

namespace cxm {

namespace {
thread_local int t_current_pe = -1;
}

ThreadedMachine::ThreadedMachine(const MachineConfig& cfg)
    : num_pes_(cfg.num_pes) {
  if (num_pes_ < 1) throw std::invalid_argument("num_pes must be >= 1");
  mailboxes_.reserve(static_cast<std::size_t>(num_pes_));
  for (int i = 0; i < num_pes_; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

ThreadedMachine::~ThreadedMachine() = default;

std::uint32_t ThreadedMachine::register_handler(Handler h) {
  if (running_) throw std::logic_error("register_handler after run()");
  handlers_.push_back(std::move(h));
  return static_cast<std::uint32_t>(handlers_.size() - 1);
}

int ThreadedMachine::current_pe() const noexcept { return t_current_pe; }

void ThreadedMachine::send(MessagePtr msg) {
  const int dst = msg->dst_pe;
  if (dst < 0 || dst >= num_pes_) {
    throw std::out_of_range("send: bad destination PE");
  }
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(mb.mutex);
    mb.queue.push_back(std::move(msg));
  }
  mb.cv.notify_one();
}

double ThreadedMachine::now() const { return cxu::wall_time() - epoch_; }

void ThreadedMachine::compute(double seconds) {
  const double end = cxu::wall_time() + seconds;
  while (cxu::wall_time() < end) {
    // busy spin: models synthetic compute load on a real core
  }
}

void ThreadedMachine::charge(double) {
  // Real work already consumed real time; nothing to do.
}

void ThreadedMachine::run() {
  running_ = true;
  stop_.store(false, std::memory_order_relaxed);
  epoch_ = cxu::wall_time();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_pes_));
  for (int pe = 0; pe < num_pes_; ++pe) {
    threads.emplace_back([this, pe] { pe_loop(pe); });
  }
  for (auto& t : threads) t.join();
  running_ = false;
}

void ThreadedMachine::stop() {
  stop_.store(true, std::memory_order_release);
  for (auto& mb : mailboxes_) {
    std::lock_guard<std::mutex> lock(mb->mutex);
    mb->cv.notify_all();
  }
}

void ThreadedMachine::pe_loop(int pe) {
  t_current_pe = pe;
  cxu::set_log_pe(pe);
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(pe)];
  while (true) {
    MessagePtr msg;
    {
      std::unique_lock<std::mutex> lock(mb.mutex);
      mb.cv.wait(lock, [&] {
        return !mb.queue.empty() || stop_.load(std::memory_order_acquire);
      });
      if (mb.queue.empty()) break;  // stop requested and drained
      msg = std::move(mb.queue.front());
      mb.queue.pop_front();
    }
    const std::uint32_t h = msg->handler;
    if (h >= handlers_.size()) {
      CX_LOG_ERROR("dropping message with unknown handler ", h);
      continue;
    }
    handlers_[h](std::move(msg));
    if (stop_.load(std::memory_order_acquire)) {
      // Finish promptly on stop; remaining queued messages are dropped by
      // design (mirrors charm.exit() semantics).
      break;
    }
  }
  t_current_pe = -1;
  cxu::set_log_pe(-1);
}

}  // namespace cxm
