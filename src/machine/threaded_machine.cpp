#include "machine/threaded_machine.hpp"

#include <stdexcept>

#include "trace/trace.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace cxm {

namespace {
thread_local int t_current_pe = -1;
}

ThreadedMachine::ThreadedMachine(const MachineConfig& cfg)
    : num_pes_(cfg.num_pes) {
  if (num_pes_ < 1) throw std::invalid_argument("num_pes must be >= 1");
  mailboxes_.reserve(static_cast<std::size_t>(num_pes_));
  for (int i = 0; i < num_pes_; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

ThreadedMachine::~ThreadedMachine() = default;

std::uint32_t ThreadedMachine::register_handler(Handler h) {
  if (running_) throw std::logic_error("register_handler after run()");
  handlers_.push_back(std::move(h));
  return static_cast<std::uint32_t>(handlers_.size() - 1);
}

int ThreadedMachine::current_pe() const noexcept { return t_current_pe; }

void ThreadedMachine::send(MessagePtr msg) {
  const int dst = msg->dst_pe;
  if (dst < 0 || dst >= num_pes_) {
    throw std::out_of_range("send: bad destination PE");
  }
  msg->src_pe = t_current_pe;
  CX_TRACE_EVENT(t_current_pe, now(), cx::trace::EventKind::MsgSend,
                 static_cast<std::uint64_t>(dst), msg->wire_size());
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(mb.mutex);
    mb.queue.push_back(std::move(msg));
  }
  mb.cv.notify_one();
}

double ThreadedMachine::now() const { return cxu::wall_time() - epoch_; }

void ThreadedMachine::compute(double seconds) {
  const double end = cxu::wall_time() + seconds;
  while (cxu::wall_time() < end) {
    // busy spin: models synthetic compute load on a real core
  }
}

void ThreadedMachine::charge(double) {
  // Real work already consumed real time; nothing to do.
}

void ThreadedMachine::run() {
  running_ = true;
  stop_.store(false, std::memory_order_relaxed);
  epoch_ = cxu::wall_time();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_pes_));
  for (int pe = 0; pe < num_pes_; ++pe) {
    threads.emplace_back([this, pe] { pe_loop(pe); });
  }
  for (auto& t : threads) t.join();
  running_ = false;
}

void ThreadedMachine::stop() {
  stop_.store(true, std::memory_order_release);
  for (auto& mb : mailboxes_) {
    std::lock_guard<std::mutex> lock(mb->mutex);
    mb->cv.notify_all();
  }
}

void ThreadedMachine::pe_loop(int pe) {
  t_current_pe = pe;
  cxu::set_log_pe(pe);
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(pe)];
  while (true) {
    MessagePtr msg;
    double idle_ns = -1.0;
    {
      std::unique_lock<std::mutex> lock(mb.mutex);
      if (mb.queue.empty() && !stop_.load(std::memory_order_acquire)) {
        // The scheduler is about to sleep: the span until the wakeup is
        // an idle span on this PE.
        const double t0 = cxu::wall_time();
        mb.cv.wait(lock, [&] {
          return !mb.queue.empty() || stop_.load(std::memory_order_acquire);
        });
        idle_ns = (cxu::wall_time() - t0) * 1e9;
      }
      if (!mb.queue.empty()) {
        msg = std::move(mb.queue.front());
        mb.queue.pop_front();
      }
    }
    if (idle_ns >= 0.0) {
      CX_TRACE_EVENT(pe, now(), cx::trace::EventKind::Idle,
                     static_cast<std::uint64_t>(idle_ns), 0);
    }
    if (!msg) break;  // stop requested and drained
    const std::uint32_t h = msg->handler;
    if (h >= handlers_.size()) {
      CX_LOG_ERROR("dropping message with unknown handler ", h);
      continue;
    }
    CX_TRACE_EVENT(pe, now(), cx::trace::EventKind::MsgRecv,
                   static_cast<std::uint32_t>(msg->src_pe),
                   msg->wire_size());
    handlers_[h](std::move(msg));
    if (stop_.load(std::memory_order_acquire)) {
      // Finish promptly on stop; remaining queued messages are dropped by
      // design (mirrors charm.exit() semantics).
      break;
    }
  }
  t_current_pe = -1;
  cxu::set_log_pe(-1);
}

}  // namespace cxm
