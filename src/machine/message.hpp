#pragma once
// The unit of communication between PEs.
//
// A message carries a machine-level handler id (the runtime registers a
// small number of handlers: entry-method delivery, reduction fragments,
// migration, ...) plus either a serialized payload (`data`, used for
// cross-PE sends) or an in-process reference payload (`local`, the paper's
// same-process by-reference optimization — no serialization, zero copy).
//
// Allocation: Message objects come from the cx::wire block pool via the
// class-specific operator new/delete below, and `data` is a cx::wire
// SBO buffer, so a small cross-PE send costs at most one pooled block
// (and often zero heap traffic once the pool is warm). Plain
// make_unique<Message>/new/delete anywhere in the codebase recycles
// automatically.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>

#include "wire/buffer.hpp"
#include "wire/pool.hpp"

namespace cxm {

// cx::ft wire flags (Message::ft_flags). All zero on the fault-free
// fast path; the machine backends only inspect them when fault
// tolerance is enabled in MachineConfig.
inline constexpr std::uint8_t kFtReliable = 1;    ///< carries a seq, wants an ack
inline constexpr std::uint8_t kFtAck = 2;         ///< machine-level ack
inline constexpr std::uint8_t kFtTimer = 4;       ///< internal retransmit timer
inline constexpr std::uint8_t kFtRetransmit = 8;  ///< resent copy
/// Fire-and-forget protocol traffic (heartbeats): never enrolled in
/// reliable delivery — a lost copy is superseded by the next one, and
/// acking every heartbeat would double the liveness layer's traffic.
inline constexpr std::uint8_t kFtBestEffort = 16;

// cx::wire aggregation flags (Message::wire_flags). All zero on the
// ordinary path; the backends only inspect them when --wire-agg is on.
inline constexpr std::uint8_t kWireAggBatch = 1;  ///< sealed batch of messages
inline constexpr std::uint8_t kWireNoAgg = 2;     ///< protocol traffic: bypass
inline constexpr std::uint8_t kWireAggFlush = 4;  ///< internal flush timer

struct Message {
  std::uint32_t handler = 0;  ///< machine handler id (see Machine)
  std::int32_t src_pe = -1;   ///< sending PE (-1 = external / bootstrap)
  std::int32_t dst_pe = 0;    ///< destination PE
  cx::wire::Buffer data;      ///< serialized payload (cross-PE path)

  /// Same-PE reference payload. When non-null, `data` is empty and the
  /// receiver downcasts `local` to the runtime's in-process envelope
  /// type. `local_drop` releases it (back to the envelope pool) when
  /// the message dies undelivered; delivery takes ownership and clears
  /// both fields.
  void* local = nullptr;
  void (*local_drop)(void*) noexcept = nullptr;
  std::uint64_t local_size = 0;  ///< nominal size for accounting/cost models

  /// When nonzero, cost models account this size instead of the actual
  /// payload size. Used by modeled-kernel simulation runs that ship
  /// token payloads standing in for full-size data.
  std::uint64_t size_override = 0;

  /// cx::ft reliable-delivery header: per-(src,dst) sequence number,
  /// protocol flags, and the peer PE an ack/timer refers to. All unused
  /// (and never inspected) when fault tolerance is disabled.
  std::uint64_t ft_seq = 0;
  std::int32_t ft_peer = -1;
  std::uint8_t ft_flags = 0;

  /// cx::wire aggregation flags (kWireAggBatch / kWireNoAgg /
  /// kWireAggFlush). Zero for ordinary messages; only inspected when
  /// sender-side aggregation is enabled.
  std::uint8_t wire_flags = 0;

  Message() = default;

  /// Duplicate for ft injection/retransmission. Local (by-reference)
  /// payloads are single-owner and never travel those paths — both
  /// backends guard them with `!msg->local` — so the copy drops them.
  Message(const Message& o)
      : handler(o.handler),
        src_pe(o.src_pe),
        dst_pe(o.dst_pe),
        data(o.data),
        local_size(o.local_size),
        size_override(o.size_override),
        ft_seq(o.ft_seq),
        ft_peer(o.ft_peer),
        ft_flags(o.ft_flags),
        wire_flags(o.wire_flags) {}
  Message& operator=(const Message&) = delete;

  ~Message() {
    if (local != nullptr && local_drop != nullptr) local_drop(local);
  }

  /// Take the local payload out (delivery path): the destructor must
  /// not drop what the handler now owns.
  [[nodiscard]] void* take_local() noexcept {
    void* p = local;
    local = nullptr;
    local_drop = nullptr;
    return p;
  }

  [[nodiscard]] std::uint64_t wire_size() const noexcept {
    if (size_override != 0) return size_override;
    return local != nullptr ? local_size : data.size();
  }

  // Pooled storage — every `new Message` / make_unique<Message> in the
  // codebase recycles through the cx::wire block pool.
  static void* operator new(std::size_t sz) { return cx::wire::alloc_msg(sz); }
  static void operator delete(void* p) noexcept {
    cx::wire::free_msg(p, sizeof(Message));
  }
  static void operator delete(void* p, std::size_t sz) noexcept {
    cx::wire::free_msg(p, sz);
  }
};

static_assert(sizeof(Message) <= cx::wire::kMsgBlock,
              "Message must fit the wire pool's message block size");

using MessagePtr = std::unique_ptr<Message>;

}  // namespace cxm
