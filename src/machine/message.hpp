#pragma once
// The unit of communication between PEs.
//
// A message carries a machine-level handler id (the runtime registers a
// small number of handlers: entry-method delivery, reduction fragments,
// migration, ...) plus either a serialized payload (`data`, used for
// cross-PE sends) or an in-process reference payload (`local`, the paper's
// same-process by-reference optimization — no serialization, zero copy).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace cxm {

// cx::ft wire flags (Message::ft_flags). All zero on the fault-free
// fast path; the machine backends only inspect them when fault
// tolerance is enabled in MachineConfig.
inline constexpr std::uint8_t kFtReliable = 1;    ///< carries a seq, wants an ack
inline constexpr std::uint8_t kFtAck = 2;         ///< machine-level ack
inline constexpr std::uint8_t kFtTimer = 4;       ///< internal retransmit timer
inline constexpr std::uint8_t kFtRetransmit = 8;  ///< resent copy

struct Message {
  std::uint32_t handler = 0;  ///< machine handler id (see Machine)
  std::int32_t src_pe = -1;   ///< sending PE (-1 = external / bootstrap)
  std::int32_t dst_pe = 0;    ///< destination PE
  std::vector<std::byte> data;  ///< serialized payload (cross-PE path)

  /// Same-PE reference payload. When non-null, `data` is empty and the
  /// receiver downcasts `local` to the runtime's in-process envelope type.
  std::shared_ptr<void> local;
  std::uint64_t local_size = 0;  ///< nominal size for accounting/cost models

  /// When nonzero, cost models account this size instead of the actual
  /// payload size. Used by modeled-kernel simulation runs that ship
  /// token payloads standing in for full-size data.
  std::uint64_t size_override = 0;

  /// cx::ft reliable-delivery header: per-(src,dst) sequence number,
  /// protocol flags, and the peer PE an ack/timer refers to. All unused
  /// (and never inspected) when fault tolerance is disabled.
  std::uint64_t ft_seq = 0;
  std::int32_t ft_peer = -1;
  std::uint8_t ft_flags = 0;

  [[nodiscard]] std::uint64_t wire_size() const noexcept {
    if (size_override != 0) return size_override;
    return local ? local_size : data.size();
  }
};

using MessagePtr = std::unique_ptr<Message>;

}  // namespace cxm
