#pragma once
// ThreadedMachine — one OS thread per PE, per-PE MPSC mailbox, wall clock.
//
// Fault tolerance (cx::ft): with MachineConfig::faults enabled, cross-PE
// sends pass through a seeded injector (drop/duplicate/delay) and the
// seq+ack reliable-delivery protocol. Sender-side windows and receiver
// dedup state are owned by each PE's thread (sends run on the sender's
// thread; acks are routed back to the sender's mailbox), so the protocol
// needs no extra locks — only the shared injector takes a mutex, and
// only when injection is configured. Retransmit deadlines and delayed
// deliveries are honored by bounding the mailbox cv wait. Scripted
// crash/hang at a virtual time is a SimMachine feature; here PEs die via
// Machine::inject_kill (a crashed PE keeps draining its mailbox but
// discards — and never acks — everything).

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "ft/fault.hpp"
#include "ft/reliable.hpp"
#include "machine/machine.hpp"
#include "wire/agg.hpp"

namespace cxm {

class ThreadedMachine final : public Machine {
 public:
  explicit ThreadedMachine(const MachineConfig& cfg);
  ~ThreadedMachine() override;

  std::uint32_t register_handler(Handler h) override;
  [[nodiscard]] int num_pes() const noexcept override { return num_pes_; }
  [[nodiscard]] int current_pe() const noexcept override;
  void send(MessagePtr msg) override;
  [[nodiscard]] double now() const override;
  void compute(double seconds) override;
  void charge(double seconds) override;
  void run() override;
  void stop() override;
  [[nodiscard]] bool is_simulated() const noexcept override { return false; }

  void send_after(MessagePtr msg, double delay_s) override;
  void inject_kill(int pe) override;
  void inject_hang(int pe) override;
  void declare_failed(int pe, cx::ft::FailureKind kind) override;
  void revive_pe(int pe) override;
  [[nodiscard]] bool pe_failed(int pe) const noexcept override;

 private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<MessagePtr> queue;
    /// Deferred deliveries (send_after, injected delays), keyed by the
    /// absolute machine-time deadline; promoted into `queue` when due.
    std::multimap<double, MessagePtr> delayed;
  };

  /// Per-PE protocol state, touched only by the owning PE's thread.
  struct FtPeState {
    cx::ft::SenderWindow sw;
    cx::ft::ReceiverWindow rw;
  };

  void pe_loop(int pe);
  void enqueue(int dst, MessagePtr msg);
  void enqueue_delayed(int dst, MessagePtr msg, double deadline);
  void retransmit_due(int pe, FtPeState& me);
  void notify_failure_once(int pe, cx::ft::FailureKind kind);

  // ---- sender-side aggregation (--wire-agg) ------------------------------
  // Each PE's aggregator is touched only by its own scheduler thread
  // (sends run on the sender's thread), so no locks are needed. The idle
  // hook lives in pe_loop: a PE never sleeps on its mailbox while it
  // still holds open batches.
  [[nodiscard]] cx::wire::PeAggregator& agg(int pe);
  [[nodiscard]] bool agg_pending(int pe) const noexcept;
  void drain_agg(int pe);

  int num_pes_;
  std::vector<Handler> handlers_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  bool agg_on_ = false;  ///< sampled from cx::wire::agg_enabled() at ctor
  cx::wire::AggConfig agg_cfg_;
  std::vector<std::unique_ptr<cx::wire::PeAggregator>> aggs_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
  double epoch_ = 0.0;

  cx::ft::FaultConfig ft_;
  bool ft_enabled_ = false;
  std::unique_ptr<cx::ft::FaultInjector> inj_;
  std::mutex inj_mutex_;  ///< injector draws come from many PE threads
  std::vector<std::unique_ptr<FtPeState>> ft_pes_;
  /// Liveness flags are always allocated: inject_kill() must work even
  /// without any --ft-* config (e.g. pool tests kill a worker directly).
  std::atomic<bool> any_failed_{false};
  std::vector<std::atomic<bool>> crashed_;
  std::vector<std::atomic<bool>> unreachable_;
  /// A hung PE parks: unlike a crashed PE it does not even drain its
  /// mailbox, so peers see total silence (no acks, no heartbeats).
  std::vector<std::atomic<bool>> hung_;
  std::mutex failure_mutex_;
  std::vector<std::uint8_t> failure_notified_;  ///< guarded by failure_mutex_
};

}  // namespace cxm
