#pragma once
// ThreadedMachine — one OS thread per PE, per-PE MPSC mailbox, wall clock.

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "machine/machine.hpp"

namespace cxm {

class ThreadedMachine final : public Machine {
 public:
  explicit ThreadedMachine(const MachineConfig& cfg);
  ~ThreadedMachine() override;

  std::uint32_t register_handler(Handler h) override;
  [[nodiscard]] int num_pes() const noexcept override { return num_pes_; }
  [[nodiscard]] int current_pe() const noexcept override;
  void send(MessagePtr msg) override;
  [[nodiscard]] double now() const override;
  void compute(double seconds) override;
  void charge(double seconds) override;
  void run() override;
  void stop() override;
  [[nodiscard]] bool is_simulated() const noexcept override { return false; }

 private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<MessagePtr> queue;
  };

  void pe_loop(int pe);

  int num_pes_;
  std::vector<Handler> handlers_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
  double epoch_ = 0.0;
};

}  // namespace cxm
