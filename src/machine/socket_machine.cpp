#include "machine/socket_machine.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/wireup.hpp"
#include "trace/trace.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"
#include "wire/envelope.hpp"

namespace cxm {

namespace {
thread_local int t_current_pe = -1;

// FtDrop trace reasons (slot a) — shared vocabulary with the threaded
// backend's trace stream.
constexpr std::uint64_t kDropInjected = 0;
constexpr std::uint64_t kDropDuplicate = 1;
constexpr std::uint64_t kDropDeadDst = 2;

constexpr std::size_t kReadChunk = 64 * 1024;
/// How long the comm thread keeps flushing after the PE loops exit —
/// long enough for the Stop broadcast and tail acks to reach peers.
constexpr double kDrainGrace = 3.0;
}  // namespace

SocketMachine::SocketMachine(const MachineConfig& cfg)
    : rank_(cfg.socket.rank),
      nranks_(cfg.socket.nranks),
      ppn_(cfg.socket.ppn),
      num_pes_(cfg.socket.nranks * cfg.socket.ppn),
      pe_base_(cfg.socket.rank * cfg.socket.ppn),
      ft_(cfg.faults),
      crashed_(static_cast<std::size_t>(num_pes_)),
      unreachable_(static_cast<std::size_t>(num_pes_)),
      hung_(static_cast<std::size_t>(num_pes_)),
      failure_notified_(static_cast<std::size_t>(num_pes_), 0),
      peers_(static_cast<std::size_t>(nranks_)) {
  if (nranks_ < 1 || ppn_ < 1 || rank_ < 0 || rank_ >= nranks_) {
    throw std::invalid_argument("SocketMachine: bad geometry");
  }
  mailboxes_.reserve(static_cast<std::size_t>(ppn_));
  for (int i = 0; i < ppn_; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  agg_on_ = cx::wire::agg_enabled();
  if (agg_on_) {
    agg_cfg_ = cx::wire::agg_config();
    aggs_.resize(static_cast<std::size_t>(ppn_));
  }
  ft_enabled_ = ft_.enabled();
  if (ft_enabled_) {
    inj_ = std::make_unique<cx::ft::FaultInjector>(ft_);
    ft_pes_.reserve(static_cast<std::size_t>(ppn_));
    for (int i = 0; i < ppn_; ++i) {
      ft_pes_.push_back(std::make_unique<FtPeState>());
    }
  }

  // ---- wireup: rendezvous with the root, then the rank mesh -------------
  cxnet::Handshake hs;
  hs.rank = static_cast<std::uint32_t>(rank_);
  hs.nranks = static_cast<std::uint32_t>(nranks_);
  hs.ppn = static_cast<std::uint32_t>(ppn_);

  if (nranks_ > 1) {
    cxnet::Fd listener = cxnet::tcp_listen(0);
    const std::uint16_t data_port = cxnet::local_port(listener.get());
    const std::vector<cxnet::Endpoint> table = cxnet::client_rendezvous(
        cfg.socket.root_host, cfg.socket.root_port, hs, data_port);
    std::vector<cxnet::Fd> fds =
        cxnet::mesh_wireup(hs, listener.get(), table);
    for (int r = 0; r < nranks_; ++r) {
      if (r == rank_) continue;
      cxnet::set_nonblocking(fds[static_cast<std::size_t>(r)].get());
      peers_[static_cast<std::size_t>(r)].fd =
          std::move(fds[static_cast<std::size_t>(r)]);
    }
  } else if (cfg.socket.root_port != 0) {
    // Single-rank job: still check in with the root so cxrun -np 1 gets
    // its rendezvous accounting (and handshake validation).
    cxnet::Fd listener = cxnet::tcp_listen(0);
    (void)cxnet::client_rendezvous(cfg.socket.root_host, cfg.socket.root_port,
                                   hs, cxnet::local_port(listener.get()));
  }

  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    throw std::runtime_error("SocketMachine: pipe() failed");
  }
  wake_r_ = pipefd[0];
  wake_w_ = pipefd[1];
  cxnet::set_nonblocking(wake_r_);
  cxnet::set_nonblocking(wake_w_);

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) {
    throw std::runtime_error("SocketMachine: epoll_create1 failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_r_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_r_, &ev);
  for (int r = 0; r < nranks_; ++r) {
    if (r == rank_ || !peers_[static_cast<std::size_t>(r)].fd.valid()) {
      continue;
    }
    ev.events = EPOLLIN;
    ev.data.fd = peers_[static_cast<std::size_t>(r)].fd.get();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, ev.data.fd, &ev);
  }
}

SocketMachine::~SocketMachine() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_r_ >= 0) ::close(wake_r_);
  if (wake_w_ >= 0) ::close(wake_w_);
}

std::uint32_t SocketMachine::register_handler(Handler h) {
  if (running_) throw std::logic_error("register_handler after run()");
  handlers_.push_back(std::move(h));
  return static_cast<std::uint32_t>(handlers_.size() - 1);
}

int SocketMachine::current_pe() const noexcept { return t_current_pe; }

double SocketMachine::now() const { return cxu::wall_time() - epoch_; }

void SocketMachine::compute(double seconds) {
  const double end = cxu::wall_time() + seconds;
  while (cxu::wall_time() < end) {
    // busy spin, same load model as the threaded backend
  }
}

void SocketMachine::charge(double) {}

void SocketMachine::enqueue(int dst, MessagePtr msg) {
  Mailbox& mb = *mailboxes_[lidx(dst)];
  {
    std::lock_guard<std::mutex> lock(mb.mutex);
    mb.queue.push_back(std::move(msg));
  }
  mb.cv.notify_one();
}

void SocketMachine::enqueue_delayed(int dst, MessagePtr msg, double deadline) {
  Mailbox& mb = *mailboxes_[lidx(dst)];
  {
    std::lock_guard<std::mutex> lock(mb.mutex);
    mb.delayed.emplace(deadline, std::move(msg));
  }
  mb.cv.notify_one();
}

cx::wire::PeAggregator& SocketMachine::agg(int pe) {
  auto& a = aggs_[lidx(pe)];
  if (!a) a = std::make_unique<cx::wire::PeAggregator>(agg_cfg_);
  return *a;
}

bool SocketMachine::agg_pending(int pe) const noexcept {
  const auto& a = aggs_[lidx(pe)];
  return a != nullptr && a->has_pending();
}

void SocketMachine::drain_agg(int pe) {
  auto& a = agg(pe);
  while (MessagePtr batch = a.next_ready()) send(std::move(batch));
}

void SocketMachine::deliver(MessagePtr msg) {
  const int dst = msg->dst_pe;
  if (is_local(dst)) {
    enqueue(dst, std::move(msg));
    return;
  }
  ship(pe_to_rank(dst), cxnet::encode_frame(*msg));
}

void SocketMachine::send(MessagePtr msg) {
  const int dst = msg->dst_pe;
  if (dst < 0 || dst >= num_pes_) {
    throw std::out_of_range("send: bad destination PE");
  }
  const int src = t_current_pe;
  msg->src_pe = src;
  if (msg->local != nullptr && !is_local(dst)) {
    // The runtime's location layer only takes the by-reference path for
    // same-process destinations; reaching here is a routing bug.
    throw std::logic_error(
        "send: local-payload message addressed to a remote PE");
  }
  if (agg_on_ && src >= 0) {
    auto& a = agg(src);
    if (cx::wire::agg_eligible(*msg, a.config())) {
      CX_TRACE_EVENT(src, now(), cx::trace::EventKind::MsgSend,
                     static_cast<std::uint64_t>(dst), msg->wire_size());
      (void)a.absorb(std::move(msg));
      drain_agg(src);
      return;
    }
    if ((msg->wire_flags & kWireAggBatch) == 0 && dst != src &&
        msg->local == nullptr && a.dst_pending(dst)) {
      a.flush_dst(dst, cx::wire::AggFlush::Ordering);
      drain_agg(src);
    }
  }
  if ((msg->wire_flags & kWireAggBatch) == 0) {
    CX_TRACE_EVENT(src, now(), cx::trace::EventKind::MsgSend,
                   static_cast<std::uint64_t>(dst), msg->wire_size());
  }
  if (src >= 0 && dst != src && msg->local == nullptr) {
    cx::trace::detail::g_wire.transport_msgs.fetch_add(
        1, std::memory_order_relaxed);
  }
  if (ft_enabled_ && src >= 0 && dst != src && !msg->local) {
    FtPeState& me = *ft_pes_[lidx(src)];
    if (ft_.reliable && msg->ft_flags == 0) {
      const std::uint64_t seq = me.sw.allocate(dst);
      msg->ft_seq = seq;
      msg->ft_flags = kFtReliable;
      cx::ft::PendingSend p;
      p.handler = msg->handler;
      p.dst_pe = dst;
      p.data = msg->data;
      p.size_override = msg->size_override;
      p.seq = seq;
      p.wire_flags = msg->wire_flags;
      {
        std::lock_guard<std::mutex> lk(inj_mutex_);
        p.deadline = now() + inj_->retry_timeout(0);
      }
      const double deadline = p.deadline;
      me.sw.pending.emplace(std::make_pair(dst, seq), std::move(p));
      me.sw.arm(dst, seq, deadline);
    }
    if (ft_.injecting()) {
      cx::ft::FaultInjector::Decision d;
      {
        std::lock_guard<std::mutex> lk(inj_mutex_);
        d = inj_->on_wire();
      }
      if (d.drop) {
        CX_TRACE_EVENT(src, now(), cx::trace::EventKind::FtDrop,
                       kDropInjected, msg->ft_seq);
        return;
      }
      if (d.dup) deliver(std::make_unique<Message>(*msg));
      if (d.extra_delay > 0.0 && is_local(dst)) {
        // Remote destinations skip injected latency (see header note).
        enqueue_delayed(dst, std::move(msg), now() + d.extra_delay);
        return;
      }
    }
  }
  deliver(std::move(msg));
}

void SocketMachine::send_after(MessagePtr msg, double delay_s) {
  const int dst = msg->dst_pe;
  if (dst < 0 || dst >= num_pes_) {
    throw std::out_of_range("send_after: bad destination PE");
  }
  if (!is_local(dst)) {
    // Every runtime timer (future deadlines, heartbeat ticks, pool
    // beats) is self-directed; a remote timer has no owner clock.
    throw std::logic_error("send_after: destination PE is remote");
  }
  msg->src_pe = t_current_pe;
  enqueue_delayed(dst, std::move(msg), now() + delay_s);
}

// ---------------------------------------------------------------------------
// Failure control. State changes initiated locally broadcast a control
// frame so every rank's view converges; frames received from peers
// apply locally without rebroadcast.

void SocketMachine::notify_failure_once(int pe, cx::ft::FailureKind kind) {
  {
    std::lock_guard<std::mutex> lk(failure_mutex_);
    if (failure_notified_[static_cast<std::size_t>(pe)]) return;
    failure_notified_[static_cast<std::size_t>(pe)] = 1;
  }
  const double t = now();
  CX_TRACE_EVENT(t_current_pe, t, cx::trace::EventKind::FtFailure,
                 static_cast<std::uint64_t>(pe),
                 static_cast<std::uint64_t>(kind));
  if (failure_listener_) {
    failure_listener_(cx::ft::PeFailure{pe, kind, t});
  }
}

void SocketMachine::apply_kill(int pe) {
  if (pe < 0 || pe >= num_pes_) return;
  if (crashed_[static_cast<std::size_t>(pe)].exchange(
          true, std::memory_order_relaxed)) {
    return;
  }
  any_failed_.store(true, std::memory_order_release);
  if (is_local(pe)) {
    Mailbox& mb = *mailboxes_[lidx(pe)];
    {
      std::lock_guard<std::mutex> lock(mb.mutex);
    }
    mb.cv.notify_all();
  }
  notify_failure_once(pe, cx::ft::FailureKind::Crashed);
}

void SocketMachine::apply_hang(int pe) {
  if (pe < 0 || pe >= num_pes_) return;
  const auto i = static_cast<std::size_t>(pe);
  if (hung_[i].exchange(true, std::memory_order_relaxed)) return;
  any_failed_.store(true, std::memory_order_release);
  if (is_local(pe)) {
    Mailbox& mb = *mailboxes_[lidx(pe)];
    {
      std::lock_guard<std::mutex> lock(mb.mutex);
    }
    mb.cv.notify_all();
  }
  // Silent by design: discovery is the liveness layer's job.
}

void SocketMachine::apply_revive(int pe) {
  if (pe < 0 || pe >= num_pes_) return;
  const auto i = static_cast<std::size_t>(pe);
  if (is_local(pe)) {
    Mailbox& mb = *mailboxes_[lidx(pe)];
    std::lock_guard<std::mutex> lock(mb.mutex);
    mb.queue.clear();
    mb.delayed.clear();
    crashed_[i].store(false, std::memory_order_relaxed);
    unreachable_[i].store(false, std::memory_order_relaxed);
    hung_[i].store(false, std::memory_order_relaxed);
    mb.cv.notify_all();
  } else {
    crashed_[i].store(false, std::memory_order_relaxed);
    unreachable_[i].store(false, std::memory_order_relaxed);
    hung_[i].store(false, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lk(failure_mutex_);
  failure_notified_[i] = 0;
}

void SocketMachine::inject_kill(int pe) {
  broadcast_control(cxnet::ControlOp::Kill, pe);
  apply_kill(pe);
}

void SocketMachine::inject_hang(int pe) {
  broadcast_control(cxnet::ControlOp::Hang, pe);
  apply_hang(pe);
}

void SocketMachine::revive_pe(int pe) {
  broadcast_control(cxnet::ControlOp::Revive, pe);
  apply_revive(pe);
}

void SocketMachine::declare_failed(int pe, cx::ft::FailureKind kind) {
  // Declared on external evidence (heartbeat silence): every rank's
  // liveness layer reaches its own verdict, so no broadcast — the
  // runtime's ft_notice round spreads the news at the protocol layer.
  if (pe < 0 || pe >= num_pes_) return;
  const auto i = static_cast<std::size_t>(pe);
  any_failed_.store(true, std::memory_order_release);
  if (kind == cx::ft::FailureKind::Crashed) {
    crashed_[i].store(true, std::memory_order_relaxed);
  } else if (!hung_[i].load(std::memory_order_relaxed)) {
    unreachable_[i].store(true, std::memory_order_relaxed);
  }
  if (is_local(pe)) {
    Mailbox& mb = *mailboxes_[lidx(pe)];
    {
      std::lock_guard<std::mutex> lock(mb.mutex);
    }
    mb.cv.notify_all();
  }
  notify_failure_once(pe, kind);
}

bool SocketMachine::pe_failed(int pe) const noexcept {
  if (pe < 0 || pe >= num_pes_) return false;
  const auto i = static_cast<std::size_t>(pe);
  return crashed_[i].load(std::memory_order_relaxed) ||
         unreachable_[i].load(std::memory_order_relaxed) ||
         hung_[i].load(std::memory_order_relaxed);
}

void SocketMachine::stop() { request_stop(true); }

void SocketMachine::request_stop(bool broadcast) {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  if (broadcast) broadcast_control(cxnet::ControlOp::Stop, -1);
  for (auto& mb : mailboxes_) {
    std::lock_guard<std::mutex> lock(mb->mutex);
    mb->cv.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Comm thread: one epoll loop over the peer sockets + the wake pipe.

void SocketMachine::ship(int rank, std::vector<std::byte> frame) {
  {
    std::lock_guard<std::mutex> lock(out_mutex_);
    Peer& p = peers_[static_cast<std::size_t>(rank)];
    if (p.down || !p.fd.valid()) return;  // dead rank: drop, ft recovers
    p.outq.push_back(std::move(frame));
  }
  wake_comm();
}

void SocketMachine::wake_comm() {
  const char b = 1;
  [[maybe_unused]] const ssize_t rc = ::write(wake_w_, &b, 1);
  // EAGAIN means the pipe already holds a wake byte — good enough.
}

void SocketMachine::broadcast_control(cxnet::ControlOp op, int pe) {
  for (int r = 0; r < nranks_; ++r) {
    if (r == rank_) continue;
    ship(r, cxnet::encode_control(op, pe, t_current_pe));
  }
}

bool SocketMachine::all_out_drained() {
  std::lock_guard<std::mutex> lock(out_mutex_);
  for (const Peer& p : peers_) {
    if (!p.down && !p.outq.empty()) return false;
  }
  return true;
}

bool SocketMachine::flush_peer(int rank) {
  Peer& p = peers_[static_cast<std::size_t>(rank)];
  if (!p.fd.valid()) return true;
  for (;;) {
    std::vector<std::byte>* front = nullptr;
    {
      std::lock_guard<std::mutex> lock(out_mutex_);
      if (p.down) return true;
      if (p.outq.empty()) break;
      front = &p.outq.front();
    }
    // Only the comm thread pops, so `front` stays valid unlocked.
    const std::size_t left = front->size() - p.out_off;
    const ssize_t w = ::send(p.fd.get(), front->data() + p.out_off, left,
                             MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!p.want_write) {
          epoll_event ev{};
          ev.events = EPOLLIN | EPOLLOUT;
          ev.data.fd = p.fd.get();
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, p.fd.get(), &ev);
          p.want_write = true;
        }
        return true;
      }
      peer_down(rank, std::string("send failed: ") + std::strerror(errno));
      return false;
    }
    p.out_off += static_cast<std::size_t>(w);
    if (p.out_off == front->size()) {
      p.out_off = 0;
      std::lock_guard<std::mutex> lock(out_mutex_);
      p.outq.pop_front();
    }
  }
  if (p.want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = p.fd.get();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, p.fd.get(), &ev);
    p.want_write = false;
  }
  return true;
}

void SocketMachine::handle_frame(int rank, const cxnet::Frame& f) {
  if (f.kind == cxnet::FrameKind::Control) {
    switch (static_cast<cxnet::ControlOp>(f.handler)) {
      case cxnet::ControlOp::Stop:
        request_stop(false);
        return;
      case cxnet::ControlOp::Kill:
        apply_kill(f.dst_pe);
        return;
      case cxnet::ControlOp::Hang:
        apply_hang(f.dst_pe);
        return;
      case cxnet::ControlOp::Revive:
        apply_revive(f.dst_pe);
        return;
    }
    CX_LOG_ERROR("rank ", rank, " sent unknown control opcode ", f.handler);
    return;
  }
  if (!is_local(f.dst_pe)) {
    CX_LOG_ERROR("rank ", rank, " misrouted a frame for PE ", f.dst_pe);
    return;
  }
  enqueue(f.dst_pe, cxnet::frame_to_message(f));
}

void SocketMachine::peer_down(int rank, const std::string& why) {
  {
    std::lock_guard<std::mutex> lock(out_mutex_);
    Peer& p = peers_[static_cast<std::size_t>(rank)];
    if (p.down) return;
    p.down = true;
    p.outq.clear();
  }
  Peer& p = peers_[static_cast<std::size_t>(rank)];
  if (p.fd.valid()) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, p.fd.get(), nullptr);
    p.fd.reset();
  }
  if (stop_.load(std::memory_order_acquire)) return;  // orderly shutdown
  CX_LOG_WARN("connection to rank ", rank, " lost (", why,
              "): declaring its PEs failed");
  // The whole process is gone: every PE it hosted crashed at once. This
  // feeds the same pipeline as heartbeat declaration, so the runtime's
  // recovery machinery runs unchanged.
  for (int pe = rank * ppn_; pe < (rank + 1) * ppn_; ++pe) {
    if (crashed_[static_cast<std::size_t>(pe)].exchange(
            true, std::memory_order_relaxed)) {
      continue;
    }
    any_failed_.store(true, std::memory_order_release);
    notify_failure_once(pe, cx::ft::FailureKind::Crashed);
  }
}

void SocketMachine::comm_loop() {
  cxu::set_log_pe(-1);
  double drain_deadline = -1.0;
  epoll_event events[64];
  std::byte buf[kReadChunk];
  for (;;) {
    // Push pending output first: PE threads only queue + wake.
    for (int r = 0; r < nranks_; ++r) {
      if (r != rank_) (void)flush_peer(r);
    }
    if (comm_stop_.load(std::memory_order_acquire)) {
      if (drain_deadline < 0.0) drain_deadline = now() + kDrainGrace;
      if (all_out_drained() || now() > drain_deadline) break;
    }
    const int n = ::epoll_wait(epoll_fd_, events, 64,
                               comm_stop_.load(std::memory_order_acquire)
                                   ? 20
                                   : 200);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_r_) {
        char drain[256];
        while (::read(wake_r_, drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      int rank = -1;
      for (int r = 0; r < nranks_; ++r) {
        if (r != rank_ && peers_[static_cast<std::size_t>(r)].fd.valid() &&
            peers_[static_cast<std::size_t>(r)].fd.get() == fd) {
          rank = r;
          break;
        }
      }
      if (rank < 0) continue;  // raced with peer_down
      Peer& p = peers_[static_cast<std::size_t>(rank)];
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (events[i].events & EPOLLIN) == 0) {
        peer_down(rank, "socket error/hangup");
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        if (!flush_peer(rank)) continue;
      }
      if ((events[i].events & EPOLLIN) == 0) continue;
      bool dead = false;
      for (;;) {
        const ssize_t r = ::recv(p.fd.get(), buf, sizeof(buf), 0);
        if (r > 0) {
          p.reader.feed(buf, static_cast<std::size_t>(r));
          cxnet::Frame f;
          for (;;) {
            const auto st = p.reader.next(f);
            if (st == cxnet::FrameReader::Status::Frame) {
              handle_frame(rank, f);
              continue;
            }
            if (st == cxnet::FrameReader::Status::Error) {
              peer_down(rank, "protocol violation: " + p.reader.error());
              dead = true;
            }
            break;
          }
          if (dead) break;
          if (r < static_cast<ssize_t>(sizeof(buf))) break;
          continue;
        }
        if (r == 0) {
          peer_down(rank, "connection closed by peer");
          dead = true;
          break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        peer_down(rank, std::string("recv failed: ") + std::strerror(errno));
        dead = true;
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Scheduler loops (mirrors ThreadedMachine::pe_loop, with global-PE
// failure flags and the remote path handled by send()/deliver()).

void SocketMachine::retransmit_due(int pe, FtPeState& me) {
  const double tnow = now();
  for (;;) {
    me.sw.prune_due();
    if (me.sw.due.empty()) return;
    const cx::ft::SenderWindow::DueEntry e = me.sw.due.top();
    const auto di = static_cast<std::size_t>(e.dst);
    if (crashed_[di].load(std::memory_order_relaxed) ||
        unreachable_[di].load(std::memory_order_relaxed)) {
      me.sw.due.pop();
      me.sw.abandon(e.dst);
      continue;
    }
    if (e.deadline > tnow) return;
    me.sw.due.pop();
    auto it = me.sw.pending.find({e.dst, e.seq});
    if (it == me.sw.pending.end()) continue;
    cx::ft::PendingSend& p = it->second;
    if (p.attempts >= ft_.retry.max_attempts) {
      unreachable_[di].store(true, std::memory_order_relaxed);
      any_failed_.store(true, std::memory_order_release);
      me.sw.abandon(e.dst);
      notify_failure_once(e.dst, cx::ft::FailureKind::Unreachable);
      continue;
    }
    p.attempts++;
    CX_TRACE_EVENT(pe, tnow, cx::trace::EventKind::FtRetransmit,
                   static_cast<std::uint64_t>(e.dst),
                   static_cast<std::uint64_t>(p.attempts));
    {
      std::lock_guard<std::mutex> lk(inj_mutex_);
      p.deadline = tnow + inj_->retry_timeout(p.attempts);
    }
    me.sw.arm(e.dst, e.seq, p.deadline);
    auto copy = cx::wire::clone_payload(p.handler, p.dst_pe, p.data);
    copy->size_override = p.size_override;
    copy->ft_seq = p.seq;
    copy->ft_flags = kFtReliable | kFtRetransmit;
    copy->wire_flags = p.wire_flags;
    send(std::move(copy));
  }
}

void SocketMachine::run() {
  running_ = true;
  stop_.store(false, std::memory_order_relaxed);
  comm_stop_.store(false, std::memory_order_relaxed);
  epoch_ = cxu::wall_time();
  comm_thread_ = std::thread([this] { comm_loop(); });
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ppn_));
  for (int i = 0; i < ppn_; ++i) {
    const int pe = pe_base_ + i;
    threads.emplace_back([this, pe] { pe_loop(pe); });
  }
  for (auto& t : threads) t.join();
  comm_stop_.store(true, std::memory_order_release);
  wake_comm();
  comm_thread_.join();
  running_ = false;
}

void SocketMachine::pe_loop(int pe) {
  t_current_pe = pe;
  cxu::set_log_pe(pe);
  Mailbox& mb = *mailboxes_[lidx(pe)];
  FtPeState* me = ft_enabled_ ? ft_pes_[lidx(pe)].get() : nullptr;
  constexpr double kNever = cx::ft::SenderWindow::kNever;
  while (true) {
    MessagePtr msg;
    bool stopping = false;
    bool flush_idle = false;
    double idle_s = -1.0;
    {
      std::unique_lock<std::mutex> lock(mb.mutex);
      for (;;) {
        if (any_failed_.load(std::memory_order_relaxed) &&
            hung_[static_cast<std::size_t>(pe)].load(
                std::memory_order_relaxed)) {
          if (me && !me->sw.pending.empty()) {
            me->sw.pending.clear();
            while (!me->sw.due.empty()) me->sw.due.pop();
          }
          if (agg_on_ && aggs_[lidx(pe)]) {
            aggs_[lidx(pe)].reset();
          }
          if (stop_.load(std::memory_order_acquire)) {
            stopping = true;
            break;
          }
          mb.cv.wait(lock);
          continue;
        }
        const double tnow = now();
        while (!mb.delayed.empty() && mb.delayed.begin()->first <= tnow) {
          mb.queue.push_back(std::move(mb.delayed.begin()->second));
          mb.delayed.erase(mb.delayed.begin());
        }
        if (!mb.queue.empty()) break;
        if (stop_.load(std::memory_order_acquire)) {
          stopping = true;
          break;
        }
        if (agg_on_ && agg_pending(pe)) {
          flush_idle = true;
          break;
        }
        double dl = mb.delayed.empty() ? kNever : mb.delayed.begin()->first;
        if (me) dl = std::min(dl, me->sw.next_deadline());
        if (dl <= tnow) break;
        const double t0 = cxu::wall_time();
        if (dl >= kNever) {
          mb.cv.wait(lock);
        } else {
          mb.cv.wait_for(lock, std::chrono::duration<double>(dl - tnow));
        }
        const double waited = cxu::wall_time() - t0;
        idle_s = (idle_s < 0.0 ? 0.0 : idle_s) + waited;
      }
      if (!mb.queue.empty()) {
        msg = std::move(mb.queue.front());
        mb.queue.pop_front();
      }
    }
    if (idle_s >= 0.0) {
      CX_TRACE_EVENT(pe, now(), cx::trace::EventKind::Idle,
                     static_cast<std::uint64_t>(idle_s * 1e9), 0);
    }
    if (me && !me->sw.pending.empty()) retransmit_due(pe, *me);
    if (!msg) {
      if (stopping) break;
      if (flush_idle) {
        if (any_failed_.load(std::memory_order_relaxed) &&
            crashed_[static_cast<std::size_t>(pe)].load(
                std::memory_order_relaxed)) {
          aggs_[lidx(pe)].reset();
        } else {
          agg(pe).flush_all(cx::wire::AggFlush::Idle);
          drain_agg(pe);
        }
      }
      continue;
    }
    if (any_failed_.load(std::memory_order_relaxed) &&
        crashed_[static_cast<std::size_t>(pe)].load(
            std::memory_order_relaxed)) {
      CX_TRACE_EVENT(pe, now(), cx::trace::EventKind::FtDrop, kDropDeadDst,
                     msg->ft_seq);
      continue;
    }
    if (me && msg->ft_flags != 0) {
      if (msg->ft_flags & kFtAck) {
        me->sw.acked(msg->src_pe, msg->ft_seq);
        continue;
      }
      if (msg->ft_flags & kFtReliable) {
        auto ack = std::make_unique<Message>();
        ack->dst_pe = msg->src_pe;
        ack->ft_seq = msg->ft_seq;
        ack->ft_peer = pe;
        ack->ft_flags = kFtAck;
        CX_TRACE_EVENT(pe, now(), cx::trace::EventKind::FtAck,
                       static_cast<std::uint64_t>(msg->src_pe), msg->ft_seq);
        send(std::move(ack));
        if (!me->rw.first_delivery(msg->src_pe, msg->ft_seq)) {
          CX_TRACE_EVENT(pe, now(), cx::trace::EventKind::FtDrop,
                         kDropDuplicate, msg->ft_seq);
          continue;
        }
      }
    }
    if (agg_on_ && (msg->wire_flags & kWireAggBatch) != 0) {
      const auto src64 = static_cast<std::uint64_t>(
          static_cast<std::uint32_t>(msg->src_pe));
      const bool ok = cx::wire::for_each_agg_record(
          msg->data,
          [&](std::uint32_t h, const std::byte* p, std::uint32_t len) {
            if (h >= handlers_.size()) {
              CX_LOG_ERROR("dropping batched message with unknown handler ",
                           h);
              return;
            }
            auto sub = std::make_unique<Message>();
            sub->handler = h;
            sub->src_pe = msg->src_pe;
            sub->dst_pe = pe;
            sub->data.assign(p, len);
            CX_TRACE_EVENT(pe, now(), cx::trace::EventKind::MsgRecv, src64,
                           len);
            handlers_[h](std::move(sub));
          });
      if (!ok) CX_LOG_ERROR("dropping malformed aggregation batch");
      if (stop_.load(std::memory_order_acquire)) break;
      continue;
    }
    const std::uint32_t h = msg->handler;
    if (h >= handlers_.size()) {
      CX_LOG_ERROR("dropping message with unknown handler ", h);
      continue;
    }
    CX_TRACE_EVENT(pe, now(), cx::trace::EventKind::MsgRecv,
                   static_cast<std::uint32_t>(msg->src_pe),
                   msg->wire_size());
    handlers_[h](std::move(msg));
    if (stop_.load(std::memory_order_acquire)) break;
  }
  t_current_pe = -1;
  cxu::set_log_pe(-1);
}

}  // namespace cxm
