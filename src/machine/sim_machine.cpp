#include "machine/sim_machine.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "trace/trace.hpp"
#include "util/log.hpp"
#include "wire/envelope.hpp"

namespace cxm {

namespace {
// FtDrop trace reasons (slot a).
constexpr std::uint64_t kDropInjected = 0;
constexpr std::uint64_t kDropDuplicate = 1;
constexpr std::uint64_t kDropDeadDst = 2;
}  // namespace

SimMachine::SimMachine(const MachineConfig& cfg)
    : num_pes_(cfg.num_pes),
      clock_(static_cast<std::size_t>(cfg.num_pes), 0.0),
      net_(make_network(cfg.network, cfg.net, cfg.num_pes)),
      ft_(cfg.faults) {
  if (num_pes_ < 1) throw std::invalid_argument("num_pes must be >= 1");
  fifo_ = std::getenv("CHARMX_SIM_FIFO") != nullptr;
  agg_on_ = cx::wire::agg_enabled();
  if (agg_on_) {
    agg_cfg_ = cx::wire::agg_config();
    aggs_.resize(static_cast<std::size_t>(cfg.num_pes));
    // Batches and the bypass-flush rule assume in-order channels.
    fifo_ = true;
  }
  ft_enabled_ = ft_.enabled();
  if (ft_enabled_) {
    inj_ = std::make_unique<cx::ft::FaultInjector>(ft_);
    script_ = ft_.full_script();
  }
  // Failure bookkeeping is always sized: inject_kill() must work even
  // without any --ft-* config (e.g. the pool kills a worker directly).
  const auto n = static_cast<std::size_t>(num_pes_);
  senders_.resize(n);
  receivers_.resize(n);
  crashed_.assign(n, 0);
  hung_.assign(n, 0);
  unreachable_.assign(n, 0);
  failure_notified_.assign(n, 0);
  parked_.resize(n);
}

SimMachine::~SimMachine() {
  while (!heap_.empty()) {
    delete heap_.top().msg;
    heap_.pop();
  }
  for (auto& q : parked_) {
    for (Message* m : q) delete m;
  }
}

std::uint32_t SimMachine::register_handler(Handler h) {
  if (running_) throw std::logic_error("register_handler after run()");
  handlers_.push_back(std::move(h));
  return static_cast<std::uint32_t>(handlers_.size() - 1);
}

void SimMachine::push_timer(int pe, int dst, std::uint64_t seq, double at) {
  auto* m = new Message();
  m->dst_pe = pe;  // the timer fires on the sending PE
  m->src_pe = pe;
  m->ft_peer = dst;
  m->ft_seq = seq;
  m->ft_flags = kFtTimer;
  heap_.push(Event{at, seq_++, m});
}

cx::wire::PeAggregator& SimMachine::agg(int pe) {
  auto& a = aggs_[static_cast<std::size_t>(pe)];
  if (!a) a = std::make_unique<cx::wire::PeAggregator>(agg_cfg_);
  return *a;
}

void SimMachine::push_agg_flush(int pe, int dst, std::uint64_t gen,
                                double at) {
  auto* m = new Message();
  m->dst_pe = pe;  // fires on the sending PE, like an ft timer
  m->src_pe = pe;
  m->ft_peer = dst;
  m->ft_seq = gen;
  m->wire_flags = kWireAggFlush;
  heap_.push(Event{at, seq_++, m});
}

void SimMachine::drain_agg(int pe) {
  auto& a = agg(pe);
  while (MessagePtr batch = a.next_ready()) send(std::move(batch));
}

void SimMachine::send(MessagePtr msg) {
  const int dst = msg->dst_pe;
  if (dst < 0 || dst >= num_pes_) {
    throw std::out_of_range("send: bad destination PE");
  }
  const int src = current_pe_;
  msg->src_pe = src;
  if (agg_on_ && src >= 0) {
    auto& a = agg(src);
    if (cx::wire::agg_eligible(*msg, a.config())) {
      // Absorbed: the logical MsgSend happens now at a fraction of the
      // per-message cost; the batch pays the full hand-off once.
      auto& clk = clock_[static_cast<std::size_t>(src)];
      clk += net_->agg_overhead();
      CX_TRACE_EVENT(src, clk, cx::trace::EventKind::MsgSend,
                     static_cast<std::uint64_t>(dst), msg->wire_size());
      const bool arm = a.absorb(std::move(msg));
      if (arm) {
        push_agg_flush(src, dst, a.generation(dst),
                       clk + a.config().flush_delay_s);
      }
      drain_agg(src);
      return;
    }
    // Bypassing message (protocol, oversized, local, ...) headed to a
    // destination with an open batch: seal the batch first so it stays
    // ahead on the in-order channel.
    if ((msg->wire_flags & kWireAggBatch) == 0 && dst != src &&
        msg->local == nullptr && a.dst_pending(dst)) {
      a.flush_dst(dst, cx::wire::AggFlush::Ordering);
      drain_agg(src);
    }
  }
  double arrival = 0.0;
  if (src >= 0) {
    // Sender-side software overhead is CPU time on the sending PE.
    clock_[static_cast<std::size_t>(src)] += net_->cpu_overhead();
    arrival = clock_[static_cast<std::size_t>(src)] +
              net_->delay(src, dst, msg->wire_size());
    if ((msg->wire_flags & kWireAggBatch) == 0) {
      CX_TRACE_EVENT(src, clock_[static_cast<std::size_t>(src)],
                     cx::trace::EventKind::MsgSend,
                     static_cast<std::uint64_t>(dst), msg->wire_size());
    }
    if (dst != src && msg->local == nullptr) {
      cx::trace::detail::g_wire.transport_msgs.fetch_add(
          1, std::memory_order_relaxed);
    }
  }
  if (ft_enabled_ && src >= 0 && dst != src && !msg->local) {
    const double send_time = clock_[static_cast<std::size_t>(src)];
    if (ft_.reliable && msg->ft_flags == 0) {
      const std::uint64_t seq =
          senders_[static_cast<std::size_t>(src)].allocate(dst);
      msg->ft_seq = seq;
      msg->ft_flags = kFtReliable;
      cx::ft::PendingSend p;
      p.handler = msg->handler;
      p.dst_pe = dst;
      p.data = msg->data;
      p.size_override = msg->size_override;
      p.seq = seq;
      p.wire_flags = msg->wire_flags;  // a resent batch is still a batch
      p.deadline = send_time + inj_->retry_timeout(0);
      const double deadline = p.deadline;
      senders_[static_cast<std::size_t>(src)].pending.emplace(
          std::make_pair(dst, seq), std::move(p));
      push_timer(src, dst, seq, deadline);
    }
    if (ft_.injecting()) {
      const auto d = inj_->on_wire();
      if (d.drop) {
        CX_TRACE_EVENT(src, send_time, cx::trace::EventKind::FtDrop,
                       kDropInjected, msg->ft_seq);
        return;  // lost on the wire; the pending copy recovers it
      }
      arrival += d.extra_delay;
      if (d.dup) {
        heap_.push(Event{arrival, seq_++, new Message(*msg)});
      }
    }
  }
  if (fifo_) {
    auto& last = last_arrival_[{src, dst}];
    arrival = std::max(arrival, last);
    last = arrival;
  }
  heap_.push(Event{arrival, seq_++, msg.release()});
}

void SimMachine::send_after(MessagePtr msg, double delay_s) {
  const int dst = msg->dst_pe;
  if (dst < 0 || dst >= num_pes_) {
    throw std::out_of_range("send_after: bad destination PE");
  }
  const int src = current_pe_;
  msg->src_pe = src;
  const double base = src >= 0 ? clock_[static_cast<std::size_t>(src)] : 0.0;
  // A timer delivery, not a network message: no overhead, no cost model,
  // no fault injection.
  heap_.push(Event{base + delay_s, seq_++, msg.release()});
}

double SimMachine::now() const {
  if (current_pe_ < 0) return 0.0;
  return clock_[static_cast<std::size_t>(current_pe_)];
}

void SimMachine::charge(double seconds) {
  if (current_pe_ >= 0) {
    clock_[static_cast<std::size_t>(current_pe_)] += seconds;
  }
}

void SimMachine::fail_pe(int pe, cx::ft::FailureKind kind, double time) {
  const auto i = static_cast<std::size_t>(pe);
  if (failure_notified_[i]) return;
  failure_notified_[i] = 1;
  CX_TRACE_EVENT(pe, time, cx::trace::EventKind::FtFailure,
                 static_cast<std::uint64_t>(pe),
                 static_cast<std::uint64_t>(kind));
  if (failure_listener_) {
    failure_listener_(cx::ft::PeFailure{pe, kind, time});
  }
}

void SimMachine::check_scripted(double time) {
  while (next_script_ < script_.size() && time >= script_[next_script_].at) {
    const cx::ft::ScriptedFault& f = script_[next_script_++];
    if (f.pe < 0 || f.pe >= num_pes_) continue;
    const auto i = static_cast<std::size_t>(f.pe);
    if (crashed_[i] != 0 || hung_[i] != 0) continue;  // already down
    any_failed_ = true;
    // The PE died/froze: its unacked sends die with it (a hung
    // scheduler fires no retransmit timers either).
    senders_[i].pending.clear();
    if (f.kind == cx::ft::FailureKind::Crashed) {
      crashed_[i] = 1;
      fail_pe(f.pe, cx::ft::FailureKind::Crashed, f.at);
    } else {
      hung_[i] = 1;
      // No notification: a hang is only *detected* — by peers'
      // retransmits giving up or the heartbeat detector.
    }
  }
}

void SimMachine::inject_kill(int pe) {
  if (pe < 0 || pe >= num_pes_) return;
  any_failed_ = true;
  const auto i = static_cast<std::size_t>(pe);
  if (crashed_[i]) return;
  crashed_[i] = 1;
  senders_[i].pending.clear();
  fail_pe(pe, cx::ft::FailureKind::Crashed,
          current_pe_ >= 0 ? clock_[static_cast<std::size_t>(current_pe_)]
                           : 0.0);
}

void SimMachine::inject_hang(int pe) {
  if (pe < 0 || pe >= num_pes_) return;
  const auto i = static_cast<std::size_t>(pe);
  if (crashed_[i] != 0 || hung_[i] != 0) return;
  any_failed_ = true;
  hung_[i] = 1;
  senders_[i].pending.clear();
  // Silent by design: peers must discover the hang themselves.
}

void SimMachine::declare_failed(int pe, cx::ft::FailureKind kind) {
  if (pe < 0 || pe >= num_pes_) return;
  const auto i = static_cast<std::size_t>(pe);
  any_failed_ = true;
  if (kind == cx::ft::FailureKind::Crashed) {
    crashed_[i] = 1;
  } else if (hung_[i] == 0) {
    unreachable_[i] = 1;
  }
  senders_[i].pending.clear();
  // Every peer stops (re)sending to the declared-dead PE immediately.
  for (auto& sw : senders_) sw.abandon(pe);
  fail_pe(pe, kind,
          current_pe_ >= 0 ? clock_[static_cast<std::size_t>(current_pe_)]
                           : 0.0);
}

void SimMachine::revive_pe(int pe) {
  if (pe < 0 || pe >= num_pes_) return;
  const auto i = static_cast<std::size_t>(pe);
  crashed_[i] = 0;
  hung_[i] = 0;
  unreachable_[i] = 0;
  failure_notified_[i] = 0;
  for (Message* m : parked_[i]) delete m;
  parked_[i].clear();
  // Peers stop retrying the old traffic: the restore path rebuilds
  // application state, so pre-failure messages must not resurface.
  for (auto& sw : senders_) sw.abandon(pe);
  // Discard half-open batches from before the failure for the same
  // reason (the aggregator recreates lazily on the next send).
  if (agg_on_) aggs_[i].reset();
}

bool SimMachine::pe_failed(int pe) const noexcept {
  if (pe < 0 || pe >= num_pes_) return false;
  const auto i = static_cast<std::size_t>(pe);
  return crashed_[i] != 0 || hung_[i] != 0 || unreachable_[i] != 0;
}

void SimMachine::handle_timer(int pe, const Message& msg, double time) {
  const auto i = static_cast<std::size_t>(pe);
  if (crashed_[i] != 0 || hung_[i] != 0) return;  // dead PEs fire nothing
  const int dst = msg.ft_peer;
  auto it = senders_[i].pending.find({dst, msg.ft_seq});
  if (it == senders_[i].pending.end()) return;  // already acked: stale timer
  auto& clk = clock_[i];
  if (time > clk) clk = time;
  current_pe_ = pe;
  cx::ft::PendingSend& p = it->second;
  if (p.attempts >= ft_.retry.max_attempts) {
    // Give up: declare the destination unreachable and stop all traffic
    // to it, surfacing a typed failure instead of retrying forever.
    senders_[i].abandon(dst);
    if (dst >= 0 && dst < num_pes_) {
      unreachable_[static_cast<std::size_t>(dst)] = 1;
      fail_pe(dst, cx::ft::FailureKind::Unreachable, clk);
    }
    return;
  }
  p.attempts++;
  CX_TRACE_EVENT(pe, clk, cx::trace::EventKind::FtRetransmit,
                 static_cast<std::uint64_t>(dst),
                 static_cast<std::uint64_t>(p.attempts));
  auto copy = cx::wire::clone_payload(p.handler, p.dst_pe, p.data);
  copy->size_override = p.size_override;
  copy->ft_seq = p.seq;
  copy->ft_flags = kFtReliable | kFtRetransmit;
  copy->wire_flags = p.wire_flags;
  p.deadline = clk + inj_->retry_timeout(p.attempts);
  push_timer(pe, dst, p.seq, p.deadline);
  send(std::move(copy));
}

void SimMachine::run() {
  running_ = true;
  stop_ = false;
  while (!stop_ && !heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    MessagePtr msg(ev.msg);
    const int pe = msg->dst_pe;
    if (ft_enabled_ || any_failed_) {
      if (next_script_ < script_.size()) check_scripted(ev.time);
      if (msg->ft_flags & kFtTimer) {
        handle_timer(pe, *msg, ev.time);
        continue;
      }
      const auto i = static_cast<std::size_t>(pe);
      if (crashed_[i] != 0) {
        CX_TRACE_EVENT(pe, ev.time, cx::trace::EventKind::FtDrop,
                       kDropDeadDst, msg->ft_seq);
        continue;
      }
      if (hung_[i] != 0) {
        parked_[i].push_back(msg.release());
        continue;
      }
    }
    auto& clk = clock_[static_cast<std::size_t>(pe)];
    if (ev.time > clk) {
      // The PE's virtual clock jumps forward to the arrival: that gap is
      // scheduler idle time in the simulated timeline.
      CX_TRACE_EVENT(pe, ev.time, cx::trace::EventKind::Idle,
                     static_cast<std::uint64_t>((ev.time - clk) * 1e9), 0);
      clk = ev.time;
    }
    if (agg_on_ && (msg->wire_flags & kWireAggFlush) != 0) {
      // Deterministic idle-equivalent flush on the sending PE. No
      // cpu_overhead charge: the sealed batch pays it in send().
      current_pe_ = pe;
      cxu::set_log_pe(pe);
      agg(pe).flush_timer(msg->ft_peer, msg->ft_seq);
      drain_agg(pe);
      ++events_processed_;
      continue;
    }
    clk += net_->cpu_overhead();  // receiver-side software overhead
    current_pe_ = pe;
    cxu::set_log_pe(pe);
    if (ft_enabled_ && msg->ft_flags != 0) {
      if (msg->ft_flags & kFtAck) {
        senders_[static_cast<std::size_t>(pe)].acked(msg->src_pe,
                                                     msg->ft_seq);
        ++events_processed_;
        continue;
      }
      if (msg->ft_flags & kFtReliable) {
        // Always ack — even duplicates, since the original ack may have
        // been lost on the wire.
        auto ack = std::make_unique<Message>();
        ack->dst_pe = msg->src_pe;
        ack->ft_seq = msg->ft_seq;
        ack->ft_peer = pe;
        ack->ft_flags = kFtAck;
        CX_TRACE_EVENT(pe, clk, cx::trace::EventKind::FtAck,
                       static_cast<std::uint64_t>(msg->src_pe), msg->ft_seq);
        send(std::move(ack));
        if (!receivers_[static_cast<std::size_t>(pe)].first_delivery(
                msg->src_pe, msg->ft_seq)) {
          CX_TRACE_EVENT(pe, clk, cx::trace::EventKind::FtDrop,
                         kDropDuplicate, msg->ft_seq);
          continue;
        }
      }
    }
    if (agg_on_ && (msg->wire_flags & kWireAggBatch) != 0) {
      // Unpack the batch into the normal delivery path, in append order.
      const auto src64 = static_cast<std::uint64_t>(
          static_cast<std::uint32_t>(msg->src_pe));
      const bool ok = cx::wire::for_each_agg_record(
          msg->data,
          [&](std::uint32_t h, const std::byte* p, std::uint32_t len) {
            clk += net_->agg_overhead();
            if (h >= handlers_.size()) {
              CX_LOG_ERROR("dropping batched message with unknown handler ",
                           h);
              return;
            }
            auto sub = std::make_unique<Message>();
            sub->handler = h;
            sub->src_pe = msg->src_pe;
            sub->dst_pe = pe;
            sub->data.assign(p, len);
            CX_TRACE_EVENT(pe, clk, cx::trace::EventKind::MsgRecv, src64,
                           len);
            handlers_[h](std::move(sub));
          });
      if (!ok) CX_LOG_ERROR("dropping malformed aggregation batch");
      ++events_processed_;
      continue;
    }
    const std::uint32_t h = msg->handler;
    if (h >= handlers_.size()) {
      CX_LOG_ERROR("dropping message with unknown handler ", h);
      continue;
    }
    CX_TRACE_EVENT(pe, clk, cx::trace::EventKind::MsgRecv,
                   static_cast<std::uint32_t>(msg->src_pe),
                   msg->wire_size());
    handlers_[h](std::move(msg));
    ++events_processed_;
  }
  current_pe_ = -1;
  cxu::set_log_pe(-1);
  running_ = false;
}

double SimMachine::makespan() const {
  return *std::max_element(clock_.begin(), clock_.end());
}

}  // namespace cxm
