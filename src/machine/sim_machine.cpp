#include "machine/sim_machine.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "trace/trace.hpp"
#include "util/log.hpp"

namespace cxm {

SimMachine::SimMachine(const MachineConfig& cfg)
    : num_pes_(cfg.num_pes),
      clock_(static_cast<std::size_t>(cfg.num_pes), 0.0),
      net_(make_network(cfg.network, cfg.net, cfg.num_pes)) {
  if (num_pes_ < 1) throw std::invalid_argument("num_pes must be >= 1");
  fifo_ = std::getenv("CHARMX_SIM_FIFO") != nullptr;
}

SimMachine::~SimMachine() {
  while (!heap_.empty()) {
    delete heap_.top().msg;
    heap_.pop();
  }
}

std::uint32_t SimMachine::register_handler(Handler h) {
  if (running_) throw std::logic_error("register_handler after run()");
  handlers_.push_back(std::move(h));
  return static_cast<std::uint32_t>(handlers_.size() - 1);
}

void SimMachine::send(MessagePtr msg) {
  const int dst = msg->dst_pe;
  if (dst < 0 || dst >= num_pes_) {
    throw std::out_of_range("send: bad destination PE");
  }
  const int src = current_pe_;
  msg->src_pe = src;
  double arrival = 0.0;
  if (src >= 0) {
    // Sender-side software overhead is CPU time on the sending PE.
    clock_[static_cast<std::size_t>(src)] += net_->cpu_overhead();
    arrival = clock_[static_cast<std::size_t>(src)] +
              net_->delay(src, dst, msg->wire_size());
    CX_TRACE_EVENT(src, clock_[static_cast<std::size_t>(src)],
                   cx::trace::EventKind::MsgSend,
                   static_cast<std::uint64_t>(dst), msg->wire_size());
  }
  if (fifo_) {
    auto& last = last_arrival_[{src, dst}];
    arrival = std::max(arrival, last);
    last = arrival;
  }
  heap_.push(Event{arrival, seq_++, msg.release()});
}

double SimMachine::now() const {
  if (current_pe_ < 0) return 0.0;
  return clock_[static_cast<std::size_t>(current_pe_)];
}

void SimMachine::charge(double seconds) {
  if (current_pe_ >= 0) {
    clock_[static_cast<std::size_t>(current_pe_)] += seconds;
  }
}

void SimMachine::run() {
  running_ = true;
  stop_ = false;
  while (!stop_ && !heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    MessagePtr msg(ev.msg);
    const int pe = msg->dst_pe;
    auto& clk = clock_[static_cast<std::size_t>(pe)];
    if (ev.time > clk) {
      // The PE's virtual clock jumps forward to the arrival: that gap is
      // scheduler idle time in the simulated timeline.
      CX_TRACE_EVENT(pe, ev.time, cx::trace::EventKind::Idle,
                     static_cast<std::uint64_t>((ev.time - clk) * 1e9), 0);
      clk = ev.time;
    }
    clk += net_->cpu_overhead();  // receiver-side software overhead
    current_pe_ = pe;
    cxu::set_log_pe(pe);
    const std::uint32_t h = msg->handler;
    if (h >= handlers_.size()) {
      CX_LOG_ERROR("dropping message with unknown handler ", h);
      continue;
    }
    CX_TRACE_EVENT(pe, clk, cx::trace::EventKind::MsgRecv,
                   static_cast<std::uint32_t>(msg->src_pe),
                   msg->wire_size());
    handlers_[h](std::move(msg));
    ++events_processed_;
  }
  current_pe_ = -1;
  cxu::set_log_pe(-1);
  running_ = false;
}

double SimMachine::makespan() const {
  return *std::max_element(clock_.begin(), clock_.end());
}

}  // namespace cxm
