#pragma once
// Network cost models for the simulated (discrete-event) backend.
//
// delay(src, dst, bytes) = end-to-end transfer time of one message.
// All models are alpha/beta (latency/bandwidth) models with topology-aware
// latency terms:
//   * SimpleNet    — flat alpha + bytes*beta (+ cheap intra-node path)
//   * TorusNet     — 3D torus hop count (Blue Waters-like, Cray XE Gemini)
//   * DragonflyNet — group-local vs. global links (Cori-like, Cray Aries)
//
// PEs are grouped into nodes of `pes_per_node`; intra-node messages use a
// separate (much cheaper) memory-channel cost.

#include <cstdint>
#include <memory>
#include <string>

namespace cxm {

struct NetworkParams {
  int pes_per_node = 32;       ///< PEs (cores) per node
  double alpha = 2.0e-6;       ///< base network latency (s)
  double beta = 1.0e-9;        ///< inverse bandwidth (s/byte) ~ 1 GB/s
  double per_hop = 1.0e-7;     ///< additional latency per hop (torus)
  double node_alpha = 4.0e-7;  ///< intra-node latency (s)
  double node_beta = 2.5e-10;  ///< intra-node inverse bandwidth (s/byte)
  double cpu_overhead = 5.0e-7;  ///< per-message sender+receiver CPU cost (s)
  /// CPU cost of appending one small message to / unpacking one from an
  /// aggregation batch (--wire-agg). Much cheaper than cpu_overhead:
  /// the batch pays the full per-message hand-off once, its members pay
  /// only a memcpy-sized slice.
  double agg_item_overhead = 5.0e-8;
};

class NetworkModel {
 public:
  explicit NetworkModel(NetworkParams p) : params_(p) {}
  virtual ~NetworkModel() = default;

  /// End-to-end delivery delay for one `bytes`-sized message.
  [[nodiscard]] double delay(int src_pe, int dst_pe,
                             std::uint64_t bytes) const {
    if (src_pe < 0) return 0.0;  // bootstrap / external injection
    if (node_of(src_pe) == node_of(dst_pe)) {
      return params_.node_alpha +
             static_cast<double>(bytes) * params_.node_beta;
    }
    return remote_latency(node_of(src_pe), node_of(dst_pe)) +
           static_cast<double>(bytes) * params_.beta;
  }

  /// CPU time charged on the sending PE per message (software overhead).
  [[nodiscard]] double cpu_overhead() const noexcept {
    return params_.cpu_overhead;
  }

  /// CPU time per sub-message absorbed into / unpacked from a batch.
  [[nodiscard]] double agg_overhead() const noexcept {
    return params_.agg_item_overhead;
  }

  [[nodiscard]] int node_of(int pe) const noexcept {
    return pe / params_.pes_per_node;
  }
  [[nodiscard]] const NetworkParams& params() const noexcept {
    return params_;
  }

 protected:
  /// Inter-node latency between two node ids.
  [[nodiscard]] virtual double remote_latency(int src_node,
                                              int dst_node) const = 0;

  NetworkParams params_;
};

/// Flat latency between any two nodes.
class SimpleNet final : public NetworkModel {
 public:
  explicit SimpleNet(NetworkParams p) : NetworkModel(p) {}

 protected:
  double remote_latency(int, int) const override { return params_.alpha; }
};

/// 3D torus: latency grows with Manhattan hop distance (wraparound links).
class TorusNet final : public NetworkModel {
 public:
  /// `dims` are the torus dimensions in nodes; pass {0,0,0} to auto-shape
  /// a near-cubic torus for `num_nodes`.
  TorusNet(NetworkParams p, int num_nodes, int dx = 0, int dy = 0,
           int dz = 0);

 protected:
  double remote_latency(int src_node, int dst_node) const override;

 private:
  [[nodiscard]] int hops(int a, int b) const;
  int dx_, dy_, dz_;
};

/// Dragonfly: one hop within a group, up to three (local-global-local)
/// between groups.
class DragonflyNet final : public NetworkModel {
 public:
  DragonflyNet(NetworkParams p, int nodes_per_group)
      : NetworkModel(p), nodes_per_group_(nodes_per_group < 1
                                              ? 1
                                              : nodes_per_group) {}

 protected:
  double remote_latency(int src_node, int dst_node) const override {
    const int gs = src_node / nodes_per_group_;
    const int gd = dst_node / nodes_per_group_;
    const int hops = (gs == gd) ? 1 : 3;
    return params_.alpha + hops * params_.per_hop;
  }

 private:
  int nodes_per_group_;
};

/// Factory from a model name ("simple", "torus", "dragonfly").
std::unique_ptr<NetworkModel> make_network(const std::string& name,
                                           NetworkParams params,
                                           int num_pes);

}  // namespace cxm
