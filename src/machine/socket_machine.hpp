#pragma once
// SocketMachine — N OS processes (ranks) bridged by nonblocking TCP.
//
// Each rank hosts `ppn` worker PEs (global PE p lives on rank p/ppn)
// plus one comm thread running an epoll loop over one connection per
// peer rank. Within a rank, PEs talk through the same MPSC mailboxes
// as the threaded backend — including the by-reference `local` payload
// fast path, which never crosses a socket. Cross-rank messages are the
// cx::wire envelope verbatim behind a u32 length prefix (src/net/
// frame.hpp); connections open with a version/endianness/ABI handshake
// so a mismatched peer is rejected with a clear error instead of
// silently corrupting native-endian payloads.
//
// Fault tolerance reuses cx::ft unchanged: reliable sends enroll in the
// sender PE's seq/ack/retransmit window exactly as on the threaded
// backend (the ft header rides in the frame), and a broken or EOF'd
// connection marks every PE of that rank crashed and feeds the same
// failure-listener pipeline heartbeat detection uses — so a kill -9'd
// worker process is detected and declared without new protocol.
//
// Wireup: the launcher (cxrun, or a test harness) listens as the
// rendezvous root; every rank connects, sends its handshake + data
// port, and receives the rank->endpoint table, then the ranks build a
// full mesh (connect to lower ranks, accept from higher ones).
//
// Injection semantics vs the threaded backend: drop and duplicate work
// for cross-rank sends; an injected extra delay is only honored for
// rank-local destinations (TCP supplies real latency, and delaying
// inside the comm thread would stall unrelated traffic).

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "ft/fault.hpp"
#include "ft/reliable.hpp"
#include "machine/machine.hpp"
#include "net/frame.hpp"
#include "net/socket_util.hpp"
#include "wire/agg.hpp"

namespace cxm {

class SocketMachine final : public Machine {
 public:
  explicit SocketMachine(const MachineConfig& cfg);
  ~SocketMachine() override;

  std::uint32_t register_handler(Handler h) override;
  [[nodiscard]] int num_pes() const noexcept override { return num_pes_; }
  [[nodiscard]] int current_pe() const noexcept override;
  void send(MessagePtr msg) override;
  [[nodiscard]] double now() const override;
  void compute(double seconds) override;
  void charge(double seconds) override;
  void run() override;
  void stop() override;
  [[nodiscard]] bool is_simulated() const noexcept override { return false; }

  [[nodiscard]] int my_rank() const noexcept override { return rank_; }
  [[nodiscard]] int num_ranks() const noexcept override { return nranks_; }
  [[nodiscard]] int pe_to_rank(int pe) const noexcept override {
    return pe / ppn_;
  }

  void send_after(MessagePtr msg, double delay_s) override;
  void inject_kill(int pe) override;
  void inject_hang(int pe) override;
  void declare_failed(int pe, cx::ft::FailureKind kind) override;
  void revive_pe(int pe) override;
  [[nodiscard]] bool pe_failed(int pe) const noexcept override;

 private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<MessagePtr> queue;
    std::multimap<double, MessagePtr> delayed;
  };

  /// Per-local-PE ft protocol state, touched only by the owning thread.
  struct FtPeState {
    cx::ft::SenderWindow sw;
    cx::ft::ReceiverWindow rw;
  };

  /// One peer rank's connection. `outq`/`down` are guarded by
  /// out_mutex_ (producers are PE threads, consumer is the comm
  /// thread); everything else is comm-thread-only.
  struct Peer {
    cxnet::Fd fd;
    cxnet::FrameReader reader;
    std::deque<std::vector<std::byte>> outq;
    std::size_t out_off = 0;   ///< bytes of outq.front() already written
    bool want_write = false;   ///< EPOLLOUT currently armed
    bool down = false;
  };

  [[nodiscard]] bool is_local(int pe) const noexcept {
    return pe >= pe_base_ && pe < pe_base_ + ppn_;
  }
  [[nodiscard]] std::size_t lidx(int pe) const noexcept {
    return static_cast<std::size_t>(pe - pe_base_);
  }

  void pe_loop(int pe);
  void enqueue(int dst, MessagePtr msg);
  void enqueue_delayed(int dst, MessagePtr msg, double deadline);
  void deliver(MessagePtr msg);
  void retransmit_due(int pe, FtPeState& me);
  void notify_failure_once(int pe, cx::ft::FailureKind kind);
  void request_stop(bool broadcast);
  void apply_kill(int pe);
  void apply_hang(int pe);
  void apply_revive(int pe);

  // ---- comm thread --------------------------------------------------------
  void comm_loop();
  void ship(int rank, std::vector<std::byte> frame);
  void wake_comm();
  void broadcast_control(cxnet::ControlOp op, int pe);
  /// Write as much of `p`'s outq as the socket accepts; arms/disarms
  /// EPOLLOUT. Comm thread only. Returns false if the peer broke.
  bool flush_peer(int rank);
  void handle_frame(int rank, const cxnet::Frame& f);
  void peer_down(int rank, const std::string& why);
  [[nodiscard]] bool all_out_drained();

  // ---- sender-side aggregation (--wire-agg), local PEs only --------------
  [[nodiscard]] cx::wire::PeAggregator& agg(int pe);
  [[nodiscard]] bool agg_pending(int pe) const noexcept;
  void drain_agg(int pe);

  int rank_;
  int nranks_;
  int ppn_;
  int num_pes_;   ///< global PE count = nranks * ppn
  int pe_base_;   ///< first global PE hosted here = rank * ppn

  std::vector<Handler> handlers_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;  ///< local PEs (ppn)
  bool agg_on_ = false;
  cx::wire::AggConfig agg_cfg_;
  std::vector<std::unique_ptr<cx::wire::PeAggregator>> aggs_;  ///< local
  std::atomic<bool> stop_{false};
  bool running_ = false;
  double epoch_ = 0.0;

  cx::ft::FaultConfig ft_;
  bool ft_enabled_ = false;
  std::unique_ptr<cx::ft::FaultInjector> inj_;
  std::mutex inj_mutex_;
  std::vector<std::unique_ptr<FtPeState>> ft_pes_;  ///< local PEs
  // Liveness flags cover every GLOBAL PE: remote failures must stop
  // local traffic (retransmit abandon) exactly like local ones.
  std::atomic<bool> any_failed_{false};
  std::vector<std::atomic<bool>> crashed_;
  std::vector<std::atomic<bool>> unreachable_;
  std::vector<std::atomic<bool>> hung_;
  std::mutex failure_mutex_;
  std::vector<std::uint8_t> failure_notified_;

  std::vector<Peer> peers_;  ///< indexed by rank; self entry unused
  std::mutex out_mutex_;
  int epoll_fd_ = -1;
  int wake_r_ = -1, wake_w_ = -1;  ///< self-pipe to rouse the comm thread
  std::thread comm_thread_;
  std::atomic<bool> comm_stop_{false};
};

}  // namespace cxm
