#include "machine/network.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace cxm {

namespace {
/// Near-cubic 3D factorization of n (dx*dy*dz >= n, each >= 1).
void auto_shape(int n, int& dx, int& dy, int& dz) {
  const double c = std::cbrt(static_cast<double>(n));
  dx = std::max(1, static_cast<int>(std::floor(c)));
  while (n % dx != 0 && dx > 1) --dx;
  const int rest = (n + dx - 1) / dx;
  const double s = std::sqrt(static_cast<double>(rest));
  dy = std::max(1, static_cast<int>(std::floor(s)));
  while (rest % dy != 0 && dy > 1) --dy;
  dz = (rest + dy - 1) / dy;
}
}  // namespace

TorusNet::TorusNet(NetworkParams p, int num_nodes, int dx, int dy, int dz)
    : NetworkModel(p), dx_(dx), dy_(dy), dz_(dz) {
  if (dx_ <= 0 || dy_ <= 0 || dz_ <= 0) {
    auto_shape(std::max(1, num_nodes), dx_, dy_, dz_);
  }
}

int TorusNet::hops(int a, int b) const {
  // Coordinates of node ids in the torus.
  const int ax = a % dx_, ay = (a / dx_) % dy_, az = a / (dx_ * dy_);
  const int bx = b % dx_, by = (b / dx_) % dy_, bz = b / (dx_ * dy_);
  auto wrap = [](int d, int dim) {
    const int fwd = std::abs(d);
    return std::min(fwd, dim - fwd);
  };
  return wrap(ax - bx, dx_) + wrap(ay - by, dy_) + wrap(az - bz, dz_);
}

double TorusNet::remote_latency(int src_node, int dst_node) const {
  return params_.alpha + hops(src_node, dst_node) * params_.per_hop;
}

std::unique_ptr<NetworkModel> make_network(const std::string& name,
                                           NetworkParams params,
                                           int num_pes) {
  const int nodes =
      (num_pes + params.pes_per_node - 1) / std::max(1, params.pes_per_node);
  if (name == "simple") return std::make_unique<SimpleNet>(params);
  if (name == "torus") return std::make_unique<TorusNet>(params, nodes);
  if (name == "dragonfly") {
    // Aries-like: ~96 nodes per group (scaled down with machine size).
    const int npg = std::max(1, std::min(96, nodes / 4 + 1));
    return std::make_unique<DragonflyNet>(params, npg);
  }
  throw std::invalid_argument("unknown network model: " + name);
}

}  // namespace cxm
