#pragma once
// SimMachine — deterministic discrete-event simulator backend.
//
// All PEs are virtual and run in one OS thread. Each PE has a virtual
// clock; messages are delivered through a NetworkModel that charges
// latency + bytes/bandwidth (+ per-message CPU overhead on both sides).
// Handlers execute real code; compute()/charge() advance the virtual
// clock of the PE the handler runs on.
//
// Event ordering: a single min-heap keyed by (arrival time, sequence).
// Handlers can only generate events with arrival >= their own start time,
// so per-PE FIFO arrival order equals pop order and causality holds.

#include <cstdint>
#include <map>
#include <queue>
#include <vector>

#include "machine/machine.hpp"

namespace cxm {

class SimMachine final : public Machine {
 public:
  explicit SimMachine(const MachineConfig& cfg);
  ~SimMachine() override;

  std::uint32_t register_handler(Handler h) override;
  [[nodiscard]] int num_pes() const noexcept override { return num_pes_; }
  [[nodiscard]] int current_pe() const noexcept override {
    return current_pe_;
  }
  void send(MessagePtr msg) override;
  [[nodiscard]] double now() const override;
  void compute(double seconds) override { charge(seconds); }
  void charge(double seconds) override;
  void run() override;
  void stop() override { stop_ = true; }
  [[nodiscard]] bool is_simulated() const noexcept override { return true; }

  /// Max virtual time reached across PEs (the simulated makespan).
  [[nodiscard]] double makespan() const;

  /// Total events processed (for reporting / sanity checks).
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return events_processed_;
  }

  [[nodiscard]] const NetworkModel& network() const noexcept {
    return *net_;
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Message* msg;  // owned; unique_ptr is not movable through priority_queue
    bool operator>(const Event& o) const noexcept {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  int num_pes_;
  std::vector<Handler> handlers_;
  std::vector<double> clock_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap_;
  std::unique_ptr<NetworkModel> net_;
  std::uint64_t seq_ = 0;
  std::uint64_t events_processed_ = 0;
  int current_pe_ = -1;
  bool stop_ = false;
  bool running_ = false;
  /// Per-channel FIFO enforcement (CHARMX_SIM_FIFO): a message never
  /// arrives before an earlier message on the same (src, dst) channel,
  /// matching the in-order delivery of real transport layers.
  bool fifo_ = false;
  std::map<std::pair<int, int>, double> last_arrival_;
};

}  // namespace cxm
