#pragma once
// SimMachine — deterministic discrete-event simulator backend.
//
// All PEs are virtual and run in one OS thread. Each PE has a virtual
// clock; messages are delivered through a NetworkModel that charges
// latency + bytes/bandwidth (+ per-message CPU overhead on both sides).
// Handlers execute real code; compute()/charge() advance the virtual
// clock of the PE the handler runs on.
//
// Event ordering: a single min-heap keyed by (arrival time, sequence).
// Handlers can only generate events with arrival >= their own start time,
// so per-PE FIFO arrival order equals pop order and causality holds.
//
// Fault tolerance (cx::ft): when MachineConfig::faults is enabled the
// simulator injects seeded drop/duplicate/delay on cross-PE messages,
// runs the seq+ack reliable-delivery protocol with retransmit timer
// events, and executes scripted PE crash/hang at a virtual time. All
// fault decisions flow through one seeded FaultInjector consumed in
// deterministic event order, so the same seed replays the same fault
// script. When faults are disabled, send/run take exactly one extra
// branch and the event stream is byte-identical to the pre-ft backend.

#include <cstdint>
#include <map>
#include <queue>
#include <vector>

#include "ft/fault.hpp"
#include "ft/reliable.hpp"
#include "machine/machine.hpp"
#include "wire/agg.hpp"

namespace cxm {

class SimMachine final : public Machine {
 public:
  explicit SimMachine(const MachineConfig& cfg);
  ~SimMachine() override;

  std::uint32_t register_handler(Handler h) override;
  [[nodiscard]] int num_pes() const noexcept override { return num_pes_; }
  [[nodiscard]] int current_pe() const noexcept override {
    return current_pe_;
  }
  void send(MessagePtr msg) override;
  [[nodiscard]] double now() const override;
  void compute(double seconds) override { charge(seconds); }
  void charge(double seconds) override;
  void run() override;
  void stop() override { stop_ = true; }
  [[nodiscard]] bool is_simulated() const noexcept override { return true; }

  void send_after(MessagePtr msg, double delay_s) override;
  void inject_kill(int pe) override;
  void inject_hang(int pe) override;
  void declare_failed(int pe, cx::ft::FailureKind kind) override;
  void revive_pe(int pe) override;
  [[nodiscard]] bool pe_failed(int pe) const noexcept override;

  /// Max virtual time reached across PEs (the simulated makespan).
  [[nodiscard]] double makespan() const;

  /// Total events processed (for reporting / sanity checks).
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return events_processed_;
  }

  [[nodiscard]] const NetworkModel& network() const noexcept {
    return *net_;
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Message* msg;  // owned; unique_ptr is not movable through priority_queue
    bool operator>(const Event& o) const noexcept {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  void push_timer(int pe, int dst, std::uint64_t seq, double at);
  void handle_timer(int pe, const Message& msg, double time);
  void check_scripted(double time);
  void fail_pe(int pe, cx::ft::FailureKind kind, double time);

  // ---- sender-side aggregation (--wire-agg) ------------------------------
  [[nodiscard]] cx::wire::PeAggregator& agg(int pe);
  /// Deterministic flush: a DES timer event (kWireAggFlush) that seals
  /// `dst`'s open batch on `pe` unless the batch already closed (its
  /// generation moved past `gen`).
  void push_agg_flush(int pe, int dst, std::uint64_t gen, double at);
  /// Hand every sealed batch of `pe` to the transport (re-enters send()).
  void drain_agg(int pe);

  int num_pes_;
  std::vector<Handler> handlers_;
  std::vector<double> clock_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap_;
  std::unique_ptr<NetworkModel> net_;
  std::uint64_t seq_ = 0;
  std::uint64_t events_processed_ = 0;
  int current_pe_ = -1;
  bool stop_ = false;
  bool running_ = false;
  /// Per-channel FIFO enforcement (CHARMX_SIM_FIFO): a message never
  /// arrives before an earlier message on the same (src, dst) channel,
  /// matching the in-order delivery of real transport layers.
  bool fifo_ = false;
  std::map<std::pair<int, int>, double> last_arrival_;

  /// Sender-side aggregation (sampled from cx::wire::agg_enabled() at
  /// construction). Forces fifo_ on: the ordering argument needs
  /// in-order channels. Aggregators are created lazily per PE.
  bool agg_on_ = false;
  cx::wire::AggConfig agg_cfg_;
  std::vector<std::unique_ptr<cx::wire::PeAggregator>> aggs_;

  // ---- cx::ft state (all empty / untouched when ft_enabled_ is false) ----
  cx::ft::FaultConfig ft_;
  bool ft_enabled_ = false;
  /// A PE failed at some point (config-independent: inject_kill works
  /// without any --ft-* flags), so run() must check liveness per event.
  bool any_failed_ = false;
  std::unique_ptr<cx::ft::FaultInjector> inj_;
  std::vector<cx::ft::SenderWindow> senders_;
  std::vector<cx::ft::ReceiverWindow> receivers_;
  std::vector<std::uint8_t> crashed_;
  std::vector<std::uint8_t> hung_;
  std::vector<std::uint8_t> unreachable_;
  /// Merged, time-sorted fault script (legacy --ft-crash-pe/--ft-hang-pe
  /// plus --ft-script). The cursor only moves forward: a fired event
  /// never refires, so a revived PE is not instantly re-killed, yet
  /// later script entries can hit the same PE again across revives.
  std::vector<cx::ft::ScriptedFault> script_;
  std::size_t next_script_ = 0;
  std::vector<std::uint8_t> failure_notified_;
  /// Messages that arrived at a hung PE (its mailbox fills; nothing
  /// drains). Discarded on revive — restore rebuilds state anyway.
  std::vector<std::vector<Message*>> parked_;
};

}  // namespace cxm
