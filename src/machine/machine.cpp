#include "machine/machine.hpp"

#include "machine/sim_machine.hpp"
#include "machine/threaded_machine.hpp"

namespace cxm {

std::unique_ptr<Machine> make_machine(const MachineConfig& cfg) {
  switch (cfg.backend) {
    case Backend::Threaded:
      return std::make_unique<ThreadedMachine>(cfg);
    case Backend::Sim:
      return std::make_unique<SimMachine>(cfg);
  }
  return nullptr;
}

}  // namespace cxm
