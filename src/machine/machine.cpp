#include "machine/machine.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "machine/sim_machine.hpp"
#include "machine/socket_machine.hpp"
#include "machine/threaded_machine.hpp"

namespace cxm {

namespace {

long env_long(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    throw std::invalid_argument(std::string("cxrun environment incomplete: ") +
                                name + " is not set");
  }
  char* end = nullptr;
  const long x = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') {
    throw std::invalid_argument(std::string("cxrun environment: bad ") + name +
                                "='" + v + "'");
  }
  return x;
}

}  // namespace

bool socket_env_active() { return std::getenv("CXRUN_RANK") != nullptr; }

int launched_rank() {
  const char* v = std::getenv("CXRUN_RANK");
  return v != nullptr ? static_cast<int>(std::strtol(v, nullptr, 10)) : 0;
}

void apply_socket_env(MachineConfig& cfg) {
  SocketParams p;
  p.rank = static_cast<int>(env_long("CXRUN_RANK"));
  p.nranks = static_cast<int>(env_long("CXRUN_NRANKS"));
  p.ppn = static_cast<int>(env_long("CXRUN_PPN"));
  const char* root = std::getenv("CXRUN_ROOT");
  if (root == nullptr) {
    throw std::invalid_argument("cxrun environment incomplete: CXRUN_ROOT");
  }
  const std::string r = root;
  const auto colon = r.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= r.size()) {
    throw std::invalid_argument("CXRUN_ROOT must be host:port, got '" + r +
                                "'");
  }
  p.root_host = r.substr(0, colon);
  p.root_port = static_cast<std::uint16_t>(std::stoi(r.substr(colon + 1)));
  if (p.rank < 0 || p.nranks < 1 || p.rank >= p.nranks || p.ppn < 1) {
    throw std::invalid_argument("cxrun environment: bad geometry (rank " +
                                std::to_string(p.rank) + " of " +
                                std::to_string(p.nranks) + ", ppn " +
                                std::to_string(p.ppn) + ")");
  }
  cfg.socket = p;
  cfg.backend = Backend::Socket;
}

std::unique_ptr<Machine> make_machine(const MachineConfig& cfg) {
  MachineConfig effective = cfg;
  // Under cxrun, a default (Threaded) request joins the socket job so
  // unmodified examples work; explicit Sim runs stay simulated.
  if (effective.backend == Backend::Threaded && socket_env_active()) {
    apply_socket_env(effective);
  }
  switch (effective.backend) {
    case Backend::Threaded:
      return std::make_unique<ThreadedMachine>(effective);
    case Backend::Sim:
      return std::make_unique<SimMachine>(effective);
    case Backend::Socket:
      if (effective.socket.root_port == 0) {
        apply_socket_env(effective);  // Socket requested directly: need env
      }
      return std::make_unique<SocketMachine>(effective);
  }
  return nullptr;
}

}  // namespace cxm
