#pragma once
// Machine — the execution substrate under the runtime.
//
// A Machine owns a set of PEs (processing elements), a handler table, and
// the transport between PEs. Two implementations exist:
//
//   * ThreadedMachine — one std::thread per PE, real wall clock. Used by
//     tests, examples and host-scale benchmarks: real concurrency, real
//     message passing through per-PE mailboxes.
//
//   * SimMachine — a deterministic discrete-event simulator: virtual PEs,
//     per-PE virtual clocks and a NetworkModel. Entry methods execute real
//     code; time is charged via compute()/charge-scopes and the network
//     model. This is the BigSim-style backend used to regenerate the
//     paper's supercomputer-scale figures (1k-65k PEs) on a workstation.
//
//   * SocketMachine — N OS processes (ranks), each hosting `ppn` worker
//     PEs plus one nonblocking-TCP/epoll comm thread. Cross-process
//     messages travel as length-prefixed cx::wire envelopes (src/net/);
//     within a rank, PEs share the threaded backend's mailbox fast
//     path. Launched by `cxrun` (or any parent that sets the CXRUN_*
//     environment — see socket_env_active()).
//
// The runtime registers handlers once (before run()) and then communicates
// exclusively through send(). All handler execution happens on the
// destination PE's context.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "ft/fault.hpp"
#include "machine/message.hpp"
#include "machine/network.hpp"

namespace cxm {

using Handler = std::function<void(MessagePtr)>;

enum class Backend { Threaded, Sim, Socket };

/// Multi-process launch geometry (Backend::Socket). Filled from the
/// CXRUN_* environment by apply_socket_env(); the launcher (`cxrun`)
/// runs the root rendezvous the ranks wire up through.
struct SocketParams {
  int rank = 0;
  int nranks = 1;
  int ppn = 1;  ///< worker PEs per rank; global PE count = nranks * ppn
  std::string root_host = "127.0.0.1";
  std::uint16_t root_port = 0;
};

struct MachineConfig {
  int num_pes = 4;
  Backend backend = Backend::Threaded;
  /// Socket-backend geometry. Under cxrun the global PE count is
  /// nranks * ppn (num_pes above is ignored — the launcher owns the
  /// job shape).
  SocketParams socket{};
  /// Simulated network (ignored by the threaded backend):
  std::string network = "simple";  ///< "simple" | "torus" | "dragonfly"
  NetworkParams net{};
  std::uint64_t seed = 1;  ///< tie-break seed (reserved; DES is FIFO-stable)
  /// Fault-tolerance knobs (cx::ft). Defaults are all-off: both
  /// backends keep the exact pre-ft fast path when faults.enabled()
  /// is false.
  cx::ft::FaultConfig faults{};
};

class Machine {
 public:
  virtual ~Machine() = default;

  /// Register a handler; returns its id. Only valid before run().
  virtual std::uint32_t register_handler(Handler h) = 0;

  /// Number of PEs.
  [[nodiscard]] virtual int num_pes() const noexcept = 0;

  /// PE id of the calling context; -1 if not on a PE (e.g. driver thread).
  [[nodiscard]] virtual int current_pe() const noexcept = 0;

  /// Enqueue a message for delivery to msg->dst_pe. Callable from any PE
  /// context, and from outside run() to seed initial work.
  virtual void send(MessagePtr msg) = 0;

  /// Current time (seconds) on the calling PE: wall time for the threaded
  /// backend, virtual time for the simulator.
  [[nodiscard]] virtual double now() const = 0;

  /// Charge `seconds` of compute to the calling PE: the simulator advances
  /// its virtual clock; the threaded backend spins for that long (used for
  /// synthetic load injection, e.g. the paper's imbalance factors).
  virtual void compute(double seconds) = 0;

  /// Advance the calling PE's clock without consuming host CPU. In the
  /// threaded backend this is a no-op (real work already took real time);
  /// in the simulator it is how measured kernel times are charged.
  virtual void charge(double seconds) = 0;

  /// Run the scheduler loop on all PEs; blocks until stop() is called (or,
  /// for the simulator, until the event queue drains).
  virtual void run() = 0;

  /// Request termination of all PE loops. Callable from handler context.
  virtual void stop() = 0;

  /// True when the machine uses virtual time (SimMachine).
  [[nodiscard]] virtual bool is_simulated() const noexcept = 0;

  // ---- multi-process locality (SocketMachine) ----------------------------
  // Single-process backends host every PE in rank 0 of 1.

  /// This process's rank in the job.
  [[nodiscard]] virtual int my_rank() const noexcept { return 0; }

  /// Number of OS processes in the job.
  [[nodiscard]] virtual int num_ranks() const noexcept { return 1; }

  /// The rank hosting `pe` (block distribution: pe / ppn).
  [[nodiscard]] virtual int pe_to_rank(int /*pe*/) const noexcept {
    return 0;
  }

  /// Whether `pe`'s scheduler thread runs in this process. The runtime
  /// gates per-PE seeding (the Start envelope, heartbeat timers) on
  /// this so each rank only drives its own PEs.
  [[nodiscard]] bool hosts_pe(int pe) const noexcept {
    return pe_to_rank(pe) == my_rank();
  }

  // ---- fault tolerance (cx::ft) -----------------------------------------

  /// Deliver `msg` to msg->dst_pe after `delay_s` seconds of the calling
  /// PE's clock, without charging network cost. Used for runtime timers
  /// (future timeouts); delivery goes through the normal handler table.
  virtual void send_after(MessagePtr msg, double delay_s) = 0;

  /// Mark `pe` crashed: it stops processing (and acking) everything from
  /// now on. Notifies the failure listener. Callable from handler context.
  virtual void inject_kill(int pe) = 0;

  /// Make `pe` stop draining its mailbox without any notification — the
  /// test/chaos hook for silent failures. Peers only learn of it via
  /// retransmit give-up or the heartbeat detector (declare_failed).
  virtual void inject_hang(int pe) = 0;

  /// Mark `pe` failed as `kind` based on external evidence (the
  /// liveness layer's accrual detector crossing its threshold). Traffic
  /// to the PE stops and the failure listener fires once, exactly as if
  /// the machine had detected the failure itself.
  virtual void declare_failed(int pe, cx::ft::FailureKind kind) = 0;

  /// Undo inject_kill / a scripted crash or hang, as part of restart.
  /// Messages the PE accumulated while down are discarded.
  virtual void revive_pe(int pe) = 0;

  /// True when `pe` is currently marked crashed, hung, or unreachable.
  [[nodiscard]] virtual bool pe_failed(int pe) const noexcept = 0;

  using FailureListener = std::function<void(const cx::ft::PeFailure&)>;

  /// Install the callback invoked (from machine context — scheduler
  /// thread on Sim, a PE thread on Threaded) when a PE failure is
  /// detected: scripted crash, inject_kill, or retransmit give-up.
  /// At most one notification fires per failed PE.
  void set_failure_listener(FailureListener cb) {
    failure_listener_ = std::move(cb);
  }

 protected:
  FailureListener failure_listener_;
};

/// Create a machine from a config. When the CXRUN_* environment is set
/// (the process was launched by cxrun) a Threaded request is upgraded
/// to the Socket backend — Sim runs are never upgraded.
std::unique_ptr<Machine> make_machine(const MachineConfig& cfg);

/// True when this process was launched by cxrun (CXRUN_RANK et al. are
/// set) and should join a multi-process socket job.
bool socket_env_active();

/// Fill cfg.socket from the CXRUN_* environment and select
/// Backend::Socket. Throws if the environment is malformed.
void apply_socket_env(MachineConfig& cfg);

/// The rank cxrun assigned this process, or 0 when not under cxrun.
/// Usable before any Machine exists — examples gate their result
/// printing on it.
int launched_rank();

}  // namespace cxm
