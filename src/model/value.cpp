#include "model/value.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace cpy {

namespace {

[[noreturn]] void type_error(const std::string& what, Kind got) {
  throw std::runtime_error("TypeError: expected " + what + ", got " +
                           kind_name(got));
}

template <typename T>
void pup_ndbuffer(pup::Er& p, std::shared_ptr<NdBuffer<T>>& arr) {
  // Array fast path: shape metadata then one contiguous byte copy.
  if (p.unpacking()) arr = std::make_shared<NdBuffer<T>>();
  p | arr->shape;
  std::uint64_t n = arr->data.size();
  p | n;
  if (p.unpacking()) arr->data.resize(static_cast<std::size_t>(n));
  if (n != 0) {
    p.bytes(arr->data.data(), static_cast<std::size_t>(n) * sizeof(T));
  }
}

}  // namespace

const char* kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::None: return "None";
    case Kind::Bool: return "bool";
    case Kind::Int: return "int";
    case Kind::Real: return "float";
    case Kind::Str: return "str";
    case Kind::Bytes: return "bytes";
    case Kind::List: return "list";
    case Kind::Tuple: return "tuple";
    case Kind::Dict: return "dict";
    case Kind::F64Array: return "f64array";
    case Kind::I64Array: return "i64array";
    case Kind::Proxy: return "proxy";
  }
  return "?";
}

Value Value::zeros(std::uint64_t n) {
  auto buf = std::make_shared<NdBuffer<double>>();
  buf->data.assign(static_cast<std::size_t>(n), 0.0);
  buf->shape = {n};
  return Value(std::move(buf));
}

Value Value::array(std::vector<double> data) {
  auto buf = std::make_shared<NdBuffer<double>>();
  buf->shape = {data.size()};
  buf->data = std::move(data);
  return Value(std::move(buf));
}

Value Value::array(std::vector<double> data,
                   std::vector<std::uint64_t> shape) {
  auto buf = std::make_shared<NdBuffer<double>>();
  buf->data = std::move(data);
  buf->shape = std::move(shape);
  return Value(std::move(buf));
}

Value Value::iarray(std::vector<std::int64_t> data) {
  auto buf = std::make_shared<NdBuffer<std::int64_t>>();
  buf->shape = {data.size()};
  buf->data = std::move(data);
  return Value(std::move(buf));
}

Kind Value::kind() const noexcept {
  switch (v_.index()) {
    case 0: return Kind::None;
    case 1: return Kind::Bool;
    case 2: return Kind::Int;
    case 3: return Kind::Real;
    case 4: return Kind::Str;
    case 5: return Kind::Bytes;
    case 6:
      return std::get<std::shared_ptr<Boxed>>(v_)->is_tuple ? Kind::Tuple
                                                            : Kind::List;
    case 7: return Kind::Dict;
    case 8: return Kind::F64Array;
    case 9: return Kind::I64Array;
    case 10: return Kind::Proxy;
  }
  return Kind::None;
}

bool Value::as_bool() const {
  if (const auto* b = std::get_if<bool>(&v_)) return *b;
  type_error("bool", kind());
}

std::int64_t Value::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return *i;
  if (const auto* b = std::get_if<bool>(&v_)) return *b ? 1 : 0;
  type_error("int", kind());
}

double Value::as_real() const {
  if (const auto* d = std::get_if<double>(&v_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v_)) {
    return static_cast<double>(*i);
  }
  if (const auto* b = std::get_if<bool>(&v_)) return *b ? 1.0 : 0.0;
  type_error("float", kind());
}

const std::string& Value::as_str() const {
  if (const auto* s = std::get_if<std::string>(&v_)) return *s;
  type_error("str", kind());
}

const std::vector<std::byte>& Value::as_bytes() const {
  if (const auto* b = std::get_if<std::vector<std::byte>>(&v_)) return *b;
  type_error("bytes", kind());
}

const List& Value::as_list() const {
  if (const auto* b = std::get_if<std::shared_ptr<Boxed>>(&v_)) {
    return (*b)->items;
  }
  type_error("list", kind());
}

List& Value::as_list() {
  if (auto* b = std::get_if<std::shared_ptr<Boxed>>(&v_)) {
    return (*b)->items;
  }
  type_error("list", kind());
}

const Dict& Value::as_dict() const {
  if (const auto* d = std::get_if<std::shared_ptr<Dict>>(&v_)) return **d;
  type_error("dict", kind());
}

Dict& Value::as_dict() {
  if (auto* d = std::get_if<std::shared_ptr<Dict>>(&v_)) return **d;
  type_error("dict", kind());
}

const F64Array& Value::as_f64_array() const {
  if (const auto* a = std::get_if<F64Array>(&v_)) return *a;
  type_error("f64array", kind());
}

const I64Array& Value::as_i64_array() const {
  if (const auto* a = std::get_if<I64Array>(&v_)) return *a;
  type_error("i64array", kind());
}

const ProxyRef& Value::as_proxy() const {
  if (const auto* p = std::get_if<ProxyRef>(&v_)) return *p;
  type_error("proxy", kind());
}

bool Value::truthy() const {
  switch (kind()) {
    case Kind::None: return false;
    case Kind::Bool: return std::get<bool>(v_);
    case Kind::Int: return std::get<std::int64_t>(v_) != 0;
    case Kind::Real: return std::get<double>(v_) != 0.0;
    case Kind::Str: return !std::get<std::string>(v_).empty();
    case Kind::Bytes: return !std::get<std::vector<std::byte>>(v_).empty();
    case Kind::List:
    case Kind::Tuple:
    case Kind::Dict:
    case Kind::F64Array:
    case Kind::I64Array: return length() != 0;
    case Kind::Proxy: return true;
  }
  return false;
}

std::uint64_t Value::length() const {
  switch (kind()) {
    case Kind::Str: return std::get<std::string>(v_).size();
    case Kind::Bytes: return std::get<std::vector<std::byte>>(v_).size();
    case Kind::List:
    case Kind::Tuple: return as_list().size();
    case Kind::Dict: return as_dict().size();
    case Kind::F64Array: return as_f64_array()->size();
    case Kind::I64Array: return as_i64_array()->size();
    default: type_error("sized value", kind());
  }
}

Value Value::item(const Value& key) const {
  switch (kind()) {
    case Kind::List:
    case Kind::Tuple: {
      std::int64_t i = key.as_int();
      const auto& xs = as_list();
      if (i < 0) i += static_cast<std::int64_t>(xs.size());
      if (i < 0 || i >= static_cast<std::int64_t>(xs.size())) {
        throw std::out_of_range("IndexError: list index out of range");
      }
      return xs[static_cast<std::size_t>(i)];
    }
    case Kind::Dict: {
      const auto& d = as_dict();
      const auto it = d.find(key.as_str());
      if (it == d.end()) {
        throw std::out_of_range("KeyError: " + key.as_str());
      }
      return it->second;
    }
    case Kind::F64Array: {
      const auto& a = *as_f64_array();
      std::int64_t i = key.as_int();
      if (i < 0) i += static_cast<std::int64_t>(a.size());
      if (i < 0 || i >= static_cast<std::int64_t>(a.size())) {
        throw std::out_of_range("IndexError: array index out of range");
      }
      return Value(a.data[static_cast<std::size_t>(i)]);
    }
    case Kind::I64Array: {
      const auto& a = *as_i64_array();
      std::int64_t i = key.as_int();
      if (i < 0) i += static_cast<std::int64_t>(a.size());
      if (i < 0 || i >= static_cast<std::int64_t>(a.size())) {
        throw std::out_of_range("IndexError: array index out of range");
      }
      return Value(a.data[static_cast<std::size_t>(i)]);
    }
    default: type_error("indexable value", kind());
  }
}

bool Value::equals(const Value& o) const {
  if (is_numeric() && o.is_numeric()) return as_real() == o.as_real();
  const Kind k = kind();
  if (k != o.kind()) return false;
  switch (k) {
    case Kind::None: return true;
    case Kind::Str: return as_str() == o.as_str();
    case Kind::Bytes: return as_bytes() == o.as_bytes();
    case Kind::List:
    case Kind::Tuple: {
      const auto& a = as_list();
      const auto& b = o.as_list();
      if (a.size() != b.size()) return false;
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (!a[i].equals(b[i])) return false;
      }
      return true;
    }
    case Kind::Dict: {
      const auto& a = as_dict();
      const auto& b = o.as_dict();
      if (a.size() != b.size()) return false;
      for (const auto& [key, val] : a) {
        const auto it = b.find(key);
        if (it == b.end() || !val.equals(it->second)) return false;
      }
      return true;
    }
    case Kind::F64Array: {
      const auto& a = *as_f64_array();
      const auto& b = *o.as_f64_array();
      return a.shape == b.shape && a.data == b.data;
    }
    case Kind::I64Array: {
      const auto& a = *as_i64_array();
      const auto& b = *o.as_i64_array();
      return a.shape == b.shape && a.data == b.data;
    }
    case Kind::Proxy: return as_proxy() == o.as_proxy();
    default: return false;
  }
}

int Value::compare(const Value& o) const {
  if (is_numeric() && o.is_numeric()) {
    const double a = as_real();
    const double b = o.as_real();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (kind() == Kind::Str && o.kind() == Kind::Str) {
    return as_str().compare(o.as_str()) < 0
               ? -1
               : (as_str() == o.as_str() ? 0 : 1);
  }
  // Lexicographic ordering for sequences (used by gather to sort
  // contributions by element index).
  const bool seq_a = kind() == Kind::List || kind() == Kind::Tuple;
  const bool seq_b = o.kind() == Kind::List || o.kind() == Kind::Tuple;
  if (seq_a && seq_b) {
    const auto& xs = as_list();
    const auto& ys = o.as_list();
    const std::size_t n = std::min(xs.size(), ys.size());
    for (std::size_t i = 0; i < n; ++i) {
      const int c = xs[i].compare(ys[i]);
      if (c != 0) return c;
    }
    return xs.size() < ys.size() ? -1 : (xs.size() > ys.size() ? 1 : 0);
  }
  throw std::runtime_error(std::string("TypeError: cannot order ") +
                           kind_name(kind()) + " and " +
                           kind_name(o.kind()));
}

std::string Value::repr() const {
  std::ostringstream os;
  switch (kind()) {
    case Kind::None: os << "None"; break;
    case Kind::Bool: os << (std::get<bool>(v_) ? "True" : "False"); break;
    case Kind::Int: os << std::get<std::int64_t>(v_); break;
    case Kind::Real: os << std::get<double>(v_); break;
    case Kind::Str: os << '\'' << std::get<std::string>(v_) << '\''; break;
    case Kind::Bytes:
      os << "b'<" << std::get<std::vector<std::byte>>(v_).size() << " bytes>'";
      break;
    case Kind::List:
    case Kind::Tuple: {
      const bool tup = kind() == Kind::Tuple;
      os << (tup ? '(' : '[');
      const auto& xs = as_list();
      for (std::size_t i = 0; i < xs.size(); ++i) {
        if (i) os << ", ";
        os << xs[i].repr();
      }
      os << (tup ? ')' : ']');
      break;
    }
    case Kind::Dict: {
      os << '{';
      bool first = true;
      for (const auto& [k, v] : as_dict()) {
        if (!first) os << ", ";
        first = false;
        os << '\'' << k << "': " << v.repr();
      }
      os << '}';
      break;
    }
    case Kind::F64Array:
      os << "array(f64, n=" << as_f64_array()->size() << ")";
      break;
    case Kind::I64Array:
      os << "array(i64, n=" << as_i64_array()->size() << ")";
      break;
    case Kind::Proxy:
      os << "<proxy " << as_proxy().cls
         << (as_proxy().is_element ? as_proxy().idx.to_string() : "[*]")
         << ">";
      break;
  }
  return os.str();
}

void Value::pup(pup::Er& p) {
  std::uint8_t tag =
      p.unpacking() ? 0 : static_cast<std::uint8_t>(v_.index());
  p | tag;
  if (p.unpacking()) {
    switch (tag) {
      case 0: v_ = std::monostate{}; break;
      case 1: v_ = false; break;
      case 2: v_ = std::int64_t{0}; break;
      case 3: v_ = 0.0; break;
      case 4: v_ = std::string(); break;
      case 5: v_ = std::vector<std::byte>(); break;
      case 6: v_ = boxed({}, false); break;
      case 7: v_ = std::make_shared<Dict>(); break;
      case 8: v_ = std::make_shared<NdBuffer<double>>(); break;
      case 9: v_ = std::make_shared<NdBuffer<std::int64_t>>(); break;
      case 10: v_ = ProxyRef{}; break;
      default: throw std::runtime_error("Value: corrupt tag");
    }
  }
  switch (v_.index()) {
    case 0: break;
    case 1: p | std::get<bool>(v_); break;
    case 2: p | std::get<std::int64_t>(v_); break;
    case 3: p | std::get<double>(v_); break;
    case 4: p | std::get<std::string>(v_); break;
    case 5: p | std::get<std::vector<std::byte>>(v_); break;
    case 6: {
      auto& b = std::get<std::shared_ptr<Boxed>>(v_);
      if (p.unpacking()) b = boxed({}, false);
      p | b->is_tuple;
      std::uint64_t n = b->items.size();
      p | n;
      if (p.unpacking()) b->items.resize(static_cast<std::size_t>(n));
      for (auto& e : b->items) e.pup(p);
      break;
    }
    case 7: {
      auto& d = std::get<std::shared_ptr<Dict>>(v_);
      if (p.unpacking()) d = std::make_shared<Dict>();
      std::uint64_t n = d->size();
      p | n;
      if (p.unpacking()) {
        for (std::uint64_t i = 0; i < n; ++i) {
          std::string k;
          p | k;
          Value v;
          v.pup(p);
          d->emplace(std::move(k), std::move(v));
        }
      } else {
        for (auto& [k, v] : *d) {
          std::string key = k;
          p | key;
          v.pup(p);
        }
      }
      break;
    }
    case 8: pup_ndbuffer(p, std::get<F64Array>(v_)); break;
    case 9: pup_ndbuffer(p, std::get<I64Array>(v_)); break;
    case 10: std::get<ProxyRef>(v_).pup(p); break;
  }
}

std::uint64_t Value::approx_bytes() const {
  switch (kind()) {
    case Kind::None: return 1;
    case Kind::Bool: return 2;
    case Kind::Int:
    case Kind::Real: return 9;
    case Kind::Str: return 9 + as_str().size();
    case Kind::Bytes: return 9 + as_bytes().size();
    case Kind::List:
    case Kind::Tuple: {
      std::uint64_t n = 10;
      for (const auto& e : as_list()) n += e.approx_bytes();
      return n;
    }
    case Kind::Dict: {
      std::uint64_t n = 10;
      for (const auto& [k, v] : as_dict()) n += 9 + k.size() + v.approx_bytes();
      return n;
    }
    case Kind::F64Array: return 20 + as_f64_array()->size() * 8;
    case Kind::I64Array: return 20 + as_i64_array()->size() * 8;
    case Kind::Proxy: return 40 + as_proxy().cls.size();
  }
  return 1;
}

}  // namespace cpy
