#pragma once
// Dynamic chare classes (the model layer's class objects).
//
// In CharmPy a chare class is a plain Python class: methods are found by
// reflection, @when/@threaded are decorators. Here a DClass describes a
// dynamic class as data — method table, parameter names (needed so `when`
// conditions can reference arguments by name), threaded flags and
// compiled when-conditions:
//
//   cpy::DClass cls("Worker");
//   cls.def("__init__", {"master"}, [](cpy::DChare& self, cpy::Args& a) {
//       self["master"] = a[0];
//       return cpy::Value::none();
//     });
//   cls.def("recv", {"iter", "data"}, ...).when("recv", "self.iter == iter");
//   cls.def_threaded("run", {}, ...);
//
// Classes register globally by name at construction; instances are
// created with cpy::create_chare / create_group / create_array.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "model/expr.hpp"
#include "model/value.hpp"

namespace cpy {

class DChare;

using MethodFn = std::function<Value(DChare& self, Args& args)>;

struct MethodDef {
  std::string name;
  std::vector<std::string> params;
  MethodFn fn;
  bool threaded = false;
  bool has_when = false;
  Expr when_cond;
  /// Dependency set of when_cond (shared with the compiled Expr); the
  /// delivery engine uses it to skip re-tests of buffered messages
  /// whose `self.<attr>` reads did not change.
  std::shared_ptr<const cx::WhenDeps> when_deps;
};

class DClass {
 public:
  /// Create (or reopen) the class `name` in the global registry.
  explicit DClass(std::string name);

  /// Define a method. Parameter names are used by `when` conditions.
  DClass& def(const std::string& method, std::vector<std::string> params,
              MethodFn fn);

  /// Define a threaded method (may block on futures / wait()).
  DClass& def_threaded(const std::string& method,
                       std::vector<std::string> params, MethodFn fn);

  /// Attach a when-condition string to a method (the @when decorator).
  /// The condition is compiled once, here.
  DClass& when(const std::string& method, const std::string& condition);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
};

/// Look up a method; returns nullptr if the class or method is unknown.
/// The returned pointer stays valid for the process lifetime.
const MethodDef* find_method(const std::string& cls,
                             const std::string& method);

/// True if the class exists in the registry.
bool class_exists(const std::string& cls);

}  // namespace cpy
