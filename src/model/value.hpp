#pragma once
// cpy::Value — the dynamic value type of the model layer.
//
// Plays the role Python objects play in CharmPy: every argument of a
// dynamic entry method is a Value. Supported kinds mirror the paper's
// serialization discussion (§IV-B): scalars and strings ("built-in
// types"), lists/tuples/dicts ("pickled types"), and numeric arrays with
// contiguous buffers (the NumPy fast path — serialized by direct memcpy
// with shape metadata in the header, and shared by reference between
// same-process chares).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "core/index.hpp"
#include "pup/pup.hpp"

namespace cpy {

class Value;

using List = std::vector<Value>;
using Dict = std::map<std::string, Value>;

/// Contiguous numeric array (the NumPy analogue). The buffer is shared:
/// copying a Value copies the reference, as in Python.
template <typename T>
struct NdBuffer {
  std::vector<T> data;
  std::vector<std::uint64_t> shape;

  [[nodiscard]] std::uint64_t size() const noexcept { return data.size(); }
};

using F64Array = std::shared_ptr<NdBuffer<double>>;
using I64Array = std::shared_ptr<NdBuffer<std::int64_t>>;

/// A chare proxy boxed as a dynamic value — proxies are first-class
/// arguments in the paper (§II-D). `is_element` distinguishes element
/// proxies from whole-collection proxies.
struct ProxyRef {
  std::uint32_t coll = 0xffffffffu;
  cx::Index idx;
  bool is_element = true;
  std::string cls;

  void pup(pup::Er& p) {
    p | coll;
    p | idx;
    p | is_element;
    p | cls;
  }
  bool operator==(const ProxyRef&) const = default;
};

enum class Kind : std::uint8_t {
  None = 0,
  Bool,
  Int,
  Real,
  Str,
  Bytes,
  List,
  Tuple,
  Dict,
  F64Array,
  I64Array,
  Proxy,
};

const char* kind_name(Kind k) noexcept;

class Value {
 public:
  Value() = default;  // None
  Value(bool b) : v_(b) {}
  Value(int i) : v_(static_cast<std::int64_t>(i)) {}
  Value(std::int64_t i) : v_(i) {}
  Value(std::uint64_t i) : v_(static_cast<std::int64_t>(i)) {}
  Value(double d) : v_(d) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(std::vector<std::byte> b) : v_(std::move(b)) {}
  Value(List l) : v_(boxed(std::move(l), /*tuple=*/false)) {}
  Value(Dict d) : v_(std::make_shared<Dict>(std::move(d))) {}
  Value(F64Array a) : v_(std::move(a)) {}
  Value(I64Array a) : v_(std::move(a)) {}
  Value(ProxyRef p) : v_(std::move(p)) {}

  static Value none() { return Value(); }
  static Value tuple(List items) {
    Value v;
    v.v_ = boxed(std::move(items), /*tuple=*/true);
    return v;
  }
  static Value list(List items) { return Value(std::move(items)); }
  static Value dict(Dict d) { return Value(std::move(d)); }

  /// Fresh numeric arrays.
  static Value zeros(std::uint64_t n);
  static Value array(std::vector<double> data);
  static Value array(std::vector<double> data,
                     std::vector<std::uint64_t> shape);
  static Value iarray(std::vector<std::int64_t> data);

  [[nodiscard]] Kind kind() const noexcept;
  [[nodiscard]] bool is_none() const noexcept {
    return kind() == Kind::None;
  }
  [[nodiscard]] bool is_numeric() const noexcept {
    const Kind k = kind();
    return k == Kind::Bool || k == Kind::Int || k == Kind::Real;
  }

  // --- accessors (throw TypeError-style std::runtime_error on mismatch) ---
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_real() const;  ///< int/bool coerce to double
  [[nodiscard]] const std::string& as_str() const;
  [[nodiscard]] const std::vector<std::byte>& as_bytes() const;
  [[nodiscard]] const List& as_list() const;  ///< list or tuple
  [[nodiscard]] List& as_list();
  [[nodiscard]] const Dict& as_dict() const;
  [[nodiscard]] Dict& as_dict();
  [[nodiscard]] const F64Array& as_f64_array() const;
  [[nodiscard]] const I64Array& as_i64_array() const;
  [[nodiscard]] const ProxyRef& as_proxy() const;

  /// Python truthiness: None/0/""/empty containers are false.
  [[nodiscard]] bool truthy() const;

  /// len(): strings, bytes, containers, arrays.
  [[nodiscard]] std::uint64_t length() const;

  /// Container / array element access (list index or dict key).
  [[nodiscard]] Value item(const Value& key) const;

  /// Structural equality (numeric kinds compare by value).
  [[nodiscard]] bool equals(const Value& o) const;

  /// Ordering for numeric and string kinds (throws otherwise).
  [[nodiscard]] int compare(const Value& o) const;

  /// Human-readable representation (repr-like, for tests/debugging).
  [[nodiscard]] std::string repr() const;

  /// Serialization with the array fast path (paper §IV-B).
  void pup(pup::Er& p);

  /// Approximate serialized size without a sizing pass (fast accounting).
  [[nodiscard]] std::uint64_t approx_bytes() const;

 private:
  struct Boxed {  // list or tuple
    List items;
    bool is_tuple = false;
  };
  static std::shared_ptr<Boxed> boxed(List items, bool tuple) {
    auto b = std::make_shared<Boxed>();
    b->items = std::move(items);
    b->is_tuple = tuple;
    return b;
  }

  using Storage =
      std::variant<std::monostate, bool, std::int64_t, double, std::string,
                   std::vector<std::byte>, std::shared_ptr<Boxed>,
                   std::shared_ptr<Dict>, F64Array, I64Array, ProxyRef>;
  Storage v_;
};

/// Argument pack of a dynamic entry method.
using Args = std::vector<Value>;

}  // namespace cpy
