#include "model/dclass.hpp"

#include <map>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace cpy {

namespace {

struct ClassImpl {
  // std::map: node-based, so MethodDef addresses stay stable.
  std::map<std::string, MethodDef> methods;
};

struct ClassRegistry {
  std::mutex mutex;
  std::unordered_map<std::string, std::unique_ptr<ClassImpl>> classes;

  static ClassRegistry& instance() {
    static ClassRegistry r;
    return r;
  }

  ClassImpl& get_or_create(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex);
    auto& slot = classes[name];
    if (!slot) slot = std::make_unique<ClassImpl>();
    return *slot;
  }

  ClassImpl* find(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = classes.find(name);
    return it == classes.end() ? nullptr : it->second.get();
  }
};

}  // namespace

DClass::DClass(std::string name) : name_(std::move(name)) {
  ClassRegistry::instance().get_or_create(name_);
}

DClass& DClass::def(const std::string& method,
                    std::vector<std::string> params, MethodFn fn) {
  auto& impl = ClassRegistry::instance().get_or_create(name_);
  MethodDef& d = impl.methods[method];
  d.name = method;
  d.params = std::move(params);
  d.fn = std::move(fn);
  return *this;
}

DClass& DClass::def_threaded(const std::string& method,
                             std::vector<std::string> params, MethodFn fn) {
  def(method, std::move(params), std::move(fn));
  auto& impl = ClassRegistry::instance().get_or_create(name_);
  impl.methods[method].threaded = true;
  return *this;
}

DClass& DClass::when(const std::string& method,
                     const std::string& condition) {
  auto& impl = ClassRegistry::instance().get_or_create(name_);
  const auto it = impl.methods.find(method);
  if (it == impl.methods.end()) {
    throw std::logic_error("when('" + condition + "'): class " + name_ +
                           " has no method " + method +
                           " (define it first)");
  }
  it->second.when_cond = Expr::compile(condition);
  it->second.has_when = true;
  return *this;
}

const MethodDef* find_method(const std::string& cls,
                             const std::string& method) {
  ClassImpl* impl = ClassRegistry::instance().find(cls);
  if (impl == nullptr) return nullptr;
  const auto it = impl->methods.find(method);
  return it == impl->methods.end() ? nullptr : &it->second;
}

bool class_exists(const std::string& cls) {
  return ClassRegistry::instance().find(cls) != nullptr;
}

}  // namespace cpy
