#include "model/dclass.hpp"

#include <map>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace cpy {

namespace {

struct ClassImpl {
  // std::map: node-based, so MethodDef addresses stay stable.
  std::map<std::string, MethodDef> methods;
};

struct ClassRegistry {
  std::mutex mutex;
  std::unordered_map<std::string, std::unique_ptr<ClassImpl>> classes;

  static ClassRegistry& instance() {
    static ClassRegistry r;
    return r;
  }

  ClassImpl& get_or_create(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex);
    auto& slot = classes[name];
    if (!slot) slot = std::make_unique<ClassImpl>();
    return *slot;
  }

  ClassImpl* find(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = classes.find(name);
    return it == classes.end() ? nullptr : it->second.get();
  }
};

}  // namespace

DClass::DClass(std::string name) : name_(std::move(name)) {
  ClassRegistry::instance().get_or_create(name_);
}

DClass& DClass::def(const std::string& method,
                    std::vector<std::string> params, MethodFn fn) {
  auto& impl = ClassRegistry::instance().get_or_create(name_);
  MethodDef& d = impl.methods[method];
  d.name = method;
  d.params = std::move(params);
  d.fn = std::move(fn);
  return *this;
}

DClass& DClass::def_threaded(const std::string& method,
                             std::vector<std::string> params, MethodFn fn) {
  def(method, std::move(params), std::move(fn));
  auto& impl = ClassRegistry::instance().get_or_create(name_);
  impl.methods[method].threaded = true;
  return *this;
}

namespace {

/// Dependency sets of replaced when-conditions. Buffered messages hold
/// raw pointers into their condition's deps; redefining a condition
/// must keep the old set alive until the (epoch-triggered) rebucket.
std::vector<std::shared_ptr<const cx::WhenDeps>>& retired_deps() {
  static auto* v = new std::vector<std::shared_ptr<const cx::WhenDeps>>();
  return *v;
}

}  // namespace

DClass& DClass::when(const std::string& method,
                     const std::string& condition) {
  auto& impl = ClassRegistry::instance().get_or_create(name_);
  const auto it = impl.methods.find(method);
  if (it == impl.methods.end()) {
    throw std::logic_error("when('" + condition + "'): class " + name_ +
                           " has no method " + method +
                           " (define it first)");
  }
  // Shared compile cache: @when and wait_until sites with the same
  // source string reuse one AST + dependency set.
  const Expr& compiled = Expr::compile_cached(condition);
  MethodDef& d = it->second;
  if (d.has_when && d.when_deps != nullptr && d.when_deps != compiled.deps()) {
    retired_deps().push_back(d.when_deps);
  }
  d.when_cond = compiled;
  d.has_when = true;
  d.when_deps = compiled.deps();
  // Condition (re)definition can change which buffered messages are
  // eligible without any chare state changing.
  cx::bump_when_config_epoch();
  return *this;
}

const MethodDef* find_method(const std::string& cls,
                             const std::string& method) {
  ClassImpl* impl = ClassRegistry::instance().find(cls);
  if (impl == nullptr) return nullptr;
  const auto it = impl->methods.find(method);
  return it == impl->methods.end() ? nullptr : &it->second;
}

bool class_exists(const std::string& cls) {
  return ClassRegistry::instance().find(cls) != nullptr;
}

}  // namespace cpy
