#include "model/expr.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace cpy {

namespace {

enum class Tok {
  End,
  Number,
  String,
  Ident,
  Dot,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
  Not,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;
  double num = 0.0;
  bool is_int = false;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& s) : s_(s) {}

  Token next() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
    Token t;
    t.pos = i_;
    if (i_ >= s_.size()) return t;
    const char c = s_[i_];
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i_ + 1 < s_.size() &&
         std::isdigit(static_cast<unsigned char>(s_[i_ + 1])))) {
      return lex_number();
    }
    if (c == '\'' || c == '"') return lex_string(c);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return lex_ident();
    }
    ++i_;
    switch (c) {
      case '.': t.kind = Tok::Dot; return t;
      case '(': t.kind = Tok::LParen; return t;
      case ')': t.kind = Tok::RParen; return t;
      case '[': t.kind = Tok::LBracket; return t;
      case ']': t.kind = Tok::RBracket; return t;
      case ',': t.kind = Tok::Comma; return t;
      case '+': t.kind = Tok::Plus; return t;
      case '-': t.kind = Tok::Minus; return t;
      case '*': t.kind = Tok::Star; return t;
      case '/': t.kind = Tok::Slash; return t;
      case '%': t.kind = Tok::Percent; return t;
      case '=':
        if (take('=')) {
          t.kind = Tok::Eq;
          return t;
        }
        fail(t.pos, "'=' is not a condition operator (use '==')");
      case '!':
        if (take('=')) {
          t.kind = Tok::Ne;
          return t;
        }
        fail(t.pos, "unexpected '!'");
      case '<':
        t.kind = take('=') ? Tok::Le : Tok::Lt;
        return t;
      case '>':
        t.kind = take('=') ? Tok::Ge : Tok::Gt;
        return t;
      default: fail(t.pos, std::string("unexpected character '") + c + "'");
    }
  }

  [[noreturn]] static void fail(std::size_t pos, const std::string& what) {
    throw std::runtime_error("condition syntax error at position " +
                             std::to_string(pos) + ": " + what);
  }

 private:
  bool take(char c) {
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  Token lex_number() {
    Token t;
    t.pos = i_;
    const std::size_t start = i_;
    bool is_int = true;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
            s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
            ((s_[i_] == '+' || s_[i_] == '-') && i_ > start &&
             (s_[i_ - 1] == 'e' || s_[i_ - 1] == 'E')))) {
      if (!std::isdigit(static_cast<unsigned char>(s_[i_]))) is_int = false;
      ++i_;
    }
    t.kind = Tok::Number;
    t.text = s_.substr(start, i_ - start);
    t.num = std::strtod(t.text.c_str(), nullptr);
    t.is_int = is_int;
    return t;
  }

  Token lex_string(char quote) {
    Token t;
    t.pos = i_;
    ++i_;  // opening quote
    const std::size_t start = i_;
    while (i_ < s_.size() && s_[i_] != quote) ++i_;
    if (i_ >= s_.size()) fail(t.pos, "unterminated string literal");
    t.kind = Tok::String;
    t.text = s_.substr(start, i_ - start);
    ++i_;  // closing quote
    return t;
  }

  Token lex_ident() {
    Token t;
    t.pos = i_;
    const std::size_t start = i_;
    while (i_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[i_])) ||
            s_[i_] == '_')) {
      ++i_;
    }
    t.text = s_.substr(start, i_ - start);
    if (t.text == "and") t.kind = Tok::And;
    else if (t.text == "or") t.kind = Tok::Or;
    else if (t.text == "not") t.kind = Tok::Not;
    else t.kind = Tok::Ident;
    return t;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

enum class Op {
  Const,
  Name,
  SelfAttr,  // folded self.<name>: direct attribute-dict lookup
  Attr,
  Index,
  Call,
  And,
  Or,
  Not,
  Neg,
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  CmpChain,  // a OP b OP c ... (Python chained comparison)
};

}  // namespace

struct Expr::Node {
  Op op = Op::Const;
  Value lit;
  std::string name;  // Name / SelfAttr / Attr member / Call function
  std::shared_ptr<const Node> a, b;
  std::vector<std::shared_ptr<const Node>> args;  // Call args / chain operands
  std::vector<Op> cmps;  // CmpChain comparators (args.size() - 1 of them)
};

namespace {

using NodePtr = std::shared_ptr<const Expr::Node>;
using Node = Expr::Node;

NodePtr mk(Op op) {
  auto n = std::make_shared<Node>();
  n->op = op;
  return n;
}

class Parser {
 public:
  explicit Parser(const std::string& s) : lex_(s) { advance(); }

  NodePtr parse() {
    NodePtr e = or_expr();
    if (cur_.kind != Tok::End) {
      Lexer::fail(cur_.pos, "trailing input");
    }
    return e;
  }

 private:
  void advance() { cur_ = lex_.next(); }

  bool accept(Tok k) {
    if (cur_.kind == k) {
      advance();
      return true;
    }
    return false;
  }

  void expect(Tok k, const char* what) {
    if (!accept(k)) Lexer::fail(cur_.pos, std::string("expected ") + what);
  }

  NodePtr or_expr() {
    NodePtr a = and_expr();
    while (cur_.kind == Tok::Or) {
      advance();
      auto n = std::make_shared<Node>();
      n->op = Op::Or;
      n->a = a;
      n->b = and_expr();
      a = n;
    }
    return a;
  }

  NodePtr and_expr() {
    NodePtr a = not_expr();
    while (cur_.kind == Tok::And) {
      advance();
      auto n = std::make_shared<Node>();
      n->op = Op::And;
      n->a = a;
      n->b = not_expr();
      a = n;
    }
    return a;
  }

  NodePtr not_expr() {
    if (accept(Tok::Not)) {
      auto n = std::make_shared<Node>();
      n->op = Op::Not;
      n->a = not_expr();
      return n;
    }
    return comparison();
  }

  static bool cmp_tok(Tok k, Op& op) {
    switch (k) {
      case Tok::Eq: op = Op::Eq; return true;
      case Tok::Ne: op = Op::Ne; return true;
      case Tok::Lt: op = Op::Lt; return true;
      case Tok::Le: op = Op::Le; return true;
      case Tok::Gt: op = Op::Gt; return true;
      case Tok::Ge: op = Op::Ge; return true;
      default: return false;
    }
  }

  NodePtr comparison() {
    NodePtr a = arith();
    Op op;
    if (!cmp_tok(cur_.kind, op)) return a;
    advance();
    NodePtr b = arith();
    Op op2;
    if (!cmp_tok(cur_.kind, op2)) {
      auto n = std::make_shared<Node>();
      n->op = op;
      n->a = a;
      n->b = b;
      return n;
    }
    // Python chained comparison: `a < b <= c` means `a < b and b <= c`,
    // with each operand evaluated exactly once, left to right.
    auto n = std::make_shared<Node>();
    n->op = Op::CmpChain;
    n->args.push_back(a);
    n->args.push_back(b);
    n->cmps.push_back(op);
    while (cmp_tok(cur_.kind, op2)) {
      advance();
      n->cmps.push_back(op2);
      n->args.push_back(arith());
    }
    return n;
  }

  NodePtr arith() {
    NodePtr a = term();
    for (;;) {
      Op op;
      if (cur_.kind == Tok::Plus) op = Op::Add;
      else if (cur_.kind == Tok::Minus) op = Op::Sub;
      else return a;
      advance();
      auto n = std::make_shared<Node>();
      n->op = op;
      n->a = a;
      n->b = term();
      a = n;
    }
  }

  NodePtr term() {
    NodePtr a = unary();
    for (;;) {
      Op op;
      if (cur_.kind == Tok::Star) op = Op::Mul;
      else if (cur_.kind == Tok::Slash) op = Op::Div;
      else if (cur_.kind == Tok::Percent) op = Op::Mod;
      else return a;
      advance();
      auto n = std::make_shared<Node>();
      n->op = op;
      n->a = a;
      n->b = unary();
      a = n;
    }
  }

  NodePtr unary() {
    if (accept(Tok::Minus)) {
      auto n = std::make_shared<Node>();
      n->op = Op::Neg;
      n->a = unary();
      return n;
    }
    return postfix();
  }

  NodePtr postfix() {
    NodePtr a = primary();
    for (;;) {
      if (accept(Tok::Dot)) {
        if (cur_.kind != Tok::Ident) {
          Lexer::fail(cur_.pos, "attribute name after '.'");
        }
        auto n = std::make_shared<Node>();
        if (a->op == Op::Name && a->name == "self") {
          // Fold `self.x` into one node: a direct dict lookup at eval
          // time, and the unit of dependency extraction.
          n->op = Op::SelfAttr;
          n->name = cur_.text;
        } else {
          n->op = Op::Attr;
          n->name = cur_.text;
          n->a = a;
        }
        advance();
        a = n;
      } else if (accept(Tok::LBracket)) {
        auto n = std::make_shared<Node>();
        n->op = Op::Index;
        n->a = a;
        n->b = or_expr();
        expect(Tok::RBracket, "']'");
        a = n;
      } else if (cur_.kind == Tok::LParen && a->op == Op::Name) {
        advance();
        auto n = std::make_shared<Node>();
        n->op = Op::Call;
        n->name = a->name;
        if (cur_.kind != Tok::RParen) {
          n->args.push_back(or_expr());
          while (accept(Tok::Comma)) n->args.push_back(or_expr());
        }
        expect(Tok::RParen, "')'");
        a = n;
      } else {
        return a;
      }
    }
  }

  NodePtr primary() {
    if (cur_.kind == Tok::Number) {
      auto n = mk(Op::Const);
      auto m = std::const_pointer_cast<Node>(n);
      m->lit = cur_.is_int
                   ? Value(static_cast<std::int64_t>(cur_.num))
                   : Value(cur_.num);
      advance();
      return n;
    }
    if (cur_.kind == Tok::String) {
      auto n = mk(Op::Const);
      std::const_pointer_cast<Node>(n)->lit = Value(cur_.text);
      advance();
      return n;
    }
    if (cur_.kind == Tok::Ident) {
      auto n = std::make_shared<Node>();
      if (cur_.text == "True") {
        n->op = Op::Const;
        n->lit = Value(true);
      } else if (cur_.text == "False") {
        n->op = Op::Const;
        n->lit = Value(false);
      } else if (cur_.text == "None") {
        n->op = Op::Const;
        n->lit = Value::none();
      } else {
        n->op = Op::Name;
        n->name = cur_.text;
      }
      advance();
      return n;
    }
    if (accept(Tok::LParen)) {
      NodePtr e = or_expr();
      expect(Tok::RParen, "')'");
      return e;
    }
    Lexer::fail(cur_.pos, "expected an expression");
  }

  Lexer lex_;
  Token cur_;
};

// ---------------------------------------------------------------------------
// Evaluation

bool both_int(const Value& a, const Value& b) {
  return (a.kind() == Kind::Int || a.kind() == Kind::Bool) &&
         (b.kind() == Kind::Int || b.kind() == Kind::Bool);
}

Value arith_op(Op op, const Value& a, const Value& b) {
  if (op == Op::Add && a.kind() == Kind::Str && b.kind() == Kind::Str) {
    return Value(a.as_str() + b.as_str());
  }
  if (op == Op::Div) {
    return Value(a.as_real() / b.as_real());  // Python 3 true division
  }
  if (both_int(a, b)) {
    const std::int64_t x = a.as_int();
    const std::int64_t y = b.as_int();
    switch (op) {
      case Op::Add: return Value(x + y);
      case Op::Sub: return Value(x - y);
      case Op::Mul: return Value(x * y);
      case Op::Mod: {
        if (y == 0) throw std::runtime_error("ZeroDivisionError");
        std::int64_t m = x % y;  // Python-style: result has sign of divisor
        if (m != 0 && ((m < 0) != (y < 0))) m += y;
        return Value(m);
      }
      default: break;
    }
  }
  const double x = a.as_real();
  const double y = b.as_real();
  switch (op) {
    case Op::Add: return Value(x + y);
    case Op::Sub: return Value(x - y);
    case Op::Mul: return Value(x * y);
    case Op::Mod: return Value(x - y * std::floor(x / y));
    default: break;
  }
  throw std::logic_error("expr: bad arithmetic op");
}

bool cmp_holds(Op op, const Value& a, const Value& b) {
  switch (op) {
    case Op::Eq: return a.equals(b);
    case Op::Ne: return !a.equals(b);
    case Op::Lt: return a.compare(b) < 0;
    case Op::Le: return a.compare(b) <= 0;
    case Op::Gt: return a.compare(b) > 0;
    case Op::Ge: return a.compare(b) >= 0;
    default: throw std::logic_error("expr: bad comparison op");
  }
}

Value resolve_name(const EvalCtx& ctx, const std::string& name) {
  if (ctx.self != nullptr && name == "self") return *ctx.self;
  if (ctx.params != nullptr && ctx.args != nullptr) {
    const auto& ps = *ctx.params;
    for (std::size_t i = 0; i < ps.size() && i < ctx.args->size(); ++i) {
      if (ps[i] == name) return (*ctx.args)[i];
    }
  }
  if (ctx.fallback != nullptr) return (*ctx.fallback)(name);
  throw std::runtime_error("NameError: name '" + name +
                           "' is not defined in this condition");
}

Value self_attr(const EvalCtx& ctx, const std::string& name) {
  if (ctx.self != nullptr && ctx.self->kind() == Kind::Dict) {
    // Fast path: keyed lookup in the attribute dict, no Value boxing.
    const Dict& d = ctx.self->as_dict();
    const auto it = d.find(name);
    if (it != d.end()) return it->second;
    return ctx.self->item(Value(name));  // canonical KeyError
  }
  return resolve_name(ctx, "self").item(Value(name));
}

Value eval_node(const Node& n, const EvalCtx& ctx) {
  switch (n.op) {
    case Op::Const: return n.lit;
    case Op::Name: return resolve_name(ctx, n.name);
    case Op::SelfAttr: return self_attr(ctx, n.name);
    case Op::Attr: {
      const Value base = eval_node(*n.a, ctx);
      return base.item(Value(n.name));
    }
    case Op::Index: {
      const Value base = eval_node(*n.a, ctx);
      return base.item(eval_node(*n.b, ctx));
    }
    case Op::Call: {
      std::vector<Value> args;
      args.reserve(n.args.size());
      for (const auto& a : n.args) args.push_back(eval_node(*a, ctx));
      if (n.name == "len" && args.size() == 1) {
        return Value(static_cast<std::int64_t>(args[0].length()));
      }
      if (n.name == "abs" && args.size() == 1) {
        if (args[0].kind() == Kind::Int) {
          return Value(std::abs(args[0].as_int()));
        }
        return Value(std::fabs(args[0].as_real()));
      }
      if (n.name == "min" && args.size() == 2) {
        return args[0].compare(args[1]) <= 0 ? args[0] : args[1];
      }
      if (n.name == "max" && args.size() == 2) {
        return args[0].compare(args[1]) >= 0 ? args[0] : args[1];
      }
      throw std::runtime_error("NameError: unknown function '" + n.name +
                               "' (or wrong arity)");
    }
    case Op::And: {
      const Value a = eval_node(*n.a, ctx);
      if (!a.truthy()) return a;  // short circuit, Python semantics
      return eval_node(*n.b, ctx);
    }
    case Op::Or: {
      const Value a = eval_node(*n.a, ctx);
      if (a.truthy()) return a;
      return eval_node(*n.b, ctx);
    }
    case Op::Not: return Value(!eval_node(*n.a, ctx).truthy());
    case Op::Neg: {
      const Value a = eval_node(*n.a, ctx);
      if (a.kind() == Kind::Int) return Value(-a.as_int());
      return Value(-a.as_real());
    }
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Div:
    case Op::Mod:
      return arith_op(n.op, eval_node(*n.a, ctx), eval_node(*n.b, ctx));
    case Op::Eq:
    case Op::Ne:
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge:
      return Value(
          cmp_holds(n.op, eval_node(*n.a, ctx), eval_node(*n.b, ctx)));
    case Op::CmpChain: {
      // Python chained comparison: operands evaluated once, left to
      // right; stop at the first failing link (later operands are not
      // evaluated at all).
      Value left = eval_node(*n.args[0], ctx);
      for (std::size_t i = 0; i < n.cmps.size(); ++i) {
        Value right = eval_node(*n.args[i + 1], ctx);
        if (!cmp_holds(n.cmps[i], left, right)) return Value(false);
        left = std::move(right);
      }
      return Value(true);
    }
  }
  throw std::logic_error("expr: bad node");
}

/// Collect the `self.<attr>` reads of an AST; `opaque` is set when the
/// reads cannot be bounded (bare `self` outside an attribute fold, e.g.
/// `self['x']` or `len(self)`).
void collect_deps(const Node& n, cx::WhenDeps& deps, bool& opaque) {
  if (n.op == Op::SelfAttr) {
    deps.add(cx::attr_key(n.name));
  } else if (n.op == Op::Name && n.name == "self") {
    opaque = true;
  }
  if (n.a) collect_deps(*n.a, deps, opaque);
  if (n.b) collect_deps(*n.b, deps, opaque);
  for (const auto& a : n.args) collect_deps(*a, deps, opaque);
}

}  // namespace

Expr Expr::compile(const std::string& source) {
  Parser p(source);
  Expr e;
  e.root_ = p.parse();
  e.src_ = source;
  cx::WhenDeps d;
  bool opaque = false;
  collect_deps(*e.root_, d, opaque);
  d.known = !opaque;
  e.deps_ = std::make_shared<const cx::WhenDeps>(std::move(d));
  return e;
}

namespace {

struct CompileCache {
  std::mutex mutex;
  // Node-based map: Expr addresses stay stable across inserts, so
  // compile_cached can hand out references.
  std::unordered_map<std::string, Expr> exprs;

  static CompileCache& instance() {
    static auto* c = new CompileCache();  // leaked: callers keep refs
    return *c;
  }
};

}  // namespace

const Expr& Expr::compile_cached(const std::string& source) {
  auto& c = CompileCache::instance();
  std::lock_guard<std::mutex> lock(c.mutex);
  const auto it = c.exprs.find(source);
  if (it != c.exprs.end()) return it->second;
  return c.exprs.emplace(source, compile(source)).first->second;
}

std::size_t Expr::compile_cache_size() {
  auto& c = CompileCache::instance();
  std::lock_guard<std::mutex> lock(c.mutex);
  return c.exprs.size();
}

Value Expr::eval(const EvalCtx& ctx) const {
  if (!root_) throw std::logic_error("evaluating an empty Expr");
  return eval_node(*root_, ctx);
}

Value Expr::eval(const NameResolver& names) const {
  EvalCtx ctx;
  ctx.fallback = &names;
  return eval(ctx);
}

NameResolver make_resolver(const Value& self_attrs,
                           const std::vector<std::string>& param_names,
                           const Args& args) {
  return [&self_attrs, &param_names, &args](const std::string& name) {
    if (name == "self") return self_attrs;
    for (std::size_t i = 0; i < param_names.size() && i < args.size(); ++i) {
      if (param_names[i] == name) return args[i];
    }
    throw std::runtime_error("NameError: name '" + name +
                             "' is not defined in this condition");
  };
}

}  // namespace cpy
