#include "model/dchare.hpp"

#include <atomic>
#include <functional>
#include <stdexcept>

#include "model/reducers.hpp"
#include "trace/trace.hpp"

namespace cpy {

namespace {

std::atomic<double> g_dispatch_overhead{0.0};

/// Shared when-predicate for both dyn_call entry methods: evaluate the
/// target method's compiled condition against self attributes and named
/// arguments (paper §II-E). Hot path: method resolution goes through the
/// instance cache and evaluation through the non-allocating EvalCtx (no
/// std::function resolver per test).
bool dyn_when(DChare& self, const std::string& method, const Args& args) {
  const MethodDef* def = self.find_method_cached(method);
  if (def == nullptr || !def->has_when) return true;
  EvalCtx ctx;
  ctx.self = &self.attrs();
  ctx.params = &def->params;
  ctx.args = &args;
  return def->when_cond.test(ctx);
}

/// Per-message dependency extractor: the condition deps of the message's
/// target method, so the delivery engine can skip re-testing buffered
/// messages whose `self.<attr>` reads did not change.
const cx::WhenDeps* dyn_when_deps(DChare& self, const std::string& method,
                                  const Args& /*args*/) {
  const MethodDef* def = self.find_method_cached(method);
  if (def == nullptr || !def->has_when) return nullptr;
  return def->when_deps.get();
}

/// One-time glue: install the when predicate, its dependency extractor
/// and the threaded flag on the universal entry methods.
struct DynGlue {
  DynGlue() {
    auto pred = [](DChare& c, const std::string& m, const Args& a) {
      return dyn_when(c, m, a);
    };
    auto deps = [](DChare& c, const std::string& m, const Args& a) {
      return dyn_when_deps(c, m, a);
    };
    cx::set_when<&DChare::dyn_call>(pred);
    cx::set_when<&DChare::dyn_call_threaded>(pred);
    cx::set_when_deps_fn<&DChare::dyn_call>(deps);
    cx::set_when_deps_fn<&DChare::dyn_call_threaded>(deps);
    cx::set_threaded<&DChare::dyn_call_threaded>();
  }
};
const DynGlue glue;

Value index_value(const cx::Index& idx) {
  List items;
  for (int i = 0; i < idx.ndims(); ++i) {
    items.emplace_back(static_cast<std::int64_t>(idx[i]));
  }
  return Value::tuple(std::move(items));
}

}  // namespace

DChare::DChare(std::string cls, Args ctor_args) : cls_(std::move(cls)) {
  if (!class_exists(cls_)) {
    throw std::runtime_error("NameError: dynamic class '" + cls_ +
                             "' is not registered");
  }
  (*this)["thisIndex"] = index_value(this_index());
  if (const MethodDef* init = find_method(cls_, "__init__")) {
    init->fn(*this, ctor_args);
  }
}

Value DChare::dyn_call(std::string method, Args args) {
  cx::charge(g_dispatch_overhead.load(std::memory_order_relaxed));
  CX_TRACE_EVENT(cx::my_pe(), cx::now(),
                 cx::trace::EventKind::DynDispatch,
                 std::hash<std::string>{}(method), 0);
  const MethodDef& def = resolve(method);
  return def.fn(*this, args);
}

Value DChare::dyn_call_threaded(std::string method, Args args) {
  return dyn_call(std::move(method), std::move(args));
}

void DChare::dyn_result(std::pair<std::string, Value> tagged) {
  Args args;
  args.push_back(std::move(tagged.second));
  (void)dyn_call(std::move(tagged.first), std::move(args));
}

Value& DChare::operator[](const std::string& name) {
  // Every access through the attribute operator may be a write (it
  // returns a mutable reference), so conservatively mark the attribute
  // dirty for the when-condition engine. Condition evaluation itself
  // reads the dict directly (EvalCtx) and does not mark.
  mark_when_dirty(cx::attr_key(name));
  return attrs_.as_dict()[name];
}

const MethodDef* DChare::find_method_cached(const std::string& method) const {
  const auto it = method_cache_.find(method);
  if (it != method_cache_.end()) return it->second;
  const MethodDef* def = find_method(cls_, method);
  if (def != nullptr) method_cache_.emplace(method, def);
  return def;
}

bool DChare::has_attr(const std::string& name) const {
  return attrs_.as_dict().count(name) != 0;
}

void DChare::pup(pup::Er& p) {
  p | cls_;
  attrs_.pup(p);
}

void DChare::resume_from_sync() {
  if (find_method(cls_, "resumeFromSync") != nullptr) {
    Args none;
    (void)dyn_call("resumeFromSync", std::move(none));
  }
}

void DChare::wait_until(const std::string& condition) {
  // Compiled through the global source-string cache (shared with @when
  // conditions): repeated wait sites evaluate a shared AST instead of
  // re-parsing per call.
  const Expr expr = Expr::compile_cached(condition);
  wait([this, expr]() {
    EvalCtx ctx;
    ctx.self = &attrs_;
    return expr.test(ctx);
  });
}

void DChare::contribute_value(const Value& data, const std::string& reducer,
                              const DTarget& target) {
  if (target.wrap_method) {
    std::pair<std::string, Value> tagged(target.method, data);
    cx::detail::contribute_bytes(*this, pup::to_bytes(tagged),
                                 tagged_combiner(reducer), target.raw);
  } else {
    Value copy = data;
    cx::detail::contribute_bytes(*this, pup::to_bytes(copy),
                                 value_combiner(reducer), target.raw);
  }
}

void DChare::set_sim_dispatch_overhead(double seconds) noexcept {
  g_dispatch_overhead.store(seconds, std::memory_order_relaxed);
}

double DChare::sim_dispatch_overhead() noexcept {
  return g_dispatch_overhead.load(std::memory_order_relaxed);
}

const MethodDef& DChare::resolve(const std::string& method) const {
  const MethodDef* def = find_method_cached(method);
  if (def == nullptr) {
    throw std::runtime_error("AttributeError: class '" + cls_ +
                             "' has no method '" + method + "'");
  }
  return *def;
}

}  // namespace cpy
