#include "model/dist_array.hpp"

#include <algorithm>
#include <stdexcept>

namespace cpy {

namespace {

// Chunk i holds global indexes [i*n/chunks, (i+1)*n/chunks).
std::int64_t chunk_lo(std::int64_t n, int chunks, int i) {
  return static_cast<std::int64_t>(i) * n / chunks;
}

void register_chunk_class() {
  static const bool once = [] {
    DClass cls("cpy.ArrayChunk");

    cls.def("__init__", {"n", "chunks"}, [](DChare& self, Args& a) {
      const std::int64_t n = a[0].as_int();
      const int chunks = static_cast<int>(a[1].as_int());
      const int me = static_cast<int>(
          self["thisIndex"].item(Value(0)).as_int());
      self["n"] = a[0];
      self["chunks"] = a[1];
      self["lo"] = Value(chunk_lo(n, chunks, me));
      const auto len = static_cast<std::uint64_t>(
          chunk_lo(n, chunks, me + 1) - chunk_lo(n, chunks, me));
      self["data"] = Value::zeros(len);
      return Value::none();
    });

    cls.def("fill", {"v"}, [](DChare& self, Args& a) {
      auto& d = self["data"].as_f64_array()->data;
      std::fill(d.begin(), d.end(), a[0].as_real());
      return Value::none();
    });

    cls.def("iota", {}, [](DChare& self, Args&) {
      auto& d = self["data"].as_f64_array()->data;
      const double lo = self["lo"].as_real();
      for (std::size_t i = 0; i < d.size(); ++i) {
        d[i] = lo + static_cast<double>(i);
      }
      return Value::none();
    });

    cls.def("scale", {"a"}, [](DChare& self, Args& a) {
      auto& d = self["data"].as_f64_array()->data;
      const double s = a[0].as_real();
      for (auto& x : d) x *= s;
      return Value::none();
    });

    // this += alpha * other: ask the peer chunk for its block, then
    // apply it on arrival (two dynamic methods, fully asynchronous).
    cls.def("axpy_request", {"peer", "alpha", "done"},
            [](DChare& self, Args& a) {
              auto peer = collection_from(a[0]);
              peer[self.this_index()].send(
                  "axpy_serve", {to_value(proxy_of(self)), a[1], a[2]});
              return Value::none();
            });
    cls.def("axpy_serve", {"requester", "alpha", "done"},
            [](DChare& self, Args& a) {
              element_from(a[0]).send("axpy_apply",
                                      {self["data"], a[1], a[2]});
              return Value::none();
            });
    cls.def("axpy_apply", {"block", "alpha", "done"},
            [](DChare& self, Args& a) {
              auto& d = self["data"].as_f64_array()->data;
              const auto& o = a[0].as_f64_array()->data;
              if (o.size() != d.size()) {
                throw std::runtime_error(
                    "DistArray: chunking mismatch in axpy");
              }
              const double alpha = a[1].as_real();
              for (std::size_t i = 0; i < d.size(); ++i) {
                d[i] += alpha * o[i];
              }
              self.barrier(DTarget::to_future(future_from(a[2]).slot()));
              return Value::none();
            });

    cls.def("reduce_sum", {"target"}, [](DChare& self, Args& a) {
      const auto& d = self["data"].as_f64_array()->data;
      double s = 0;
      for (double x : d) s += x;
      self.contribute_value(Value(s), "sum",
                            DTarget::to_future(future_from(a[0]).slot()));
      return Value::none();
    });
    cls.def("reduce_min", {"target"}, [](DChare& self, Args& a) {
      const auto& d = self["data"].as_f64_array()->data;
      double m = d.empty() ? 0.0 : d[0];
      for (double x : d) m = std::min(m, x);
      self.contribute_value(Value(m), "min",
                            DTarget::to_future(future_from(a[0]).slot()));
      return Value::none();
    });
    cls.def("reduce_max", {"target"}, [](DChare& self, Args& a) {
      const auto& d = self["data"].as_f64_array()->data;
      double m = d.empty() ? 0.0 : d[0];
      for (double x : d) m = std::max(m, x);
      self.contribute_value(Value(m), "max",
                            DTarget::to_future(future_from(a[0]).slot()));
      return Value::none();
    });

    // dot: pull the peer's block, multiply locally, reduce the partials.
    cls.def("dot_request", {"peer", "target"}, [](DChare& self, Args& a) {
      auto peer = collection_from(a[0]);
      peer[self.this_index()].send("dot_serve",
                                   {to_value(proxy_of(self)), a[1]});
      return Value::none();
    });
    cls.def("dot_serve", {"requester", "target"},
            [](DChare& self, Args& a) {
              element_from(a[0]).send("dot_apply", {self["data"], a[1]});
              return Value::none();
            });
    cls.def("dot_apply", {"block", "target"}, [](DChare& self, Args& a) {
      const auto& d = self["data"].as_f64_array()->data;
      const auto& o = a[0].as_f64_array()->data;
      if (o.size() != d.size()) {
        throw std::runtime_error("DistArray: chunking mismatch in dot");
      }
      double s = 0;
      for (std::size_t i = 0; i < d.size(); ++i) s += d[i] * o[i];
      self.contribute_value(Value(s), "sum",
                            DTarget::to_future(future_from(a[1]).slot()));
      return Value::none();
    });

    cls.def("get_at", {"index"}, [](DChare& self, Args& a) {
      const auto& d = self["data"].as_f64_array()->data;
      const auto local =
          static_cast<std::size_t>(a[0].as_int() - self["lo"].as_int());
      return Value(d.at(local));
    });
    cls.def("set_at", {"index", "v"}, [](DChare& self, Args& a) {
      auto& d = self["data"].as_f64_array()->data;
      const auto local =
          static_cast<std::size_t>(a[0].as_int() - self["lo"].as_int());
      d.at(local) = a[1].as_real();
      return Value::none();
    });

    cls.def("noop", {}, [](DChare&, Args&) { return Value::none(); });
    return true;
  }();
  (void)once;
}

}  // namespace

DistArray DistArray::create(std::int64_t n, int chunks) {
  if (n < 0 || chunks < 1) {
    throw std::invalid_argument("DistArray: need n >= 0 and chunks >= 1");
  }
  register_chunk_class();
  DistArray arr;
  arr.n_ = n;
  arr.chunks_ = chunks;
  arr.chunks_proxy_ = create_array("cpy.ArrayChunk", {chunks},
                                   {Value(n), Value(chunks)});
  return arr;
}

void DistArray::fill(double v) const {
  chunks_proxy_.broadcast("fill", {Value(v)});
}

void DistArray::iota() const { chunks_proxy_.broadcast("iota", {}); }

void DistArray::scale(double a) const {
  chunks_proxy_.broadcast("scale", {Value(a)});
}

cx::Future<void> DistArray::add_scaled(const DistArray& other,
                                       double alpha) const {
  if (other.n_ != n_ || other.chunks_ != chunks_) {
    throw std::invalid_argument("DistArray: layouts must match");
  }
  auto done = cx::make_future<Value>();
  chunks_proxy_.broadcast(
      "axpy_request",
      {to_value(other.chunks_proxy_), Value(alpha), to_value(done)});
  return cx::Future<void>(done.slot());
}

cx::Future<Value> DistArray::sum() const {
  auto f = cx::make_future<Value>();
  chunks_proxy_.broadcast("reduce_sum", {to_value(f)});
  return f;
}

cx::Future<Value> DistArray::min() const {
  auto f = cx::make_future<Value>();
  chunks_proxy_.broadcast("reduce_min", {to_value(f)});
  return f;
}

cx::Future<Value> DistArray::max() const {
  auto f = cx::make_future<Value>();
  chunks_proxy_.broadcast("reduce_max", {to_value(f)});
  return f;
}

cx::Future<Value> DistArray::dot(const DistArray& other) const {
  if (other.n_ != n_ || other.chunks_ != chunks_) {
    throw std::invalid_argument("DistArray: layouts must match");
  }
  auto f = cx::make_future<Value>();
  chunks_proxy_.broadcast("dot_request",
                          {to_value(other.chunks_proxy_), to_value(f)});
  return f;
}

namespace {
/// Chunk owning global index j under lo_i = floor(i*n/chunks).
int owner_chunk(std::int64_t j, std::int64_t n, int chunks) {
  int i = static_cast<int>(j * chunks / (n > 0 ? n : 1));
  while (i > 0 && j < chunk_lo(n, chunks, i)) --i;
  while (i + 1 < chunks && j >= chunk_lo(n, chunks, i + 1)) ++i;
  return i;
}
}  // namespace

cx::Future<Value> DistArray::get(std::int64_t index) const {
  const int chunk = owner_chunk(index, n_, chunks_);
  return chunks_proxy_[cx::Index(chunk)].call("get_at", {Value(index)});
}

void DistArray::set(std::int64_t index, double v) const {
  const int chunk = owner_chunk(index, n_, chunks_);
  chunks_proxy_[cx::Index(chunk)].send("set_at", {Value(index), Value(v)});
}

cx::Future<void> DistArray::sync() const {
  return chunks_proxy_.broadcast_done("noop", {});
}

}  // namespace cpy
