#pragma once
// Dynamic proxies and creation functions — the user-facing API of the
// model layer, mirroring the paper's syntax:
//
//   Python (paper)                       C++ (this layer)
//   ------------------------------------ --------------------------------
//   proxy = Chare(MyChare, onPE=-1)      auto p = cpy::create_chare("MyChare", -1, args)
//   proxy = Group(Worker)                auto g = cpy::create_group("Worker", args)
//   proxy = Array(C, (20,20))            auto a = cpy::create_array("C", {20,20}, args)
//   proxy.SayHi('Hello')                 p.send("SayHi", {"Hello"})
//   f = proxy.getValue(ret=True)         auto f = p.call("getValue", {})
//   elem = proxy[index]                  auto e = a[idx]
//   self.contribute(d, R.sum, t)         self.contribute_value(d, "sum", t)

#include <string>
#include <utility>

#include "model/dchare.hpp"

namespace cpy {

class DElement {
 public:
  DElement() = default;
  DElement(cx::ElementProxy<DChare> p, std::string cls)
      : p_(p), cls_(std::move(cls)) {}

  /// Asynchronous invocation by method name; returns immediately.
  void send(const std::string& method, Args args = {}) const {
    if (is_threaded(method)) {
      p_.send<&DChare::dyn_call_threaded>(method, std::move(args));
    } else {
      p_.send<&DChare::dyn_call>(method, std::move(args));
    }
  }

  /// send() with an explicit nominal payload size (modeled-kernel runs).
  void send_sized(const std::string& method, Args args,
                  std::uint64_t nominal_bytes) const {
    if (is_threaded(method)) {
      p_.send_sized<&DChare::dyn_call_threaded>(nominal_bytes, method,
                                                std::move(args));
    } else {
      p_.send_sized<&DChare::dyn_call>(nominal_bytes, method,
                                       std::move(args));
    }
  }

  /// Invocation with a return-value future (paper: ret=True).
  [[nodiscard]] cx::Future<Value> call(const std::string& method,
                                       Args args = {}) const {
    if (is_threaded(method)) {
      return p_.call<&DChare::dyn_call_threaded>(method, std::move(args));
    }
    return p_.call<&DChare::dyn_call>(method, std::move(args));
  }

  /// Reduction target invoking `method` on this element.
  [[nodiscard]] DTarget target(const std::string& method) const {
    DTarget t;
    t.raw = p_.callback<&DChare::dyn_result>();
    t.wrap_method = true;
    t.method = method;
    return t;
  }

  [[nodiscard]] const cx::ElementProxy<DChare>& raw() const noexcept {
    return p_;
  }
  [[nodiscard]] const std::string& dclass() const noexcept { return cls_; }
  [[nodiscard]] const cx::Index& index() const noexcept {
    return p_.index();
  }

  void pup(pup::Er& p) {
    p_.pup(p);
    p | cls_;
  }

 private:
  [[nodiscard]] bool is_threaded(const std::string& method) const {
    const MethodDef* def = find_method(cls_, method);
    return def != nullptr && def->threaded;
  }

  cx::ElementProxy<DChare> p_;
  std::string cls_;
};

class DCollection {
 public:
  DCollection() = default;
  DCollection(cx::CollectionProxy<DChare> p, std::string cls)
      : p_(p), cls_(std::move(cls)) {}

  DElement operator[](const cx::Index& idx) const {
    return DElement(p_[idx], cls_);
  }

  /// Broadcast a method to every member.
  void broadcast(const std::string& method, Args args = {}) const {
    if (is_threaded(method)) {
      p_.broadcast<&DChare::dyn_call_threaded>(method, std::move(args));
    } else {
      p_.broadcast<&DChare::dyn_call>(method, std::move(args));
    }
  }

  /// Broadcast with a completion future (resolves to nothing once every
  /// member executed the method).
  [[nodiscard]] cx::Future<void> broadcast_done(const std::string& method,
                                                Args args = {}) const {
    if (is_threaded(method)) {
      return p_.broadcast_done<&DChare::dyn_call_threaded>(method,
                                                           std::move(args));
    }
    return p_.broadcast_done<&DChare::dyn_call>(method, std::move(args));
  }

  /// Reduction target broadcasting `method` (result goes to all members).
  [[nodiscard]] DTarget target(const std::string& method) const {
    DTarget t;
    t.raw = p_.callback<&DChare::dyn_result>();
    t.wrap_method = true;
    t.method = method;
    return t;
  }

  /// Sparse arrays: insert an element (ckInsert), optionally on a PE.
  void insert(const cx::Index& idx, Args ctor_args = {}) const {
    p_.insert(idx, cls_, std::move(ctor_args));
  }
  void insert_on(int pe, const cx::Index& idx, Args ctor_args = {}) const {
    p_.insert_on(pe, idx, cls_, std::move(ctor_args));
  }
  [[nodiscard]] cx::Future<void> done_inserting() const {
    return p_.done_inserting();
  }

  [[nodiscard]] const cx::CollectionProxy<DChare>& raw() const noexcept {
    return p_;
  }
  [[nodiscard]] const std::string& dclass() const noexcept { return cls_; }

  void pup(pup::Er& p) {
    p_.pup(p);
    p | cls_;
  }

 private:
  [[nodiscard]] bool is_threaded(const std::string& method) const {
    const MethodDef* def = find_method(cls_, method);
    return def != nullptr && def->threaded;
  }

  cx::CollectionProxy<DChare> p_;
  std::string cls_;
};

// ---------------------------------------------------------------------------
// Creation (paper §II-B/C/G)

namespace detail {
inline void require_class(const std::string& cls) {
  // The class registry is process-global, so an unknown name can be
  // rejected synchronously at the creation site (a Python NameError).
  if (!class_exists(cls)) {
    throw std::runtime_error("NameError: dynamic class '" + cls +
                             "' is not registered");
  }
}
}  // namespace detail

inline DElement create_chare(const std::string& cls, int on_pe = -1,
                             Args ctor_args = {}) {
  detail::require_class(cls);
  auto p = cx::create_chare<DChare>(on_pe, cls, std::move(ctor_args));
  return DElement(p, cls);
}

inline DCollection create_group(const std::string& cls,
                                Args ctor_args = {}) {
  detail::require_class(cls);
  auto p = cx::create_group<DChare>(cls, std::move(ctor_args));
  return DCollection(p, cls);
}

inline DCollection create_array(const std::string& cls,
                                const cx::Index& dims, Args ctor_args = {},
                                const std::string& map = "block") {
  detail::require_class(cls);
  cx::ArrayOptions opts;
  opts.map = map;
  auto p = cx::create_array_opts<DChare>(dims, opts, cls,
                                         std::move(ctor_args));
  return DCollection(p, cls);
}

inline DCollection create_sparse_array(const std::string& cls, int ndims,
                                       const std::string& map = "hash") {
  detail::require_class(cls);
  auto p = cx::create_sparse<DChare>(ndims, map);
  return DCollection(p, cls);
}

/// Proxy to the chare currently executing (thisProxy of the paper).
inline DElement proxy_of(const DChare& self) {
  return DElement(
      cx::ElementProxy<DChare>(self.collection(), self.this_index()),
      self.dclass());
}

/// Proxy to the whole collection of the executing chare.
inline DCollection collection_proxy_of(const DChare& self) {
  return DCollection(cx::CollectionProxy<DChare>(self.collection()),
                     self.dclass());
}

/// Reduction target from a future.
inline DTarget to_target(const cx::Future<Value>& f) {
  return DTarget::to_future(f.slot());
}

// ---------------------------------------------------------------------------
// Proxies as Values (paper §II-D: proxies can be passed as arguments).

inline Value to_value(const DElement& e) {
  ProxyRef r;
  r.coll = e.raw().collection();
  r.idx = e.raw().index();
  r.is_element = true;
  r.cls = e.dclass();
  return Value(std::move(r));
}

inline Value to_value(const DCollection& c) {
  ProxyRef r;
  r.coll = c.raw().id();
  r.is_element = false;
  r.cls = c.dclass();
  return Value(std::move(r));
}

inline DElement element_from(const Value& v) {
  const ProxyRef& r = v.as_proxy();
  if (!r.is_element) {
    throw std::runtime_error("TypeError: collection proxy, expected element");
  }
  return DElement(cx::ElementProxy<DChare>(r.coll, r.idx), r.cls);
}

inline DCollection collection_from(const Value& v) {
  const ProxyRef& r = v.as_proxy();
  return DCollection(cx::CollectionProxy<DChare>(r.coll), r.cls);
}

/// Boxed futures: a future travels inside a Value as its packed slot
/// (bytes), so dynamic methods can receive and later fulfill futures —
/// the paper's "futures can be sent to other chares" (§II-H3).
inline Value to_value(const cx::Future<Value>& f) {
  cx::ReplyTo slot = f.slot();
  return Value(pup::to_bytes(slot));
}

inline cx::Future<Value> future_from(const Value& v) {
  return cx::Future<Value>(pup::from_bytes<cx::ReplyTo>(v.as_bytes()));
}

}  // namespace cpy
