#pragma once
// DChare — the dynamic chare of the model layer.
//
// Every dynamic chare is an instance of one C++ class whose behaviour is
// given by its DClass (method table looked up by name) and whose state
// lives in an attribute dict — exactly how Python objects work, which is
// what gives this layer CharmPy's flexibility (a class usable for
// singletons, groups and any array; automatic migration serialization of
// the whole attribute dict; `when`/`wait` conditions evaluated against
// attributes by name).
//
// Inside a method, `self["x"]` reads/writes attributes:
//
//   cls.def("recvData", {"data"}, [](cpy::DChare& self, cpy::Args& a) {
//     self["msg_count"] = self["msg_count"].as_int() + 1;
//     return cpy::Value::none();
//   });

#include <string>
#include <unordered_map>
#include <utility>

#include "core/charm.hpp"
#include "model/dclass.hpp"
#include "model/value.hpp"

namespace cpy {

/// Reduction target: a future, or a (possibly broadcast) entry method.
struct DTarget {
  cx::Callback raw;
  bool wrap_method = false;  ///< value travels as (method, value)
  std::string method;

  static DTarget to_future(const cx::ReplyTo& slot) {
    DTarget t;
    t.raw = cx::Callback::to_future(slot);
    return t;
  }
};

class DChare : public cx::Chare {
 public:
  DChare() = default;  ///< migration path (state arrives via pup)

  /// Construction: binds the instance to its dynamic class and calls
  /// "__init__" with `ctor_args` if defined.
  DChare(std::string cls, Args ctor_args);

  /// Universal entry methods: dispatch by method name. The runtime picks
  /// the threaded variant for methods declared with def_threaded.
  Value dyn_call(std::string method, Args args);
  Value dyn_call_threaded(std::string method, Args args);

  /// Reduction-result delivery: invokes `tagged.first` with the result.
  void dyn_result(std::pair<std::string, Value> tagged);

  // --- state ---------------------------------------------------------------

  /// Attribute access (creates the attribute on write, like Python).
  Value& operator[](const std::string& name);
  [[nodiscard]] bool has_attr(const std::string& name) const;
  /// The whole attribute dict as a Value (shared reference).
  [[nodiscard]] const Value& attrs() const noexcept { return attrs_; }

  [[nodiscard]] const std::string& dclass() const noexcept { return cls_; }

  /// Method lookup through this instance's cache: one global-registry
  /// resolution per method name for the lifetime of the instance
  /// (MethodDef storage is node-based, so the pointers stay valid and
  /// see later redefinitions in place). Returns nullptr if unknown;
  /// misses are not cached, so methods defined later are still found.
  [[nodiscard]] const MethodDef* find_method_cached(
      const std::string& method) const;

  /// Automatic migration serialization: class name + attribute dict.
  void pup(pup::Er& p) override;

  /// Calls the dynamic method "resumeFromSync" after load balancing.
  void resume_from_sync() override;

  // --- services for method bodies -------------------------------------------

  /// Suspend until a condition over `self` holds (threaded methods only).
  /// Paper §II-H2: self.wait('condition').
  void wait_until(const std::string& condition);

  /// Contribute to a reduction (paper §II-F). Reducer names: "sum",
  /// "product", "min", "max", "gather", "concat", or a custom name
  /// registered with add_dyn_reducer.
  void contribute_value(const Value& data, const std::string& reducer,
                        const DTarget& target);

  /// Empty reduction (barrier): data=None, reducer=None of the paper.
  void barrier(const DTarget& target) {
    contribute_value(Value::none(), "none", target);
  }

  /// Re-exposed chare services (protected in cx::Chare).
  void migrate_to(int pe) { migrate(pe); }
  void sync() { at_sync(); }

  /// Per-message overhead charged to the simulated clock by dyn_call,
  /// modeling the interpreter/dispatch cost of the dynamic layer (no-op
  /// on the threaded backend, where the real cost is already paid).
  static void set_sim_dispatch_overhead(double seconds) noexcept;
  static double sim_dispatch_overhead() noexcept;

 private:
  const MethodDef& resolve(const std::string& method) const;

  std::string cls_;
  Value attrs_ = Value::dict({});
  /// Per-instance resolution cache (positive entries only; not pupped —
  /// it repopulates after migration).
  mutable std::unordered_map<std::string, const MethodDef*> method_cache_;
};

}  // namespace cpy
