#pragma once
// Expression engine for `when` / `wait` condition strings (paper §II-E,
// §II-H2). CharmPy evaluates standard Python conditionals like
//
//   "self.iter == iter"        "x + z == self.x"
//   "self.ready"               "self.msg_count == len(self.neighbors)"
//
// against the chare's state and the entry method's arguments. This is the
// C++ rendering: a Pratt parser compiles the condition once into an AST;
// evaluation resolves `self.attr` in the chare's attribute dict and bare
// names in the entry method's named arguments.
//
// Supported grammar: or/and/not; comparisons == != < <= > >=; + - * / %;
// unary -; literals (ints, floats, 'strings', True/False/None); attribute
// access (self.x, nested dicts); indexing a[i]; builtin calls len(), abs(),
// min(,), max(,).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "model/value.hpp"

namespace cpy {

/// Resolves a bare identifier during evaluation ("self" included).
using NameResolver = std::function<Value(const std::string&)>;

class Expr {
 public:
  /// Compile a condition string; throws std::runtime_error on syntax
  /// errors (with position information).
  static Expr compile(const std::string& source);

  // Copies share the immutable AST (cheap shared_ptr copy).
  Expr() = default;

  [[nodiscard]] bool valid() const noexcept { return root_ != nullptr; }

  /// Evaluate to a Value.
  [[nodiscard]] Value eval(const NameResolver& names) const;

  /// Evaluate and apply Python truthiness.
  [[nodiscard]] bool test(const NameResolver& names) const {
    return eval(names).truthy();
  }

  [[nodiscard]] const std::string& source() const noexcept { return src_; }

  struct Node;

 private:
  std::shared_ptr<const Node> root_;
  std::string src_;
};

/// Convenience resolver over a chare attribute dict + named arguments.
/// `self` resolves to the attribute dict; argument names resolve
/// positionally through `param_names`/`args`.
NameResolver make_resolver(const Value& self_attrs,
                           const std::vector<std::string>& param_names,
                           const Args& args);

}  // namespace cpy
