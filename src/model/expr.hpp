#pragma once
// Expression engine for `when` / `wait` condition strings (paper §II-E,
// §II-H2). CharmPy evaluates standard Python conditionals like
//
//   "self.iter == iter"        "x + z == self.x"
//   "self.ready"               "self.msg_count == len(self.neighbors)"
//   "0 <= iter < self.n"       (chained comparison, Python semantics)
//
// against the chare's state and the entry method's arguments. This is the
// C++ rendering: a Pratt parser compiles the condition once into an AST;
// evaluation resolves `self.attr` in the chare's attribute dict and bare
// names in the entry method's named arguments.
//
// Supported grammar: or/and/not; comparisons == != < <= > >= including
// Python chained comparisons (`a < b <= c` evaluates each operand once,
// left to right, short-circuiting on the first failure); + - * / %;
// unary -; literals (ints, floats, 'strings', True/False/None); attribute
// access (self.x, nested dicts); indexing a[i]; builtin calls len(), abs(),
// min(,), max(,).
//
// Each compiled condition also carries the set of `self.<attr>` names it
// reads (cx::WhenDeps), extracted from the AST at compile time. The
// delivery engine uses it to skip re-testing buffered messages whose
// dependencies did not change (see core/when.hpp).

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/when.hpp"
#include "model/value.hpp"

namespace cpy {

/// Resolves a bare identifier during evaluation ("self" included).
using NameResolver = std::function<Value(const std::string&)>;

/// Non-allocating evaluation context — the hot-path alternative to
/// NameResolver (which costs a std::function allocation per test).
/// `self` resolves to the attribute dict; bare names resolve
/// positionally through params/args; `fallback` (optional) handles
/// anything else.
struct EvalCtx {
  const Value* self = nullptr;
  const std::vector<std::string>* params = nullptr;
  const Args* args = nullptr;
  const NameResolver* fallback = nullptr;
};

class Expr {
 public:
  /// Compile a condition string; throws std::runtime_error on syntax
  /// errors (with position information, including trailing unconsumed
  /// input).
  static Expr compile(const std::string& source);

  /// Compile through the global source-string cache (shared by @when
  /// and wait_until call sites; compiling the same string twice returns
  /// the same shared AST).
  static const Expr& compile_cached(const std::string& source);

  /// Number of distinct sources in the compile cache (for tests).
  static std::size_t compile_cache_size();

  // Copies share the immutable AST (cheap shared_ptr copy).
  Expr() = default;

  [[nodiscard]] bool valid() const noexcept { return root_ != nullptr; }

  /// Evaluate to a Value.
  [[nodiscard]] Value eval(const EvalCtx& ctx) const;
  [[nodiscard]] Value eval(const NameResolver& names) const;

  /// Evaluate and apply Python truthiness.
  [[nodiscard]] bool test(const EvalCtx& ctx) const {
    return eval(ctx).truthy();
  }
  [[nodiscard]] bool test(const NameResolver& names) const {
    return eval(names).truthy();
  }

  /// The `self.<attr>` names this condition reads, extracted from the
  /// AST at compile time. `known == false` when the condition uses bare
  /// `self` (computed attribute access) and the reads cannot be bounded.
  /// Null only for a default-constructed Expr.
  [[nodiscard]] const std::shared_ptr<const cx::WhenDeps>& deps()
      const noexcept {
    return deps_;
  }

  [[nodiscard]] const std::string& source() const noexcept { return src_; }

  struct Node;

 private:
  std::shared_ptr<const Node> root_;
  std::shared_ptr<const cx::WhenDeps> deps_;
  std::string src_;
};

/// Convenience resolver over a chare attribute dict + named arguments.
/// `self` resolves to the attribute dict; argument names resolve
/// positionally through `param_names`/`args`.
NameResolver make_resolver(const Value& self_attrs,
                           const std::vector<std::string>& param_names,
                           const Args& args);

}  // namespace cpy
