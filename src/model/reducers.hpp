#pragma once
// Dynamic reducers over cpy::Value (paper §II-F).
//
// Reducers are named; built-ins: "sum", "product", "min", "max",
// "gather", "concat", "first" (and "none" as an alias of "first", used by
// empty/barrier reductions). "sum"/"min"/"max"/"product" operate
// element-wise on numeric arrays and lists — the NumPy behaviour the
// paper relies on ("in many cases data will be a NumPy array").
//
// Custom reducers (paper §II-F1: Reducer.addReducer) fold pairwise:
//   cpy::add_dyn_reducer("longest", [](Value& a, const Value& b) {
//     if (b.length() > a.length()) a = b;
//   });

#include <functional>
#include <string>

#include "core/reduction.hpp"
#include "model/value.hpp"

namespace cpy {

/// Pairwise fold of a contribution into the accumulator.
using DynFold = std::function<void(Value& acc, const Value& x)>;

/// Register a custom reducer under `name`.
void add_dyn_reducer(const std::string& name, DynFold fold);

/// Core combiner id for reducing plain Values (future targets).
cx::CombineId value_combiner(const std::string& name);

/// Core combiner id for reducing (method, Value) pairs — used when the
/// reduction target is an entry method, so the method name travels with
/// the data.
cx::CombineId tagged_combiner(const std::string& name);

}  // namespace cpy
