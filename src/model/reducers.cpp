#include "model/reducers.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace cpy {

namespace {

void fold_numeric(Value& a, const Value& b, double (*op)(double, double),
                  std::int64_t (*iop)(std::int64_t, std::int64_t)) {
  if (a.kind() == Kind::F64Array && b.kind() == Kind::F64Array) {
    auto& xa = *a.as_f64_array();
    const auto& xb = *b.as_f64_array();
    if (xa.size() != xb.size()) {
      throw std::runtime_error("reducer: array length mismatch");
    }
    for (std::size_t i = 0; i < xa.data.size(); ++i) {
      xa.data[i] = op(xa.data[i], xb.data[i]);
    }
    return;
  }
  if (a.kind() == Kind::I64Array && b.kind() == Kind::I64Array) {
    auto& xa = *a.as_i64_array();
    const auto& xb = *b.as_i64_array();
    if (xa.size() != xb.size()) {
      throw std::runtime_error("reducer: array length mismatch");
    }
    for (std::size_t i = 0; i < xa.data.size(); ++i) {
      xa.data[i] = iop(xa.data[i], xb.data[i]);
    }
    return;
  }
  if ((a.kind() == Kind::List || a.kind() == Kind::Tuple) &&
      (b.kind() == Kind::List || b.kind() == Kind::Tuple)) {
    auto& xs = a.as_list();
    const auto& ys = b.as_list();
    if (xs.size() != ys.size()) {
      throw std::runtime_error("reducer: list length mismatch");
    }
    for (std::size_t i = 0; i < xs.size(); ++i) {
      fold_numeric(xs[i], ys[i], op, iop);
    }
    return;
  }
  if (a.kind() == Kind::Int && b.kind() == Kind::Int) {
    a = Value(iop(a.as_int(), b.as_int()));
    return;
  }
  a = Value(op(a.as_real(), b.as_real()));
}

struct DynRegistry {
  std::mutex mutex;
  std::unordered_map<std::string, DynFold> folds;
  std::unordered_map<std::string, cx::CombineId> value_ids;
  std::unordered_map<std::string, cx::CombineId> tagged_ids;

  DynRegistry() {
    folds["sum"] = [](Value& a, const Value& b) {
      fold_numeric(a, b, [](double x, double y) { return x + y; },
                   [](std::int64_t x, std::int64_t y) { return x + y; });
    };
    folds["product"] = [](Value& a, const Value& b) {
      fold_numeric(a, b, [](double x, double y) { return x * y; },
                   [](std::int64_t x, std::int64_t y) { return x * y; });
    };
    folds["min"] = [](Value& a, const Value& b) {
      fold_numeric(a, b, [](double x, double y) { return std::min(x, y); },
                   [](std::int64_t x, std::int64_t y) {
                     return std::min(x, y);
                   });
    };
    folds["max"] = [](Value& a, const Value& b) {
      fold_numeric(a, b, [](double x, double y) { return std::max(x, y); },
                   [](std::int64_t x, std::int64_t y) {
                     return std::max(x, y);
                   });
    };
    // gather: lists of (index, value) tuples merged and kept sorted.
    folds["gather"] = [](Value& a, const Value& b) {
      auto& xs = a.as_list();
      const auto& ys = b.as_list();
      xs.insert(xs.end(), ys.begin(), ys.end());
      std::sort(xs.begin(), xs.end(), [](const Value& p, const Value& q) {
        return p.compare(q) < 0;
      });
    };
    // concat: unordered list concatenation.
    folds["concat"] = [](Value& a, const Value& b) {
      auto& xs = a.as_list();
      const auto& ys = b.as_list();
      xs.insert(xs.end(), ys.begin(), ys.end());
    };
    folds["first"] = [](Value&, const Value&) {};
    folds["none"] = folds["first"];
  }

  static DynRegistry& instance() {
    static DynRegistry r;
    return r;
  }

  /// Register the cx combiners for `name` (both Value and tagged
  /// flavors). Caller holds `mutex`.
  void register_combiners(const std::string& name) {
    const auto it = folds.find(name);
    if (it == folds.end()) {
      throw std::out_of_range("unknown reducer: " + name);
    }
    if (value_ids.count(name) == 0) {
      const DynFold fold = it->second;
      value_ids[name] = cx::add_reducer<Value>(
          [fold](Value& a, const Value& b) { fold(a, b); });
    }
    if (tagged_ids.count(name) == 0) {
      const DynFold fold = it->second;
      using Tagged = std::pair<std::string, Value>;
      tagged_ids[name] = cx::add_reducer<Tagged>(
          [fold](Tagged& a, const Tagged& b) { fold(a.second, b.second); });
    }
  }
};

// Combiner ids travel in reduction fragments, so SocketMachine ranks
// must agree on them. Register the built-in folds' combiners eagerly —
// in a fixed (alphabetical) order, at static init — instead of on first
// use, where the order would depend on which rank's control flow asked
// for which reducer first.
const bool g_builtins_registered = [] {
  auto& r = DynRegistry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const char* name : {"concat", "first", "gather", "max", "min",
                           "none", "product", "sum"}) {
    r.register_combiners(name);
  }
  return true;
}();

}  // namespace

void add_dyn_reducer(const std::string& name, DynFold fold) {
  auto& r = DynRegistry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.folds[name] = std::move(fold);
  // Eager combiner registration: user reducers are added symmetrically
  // on every rank (pre-run application code), so registering here keeps
  // the id assignment identical across processes.
  r.register_combiners(name);
}

cx::CombineId value_combiner(const std::string& name) {
  auto& r = DynRegistry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto cached = r.value_ids.find(name);
  if (cached != r.value_ids.end()) return cached->second;
  r.register_combiners(name);
  return r.value_ids.at(name);
}

cx::CombineId tagged_combiner(const std::string& name) {
  auto& r = DynRegistry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto cached = r.tagged_ids.find(name);
  if (cached != r.tagged_ids.end()) return cached->second;
  r.register_combiners(name);
  return r.tagged_ids.at(name);
}

}  // namespace cpy
