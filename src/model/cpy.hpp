#pragma once
// cpy.hpp — umbrella header for the model layer: the C++ rendering of the
// CharmPy programming model (the paper's contribution), layered on the
// cx:: core runtime exactly as CharmPy layers on Charm++.
//
// See model/dproxy.hpp for the API correspondence table.

#include "model/dchare.hpp"
#include "model/dist_array.hpp"
#include "model/dclass.hpp"
#include "model/dproxy.hpp"
#include "model/expr.hpp"
#include "model/reducers.hpp"
#include "model/value.hpp"
