#pragma once
// DistArray — a distributed 1-D numeric array on the dynamic model layer.
//
// The paper's §VI future work: "higher-level abstractions to distribute
// common Python workflows and data structures like NumPy arrays ... in a
// way that preserves their APIs". This is that abstraction for dense
// double arrays: the data lives in chunk chares (one contiguous block
// each), operations are asynchronous broadcasts/reductions, and element
// access routes to the owning chunk.
//
//   auto a = cpy::DistArray::create(1'000'000, /*chunks=*/64);
//   a.fill(1.5);
//   a.iota();                                  // a[i] = i
//   a.scale(2.0);
//   a.add_scaled(b, 3.0);                      // a += 3 b   (same layout)
//   double s  = a.sum().get().as_real();       // async reduction
//   double d  = a.dot(b).get().as_real();
//   double x  = a.get(123456).get().as_real(); // element read
//
// All mutating calls are asynchronous (message-driven); reductions and
// gets return futures. Operations combining two arrays require identical
// length and chunking (chunks are co-located index-by-index by the
// placement map, so chunk-to-chunk transfers are usually same-PE).

#include <cstdint>

#include "model/dproxy.hpp"

namespace cpy {

class DistArray {
 public:
  DistArray() = default;

  /// Create a zero-initialized array of `n` doubles in `chunks` blocks.
  /// Must run in a threaded context of a live runtime.
  static DistArray create(std::int64_t n, int chunks);

  [[nodiscard]] std::int64_t size() const noexcept { return n_; }
  [[nodiscard]] int chunks() const noexcept { return chunks_; }

  // --- element-wise updates (asynchronous broadcasts) ---
  void fill(double v) const;
  void iota() const;  ///< a[i] = i (global index)
  void scale(double a) const;
  /// this += alpha * other (identical length and chunking required).
  /// The returned future resolves when every chunk has applied the
  /// update (the transfer is a three-hop asynchronous chain).
  cx::Future<void> add_scaled(const DistArray& other, double alpha) const;

  // --- reductions ---
  [[nodiscard]] cx::Future<Value> sum() const;
  [[nodiscard]] cx::Future<Value> min() const;
  [[nodiscard]] cx::Future<Value> max() const;
  /// Inner product with `other` (identical layout required).
  [[nodiscard]] cx::Future<Value> dot(const DistArray& other) const;

  // --- element access ---
  [[nodiscard]] cx::Future<Value> get(std::int64_t index) const;
  void set(std::int64_t index, double v) const;

  /// Barrier: resolves when all previously issued updates on this array
  /// have been executed.
  [[nodiscard]] cx::Future<void> sync() const;

  void pup(pup::Er& p) {
    chunks_proxy_.pup(p);
    p | n_;
    p | chunks_;
  }

 private:
  DCollection chunks_proxy_;
  std::int64_t n_ = 0;
  int chunks_ = 0;
};

}  // namespace cpy
