#include "fiber/fiber.hpp"

#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <cstdlib>
#include <stdexcept>

namespace cxf {

namespace {
thread_local Fiber* t_current = nullptr;
thread_local Fiber* t_starting = nullptr;  // handoff into trampoline

std::size_t page_size() {
  static const std::size_t ps =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return ps;
}

std::size_t round_up_pages(std::size_t n) {
  const std::size_t ps = page_size();
  return (n + ps - 1) / ps * ps;
}
}  // namespace

struct Fiber::Impl {
  ucontext_t ctx{};
  ucontext_t ret_ctx{};  // context to return to on yield/finish
  void* stack = nullptr;
  std::size_t stack_total = 0;  // including guard page
  Fn fn;
};

std::size_t Fiber::default_stack_size() noexcept {
  static const std::size_t sz = [] {
    if (const char* env = std::getenv("CHARMX_FIBER_STACK_KB")) {
      const long kb = std::atol(env);
      if (kb >= 16) return static_cast<std::size_t>(kb) * 1024;
    }
    return static_cast<std::size_t>(256 * 1024);
  }();
  return sz;
}

Fiber::Fiber(Fn fn, std::size_t stack_bytes) : impl_(new Impl) {
  impl_->fn = std::move(fn);
  const std::size_t usable = round_up_pages(stack_bytes);
  const std::size_t total = usable + page_size();  // +1 guard page
  void* mem = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) throw std::bad_alloc();
  // Guard page at the low end (stacks grow down on all targets we support).
  if (::mprotect(mem, page_size(), PROT_NONE) != 0) {
    ::munmap(mem, total);
    throw std::runtime_error("fiber: mprotect guard page failed");
  }
  impl_->stack = mem;
  impl_->stack_total = total;

  if (::getcontext(&impl_->ctx) != 0) {
    throw std::runtime_error("fiber: getcontext failed");
  }
  impl_->ctx.uc_stack.ss_sp = static_cast<char*>(mem) + page_size();
  impl_->ctx.uc_stack.ss_size = usable;
  impl_->ctx.uc_link = nullptr;  // we swap back explicitly in trampoline
  ::makecontext(&impl_->ctx, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                0);
}

Fiber::~Fiber() {
  if (impl_ && impl_->stack) {
    ::munmap(impl_->stack, impl_->stack_total);
  }
}

void Fiber::trampoline() {
  Fiber* self = t_starting;
  t_starting = nullptr;
  self->impl_->fn();
  self->done_ = true;
  // Return to the resumer; this context is never entered again.
  Fiber* prev = t_current;
  t_current = nullptr;
  (void)prev;
  ::swapcontext(&self->impl_->ctx, &self->impl_->ret_ctx);
  // unreachable
}

void Fiber::resume() {
  if (done_) throw std::logic_error("fiber: resume after completion");
  if (t_current != nullptr) {
    throw std::logic_error("fiber: nested resume from inside a fiber");
  }
  t_current = this;
  if (!started_) {
    started_ = true;
    t_starting = this;
  }
  ::swapcontext(&impl_->ret_ctx, &impl_->ctx);
  t_current = nullptr;
}

void Fiber::yield() {
  Fiber* self = t_current;
  if (self == nullptr) {
    throw std::logic_error("fiber: yield outside of a fiber");
  }
  t_current = nullptr;
  ::swapcontext(&self->impl_->ctx, &self->impl_->ret_ctx);
  t_current = self;
}

Fiber* Fiber::current() noexcept { return t_current; }

}  // namespace cxf
