#pragma once
// Cooperative user-level threads (fibers) built on ucontext.
//
// The runtime uses fibers to implement "threaded entry methods": an entry
// method that may suspend (Future::get(), wait(cond), blocking MPI recv)
// runs inside a fiber so the PE scheduler thread can keep delivering other
// messages while it is suspended — the mechanism behind the paper's
// automatic communication/computation overlap in direct-style code.
//
// Fibers are strictly per-OS-thread: a fiber is created, resumed and
// finished on one thread (the PE scheduler), so no synchronization is
// needed inside.

#include <cstddef>
#include <functional>
#include <memory>

namespace cxf {

class Fiber {
 public:
  using Fn = std::function<void()>;

  /// Create a suspended fiber that will run `fn` when first resumed.
  /// `stack_bytes` is rounded up to whole pages; a guard page is added.
  explicit Fiber(Fn fn, std::size_t stack_bytes = default_stack_size());
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switch from the calling (scheduler) context into this fiber.
  /// Returns when the fiber yields or its function returns.
  /// Must not be called from inside another fiber's context on this thread
  /// (no nested resume), and must not be called once done().
  void resume();

  /// True once the fiber's function has returned.
  [[nodiscard]] bool done() const noexcept { return done_; }

  /// Suspend the currently running fiber, returning control to its
  /// resumer. Must be called from within a fiber.
  static void yield();

  /// The fiber currently executing on this thread, or nullptr when the
  /// scheduler (main) context is running.
  static Fiber* current() noexcept;

  /// Default stack size (overridable via CHARMX_FIBER_STACK_KB env var).
  static std::size_t default_stack_size() noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  bool done_ = false;
  bool started_ = false;

  static void trampoline();
};

}  // namespace cxf
