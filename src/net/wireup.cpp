#include "net/wireup.hpp"

#include <arpa/inet.h>
#include <cstring>
#include <netinet/in.h>
#include <stdexcept>

namespace cxnet {

namespace {

constexpr std::size_t kEndpointBytes = 6;  // u32 ip + u16 port

void put_u32(std::byte* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put_u16(std::byte* p, std::uint16_t v) { std::memcpy(p, &v, 2); }
std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint16_t get_u16(const std::byte* p) {
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}

std::string ip_str(std::uint32_t host_order) {
  in_addr a{};
  a.s_addr = htonl(host_order);
  char buf[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &a, buf, sizeof(buf));
  return buf;
}

}  // namespace

void run_root_exchange(int listen_fd, std::uint32_t nranks, std::uint32_t ppn,
                       double timeout_s) {
  Handshake root_view;  // what every rank's hello must agree with
  root_view.nranks = nranks;
  root_view.ppn = ppn;

  std::vector<Fd> conns(nranks);
  std::vector<Endpoint> table(nranks);
  std::vector<bool> seen(nranks, false);
  for (std::uint32_t i = 0; i < nranks; ++i) {
    std::string peer_ip;
    Fd fd = accept_conn(listen_fd, timeout_s, &peer_ip);
    set_timeout(fd.get(), timeout_s);
    std::byte hello[kHandshakeBytes + 2];
    recv_all(fd.get(), hello, sizeof(hello));
    const Handshake h = decode_handshake(hello);
    const std::string err = handshake_check(root_view, h);
    if (!err.empty()) {
      throw std::runtime_error("cxrun: bad hello from " + peer_ip + ": " +
                               err);
    }
    if (seen[h.rank]) {
      throw std::runtime_error("cxrun: duplicate rank " +
                               std::to_string(h.rank) + " (second hello from " +
                               peer_ip + ")");
    }
    seen[h.rank] = true;
    table[h.rank].ip = peer_ip_u32(fd.get());
    table[h.rank].port = get_u16(hello + kHandshakeBytes);
    conns[h.rank] = std::move(fd);
  }

  std::vector<std::byte> reply(nranks * kEndpointBytes);
  for (std::uint32_t r = 0; r < nranks; ++r) {
    put_u32(reply.data() + r * kEndpointBytes, table[r].ip);
    put_u16(reply.data() + r * kEndpointBytes + 4, table[r].port);
  }
  for (std::uint32_t r = 0; r < nranks; ++r) {
    send_all(conns[r].get(), reply.data(), reply.size());
  }
  // Connections close as `conns` destructs; ranks have the table by then.
}

std::vector<Endpoint> client_rendezvous(const std::string& root_host,
                                        std::uint16_t root_port,
                                        const Handshake& mine,
                                        std::uint16_t data_port,
                                        double timeout_s) {
  Fd fd = tcp_connect(root_host, root_port, timeout_s);
  set_timeout(fd.get(), timeout_s);
  std::byte hello[kHandshakeBytes + 2];
  encode_handshake(mine, hello);
  put_u16(hello + kHandshakeBytes, data_port);
  send_all(fd.get(), hello, sizeof(hello));

  std::vector<std::byte> reply(mine.nranks * kEndpointBytes);
  recv_all(fd.get(), reply.data(), reply.size());
  std::vector<Endpoint> table(mine.nranks);
  for (std::uint32_t r = 0; r < mine.nranks; ++r) {
    table[r].ip = get_u32(reply.data() + r * kEndpointBytes);
    table[r].port = get_u16(reply.data() + r * kEndpointBytes + 4);
  }
  return table;
}

std::vector<Fd> mesh_wireup(const Handshake& mine, int data_listen_fd,
                            const std::vector<Endpoint>& table,
                            double timeout_s) {
  const std::uint32_t nranks = mine.nranks;
  std::vector<Fd> peers(nranks);
  std::byte buf[kHandshakeBytes];

  // Outbound: connect to every lower rank, handshake first.
  for (std::uint32_t r = 0; r < mine.rank; ++r) {
    Fd fd = tcp_connect(ip_str(table[r].ip), table[r].port, timeout_s);
    set_timeout(fd.get(), timeout_s);
    set_nodelay(fd.get());
    encode_handshake(mine, buf);
    send_all(fd.get(), buf, sizeof(buf));
    recv_all(fd.get(), buf, sizeof(buf));
    const Handshake h = decode_handshake(buf);
    const std::string err = handshake_check(mine, h);
    if (!err.empty()) {
      throw std::runtime_error("cxnet: mesh handshake with rank " +
                               std::to_string(r) + " failed: " + err);
    }
    if (h.rank != r) {
      throw std::runtime_error("cxnet: connected to rank " +
                               std::to_string(r) + " but peer claims rank " +
                               std::to_string(h.rank));
    }
    peers[r] = std::move(fd);
  }

  // Inbound: accept from every higher rank; its handshake identifies it.
  for (std::uint32_t n = mine.rank + 1; n < nranks; ++n) {
    std::string peer_ip;
    Fd fd = accept_conn(data_listen_fd, timeout_s, &peer_ip);
    set_timeout(fd.get(), timeout_s);
    set_nodelay(fd.get());
    recv_all(fd.get(), buf, sizeof(buf));
    const Handshake h = decode_handshake(buf);
    const std::string err = handshake_check(mine, h);
    if (!err.empty()) {
      throw std::runtime_error("cxnet: mesh handshake from " + peer_ip +
                               " rejected: " + err);
    }
    if (h.rank <= mine.rank || h.rank >= nranks || peers[h.rank].valid()) {
      throw std::runtime_error("cxnet: unexpected mesh connection claiming "
                               "rank " +
                               std::to_string(h.rank) + " (from " + peer_ip +
                               ")");
    }
    encode_handshake(mine, buf);
    send_all(fd.get(), buf, sizeof(buf));
    peers[h.rank] = std::move(fd);
  }
  return peers;
}

}  // namespace cxnet
