#include "net/frame.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace cxnet {

namespace {

template <typename T>
void put(std::byte* base, std::size_t off, T v) {
  std::memcpy(base + off, &v, sizeof(T));
}

template <typename T>
T get(const std::byte* base, std::size_t off) {
  T v;
  std::memcpy(&v, base + off, sizeof(T));
  return v;
}

// Header layout (offsets after the u32 length prefix):
//   0 kind  1 ft_flags  2 wire_flags  3 reserved
//   4 handler  8 src_pe  12 dst_pe  16 ft_peer
//   20 ft_seq  28 size_override  36 payload...
void write_header(std::byte* h, FrameKind kind, std::uint8_t ft_flags,
                  std::uint8_t wire_flags, std::uint32_t handler,
                  std::int32_t src_pe, std::int32_t dst_pe,
                  std::int32_t ft_peer, std::uint64_t ft_seq,
                  std::uint64_t size_override) {
  put<std::uint8_t>(h, 0, static_cast<std::uint8_t>(kind));
  put<std::uint8_t>(h, 1, ft_flags);
  put<std::uint8_t>(h, 2, wire_flags);
  put<std::uint8_t>(h, 3, 0);
  put<std::uint32_t>(h, 4, handler);
  put<std::int32_t>(h, 8, src_pe);
  put<std::int32_t>(h, 12, dst_pe);
  put<std::int32_t>(h, 16, ft_peer);
  put<std::uint64_t>(h, 20, ft_seq);
  put<std::uint64_t>(h, 28, size_override);
}

}  // namespace

std::vector<std::byte> encode_frame(const cxm::Message& m) {
  if (m.local != nullptr) {
    // By-reference payloads are the same-process fast path; the location
    // layer must never route one toward a socket.
    throw std::logic_error("cxnet: cannot encode a local-payload message");
  }
  const std::size_t body = kFrameHeaderBytes + m.data.size();
  if (body > kMaxFrameBytes) {
    throw std::length_error("cxnet: frame exceeds kMaxFrameBytes (" +
                            std::to_string(body) + " bytes)");
  }
  std::vector<std::byte> out(sizeof(std::uint32_t) + body);
  put<std::uint32_t>(out.data(), 0, static_cast<std::uint32_t>(body));
  write_header(out.data() + sizeof(std::uint32_t), FrameKind::Data, m.ft_flags,
               m.wire_flags, m.handler, m.src_pe, m.dst_pe, m.ft_peer,
               m.ft_seq, m.size_override);
  if (!m.data.empty()) {
    std::memcpy(out.data() + sizeof(std::uint32_t) + kFrameHeaderBytes,
                m.data.data(), m.data.size());
  }
  return out;
}

std::vector<std::byte> encode_control(ControlOp op, std::int32_t dst_pe,
                                      std::int32_t src_pe) {
  std::vector<std::byte> out(sizeof(std::uint32_t) + kFrameHeaderBytes);
  put<std::uint32_t>(out.data(), 0,
                     static_cast<std::uint32_t>(kFrameHeaderBytes));
  write_header(out.data() + sizeof(std::uint32_t), FrameKind::Control, 0, 0,
               static_cast<std::uint32_t>(op), src_pe, dst_pe, -1, 0, 0);
  return out;
}

cxm::MessagePtr frame_to_message(const Frame& f) {
  auto m = std::make_unique<cxm::Message>();
  m->handler = f.handler;
  m->src_pe = f.src_pe;
  m->dst_pe = f.dst_pe;
  m->ft_peer = f.ft_peer;
  m->ft_seq = f.ft_seq;
  m->ft_flags = f.ft_flags;
  m->wire_flags = f.wire_flags;
  m->size_override = f.size_override;
  if (f.payload_len > 0) m->data.assign(f.payload, f.payload_len);
  return m;
}

void FrameReader::feed(const std::byte* p, std::size_t n) {
  if (failed()) return;
  // Compact consumed bytes before appending so the buffer stays bounded
  // by (one partial frame + whatever the socket just produced).
  if (head_ > 0) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  buf_.insert(buf_.end(), p, p + n);
}

FrameReader::Status FrameReader::next(Frame& out) {
  if (failed()) return Status::Error;
  const std::size_t avail = buf_.size() - head_;
  if (avail < sizeof(std::uint32_t)) return Status::NeedMore;
  const auto len = get<std::uint32_t>(buf_.data(), head_);
  // Validate the prefix BEFORE waiting for (or allocating) that many
  // bytes: a hostile/corrupt length is rejected from the 4-byte prefix
  // alone, so it can neither OOM nor stall the connection.
  if (len < kFrameHeaderBytes || len > max_frame_) {
    error_ = "bad frame length prefix " + std::to_string(len) +
             " (valid: " + std::to_string(kFrameHeaderBytes) + ".." +
             std::to_string(max_frame_) + ")";
    return Status::Error;
  }
  if (avail < sizeof(std::uint32_t) + len) return Status::NeedMore;
  const std::byte* h = buf_.data() + head_ + sizeof(std::uint32_t);
  const auto kind = get<std::uint8_t>(h, 0);
  if (kind > static_cast<std::uint8_t>(FrameKind::Control)) {
    error_ = "unknown frame kind " + std::to_string(kind);
    return Status::Error;
  }
  out.kind = static_cast<FrameKind>(kind);
  out.ft_flags = get<std::uint8_t>(h, 1);
  out.wire_flags = get<std::uint8_t>(h, 2);
  out.handler = get<std::uint32_t>(h, 4);
  out.src_pe = get<std::int32_t>(h, 8);
  out.dst_pe = get<std::int32_t>(h, 12);
  out.ft_peer = get<std::int32_t>(h, 16);
  out.ft_seq = get<std::uint64_t>(h, 20);
  out.size_override = get<std::uint64_t>(h, 28);
  out.payload = h + kFrameHeaderBytes;
  out.payload_len = len - kFrameHeaderBytes;
  head_ += sizeof(std::uint32_t) + len;
  return Status::Frame;
}

void encode_handshake(const Handshake& h, std::byte out[kHandshakeBytes]) {
  put<std::uint32_t>(out, 0, h.magic);
  put<std::uint16_t>(out, 4, h.version);
  put<std::uint16_t>(out, 6, h.header_bytes);
  put<std::uint32_t>(out, 8, h.endian_probe);
  put<std::uint8_t>(out, 12, h.size_t_width);
  put<std::uint8_t>(out, 13, h.pointer_width);
  put<std::uint8_t>(out, 14, h.long_width);
  put<std::uint8_t>(out, 15, h.double_width);
  put<std::uint32_t>(out, 16, h.rank);
  put<std::uint32_t>(out, 20, h.nranks);
  put<std::uint32_t>(out, 24, h.ppn);
}

Handshake decode_handshake(const std::byte in[kHandshakeBytes]) {
  Handshake h;
  h.magic = get<std::uint32_t>(in, 0);
  h.version = get<std::uint16_t>(in, 4);
  h.header_bytes = get<std::uint16_t>(in, 6);
  h.endian_probe = get<std::uint32_t>(in, 8);
  h.size_t_width = get<std::uint8_t>(in, 12);
  h.pointer_width = get<std::uint8_t>(in, 13);
  h.long_width = get<std::uint8_t>(in, 14);
  h.double_width = get<std::uint8_t>(in, 15);
  h.rank = get<std::uint32_t>(in, 16);
  h.nranks = get<std::uint32_t>(in, 20);
  h.ppn = get<std::uint32_t>(in, 24);
  return h;
}

std::string handshake_check(const Handshake& mine, const Handshake& theirs) {
  if (theirs.magic != mine.magic) {
    return "peer is not a charmx socket backend (magic 0x" +
           [](std::uint32_t v) {
             char buf[9];
             std::snprintf(buf, sizeof(buf), "%08x", v);
             return std::string(buf);
           }(theirs.magic) +
           ", expected CXSM)";
  }
  if (theirs.version != mine.version) {
    return "wire version mismatch (peer v" + std::to_string(theirs.version) +
           ", local v" + std::to_string(mine.version) + ")";
  }
  if (theirs.endian_probe != mine.endian_probe) {
    return "endianness mismatch (probe 0x" +
           std::to_string(theirs.endian_probe) +
           "): the frame format is native-endian and byte-swapping is not "
           "supported — run all ranks on same-endian hosts";
  }
  if (theirs.header_bytes != mine.header_bytes) {
    return "frame header size mismatch (peer " +
           std::to_string(theirs.header_bytes) + "B, local " +
           std::to_string(mine.header_bytes) + "B)";
  }
  if (theirs.size_t_width != mine.size_t_width ||
      theirs.pointer_width != mine.pointer_width ||
      theirs.long_width != mine.long_width ||
      theirs.double_width != mine.double_width) {
    return "primitive width mismatch (peer size_t/ptr/long/double = " +
           std::to_string(theirs.size_t_width) + "/" +
           std::to_string(theirs.pointer_width) + "/" +
           std::to_string(theirs.long_width) + "/" +
           std::to_string(theirs.double_width) +
           "): pup packs host-width fields — all ranks must share an ABI";
  }
  if (theirs.nranks != mine.nranks || theirs.ppn != mine.ppn) {
    return "job geometry mismatch (peer says " +
           std::to_string(theirs.nranks) + " ranks x " +
           std::to_string(theirs.ppn) + " PEs, local " +
           std::to_string(mine.nranks) + " x " + std::to_string(mine.ppn) +
           ")";
  }
  if (theirs.rank >= theirs.nranks) {
    return "peer rank " + std::to_string(theirs.rank) + " out of range";
  }
  return "";
}

}  // namespace cxnet
