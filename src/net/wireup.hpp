#pragma once
// Job wireup: rank rendezvous through a root listener, then an
// all-to-all TCP mesh.
//
// Protocol (all native-endian, guarded by the Handshake):
//
//   1. Every rank connects to the root (cxrun, or a test harness) and
//      sends Handshake + u16 data_port (the ephemeral port its own data
//      listener is bound to).
//   2. The root validates all nranks handshakes against each other
//      (magic/version/ABI/geometry, no duplicate ranks), then replies
//      to every rank with the endpoint table:
//        nranks x { u32 ip (host order, from getpeername), u16 port }.
//   3. Ranks build the mesh: rank r connects to every rank < r
//      (sending its Handshake first, then reading the peer's), and
//      accepts from every rank > r (reading the peer's Handshake —
//      which identifies the connecting rank — then replying with its
//      own). Sequential accept is safe: the kernel backlog holds
//      early connectors.

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/socket_util.hpp"

namespace cxnet {

struct Endpoint {
  std::uint32_t ip = 0;  ///< host byte order
  std::uint16_t port = 0;
};

/// Root side of step 1-2: accept `nranks` hellos on `listen_fd`,
/// validate, reply the endpoint table to each. Throws on any protocol
/// violation (naming the offending rank/host where possible).
void run_root_exchange(int listen_fd, std::uint32_t nranks, std::uint32_t ppn,
                       double timeout_s = 30.0);

/// Rank side of step 1-2: rendezvous with the root and return the full
/// endpoint table (indexed by rank; our own entry included).
std::vector<Endpoint> client_rendezvous(const std::string& root_host,
                                        std::uint16_t root_port,
                                        const Handshake& mine,
                                        std::uint16_t data_port,
                                        double timeout_s = 30.0);

/// Step 3: build the mesh. Returns nranks fds (self entry invalid),
/// each having completed a validated handshake exchange. The fds are
/// still blocking; the caller flips them nonblocking for the epoll
/// loop.
std::vector<Fd> mesh_wireup(const Handshake& mine, int data_listen_fd,
                            const std::vector<Endpoint>& table,
                            double timeout_s = 30.0);

}  // namespace cxnet
