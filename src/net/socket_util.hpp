#pragma once
// Thin blocking/nonblocking TCP helpers over POSIX sockets. Everything
// here reports failure via std::runtime_error with errno context —
// wireup is sequential bootstrap code where an exception is the right
// shape; the epoll data path in SocketMachine handles errors inline.

#include <cstddef>
#include <cstdint>
#include <string>

namespace cxnet {

/// RAII fd. Movable, closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept;
  ~Fd() { reset(); }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept {
    const int f = fd_;
    fd_ = -1;
    return f;
  }
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// Listen on `port` (0 = ephemeral) on all interfaces. Backlog sized for
/// full-job wireup bursts.
Fd tcp_listen(std::uint16_t port);

/// The local port a socket is bound to (resolves ephemeral binds).
std::uint16_t local_port(int fd);

/// Connect to host:port, retrying for up to `timeout_s` while the
/// target refuses (covers the listener-not-up-yet wireup race).
Fd tcp_connect(const std::string& host, std::uint16_t port,
               double timeout_s = 20.0);

/// Accept one connection, waiting at most `timeout_s`. Returns the
/// connected fd and fills `peer_ip` (dotted quad) when non-null.
Fd accept_conn(int listen_fd, double timeout_s, std::string* peer_ip = nullptr);

/// Blocking exact-count I/O (wireup only). Throw on EOF/error/timeout;
/// the socket should carry a SO_RCVTIMEO/SO_SNDTIMEO for bootstrap use.
void send_all(int fd, const void* buf, std::size_t n);
void recv_all(int fd, void* buf, std::size_t n);

void set_nonblocking(int fd);
void set_nodelay(int fd);
/// SO_RCVTIMEO + SO_SNDTIMEO, for the bootstrap/wireup sockets.
void set_timeout(int fd, double seconds);

/// The peer's IPv4 address as a host-order u32 (via getpeername).
std::uint32_t peer_ip_u32(int fd);

}  // namespace cxnet
