#pragma once
// cx::net on-socket frame format and connection handshake.
//
// SocketMachine reuses cx::wire envelopes verbatim: the frame is the
// Message's wire-relevant header fields plus its payload bytes, behind
// a u32 length prefix —
//
//   u32 len   (bytes that follow: header + payload; NOT including len)
//   u8  kind  (0 = data, 1 = control)
//   u8  ft_flags      | the cx::ft reliable-delivery header travels
//   u8  wire_flags    | unchanged, so seq/ack/retransmit and batch
//   u8  reserved      | unpacking work across processes
//   u32 handler       (control frames: opcode)
//   i32 src_pe
//   i32 dst_pe
//   i32 ft_peer
//   u64 ft_seq
//   u64 size_override
//   payload bytes (the Message's cx::wire Buffer, byte-for-byte)
//
// Fields are host-endian and host-width: the payload itself is packed
// by pup with raw memcpy, so byte-swapping the header alone would buy
// nothing. Instead every connection starts with a Handshake carrying a
// magic, a format version, an endianness probe and the primitive
// widths; mismatched peers are rejected with a clear error rather than
// silently corrupting (full byte-swapping support is out of scope).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "machine/message.hpp"

namespace cxnet {

// ---- frame ---------------------------------------------------------------

inline constexpr std::size_t kFrameHeaderBytes = 36;  ///< after the u32 len
/// Upper bound on a single frame (header + payload). A length prefix
/// beyond this is a protocol violation and closes the connection —
/// the reader never allocates based on the prefix, so a hostile
/// 0xffffffff cannot OOM the process.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

enum class FrameKind : std::uint8_t { Data = 0, Control = 1 };

/// Control opcodes (carried in the handler field of control frames).
enum class ControlOp : std::uint32_t {
  Stop = 0,    ///< cx::exit() — stop every rank's scheduler
  Kill = 1,    ///< inject_kill(dst_pe) forwarded to the owning rank
  Hang = 2,    ///< inject_hang(dst_pe)
  Revive = 3,  ///< revive_pe(dst_pe)
};

/// A decoded frame. `payload` points into the FrameReader's buffer and
/// stays valid until the next feed() call.
struct Frame {
  FrameKind kind = FrameKind::Data;
  std::uint8_t ft_flags = 0;
  std::uint8_t wire_flags = 0;
  std::uint32_t handler = 0;
  std::int32_t src_pe = -1;
  std::int32_t dst_pe = 0;
  std::int32_t ft_peer = -1;
  std::uint64_t ft_seq = 0;
  std::uint64_t size_override = 0;
  const std::byte* payload = nullptr;
  std::size_t payload_len = 0;
};

/// Serialize a Message (data frame) — length prefix included.
std::vector<std::byte> encode_frame(const cxm::Message& m);

/// Serialize a control frame.
std::vector<std::byte> encode_control(ControlOp op, std::int32_t dst_pe,
                                      std::int32_t src_pe);

/// Rebuild a pooled Message from a decoded data frame (copies payload).
cxm::MessagePtr frame_to_message(const Frame& f);

/// Incremental frame decoder over a TCP byte stream. Feed whatever the
/// socket produced; next() yields complete frames. Violations (bad
/// length prefix) put the reader in a sticky error state — the caller
/// must drop the connection.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame = kMaxFrameBytes)
      : max_frame_(max_frame) {}

  enum class Status { Frame, NeedMore, Error };

  void feed(const std::byte* p, std::size_t n);

  /// Extract the next complete frame. On Status::Frame, `out.payload`
  /// stays valid until the next feed().
  Status next(Frame& out);

  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] bool failed() const noexcept { return !error_.empty(); }
  /// Bytes buffered but not yet consumed (a mid-frame EOF leaves some).
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return buf_.size() - head_;
  }

 private:
  std::size_t max_frame_;
  std::vector<std::byte> buf_;
  std::size_t head_ = 0;
  std::string error_;
};

// ---- handshake -----------------------------------------------------------

inline constexpr std::uint32_t kHandshakeMagic = 0x4d535843;  // "CXSM"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::uint32_t kEndianProbe = 0x01020304;
inline constexpr std::size_t kHandshakeBytes = 28;

/// First bytes on every connection (rendezvous and mesh). Native-endian
/// like the frames; the probe field is how a foreign byte order is
/// detected (it reads back as 0x04030201 there).
struct Handshake {
  std::uint32_t magic = kHandshakeMagic;
  std::uint16_t version = kWireVersion;
  std::uint16_t header_bytes = static_cast<std::uint16_t>(kFrameHeaderBytes);
  std::uint32_t endian_probe = kEndianProbe;
  std::uint8_t size_t_width = sizeof(std::size_t);
  std::uint8_t pointer_width = sizeof(void*);
  std::uint8_t long_width = sizeof(long);
  std::uint8_t double_width = sizeof(double);
  std::uint32_t rank = 0;
  std::uint32_t nranks = 1;
  std::uint32_t ppn = 1;
};

void encode_handshake(const Handshake& h, std::byte out[kHandshakeBytes]);
Handshake decode_handshake(const std::byte in[kHandshakeBytes]);

/// Validate a peer's handshake against ours. Returns "" when the peer
/// speaks our wire format (and agrees on the job geometry), otherwise a
/// human-readable description of the mismatch.
std::string handshake_check(const Handshake& mine, const Handshake& theirs);

}  // namespace cxnet
