#include "net/socket_util.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <ctime>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <stdexcept>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

namespace cxnet {

namespace {

[[noreturn]] void die(const std::string& what) {
  throw std::runtime_error("cxnet: " + what + ": " +
                           std::strerror(errno));
}

}  // namespace

Fd& Fd::operator=(Fd&& o) noexcept {
  if (this != &o) {
    reset(o.fd_);
    o.fd_ = -1;
  }
  return *this;
}

void Fd::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Fd tcp_listen(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) die("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    die("bind(port " + std::to_string(port) + ")");
  }
  if (::listen(fd.get(), 128) != 0) die("listen");
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    die("getsockname");
  }
  return ntohs(addr.sin_port);
}

Fd tcp_connect(const std::string& host, std::uint16_t port, double timeout_s) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    throw std::runtime_error("cxnet: cannot resolve host '" + host +
                             "': " + gai_strerror(rc));
  }
  sockaddr_in addr = *reinterpret_cast<sockaddr_in*>(res->ai_addr);
  addr.sin_port = htons(port);
  ::freeaddrinfo(res);

  // Retry while the listener isn't up yet: rank processes race the root
  // (and each other) during wireup, so ECONNREFUSED is expected early.
  const double deadline =
      timeout_s + static_cast<double>(::time(nullptr));
  for (;;) {
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) die("socket");
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    const int err = errno;
    if ((err != ECONNREFUSED && err != ETIMEDOUT && err != EAGAIN) ||
        static_cast<double>(::time(nullptr)) > deadline) {
      errno = err;
      die("connect(" + host + ":" + std::to_string(port) + ")");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Fd accept_conn(int listen_fd, double timeout_s, std::string* peer_ip) {
  pollfd pfd{listen_fd, POLLIN, 0};
  const int ms = static_cast<int>(std::lround(timeout_s * 1000.0));
  const int rc = ::poll(&pfd, 1, ms);
  if (rc == 0) {
    throw std::runtime_error("cxnet: accept timed out after " +
                             std::to_string(timeout_s) + "s");
  }
  if (rc < 0) die("poll(accept)");
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  Fd fd(::accept(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len));
  if (!fd.valid()) die("accept");
  if (peer_ip != nullptr) {
    char buf[INET_ADDRSTRLEN] = {};
    ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf));
    *peer_ip = buf;
  }
  return fd;
}

void send_all(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      die("send");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void recv_all(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t r = ::recv(fd, p, n, 0);
    if (r == 0) throw std::runtime_error("cxnet: peer closed during recv");
    if (r < 0) {
      if (errno == EINTR) continue;
      die("recv");
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
}

void set_nonblocking(int fd) {
  const int fl = ::fcntl(fd, F_GETFL, 0);
  if (fl < 0 || ::fcntl(fd, F_SETFL, fl | O_NONBLOCK) < 0) {
    die("fcntl(O_NONBLOCK)");
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void set_timeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

std::uint32_t peer_ip_u32(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    die("getpeername");
  }
  return ntohl(addr.sin_addr.s_addr);
}

}  // namespace cxnet
