#pragma once
// cxmpi — a miniature MPI built on the machine layer, used as the
// bulk-synchronous baseline of the paper's evaluation (the mpi4py bars
// of Figs. 1-3).
//
// Semantics follow the MPI subset the paper's stencil3d baseline needs:
//   * one rank per PE, running as a blocking program (a fiber)
//   * eager/buffered sends: send() completes locally, data is copied
//   * blocking recv() with (source, tag) matching, ANY_SOURCE/ANY_TAG
//   * nonblocking isend/irecv + wait/waitall
//   * collectives: barrier, allreduce (sum/min/max), broadcast —
//     implemented over point-to-point messages on binomial trees
//
// The defining contrast with the chare model: no over-decomposition, no
// migration, blocking receives couple sender and receiver — which is
// exactly why the imbalanced stencil (Fig. 3) cannot be healed here.
//
//   cxmpi::run(cfg, [](cxmpi::Comm& comm) {
//     auto data = comm.recv<double>(comm.rank() - 1, 0);
//     comm.send(comm.rank() + 1, 0, data);
//     comm.barrier();
//   });

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "machine/machine.hpp"

namespace cxmpi {

constexpr int kAnySource = -1;
constexpr int kAnyTag = -1;

enum class Op { Sum, Min, Max };

class World;

/// Handle for a nonblocking operation.
class Request {
 public:
  Request() = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  struct State;  // runtime-internal

 private:
  friend class Comm;
  friend class World;
  std::shared_ptr<State> state_;
};

/// Per-rank communicator handed to the rank program.
class Comm {
 public:
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;

  // --- blocking point-to-point ---
  void send_bytes(int dst, int tag, std::vector<std::byte> data);
  /// send with an explicit nominal size for cost models.
  void send_bytes_sized(int dst, int tag, std::vector<std::byte> data,
                        std::uint64_t nominal_bytes);
  /// Blocks until a matching message arrives; returns its payload.
  std::vector<std::byte> recv_bytes(int src = kAnySource,
                                    int tag = kAnyTag);

  template <typename T>
  void send(int dst, int tag, const std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(data.size() * sizeof(T));
    if (!data.empty()) std::memcpy(bytes.data(), data.data(), bytes.size());
    send_bytes(dst, tag, std::move(bytes));
  }

  template <typename T>
  std::vector<T> recv(int src = kAnySource, int tag = kAnyTag) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto bytes = recv_bytes(src, tag);
    std::vector<T> out(bytes.size() / sizeof(T));
    if (!out.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  // --- nonblocking ---
  Request isend_bytes(int dst, int tag, std::vector<std::byte> data);
  /// Posts a receive; the payload lands in *out when wait() returns.
  Request irecv_bytes(std::vector<std::byte>* out, int src = kAnySource,
                      int tag = kAnyTag);

  template <typename T>
  Request isend(int dst, int tag, const std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(data.size() * sizeof(T));
    if (!data.empty()) std::memcpy(bytes.data(), data.data(), bytes.size());
    return isend_bytes(dst, tag, std::move(bytes));
  }

  void wait(Request& req);
  void waitall(std::vector<Request>& reqs);

  // --- collectives (binomial trees over point-to-point) ---
  void barrier();
  double allreduce(double value, Op op);
  std::vector<double> allreduce(std::vector<double> value, Op op);
  /// Broadcast `bytes` from `root` to every rank; returns the payload.
  std::vector<std::byte> broadcast_bytes(std::vector<std::byte> bytes,
                                         int root = 0);
  /// Reduce to `root` only (no broadcast); non-roots return {}.
  std::vector<double> reduce(std::vector<double> value, Op op,
                             int root = 0);
  /// Gather every rank's vector at `root`, concatenated in rank order;
  /// non-roots return {}. All contributions must have equal length.
  std::vector<double> gather(const std::vector<double>& value,
                             int root = 0);

  // --- time ---
  [[nodiscard]] double wtime() const;
  /// Charge compute time (virtual in the simulated backend; a spin on
  /// the threaded backend) — used for synthetic load injection.
  void compute(double seconds);
  /// Advance the clock without consuming host CPU (simulated only).
  void charge(double seconds);

 private:
  friend class World;
  Comm(World* w, int rank) : world_(w), rank_(rank) {}

  World* world_ = nullptr;
  int rank_ = 0;
};

/// A rank program.
using RankFn = std::function<void(Comm&)>;

/// Run `fn` as one rank per PE; returns when every rank finished.
/// For the simulated backend, `makespan_out` (if non-null) receives the
/// virtual-time makespan.
void run(const cxm::MachineConfig& cfg, const RankFn& fn,
         double* makespan_out = nullptr);

}  // namespace cxmpi
