#include "mpi/mpi.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <deque>
#include <stdexcept>

#include "fiber/fiber.hpp"
#include "machine/sim_machine.hpp"
#include "pup/pup.hpp"
#include "wire/envelope.hpp"

namespace cxmpi {

using cxf::Fiber;
using cxm::Message;
using cxm::MessagePtr;

namespace {

// Internal tags for collectives (user tags must be < kInternalTagBase).
constexpr int kInternalTagBase = 1 << 29;
constexpr int kTagReduce = kInternalTagBase + 1;
constexpr int kTagBcast = kInternalTagBase + 2;
constexpr int kTagGather = kInternalTagBase + 3;

struct WireHeader {
  std::int32_t src = 0;
  std::int32_t tag = 0;
  void pup(pup::Er& p) {
    p | src;
    p | tag;
  }
};

struct Unexpected {
  int src;
  int tag;
  std::vector<std::byte> data;
};

}  // namespace

struct Request::State {
  bool done = false;
  std::vector<std::byte>* out = nullptr;
  int src = kAnySource;
  int tag = kAnyTag;
};

class World {
 public:
  World(const cxm::MachineConfig& cfg, RankFn fn)
      : machine_(cxm::make_machine(cfg)), fn_(std::move(fn)) {
    const int p = machine_->num_pes();
    ranks_.resize(static_cast<std::size_t>(p));
    h_msg_ = machine_->register_handler(
        [this](MessagePtr m) { on_msg(std::move(m)); });
    h_start_ = machine_->register_handler(
        [this](MessagePtr m) { on_start(std::move(m)); });
  }

  void run(double* makespan_out) {
    for (int pe = 0; pe < machine_->num_pes(); ++pe) {
      auto m = std::make_unique<Message>();
      m->handler = h_start_;
      m->dst_pe = pe;
      machine_->send(std::move(m));
    }
    machine_->run();
    if (makespan_out != nullptr) {
      auto* sm = dynamic_cast<cxm::SimMachine*>(machine_.get());
      *makespan_out = sm != nullptr ? sm->makespan() : machine_->now();
    }
    // Any fiber still alive here means a rank deadlocked; destroying the
    // Fiber objects releases their stacks.
  }

  [[nodiscard]] int size() const noexcept { return machine_->num_pes(); }
  cxm::Machine& machine() noexcept { return *machine_; }

  void send_bytes(int src_rank, int dst, int tag,
                  std::vector<std::byte> data,
                  std::uint64_t nominal_bytes = 0) {
    if (dst < 0 || dst >= size()) {
      throw std::out_of_range("cxmpi: bad destination rank");
    }
    WireHeader h;
    h.src = src_rank;
    h.tag = tag;
    auto m = cx::wire::make_msg(h_msg_, dst, h, data);
    m->size_override = nominal_bytes;
    machine_->send(std::move(m));
  }

  /// Blocking receive for `rank` (runs inside the rank's fiber).
  std::vector<std::byte> recv_bytes(int rank, int src, int tag) {
    std::vector<std::byte> out;
    Request req;
    req.state_ = std::make_shared<Request::State>();
    req.state_->out = &out;
    req.state_->src = src;
    req.state_->tag = tag;
    post_or_match(rank, req.state_);
    wait(rank, req);
    return out;
  }

  void post(int rank, const std::shared_ptr<Request::State>& st) {
    post_or_match(rank, st);
  }

  void wait(int rank, Request& req) {
    if (!req.valid()) return;
    auto& rs = ranks_[static_cast<std::size_t>(rank)];
    while (!req.state_->done) {
      rs.blocked = true;
      Fiber::yield();
      rs.blocked = false;
    }
  }

 private:
  struct RankState {
    std::unique_ptr<Fiber> fiber;
    std::deque<Unexpected> unexpected;
    std::deque<std::shared_ptr<Request::State>> posted;
    bool blocked = false;
  };

  static bool matches(int want_src, int want_tag, int src, int tag) {
    return (want_src == kAnySource || want_src == src) &&
           (want_tag == kAnyTag || want_tag == tag);
  }

  /// Match against already-arrived messages, else post the receive.
  void post_or_match(int rank, const std::shared_ptr<Request::State>& st) {
    auto& rs = ranks_[static_cast<std::size_t>(rank)];
    for (auto it = rs.unexpected.begin(); it != rs.unexpected.end(); ++it) {
      if (matches(st->src, st->tag, it->src, it->tag)) {
        *st->out = std::move(it->data);
        st->done = true;
        rs.unexpected.erase(it);
        return;
      }
    }
    rs.posted.push_back(st);
  }

  void on_msg(MessagePtr m) {
    const int rank = machine_->current_pe();
    auto& rs = ranks_[static_cast<std::size_t>(rank)];
    pup::Unpacker u(m->data.data(), m->data.size());
    WireHeader h;
    u | h;
    std::vector<std::byte> data(m->data.begin() + static_cast<long>(u.offset()),
                                m->data.end());
    for (auto it = rs.posted.begin(); it != rs.posted.end(); ++it) {
      if (matches((*it)->src, (*it)->tag, h.src, h.tag)) {
        *(*it)->out = std::move(data);
        (*it)->done = true;
        rs.posted.erase(it);
        // Wake the rank if it is blocked in wait().
        if (rs.blocked && rs.fiber && !rs.fiber->done()) {
          rs.fiber->resume();
          maybe_finish(rank);
        }
        return;
      }
    }
    rs.unexpected.push_back(Unexpected{h.src, h.tag, std::move(data)});
  }

  void on_start(MessagePtr) {
    const int rank = machine_->current_pe();
    auto& rs = ranks_[static_cast<std::size_t>(rank)];
    rs.fiber = std::make_unique<Fiber>([this, rank] {
      Comm comm(this, rank);
      fn_(comm);
    });
    rs.fiber->resume();
    maybe_finish(rank);
  }

  void maybe_finish(int rank) {
    auto& rs = ranks_[static_cast<std::size_t>(rank)];
    if (rs.fiber && rs.fiber->done()) {
      rs.fiber.reset();
      if (finished_.fetch_add(1) + 1 == size()) machine_->stop();
    }
  }

  std::unique_ptr<cxm::Machine> machine_;
  RankFn fn_;
  std::vector<RankState> ranks_;
  std::atomic<int> finished_{0};
  std::uint32_t h_msg_ = 0;
  std::uint32_t h_start_ = 0;
};

// ---------------------------------------------------------------------------
// Comm

int Comm::size() const noexcept { return world_->size(); }

void Comm::send_bytes(int dst, int tag, std::vector<std::byte> data) {
  world_->send_bytes(rank_, dst, tag, std::move(data));
}

void Comm::send_bytes_sized(int dst, int tag, std::vector<std::byte> data,
                            std::uint64_t nominal_bytes) {
  world_->send_bytes(rank_, dst, tag, std::move(data), nominal_bytes);
}

std::vector<std::byte> Comm::recv_bytes(int src, int tag) {
  return world_->recv_bytes(rank_, src, tag);
}

Request Comm::isend_bytes(int dst, int tag, std::vector<std::byte> data) {
  // Eager/buffered: completes locally at once.
  world_->send_bytes(rank_, dst, tag, std::move(data));
  Request r;
  r.state_ = std::make_shared<Request::State>();
  r.state_->done = true;
  return r;
}

Request Comm::irecv_bytes(std::vector<std::byte>* out, int src, int tag) {
  Request r;
  r.state_ = std::make_shared<Request::State>();
  r.state_->out = out;
  r.state_->src = src;
  r.state_->tag = tag;
  world_->post(rank_, r.state_);
  return r;
}

void Comm::wait(Request& req) { world_->wait(rank_, req); }

void Comm::waitall(std::vector<Request>& reqs) {
  for (auto& r : reqs) wait(r);
}

namespace {

double combine(double a, double b, Op op) {
  switch (op) {
    case Op::Sum: return a + b;
    case Op::Min: return std::min(a, b);
    case Op::Max: return std::max(a, b);
  }
  return a;
}

int tree_parent(int rank) { return rank - (rank & -rank); }

template <typename Fn>
void tree_children_of(int rank, int size, Fn&& fn) {
  const int lim = (rank == 0) ? size : (rank & -rank);
  for (int mask = 1; mask < lim; mask <<= 1) {
    if (rank + mask < size) fn(rank + mask);
  }
}

}  // namespace

std::vector<double> Comm::allreduce(std::vector<double> value, Op op) {
  const int p = size();
  // Reduce up the binomial tree to rank 0.
  std::vector<int> kids;
  tree_children_of(rank_, p, [&](int c) { kids.push_back(c); });
  for (int c : kids) {
    (void)c;
    auto part = recv<double>(kAnySource, kTagReduce);
    if (part.size() != value.size()) {
      throw std::runtime_error("cxmpi: allreduce size mismatch");
    }
    for (std::size_t i = 0; i < value.size(); ++i) {
      value[i] = combine(value[i], part[i], op);
    }
  }
  if (rank_ != 0) {
    send(tree_parent(rank_), kTagReduce, value);
    value = recv<double>(tree_parent(rank_), kTagBcast);
  }
  // Broadcast down the same tree.
  for (int c : kids) send(c, kTagBcast, value);
  return value;
}

double Comm::allreduce(double value, Op op) {
  return allreduce(std::vector<double>{value}, op)[0];
}

std::vector<double> Comm::reduce(std::vector<double> value, Op op,
                                 int root) {
  const int p = size();
  const int rel = (rank_ - root + p) % p;
  std::vector<int> kids;
  tree_children_of(rel, p, [&](int c) { kids.push_back(c); });
  for (int c : kids) {
    (void)c;
    auto part = recv<double>(kAnySource, kTagReduce);
    if (part.size() != value.size()) {
      throw std::runtime_error("cxmpi: reduce size mismatch");
    }
    for (std::size_t i = 0; i < value.size(); ++i) {
      value[i] = combine(value[i], part[i], op);
    }
  }
  if (rel != 0) {
    send((tree_parent(rel) + root) % p, kTagReduce, value);
    return {};
  }
  return value;
}

std::vector<double> Comm::gather(const std::vector<double>& value,
                                 int root) {
  // Direct gather: each non-root sends its block to the root with its
  // rank as a header element; the root assembles in rank order.
  const std::size_t n = value.size();
  if (rank_ != root) {
    std::vector<double> tagged;
    tagged.reserve(n + 1);
    tagged.push_back(static_cast<double>(rank_));
    tagged.insert(tagged.end(), value.begin(), value.end());
    send(root, kTagGather, tagged);
    return {};
  }
  const int p = size();
  std::vector<double> out(static_cast<std::size_t>(p) * n);
  std::copy(value.begin(), value.end(),
            out.begin() + static_cast<long>(static_cast<std::size_t>(root) * n));
  for (int i = 0; i < p - 1; ++i) {
    const auto tagged = recv<double>(kAnySource, kTagGather);
    if (tagged.size() != n + 1) {
      throw std::runtime_error("cxmpi: gather size mismatch");
    }
    const auto src = static_cast<std::size_t>(tagged[0]);
    std::copy(tagged.begin() + 1, tagged.end(),
              out.begin() + static_cast<long>(src * n));
  }
  return out;
}

void Comm::barrier() { (void)allreduce(0.0, Op::Sum); }

std::vector<std::byte> Comm::broadcast_bytes(std::vector<std::byte> bytes,
                                             int root) {
  const int p = size();
  const int rel = (rank_ - root + p) % p;
  if (rel != 0) {
    const int parent_rel = tree_parent(rel);
    const int parent = (parent_rel + root) % p;
    bytes = recv_bytes(parent, kTagBcast);
  }
  tree_children_of(rel, p, [&](int child_rel) {
    send_bytes((child_rel + root) % p, kTagBcast, bytes);
  });
  return bytes;
}

double Comm::wtime() const { return world_->machine().now(); }
void Comm::compute(double seconds) { world_->machine().compute(seconds); }
void Comm::charge(double seconds) { world_->machine().charge(seconds); }

// ---------------------------------------------------------------------------

void run(const cxm::MachineConfig& cfg, const RankFn& fn,
         double* makespan_out) {
  World world(cfg, fn);
  world.run(makespan_out);
}

}  // namespace cxmpi
