#pragma once
// Aligned plain-text table printer for figure benches (paper-style rows).

#include <cstdio>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

namespace cxu {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Format a double with the given precision.
  static std::string num(double v, int prec = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
  }

  [[nodiscard]] std::string to_string() const {
    std::vector<std::size_t> w(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < w.size(); ++c) {
        w[c] = std::max(w[c], row[c].size());
      }
    }
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < w.size(); ++c) {
        const std::string& s = c < cells.size() ? cells[c] : std::string();
        os << std::left << std::setw(static_cast<int>(w[c]) + 2) << s;
      }
      os << '\n';
    };
    emit(headers_);
    std::string rule;
    for (std::size_t c = 0; c < w.size(); ++c) rule += std::string(w[c], '-') + "  ";
    os << rule << '\n';
    for (const auto& row : rows_) emit(row);
    return os.str();
  }

  void print() const { std::fputs(to_string().c_str(), stdout); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cxu
