#pragma once
// Tiny command-line flag parser used by examples and figure benches.
//
//   cxu::Options opt(argc, argv);
//   int pes   = opt.get_int("pes", 4);
//   bool lb   = opt.get_bool("lb", false);
//   auto mode = opt.get_string("mode", "threaded");
//
// Accepted syntax: --name=value, --name value, --flag (bool true).
//
// get_int/get_double validate strictly: a present-but-malformed value
// ("--iters=abc", "--alpha=1.5x") throws std::invalid_argument rather
// than silently parsing as 0.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cxu {

class Options {
 public:
  Options() = default;
  Options(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def) const;

  /// Strict unsigned 64-bit parse for RNG seeds: rejects negatives,
  /// garbage, and out-of-range values like get_int does.
  [[nodiscard]] std::uint64_t get_seed(const std::string& name,
                                       std::uint64_t def) const;

  /// get_double plus range validation: a present value outside [0, 1]
  /// throws std::invalid_argument (probabilities never clamp silently).
  [[nodiscard]] double get_prob(const std::string& name, double def) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace cxu
