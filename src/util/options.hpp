#pragma once
// Tiny command-line flag parser used by examples and figure benches.
//
//   cxu::Options opt(argc, argv);
//   int pes   = opt.get_int("pes", 4);
//   bool lb   = opt.get_bool("lb", false);
//   auto mode = opt.get_string("mode", "threaded");
//
// Accepted syntax: --name=value, --name value, --flag (bool true).
//
// The space-separated form is ambiguous for boolean flags: in
// `prog --steal 100000` the 100000 is almost certainly a positional
// argument, not a value for --steal. Programs with positional arguments
// can declare their boolean flags up front:
//
//   cxu::Options opt(argc, argv, {"steal", "verbose"});
//
// A declared boolean never consumes the following token as its value
// (use --steal=off for an explicit value); a bool literal right after a
// declared boolean ("--steal off") is rejected with a positioned error
// instead of being silently mis-parsed.
//
// get_int/get_double/get_bool validate strictly: a present-but-malformed
// value ("--iters=abc", "--alpha=1.5x", "--lb=yse") throws
// std::invalid_argument rather than silently parsing as 0/false.

#include <cstdint>
#include <initializer_list>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace cxu {

class Options {
 public:
  Options() = default;
  Options(int argc, char** argv);
  /// `bool_flags` declares =-style boolean flag names (without the
  /// leading --): they never swallow the next token as a value.
  Options(int argc, char** argv,
          std::initializer_list<std::string_view> bool_flags);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;

  /// Strict boolean: case-insensitive {1,true,yes,on} -> true,
  /// {0,false,no,off} -> false, anything else throws
  /// std::invalid_argument (a typo must not silently disable a feature).
  [[nodiscard]] bool get_bool(const std::string& name, bool def) const;

  /// Strict unsigned 64-bit parse for RNG seeds: rejects negatives,
  /// garbage, and out-of-range values like get_int does.
  [[nodiscard]] std::uint64_t get_seed(const std::string& name,
                                       std::uint64_t def) const;

  /// get_double plus range validation: a present value outside [0, 1]
  /// throws std::invalid_argument (probabilities never clamp silently).
  [[nodiscard]] double get_prob(const std::string& name, double def) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  void parse(int argc, char** argv);

  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  std::set<std::string, std::less<>> bool_flags_;
};

}  // namespace cxu
