#pragma once
// Minimal leveled logger. Thread-safe line-at-a-time output with an
// optional per-PE prefix (set by the runtime when it adopts a thread).

#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>

namespace cxu {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are discarded.
LogLevel log_level() noexcept;
void set_log_level(LogLevel lvl) noexcept;

/// Per-thread PE id used as a log prefix (-1 = not a PE thread).
void set_log_pe(int pe) noexcept;
int log_pe() noexcept;

/// Emit one line. Prefer the CX_LOG_* macros below.
void log_line(LogLevel lvl, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

}  // namespace cxu

#define CX_LOG_AT(lvl, ...)                                      \
  do {                                                           \
    if (static_cast<int>(lvl) >=                                 \
        static_cast<int>(::cxu::log_level())) {                  \
      ::cxu::log_line((lvl), ::cxu::detail::concat(__VA_ARGS__)); \
    }                                                            \
  } while (0)

#define CX_LOG_DEBUG(...) CX_LOG_AT(::cxu::LogLevel::Debug, __VA_ARGS__)
#define CX_LOG_INFO(...) CX_LOG_AT(::cxu::LogLevel::Info, __VA_ARGS__)
#define CX_LOG_WARN(...) CX_LOG_AT(::cxu::LogLevel::Warn, __VA_ARGS__)
#define CX_LOG_ERROR(...) CX_LOG_AT(::cxu::LogLevel::Error, __VA_ARGS__)
