#pragma once
// Deterministic, fast PRNG (splitmix64 seeding + xoshiro256**).
// Used everywhere randomness is needed so simulated runs are reproducible.

#include <cstdint>

namespace cxu {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 to fill state; never all-zero.
    std::uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept { return next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace cxu
