#pragma once
// Wall-clock timer helpers.

#include <chrono>

namespace cxu {

/// Seconds since an arbitrary steady epoch.
inline double wall_time() noexcept {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Simple stopwatch: measures elapsed wall time in seconds.
class Stopwatch {
 public:
  Stopwatch() : start_(wall_time()) {}
  void reset() noexcept { start_ = wall_time(); }
  [[nodiscard]] double elapsed() const noexcept {
    return wall_time() - start_;
  }

 private:
  double start_;
};

}  // namespace cxu
