#pragma once
// Running statistics (Welford) and simple percentile helpers.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace cxu {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  void merge(const RunningStats& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    const double nt = na + nb;
    m2_ += o.m2_ + delta * delta * na * nb / nt;
    mean_ = (na * mean_ + nb * o.mean_) / nt;
    n_ += o.n_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile of a sample set (copies and sorts; fine for bench sizes).
inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(xs.begin(), xs.end());
  const double idx = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace cxu
