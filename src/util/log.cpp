#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace cxu {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_out_mutex;
thread_local int t_pe = -1;

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::Debug: return "DBG";
    case LogLevel::Info: return "INF";
    case LogLevel::Warn: return "WRN";
    case LogLevel::Error: return "ERR";
    case LogLevel::Off: return "OFF";
  }
  return "???";
}
}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel lvl) noexcept {
  g_level.store(static_cast<int>(lvl), std::memory_order_relaxed);
}

void set_log_pe(int pe) noexcept { t_pe = pe; }
int log_pe() noexcept { return t_pe; }

void log_line(LogLevel lvl, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_out_mutex);
  if (t_pe >= 0) {
    std::fprintf(stderr, "[%s pe%d] %s\n", level_name(lvl), t_pe, msg.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_name(lvl), msg.c_str());
  }
}

}  // namespace cxu
