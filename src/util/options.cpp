#include "util/options.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace cxu {

namespace {

[[noreturn]] void bad_value(const std::string& name, const std::string& v,
                            const char* expected) {
  throw std::invalid_argument("--" + name + ": expected " + expected +
                              ", got '" + v + "'");
}

std::string lowered(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

/// Is `s` (case-insensitively) one of the accepted boolean literals?
bool is_bool_literal(const std::string& s) {
  const std::string v = lowered(s);
  return v == "1" || v == "true" || v == "yes" || v == "on" || v == "0" ||
         v == "false" || v == "no" || v == "off";
}

/// Does `s` parse fully as a number? Distinguishes a negative-number
/// value ("-3", "-2.5e-6") from a short flag or garbage ("-x").
bool is_number(const std::string& s) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  (void)std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0';
}

}  // namespace

Options::Options(int argc, char** argv) { parse(argc, argv); }

Options::Options(int argc, char** argv,
                 std::initializer_list<std::string_view> bool_flags) {
  for (const auto f : bool_flags) bool_flags_.emplace(f);
  parse(argc, argv);
}

void Options::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    if (bool_flags_.count(arg) != 0) {
      // A declared boolean never takes a space-separated value, so the
      // next token stays positional ("prog --steal 100000" keeps its
      // task count). A bool literal right after it is ambiguous — the
      // user probably meant a value — so demand the unambiguous form.
      if (i + 1 < argc && is_bool_literal(argv[i + 1])) {
        throw std::invalid_argument(
            "--" + arg + " " + argv[i + 1] + " (argument " +
            std::to_string(i + 1) + "): ambiguous boolean value; use --" +
            arg + "=" + argv[i + 1]);
      }
      flags_[arg] = "true";
      continue;
    }
    if (i + 1 < argc) {
      const std::string next = argv[i + 1];
      // Attach the next token as this flag's value unless it looks like
      // another flag. Tokens starting with '-' only attach when they are
      // numbers ("--offset -3"), so "--mode -x" no longer eats "-x".
      if (next.rfind("--", 0) != 0 &&
          (next.empty() || next[0] != '-' || is_number(next))) {
        flags_[arg] = argv[++i];
        continue;
      }
    }
    flags_[arg] = "true";
  }
}

bool Options::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string Options::get_string(const std::string& name,
                                const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Options::get_int(const std::string& name,
                              std::int64_t def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& v = it->second;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  // Reject empty values, trailing garbage ("--iters=abc", "--iters=3x")
  // and out-of-range magnitudes instead of silently parsing 0.
  if (end == v.c_str() || *end != '\0') bad_value(name, v, "an integer");
  if (errno == ERANGE) bad_value(name, v, "an in-range integer");
  return parsed;
}

double Options::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& v = it->second;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') bad_value(name, v, "a number");
  if (errno == ERANGE) bad_value(name, v, "an in-range number");
  return parsed;
}

std::uint64_t Options::get_seed(const std::string& name,
                                std::uint64_t def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& v = it->second;
  // strtoull would silently wrap "-1" to 2^64-1; a negative seed is a
  // user error, not a request for a huge one.
  if (!v.empty() && v[0] == '-') bad_value(name, v, "a non-negative seed");
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') bad_value(name, v, "a seed");
  if (errno == ERANGE) bad_value(name, v, "an in-range seed");
  return parsed;
}

double Options::get_prob(const std::string& name, double def) const {
  const double p = get_double(name, def);
  if (p < 0.0 || p > 1.0) {
    bad_value(name, get_string(name, ""), "a probability in [0, 1]");
  }
  return p;
}

bool Options::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string v = lowered(it->second);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  bad_value(name, it->second,
            "a boolean (1/0, true/false, yes/no, on/off)");
}

}  // namespace cxu
