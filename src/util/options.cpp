#include "util/options.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace cxu {

namespace {

[[noreturn]] void bad_value(const std::string& name, const std::string& v,
                            const char* expected) {
  throw std::invalid_argument("--" + name + ": expected " + expected +
                              ", got '" + v + "'");
}

}  // namespace

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool Options::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string Options::get_string(const std::string& name,
                                const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Options::get_int(const std::string& name,
                              std::int64_t def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& v = it->second;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  // Reject empty values, trailing garbage ("--iters=abc", "--iters=3x")
  // and out-of-range magnitudes instead of silently parsing 0.
  if (end == v.c_str() || *end != '\0') bad_value(name, v, "an integer");
  if (errno == ERANGE) bad_value(name, v, "an in-range integer");
  return parsed;
}

double Options::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& v = it->second;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') bad_value(name, v, "a number");
  if (errno == ERANGE) bad_value(name, v, "an in-range number");
  return parsed;
}

std::uint64_t Options::get_seed(const std::string& name,
                                std::uint64_t def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& v = it->second;
  // strtoull would silently wrap "-1" to 2^64-1; a negative seed is a
  // user error, not a request for a huge one.
  if (!v.empty() && v[0] == '-') bad_value(name, v, "a non-negative seed");
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') bad_value(name, v, "a seed");
  if (errno == ERANGE) bad_value(name, v, "an in-range seed");
  return parsed;
}

double Options::get_prob(const std::string& name, double def) const {
  const double p = get_double(name, def);
  if (p < 0.0 || p > 1.0) {
    bad_value(name, get_string(name, ""), "a probability in [0, 1]");
  }
  return p;
}

bool Options::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& v = it->second;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace cxu
