#include "util/options.hpp"

#include <cstdlib>
#include <stdexcept>

namespace cxu {

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool Options::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string Options::get_string(const std::string& name,
                                const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Options::get_int(const std::string& name,
                              std::int64_t def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& v = it->second;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace cxu
