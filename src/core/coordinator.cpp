// PE-0 coordinator roles: the measurement-based load balancer
// (paper §II-H) and quiescence detection (two stable waves of
// created/processed counters).

#include <utility>
#include <vector>

#include "core/runtime_impl.hpp"
#include "util/log.hpp"

namespace cx {

// ---- LB coordinator (PE 0) ------------------------------------------------

void Runtime::Impl::lb_round(CollectionId coll, LbCollState& st) {
  const auto& strategy = lookup_lb_strategy(cfg.lb_strategy);
  auto moves = strategy(st.records, P, cfg.seed + lb_stats.rounds);
  CX_TRACE_EVENT(mype(), machine->now(), cx::trace::EventKind::LbDecision,
                 moves.size(), st.records.size());
  lb_stats.rounds++;
  lb_stats.migrations += moves.size();
  lb_stats.last_imbalance_before = imbalance_ratio(st.records, P);
  auto after = st.records;
  for (const auto& mv : moves) {
    for (auto& r : after) {
      if (r.idx == mv.idx && r.pe == mv.from_pe) {
        r.pe = mv.to_pe;
        break;
      }
    }
  }
  lb_stats.last_imbalance_after = imbalance_ratio(after, P);
  st.records.clear();
  if (moves.empty()) {
    broadcast_lb_resume(coll);
    return;
  }
  st.pending_acks = moves.size();
  for (const auto& mv : moves) {
    LbCmdHeader h;
    h.coll = coll;
    h.idx = mv.idx;
    h.to_pe = mv.to_pe;
    rt_send(wire::make_msg(h_lb_cmd, mv.from_pe, h));
  }
}

void Runtime::Impl::broadcast_lb_resume(CollectionId coll) {
  LbResumeHeader h;
  h.coll = coll;
  h.root = mype();
  rt_send(wire::make_msg(h_lb_resume, mype(), h));
}

void Runtime::Impl::on_lb_sync(MessagePtr msg) {
  me().processed++;
  ChareLoadRecord rec = pup::from_bytes<ChareLoadRecord>(msg->data);
  auto& ps = me();
  const auto cit = ps.colls.find(rec.coll);
  if (cit == ps.colls.end()) {
    stash_msg(rec.coll, std::move(msg));
    return;
  }
  auto& st = lb[rec.coll];
  st.records.push_back(rec);
  if (st.records.size() >= cit->second.info.size) {
    lb_round(rec.coll, st);
  }
}

void Runtime::Impl::on_lb_cmd(MessagePtr msg) {
  me().processed++;
  LbCmdHeader h = pup::from_bytes<LbCmdHeader>(msg->data);
  auto& ps = me();
  auto& cm = ps.colls.at(h.coll);
  Chare* obj = find_local(cm, h.idx);
  if (obj == nullptr) {
    CX_LOG_ERROR("LB command for non-local chare ", h.idx.to_string());
    return;
  }
  do_migrate(obj, h.to_pe, /*for_lb=*/true);
}

void Runtime::Impl::on_lb_ack(MessagePtr msg) {
  me().processed++;
  LbAckHeader h = pup::from_bytes<LbAckHeader>(msg->data);
  auto& st = lb[h.coll];
  if (st.pending_acks > 0 && --st.pending_acks == 0) {
    broadcast_lb_resume(h.coll);
  }
}

void Runtime::Impl::on_lb_resume(MessagePtr msg) {
  me().processed++;
  LbResumeHeader h = pup::from_bytes<LbResumeHeader>(msg->data);
  forward_tree(h_lb_resume, h.root, msg->data);
  auto& ps = me();
  const auto cit = ps.colls.find(h.coll);
  if (cit == ps.colls.end()) return;
  std::vector<Chare*> local;
  for (auto& [idx, obj] : cit->second.elements) local.push_back(obj.get());
  for (Chare* obj : local) {
    obj->load_ = 0.0;
    obj->resume_from_sync();
    post_execute(obj);
  }
}

// ---- quiescence (PE 0) ----------------------------------------------------

void Runtime::Impl::qd_start_wave() {
  qd.wave_active = true;
  qd.phase++;
  qd.replies = 0;
  qd.sum_c = 0;
  qd.sum_p = 0;
  QdProbeHeader h;
  h.phase = qd.phase;
  for (int pe = 0; pe < P; ++pe) {
    raw_send(wire::make_msg(h_qd_probe, pe, h));
  }
}

void Runtime::Impl::on_qd_start(MessagePtr msg) {
  QdStartHeader h = pup::from_bytes<QdStartHeader>(msg->data);
  qd.waiters.push_back(h.cb);
  if (!qd.wave_active) {
    qd.have_prev = false;
    qd_start_wave();
  }
}

void Runtime::Impl::on_qd_probe(MessagePtr msg) {
  QdProbeHeader h = pup::from_bytes<QdProbeHeader>(msg->data);
  QdReplyHeader r;
  r.phase = h.phase;
  r.created = me().created;
  r.processed = me().processed;
  raw_send(wire::make_msg(h_qd_reply, 0, r));
}

void Runtime::Impl::on_qd_reply(MessagePtr msg) {
  QdReplyHeader h = pup::from_bytes<QdReplyHeader>(msg->data);
  if (h.phase != qd.phase) return;
  qd.sum_c += h.created;
  qd.sum_p += h.processed;
  if (++qd.replies < P) return;
  const bool settled = qd.sum_c == qd.sum_p;
  const bool stable =
      qd.have_prev && qd.sum_c == qd.prev_c && qd.sum_p == qd.prev_p;
  if (settled && stable) {
    auto waiters = std::move(qd.waiters);
    qd.waiters.clear();
    qd.wave_active = false;
    qd.have_prev = false;
    for (const auto& cb : waiters) deliver_callback(cb, {});
    return;
  }
  qd.prev_c = qd.sum_c;
  qd.prev_p = qd.sum_p;
  qd.have_prev = true;
  qd_start_wave();
}

}  // namespace cx
