#pragma once
// N-dimensional chare array index (paper §II-C, §II-G).
//
// Arrays in CharmPy are indexed by integer n-tuples (and custom keys that
// hash to an integer). Index holds up to kMaxDims dimensions inline; 1-D
// indexes convert implicitly from int. Groups use the PE number as index.

#include <array>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>

#include "pup/pup.hpp"

namespace cx {

class Index {
 public:
  static constexpr int kMaxDims = 6;

  Index() = default;
  Index(int i) : nd_(1) { d_[0] = i; }  // NOLINT: implicit by design
  Index(int i, int j) : nd_(2) {
    d_[0] = i;
    d_[1] = j;
  }
  Index(int i, int j, int k) : nd_(3) {
    d_[0] = i;
    d_[1] = j;
    d_[2] = k;
  }
  Index(std::initializer_list<int> dims) : nd_(0) {
    for (int v : dims) {
      if (nd_ >= kMaxDims) break;
      d_[static_cast<std::size_t>(nd_++)] = v;
    }
  }

  [[nodiscard]] int ndims() const noexcept { return nd_; }
  [[nodiscard]] int operator[](int i) const noexcept {
    return d_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] int& operator[](int i) noexcept {
    return d_[static_cast<std::size_t>(i)];
  }

  bool operator==(const Index& o) const noexcept {
    if (nd_ != o.nd_) return false;
    for (int i = 0; i < nd_; ++i) {
      if (d_[static_cast<std::size_t>(i)] != o.d_[static_cast<std::size_t>(i)])
        return false;
    }
    return true;
  }
  bool operator!=(const Index& o) const noexcept { return !(*this == o); }
  bool operator<(const Index& o) const noexcept {
    if (nd_ != o.nd_) return nd_ < o.nd_;
    for (int i = 0; i < nd_; ++i) {
      const auto a = d_[static_cast<std::size_t>(i)];
      const auto b = o.d_[static_cast<std::size_t>(i)];
      if (a != b) return a < b;
    }
    return false;
  }

  /// Stable 64-bit hash (FNV-1a over the used dims).
  [[nodiscard]] std::uint64_t hash() const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    h = (h ^ static_cast<std::uint64_t>(nd_)) * 1099511628211ULL;
    for (int i = 0; i < nd_; ++i) {
      h = (h ^ static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(d_[static_cast<std::size_t>(i)]))) *
          1099511628211ULL;
    }
    return h;
  }

  [[nodiscard]] std::string to_string() const {
    std::string s = "(";
    for (int i = 0; i < nd_; ++i) {
      if (i) s += ',';
      s += std::to_string(d_[static_cast<std::size_t>(i)]);
    }
    return s + ")";
  }

  void pup(pup::Er& p) {
    p | nd_;
    p | d_;
  }

 private:
  std::array<int, kMaxDims> d_{};
  int nd_ = 0;
};

struct IndexHash {
  std::size_t operator()(const Index& i) const noexcept {
    return static_cast<std::size_t>(i.hash());
  }
};

}  // namespace cx
