// Entry-method delivery: fibers, the condition-aware when-buffering
// engine, the pooled LocalEnvelope fast path (paper §II-D: same-PE
// sends pass the live argument tuple by reference, no serialization),
// and proxy_send.

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/runtime_impl.hpp"

namespace cx {

// ---- when-engine switches -------------------------------------------------

namespace {

bool when_dirty_default() {
  const char* e = std::getenv("CHARMX_NO_WHEN_DIRTY");
  return e == nullptr || e[0] == '\0' || e[0] == '0';
}

std::atomic<bool> g_when_dirty{when_dirty_default()};
std::atomic<std::uint64_t> g_when_epoch{0};

}  // namespace

bool when_dirty_tracking_enabled() noexcept {
  return g_when_dirty.load(std::memory_order_relaxed);
}

void set_when_dirty_tracking(bool on) noexcept {
  g_when_dirty.store(on, std::memory_order_relaxed);
}

std::uint64_t when_config_epoch() noexcept {
  return g_when_epoch.load(std::memory_order_relaxed);
}

void bump_when_config_epoch() noexcept {
  g_when_epoch.fetch_add(1, std::memory_order_relaxed);
}

// ---- LocalEnvelope pool ---------------------------------------------------
// Every local resume/timer/entry send used to make_shared a fresh
// envelope; now they recycle through a per-thread free list. Envelopes
// are acquired on the sending thread and released on the receiving PE's
// thread — for same-PE traffic (all of it except the Start envelope)
// that is the same cache.

namespace {

constexpr std::size_t kEnvCacheCap = 256;

struct EnvCache {
  std::vector<LocalEnvelope*> free;
  ~EnvCache() {
    for (LocalEnvelope* e : free) delete e;
  }
};

thread_local EnvCache t_env_cache;

}  // namespace

LocalEnvelope* acquire_envelope() {
  auto& w = cx::trace::detail::g_wire;
  if (wire::pool_enabled() && !t_env_cache.free.empty()) {
    LocalEnvelope* e = t_env_cache.free.back();
    t_env_cache.free.pop_back();
    w.env_hits.fetch_add(1, std::memory_order_relaxed);
    return e;
  }
  w.env_allocs.fetch_add(1, std::memory_order_relaxed);
  return new LocalEnvelope();
}

void release_envelope(LocalEnvelope* env) noexcept {
  if (env == nullptr) return;
  if (wire::pool_enabled() && t_env_cache.free.size() < kEnvCacheCap) {
    env->reset();
    t_env_cache.free.push_back(env);
    return;
  }
  delete env;
}

void drop_envelope(void* env) noexcept {
  release_envelope(static_cast<LocalEnvelope*>(env));
}

// ---- shared topology helpers ---------------------------------------------

void tree_children(int self, int root, int num_pes, std::vector<int>& out) {
  tree::binomial_children(self, root, num_pes, out);
}

void Runtime::Impl::forward_tree(std::uint32_t handler, int root,
                                 const wire::Buffer& payload) {
  std::vector<int> kids;
  tree_children(mype(), root, P, kids);
  for (const int k : kids) rt_send(wire::clone_payload(handler, k, payload));
}

Index delinearize(std::uint64_t lin, const Index& dims) {
  Index idx = dims;  // same arity
  for (int i = dims.ndims() - 1; i >= 0; --i) {
    idx[i] = static_cast<int>(lin % static_cast<std::uint64_t>(dims[i]));
    lin /= static_cast<std::uint64_t>(dims[i]);
  }
  return idx;
}

// ---- fibers ---------------------------------------------------------------

void Runtime::Impl::run_fiber(std::function<void()> body, Chare* owner) {
  auto fib = std::make_unique<Fiber>(std::move(body));
  Fiber* f = fib.get();
  me().fibers[f] = FiberRec{std::move(fib), owner};
  resume_fiber(f);
}

void Runtime::Impl::resume_fiber(Fiber* f) {
  auto& ps = me();
  const auto it = ps.fibers.find(f);
  if (it == ps.fibers.end()) return;  // already completed
  Chare* owner = it->second.owner;
  const double t0 = machine->now();
  CX_TRACE_EVENT(mype(), t0, cx::trace::EventKind::FiberResume, 0, 0);
  f->resume();
  const double dt = machine->now() - t0;
  if (owner) owner->load_ += dt;
  if (f->done()) {
    ps.fibers.erase(f);
  } else {
    CX_TRACE_EVENT(mype(), machine->now(),
                   cx::trace::EventKind::FiberSuspend, 0, 0);
  }
  if (owner) post_execute(owner);
}

// ---- delivery / execution -------------------------------------------------

void Runtime::Impl::deliver(Chare* obj, EpId ep, std::shared_ptr<void> tuple,
                            const ReplyTo& reply, const ReplyTo& bdone) {
  const EpInfo& info = Registry::instance().ep(ep);
  if (info.when) {
    cx::trace::detail::g_when.tests.fetch_add(1, std::memory_order_relaxed);
    if (!info.when(obj, tuple.get())) {
      buffer_invoke(obj, info, ep, std::move(tuple), reply, bdone);
      return;
    }
  }
  execute(obj, ep, std::move(tuple), reply, bdone);
}

/// Resolve the dependency set of `ep`'s when condition for this message,
/// or nullptr when the engine must stay conservative (no info, analysis
/// gave up, or tracking disabled).
const WhenDeps* Runtime::Impl::resolve_when_deps(const EpInfo& info,
                                                 Chare* obj, void* args) {
  if (!when_dirty_tracking_enabled() || !info.when) return nullptr;
  const WhenDeps* deps = nullptr;
  if (info.when_deps) {
    deps = info.when_deps(obj, args);
  } else if (info.when_deps_static) {
    deps = info.when_deps_static.get();
  }
  if (deps != nullptr && !deps->known) deps = nullptr;
  return deps;
}

/// Attach dependency bookkeeping to a pending delivery: cache direct
/// dirty-clock slot pointers when the set is small, fall back to the
/// any_since scan otherwise.
void Runtime::Impl::bind_dep_slots(Chare* obj, PendingInvoke& pi) {
  pi.n_slots = 0;
  if (pi.deps == nullptr) return;
  const auto& attrs = pi.deps->attrs;
  if (attrs.size() > pi.dep_slots.size()) {
    pi.n_slots = PendingInvoke::kSlowDeps;
    return;
  }
  pi.n_slots = static_cast<std::uint8_t>(attrs.size());
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    pi.dep_slots[i] = obj->dirty_.slot_for(attrs[i]);
  }
}

/// Park a delivery whose when condition just failed.
void Runtime::Impl::buffer_invoke(Chare* obj, const EpInfo& info, EpId ep,
                                  std::shared_ptr<void> tuple,
                                  const ReplyTo& reply, const ReplyTo& bdone) {
  WhenBuffer& buf = obj->buffered_;
  if (buf.empty()) obj->when_epoch_seen_ = when_config_epoch();
  PendingInvoke pi;
  pi.ep = ep;
  pi.args = std::move(tuple);
  pi.reply = reply;
  pi.bcast_done = bdone;
  pi.seq = buf.next_seq++;
  pi.deps = resolve_when_deps(info, obj, pi.args.get());
  pi.tested_at = obj->dirty_.now();
  bind_dep_slots(obj, pi);
  if (pi.deps == nullptr) buf.unknown++;
  WhenBuffer::Bucket& b = buf.bucket_for(ep, pi.deps);
  if (b.q.empty()) b.floor = pi.tested_at;
  b.q.push_back(std::move(pi));
  buf.total++;
  auto& w = cx::trace::detail::g_when;
  w.buffered.fetch_add(1, std::memory_order_relaxed);
  w.raise_high_water(buf.total);
  CX_TRACE_EVENT(mype(), machine->now(), cx::trace::EventKind::WhenBuffer,
                 obj->coll_, buf.total);
}

/// Conservative rebuild after a when-configuration change (set_when /
/// clear_when / dyn condition redefinition): re-extract every buffered
/// message's deps and force one fresh test of each.
void Runtime::Impl::rebucket_buffered(Chare* obj) {
  WhenBuffer& buf = obj->buffered_;
  std::vector<PendingInvoke> all;
  all.reserve(buf.total);
  buf.for_each_in_order(
      [&](PendingInvoke& pi) { all.push_back(std::move(pi)); });
  buf.clear();
  auto& reg = Registry::instance();
  for (auto& pi : all) {
    const EpInfo& info = reg.ep(pi.ep);
    pi.deps = resolve_when_deps(info, obj, pi.args.get());
    pi.tested_at = 0;  // force a test under the (possibly new) condition
    bind_dep_slots(obj, pi);
    if (pi.deps == nullptr) buf.unknown++;
    WhenBuffer::Bucket& b = buf.bucket_for(pi.ep, pi.deps);
    b.floor = 0;
    b.q.push_back(std::move(pi));
    buf.total++;
  }
  obj->last_retest_clock_ = 0;
}

/// Drain every when-buffered message that became eligible. Replaces the
/// seed's retry-all rescan: buckets whose dependency set saw no dirty
/// mark since their last failed test are skipped with one clock check,
/// and individual messages are filtered through cached slot pointers.
/// Delivery order is unchanged — among simultaneously-eligible messages
/// the earliest-arrived (minimum seq) executes first, exactly like the
/// seed's front-to-back rescan.
void Runtime::Impl::retest_buffered(Chare* obj) {
  WhenBuffer& buf = obj->buffered_;
  if (buf.empty()) return;
  const bool tracking = when_dirty_tracking_enabled();
  if (obj->when_epoch_seen_ != when_config_epoch()) {
    obj->when_epoch_seen_ = when_config_epoch();
    rebucket_buffered(obj);
  }
  std::uint64_t n_tests = 0, n_hits = 0, n_skipped = 0;
  auto& reg = Registry::instance();
  while (!buf.empty()) {
    if (tracking && buf.unknown == 0 &&
        obj->dirty_.now() == obj->last_retest_clock_) {
      break;  // nothing any tracked condition reads changed since last pass
    }
    const std::uint64_t now = obj->dirty_.now();
    PendingInvoke* best = nullptr;
    WhenBuffer::Bucket* best_bucket = nullptr;
    std::size_t best_pos = 0;
    for (auto& b : buf.buckets) {
      if (b.q.empty()) continue;
      const EpInfo& info = reg.ep(b.ep);
      if (!info.when) {
        // Predicate cleared while buffered: the whole bucket is eligible.
        if (best == nullptr || b.q.front().seq < best->seq) {
          best = &b.q.front();
          best_bucket = &b;
          best_pos = 0;
        }
        continue;
      }
      const bool filter = tracking && b.deps != nullptr;
      if (filter && b.floor > 0 && !obj->dirty_.any_since(*b.deps, b.floor)) {
        // No dependency changed since every message here last failed.
        n_skipped += b.q.size();
        b.floor = now;
        continue;
      }
      bool walked_all = true;
      for (std::size_t pos = 0; pos < b.q.size(); ++pos) {
        PendingInvoke& pi = b.q[pos];
        if (best != nullptr && pi.seq > best->seq) {
          walked_all = false;
          break;  // q is seq-ascending: nothing further can beat best
        }
        if (filter && pi.tested_at > 0) {
          bool candidate;
          if (pi.n_slots == PendingInvoke::kSlowDeps) {
            candidate = obj->dirty_.any_since(*pi.deps, pi.tested_at);
          } else {
            candidate = false;
            for (std::uint8_t i = 0; i < pi.n_slots; ++i) {
              if (*pi.dep_slots[i] > pi.tested_at) {
                candidate = true;
                break;
              }
            }
          }
          if (!candidate) {
            // Deps unchanged since the last failed test, so the
            // condition still fails; stamping the current tick is safe.
            pi.tested_at = now;
            ++n_skipped;
            continue;
          }
        }
        ++n_tests;
        if (info.when(obj, pi.args.get())) {
          best = &pi;
          best_bucket = &b;
          best_pos = pos;
          break;  // seq-ascending: first passer is this bucket's earliest
        }
        pi.tested_at = now;
      }
      if (walked_all && best_bucket != &b) b.floor = now;
    }
    if (best == nullptr) {
      obj->last_retest_clock_ = obj->dirty_.now();
      break;
    }
    PendingInvoke pi = std::move(*best);
    best_bucket->q.erase(best_bucket->q.begin() +
                         static_cast<std::ptrdiff_t>(best_pos));
    buf.total--;
    if (pi.deps == nullptr) buf.unknown--;
    ++n_hits;
    execute(obj, pi.ep, std::move(pi.args), pi.reply, pi.bcast_done);
  }
  if (n_tests + n_hits + n_skipped != 0) {
    auto& w = cx::trace::detail::g_when;
    w.tests.fetch_add(n_tests, std::memory_order_relaxed);
    w.hits.fetch_add(n_hits, std::memory_order_relaxed);
    w.skipped.fetch_add(n_skipped, std::memory_order_relaxed);
  }
}

void Runtime::Impl::execute(Chare* obj, EpId ep, std::shared_ptr<void> tuple,
                            const ReplyTo& reply, const ReplyTo& bdone) {
  const EpInfo& info = Registry::instance().ep(ep);
  const CollectionId coll = obj->coll_;
  auto body = [this, obj, ep, tuple = std::move(tuple), reply, bdone,
               coll]() {
    Registry::instance().ep(ep).invoke(obj, tuple.get(), reply);
    if (bdone.valid()) {
      BcastDoneHeader h;
      h.coll = coll;
      h.reply = bdone;
      h.count = 1;
      rt_send(wire::make_msg(h_bcast_done, static_cast<int>(coll) % P, h));
    }
  };
  if (info.threaded) {
    obj->active_fibers_++;
    run_fiber(
        [this, body = std::move(body), obj, coll, ep]() {
          // The recorded span covers the whole threaded entry, including
          // any time suspended on futures/wait (see FiberSuspend events).
          const double t0 = machine->now();
          CX_TRACE_EVENT(mype(), t0, cx::trace::EventKind::EntryBegin,
                         coll, ep);
          body();
          const double t1 = machine->now();
          CX_TRACE_EVENT(mype(), t1, cx::trace::EventKind::EntryEnd, ep,
                         static_cast<std::uint64_t>((t1 - t0) * 1e9));
          obj->active_fibers_--;
        },
        obj);
  } else {
    const double t0 = machine->now();
    CX_TRACE_EVENT(mype(), t0, cx::trace::EventKind::EntryBegin, coll, ep);
    body();
    const double t1 = machine->now();
    obj->load_ += t1 - t0;
    CX_TRACE_EVENT(mype(), t1, cx::trace::EventKind::EntryEnd, ep,
                   static_cast<std::uint64_t>((t1 - t0) * 1e9));
    post_execute(obj);
  }
}

/// After any entry method runs on `obj`: drain newly-eligible
/// when-buffered messages, re-check wait() conditions, perform deferred
/// migration / AtSync.
void Runtime::Impl::post_execute(Chare* obj) {
  if (obj->post_active_) return;
  obj->post_active_ = true;
  retest_buffered(obj);
  for (auto& w : obj->waits_) {
    if (!w.scheduled && w.cond()) {
      w.scheduled = true;
      send_resume(w.fiber);
    }
  }
  obj->post_active_ = false;
  if (obj->sync_pending_) {
    obj->sync_pending_ = false;
    ChareLoadRecord rec;
    rec.coll = obj->coll_;
    rec.idx = obj->idx_;
    rec.pe = mype();
    rec.load = obj->load_;
    rt_send(wire::make_msg(h_lb_sync, 0, rec));
  }
  if (obj->migrate_pending_ && obj->active_fibers_ == 0) {
    obj->migrate_pending_ = false;
    do_migrate(obj, obj->migrate_to_, obj->migrate_for_lb_);
  }
}

// ---- handlers -------------------------------------------------------------

void Runtime::Impl::on_local(MessagePtr msg) {
  EnvelopePtr env(static_cast<LocalEnvelope*>(msg->take_local()));
  if (env->kind == LocalEnvelope::Kind::Timer) {
    // Timers ride on Machine::send_after, which is uncounted: no
    // processed++ here, or quiescence detection would never settle.
    auto& ps = me();
    const auto it = ps.timer_waiters.find(env->timer_token);
    if (it == ps.timer_waiters.end()) return;  // disarmed: value arrived
    Fiber* f = it->second;
    ps.timer_waiters.erase(it);
    resume_fiber(f);
    return;
  }
  if (env->kind == LocalEnvelope::Kind::Post) {
    // Posts (cx::post_after) ride Machine::send_after like timers:
    // uncounted, so an armed periodic callback never holds off
    // quiescence detection.
    run_fiber(std::move(env->fn), nullptr);
    return;
  }
  me().processed++;
  switch (env->kind) {
    case LocalEnvelope::Kind::Start:
      run_fiber(std::move(env->fn), nullptr);
      return;
    case LocalEnvelope::Kind::Resume:
      resume_fiber(env->fiber);
      return;
    case LocalEnvelope::Kind::Entry: {
      auto& ps = me();
      const auto it = ps.colls.find(env->coll);
      auto to_remote = [&]() {
        EntryHeader h;
        h.coll = env->coll;
        h.idx = env->idx;
        h.ep = env->ep;
        h.reply = env->reply;
        h.bcast_done = env->bcast_done;
        return wire::make_msg_pup(h_entry, mype(), h, [&](pup::Er& p) {
          env->pup_args(env->tuple.get(), p);
        });
      };
      if (it == ps.colls.end()) {
        stash_msg(env->coll, to_remote());
        return;
      }
      CollMeta& cm = it->second;
      if (Chare* obj = find_local(cm, env->idx)) {
        deliver(obj, env->ep, std::move(env->tuple), env->reply,
                env->bcast_done);
      } else {
        // Element moved between send and delivery: fall back to bytes.
        route_entry_msg(cm, env->idx, to_remote());
      }
      return;
    }
    case LocalEnvelope::Kind::Timer:
    case LocalEnvelope::Kind::Post:
      return;  // handled above
  }
}

void Runtime::Impl::on_entry(MessagePtr msg) {
  me().processed++;
  pup::Unpacker u(msg->data.data(), msg->data.size());
  EntryHeader h;
  u | h;
  auto& ps = me();
  const auto it = ps.colls.find(h.coll);
  if (it == ps.colls.end()) {
    stash_msg(h.coll, std::move(msg));
    return;
  }
  CollMeta& cm = it->second;
  if (Chare* obj = find_local(cm, h.idx)) {
    const EpInfo& info = Registry::instance().ep(h.ep);
    auto tuple = info.unpack(u);
    deliver(obj, h.ep, std::move(tuple), h.reply, h.bcast_done);
  } else {
    route_entry_msg(cm, h.idx, std::move(msg));
  }
}

// ---- scheduled callbacks --------------------------------------------------

void post_after(double delay_s, std::function<void()> fn) {
  auto& I = Runtime::current().impl();
  const int pe = I.mype();
  assert(pe >= 0 && "post_after outside of a PE context");
  LocalEnvelope* env = acquire_envelope();
  env->kind = LocalEnvelope::Kind::Post;
  env->fn = std::move(fn);
  I.machine->send_after(I.wrap_local(env, pe), delay_s);
}

// ---- point-to-point sends (bridge from the header-only proxies) -----------

namespace detail {

void proxy_send(CollectionId coll, const Index& idx, EpId ep,
                ArgsCarrier args, const ReplyTo& reply,
                std::uint64_t nominal_bytes) {
  auto& I = Runtime::current().impl();
  auto& ps = I.me();
  const auto it = ps.colls.find(coll);
  if (local_fastpath_enabled() && it != ps.colls.end() &&
      it->second.elements.count(idx) != 0) {
    // Same-PE fast path: hand the live tuple over, no serialization
    // (paper §II-D). The caller gave up ownership of the arguments.
    LocalEnvelope* env = acquire_envelope();
    env->kind = LocalEnvelope::Kind::Entry;
    env->coll = coll;
    env->idx = idx;
    env->ep = ep;
    env->tuple = std::move(args.tuple);
    env->pup_args = args.pup;
    env->reply = reply;
    I.send_local(I.mype(), env);
    return;
  }
  EntryHeader h;
  h.coll = coll;
  h.idx = idx;
  h.ep = ep;
  h.reply = reply;
  auto msg = wire::make_msg_pup(I.h_entry, I.mype(), h, [&](pup::Er& p) {
    args.pup(args.tuple.get(), p);
  });
  msg->size_override = nominal_bytes;
  if (it == ps.colls.end()) {
    I.stash_msg(coll, std::move(msg));
    return;
  }
  if (it->second.elements.count(idx) != 0) {
    // Local element but the by-reference fast path is disabled: deliver
    // the packed message through the scheduler (full serialize cycle).
    I.rt_send(std::move(msg));
    return;
  }
  I.route_entry_msg(it->second, idx, std::move(msg));
}

}  // namespace detail
}  // namespace cx
