// Entry-method delivery: fibers, when-buffering, the pooled
// LocalEnvelope fast path (paper §II-D: same-PE sends pass the live
// argument tuple by reference, no serialization), and proxy_send.

#include <stdexcept>
#include <utility>
#include <vector>

#include "core/runtime_impl.hpp"

namespace cx {

// ---- LocalEnvelope pool ---------------------------------------------------
// Every local resume/timer/entry send used to make_shared a fresh
// envelope; now they recycle through a per-thread free list. Envelopes
// are acquired on the sending thread and released on the receiving PE's
// thread — for same-PE traffic (all of it except the Start envelope)
// that is the same cache.

namespace {

constexpr std::size_t kEnvCacheCap = 256;

struct EnvCache {
  std::vector<LocalEnvelope*> free;
  ~EnvCache() {
    for (LocalEnvelope* e : free) delete e;
  }
};

thread_local EnvCache t_env_cache;

}  // namespace

LocalEnvelope* acquire_envelope() {
  auto& w = cx::trace::detail::g_wire;
  if (wire::pool_enabled() && !t_env_cache.free.empty()) {
    LocalEnvelope* e = t_env_cache.free.back();
    t_env_cache.free.pop_back();
    w.env_hits.fetch_add(1, std::memory_order_relaxed);
    return e;
  }
  w.env_allocs.fetch_add(1, std::memory_order_relaxed);
  return new LocalEnvelope();
}

void release_envelope(LocalEnvelope* env) noexcept {
  if (env == nullptr) return;
  if (wire::pool_enabled() && t_env_cache.free.size() < kEnvCacheCap) {
    env->reset();
    t_env_cache.free.push_back(env);
    return;
  }
  delete env;
}

void drop_envelope(void* env) noexcept {
  release_envelope(static_cast<LocalEnvelope*>(env));
}

// ---- shared topology helpers ---------------------------------------------

void tree_children(int self, int root, int num_pes, std::vector<int>& out) {
  out.clear();
  const int q = (self - root + num_pes) % num_pes;
  const int lim = (q == 0) ? num_pes : (q & -q);
  for (int mask = 1; mask < lim; mask <<= 1) {
    const int child = q + mask;
    if (child < num_pes) out.push_back((child + root) % num_pes);
  }
}

Index delinearize(std::uint64_t lin, const Index& dims) {
  Index idx = dims;  // same arity
  for (int i = dims.ndims() - 1; i >= 0; --i) {
    idx[i] = static_cast<int>(lin % static_cast<std::uint64_t>(dims[i]));
    lin /= static_cast<std::uint64_t>(dims[i]);
  }
  return idx;
}

// ---- fibers ---------------------------------------------------------------

void Runtime::Impl::run_fiber(std::function<void()> body, Chare* owner) {
  auto fib = std::make_unique<Fiber>(std::move(body));
  Fiber* f = fib.get();
  me().fibers[f] = FiberRec{std::move(fib), owner};
  resume_fiber(f);
}

void Runtime::Impl::resume_fiber(Fiber* f) {
  auto& ps = me();
  const auto it = ps.fibers.find(f);
  if (it == ps.fibers.end()) return;  // already completed
  Chare* owner = it->second.owner;
  const double t0 = machine->now();
  CX_TRACE_EVENT(mype(), t0, cx::trace::EventKind::FiberResume, 0, 0);
  f->resume();
  const double dt = machine->now() - t0;
  if (owner) owner->load_ += dt;
  if (f->done()) {
    ps.fibers.erase(f);
  } else {
    CX_TRACE_EVENT(mype(), machine->now(),
                   cx::trace::EventKind::FiberSuspend, 0, 0);
  }
  if (owner) post_execute(owner);
}

// ---- delivery / execution -------------------------------------------------

void Runtime::Impl::deliver(Chare* obj, EpId ep, std::shared_ptr<void> tuple,
                            const ReplyTo& reply, const ReplyTo& bdone) {
  const EpInfo& info = Registry::instance().ep(ep);
  if (info.when && !info.when(obj, tuple.get())) {
    obj->buffered_.push_back({ep, std::move(tuple), reply, bdone});
    CX_TRACE_EVENT(mype(), machine->now(),
                   cx::trace::EventKind::WhenBuffer, obj->coll_,
                   obj->buffered_.size());
    return;
  }
  execute(obj, ep, std::move(tuple), reply, bdone);
}

void Runtime::Impl::execute(Chare* obj, EpId ep, std::shared_ptr<void> tuple,
                            const ReplyTo& reply, const ReplyTo& bdone) {
  const EpInfo& info = Registry::instance().ep(ep);
  const CollectionId coll = obj->coll_;
  auto body = [this, obj, ep, tuple = std::move(tuple), reply, bdone,
               coll]() {
    Registry::instance().ep(ep).invoke(obj, tuple.get(), reply);
    if (bdone.valid()) {
      BcastDoneHeader h;
      h.coll = coll;
      h.reply = bdone;
      h.count = 1;
      rt_send(wire::make_msg(h_bcast_done, static_cast<int>(coll) % P, h));
    }
  };
  if (info.threaded) {
    obj->active_fibers_++;
    run_fiber(
        [this, body = std::move(body), obj, coll, ep]() {
          // The recorded span covers the whole threaded entry, including
          // any time suspended on futures/wait (see FiberSuspend events).
          const double t0 = machine->now();
          CX_TRACE_EVENT(mype(), t0, cx::trace::EventKind::EntryBegin,
                         coll, ep);
          body();
          const double t1 = machine->now();
          CX_TRACE_EVENT(mype(), t1, cx::trace::EventKind::EntryEnd, ep,
                         static_cast<std::uint64_t>((t1 - t0) * 1e9));
          obj->active_fibers_--;
        },
        obj);
  } else {
    const double t0 = machine->now();
    CX_TRACE_EVENT(mype(), t0, cx::trace::EventKind::EntryBegin, coll, ep);
    body();
    const double t1 = machine->now();
    obj->load_ += t1 - t0;
    CX_TRACE_EVENT(mype(), t1, cx::trace::EventKind::EntryEnd, ep,
                   static_cast<std::uint64_t>((t1 - t0) * 1e9));
    post_execute(obj);
  }
}

/// After any entry method runs on `obj`: retry when-buffered messages,
/// re-check wait() conditions, perform deferred migration / AtSync.
void Runtime::Impl::post_execute(Chare* obj) {
  if (obj->post_active_) return;
  obj->post_active_ = true;
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = obj->buffered_.begin(); it != obj->buffered_.end();
         ++it) {
      const EpInfo& info = Registry::instance().ep(it->ep);
      if (!info.when || info.when(obj, it->args.get())) {
        PendingInvoke pi = std::move(*it);
        obj->buffered_.erase(it);
        execute(obj, pi.ep, std::move(pi.args), pi.reply, pi.bcast_done);
        progress = true;
        break;
      }
    }
  }
  for (auto& w : obj->waits_) {
    if (!w.scheduled && w.cond()) {
      w.scheduled = true;
      send_resume(w.fiber);
    }
  }
  obj->post_active_ = false;
  if (obj->sync_pending_) {
    obj->sync_pending_ = false;
    ChareLoadRecord rec;
    rec.coll = obj->coll_;
    rec.idx = obj->idx_;
    rec.pe = mype();
    rec.load = obj->load_;
    rt_send(wire::make_msg(h_lb_sync, 0, rec));
  }
  if (obj->migrate_pending_ && obj->active_fibers_ == 0) {
    obj->migrate_pending_ = false;
    do_migrate(obj, obj->migrate_to_, obj->migrate_for_lb_);
  }
}

// ---- handlers -------------------------------------------------------------

void Runtime::Impl::on_local(MessagePtr msg) {
  EnvelopePtr env(static_cast<LocalEnvelope*>(msg->take_local()));
  if (env->kind == LocalEnvelope::Kind::Timer) {
    // Timers ride on Machine::send_after, which is uncounted: no
    // processed++ here, or quiescence detection would never settle.
    auto& ps = me();
    const auto it = ps.timer_waiters.find(env->timer_token);
    if (it == ps.timer_waiters.end()) return;  // disarmed: value arrived
    Fiber* f = it->second;
    ps.timer_waiters.erase(it);
    resume_fiber(f);
    return;
  }
  me().processed++;
  switch (env->kind) {
    case LocalEnvelope::Kind::Start:
      run_fiber(std::move(env->fn), nullptr);
      return;
    case LocalEnvelope::Kind::Resume:
      resume_fiber(env->fiber);
      return;
    case LocalEnvelope::Kind::Entry: {
      auto& ps = me();
      const auto it = ps.colls.find(env->coll);
      auto to_remote = [&]() {
        EntryHeader h;
        h.coll = env->coll;
        h.idx = env->idx;
        h.ep = env->ep;
        h.reply = env->reply;
        h.bcast_done = env->bcast_done;
        return wire::make_msg_pup(h_entry, mype(), h, [&](pup::Er& p) {
          env->pup_args(env->tuple.get(), p);
        });
      };
      if (it == ps.colls.end()) {
        stash_msg(env->coll, to_remote());
        return;
      }
      CollMeta& cm = it->second;
      if (Chare* obj = find_local(cm, env->idx)) {
        deliver(obj, env->ep, std::move(env->tuple), env->reply,
                env->bcast_done);
      } else {
        // Element moved between send and delivery: fall back to bytes.
        route_entry_msg(cm, env->idx, to_remote());
      }
      return;
    }
    case LocalEnvelope::Kind::Timer:
      return;  // handled above
  }
}

void Runtime::Impl::on_entry(MessagePtr msg) {
  me().processed++;
  pup::Unpacker u(msg->data.data(), msg->data.size());
  EntryHeader h;
  u | h;
  auto& ps = me();
  const auto it = ps.colls.find(h.coll);
  if (it == ps.colls.end()) {
    stash_msg(h.coll, std::move(msg));
    return;
  }
  CollMeta& cm = it->second;
  if (Chare* obj = find_local(cm, h.idx)) {
    const EpInfo& info = Registry::instance().ep(h.ep);
    auto tuple = info.unpack(u);
    deliver(obj, h.ep, std::move(tuple), h.reply, h.bcast_done);
  } else {
    route_entry_msg(cm, h.idx, std::move(msg));
  }
}

// ---- point-to-point sends (bridge from the header-only proxies) -----------

namespace detail {

void proxy_send(CollectionId coll, const Index& idx, EpId ep,
                ArgsCarrier args, const ReplyTo& reply,
                std::uint64_t nominal_bytes) {
  auto& I = Runtime::current().impl();
  auto& ps = I.me();
  const auto it = ps.colls.find(coll);
  if (local_fastpath_enabled() && it != ps.colls.end() &&
      it->second.elements.count(idx) != 0) {
    // Same-PE fast path: hand the live tuple over, no serialization
    // (paper §II-D). The caller gave up ownership of the arguments.
    LocalEnvelope* env = acquire_envelope();
    env->kind = LocalEnvelope::Kind::Entry;
    env->coll = coll;
    env->idx = idx;
    env->ep = ep;
    env->tuple = std::move(args.tuple);
    env->pup_args = args.pup;
    env->reply = reply;
    I.send_local(I.mype(), env);
    return;
  }
  EntryHeader h;
  h.coll = coll;
  h.idx = idx;
  h.ep = ep;
  h.reply = reply;
  auto msg = wire::make_msg_pup(I.h_entry, I.mype(), h, [&](pup::Er& p) {
    args.pup(args.tuple.get(), p);
  });
  msg->size_override = nominal_bytes;
  if (it == ps.colls.end()) {
    I.stash_msg(coll, std::move(msg));
    return;
  }
  if (it->second.elements.count(idx) != 0) {
    // Local element but the by-reference fast path is disabled: deliver
    // the packed message through the scheduler (full serialize cycle).
    I.rt_send(std::move(msg));
    return;
  }
  I.route_entry_msg(it->second, idx, std::move(msg));
}

}  // namespace detail
}  // namespace cx
