#pragma once
// Collection metadata and element-placement maps (paper §II-C, §II-G).
//
// Every PE holds a copy of each collection's metadata (delivered by the
// creation broadcast). The placement map gives the *home* PE of an index:
// the PE an element starts on, and the PE that always knows the element's
// current location after migrations.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/index.hpp"
#include "pup/pup.hpp"

namespace cx {

struct CollectionInfo {
  CollectionId id = kInvalidCollection;
  CollectionKind kind = CollectionKind::Array;
  Index dims;           ///< dense array shape (unused for other kinds)
  int ndims = 1;        ///< index arity (sparse arrays fix this up front)
  std::uint64_t size = 0;  ///< element count; sparse: set by done_inserting
  FactoryId ctor = 0;
  std::vector<std::byte> ctor_args;
  std::string map_name = "block";
  std::int32_t fixed_pe = -1;  ///< singleton placement
  bool inserting = false;      ///< sparse array still accepting inserts

  void pup(pup::Er& p) {
    p | id;
    p | kind;
    p | dims;
    p | ndims;
    p | size;
    p | ctor;
    p | ctor_args;
    p | map_name;
    p | fixed_pe;
    p | inserting;
  }
};

/// Placement map: index -> PE. Equivalent of the paper's ArrayMap chares
/// (§II-G1), registered by name.
using MapFn = std::function<int(const Index& idx, const CollectionInfo& info,
                                int num_pes)>;

/// Register a custom placement map under `name` (process-global).
void register_map(const std::string& name, MapFn fn);

/// Look up a map by name; throws std::out_of_range for unknown names.
const MapFn& lookup_map(const std::string& name);

/// Row-major linearization of a dense index.
std::uint64_t linearize(const Index& idx, const Index& dims);

/// Number of elements of a dense shape.
std::uint64_t dense_size(const Index& dims);

/// Home/initial PE of an element (map-based; singleton/group are fixed).
int home_pe(const CollectionInfo& info, const Index& idx, int num_pes);

}  // namespace cx
