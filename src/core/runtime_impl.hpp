#pragma once
// Internal shared state of the runtime scheduler. PR 4 split the old
// 2100-line runtime.cpp into cohesive translation units that all
// include this header:
//
//   runtime.cpp     — Impl construction, handler registration, the
//                     public Runtime API, Chare services
//   delivery.cpp    — entry-method delivery, when-buffering, fibers,
//                     the pooled LocalEnvelope fast path, proxy_send
//   location.cpp    — location manager, migration, insert/create
//   collectives.cpp — reductions, broadcasts, futures, callbacks
//   coordinator.cpp — LB coordinator and quiescence detection (PE 0)
//   ft_handlers.cpp — fault-tolerance handlers and the cx::ft API
//
// Wire-format headers live in wire/wire_headers.hpp; every cross-PE
// send goes through the cx::wire single-pass envelope builder.
// Nothing outside src/core includes this header.

#include <atomic>
#include <cassert>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/chare.hpp"
#include "core/collection.hpp"
#include "core/lb.hpp"
#include "core/registry.hpp"
#include "core/runtime.hpp"
#include "core/send_iface.hpp"
#include "core/spantree.hpp"
#include "fiber/fiber.hpp"
#include "ft/ft.hpp"
#include "machine/machine.hpp"
#include "trace/trace.hpp"
#include "wire/envelope.hpp"
#include "wire/wire_headers.hpp"

namespace cx {

using cxf::Fiber;
using cxm::Message;
using cxm::MessagePtr;

// Wire header types are defined once in wire/wire_headers.hpp and used
// unqualified throughout the runtime TUs.
using wire::BcastDoneHeader;
using wire::BcastHeader;
using wire::CkptAckHeader;
using wire::CkptHeader;
using wire::CollBlob;
using wire::CreateHeader;
using wire::DoneInsertingHeader;
using wire::ElementBlob;
using wire::EntryHeader;
using wire::FtFailureHeader;
using wire::FtNoticeHeader;
using wire::FutureHeader;
using wire::HeartbeatHeader;
using wire::InsertCountHeader;
using wire::InsertHeader;
using wire::LbAckHeader;
using wire::LbCmdHeader;
using wire::LbResumeHeader;
using wire::LocUpdateHeader;
using wire::MigrateHeader;
using wire::OverrideBlob;
using wire::PeBlob;
using wire::QdProbeHeader;
using wire::QdReplyHeader;
using wire::QdStartHeader;
using wire::RedBlob;
using wire::ReduceHeader;
using wire::RestoreAckHeader;
using wire::RestoreHeader;
using wire::SectBcastHeader;
using wire::SectBlob;
using wire::SectBuildHeader;
using wire::SectExpectHeader;
using wire::SectionSpec;
using wire::SectRedBlob;
using wire::SectReduceHeader;
using wire::SetSizeHeader;
using wire::SizeAckHeader;

/// The single live Runtime (defined in runtime.cpp).
extern Runtime* g_runtime;

/// Identity staged for the Chare constructor (see construct_element).
/// Function-local thread_locals (not extern ones): cross-TU extern TLS
/// goes through a compiler-generated wrapper that GCC's UBSan flags
/// with a bogus "store to null pointer" under -O2.
inline CollectionId& staged_coll() {
  thread_local CollectionId v = kInvalidCollection;
  return v;
}
inline Index& staged_idx() {
  thread_local Index v;
  return v;
}

// ---- in-process (same-PE) payloads: the zero-serialization fast path ----

struct LocalEnvelope {
  enum class Kind { Entry, Resume, Start, Timer, Post } kind = Kind::Entry;
  // Entry:
  CollectionId coll = kInvalidCollection;
  Index idx;
  EpId ep = 0;
  std::shared_ptr<void> tuple;
  void (*pup_args)(void* tuple, pup::Er& p) = nullptr;
  ReplyTo reply;
  ReplyTo bcast_done;
  // Resume:
  Fiber* fiber = nullptr;
  // Start / Post:
  std::function<void()> fn;
  // Timer (Future::get_for deadline; delivered via Machine::send_after):
  std::uint64_t timer_token = 0;

  void reset() {
    kind = Kind::Entry;
    coll = kInvalidCollection;
    idx = Index();
    ep = 0;
    tuple.reset();
    pup_args = nullptr;
    reply = ReplyTo{};
    bcast_done = ReplyTo{};
    fiber = nullptr;
    fn = nullptr;
    timer_token = 0;
  }
};

/// Pooled envelope allocation (delivery.cpp): local sends, resumes and
/// timers reuse envelopes from a per-thread free list instead of a
/// fresh make_shared per send.
LocalEnvelope* acquire_envelope();
void release_envelope(LocalEnvelope* env) noexcept;
/// Message::local_drop for envelopes that die undelivered.
void drop_envelope(void* env) noexcept;

struct EnvelopeDeleter {
  void operator()(LocalEnvelope* e) const noexcept { release_envelope(e); }
};
using EnvelopePtr = std::unique_ptr<LocalEnvelope, EnvelopeDeleter>;

/// Binomial-tree children of `self` in a broadcast rooted at `root`
/// (delivery.cpp; the math lives in core/spantree.hpp and is shared
/// with the section SpanningTree).
void tree_children(int self, int root, int num_pes, std::vector<int>& out);

Index delinearize(std::uint64_t lin, const Index& dims);

// ---- per-PE state --------------------------------------------------------

struct CollMeta {
  CollectionInfo info;
  std::unordered_map<Index, std::unique_ptr<Chare>, IndexHash> elements;
  std::unordered_map<Index, int, IndexHash> overrides;  ///< migrated homes
  std::unordered_map<Index, std::vector<MessagePtr>, IndexHash> pending;
};

struct RedState {
  std::uint64_t count = 0;
  bool has_acc = false;
  std::vector<std::byte> acc;
  CombineId combiner = kNoCombine;
  Callback cb;
};

/// Per-PE view of a section (sections.cpp). The spec is identical on
/// every involved PE; the delivery split (which home members are
/// physically present vs migrated away) is a cache that migration
/// invalidates by bumping `epoch` — the next multicast rebuilds it
/// (counted as a tree repair).
struct SectMeta {
  wire::SectionSpec spec;
  /// Members homed on this PE (static under migration: home_pe never
  /// changes). Computed once at build.
  std::vector<Index> home_members;
  std::uint64_t epoch = 0;        ///< bumped by migrations touching members
  std::uint64_t routes_epoch = 0; ///< epoch the split below was built at
  bool routes_built = false;
  std::vector<Index> present;  ///< home members with a live local element
  std::vector<Index> away;     ///< home members migrated off this PE
};

struct FutureSlot {
  std::optional<std::vector<std::byte>> value;
  Fiber* waiter = nullptr;
};

struct FiberRec {
  std::unique_ptr<Fiber> fiber;
  Chare* owner = nullptr;
};

struct PeState {
  std::unordered_map<CollectionId, CollMeta> colls;
  /// Messages for collections whose creation hasn't reached this PE yet.
  std::unordered_map<CollectionId, std::vector<MessagePtr>> stash;
  std::unordered_map<FutureId, FutureSlot> futures;
  FutureId next_future = 0;
  std::unordered_map<Fiber*, FiberRec> fibers;
  /// Reductions rooted on this PE, keyed (collection, red_no).
  std::map<std::pair<CollectionId, std::uint32_t>, RedState> red_root;
  /// Broadcast-completion counts, keyed (reply.pe, reply.fid).
  std::map<std::pair<std::int32_t, FutureId>, std::uint64_t> bcast_done_root;
  /// Section completion expectations registered by the section tree
  /// root for broadcast_done over a proper subset: the credit count to
  /// fire at instead of info.size. All-members sections never register
  /// one (the info.size path is already correct), which keeps the two
  /// completion sources race-free. Ordered for checkpoint determinism.
  std::map<std::pair<std::int32_t, FutureId>, std::uint64_t> bcast_expect;
  /// Sections this PE participates in (or created), keyed by id.
  /// Ordered so checkpoint blobs pack deterministically.
  std::map<std::uint64_t, SectMeta> sections;
  /// Section-reduction fold state at this tree node, keyed (section,
  /// seq). Multiple in-flight reductions per section = multiple seqs.
  std::map<std::pair<std::uint64_t, std::uint32_t>, RedState> sect_red;
  /// Messages for sections whose build hasn't reached this PE yet.
  std::unordered_map<std::uint64_t, std::vector<MessagePtr>> sect_stash;
  /// Per-PE section-id allocator (id = pe<<32 | ++next_sect); rolled
  /// back by restore like next_future so replayed creations after a
  /// recovery reuse the same ids a fault-free run hands out.
  std::uint64_t next_sect = 0;
  /// Sparse-array size gathering, keyed by collection: (total, reports).
  std::unordered_map<CollectionId, std::pair<std::uint64_t, int>> ins_count;
  /// SetSize acknowledgment counts (done_inserting completion).
  std::unordered_map<CollectionId, int> size_acks;
  std::uint64_t created = 0;    ///< app messages sent from this PE
  std::uint64_t processed = 0;  ///< app messages handled on this PE
  /// Armed Future::get_for deadlines: token -> suspended fiber. A timer
  /// whose token is gone (value arrived first) is a no-op on delivery.
  std::unordered_map<std::uint64_t, Fiber*> timer_waiters;
  std::uint64_t next_timer_token = 0;
};

// ---------------------------------------------------------------------------
// Runtime::Impl

struct Runtime::Impl {
  RuntimeConfig cfg;
  std::unique_ptr<cxm::Machine> machine;
  int P = 0;
  std::atomic<CollectionId> next_coll{0};
  std::vector<std::unique_ptr<PeState>> pes;
  std::atomic<bool> exiting{false};

  // Handler ids
  std::uint32_t h_local = 0, h_entry = 0, h_create = 0, h_bcast = 0,
                h_bcast_done = 0, h_reduce = 0, h_future = 0, h_migrate = 0,
                h_loc = 0, h_insert = 0, h_done_inserting = 0,
                h_insert_count = 0, h_set_size = 0, h_size_ack = 0,
                h_lb_sync = 0, h_lb_cmd = 0, h_lb_ack = 0, h_lb_resume = 0,
                h_qd_start = 0, h_qd_probe = 0, h_qd_reply = 0,
                h_ft_failure = 0, h_ckpt = 0, h_ckpt_ack = 0, h_restore = 0,
                h_restore_ack = 0, h_heartbeat = 0, h_hb_tick = 0,
                h_ft_notice = 0, h_ft_round_done = 0, h_sect_build = 0,
                h_sect_bcast = 0, h_sect_reduce = 0, h_sect_expect = 0;

  // LB coordinator state (touched on PE 0 only).
  struct LbCollState {
    std::vector<ChareLoadRecord> records;
    std::uint64_t pending_acks = 0;
  };
  std::unordered_map<CollectionId, LbCollState> lb;
  LbStats lb_stats;

  // Quiescence detection state (PE 0 only).
  struct QdState {
    std::vector<Callback> waiters;
    bool wave_active = false;
    std::uint64_t phase = 0;
    int replies = 0;
    std::uint64_t sum_c = 0, sum_p = 0;
    std::uint64_t prev_c = 0, prev_p = 0;
    bool have_prev = false;
  };
  QdState qd;

  // Fault-tolerance coordinator state. Failure bookkeeping, callbacks
  // and the recovery machine run on the coordinator PE (lowest live PE
  // — the failure listener routes every detection there); ack counting
  // on whichever PE drives checkpoint()/restore(). The shared-memory
  // struct means coordinator failover needs no state handoff: the new
  // coordinator sees the same FtState. `mu` guards cross-thread access
  // on the threaded backend (the Sim scheduler is single-threaded).
  struct FtState {
    std::set<int> failed;
    std::vector<std::function<void(const cx::ft::PeFailure&)>> callbacks;
    std::vector<std::function<void(std::uint64_t)>> recovery_callbacks;
    std::uint64_t next_epoch = 0;
    std::map<std::uint64_t, int> ckpt_acks;  ///< epoch -> PEs stored
    /// Restore ack counts keyed by the driving (PE, future id) — fids
    /// are per-PE counters, so the PE disambiguates concurrent rounds
    /// driven from different coordinators. Keys are pre-registered
    /// before the broadcast; stale acks from an abandoned round land on
    /// an unknown key and are ignored. Guarded by `mu`.
    std::map<std::pair<std::int32_t, std::uint64_t>, int> restore_acks;
    /// The restore driver's ack wait rides the timer-token mechanism,
    /// not a future: future ids are pupped into checkpoint blobs, and
    /// one burned across the rollback would skew the digest against a
    /// fault-free run. `restore_rounds` supplies the ack key's id part.
    Fiber* restore_waiter = nullptr;
    bool restore_done = false;
    std::uint64_t restore_rounds = 0;
    /// Same discipline for the checkpoint driver's ack wait: the
    /// completion wake must stay outside the counted-message ledger or
    /// a rolled-back run (whose crashed epoch never completes) would
    /// diverge from a fault-free one by one resume per recovery.
    Fiber* ckpt_waiter = nullptr;
    bool ckpt_done = false;
    std::uint64_t ckpt_wait_epoch = 0;
    cx::ft::RecoveryState rec;
    std::atomic<std::uint64_t> completed_rounds{0};
    std::atomic<std::uint64_t> last_restored{0};  ///< epoch of last Ok restore
    std::mutex mu;
  };
  FtState ftst;

  // Liveness layer (heartbeats). `live_cfg` is fixed at construction;
  // `live[pe]` is touched only on that PE's scheduler.
  cx::ft::LivenessConfig live_cfg;
  std::vector<cx::ft::PeLiveness> live;

  explicit Impl(RuntimeConfig c);  // runtime.cpp

  [[nodiscard]] int mype() const { return machine->current_pe(); }

  std::uint32_t next_red_no(Chare& c) { return c.red_no_++; }

  /// Per-section reduction sequence on a contributing element: the tag
  /// that keeps multiple in-flight reductions over one section apart.
  std::uint32_t next_sect_seq(Chare& c, std::uint64_t sect) {
    return c.sect_seq_[sect]++;
  }

  PeState& me() {
    const int pe = mype();
    assert(pe >= 0 && "runtime call outside of a PE context");
    return *pes[static_cast<std::size_t>(pe)];
  }

  // ---- send helpers ------------------------------------------------------

  /// Counted application-message send.
  void rt_send(MessagePtr msg) {
    const int cp = mype();
    const int attr = cp >= 0 ? cp : msg->dst_pe;
    pes[static_cast<std::size_t>(attr)]->created++;
    machine->send(std::move(msg));
  }

  /// Uncounted send for quiescence-detection / ft control traffic.
  /// Protocol messages must not sit in an aggregation buffer (QD probes
  /// would deadlock waiting on themselves), so they bypass --wire-agg.
  void raw_send(MessagePtr msg) {
    msg->wire_flags |= cxm::kWireNoAgg;
    machine->send(std::move(msg));
  }

  /// Wrap a pooled envelope in a local (by-reference) message.
  MessagePtr wrap_local(LocalEnvelope* env, int pe) {
    auto m = std::make_unique<Message>();
    m->handler = h_local;
    m->dst_pe = pe;
    m->local = env;
    m->local_drop = &drop_envelope;
    m->local_size = 0;
    return m;
  }

  void send_local(int pe, LocalEnvelope* env) {
    rt_send(wrap_local(env, pe));
  }

  void send_resume(Fiber* f) {
    LocalEnvelope* env = acquire_envelope();
    env->kind = LocalEnvelope::Kind::Resume;
    env->fiber = f;
    send_local(mype(), env);
  }

  // ---- element lookup ----------------------------------------------------

  Chare* find_local(CollMeta& cm, const Index& idx) {
    const auto it = cm.elements.find(idx);
    return it == cm.elements.end() ? nullptr : it->second.get();
  }

  void stash_msg(CollectionId coll, MessagePtr msg) {
    me().stash[coll].push_back(std::move(msg));
  }

  /// Enumerate the dense-array indexes whose home is this PE.
  template <typename Fn>
  void for_each_local_index(const CollectionInfo& info, Fn&& fn) {
    const std::uint64_t n = dense_size(info.dims);
    const auto up = static_cast<std::uint64_t>(P);
    const auto pe = static_cast<std::uint64_t>(mype());
    if (info.map_name == "block") {
      const std::uint64_t lo = (pe * n + up - 1) / up;
      const std::uint64_t hi = ((pe + 1) * n + up - 1) / up;
      for (std::uint64_t lin = lo; lin < hi && lin < n; ++lin) {
        fn(delinearize(lin, info.dims));
      }
    } else if (info.map_name == "rr") {
      for (std::uint64_t lin = pe; lin < n; lin += up) {
        fn(delinearize(lin, info.dims));
      }
    } else {
      const auto& map = lookup_map(info.map_name);
      for (std::uint64_t lin = 0; lin < n; ++lin) {
        const Index idx = delinearize(lin, info.dims);
        if (map(idx, info, P) == mype()) fn(idx);
      }
    }
  }

  /// Forward an already-packed payload to this PE's children in the
  /// binomial broadcast tree rooted at `root` (delivery.cpp). One
  /// definition for what used to be a copy-pasted tree_children +
  /// clone_payload loop at every broadcast-shaped handler.
  void forward_tree(std::uint32_t handler, int root, const wire::Buffer& payload);

  // ---- sections (sections.cpp) -------------------------------------------

  /// The k-ary tree over the PEs hosting members of `spec`.
  [[nodiscard]] tree::SpanningTree section_tree(const SectionSpec& spec) const;
  /// Contributions the subtree rooted at this PE must fold before the
  /// combined fragment may travel up (member count per involved PE,
  /// summed over the subtree positions).
  [[nodiscard]] std::uint64_t sect_subtree_expected(const SectionSpec& spec) const;
  /// Install a section meta on this PE (idempotent) and flush stashes.
  SectMeta& install_section(const SectionSpec& spec);
  /// Rebuild the present/away delivery split if migration invalidated
  /// it (counts a tree repair in the section stats).
  void sect_refresh_routes(SectMeta& sm, CollMeta& cm);
  /// Bump the epoch of every section of `coll` containing `idx` —
  /// called by migration (out, in, and location updates).
  void invalidate_section_routes(CollectionId coll, const Index& idx);

  // ---- fibers / delivery (delivery.cpp) ----------------------------------

  void run_fiber(std::function<void()> body, Chare* owner);
  void resume_fiber(Fiber* f);
  void deliver(Chare* obj, EpId ep, std::shared_ptr<void> tuple,
               const ReplyTo& reply, const ReplyTo& bdone);
  void execute(Chare* obj, EpId ep, std::shared_ptr<void> tuple,
               const ReplyTo& reply, const ReplyTo& bdone);
  void post_execute(Chare* obj);
  // when-condition engine (delivery.cpp)
  const WhenDeps* resolve_when_deps(const EpInfo& info, Chare* obj,
                                    void* args);
  void bind_dep_slots(Chare* obj, PendingInvoke& pi);
  void buffer_invoke(Chare* obj, const EpInfo& info, EpId ep,
                     std::shared_ptr<void> tuple, const ReplyTo& reply,
                     const ReplyTo& bdone);
  void rebucket_buffered(Chare* obj);
  void retest_buffered(Chare* obj);

  // ---- location / migration (location.cpp) -------------------------------

  void route_entry_msg(CollMeta& cm, const Index& idx, MessagePtr msg);
  void flush_pending(CollMeta& cm, const Index& idx);
  void flush_stash(CollectionId coll);
  Chare* construct_element(CollMeta& cm, const Index& idx);
  void do_migrate(Chare* obj, int to_pe, bool for_lb);

  // ---- callbacks / futures (collectives.cpp) -----------------------------

  void fulfill_future(FutureId fid, std::vector<std::byte>&& bytes);
  void send_future_bytes(const ReplyTo& f, std::vector<std::byte>&& bytes);
  void deliver_callback(const Callback& cb, std::vector<std::byte>&& bytes);

  // ---- LB / quiescence coordinator (coordinator.cpp) ---------------------

  void lb_round(CollectionId coll, LbCollState& st);
  void broadcast_lb_resume(CollectionId coll);
  void qd_start_wave();

  // ---- handlers ----------------------------------------------------------

  void register_handlers();  // runtime.cpp
  // delivery.cpp
  void on_local(MessagePtr msg);
  void on_entry(MessagePtr msg);
  // location.cpp
  void on_create(MessagePtr msg);
  void on_migrate(MessagePtr msg);
  void on_loc(MessagePtr msg);
  void on_insert(MessagePtr msg);
  // collectives.cpp
  void on_bcast(MessagePtr msg);
  void on_bcast_done(MessagePtr msg);
  void on_reduce(MessagePtr msg);
  void on_future(MessagePtr msg);
  void on_done_inserting(MessagePtr msg);
  void on_insert_count(MessagePtr msg);
  void on_set_size(MessagePtr msg);
  void on_size_ack(MessagePtr msg);
  // coordinator.cpp
  void on_lb_sync(MessagePtr msg);
  void on_lb_cmd(MessagePtr msg);
  void on_lb_ack(MessagePtr msg);
  void on_lb_resume(MessagePtr msg);
  void on_qd_start(MessagePtr msg);
  void on_qd_probe(MessagePtr msg);
  void on_qd_reply(MessagePtr msg);
  // ft_handlers.cpp
  void on_ft_failure(MessagePtr msg);
  void on_ckpt(MessagePtr msg);
  void on_ckpt_ack(MessagePtr msg);
  void on_restore(MessagePtr msg);
  void on_restore_ack(MessagePtr msg);
  void on_heartbeat(MessagePtr msg);
  void on_hb_tick(MessagePtr msg);
  void on_ft_notice(MessagePtr msg);
  void on_ft_round_done(MessagePtr msg);
  // sections.cpp
  void on_sect_build(MessagePtr msg);
  void on_sect_bcast(MessagePtr msg);
  void on_sect_reduce(MessagePtr msg);
  void on_sect_expect(MessagePtr msg);
  /// Re-fire every armed timer token on this PE (uncounted, idempotent)
  /// so fibers suspended in timed waits re-check their condition now.
  void wake_armed_timers();
  /// Re-arm this PE's heartbeat tick chain under a fresh generation
  /// (start of run, and after each restore revives dead chains).
  void arm_hb_tick(int pe);
  /// Coordinator-side auto-recovery driver (runs on a fiber).
  void auto_recover_driver(std::uint64_t round);
  /// Block the calling fiber for `seconds` of backend time without
  /// counting against quiescence (uses a future + timer token).
  void ft_sleep(double seconds);
};

}  // namespace cx
