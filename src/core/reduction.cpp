#include "core/reduction.hpp"

#include <mutex>

namespace cx {

namespace {
std::mutex g_combiner_mutex;
}

CombinerRegistry& CombinerRegistry::instance() {
  static CombinerRegistry r;
  return r;
}

CombineId CombinerRegistry::add(CombineFn fn) {
  std::lock_guard<std::mutex> lock(g_combiner_mutex);
  fns_.push_back(std::move(fn));
  return static_cast<CombineId>(fns_.size() - 1);
}

const CombineFn& CombinerRegistry::get(CombineId id) const {
  std::lock_guard<std::mutex> lock(g_combiner_mutex);
  return fns_.at(id);
}

}  // namespace cx
