#pragma once
// Shared spanning-tree math for the collectives stack.
//
// Two tree shapes live here:
//
//  * binomial_children — the hypercube dissemination order used by
//    whole-collection broadcasts, collection creation, and LB resume.
//    The math used to be copy-pasted at every forward site; it now has
//    exactly one definition (unit-tested in test_spantree).
//
//  * SpanningTree — a k-ary tree laid out over an explicit, sorted PE
//    list. Sections build one over the PEs that actually host section
//    members, so a multicast to a 16-member section of a 1024-PE array
//    touches only the PEs with members on them. The same tree carries
//    reduction fragments up its edges. Fanout comes from
//    --section-tree-arity (section_arity() below) and is frozen into
//    each SectionSpec at creation so every node agrees.
//
// Everything here is pure position math — no runtime state — so the
// unit tests exercise it without spinning up PEs.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

namespace cx::tree {

/// Children of `self` in the binomial broadcast tree rooted at `root`
/// over PEs 0..num_pes-1. Rotating by `root` keeps the tree balanced
/// for any root without renumbering PEs.
inline void binomial_children(int self, int root, int num_pes,
                              std::vector<int>& out) {
  out.clear();
  const int q = (self - root + num_pes) % num_pes;
  const int lim = (q == 0) ? num_pes : (q & -q);
  for (int mask = 1; mask < lim; mask <<= 1) {
    const int child = q + mask;
    if (child < num_pes) out.push_back((child + root) % num_pes);
  }
}

/// Parent position in a k-ary heap layout over positions 0..n-1
/// (-1 for the root or an invalid position).
inline int kary_parent(int pos, int arity) {
  if (pos <= 0 || arity < 1) return -1;
  return (pos - 1) / arity;
}

/// Child positions of `pos` in a k-ary heap layout over 0..n-1.
inline void kary_children(int pos, int n, int arity, std::vector<int>& out) {
  out.clear();
  if (pos < 0 || pos >= n || arity < 1) return;
  // Guard the multiply: positions are ints but n is bounded by the PE
  // count, so first_child overflows only for absurd inputs; the
  // 64-bit intermediate keeps the comparison exact anyway.
  const std::int64_t first = static_cast<std::int64_t>(pos) * arity + 1;
  for (int k = 0; k < arity; ++k) {
    const std::int64_t child = first + k;
    if (child >= n) break;
    out.push_back(static_cast<int>(child));
  }
}

/// Sum of `weight[p]` over every position p in the subtree rooted at
/// `pos`. Sections use this for reduction bookkeeping: a tree node can
/// tell, purely from the (deterministic) member-to-PE assignment, how
/// many contributions its subtree must fold before the combined
/// fragment may travel up to the parent.
inline std::uint64_t kary_subtree_sum(int pos, int n, int arity,
                                      const std::vector<std::uint64_t>& weight) {
  if (pos < 0 || pos >= n || static_cast<std::size_t>(n) > weight.size()) {
    return 0;
  }
  std::uint64_t sum = 0;
  std::vector<int> stack{pos};
  std::vector<int> kids;
  while (!stack.empty()) {
    const int p = stack.back();
    stack.pop_back();
    sum += weight[static_cast<std::size_t>(p)];
    kary_children(p, n, arity, kids);
    stack.insert(stack.end(), kids.begin(), kids.end());
  }
  return sum;
}

/// k-ary spanning tree over an explicit PE list (sorted ascending,
/// duplicates removed by the builder). Position i in `pes` occupies
/// heap slot i; the root is pes[0].
struct SpanningTree {
  std::vector<int> pes;
  int arity = 4;

  [[nodiscard]] int size() const {
    return static_cast<int>(pes.size());
  }

  [[nodiscard]] int root() const { return pes.empty() ? -1 : pes.front(); }

  /// Position of `pe` in the tree, or -1 if it is not a member.
  [[nodiscard]] int pos_of(int pe) const {
    const auto it = std::lower_bound(pes.begin(), pes.end(), pe);
    if (it == pes.end() || *it != pe) return -1;
    return static_cast<int>(it - pes.begin());
  }

  /// Parent PE of `pe` (-1 for the root or a non-member).
  [[nodiscard]] int parent_of(int pe) const {
    const int pos = pos_of(pe);
    const int pp = kary_parent(pos, arity);
    return pp < 0 ? -1 : pes[static_cast<std::size_t>(pp)];
  }

  /// Child PEs of `pe` in the tree (empty for leaves and non-members).
  void children_of(int pe, std::vector<int>& out) const {
    out.clear();
    const int pos = pos_of(pe);
    if (pos < 0) return;
    std::vector<int> kid_pos;
    kary_children(pos, size(), arity, kid_pos);
    out.reserve(kid_pos.size());
    for (const int p : kid_pos) out.push_back(pes[static_cast<std::size_t>(p)]);
  }
};

/// Build a tree over a (possibly unsorted, possibly duplicated) PE
/// list. Sorting makes the layout canonical: every node derives the
/// identical tree from the same member set.
inline SpanningTree make_spanning_tree(std::vector<int> pes, int arity) {
  std::sort(pes.begin(), pes.end());
  pes.erase(std::unique(pes.begin(), pes.end()), pes.end());
  SpanningTree t;
  t.pes = std::move(pes);
  t.arity = arity < 1 ? 1 : arity;
  return t;
}

namespace detail {
inline std::atomic<int>& section_arity_slot() noexcept {
  static std::atomic<int> v{4};
  return v;
}
}  // namespace detail

/// Process-wide default fanout for new section trees
/// (--section-tree-arity in the examples/benches). Captured into each
/// SectionSpec at creation time, so changing it never re-shapes a tree
/// that is already live.
[[nodiscard]] inline int section_arity() noexcept {
  return detail::section_arity_slot().load(std::memory_order_relaxed);
}

inline void set_section_arity(int arity) noexcept {
  detail::section_arity_slot().store(arity < 1 ? 1 : arity,
                                     std::memory_order_relaxed);
}

}  // namespace cx::tree
